// Benchmark harness: one benchmark per evaluation artifact of the paper
// (Table 1, Figures 6 and 7, the Section 6.1 comparisons, the Appendix B
// example, the achievability certification), plus the ablations DESIGN.md
// calls out. Run with:
//
//	go test -bench=. -benchmem
//
// The rendered rows/series themselves are printed by cmd/ndeval; the
// benchmarks regenerate the underlying computations and report the
// headline metric of each experiment via ReportMetric, so a regression in
// either performance or *result shape* is visible from the bench output.
package repro

import (
	"math"
	"testing"

	"repro/internal/coverage"
	"repro/internal/energy"
	"repro/internal/eval"
	"repro/internal/multichannel"
	"repro/internal/optimal"
	"repro/internal/protocols"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/slots"
	"repro/internal/timebase"
)

// BenchmarkTable1 regenerates Table 1: the four protocol formulas over the
// operating grid plus the five measured protocol instances.
func BenchmarkTable1(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := eval.RunTable1(eval.StdParams)
		if err != nil {
			b.Fatal(err)
		}
		ratio = res.Validations[1].OptimalityVsEq21Single // Diffcode(q=5)
	}
	b.ReportMetric(ratio, "diffcode-ratio")
}

// BenchmarkFigure6 regenerates Figure 6: the asymmetric bound across
// duty-cycle sums and asymmetry ratios.
func BenchmarkFigure6(b *testing.B) {
	var worstDev float64
	for i := 0; i < b.N; i++ {
		res := eval.RunFigure6(eval.StdParams)
		worstDev = 0
		target := 4 * eval.StdParams.Alpha * float64(eval.StdParams.Omega)
		for _, pt := range res.Points {
			if d := math.Abs(pt.LTimesProduct-target) / target; d > worstDev {
				worstDev = d
			}
		}
	}
	b.ReportMetric(worstDev, "invariant-deviation")
}

// BenchmarkFigure7 regenerates Figure 7: collision-constrained bounds for
// S ∈ {10, 100, 1000} over the duty-cycle sweep.
func BenchmarkFigure7(b *testing.B) {
	var degradation float64
	for i := 0; i < b.N; i++ {
		res := eval.RunFigure7(eval.StdParams)
		last := len(res.Etas) - 1
		degradation = res.Series[2].Latency[last] / res.Unconstrained[last]
	}
	b.ReportMetric(degradation, "S1000-degradation")
}

// BenchmarkSlottedBounds regenerates the Section 6.1.1 Eq 18/19 comparison.
func BenchmarkSlottedBounds(b *testing.B) {
	var atOne float64
	for i := 0; i < b.N; i++ {
		res := eval.RunSlottedAlpha(eval.StdParams.Omega)
		for _, row := range res.Rows {
			if row.Alpha == 1 {
				atOne = row.ZhengRatio
			}
		}
	}
	b.ReportMetric(atOne, "eq18-ratio-at-alpha1")
}

// BenchmarkAppendixB regenerates the Appendix B example with both solvers.
func BenchmarkAppendixB(b *testing.B) {
	var latency float64
	for i := 0; i < b.N; i++ {
		res, err := eval.RunAppendixB(eval.StdParams)
		if err != nil {
			b.Fatal(err)
		}
		latency = res.Fractional.Latency / 1e6
	}
	b.ReportMetric(latency, "Lprime-seconds")
}

// BenchmarkAchievability regenerates the bound-achievability table: every
// Section 5 / Appendix C bound met by a constructed schedule.
func BenchmarkAchievability(b *testing.B) {
	var worstRatio float64
	for i := 0; i < b.N; i++ {
		res, err := eval.RunAchievability(eval.StdParams)
		if err != nil {
			b.Fatal(err)
		}
		worstRatio = 0
		for _, row := range res.Rows {
			if row.Ratio > worstRatio {
				worstRatio = row.Ratio
			}
		}
	}
	b.ReportMetric(worstRatio, "worst-ratio")
}

// BenchmarkCollisionMonteCarlo regenerates the Eq 12 simulator validation
// (a reduced-trials version of cmd/ndeval -exp mc).
func BenchmarkCollisionMonteCarlo(b *testing.B) {
	var rate float64
	for i := 0; i < b.N; i++ {
		res, err := eval.RunCollisionMC(eval.StdParams, 10)
		if err != nil {
			b.Fatal(err)
		}
		rate = res.Rows[len(res.Rows)-1].Measured
	}
	b.ReportMetric(rate, "collision-rate-S20")
}

// --- Ablation 1 (DESIGN.md §6): coverage sweep vs brute-force offsets ---

func ablationPair(b *testing.B) (schedule.BeaconSeq, schedule.WindowSeq) {
	b.Helper()
	u, err := optimal.NewUnidirectional(36, 500, 20, 1)
	if err != nil {
		b.Fatal(err)
	}
	return u.Sender, u.Listener
}

// BenchmarkCoverageSweep measures the interval-sweep analyzer.
func BenchmarkCoverageSweep(b *testing.B) {
	s, l := ablationPair(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coverage.Analyze(s, l, coverage.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoverageBruteForce measures the per-tick brute-force evaluator
// on the same pair — the ablation baseline the sweep replaces.
func BenchmarkCoverageBruteForce(b *testing.B) {
	s, l := ablationPair(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := coverage.BruteForceWorstLatency(s, l, 1, coverage.Options{}); !ok {
			b.Fatal("brute force found non-determinism")
		}
	}
}

// --- Ablation 2: equal gaps vs perturbed gaps (Theorem 5.1 condition) ---

// BenchmarkPerturbationAblation measures the latency inflation caused by
// violating the equal-M-gap-sums condition at identical duty cycles.
func BenchmarkPerturbationAblation(b *testing.B) {
	var inflation float64
	for i := 0; i < b.N; i++ {
		perturbed, err := optimal.PerturbedBeacons(36, 500, 8)
		if err != nil {
			b.Fatal(err)
		}
		u, err := optimal.NewUnidirectional(36, 500, 8, 1)
		if err != nil {
			b.Fatal(err)
		}
		res, err := coverage.Analyze(perturbed, u.Listener, coverage.Options{})
		if err != nil {
			b.Fatal(err)
		}
		bound := eval.StdParams.CoverageBound(u.Listener.Period, 500, perturbed.Beta())
		inflation = float64(res.WorstLatency) / bound
	}
	b.ReportMetric(inflation, "latency-inflation")
}

// --- Ablation 3: slot length sweep (Equation 17: latency ∝ I) ---

// BenchmarkSlotLengthSweep measures diffcode worst-case latency across slot
// lengths, the effect motivating Section 6.1.1's slot-length lower limit.
func BenchmarkSlotLengthSweep(b *testing.B) {
	var span float64
	for i := 0; i < b.N; i++ {
		var first, last timebase.Ticks
		for _, slot := range []timebase.Ticks{200, 400, 800, 1600} {
			d, err := protocols.NewDiffcode(3, slot, 36)
			if err != nil {
				b.Fatal(err)
			}
			dev, err := d.DeviceFullDuplex()
			if err != nil {
				b.Fatal(err)
			}
			res, err := coverage.Analyze(dev.B, dev.C, coverage.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if first == 0 {
				first = res.WorstLatency
			}
			last = res.WorstLatency
		}
		span = float64(last) / float64(first) // ≈ 8 (latency ∝ I)
	}
	b.ReportMetric(span, "latency-x-for-8x-slots")
}

// --- Ablation 4: redundancy Q sweep under collisions (Appendix B) ---

// BenchmarkRedundancySweep measures Q-coverage latency growth.
func BenchmarkRedundancySweep(b *testing.B) {
	r, err := optimal.NewRedundant(36, 500, 8, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var lastQ timebase.Ticks
	for i := 0; i < b.N; i++ {
		for q := 1; q <= 4; q++ {
			lat, ok, err := coverage.QWorstLatency(r.Sender, r.Listener, q, coverage.Options{})
			if err != nil || !ok {
				b.Fatalf("Q=%d: ok=%v err=%v", q, ok, err)
			}
			lastQ = lat
		}
	}
	b.ReportMetric(float64(lastQ)/float64(r.WorstCase), "L(Q=4)/L(Q=1)")
}

// --- Engine benchmarks at realistic sizes ---

// BenchmarkAnalyzeDisco2329 analyzes a production-scale Disco pair
// (primes 23×29: 667 slots, 102 beacons per period).
func BenchmarkAnalyzeDisco2329(b *testing.B) {
	d, err := protocols.NewDisco(23, 29, 5000, 36)
	if err != nil {
		b.Fatal(err)
	}
	dev, err := d.DeviceFullDuplex()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := coverage.Analyze(dev.B, dev.C, coverage.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Deterministic {
			b.Fatal("not deterministic")
		}
	}
}

// BenchmarkGroupSimulation runs the 20-device collision simulation.
func BenchmarkGroupSimulation(b *testing.B) {
	pair, err := optimal.NewSymmetric(36, 1, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := sim.GroupDiscovery(pair.E, 20, 5, sim.Config{
			Horizon:    10 * pair.WorstCase(),
			Collisions: true,
			Jitter:     200,
			Seed:       int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSlotDomainWorstCase measures the independent slot-domain engine
// on Disco(5,7) — the combinatorial path used for cross-validation.
func BenchmarkSlotDomainWorstCase(b *testing.B) {
	d, err := slots.Disco(5, 7)
	if err != nil {
		b.Fatal(err)
	}
	var worst int
	for i := 0; i < b.N; i++ {
		w, ok := slots.Symmetric(d)
		if !ok {
			b.Fatal("not deterministic")
		}
		worst = w
	}
	b.ReportMetric(float64(worst), "worst-slots")
}

// BenchmarkMultichannelAnalyze measures the exact 3-channel BLE analysis
// on the continuous-scanning preset.
func BenchmarkMultichannelAnalyze(b *testing.B) {
	cfg := multichannel.BLE(20000, 128, 30000, 30000)
	var worst timebase.Ticks
	for i := 0; i < b.N; i++ {
		res, err := multichannel.Analyze(cfg)
		if err != nil {
			b.Fatal(err)
		}
		worst = res.WorstLatency
	}
	b.ReportMetric(float64(worst)/1e3, "worst-ms")
}

// BenchmarkLifetimePlan measures the inverse-bound planning path.
func BenchmarkLifetimePlan(b *testing.B) {
	targets := []float64{0.5, 1, 2, 5, 10, 30, 60}
	var days float64
	for i := 0; i < b.N; i++ {
		plan, err := energy.Plan(energy.NRF52, 128, energy.CR2032Capacity, targets)
		if err != nil {
			b.Fatal(err)
		}
		days = plan[len(plan)-1].LifetimeDays
	}
	b.ReportMetric(days, "days-at-60s")
}
