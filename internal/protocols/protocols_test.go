package protocols

import (
	"math"
	"testing"

	"repro/internal/coverage"
	"repro/internal/timebase"
)

func TestSlottedValidate(t *testing.T) {
	base := Slotted{Name: "x", SlotLen: 100, Omega: 10, Period: 5, Active: []int{0, 2}}
	if err := base.Validate(); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	bad := []Slotted{
		{SlotLen: 20, Omega: 10, Period: 5, Active: []int{0}},     // I ≤ 2ω
		{SlotLen: 100, Omega: 0, Period: 5, Active: []int{0}},     // ω = 0
		{SlotLen: 100, Omega: 10, Period: 0, Active: []int{0}},    // T = 0
		{SlotLen: 100, Omega: 10, Period: 5, Active: nil},         // no active
		{SlotLen: 100, Omega: 10, Period: 5, Active: []int{5}},    // out of range
		{SlotLen: 100, Omega: 10, Period: 5, Active: []int{1, 1}}, // duplicate
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad schedule %d accepted", i)
		}
	}
}

func TestDiscoConstruction(t *testing.T) {
	d, err := NewDisco(3, 5, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if d.Period != 15 {
		t.Errorf("period = %d, want 15", d.Period)
	}
	want := []int{0, 3, 5, 6, 9, 10, 12}
	if len(d.Active) != len(want) {
		t.Fatalf("active = %v, want %v", d.Active, want)
	}
	for i := range want {
		if d.Active[i] != want[i] {
			t.Errorf("active = %v, want %v", d.Active, want)
			break
		}
	}
	// Duty cycle ≈ 1/p1 + 1/p2 − 1/(p1p2) of slots.
	slotsFrac := float64(len(d.Active)) / float64(d.Period)
	wantFrac := 1.0/3 + 1.0/5 - 1.0/15
	if math.Abs(slotsFrac-wantFrac) > 1e-12 {
		t.Errorf("slot fraction %v, want %v", slotsFrac, wantFrac)
	}
	if _, err := NewDisco(4, 5, 100, 10); err == nil {
		t.Error("composite p1 accepted")
	}
	if _, err := NewDisco(5, 3, 100, 10); err == nil {
		t.Error("p1 ≥ p2 accepted")
	}
}

func TestUConnectConstruction(t *testing.T) {
	p := 5
	u, err := NewUConnect(p, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if u.Period != p*p {
		t.Errorf("period = %d, want %d", u.Period, p*p)
	}
	// Duty cycle in slots: (3p+1)/(2p²) — here (16)/(50) = 0.32 → slots:
	// p multiples of p (5) plus (p+1)/2 = 3 hotspot slots, minus overlap of
	// slot 0 → 5 + 3 − 1 = 7 active slots. (3p+1)/2 = 8 counts slot 0 twice.
	wantSlots := p + (p+1)/2 - 1
	if len(u.Active) != wantSlots {
		t.Errorf("active slots = %d, want %d", len(u.Active), wantSlots)
	}
	if _, err := NewUConnect(4, 100, 10); err == nil {
		t.Error("composite p accepted")
	}
	if _, err := NewUConnect(2, 100, 10); err == nil {
		t.Error("p=2 accepted")
	}
}

func TestSearchlightConstruction(t *testing.T) {
	s, err := NewSearchlight(8, false, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	// t=8: sweep ⌈8/2⌉ = 4 subperiods, 2 active slots each.
	if s.Period != 32 {
		t.Errorf("period = %d, want 32", s.Period)
	}
	if len(s.Active) != 8 {
		t.Errorf("active = %v", s.Active)
	}
	ss, err := NewSearchlight(8, true, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ss.Period >= s.Period {
		t.Errorf("striped period %d should be shorter than plain %d", ss.Period, s.Period)
	}
	if _, err := NewSearchlight(3, false, 100, 10); err == nil {
		t.Error("tiny period accepted")
	}
}

func TestDiffcodeConstruction(t *testing.T) {
	d, err := NewDiffcode(3, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if d.Period != 13 || len(d.Active) != 4 {
		t.Errorf("diffcode shape (%d, %d), want (13, 4)", d.Period, len(d.Active))
	}
	// k ≈ √T: the optimal slotted density.
	if k := len(d.Active); k*k < d.Period {
		t.Errorf("k² = %d < T = %d", k*k, d.Period)
	}
	if _, err := NewDiffcode(6, 100, 10); err == nil {
		t.Error("order 6 accepted (no projective plane of order 6)")
	}
}

func TestSlottedDutyCycles(t *testing.T) {
	d, _ := NewDisco(3, 5, 100, 10)
	k := float64(len(d.Active))
	wantBeta := 2 * k * 10 / (15.0 * 100)
	wantGamma := k * 80 / (15.0 * 100)
	if math.Abs(d.Beta()-wantBeta) > 1e-12 {
		t.Errorf("Beta = %v, want %v", d.Beta(), wantBeta)
	}
	if math.Abs(d.Gamma()-wantGamma) > 1e-12 {
		t.Errorf("Gamma = %v, want %v", d.Gamma(), wantGamma)
	}
	if math.Abs(d.Eta(2)-2*wantBeta-wantGamma) > 1e-12 {
		t.Errorf("Eta = %v", d.Eta(2))
	}
}

func TestSlottedDeviceConsistency(t *testing.T) {
	d, _ := NewDisco(3, 5, 100, 10)
	dev, err := d.Device()
	if err != nil {
		t.Fatal(err)
	}
	// Schedule-level duty cycles must agree with the formula-level ones.
	if math.Abs(dev.B.Beta()-d.Beta()) > 1e-12 {
		t.Errorf("device β %v vs formula %v", dev.B.Beta(), d.Beta())
	}
	if math.Abs(dev.C.Gamma()-d.Gamma()) > 1e-12 {
		t.Errorf("device γ %v vs formula %v", dev.C.Gamma(), d.Gamma())
	}
}

// TestHalfDuplexCoverageLoss reproduces the Figure 5 phenomenon: a
// half-duplex slot layout cannot cover the offsets where a beacon falls
// into the turnaround region, losing ≈ 2ω/I of all offsets.
func TestHalfDuplexCoverageLoss(t *testing.T) {
	d, _ := NewDisco(3, 5, 100, 10)
	dev, err := d.Device()
	if err != nil {
		t.Fatal(err)
	}
	res, err := coverage.Analyze(dev.B, dev.C, coverage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deterministic {
		t.Error("half-duplex slotted layout should not be fully deterministic (Figure 5)")
	}
	loss := 1 - res.CoveredFraction
	// Expected loss ≈ 2ω/I = 0.2 (up to slot-structure detail).
	if loss <= 0 || loss > 0.35 {
		t.Errorf("coverage loss %v outside plausible range (expected ≈ 2ω/I = 0.2)", loss)
	}
}

// TestFullDuplexSlottedGuarantees verifies that, under the paper's §6.1.1
// full-duplex idealization, each slotted protocol is deterministic and
// meets its literature worst-case slot bound for every (non-aligned) phase.
func TestFullDuplexSlottedGuarantees(t *testing.T) {
	cases := []struct {
		name  string
		build func() (*Slotted, error)
	}{
		{"disco", func() (*Slotted, error) { return NewDisco(3, 5, 100, 10) }},
		{"disco-larger", func() (*Slotted, error) { return NewDisco(5, 7, 100, 10) }},
		{"uconnect", func() (*Slotted, error) { return NewUConnect(5, 100, 10) }},
		{"diffcode3", func() (*Slotted, error) { return NewDiffcode(3, 100, 10) }},
		{"diffcode4", func() (*Slotted, error) { return NewDiffcode(4, 100, 10) }},
		{"searchlight", func() (*Slotted, error) { return NewSearchlight(8, false, 100, 10) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s, err := c.build()
			if err != nil {
				t.Fatal(err)
			}
			dev, err := s.DeviceFullDuplex()
			if err != nil {
				t.Fatal(err)
			}
			res, err := coverage.Analyze(dev.B, dev.C, coverage.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Deterministic {
				t.Fatalf("%s not deterministic under full duplex (covered %v)", s.Name, res.CoveredFraction)
			}
			bound := s.WorstCaseTime() + s.SlotLen // +I: phase can waste up to one slot
			if res.WorstLatency > bound {
				t.Errorf("%s: measured worst %v exceeds slot bound %v", s.Name, res.WorstLatency, bound)
			}
			// The bound should also be reasonably tight (within 3×).
			if float64(res.WorstLatency) < float64(bound)/3 {
				t.Errorf("%s: measured worst %v suspiciously far below bound %v", s.Name, res.WorstLatency, bound)
			}
		})
	}
}

// TestStripedSearchlightNeedsExtension reproduces the Searchlight-S design
// point: striped probing alone leaves coverage gaps; the half-slot listen
// extension closes them, at roughly half the plain variant's latency.
func TestStripedSearchlightNeedsExtension(t *testing.T) {
	for _, tt := range []int{8, 10, 16} {
		striped, err := NewSearchlight(tt, true, 100, 10)
		if err != nil {
			t.Fatal(err)
		}
		// With the extension (set by the constructor): deterministic.
		dev, err := striped.DeviceFullDuplex()
		if err != nil {
			t.Fatal(err)
		}
		res, err := coverage.Analyze(dev.B, dev.C, coverage.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Deterministic {
			t.Errorf("t=%d: extended striped Searchlight not deterministic (covered %v)",
				tt, res.CoveredFraction)
		}
		// Without the extension: gaps appear.
		bare := *striped
		bare.ExtendListen = 0
		devBare, err := bare.DeviceFullDuplex()
		if err != nil {
			t.Fatal(err)
		}
		resBare, err := coverage.Analyze(devBare.B, devBare.C, coverage.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if resBare.Deterministic {
			t.Errorf("t=%d: bare striping should leave gaps", tt)
		}
		// And the striped variant beats the plain one in latency at
		// comparable settings.
		plain, err := NewSearchlight(tt, false, 100, 10)
		if err != nil {
			t.Fatal(err)
		}
		devPlain, err := plain.DeviceFullDuplex()
		if err != nil {
			t.Fatal(err)
		}
		resPlain, err := coverage.Analyze(devPlain.B, devPlain.C, coverage.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if resPlain.Deterministic && res.WorstLatency >= resPlain.WorstLatency {
			t.Errorf("t=%d: striped worst %v not below plain %v",
				tt, res.WorstLatency, resPlain.WorstLatency)
		}
	}
}

func TestSlotLenForBeta(t *testing.T) {
	// β = 2kω/(I·T) → round trip.
	k, tt := 7, 15
	omega := timebase.Ticks(10)
	i, err := SlotLenForBeta(k, tt, omega, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	gotBeta := float64(2*k) * float64(omega) / (float64(i) * float64(tt))
	if math.Abs(gotBeta-0.01) > 0.001 {
		t.Errorf("round-trip β = %v, want 0.01", gotBeta)
	}
	if _, err := SlotLenForBeta(k, tt, omega, 0.9); err == nil {
		t.Error("absurd β accepted")
	}
	if _, err := SlotLenForBeta(0, tt, omega, 0.01); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestPIValidate(t *testing.T) {
	good := PI{Ta: 1000, Ts: 5000, Ds: 500, Omega: 36}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid PI rejected: %v", err)
	}
	bad := []PI{
		{Ta: 1000, Ts: 5000, Ds: 500, Omega: 0},
		{Omega: 36},                     // nothing configured
		{Ta: 30, Omega: 36},             // Ta ≤ ω
		{Ts: 5000, Ds: 0, Omega: 36},    // no window
		{Ts: 5000, Ds: 6000, Omega: 36}, // window > interval
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad PI %d accepted: %+v", i, p)
		}
	}
}

func TestPIDevice(t *testing.T) {
	p := PI{Ta: 1000, Ts: 4000, Ds: 500, Omega: 36}
	dev, err := p.Device()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dev.B.Beta()-p.Beta()) > 1e-12 || math.Abs(p.Beta()-0.036) > 1e-12 {
		t.Errorf("β mismatch: device %v formula %v", dev.B.Beta(), p.Beta())
	}
	if math.Abs(dev.C.Gamma()-p.Gamma()) > 1e-12 || math.Abs(p.Gamma()-0.125) > 1e-12 {
		t.Errorf("γ mismatch: device %v formula %v", dev.C.Gamma(), p.Gamma())
	}
	// Window anchored at the end of the scan interval (Definition 3.1).
	if dev.C.Windows[0].End() != p.Ts {
		t.Errorf("window ends at %d, want %d", dev.C.Windows[0].End(), p.Ts)
	}
}

func TestPITransmitOnlyAndScanOnly(t *testing.T) {
	tx := PI{Ta: 1000, Omega: 36}
	dev, err := tx.Device()
	if err != nil {
		t.Fatal(err)
	}
	if !dev.C.Empty() || dev.B.Empty() {
		t.Error("transmit-only device misshaped")
	}
	rx := PI{Ts: 4000, Ds: 400, Omega: 36}
	dev, err = rx.Device()
	if err != nil {
		t.Fatal(err)
	}
	if !dev.B.Empty() || dev.C.Empty() {
		t.Error("scan-only device misshaped")
	}
	if rx.Beta() != 0 || tx.Gamma() != 0 {
		t.Error("duty cycles of missing roles should be zero")
	}
}

func TestBLEPresetsValid(t *testing.T) {
	for _, p := range []PI{BLEFastAdv, BLEBalanced, BLELowPower} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if _, err := p.Device(); err != nil {
			t.Errorf("%s: Device: %v", p.Name, err)
		}
	}
	// Sanity: presets are ordered fast → slow in duty cycle.
	if !(BLEFastAdv.Eta(1) > BLEBalanced.Eta(1) && BLEBalanced.Eta(1) > BLELowPower.Eta(1)) {
		t.Errorf("preset duty cycles out of order: %v %v %v",
			BLEFastAdv.Eta(1), BLEBalanced.Eta(1), BLELowPower.Eta(1))
	}
}

// TestBLEPairDiscovery checks a realistic BLE pairing (fast advertiser vs
// continuous scanner) discovers deterministically and quickly.
func TestBLEPairDiscovery(t *testing.T) {
	adv, err := (PI{Ta: BLEFastAdv.Ta, Omega: BLEFastAdv.Omega}).Device()
	if err != nil {
		t.Fatal(err)
	}
	scan, err := (PI{Ts: BLEFastAdv.Ts, Ds: BLEFastAdv.Ds, Omega: BLEFastAdv.Omega}).Device()
	if err != nil {
		t.Fatal(err)
	}
	res, err := coverage.Analyze(adv.B, scan.C, coverage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deterministic {
		t.Fatal("continuous scanning must discover deterministically")
	}
	// With a continuous scanner, discovery happens within one advertising
	// interval plus change.
	if res.WorstLatency > 2*BLEFastAdv.Ta {
		t.Errorf("worst latency %v exceeds 2·Ta", res.WorstLatency)
	}
}
