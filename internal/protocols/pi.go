package protocols

import (
	"fmt"

	"repro/internal/schedule"
	"repro/internal/timebase"
)

// PI is a periodic-interval (slotless) protocol in the style of Bluetooth
// Low Energy: a device transmits a beacon every Ta (the advertising
// interval) and listens for a window of Ds every Ts (the scan interval).
// These are the "three degrees of freedom that can be configured freely"
// the paper's introduction describes; the paper's bounds answer how well
// the best parametrization of this family can possibly perform.
type PI struct {
	Name  string
	Ta    timebase.Ticks // advertising interval (0 = no beaconing)
	Ts    timebase.Ticks // scan interval (0 = no scanning)
	Ds    timebase.Ticks // scan window length
	Omega timebase.Ticks // packet airtime ω
}

// Validate checks the parameter ranges.
func (p PI) Validate() error {
	if p.Omega <= 0 {
		return fmt.Errorf("protocols: PI airtime %d must be positive", p.Omega)
	}
	if p.Ta == 0 && p.Ts == 0 {
		return fmt.Errorf("protocols: PI with neither beaconing nor scanning")
	}
	if p.Ta != 0 && p.Ta <= p.Omega {
		return fmt.Errorf("protocols: advertising interval %d must exceed ω = %d", p.Ta, p.Omega)
	}
	if p.Ts != 0 {
		if p.Ds <= 0 {
			return fmt.Errorf("protocols: scan window %d must be positive", p.Ds)
		}
		if p.Ds > p.Ts {
			return fmt.Errorf("protocols: scan window %d exceeds scan interval %d", p.Ds, p.Ts)
		}
	}
	return nil
}

// Device materializes the PI configuration: one beacon per Ta at the start
// of the advertising interval, one window per Ts at the end of the scan
// interval (so that the window sequence follows the paper's Definition 3.1
// convention of the origin sitting at the end of the previous window).
func (p PI) Device() (schedule.Device, error) {
	if err := p.Validate(); err != nil {
		return schedule.Device{}, err
	}
	var d schedule.Device
	if p.Ta > 0 {
		d.B = schedule.BeaconSeq{
			Beacons: []schedule.Beacon{{Time: 0, Len: p.Omega}},
			Period:  p.Ta,
		}
	}
	if p.Ts > 0 {
		d.C = schedule.WindowSeq{
			Windows: []schedule.Window{{Start: p.Ts - p.Ds, Len: p.Ds}},
			Period:  p.Ts,
		}
	}
	return d, d.Validate()
}

// Beta returns the channel utilization ω/Ta.
func (p PI) Beta() float64 {
	if p.Ta == 0 {
		return 0
	}
	return float64(p.Omega) / float64(p.Ta)
}

// Gamma returns the receive duty-cycle Ds/Ts.
func (p PI) Gamma() float64 {
	if p.Ts == 0 {
		return 0
	}
	return float64(p.Ds) / float64(p.Ts)
}

// Eta returns the total duty-cycle α·β + γ.
func (p PI) Eta(alpha float64) float64 { return alpha*p.Beta() + p.Gamma() }

// OptimalPI expresses the paper's optimal construction in the PI
// parameter space: a BLE-like stack configured with these three values —
// advertising interval Ta = λ, scan interval Ts = TC, scan window Ds = d,
// with λ = (k−1)·d and k = ⌈2/η⌋ — performs within integer rounding of the
// Theorem 5.5 bound. This is the constructive answer to the introduction's
// question of how well periodic-interval protocols can scale: optimally,
// if parametrized this way.
func OptimalPI(omega timebase.Ticks, alpha, eta float64) (PI, error) {
	if eta <= 0 || eta >= 1 || alpha <= 0 {
		return PI{}, fmt.Errorf("protocols: invalid η=%v or α=%v", eta, alpha)
	}
	beta := eta / (2 * alpha)
	gamma := eta / 2
	k := int(1/gamma + 0.5)
	if k < 2 {
		k = 2
	}
	lambdaTarget := float64(omega) / beta
	d := timebase.Ticks(lambdaTarget/float64(k-1) + 0.5)
	if d < 1 {
		d = 1
	}
	lambda := timebase.Ticks(k-1) * d
	if lambda <= omega {
		return PI{}, fmt.Errorf("protocols: η=%v too large for ω=%d (λ=%d ≤ ω)", eta, omega, lambda)
	}
	return PI{
		Name:  fmt.Sprintf("optimal-PI(η=%g)", eta),
		Ta:    lambda,
		Ts:    timebase.Ticks(k) * d,
		Ds:    d,
		Omega: omega,
	}, nil
}

// BLE advertising/scanning presets, per the Bluetooth 5.0 specification's
// timing grid (advertising intervals are multiples of 0.625 ms; the values
// here are common application choices, not mandates).
var (
	// BLEFastAdv mirrors a fast advertiser paired with an aggressive
	// foreground scanner (adv 20 ms, scan 30/30 ms — continuous scanning).
	BLEFastAdv = PI{
		Name: "BLE-fast", Ta: 20 * timebase.Millisecond,
		Ts: 30 * timebase.Millisecond, Ds: 30 * timebase.Millisecond,
		Omega: 128,
	}
	// BLEBalanced mirrors a typical background pairing: adv 152.5 ms,
	// scan window 30 ms every 300 ms.
	BLEBalanced = PI{
		Name: "BLE-balanced", Ta: 152500,
		Ts: 300 * timebase.Millisecond, Ds: 30 * timebase.Millisecond,
		Omega: 128,
	}
	// BLELowPower mirrors a low-power beacon: adv 1022.5 ms, scan window
	// 11.25 ms every 1.28 s.
	BLELowPower = PI{
		Name: "BLE-low-power", Ta: 1022500,
		Ts: 1280 * timebase.Millisecond, Ds: 11250,
		Omega: 128,
	}
)
