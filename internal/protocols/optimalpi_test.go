package protocols

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/coverage"
)

func TestOptimalPIMeetsBound(t *testing.T) {
	p := core.Params{Omega: 36, Alpha: 1}
	for _, eta := range []float64{0.01, 0.02, 0.05} {
		cfg, err := OptimalPI(p.Omega, p.Alpha, eta)
		if err != nil {
			t.Fatalf("η=%v: %v", eta, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("η=%v: invalid PI: %v", eta, err)
		}
		// Advertiser vs scanner built purely from the PI parameters.
		adv, err := (PI{Ta: cfg.Ta, Omega: cfg.Omega}).Device()
		if err != nil {
			t.Fatal(err)
		}
		scan, err := (PI{Ts: cfg.Ts, Ds: cfg.Ds, Omega: cfg.Omega}).Device()
		if err != nil {
			t.Fatal(err)
		}
		res, err := coverage.Analyze(adv.B, scan.C, coverage.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Deterministic {
			t.Fatalf("η=%v: optimal PI not deterministic", eta)
		}
		etaAch := cfg.Eta(p.Alpha)
		bound := p.Symmetric(etaAch)
		ratio := float64(res.WorstLatency) / bound
		if ratio < 0.999 || ratio > 1.1 {
			t.Errorf("η=%v: BLE-parametrized optimum ratio %v to Thm 5.5", eta, ratio)
		}
	}
}

func TestOptimalPIParameterShape(t *testing.T) {
	cfg, err := OptimalPI(36, 1, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	// Ts = TC = k·d, Ds = d, Ta = λ = (k−1)·d: the PI triple must satisfy
	// the Overlap Theorem's divisibility and the gap relation λ ≡ −d
	// (mod TC) — i.e. Ts = Ta + Ds.
	if cfg.Ts != cfg.Ta+cfg.Ds {
		t.Errorf("Ts=%v != Ta+Ds=%v: optimal PI relation broken", cfg.Ts, cfg.Ta+cfg.Ds)
	}
	if cfg.Ts%cfg.Ds != 0 {
		t.Errorf("Ts=%v not a multiple of Ds=%v (Theorem 5.3)", cfg.Ts, cfg.Ds)
	}
	// Requested duty-cycle realized within rounding.
	if got := cfg.Eta(1); math.Abs(got-0.02)/0.02 > 0.05 {
		t.Errorf("η achieved %v, want ≈ 0.02", got)
	}
}

func TestOptimalPIRejectsBadInput(t *testing.T) {
	if _, err := OptimalPI(36, 1, 0); err == nil {
		t.Error("η=0 accepted")
	}
	if _, err := OptimalPI(36, 0, 0.02); err == nil {
		t.Error("α=0 accepted")
	}
	// Small α pushes β = η/2α above what ω permits: λ = ω/β < ω.
	if _, err := OptimalPI(36, 0.1, 0.5); err == nil {
		t.Error("λ ≤ ω configuration accepted")
	}
}
