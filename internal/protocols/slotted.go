// Package protocols implements the neighbor-discovery protocols the paper
// compares against its fundamental bounds (Section 6 / Table 1), plus the
// periodic-interval (PI / BLE-like) protocol family.
//
// Slotted protocols subdivide time into slots of length I. In an active
// slot a device transmits a beacon at the beginning and at the end of the
// slot and listens in between (the classic Disco slot layout); discovery is
// guaranteed once two active slots of different devices overlap by at least
// one packet airtime ω. Each protocol here is generated as a real
// (B∞, C∞) schedule so that the same coverage engine that certifies the
// optimal constructions re-measures the comparison protocols — no formula
// is trusted without a measured counterpart.
package protocols

import (
	"fmt"
	"sort"

	"repro/internal/diffset"
	"repro/internal/gf"
	"repro/internal/interval"
	"repro/internal/schedule"
	"repro/internal/timebase"
)

// Slotted is a slotted ND protocol: a period of Period slots of length
// SlotLen, of which the sorted Active indices are active.
type Slotted struct {
	Name       string
	SlotLen    timebase.Ticks // the slot length I
	Omega      timebase.Ticks // packet airtime ω
	Period     int            // schedule period T, in slots
	Active     []int          // active slot indices within [0, Period)
	WorstSlots int            // literature worst-case bound in slots (0 = unknown)

	// ExtendListen prolongs every active slot's listening by this amount
	// beyond the slot end (overlapping extensions merge). Searchlight-S
	// relies on such slot extension: striped probing alone leaves a small
	// fraction of offsets uncovered, which the overlap closes.
	ExtendListen timebase.Ticks
}

// Validate checks the structural invariants.
func (s *Slotted) Validate() error {
	if s.SlotLen <= 2*s.Omega {
		return fmt.Errorf("protocols: slot length %d must exceed 2ω = %d (beacon at each slot edge)", s.SlotLen, 2*s.Omega)
	}
	if s.Omega <= 0 {
		return fmt.Errorf("protocols: packet airtime %d must be positive", s.Omega)
	}
	if s.Period < 1 {
		return fmt.Errorf("protocols: period %d slots invalid", s.Period)
	}
	if len(s.Active) == 0 {
		return fmt.Errorf("protocols: no active slots")
	}
	prev := -1
	for _, a := range s.Active {
		if a < 0 || a >= s.Period {
			return fmt.Errorf("protocols: active slot %d outside [0, %d)", a, s.Period)
		}
		if a <= prev {
			return fmt.Errorf("protocols: active slots not strictly increasing at %d", a)
		}
		prev = a
	}
	return nil
}

// Device materializes the slotted schedule as beacon and window sequences:
// per active slot s, beacons at s·I and (s+1)·I − ω, and a reception window
// spanning the time between them.
func (s *Slotted) Device() (schedule.Device, error) {
	if err := s.Validate(); err != nil {
		return schedule.Device{}, err
	}
	period := timebase.Ticks(s.Period) * s.SlotLen
	var beacons []schedule.Beacon
	var windows []schedule.Window
	for _, a := range s.Active {
		start := timebase.Ticks(a) * s.SlotLen
		beacons = append(beacons,
			schedule.Beacon{Time: start, Len: s.Omega},
			schedule.Beacon{Time: start + s.SlotLen - s.Omega, Len: s.Omega},
		)
		windows = append(windows, schedule.Window{
			Start: start + s.Omega,
			Len:   s.SlotLen - 2*s.Omega,
		})
	}
	d := schedule.Device{
		B: schedule.BeaconSeq{Beacons: beacons, Period: period},
		C: schedule.WindowSeq{Windows: windows, Period: period},
	}
	return d, d.Validate()
}

// DeviceFullDuplex materializes the schedule under the full-duplex
// idealization the paper itself uses to derive the slotted latency limit
// (Section 6.1.1): the device listens during the whole of every active
// slot, including while transmitting its edge beacons. Runs of consecutive
// active slots merge into single windows. This layout makes the slot-count
// guarantees exact under arbitrary (non-slot-aligned) phase offsets,
// whereas the half-duplex layout of Device loses the 2ω/I offset fraction
// illustrated by the paper's Figure 5.
func (s *Slotted) DeviceFullDuplex() (schedule.Device, error) {
	if err := s.Validate(); err != nil {
		return schedule.Device{}, err
	}
	period := timebase.Ticks(s.Period) * s.SlotLen
	var beacons []schedule.Beacon
	for _, a := range s.Active {
		start := timebase.Ticks(a) * s.SlotLen
		beacons = append(beacons,
			schedule.Beacon{Time: start, Len: s.Omega},
			schedule.Beacon{Time: start + s.SlotLen - s.Omega, Len: s.Omega},
		)
	}
	// Merge the (possibly extended) listening stretches on the circle, so
	// runs of consecutive slots and overlapping extensions coalesce.
	set := interval.NewSet(period)
	for _, a := range s.Active {
		set.Add(timebase.Ticks(a)*s.SlotLen, s.SlotLen+s.ExtendListen)
	}
	var windows []schedule.Window
	for _, iv := range set.Intervals() {
		windows = append(windows, schedule.Window{Start: iv.Lo, Len: iv.Len()})
	}
	d := schedule.Device{
		B: schedule.BeaconSeq{Beacons: beacons, Period: period},
		C: schedule.WindowSeq{Windows: windows, Period: period},
	}
	return d, d.Validate()
}

// Beta returns the channel utilization: two packets per active slot.
func (s *Slotted) Beta() float64 {
	return float64(2*len(s.Active)) * float64(s.Omega) / (float64(s.Period) * float64(s.SlotLen))
}

// Gamma returns the receive duty-cycle: the listening stretch between the
// two beacons of every active slot.
func (s *Slotted) Gamma() float64 {
	return float64(len(s.Active)) * float64(s.SlotLen-2*s.Omega) / (float64(s.Period) * float64(s.SlotLen))
}

// Eta returns the total duty-cycle α·β + γ.
func (s *Slotted) Eta(alpha float64) float64 { return alpha*s.Beta() + s.Gamma() }

// WorstCaseTime converts the literature worst-case slot count into time.
func (s *Slotted) WorstCaseTime() timebase.Ticks {
	return timebase.Ticks(s.WorstSlots) * s.SlotLen
}

// SlotLenForBeta inverts Equation 20 of the paper: the slot length I that
// realizes channel utilization β for a schedule with k active slots (two
// packets each) in a period of T slots: β = 2kω/(I·T).
func SlotLenForBeta(k, t int, omega timebase.Ticks, beta float64) (timebase.Ticks, error) {
	if k <= 0 || t <= 0 || omega <= 0 || beta <= 0 {
		return 0, fmt.Errorf("protocols: invalid parameters k=%d t=%d ω=%d β=%v", k, t, omega, beta)
	}
	i := timebase.Ticks(float64(2*k) * float64(omega) / (beta * float64(t)))
	if i <= 2*omega {
		return 0, fmt.Errorf("protocols: requested β=%v needs slot length %d ≤ 2ω; channel utilization too high for this schedule", beta, i)
	}
	return i, nil
}

// NewDiffcode builds the difference-set schedule ("Diffcodes" in Table 1)
// of order q: T = q²+q+1 slots with the q+1 slots of a perfect difference
// set active. Guarantees a slot overlap within T slots for every phase
// shift — the optimal slotted design meeting k = ⌈√T⌉.
func NewDiffcode(q int, slotLen, omega timebase.Ticks) (*Slotted, error) {
	ds, err := diffset.ForOrder(q)
	if err != nil {
		return nil, err
	}
	s := &Slotted{
		Name:       fmt.Sprintf("Diffcode(q=%d)", q),
		SlotLen:    slotLen,
		Omega:      omega,
		Period:     ds.N,
		Active:     ds.Elems,
		WorstSlots: ds.N,
	}
	return s, s.Validate()
}

// NewDisco builds Disco with primes p1 < p2: a device is active in slot i
// iff i ≡ 0 (mod p1) or i ≡ 0 (mod p2). Two devices running coprime pairs
// discover each other within p1·p2 slots (CRT); duty-cycle ≈ 1/p1 + 1/p2.
func NewDisco(p1, p2 int, slotLen, omega timebase.Ticks) (*Slotted, error) {
	if !gf.IsPrime(p1) || !gf.IsPrime(p2) {
		return nil, fmt.Errorf("protocols: Disco requires primes, got %d, %d", p1, p2)
	}
	if p1 >= p2 {
		return nil, fmt.Errorf("protocols: Disco requires p1 < p2, got %d ≥ %d", p1, p2)
	}
	period := p1 * p2
	var active []int
	for i := 0; i < period; i++ {
		if i%p1 == 0 || i%p2 == 0 {
			active = append(active, i)
		}
	}
	s := &Slotted{
		Name:       fmt.Sprintf("Disco(%d,%d)", p1, p2),
		SlotLen:    slotLen,
		Omega:      omega,
		Period:     period,
		Active:     active,
		WorstSlots: period,
	}
	return s, s.Validate()
}

// NewUConnect builds U-Connect with prime p: active every p-th slot, plus
// (p+1)/2 consecutive slots at the start of every p² slots. Worst case p²
// slots at duty-cycle (3p+1)/(2p²).
func NewUConnect(p int, slotLen, omega timebase.Ticks) (*Slotted, error) {
	if !gf.IsPrime(p) || p < 3 {
		return nil, fmt.Errorf("protocols: U-Connect requires an odd prime, got %d", p)
	}
	period := p * p
	activeSet := make(map[int]bool)
	for i := 0; i < period; i += p {
		activeSet[i] = true
	}
	for i := 0; i < (p+1)/2; i++ {
		activeSet[i] = true
	}
	active := make([]int, 0, len(activeSet))
	for i := range activeSet {
		active = append(active, i)
	}
	sort.Ints(active)
	s := &Slotted{
		Name:       fmt.Sprintf("U-Connect(%d)", p),
		SlotLen:    slotLen,
		Omega:      omega,
		Period:     period,
		Active:     active,
		WorstSlots: period,
	}
	return s, s.Validate()
}

// NewSearchlight builds Searchlight with period t: every subperiod of t
// slots has an anchor (slot 0) and a probe slot that sweeps positions
// 1..⌈t/2⌉ across consecutive subperiods (the full pattern period is
// therefore t·⌈t/2⌉ slots). striped selects Searchlight-S, which probes
// with stride 2 (odd positions only) and halves the positions to sweep by
// relying on slot overlap; its worst case is t·⌈t/4⌉ slots here because a
// probe within one slot of the anchor still overlaps it.
func NewSearchlight(t int, striped bool, slotLen, omega timebase.Ticks) (*Slotted, error) {
	if t < 4 {
		return nil, fmt.Errorf("protocols: Searchlight period %d too small", t)
	}
	sweep := (t + 1) / 2 // ⌈t/2⌉ probe positions for the plain variant
	stride := 1
	name := fmt.Sprintf("Searchlight(%d)", t)
	if striped {
		stride = 2
		sweep = (sweep + 1) / 2
		name = fmt.Sprintf("Searchlight-S(%d)", t)
	}
	period := t * sweep
	var active []int
	for j := 0; j < sweep; j++ {
		base := j * t
		probe := 1 + stride*j
		if probe >= t {
			probe = probe % (t - 1)
			if probe == 0 {
				probe = 1
			}
		}
		active = append(active, base, base+probe)
	}
	sort.Ints(active)
	// Deduplicate (probe may coincide with a later anchor boundary).
	active = dedupe(active)
	s := &Slotted{
		Name:       name,
		SlotLen:    slotLen,
		Omega:      omega,
		Period:     period,
		Active:     active,
		WorstSlots: period,
	}
	if striped {
		// Striped probing covers only every other probe position; the
		// protocol compensates by extending each active slot so adjacent
		// positions overlap (Bakht et al.). Half a slot of extra
		// listening closes the gaps.
		s.ExtendListen = slotLen / 2
	}
	return s, s.Validate()
}

func dedupe(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}
