// Package analysistest runs analyzers over fixture packages and checks
// their diagnostics against expectations written in the fixture source —
// the same contract as golang.org/x/tools/go/analysis/analysistest, on
// the in-tree framework.
//
// Fixtures live under <testdata>/src/<pkgpath>/ and are plain Go packages
// (GOPATH-style: the import path is the directory path relative to src).
// A line expecting diagnostics carries a trailing comment of the form
//
//	// want "regexp"
//	// want "first" "second"
//
// where each quoted string is a regular expression that must match the
// message of exactly one diagnostic reported on that line. Lines without
// a want comment must produce no diagnostics.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run loads each fixture package under testdata/src and applies the
// analyzer, failing the test on any mismatch between reported and
// expected diagnostics.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	loader := analysis.NewLoader(filepath.Join(testdata, "src"), "")
	pkgs, err := loader.LoadPatterns(filepath.Join(testdata, "src"), pkgpaths...)
	if err != nil {
		t.Fatalf("loading fixtures %v: %v", pkgpaths, err)
	}
	findings, err := analysis.Run([]*analysis.Analyzer{a}, pkgs)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	for _, pkg := range pkgs {
		checkPackage(t, pkg, findings)
	}
}

// expectation is one want entry: a message regexp awaiting its match.
type expectation struct {
	rx      *regexp.Regexp
	raw     string
	matched bool
}

// checkPackage compares the findings landing in pkg's files against the
// want comments in those files.
func checkPackage(t *testing.T, pkg *analysis.Package, findings []analysis.Finding) {
	t.Helper()
	wants := make(map[string][]*expectation) // "file:line" -> expectations
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := pkg.Fset.Position(c.Pos())
				exps, err := parseWant(c.Text)
				if err != nil {
					t.Fatalf("%s:%d: %v", pos.Filename, pos.Line, err)
				}
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				wants[key] = append(wants[key], exps...)
			}
		}
	}

	inPkg := func(pos token.Position) bool {
		return filepath.Dir(pos.Filename) == pkg.Dir
	}
	for _, f := range findings {
		if !inPkg(f.Position) {
			continue
		}
		key := fmt.Sprintf("%s:%d", f.Position.Filename, f.Position.Line)
		if !matchOne(wants[key], f.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", key, f.Message)
		}
	}
	keys := make([]string, 0, len(wants))
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, e := range wants[k] {
			if !e.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", k, e.raw)
			}
		}
	}
}

// matchOne marks and returns the first unmatched expectation whose regexp
// matches msg.
func matchOne(exps []*expectation, msg string) bool {
	for _, e := range exps {
		if !e.matched && e.rx.MatchString(msg) {
			e.matched = true
			return true
		}
	}
	return false
}

// wantRe extracts the payload of a want comment.
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// parseWant parses `// want "rx" "rx"...` from a comment's text (regexps
// may be double- or backtick-quoted); comments without a want marker yield
// nothing.
func parseWant(comment string) ([]*expectation, error) {
	m := wantRe.FindStringSubmatch(comment)
	if m == nil {
		return nil, nil
	}
	rest := strings.TrimSpace(m[1])
	var out []*expectation
	for rest != "" {
		if rest[0] != '"' && rest[0] != '`' {
			return nil, fmt.Errorf("malformed want comment: expected quoted regexp at %q", rest)
		}
		raw, err := nextQuoted(rest)
		if err != nil {
			return nil, fmt.Errorf("malformed want comment %q: %w", rest, err)
		}
		pattern, err := strconv.Unquote(raw)
		if err != nil {
			return nil, fmt.Errorf("malformed want string %s: %w", raw, err)
		}
		rx, err := regexp.Compile(pattern)
		if err != nil {
			return nil, fmt.Errorf("bad want regexp %q: %w", pattern, err)
		}
		out = append(out, &expectation{rx: rx, raw: pattern})
		rest = strings.TrimSpace(rest[len(raw):])
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("want comment with no expectations")
	}
	return out, nil
}

// nextQuoted returns the leading Go-quoted string literal of s, including
// its quotes. Both interpreted ("...") and raw (`...`) literals are
// accepted; raw literals have no escapes, so they simply run to the next
// backquote.
func nextQuoted(s string) (string, error) {
	if s[0] == '`' {
		if end := strings.IndexByte(s[1:], '`'); end >= 0 {
			return s[:end+2], nil
		}
		return "", fmt.Errorf("unterminated string")
	}
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return s[:i+1], nil
		}
	}
	return "", fmt.Errorf("unterminated string")
}
