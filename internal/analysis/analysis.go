// Package analysis is a self-contained, stdlib-only reimplementation of
// the golang.org/x/tools/go/analysis core: named Analyzer passes that
// receive a type-checked package and report position-tagged diagnostics.
//
// The repository's determinism linters (internal/analyzers, driven by
// cmd/ndlint) are written against this API. It exists in-tree because the
// build environment is hermetic — no module downloads — so the real
// x/tools module cannot be a dependency; the subset implemented here
// (Analyzer, Pass, Diagnostic, plus the loader in load.go and the fixture
// harness in analysistest/) is intentionally shaped like upstream so the
// analyzers could be ported to a stock multichecker by swapping imports.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static-analysis pass: a name (used as the
// diagnostic prefix and the -run filter), one line of documentation, and
// the Run function applied to each loaded package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and driver output. By
	// convention it is a single lowercase word.
	Name string

	// Doc is the analyzer's one-paragraph documentation: the first line is
	// the summary shown in driver help.
	Doc string

	// Run executes the pass over one package. Findings go through
	// pass.Report / pass.Reportf; the error return is for operational
	// failures (a broken config, not a finding).
	Run func(*Pass) error
}

// Pass carries one package's worth of material to an Analyzer.Run: the
// syntax, the type information, and the Report sink.
type Pass struct {
	// Analyzer is the pass being run (so shared helpers can name it).
	Analyzer *Analyzer

	// Fset maps token.Pos values in Files to file positions. It is shared
	// across every package of a load, so positions from imported packages'
	// objects resolve too.
	Fset *token.FileSet

	// Files is the package's parsed syntax, sorted by file name. Test
	// files (_test.go) are not loaded — the determinism contract governs
	// shipped code; tests may use wall clocks and ad-hoc RNG freely.
	Files []*ast.File

	// Pkg is the package's type-checked object and TypesInfo the
	// expression-level type facts (Types, Defs, Uses, Selections).
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver and the test harness
	// install their own sinks.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position inside the pass's file set and a
// human-readable message.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Finding is a diagnostic joined with the analyzer that produced it and
// its resolved file position — the unit drivers print and tests assert on.
type Finding struct {
	Analyzer string
	Position token.Position
	Message  string
}

// String renders the conventional file:line:col: analyzer: message form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Position, f.Analyzer, f.Message)
}

// Run applies every analyzer to every package and returns the collected
// findings sorted by file, line, column, analyzer and message — a total
// order, so driver output is deterministic. Analyzer errors abort the run.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Finding, error) {
	var out []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			pass.Report = func(d Diagnostic) {
				out = append(out, Finding{
					Analyzer: a.Name,
					Position: pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out, nil
}
