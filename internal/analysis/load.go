package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package: the unit analyzers run on.
type Package struct {
	// PkgPath is the import path ("repro/internal/sim", or the directory
	// path relative to the fixture root in GOPATH-style loads).
	PkgPath string

	// Dir is the absolute directory the sources were read from.
	Dir string

	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Loader parses and type-checks packages without the go/packages driver
// (unavailable in this hermetic build): module-local import paths resolve
// to directories under Root, everything else comes from GOROOT source via
// the stdlib "source" importer. Test files are never loaded — the linters
// govern shipped code paths.
type Loader struct {
	// Root is the directory packages are resolved under: the module root
	// (directory containing go.mod) or an analysistest fixture src root.
	Root string

	// ModPath is the module path go.mod declares. Empty means GOPATH-style
	// resolution: an import path is a directory relative to Root — the
	// layout analysistest fixtures use.
	ModPath string

	fset *token.FileSet
	std  types.ImporterFrom
	pkgs map[string]*loadResult
}

type loadResult struct {
	pkg     *Package
	err     error
	loading bool
}

// NewLoader returns a loader rooted at root. modPath may be empty for
// GOPATH-style fixture loading.
func NewLoader(root, modPath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Root:    root,
		ModPath: modPath,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:    make(map[string]*loadResult),
	}
}

// ModuleRoot walks up from dir to the directory containing go.mod.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("go.mod not found above %s", dir)
		}
		dir = parent
	}
}

// ModulePath reads the module path from root's go.mod.
func ModulePath(root string) (string, error) {
	blob, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(blob), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("%s/go.mod: no module directive", root)
}

// LoadPatterns resolves go-tool-style package patterns relative to base
// (".", "./...", "./internal/engine", "internal/..."), returning loaded
// packages sorted by import path. A pattern that matches no package is an
// error — a typo must not silently lint nothing.
func (l *Loader) LoadPatterns(base string, patterns ...string) ([]*Package, error) {
	base, err := filepath.Abs(base)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var paths []string
	add := func(dir string) error {
		path, err := l.dirToPkgPath(dir)
		if err != nil {
			return err
		}
		if !seen[path] {
			seen[path] = true
			paths = append(paths, path)
		}
		return nil
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			root := filepath.Join(base, rest)
			dirs, err := packageDirs(root)
			if err != nil {
				return nil, fmt.Errorf("pattern %q: %w", pat, err)
			}
			if len(dirs) == 0 {
				return nil, fmt.Errorf("pattern %q matched no packages under %s", pat, root)
			}
			for _, d := range dirs {
				if err := add(d); err != nil {
					return nil, err
				}
			}
			continue
		}
		dir := filepath.Join(base, pat)
		if !hasGoFiles(dir) {
			return nil, fmt.Errorf("pattern %q: no Go files in %s", pat, dir)
		}
		if err := add(dir); err != nil {
			return nil, err
		}
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.load(p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// dirToPkgPath maps an absolute directory under Root to its import path.
func (l *Loader) dirToPkgPath(dir string) (string, error) {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("directory %s is outside the load root %s", dir, l.Root)
	}
	rel = filepath.ToSlash(rel)
	if l.ModPath == "" {
		return rel, nil
	}
	if rel == "." {
		return l.ModPath, nil
	}
	return l.ModPath + "/" + rel, nil
}

// packageDirs walks root collecting directories that contain at least one
// non-test Go file, skipping testdata, vendor, and hidden/underscore
// directories (the go tool's pattern-matching rules).
func packageDirs(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			out = append(out, path)
		}
		return nil
	})
	return out, err
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && isSourceFile(e.Name()) {
			return true
		}
	}
	return false
}

// isSourceFile selects the files a load parses: non-test Go sources.
func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_")
}

// localDir resolves a module-local or fixture-local import path to its
// directory, or "" when the path is not local (stdlib or unknown).
func (l *Loader) localDir(path string) string {
	if l.ModPath != "" {
		if path == l.ModPath {
			return l.Root
		}
		if rest, ok := strings.CutPrefix(path, l.ModPath+"/"); ok {
			return filepath.Join(l.Root, filepath.FromSlash(rest))
		}
		return ""
	}
	// GOPATH-style: local iff the directory exists under Root. Stdlib
	// names ("fmt", "sync/atomic") never exist there.
	dir := filepath.Join(l.Root, filepath.FromSlash(path))
	if hasGoFiles(dir) {
		return dir
	}
	return ""
}

// Import implements types.Importer so the loader can hand itself to
// go/types: local paths load recursively, the rest comes from GOROOT.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir := l.localDir(path); dir != "" {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks one local package, memoized by import path.
func (l *Loader) load(path string) (*Package, error) {
	if r, ok := l.pkgs[path]; ok {
		if r.loading {
			return nil, fmt.Errorf("import cycle through %s", path)
		}
		return r.pkg, r.err
	}
	r := &loadResult{loading: true}
	l.pkgs[path] = r
	r.pkg, r.err = l.loadUncached(path)
	r.loading = false
	return r.pkg, r.err
}

func (l *Loader) loadUncached(path string) (*Package, error) {
	dir := l.localDir(path)
	if dir == "" {
		return nil, fmt.Errorf("package %s not found under %s", path, l.Root)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && isSourceFile(e.Name()) {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Strings(names)

	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErrs []string
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			typeErrs = append(typeErrs, err.Error())
		},
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		const max = 10
		shown := typeErrs
		if len(shown) > max {
			shown = shown[:max]
		}
		return nil, fmt.Errorf("type-checking %s:\n  %s", path, strings.Join(shown, "\n  "))
	}
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return &Package{
		PkgPath:   path,
		Dir:       dir,
		Fset:      l.fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}
