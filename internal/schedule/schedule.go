// Package schedule models the building blocks of neighbor-discovery
// protocols exactly as the paper defines them in Section 3:
//
//   - a reception window sequence C (Definition 3.1) — the time windows
//     during which a device listens, repeated with period TC;
//   - a beacon sequence B (Definition 3.2) — the instants at which a device
//     transmits, with packet airtime ω, repeated with period TB;
//   - an ND protocol (Definition 3.3) — the pairing of an infinite beacon
//     sequence on one device with an infinite reception window sequence on
//     another;
//   - the duty-cycle metrics (Definition 3.5) — transmit share β (also the
//     channel utilization), receive share γ, and the weighted total
//     η = α·β + γ where α = Ptx/Prx.
//
// Infinite sequences are represented as finite sequences plus a period
// (Lemma 3.1); aperiodic sequences (Appendix A.1) are supported through the
// BeaconStream and WindowStream interfaces, which the periodic types also
// implement.
package schedule

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/timebase"
)

// Window is a reception window c = (t, d): the device listens during the
// half-open interval [Start, Start+Len).
type Window struct {
	Start, Len timebase.Ticks
}

// End returns the first instant after the window, Start + Len.
func (w Window) End() timebase.Ticks { return w.Start + w.Len }

// Beacon is a transmission b sent at Time with airtime Len (the paper's ω).
type Beacon struct {
	Time, Len timebase.Ticks
}

// End returns the first instant after the transmission.
func (b Beacon) End() timebase.Ticks { return b.Time + b.Len }

// WindowSeq is a finite reception window sequence C whose infinite
// concatenation forms C∞ (Definition 3.1). All window times are relative to
// the instance origin and must satisfy 0 ≤ Start and End ≤ Period, sorted
// and non-overlapping. Period is the paper's TC.
type WindowSeq struct {
	Windows []Window
	Period  timebase.Ticks
}

// Validate checks the structural invariants of the sequence.
func (c WindowSeq) Validate() error {
	if c.Period <= 0 {
		return fmt.Errorf("schedule: window sequence period %d is not positive", c.Period)
	}
	prevEnd := timebase.Ticks(-1)
	for i, w := range c.Windows {
		if w.Len <= 0 {
			return fmt.Errorf("schedule: window %d has non-positive length %d", i, w.Len)
		}
		if w.Start < 0 {
			return fmt.Errorf("schedule: window %d starts before the instance origin (%d)", i, w.Start)
		}
		if w.End() > c.Period {
			return fmt.Errorf("schedule: window %d ends at %d, beyond the period %d", i, w.End(), c.Period)
		}
		if w.Start < prevEnd {
			return fmt.Errorf("schedule: window %d overlaps its predecessor", i)
		}
		if w.Start == prevEnd && i > 0 {
			return fmt.Errorf("schedule: window %d is adjacent to its predecessor; merge them", i)
		}
		prevEnd = w.End()
	}
	// The last window of one instance must not collide with the first of the
	// next: that is guaranteed by End ≤ Period together with Start ≥ 0, except
	// for the degenerate all-period window, which is fine.
	return nil
}

// NC returns nC, the number of windows per period.
func (c WindowSeq) NC() int { return len(c.Windows) }

// SumD returns Σ di, the total listening time per period.
func (c WindowSeq) SumD() timebase.Ticks {
	var s timebase.Ticks
	for _, w := range c.Windows {
		s += w.Len
	}
	return s
}

// Gamma returns the reception duty-cycle γ = Σdi / TC (Lemma 3.1).
func (c WindowSeq) Gamma() float64 {
	if c.Period <= 0 {
		return 0
	}
	return float64(c.SumD()) / float64(c.Period)
}

// GammaRatio returns γ as an exact rational.
func (c WindowSeq) GammaRatio() timebase.Ratio {
	return timebase.NewRatio(c.SumD(), c.Period)
}

// Empty reports whether the sequence contains no windows (a transmit-only
// device).
func (c WindowSeq) Empty() bool { return len(c.Windows) == 0 }

// WindowsWithin returns all windows of C∞ whose start lies in [from, to),
// in increasing start order, with absolute times. It implements
// WindowStream.
func (c WindowSeq) WindowsWithin(from, to timebase.Ticks) []Window {
	return c.AppendWindowsWithin(nil, from, to)
}

// AppendWindowsWithin appends the windows of C∞ starting in [from, to) to
// dst and returns the extended slice, letting hot callers reuse one buffer
// across calls instead of allocating per query.
func (c WindowSeq) AppendWindowsWithin(dst []Window, from, to timebase.Ticks) []Window {
	if c.Period <= 0 || len(c.Windows) == 0 || to <= from {
		return dst
	}
	// First instance index whose windows could start at or after from.
	firstCycle := floorDiv(from-c.Windows[len(c.Windows)-1].Start, c.Period) - 1
	for cycle := firstCycle; ; cycle++ {
		base := cycle * c.Period
		if base > to {
			break
		}
		for _, w := range c.Windows {
			t := base + w.Start
			if t < from {
				continue
			}
			if t >= to {
				break
			}
			dst = append(dst, Window{Start: t, Len: w.Len})
		}
	}
	return dst
}

// BeaconSeq is a finite beacon sequence B whose infinite concatenation forms
// a repetitive B∞ (Definition 3.2, Lemma 5.2). Times are relative to the
// instance origin, sorted strictly increasing, with 0 ≤ Time and
// Time + Len ≤ Period. Period is the paper's TB.
type BeaconSeq struct {
	Beacons []Beacon
	Period  timebase.Ticks
}

// Validate checks the structural invariants of the sequence.
func (b BeaconSeq) Validate() error {
	if b.Period <= 0 {
		return fmt.Errorf("schedule: beacon sequence period %d is not positive", b.Period)
	}
	prevEnd := timebase.Ticks(-1)
	for i, bc := range b.Beacons {
		if bc.Len <= 0 {
			return fmt.Errorf("schedule: beacon %d has non-positive airtime %d", i, bc.Len)
		}
		if bc.Time < 0 {
			return fmt.Errorf("schedule: beacon %d is sent before the instance origin (%d)", i, bc.Time)
		}
		if bc.End() > b.Period {
			return fmt.Errorf("schedule: beacon %d ends at %d, beyond the period %d", i, bc.End(), b.Period)
		}
		if bc.Time < prevEnd {
			return fmt.Errorf("schedule: beacon %d overlaps its predecessor", i)
		}
		prevEnd = bc.End()
	}
	return nil
}

// MB returns mB, the number of beacons per period.
func (b BeaconSeq) MB() int { return len(b.Beacons) }

// SumOmega returns Σ ωi, the total airtime per period.
func (b BeaconSeq) SumOmega() timebase.Ticks {
	var s timebase.Ticks
	for _, bc := range b.Beacons {
		s += bc.Len
	}
	return s
}

// Beta returns the transmission duty-cycle β = Σωi / TB (Lemma 3.1), which
// equals the channel utilization.
func (b BeaconSeq) Beta() float64 {
	if b.Period <= 0 {
		return 0
	}
	return float64(b.SumOmega()) / float64(b.Period)
}

// BetaRatio returns β as an exact rational.
func (b BeaconSeq) BetaRatio() timebase.Ratio {
	return timebase.NewRatio(b.SumOmega(), b.Period)
}

// Empty reports whether the sequence contains no beacons (a listen-only
// device).
func (b BeaconSeq) Empty() bool { return len(b.Beacons) == 0 }

// Gaps returns the beacon gaps λi between consecutive beacon transmissions,
// measured start-to-start, including the wrap-around gap from the last
// beacon of one instance to the first of the next. len(Gaps()) == MB().
func (b BeaconSeq) Gaps() []timebase.Ticks {
	m := len(b.Beacons)
	if m == 0 {
		return nil
	}
	gaps := make([]timebase.Ticks, m)
	for i := 0; i < m-1; i++ {
		gaps[i] = b.Beacons[i+1].Time - b.Beacons[i].Time
	}
	gaps[m-1] = b.Period - b.Beacons[m-1].Time + b.Beacons[0].Time
	return gaps
}

// MeanGap returns the average beacon gap λ̄ = TB / mB as a float.
func (b BeaconSeq) MeanGap() float64 {
	if len(b.Beacons) == 0 {
		return 0
	}
	return float64(b.Period) / float64(len(b.Beacons))
}

// MaxGap returns the largest beacon gap.
func (b BeaconSeq) MaxGap() timebase.Ticks {
	var m timebase.Ticks
	for _, g := range b.Gaps() {
		if g > m {
			m = g
		}
	}
	return m
}

// BeaconsWithin returns all beacons of B∞ sent (started) in [from, to), in
// increasing time order, with absolute times. It implements BeaconStream.
func (b BeaconSeq) BeaconsWithin(from, to timebase.Ticks) []Beacon {
	return b.AppendBeaconsWithin(nil, from, to)
}

// AppendBeaconsWithin appends the beacons of B∞ sent in [from, to) to dst
// and returns the extended slice, letting hot callers reuse one buffer
// across calls instead of allocating per query.
func (b BeaconSeq) AppendBeaconsWithin(dst []Beacon, from, to timebase.Ticks) []Beacon {
	if b.Period <= 0 || len(b.Beacons) == 0 || to <= from {
		return dst
	}
	firstCycle := floorDiv(from-b.Beacons[len(b.Beacons)-1].Time, b.Period) - 1
	for cycle := firstCycle; ; cycle++ {
		base := cycle * b.Period
		if base > to {
			break
		}
		for _, bc := range b.Beacons {
			t := base + bc.Time
			if t < from {
				continue
			}
			if t >= to {
				break
			}
			dst = append(dst, Beacon{Time: t, Len: bc.Len})
		}
	}
	return dst
}

// BeaconStream yields the beacons of a (possibly aperiodic) B∞ inside a
// time range. Implementations must return beacons in increasing time order
// and be consistent across calls (pure functions of the range).
type BeaconStream interface {
	BeaconsWithin(from, to timebase.Ticks) []Beacon
}

// WindowStream yields the reception windows of a (possibly aperiodic) C∞
// inside a time range, in increasing start order.
type WindowStream interface {
	WindowsWithin(from, to timebase.Ticks) []Window
}

// Interface checks.
var (
	_ BeaconStream = BeaconSeq{}
	_ WindowStream = WindowSeq{}
)

// Device couples the beacon and window sequences running on one device
// (the per-device half of a bidirectional ND protocol).
type Device struct {
	B BeaconSeq
	C WindowSeq
}

// Validate checks both sequences.
func (d Device) Validate() error {
	if !d.B.Empty() {
		if err := d.B.Validate(); err != nil {
			return err
		}
	}
	if !d.C.Empty() {
		if err := d.C.Validate(); err != nil {
			return err
		}
	}
	if d.B.Empty() && d.C.Empty() {
		return errors.New("schedule: device has neither beacons nor windows")
	}
	return nil
}

// Eta returns the total duty-cycle η = α·β + γ (Definition 3.5).
func (d Device) Eta(alpha float64) float64 {
	return alpha*d.B.Beta() + d.C.Gamma()
}

// BetaWithOverheads returns the effective transmit duty-cycle of a
// non-ideal radio (Appendix A.2, Equation 24): every transmission carries
// an additional doTx of effective active time for switching in and out of
// the transmit state.
func (b BeaconSeq) BetaWithOverheads(doTx timebase.Ticks) float64 {
	if b.Period <= 0 || len(b.Beacons) == 0 {
		return 0
	}
	return float64(b.SumOmega()+timebase.Ticks(len(b.Beacons))*doTx) / float64(b.Period)
}

// GammaWithOverheads returns the effective receive duty-cycle of a
// non-ideal radio (Appendix A.2, Equation 25): every reception window
// carries an additional doRx of switching time.
func (c WindowSeq) GammaWithOverheads(doRx timebase.Ticks) float64 {
	if c.Period <= 0 || len(c.Windows) == 0 {
		return 0
	}
	return float64(c.SumD()+timebase.Ticks(len(c.Windows))*doRx) / float64(c.Period)
}

// EtaWithOverheads returns the effective total duty-cycle of a non-ideal
// radio: η = α·β(doTx) + γ(doRx). Schedule timing is unchanged — overheads
// change what a schedule costs, not when it is active — so the same
// worst-case latency now requires a larger energy budget, which is exactly
// the content of the Appendix A.2 bound (Equation 27).
func (d Device) EtaWithOverheads(alpha float64, doTx, doRx timebase.Ticks) float64 {
	return alpha*d.B.BetaWithOverheads(doTx) + d.C.GammaWithOverheads(doRx)
}

// SelfOverlap measures, over the joint hyperperiod of B and C, the total
// time per hyperperiod during which the device is scheduled to transmit
// while it is also scheduled to listen. Appendix A.5 analyses the
// consequences of such overlaps: a half-duplex radio must interrupt the
// reception window, blocking doTxRx + doRxTx + ω of listening time.
//
// The second return value is the fraction of total listening time blocked,
// assuming zero turnaround overheads (pass the result to bounds.SelfBlocking
// for the non-ideal-radio version).
func (d Device) SelfOverlap() (perHyperperiod timebase.Ticks, fraction float64) {
	if d.B.Empty() || d.C.Empty() {
		return 0, 0
	}
	hp := timebase.LCM(d.B.Period, d.C.Period)
	windows := d.C.WindowsWithin(0, hp)
	beacons := d.B.BeaconsWithin(-d.B.Period, hp) // include beacons overlapping from before 0
	var blocked timebase.Ticks
	for _, w := range windows {
		for _, bc := range beacons {
			lo := maxT(w.Start, bc.Time)
			hi := minT(w.End(), bc.End())
			if hi > lo {
				blocked += hi - lo
			}
		}
	}
	listen := d.C.SumD() * (hp / d.C.Period)
	if listen == 0 {
		return blocked, 0
	}
	return blocked, float64(blocked) / float64(listen)
}

// NewUniformWindows builds the canonical optimal reception sequence: a
// single window of length d per period k·d (Theorem 5.3 with nC = 1). The
// window is placed at the end of the period so that, per Definition 3.1, the
// instance origin coincides with the end of the previous instance's window.
func NewUniformWindows(d timebase.Ticks, k int) (WindowSeq, error) {
	if d <= 0 {
		return WindowSeq{}, fmt.Errorf("schedule: window length %d not positive", d)
	}
	if k < 1 {
		return WindowSeq{}, fmt.Errorf("schedule: multiplier k=%d must be ≥ 1", k)
	}
	period := timebase.Ticks(k) * d
	c := WindowSeq{
		Windows: []Window{{Start: period - d, Len: d}},
		Period:  period,
	}
	return c, c.Validate()
}

// NewEqualGapBeacons builds a beacon sequence of m beacons with equal gaps
// λ = gap and airtime omega; the i-th beacon is sent at phase + i·gap. The
// resulting period is m·gap (Lemma 5.2: optimal sequences are repetitive
// with every sum of M gaps equal to M·λ̄).
func NewEqualGapBeacons(m int, gap, omega, phase timebase.Ticks) (BeaconSeq, error) {
	if m < 1 {
		return BeaconSeq{}, fmt.Errorf("schedule: beacon count m=%d must be ≥ 1", m)
	}
	if gap <= omega {
		return BeaconSeq{}, fmt.Errorf("schedule: beacon gap %d must exceed airtime %d", gap, omega)
	}
	if omega <= 0 {
		return BeaconSeq{}, fmt.Errorf("schedule: airtime %d must be positive", omega)
	}
	if phase < 0 || phase+omega > gap {
		return BeaconSeq{}, fmt.Errorf("schedule: phase %d must lie in [0, gap−ω]", phase)
	}
	beacons := make([]Beacon, m)
	for i := range beacons {
		beacons[i] = Beacon{Time: phase + timebase.Ticks(i)*gap, Len: omega}
	}
	b := BeaconSeq{Beacons: beacons, Period: timebase.Ticks(m) * gap}
	return b, b.Validate()
}

// NewBeaconsAt builds a beacon sequence from explicit relative times, all
// with the same airtime omega and the given period. Times are sorted.
func NewBeaconsAt(times []timebase.Ticks, omega, period timebase.Ticks) (BeaconSeq, error) {
	ts := append([]timebase.Ticks(nil), times...)
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	beacons := make([]Beacon, len(ts))
	for i, t := range ts {
		beacons[i] = Beacon{Time: t, Len: omega}
	}
	b := BeaconSeq{Beacons: beacons, Period: period}
	return b, b.Validate()
}

// NewWindowsAt builds a window sequence from explicit (start, length) pairs
// and the given period. Windows are sorted by start.
func NewWindowsAt(windows []Window, period timebase.Ticks) (WindowSeq, error) {
	ws := append([]Window(nil), windows...)
	sort.Slice(ws, func(i, j int) bool { return ws[i].Start < ws[j].Start })
	c := WindowSeq{Windows: ws, Period: period}
	return c, c.Validate()
}

func floorDiv(a, b timebase.Ticks) timebase.Ticks {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func maxT(a, b timebase.Ticks) timebase.Ticks {
	if a > b {
		return a
	}
	return b
}

func minT(a, b timebase.Ticks) timebase.Ticks {
	if a < b {
		return a
	}
	return b
}
