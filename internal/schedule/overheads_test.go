package schedule

import (
	"math"
	"testing"

	"repro/internal/timebase"
)

func TestBetaWithOverheads(t *testing.T) {
	b := mustBeacons(t, 4, 1000, 36, 0) // β = 4·36/4000 = 0.036
	if got := b.BetaWithOverheads(0); !almost(got, b.Beta()) {
		t.Errorf("zero overhead β = %v, want %v", got, b.Beta())
	}
	// doTx = 14: β = 4·(36+14)/4000 = 0.05.
	if got := b.BetaWithOverheads(14); !almost(got, 0.05) {
		t.Errorf("β with doTx = %v, want 0.05", got)
	}
	if got := (BeaconSeq{Period: 100}).BetaWithOverheads(10); got != 0 {
		t.Errorf("empty sequence β = %v", got)
	}
}

func TestGammaWithOverheads(t *testing.T) {
	c := mustWindows(t, 1000, 40) // γ = 1/40 = 0.025
	if got := c.GammaWithOverheads(0); !almost(got, c.Gamma()) {
		t.Errorf("zero overhead γ = %v", got)
	}
	// doRx = 200: γ = (1000+200)/40000 = 0.03.
	if got := c.GammaWithOverheads(200); !almost(got, 0.03) {
		t.Errorf("γ with doRx = %v, want 0.03", got)
	}
	if got := (WindowSeq{Period: 100}).GammaWithOverheads(10); got != 0 {
		t.Errorf("empty sequence γ = %v", got)
	}
}

func TestEtaWithOverheadsComposition(t *testing.T) {
	d := Device{
		B: mustBeacons(t, 1, 1000, 10, 0),
		C: mustWindows(t, 20, 50),
	}
	alpha := 2.0
	var doTx, doRx timebase.Ticks = 5, 10
	want := alpha*d.B.BetaWithOverheads(doTx) + d.C.GammaWithOverheads(doRx)
	if got := d.EtaWithOverheads(alpha, doTx, doRx); !almost(got, want) {
		t.Errorf("EtaWithOverheads = %v, want %v", got, want)
	}
	// Overheads strictly increase η.
	if d.EtaWithOverheads(alpha, doTx, doRx) <= d.Eta(alpha) {
		t.Error("overheads did not increase η")
	}
}

func TestOverheadsDoNotChangeTiming(t *testing.T) {
	// Appendix A.2's point: overheads change the energy accounting, not
	// the schedule, so the same latency now costs a larger η. Here: the
	// overhead-adjusted duty-cycles plugged into Eq 27 reproduce the
	// schedule's physical worst case k·λ exactly.
	d1 := timebase.Ticks(1000)
	k := 8
	c := mustWindows(t, d1, k)
	lambda := c.Period - d1
	b := mustBeacons(t, k, lambda, 36, 0)

	var doTx, doRx timebase.Ticks = 20, 150
	betaEff := b.BetaWithOverheads(doTx)
	gammaEff := c.GammaWithOverheads(doRx)

	// Eq 27: L = (1/γ')·(1+doRx/d1)⁻¹… — algebraically
	// (1/γ')·(1+doRx/d1) · (ω+doTx)/β' = (TC/d1) · λ = k·λ.
	lhs := (1 / gammaEff) * (1 + float64(doRx)/float64(d1)) * float64(36+doTx) / betaEff
	want := float64(k) * float64(lambda)
	if math.Abs(lhs-want)/want > 1e-12 {
		t.Errorf("Eq 27 at adjusted duty-cycles = %v, want k·λ = %v", lhs, want)
	}
}
