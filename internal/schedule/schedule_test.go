package schedule

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/timebase"
)

func mustWindows(t *testing.T, d timebase.Ticks, k int) WindowSeq {
	t.Helper()
	c, err := NewUniformWindows(d, k)
	if err != nil {
		t.Fatalf("NewUniformWindows(%d, %d): %v", d, k, err)
	}
	return c
}

func mustBeacons(t *testing.T, m int, gap, omega, phase timebase.Ticks) BeaconSeq {
	t.Helper()
	b, err := NewEqualGapBeacons(m, gap, omega, phase)
	if err != nil {
		t.Fatalf("NewEqualGapBeacons(%d, %d, %d, %d): %v", m, gap, omega, phase, err)
	}
	return b
}

func TestWindowSeqValidate(t *testing.T) {
	cases := []struct {
		name string
		c    WindowSeq
		ok   bool
	}{
		{"empty ok", WindowSeq{Period: 100}, true},
		{"bad period", WindowSeq{Period: 0}, false},
		{"simple", WindowSeq{Windows: []Window{{0, 10}}, Period: 100}, true},
		{"full period window", WindowSeq{Windows: []Window{{0, 100}}, Period: 100}, true},
		{"negative start", WindowSeq{Windows: []Window{{-1, 10}}, Period: 100}, false},
		{"beyond period", WindowSeq{Windows: []Window{{95, 10}}, Period: 100}, false},
		{"zero length", WindowSeq{Windows: []Window{{0, 0}}, Period: 100}, false},
		{"overlapping", WindowSeq{Windows: []Window{{0, 10}, {5, 10}}, Period: 100}, false},
		{"adjacent", WindowSeq{Windows: []Window{{0, 10}, {10, 10}}, Period: 100}, false},
		{"two windows", WindowSeq{Windows: []Window{{0, 10}, {50, 10}}, Period: 100}, true},
	}
	for _, c := range cases {
		err := c.c.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestBeaconSeqValidate(t *testing.T) {
	cases := []struct {
		name string
		b    BeaconSeq
		ok   bool
	}{
		{"empty ok", BeaconSeq{Period: 100}, true},
		{"bad period", BeaconSeq{Period: -5}, false},
		{"simple", BeaconSeq{Beacons: []Beacon{{0, 5}}, Period: 100}, true},
		{"zero airtime", BeaconSeq{Beacons: []Beacon{{0, 0}}, Period: 100}, false},
		{"beyond period", BeaconSeq{Beacons: []Beacon{{98, 5}}, Period: 100}, false},
		{"overlap", BeaconSeq{Beacons: []Beacon{{0, 5}, {3, 5}}, Period: 100}, false},
		{"back to back ok", BeaconSeq{Beacons: []Beacon{{0, 5}, {5, 5}}, Period: 100}, true},
	}
	for _, c := range cases {
		err := c.b.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestUniformWindowsDutyCycle(t *testing.T) {
	c := mustWindows(t, 1000, 40) // 1 ms window every 40 ms
	if got := c.Gamma(); got != 0.025 {
		t.Errorf("Gamma = %v, want 0.025", got)
	}
	if got := c.GammaRatio(); got != timebase.NewRatio(1, 40) {
		t.Errorf("GammaRatio = %v, want 1/40", got)
	}
	if c.NC() != 1 || c.SumD() != 1000 || c.Period != 40000 {
		t.Errorf("unexpected shape: %+v", c)
	}
	// Window is anchored at the end of the period per Definition 3.1.
	if c.Windows[0].End() != c.Period {
		t.Errorf("window ends at %d, want %d", c.Windows[0].End(), c.Period)
	}
}

func TestEqualGapBeacons(t *testing.T) {
	b := mustBeacons(t, 4, 1000, 36, 0)
	if b.MB() != 4 || b.Period != 4000 {
		t.Fatalf("unexpected shape: %+v", b)
	}
	if got := b.Beta(); got != 4*36.0/4000.0 {
		t.Errorf("Beta = %v", got)
	}
	gaps := b.Gaps()
	for i, g := range gaps {
		if g != 1000 {
			t.Errorf("gap %d = %d, want 1000", i, g)
		}
	}
	if b.MeanGap() != 1000 || b.MaxGap() != 1000 {
		t.Errorf("MeanGap=%v MaxGap=%v", b.MeanGap(), b.MaxGap())
	}
}

func TestEqualGapBeaconsRejectsBadParams(t *testing.T) {
	if _, err := NewEqualGapBeacons(0, 100, 10, 0); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := NewEqualGapBeacons(1, 10, 10, 0); err == nil {
		t.Error("gap == omega accepted")
	}
	if _, err := NewEqualGapBeacons(1, 100, 0, 0); err == nil {
		t.Error("omega=0 accepted")
	}
	if _, err := NewEqualGapBeacons(1, 100, 10, 95); err == nil {
		t.Error("phase pushing beacon over the gap accepted")
	}
}

func TestGapsWrapAround(t *testing.T) {
	b, err := NewBeaconsAt([]timebase.Ticks{10, 30, 90}, 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	gaps := b.Gaps()
	want := []timebase.Ticks{20, 60, 20} // 90→10 across the period edge
	for i := range want {
		if gaps[i] != want[i] {
			t.Errorf("gap %d = %d, want %d", i, gaps[i], want[i])
		}
	}
	var sum timebase.Ticks
	for _, g := range gaps {
		sum += g
	}
	if sum != b.Period {
		t.Errorf("gaps sum to %d, want period %d", sum, b.Period)
	}
}

func TestBeaconsWithin(t *testing.T) {
	b := mustBeacons(t, 2, 50, 5, 10) // beacons at 10, 60 per 100-tick period
	got := b.BeaconsWithin(0, 250)
	wantTimes := []timebase.Ticks{10, 60, 110, 160, 210}
	if len(got) != len(wantTimes) {
		t.Fatalf("got %d beacons (%v), want %d", len(got), got, len(wantTimes))
	}
	for i, bc := range got {
		if bc.Time != wantTimes[i] || bc.Len != 5 {
			t.Errorf("beacon %d = %+v, want time %d", i, bc, wantTimes[i])
		}
	}
}

func TestBeaconsWithinNegativeRange(t *testing.T) {
	b := mustBeacons(t, 1, 100, 5, 20) // beacon at 20 per 100
	got := b.BeaconsWithin(-250, 50)
	wantTimes := []timebase.Ticks{-180, -80, 20}
	if len(got) != len(wantTimes) {
		t.Fatalf("got %v, want times %v", got, wantTimes)
	}
	for i, bc := range got {
		if bc.Time != wantTimes[i] {
			t.Errorf("beacon %d at %d, want %d", i, bc.Time, wantTimes[i])
		}
	}
}

func TestWindowsWithin(t *testing.T) {
	c := mustWindows(t, 10, 4) // window [30,40) per 40-tick period
	got := c.WindowsWithin(0, 120)
	wantStarts := []timebase.Ticks{30, 70, 110}
	if len(got) != len(wantStarts) {
		t.Fatalf("got %v", got)
	}
	for i, w := range got {
		if w.Start != wantStarts[i] || w.Len != 10 {
			t.Errorf("window %d = %+v, want start %d", i, w, wantStarts[i])
		}
	}
}

func TestStreamsEmptyRanges(t *testing.T) {
	b := mustBeacons(t, 1, 100, 5, 0)
	if got := b.BeaconsWithin(50, 50); got != nil {
		t.Errorf("empty range returned %v", got)
	}
	c := mustWindows(t, 10, 10)
	if got := c.WindowsWithin(10, 5); got != nil {
		t.Errorf("inverted range returned %v", got)
	}
	if got := (BeaconSeq{Period: 100}).BeaconsWithin(0, 1000); got != nil {
		t.Errorf("empty sequence returned %v", got)
	}
}

// Property: BeaconsWithin is consistent with membership arithmetic — a
// beacon at absolute time T appears iff T ≡ τi (mod TB) and from ≤ T < to.
func TestBeaconsWithinMatchesArithmetic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gap := timebase.Ticks(rng.Intn(90) + 10)
		m := rng.Intn(3) + 1
		omega := timebase.Ticks(rng.Intn(int(gap)-1) + 1)
		b, err := NewEqualGapBeacons(m, gap, omega, 0)
		if err != nil {
			return true // skip invalid random combos
		}
		from := timebase.Ticks(rng.Intn(1000) - 500)
		to := from + timebase.Ticks(rng.Intn(500))
		got := b.BeaconsWithin(from, to)
		// Reference: walk tick by tick.
		var want []timebase.Ticks
		for tt := from; tt < to; tt++ {
			rel := tt.Mod(b.Period)
			for _, bc := range b.Beacons {
				if bc.Time == rel {
					want = append(want, tt)
				}
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Time != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDeviceEta(t *testing.T) {
	d := Device{
		B: mustBeacons(t, 1, 1000, 10, 0), // β = 0.01
		C: mustWindows(t, 20, 50),         // γ = 0.02
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := d.Eta(1.0); !almost(got, 0.03) {
		t.Errorf("Eta(1) = %v, want 0.03", got)
	}
	if got := d.Eta(2.0); !almost(got, 0.04) {
		t.Errorf("Eta(2) = %v, want 0.04", got)
	}
}

func TestDeviceValidateRejectsEmpty(t *testing.T) {
	err := Device{}.Validate()
	if err == nil || !strings.Contains(err.Error(), "neither") {
		t.Errorf("empty device Validate = %v", err)
	}
}

func TestSelfOverlapDisjoint(t *testing.T) {
	// Beacon at [0,10), window [500,600) in a 1000-tick common period:
	// never overlap.
	b, _ := NewBeaconsAt([]timebase.Ticks{0}, 10, 1000)
	c, _ := NewWindowsAt([]Window{{500, 100}}, 1000)
	d := Device{B: b, C: c}
	blocked, frac := d.SelfOverlap()
	if blocked != 0 || frac != 0 {
		t.Errorf("disjoint schedules blocked=%d frac=%v", blocked, frac)
	}
}

func TestSelfOverlapFull(t *testing.T) {
	// Beacon right inside the window.
	b, _ := NewBeaconsAt([]timebase.Ticks{550}, 10, 1000)
	c, _ := NewWindowsAt([]Window{{500, 100}}, 1000)
	d := Device{B: b, C: c}
	blocked, frac := d.SelfOverlap()
	if blocked != 10 {
		t.Errorf("blocked = %d, want 10", blocked)
	}
	if !almost(frac, 0.1) {
		t.Errorf("fraction = %v, want 0.1", frac)
	}
}

func TestSelfOverlapAcrossHyperperiod(t *testing.T) {
	// B period 300, C period 200 → hyperperiod 600. Beacon at 0 (mod 300),
	// window [0,50) (mod 200). Overlaps at t=0 (10 ticks) and t=600k... within
	// one hyperperiod: beacons at 0, 300; windows at [0,50),[200,250),[400,450).
	// Beacon 0 overlaps window [0,50) by 10; beacon 300 overlaps nothing.
	b, _ := NewBeaconsAt([]timebase.Ticks{0}, 10, 300)
	c, _ := NewWindowsAt([]Window{{0, 50}}, 200)
	d := Device{B: b, C: c}
	blocked, _ := d.SelfOverlap()
	if blocked != 10 {
		t.Errorf("blocked = %d, want 10", blocked)
	}
}

func TestNewBeaconsAtSortsInput(t *testing.T) {
	b, err := NewBeaconsAt([]timebase.Ticks{90, 10, 50}, 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if b.Beacons[0].Time != 10 || b.Beacons[1].Time != 50 || b.Beacons[2].Time != 90 {
		t.Errorf("not sorted: %+v", b.Beacons)
	}
}

func TestNewWindowsAtSortsInput(t *testing.T) {
	c, err := NewWindowsAt([]Window{{60, 10}, {0, 10}}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if c.Windows[0].Start != 0 || c.Windows[1].Start != 60 {
		t.Errorf("not sorted: %+v", c.Windows)
	}
}

func almost(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-12
}
