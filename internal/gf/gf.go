// Package gf implements arithmetic in the prime fields GF(p) and their
// cubic extensions GF(p³).
//
// It exists as the substrate for the Singer construction of perfect cyclic
// difference sets (package diffset): the points of the projective plane
// PG(2, q) are the orbits of the multiplicative group of GF(q³) under
// GF(q)*, and a 2-dimensional GF(q)-subspace of GF(q³) cuts out a perfect
// (q²+q+1, q+1, 1) difference set. Those sets are exactly the optimal
// slotted wake-up schedules of Zheng et al. that the paper's Table 1 calls
// "Diffcodes".
//
// Only what the construction needs is implemented: modular arithmetic,
// irreducible-cubic search, extension-field multiplication and primitive
// element search. Everything is deterministic and exhaustively testable for
// the small field sizes neighbor discovery uses.
package gf

import (
	"fmt"
)

// IsPrime reports whether n is prime, by trial division. Field sizes in
// this repository are tiny (q ≤ a few hundred), so no probabilistic
// machinery is warranted.
func IsPrime(n int) bool {
	if n < 2 {
		return false
	}
	if n%2 == 0 {
		return n == 2
	}
	for d := 3; d*d <= n; d += 2 {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// PrimeFactors returns the distinct prime factors of n in increasing order.
func PrimeFactors(n int) []int {
	var out []int
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			out = append(out, d)
			for n%d == 0 {
				n /= d
			}
		}
	}
	if n > 1 {
		out = append(out, n)
	}
	return out
}

// Elem is an element of GF(p³), represented as a polynomial
// c[0] + c[1]·x + c[2]·x² over GF(p).
type Elem [3]int64

// IsZero reports whether the element is the additive identity.
func (e Elem) IsZero() bool { return e[0] == 0 && e[1] == 0 && e[2] == 0 }

// Ext is the extension field GF(p³), realized as GF(p)[x] modulo a monic
// irreducible cubic x³ + B·x² + C·x + D.
type Ext struct {
	P       int   // characteristic (prime)
	B, C, D int64 // modulus coefficients
}

// NewExt constructs GF(p³) for a prime p, searching for an irreducible
// monic cubic deterministically (smallest coefficients first).
func NewExt(p int) (*Ext, error) {
	if !IsPrime(p) {
		return nil, fmt.Errorf("gf: %d is not prime", p)
	}
	// A monic cubic over GF(p) is irreducible iff it has no roots in GF(p).
	for d := int64(1); d < int64(p); d++ {
		for c := int64(0); c < int64(p); c++ {
			for b := int64(0); b < int64(p); b++ {
				if cubicHasNoRoot(p, b, c, d) {
					return &Ext{P: p, B: b, C: c, D: d}, nil
				}
			}
		}
	}
	return nil, fmt.Errorf("gf: no irreducible cubic over GF(%d) found (impossible)", p)
}

func cubicHasNoRoot(p int, b, c, d int64) bool {
	pp := int64(p)
	for x := int64(0); x < pp; x++ {
		v := ((x*x%pp)*x + b*x%pp*x + c*x + d) % pp
		if v%pp == 0 {
			return false
		}
	}
	return true
}

// Order returns the size of the multiplicative group, p³ − 1.
func (f *Ext) Order() int { return f.P*f.P*f.P - 1 }

// Add returns a + b.
func (f *Ext) Add(a, b Elem) Elem {
	p := int64(f.P)
	return Elem{(a[0] + b[0]) % p, (a[1] + b[1]) % p, (a[2] + b[2]) % p}
}

// Neg returns −a.
func (f *Ext) Neg(a Elem) Elem {
	p := int64(f.P)
	return Elem{(p - a[0]) % p, (p - a[1]) % p, (p - a[2]) % p}
}

// ScalarMul returns s·a for s ∈ GF(p).
func (f *Ext) ScalarMul(s int64, a Elem) Elem {
	p := int64(f.P)
	s = ((s % p) + p) % p
	return Elem{a[0] * s % p, a[1] * s % p, a[2] * s % p}
}

// Mul returns a · b, reducing modulo the field's cubic.
func (f *Ext) Mul(a, b Elem) Elem {
	p := int64(f.P)
	// Schoolbook product: degree ≤ 4.
	var prod [5]int64
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			prod[i+j] = (prod[i+j] + a[i]*b[j]) % p
		}
	}
	// Reduce x⁴ then x³ using x³ ≡ −(B·x² + C·x + D).
	for deg := 4; deg >= 3; deg-- {
		coef := prod[deg]
		if coef == 0 {
			continue
		}
		prod[deg] = 0
		// x^deg = x^(deg-3) · x³ ≡ x^(deg-3) · −(B·x² + C·x + D)
		base := deg - 3
		prod[base+2] = (prod[base+2] + (p-f.B%p)*coef) % p
		prod[base+1] = (prod[base+1] + (p-f.C%p)*coef) % p
		prod[base+0] = (prod[base+0] + (p-f.D%p)*coef) % p
	}
	return Elem{prod[0] % p, prod[1] % p, prod[2] % p}
}

// One returns the multiplicative identity.
func (f *Ext) One() Elem { return Elem{1, 0, 0} }

// X returns the element x (the adjoined root of the cubic).
func (f *Ext) X() Elem { return Elem{0, 1, 0} }

// Pow returns a^n for n ≥ 0 by binary exponentiation.
func (f *Ext) Pow(a Elem, n int) Elem {
	if n < 0 {
		panic("gf: negative exponent")
	}
	result := f.One()
	base := a
	for n > 0 {
		if n&1 == 1 {
			result = f.Mul(result, base)
		}
		base = f.Mul(base, base)
		n >>= 1
	}
	return result
}

// ElementOrder returns the multiplicative order of a non-zero element.
func (f *Ext) ElementOrder(a Elem) int {
	if a.IsZero() {
		panic("gf: order of zero")
	}
	n := f.Order()
	order := n
	for _, q := range PrimeFactors(n) {
		for order%q == 0 && f.Pow(a, order/q) == f.One() {
			order /= q
		}
	}
	return order
}

// Primitive finds a generator of the multiplicative group GF(p³)*, i.e. an
// element of order p³ − 1. The search is deterministic: candidates are
// enumerated in a fixed order starting from x, which is primitive for many
// moduli; otherwise small perturbations are tried.
func (f *Ext) Primitive() Elem {
	n := f.Order()
	factors := PrimeFactors(n)
	isPrimitive := func(g Elem) bool {
		if g.IsZero() {
			return false
		}
		for _, q := range factors {
			if f.Pow(g, n/q) == f.One() {
				return false
			}
		}
		return true
	}
	if g := f.X(); isPrimitive(g) {
		return g
	}
	p := int64(f.P)
	for c2 := int64(0); c2 < p; c2++ {
		for c1 := int64(0); c1 < p; c1++ {
			for c0 := int64(0); c0 < p; c0++ {
				g := Elem{c0, c1, c2}
				if isPrimitive(g) {
					return g
				}
			}
		}
	}
	panic("gf: no primitive element found (impossible for a field)")
}
