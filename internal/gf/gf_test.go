package gf

import (
	"testing"
)

func TestIsPrime(t *testing.T) {
	primes := []int{2, 3, 5, 7, 11, 13, 97, 101, 997}
	for _, p := range primes {
		if !IsPrime(p) {
			t.Errorf("IsPrime(%d) = false", p)
		}
	}
	composites := []int{-3, 0, 1, 4, 9, 15, 91, 100, 561}
	for _, c := range composites {
		if IsPrime(c) {
			t.Errorf("IsPrime(%d) = true", c)
		}
	}
}

func TestPrimeFactors(t *testing.T) {
	cases := []struct {
		n    int
		want []int
	}{
		{2, []int{2}},
		{12, []int{2, 3}},
		{7, []int{7}},
		{360, []int{2, 3, 5}},
		{26, []int{2, 13}}, // 3³−1
		{124, []int{2, 31}},
	}
	for _, c := range cases {
		got := PrimeFactors(c.n)
		if len(got) != len(c.want) {
			t.Errorf("PrimeFactors(%d) = %v, want %v", c.n, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("PrimeFactors(%d) = %v, want %v", c.n, got, c.want)
			}
		}
	}
}

func TestNewExtRejectsComposite(t *testing.T) {
	if _, err := NewExt(4); err == nil {
		t.Error("NewExt(4) accepted a composite characteristic")
	}
	if _, err := NewExt(1); err == nil {
		t.Error("NewExt(1) accepted")
	}
}

func TestExtModulusIsIrreducible(t *testing.T) {
	for _, p := range []int{2, 3, 5, 7, 11, 13} {
		f, err := NewExt(p)
		if err != nil {
			t.Fatalf("NewExt(%d): %v", p, err)
		}
		// Re-verify: the stored cubic must have no root in GF(p).
		pp := int64(p)
		for x := int64(0); x < pp; x++ {
			v := (x*x%pp*x + f.B*x%pp*x + f.C*x + f.D) % pp
			if v == 0 {
				t.Errorf("GF(%d): modulus x³+%dx²+%dx+%d has root %d", p, f.B, f.C, f.D, x)
			}
		}
	}
}

func TestFieldAxiomsGF2Cubed(t *testing.T) {
	// GF(8) is small enough to verify the full field axioms exhaustively.
	f, err := NewExt(2)
	if err != nil {
		t.Fatal(err)
	}
	var elems []Elem
	for a := int64(0); a < 2; a++ {
		for b := int64(0); b < 2; b++ {
			for c := int64(0); c < 2; c++ {
				elems = append(elems, Elem{a, b, c})
			}
		}
	}
	if len(elems) != 8 {
		t.Fatalf("expected 8 elements, got %d", len(elems))
	}
	one := f.One()
	for _, a := range elems {
		// Additive inverse.
		if !f.Add(a, f.Neg(a)).IsZero() {
			t.Errorf("a + (−a) != 0 for %v", a)
		}
		// Multiplicative identity.
		if f.Mul(a, one) != a {
			t.Errorf("a·1 != a for %v", a)
		}
		for _, b := range elems {
			// Commutativity.
			if f.Mul(a, b) != f.Mul(b, a) {
				t.Errorf("a·b != b·a for %v, %v", a, b)
			}
			for _, c := range elems {
				// Associativity and distributivity.
				if f.Mul(f.Mul(a, b), c) != f.Mul(a, f.Mul(b, c)) {
					t.Errorf("(ab)c != a(bc) for %v %v %v", a, b, c)
				}
				if f.Mul(a, f.Add(b, c)) != f.Add(f.Mul(a, b), f.Mul(a, c)) {
					t.Errorf("a(b+c) != ab+ac for %v %v %v", a, b, c)
				}
			}
		}
	}
	// Every non-zero element must be invertible: a^(order) == 1.
	for _, a := range elems {
		if a.IsZero() {
			continue
		}
		if f.Pow(a, f.Order()) != one {
			t.Errorf("a^(p³−1) != 1 for %v", a)
		}
	}
}

func TestPowMatchesIteratedMul(t *testing.T) {
	f, err := NewExt(5)
	if err != nil {
		t.Fatal(err)
	}
	a := Elem{2, 3, 1}
	acc := f.One()
	for n := 0; n < 60; n++ {
		if got := f.Pow(a, n); got != acc {
			t.Fatalf("Pow(a, %d) = %v, want %v", n, got, acc)
		}
		acc = f.Mul(acc, a)
	}
}

func TestPrimitiveGeneratesGroup(t *testing.T) {
	for _, p := range []int{2, 3, 5, 7} {
		f, err := NewExt(p)
		if err != nil {
			t.Fatal(err)
		}
		g := f.Primitive()
		if got := f.ElementOrder(g); got != f.Order() {
			t.Errorf("GF(%d³): primitive element has order %d, want %d", p, got, f.Order())
		}
		// The powers g⁰..g^(order−1) must be pairwise distinct (spot-check
		// by counting distinct values for small fields).
		if p <= 3 {
			seen := map[Elem]bool{}
			e := f.One()
			for i := 0; i < f.Order(); i++ {
				if seen[e] {
					t.Errorf("GF(%d³): g^%d repeats an earlier power", p, i)
					break
				}
				seen[e] = true
				e = f.Mul(e, g)
			}
			if e != f.One() {
				t.Errorf("GF(%d³): g^order != 1", p)
			}
		}
	}
}

func TestScalarMul(t *testing.T) {
	f, _ := NewExt(7)
	a := Elem{1, 2, 3}
	if got := f.ScalarMul(3, a); got != (Elem{3, 6, 2}) {
		t.Errorf("3·a = %v", got)
	}
	if got := f.ScalarMul(-1, a); got != f.Neg(a) {
		t.Errorf("−1·a = %v, want %v", got, f.Neg(a))
	}
	if got := f.ScalarMul(0, a); !got.IsZero() {
		t.Errorf("0·a = %v", got)
	}
}

func TestElementOrderDividesGroupOrder(t *testing.T) {
	f, _ := NewExt(3)
	for a := int64(0); a < 3; a++ {
		for b := int64(0); b < 3; b++ {
			for c := int64(0); c < 3; c++ {
				e := Elem{a, b, c}
				if e.IsZero() {
					continue
				}
				ord := f.ElementOrder(e)
				if f.Order()%ord != 0 {
					t.Errorf("order %d of %v does not divide %d", ord, e, f.Order())
				}
				if f.Pow(e, ord) != f.One() {
					t.Errorf("e^ord != 1 for %v", e)
				}
			}
		}
	}
}
