package optimal

import (
	"repro/internal/timebase"
)

// AssistResult is the outcome of evaluating mutual assistance (the
// technique closing Appendix C, introduced by Griassdi [13]): after one-way
// discovery, the received beacon carries the sender's next reception-window
// time, and the discovering device schedules one extra packet there to
// complete two-way discovery. The price is the distance from the received
// beacon to the sender's next window — at most one period TC.
type AssistResult struct {
	// OneWayWorst is the worst-case latency until either direction
	// succeeds (Theorem C.1's metric), equal to the quadruple's period.
	OneWayWorst timebase.Ticks

	// TwoWayWorst is the worst-case latency until both devices know each
	// other when the first discovery is followed by an assisted reply.
	TwoWayWorst timebase.Ticks

	// TwoWayMean is the mean over all offsets and uniform entry instants.
	TwoWayMean float64

	// WorstPenalty is the largest beacon-to-next-window distance actually
	// incurred; the paper upper-bounds it by TC.
	WorstPenalty timebase.Ticks
}

// EvaluateAssistance exhaustively evaluates two-way discovery with mutual
// assistance for an Appendix C quadruple, at tick resolution.
//
// For every initial offset Φ of device F against device E, the first
// discovery happens at some instant s in one direction; the assisted reply
// lands in the original sender's next reception window, after a penalty of
// (next window start − s) mod T. The worst case over entry instants for a
// given Φ is the largest cyclic gap before a success instant plus that
// instant's penalty.
func EvaluateAssistance(q Quadruple) AssistResult {
	t := q.T
	window := q.Device.C.Windows[0]
	a, w := window.Start, window.Len
	beacons := q.Device.B.Beacons

	inWindow := func(x timebase.Ticks) bool {
		x = x.Mod(t)
		return x >= a && x < a+w
	}

	res := AssistResult{OneWayWorst: q.WorstCase}
	var meanNum float64
	for phi := timebase.Ticks(0); phi < t; phi++ {
		var succ []assistSuccess
		for _, bc := range beacons {
			// F's beacon lands in E's window: E replies in F's next
			// window. F's windows sit at (a + phi) mod t.
			if at := (bc.Time + phi).Mod(t); inWindow(at) {
				pen := (a + phi - at).Mod(t)
				succ = append(succ, assistSuccess{at: at, penalty: pen})
			}
			// E's beacon lands in F's window: F replies in E's next
			// window, which sits at a mod t.
			if inWindow(bc.Time - phi) {
				at := bc.Time.Mod(t)
				pen := (a - at).Mod(t)
				succ = append(succ, assistSuccess{at: at, penalty: pen})
			}
		}
		if len(succ) == 0 {
			continue // offset uncovered; quadruple invalid — caller checks
		}
		sortSuccesses(succ)
		// Merge successes at the same instant, keeping the smaller
		// penalty: if both directions succeed simultaneously, the faster
		// reply (or none at all) governs completion.
		merged := succ[:0]
		for _, s := range succ {
			if n := len(merged); n > 0 && merged[n-1].at == s.at {
				if s.penalty < merged[n-1].penalty {
					merged[n-1].penalty = s.penalty
				}
				continue
			}
			merged = append(merged, s)
		}
		succ = merged
		// For each success instant: entries in the cyclic gap before it
		// complete two-way at its instant + penalty.
		for i, s := range succ {
			prev := succ[(i-1+len(succ))%len(succ)].at
			gap := (s.at - prev).Mod(t)
			if gap == 0 && len(succ) > 1 {
				continue
			}
			if len(succ) == 1 {
				gap = t
			}
			total := gap + s.penalty
			if total > res.TwoWayWorst {
				res.TwoWayWorst = total
			}
			if s.penalty > res.WorstPenalty {
				res.WorstPenalty = s.penalty
			}
			// Entries uniform in the gap: mean wait gap/2, then penalty.
			meanNum += float64(gap) * (float64(gap)/2 + float64(s.penalty))
		}
	}
	res.TwoWayMean = meanNum / float64(t) / float64(t)
	return res
}

// assistSuccess is one first-direction reception instant with the wait
// until the assisted reply lands.
type assistSuccess struct {
	at      timebase.Ticks
	penalty timebase.Ticks
}

func sortSuccesses(xs []assistSuccess) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j].at < xs[j-1].at; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
