package optimal

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/timebase"
)

func TestNewUnidirectionalAchievesBound(t *testing.T) {
	for _, tc := range []struct {
		d timebase.Ticks
		k int
		m int
	}{
		{10, 4, 1},
		{10, 4, 2},
		{25, 8, 1},
		{100, 20, 1},
		{7, 3, 3},
	} {
		u, err := NewUnidirectional(2, tc.d, tc.k, tc.m)
		if err != nil {
			t.Fatalf("d=%d k=%d m=%d: %v", tc.d, tc.k, tc.m, err)
		}
		res, err := coverage.Analyze(u.Sender, u.Listener, coverage.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Deterministic {
			t.Errorf("d=%d k=%d m=%d: not deterministic", tc.d, tc.k, tc.m)
			continue
		}
		if !res.Disjoint {
			t.Errorf("d=%d k=%d m=%d: optimal construction must be disjoint", tc.d, tc.k, tc.m)
		}
		if res.WorstLatency != u.WorstCase {
			t.Errorf("d=%d k=%d m=%d: measured %d != predicted %d",
				tc.d, tc.k, tc.m, res.WorstLatency, u.WorstCase)
		}
		// The measured latency must equal the Theorem 5.4 bound exactly:
		// the construction is optimal, not merely close.
		if bound := u.PredictedBound(); math.Abs(float64(res.WorstLatency)-bound) > 1e-6 {
			t.Errorf("d=%d k=%d m=%d: measured %d != bound %v (construction must be tight)",
				tc.d, tc.k, tc.m, res.WorstLatency, bound)
		}
	}
}

func TestNewUnidirectionalRejectsBadParams(t *testing.T) {
	if _, err := NewUnidirectional(2, 10, 1, 1); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := NewUnidirectional(2, 10, 4, 0); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := NewUnidirectional(0, 10, 4, 1); err == nil {
		t.Error("ω=0 accepted")
	}
	if _, err := NewUnidirectional(50, 10, 4, 1); err == nil {
		t.Error("λ ≤ ω accepted")
	}
}

func TestForDutyCyclesApproximation(t *testing.T) {
	omega := timebase.Ticks(36)
	for _, tc := range []struct{ beta, gamma float64 }{
		{0.01, 0.025},
		{0.02, 0.02},
		{0.005, 0.1},
	} {
		u, err := ForDutyCycles(omega, tc.beta, tc.gamma)
		if err != nil {
			t.Fatalf("β=%v γ=%v: %v", tc.beta, tc.gamma, err)
		}
		if rel(u.Beta(), tc.beta) > 0.05 {
			t.Errorf("β achieved %v, want ≈%v", u.Beta(), tc.beta)
		}
		if rel(u.Gamma(), tc.gamma) > 0.05 {
			t.Errorf("γ achieved %v, want ≈%v", u.Gamma(), tc.gamma)
		}
	}
	if _, err := ForDutyCycles(omega, 0, 0.1); err == nil {
		t.Error("β=0 accepted")
	}
	if _, err := ForDutyCycles(omega, 0.01, 0.9); err == nil {
		t.Error("γ=0.9 accepted (needs k ≥ 2)")
	}
}

func TestNewSymmetricMeetsTheorem55(t *testing.T) {
	omega := timebase.Ticks(36)
	for _, eta := range []float64{0.01, 0.02, 0.05, 0.1} {
		pair, err := NewSymmetric(omega, 1.0, eta)
		if err != nil {
			t.Fatalf("η=%v: %v", eta, err)
		}
		// Measure both directions with the coverage engine.
		resEF, err := coverage.Analyze(pair.E.B, pair.F.C, coverage.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !resEF.Deterministic {
			t.Fatalf("η=%v: E→F not deterministic", eta)
		}
		if resEF.WorstLatency != pair.WorstCaseEtoF {
			t.Errorf("η=%v: measured %d != predicted %d", eta, resEF.WorstLatency, pair.WorstCaseEtoF)
		}
		// Against the bound for the *achieved* duty-cycle: must be exact.
		etaAch := pair.E.Eta(1.0)
		bound := (core.Params{Omega: omega, Alpha: 1}).Symmetric(etaAch)
		ratio := float64(pair.WorstCase()) / bound
		if ratio < 0.999 {
			t.Errorf("η=%v: measured beats the bound (ratio %v) — impossible, bug somewhere", eta, ratio)
		}
		if ratio > 1.1 {
			t.Errorf("η=%v: construction misses the bound by %v (should be within rounding)", eta, ratio)
		}
	}
}

func TestNewAsymmetricMeetsTheorem57(t *testing.T) {
	omega := timebase.Ticks(36)
	cases := [][2]float64{
		{0.02, 0.08},
		{0.05, 0.05},
		{0.01, 0.10},
	}
	for _, c := range cases {
		pair, err := NewAsymmetric(omega, 1.0, c[0], c[1])
		if err != nil {
			t.Fatalf("η=%v: %v", c, err)
		}
		resEF, err := coverage.Analyze(pair.E.B, pair.F.C, coverage.Options{})
		if err != nil {
			t.Fatal(err)
		}
		resFE, err := coverage.Analyze(pair.F.B, pair.E.C, coverage.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !resEF.Deterministic || !resFE.Deterministic {
			t.Fatalf("η=%v: not deterministic both ways", c)
		}
		if resEF.WorstLatency != pair.WorstCaseEtoF || resFE.WorstLatency != pair.WorstCaseFtoE {
			t.Errorf("η=%v: measured (%d, %d) != predicted (%d, %d)", c,
				resEF.WorstLatency, resFE.WorstLatency, pair.WorstCaseEtoF, pair.WorstCaseFtoE)
		}
		// Optimality condition from the proof: LE ≈ LF.
		if rel(float64(pair.WorstCaseEtoF), float64(pair.WorstCaseFtoE)) > 0.1 {
			t.Errorf("η=%v: one-way latencies unbalanced: %d vs %d", c,
				pair.WorstCaseEtoF, pair.WorstCaseFtoE)
		}
		// Against Theorem 5.7 for achieved duty cycles.
		etaE, etaF := pair.E.Eta(1.0), pair.F.Eta(1.0)
		bound := (core.Params{Omega: omega, Alpha: 1}).Asymmetric(etaE, etaF)
		ratio := float64(pair.WorstCase()) / bound
		if ratio < 0.999 || ratio > 1.15 {
			t.Errorf("η=%v: ratio to Thm 5.7 bound = %v", c, ratio)
		}
	}
}

func TestNewConstrainedRegimes(t *testing.T) {
	omega := timebase.Ticks(36)
	eta := 0.05
	p := core.Params{Omega: omega, Alpha: 1}

	// Slack cap: behaves like the unconstrained optimum.
	slack, err := NewConstrained(omega, 1.0, eta, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	unconstrained, err := NewSymmetric(omega, 1.0, eta)
	if err != nil {
		t.Fatal(err)
	}
	if slack.WorstCase() != unconstrained.WorstCase() {
		t.Errorf("slack cap changed the schedule: %d vs %d", slack.WorstCase(), unconstrained.WorstCase())
	}

	// Tight cap: latency degrades, channel use respects the cap, and the
	// measured worst case matches Theorem 5.6 for achieved values.
	bm := 0.005
	tight, err := NewConstrained(omega, 1.0, eta, bm)
	if err != nil {
		t.Fatal(err)
	}
	if tight.WorstCase() <= unconstrained.WorstCase() {
		t.Error("tight cap should increase latency")
	}
	betaAch := tight.E.B.Beta()
	if betaAch > bm*1.05 {
		t.Errorf("achieved β=%v exceeds cap %v", betaAch, bm)
	}
	res, err := coverage.Analyze(tight.E.B, tight.F.C, coverage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	etaAch := tight.E.Eta(1.0)
	bound := p.Constrained(etaAch, betaAch)
	if r := float64(res.WorstLatency) / bound; r < 0.999 || r > 1.1 {
		t.Errorf("constrained ratio to Thm 5.6 = %v", r)
	}
}

func TestMutualExclusiveQuadruple(t *testing.T) {
	for _, tc := range []struct {
		u timebase.Ticks
		m int
	}{
		{5, 2},
		{10, 3},
		{36, 5},
		{7, 1},
	} {
		q, err := NewMutualExclusive(2, tc.u, tc.m)
		if err != nil {
			t.Fatalf("u=%d m=%d: %v", tc.u, tc.m, err)
		}
		covered, worst := VerifyMutualExclusive(q)
		if !covered {
			t.Errorf("u=%d m=%d: some offset discovers in neither direction", tc.u, tc.m)
			continue
		}
		if worst != q.WorstCase {
			t.Errorf("u=%d m=%d: verified worst %d != predicted %d", tc.u, tc.m, worst, q.WorstCase)
		}
		if q.WorstCase != q.T {
			t.Errorf("u=%d m=%d: Theorem C.1 predicts L = T, got %d vs %d", tc.u, tc.m, q.WorstCase, q.T)
		}
	}
}

func TestMutualExclusiveHalvesTheBeacons(t *testing.T) {
	// Same η budget: the quadruple should achieve ≈ half the symmetric
	// worst case (Theorem C.1 vs Theorem 5.5).
	omega := timebase.Ticks(36)
	eta := 0.05
	q, err := ForEta(omega, 1.0, eta)
	if err != nil {
		t.Fatal(err)
	}
	covered, worst := VerifyMutualExclusive(q)
	if !covered {
		t.Fatal("quadruple not covered")
	}
	etaAch := q.Eta(1.0)
	bound := (core.Params{Omega: omega, Alpha: 1}).MutualExclusive(etaAch)
	ratio := float64(worst) / bound
	if ratio < 0.95 || ratio > 1.1 {
		t.Errorf("ratio to Thm C.1 bound = %v (worst %d, bound %v, ηach %v)", ratio, worst, bound, etaAch)
	}
}

func TestForEtaSizing(t *testing.T) {
	q, err := ForEta(36, 1.0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if rel(q.Eta(1.0), 0.1) > 0.1 {
		t.Errorf("achieved η=%v, want ≈0.1", q.Eta(1.0))
	}
	if _, err := ForEta(36, 1.0, 0); err == nil {
		t.Error("η=0 accepted")
	}
}

func TestNewRedundantQLatency(t *testing.T) {
	r, err := NewRedundant(2, 10, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.QWorstCase != 3*r.WorstCase {
		t.Errorf("QWorstCase = %d, want 3×%d", r.QWorstCase, r.WorstCase)
	}
	// The coverage engine's Q-latency must agree exactly.
	got, ok, err := coverage.QWorstLatency(r.Sender, r.Listener, 3, coverage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("Q-coverage not achieved")
	}
	if got != r.QWorstCase {
		t.Errorf("measured Q-latency %d != predicted %d", got, r.QWorstCase)
	}
	// Q=1 must coincide with the plain worst case.
	got1, ok, err := coverage.QWorstLatency(r.Sender, r.Listener, 1, coverage.Options{})
	if err != nil || !ok {
		t.Fatalf("Q=1: %v %v", ok, err)
	}
	if got1 != r.WorstCase {
		t.Errorf("Q=1 latency %d != worst case %d", got1, r.WorstCase)
	}
}

func TestPerturbedBeaconsInflateLatency(t *testing.T) {
	// Theorem 5.1 ablation: unequal M-gap sums at identical coverage
	// structure must cost latency relative to the bound at the achieved β.
	omega, d, k := timebase.Ticks(2), timebase.Ticks(10), 4
	b, err := PerturbedBeacons(omega, d, k)
	if err != nil {
		t.Fatal(err)
	}
	listener, err := NewUnidirectional(omega, d, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := coverage.Analyze(b, listener.Listener, coverage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deterministic {
		t.Fatal("perturbed sequence should remain deterministic (every gap ≡ −d mod TC)")
	}
	p := core.Params{Omega: omega, Alpha: 1}
	bound := p.CoverageBound(listener.Listener.Period, d, b.Beta())
	ratio := float64(res.WorstLatency) / bound
	if ratio <= 1.2 {
		t.Errorf("perturbation should inflate latency ≥ 20%% above the bound; ratio = %v", ratio)
	}
	// The equal-gap schedule at the same β must sit exactly on the bound:
	// measured via a fresh construction with gap = mean gap.
	if ratio > 1.5 {
		t.Errorf("inflation ratio %v implausibly large; expected ≈ 4/3", ratio)
	}
}

func TestPerturbedBeaconsRejectsBadParams(t *testing.T) {
	if _, err := PerturbedBeacons(2, 10, 1); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := PerturbedBeacons(10, 10, 4); err == nil {
		t.Error("d ≤ ω accepted")
	}
}

func rel(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}
