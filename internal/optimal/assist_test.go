package optimal

import (
	"testing"

	"repro/internal/timebase"
)

func TestEvaluateAssistanceBounds(t *testing.T) {
	for _, tc := range []struct {
		u timebase.Ticks
		m int
	}{
		{10, 3},
		{36, 5},
		{50, 10},
	} {
		q, err := NewMutualExclusive(2, tc.u, tc.m)
		if err != nil {
			t.Fatal(err)
		}
		res := EvaluateAssistance(q)
		if res.OneWayWorst != q.T {
			t.Errorf("u=%d m=%d: one-way %v != T %v", tc.u, tc.m, res.OneWayWorst, q.T)
		}
		// The paper's bound: the assistance penalty is at most TC (= T).
		if res.WorstPenalty >= q.T {
			t.Errorf("u=%d m=%d: penalty %v ≥ T", tc.u, tc.m, res.WorstPenalty)
		}
		if res.TwoWayWorst < res.OneWayWorst || res.TwoWayWorst > 2*q.T {
			t.Errorf("u=%d m=%d: two-way worst %v outside [T, 2T]", tc.u, tc.m, res.TwoWayWorst)
		}
		if res.TwoWayMean <= 0 || res.TwoWayMean > float64(res.TwoWayWorst) {
			t.Errorf("u=%d m=%d: mean %v out of range", tc.u, tc.m, res.TwoWayMean)
		}
	}
}

func TestAssistanceSingleBeaconPeriod(t *testing.T) {
	// m = 1: the construction places the single beacon at its own window's
	// start (the temporal correlation ζ), so the assisted reply lands with
	// zero penalty and the two-way worst equals the one-way worst T.
	q, err := NewMutualExclusive(2, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	covered, _ := VerifyMutualExclusive(q)
	if !covered {
		t.Fatal("m=1 quadruple not covered")
	}
	res := EvaluateAssistance(q)
	if res.WorstPenalty != 0 {
		t.Errorf("m=1 penalty %v, want 0 (beacon adjacent to own window)", res.WorstPenalty)
	}
	if res.TwoWayWorst != q.T {
		t.Errorf("two-way worst %v, want exactly T=%v", res.TwoWayWorst, q.T)
	}
}

func TestAssistanceMeanBelowWorstHalf(t *testing.T) {
	// With uniform entries the mean should be roughly half the worst for
	// near-uniform success spacing.
	q, err := ForEta(36, 1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	res := EvaluateAssistance(q)
	ratio := res.TwoWayMean / float64(res.TwoWayWorst)
	if ratio < 0.3 || ratio > 0.7 {
		t.Errorf("mean/worst = %v, want ≈ 0.5", ratio)
	}
}
