package optimal

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/coverage"
	"repro/internal/sim"
	"repro/internal/timebase"
)

// Property: every constructible unidirectional configuration is
// deterministic, disjoint, and meets its predicted worst case exactly.
func TestUnidirectionalAlwaysTight(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		omega := timebase.Ticks(rng.Intn(20) + 1)
		d := omega + timebase.Ticks(rng.Intn(50)+1)
		k := rng.Intn(10) + 2
		m := rng.Intn(3) + 1
		u, err := NewUnidirectional(omega, d, k, m)
		if err != nil {
			return true // unconstructible combination, fine
		}
		res, err := coverage.Analyze(u.Sender, u.Listener, coverage.Options{})
		if err != nil {
			return false
		}
		return res.Deterministic && res.Disjoint &&
			res.WorstLatency == u.WorstCase &&
			res.MinimalPrefix == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: scaling every time quantity by a constant scales the worst-case
// latency by the same constant (the bounds are scale-free in time).
func TestScaleInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		omega := timebase.Ticks(rng.Intn(5) + 1)
		d := omega + timebase.Ticks(rng.Intn(20)+1)
		k := rng.Intn(6) + 2
		scale := timebase.Ticks(rng.Intn(7) + 2)
		u1, err := NewUnidirectional(omega, d, k, 1)
		if err != nil {
			return true
		}
		u2, err := NewUnidirectional(omega*scale, d*scale, k, 1)
		if err != nil {
			return true
		}
		r1, err := coverage.Analyze(u1.Sender, u1.Listener, coverage.Options{})
		if err != nil {
			return false
		}
		r2, err := coverage.Analyze(u2.Sender, u2.Listener, coverage.Options{})
		if err != nil {
			return false
		}
		return r2.WorstLatency == r1.WorstLatency*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the Monte-Carlo simulator never observes a latency above the
// analytic worst case (+ω for the completion-time convention) on
// deterministic pairs.
func TestSimulatorNeverExceedsAnalyticWorstCase(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		omega := timebase.Ticks(rng.Intn(10) + 1)
		d := omega + timebase.Ticks(rng.Intn(30)+1)
		k := rng.Intn(6) + 2
		u, err := NewUnidirectional(omega, d, k, 1)
		if err != nil {
			return true
		}
		stats, err := sim.PairLatencies(
			u.SenderDevice(), u.ListenerDevice(),
			40, sim.Config{Horizon: 3 * u.WorstCase, Seed: rng.Int63()})
		if err != nil {
			return false
		}
		return stats.Misses == 0 && stats.Max <= u.WorstCase+omega
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: every constructible quadruple is fully covered and has
// worst-case one-way latency exactly T.
func TestQuadrupleAlwaysCovered(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		omega := timebase.Ticks(rng.Intn(8) + 1)
		u := omega + timebase.Ticks(rng.Intn(30)+1)
		m := rng.Intn(6) + 1
		q, err := NewMutualExclusive(omega, u, m)
		if err != nil {
			return true
		}
		covered, worst := VerifyMutualExclusive(q)
		return covered && worst == q.T
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: redundant coverage latency is exactly linear in Q.
func TestRedundancyLinearInQ(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		omega := timebase.Ticks(rng.Intn(5) + 1)
		d := omega + timebase.Ticks(rng.Intn(15)+1)
		k := rng.Intn(4) + 2
		q := rng.Intn(3) + 2
		r, err := NewRedundant(omega, d, k, q)
		if err != nil {
			return true
		}
		lat, ok, err := coverage.QWorstLatency(r.Sender, r.Listener, q, coverage.Options{})
		if err != nil || !ok {
			return false
		}
		return lat == timebase.Ticks(q)*r.WorstCase
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
