// Package optimal constructs neighbor-discovery schedules that achieve the
// paper's fundamental bounds with equality, certifying constructively that
// the bounds of Section 5 and Appendix C are tight.
//
// All constructions follow the structure the proofs identify as necessary:
//
//   - reception sequences with a single window per period TC = k·d
//     (Theorem 5.3 with nC = 1: TC must be a multiple of the coverage per
//     beacon);
//   - beacon sequences with equal gaps λ ≡ −d (mod TC), so that successive
//     beacon images tile the circle [0, TC) exactly once (Theorem 5.1 /
//     Lemma 5.2: every sum of M consecutive gaps must equal M·λ̄);
//   - for the Appendix C quadruple, per-period beacon positions whose
//     direct coverage S and reflected coverage −S partition the circle, so
//     that either device discovers its opposite with half the beacons.
//
// Constructions work on integer ticks: requested duty cycles are rounded to
// the nearest constructible rational, and the achieved values are reported
// alongside the predicted worst-case latency, which is exact by
// construction (and re-verified against the coverage engine in the tests).
package optimal

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/schedule"
	"repro/internal/timebase"
)

// Unidirectional is an optimal one-way configuration: a sender beaconing
// every Lambda ticks and a listener with one window of D ticks every
// K·D ticks. By construction K·Lambda is the exact worst-case latency.
type Unidirectional struct {
	Sender   schedule.BeaconSeq
	Listener schedule.WindowSeq

	K      int            // windows per covering cycle; γ = 1/K
	D      timebase.Ticks // window length
	Lambda timebase.Ticks // beacon gap; β = ω/λ

	// WorstCase is the exact worst-case latency K·Lambda; it equals the
	// Theorem 5.4 bound ω/(β·γ) for the achieved β and γ.
	WorstCase timebase.Ticks
}

// SenderDevice wraps the sender sequence as a transmit-only device.
func (u Unidirectional) SenderDevice() schedule.Device {
	return schedule.Device{B: u.Sender}
}

// ListenerDevice wraps the listener sequence as a receive-only device.
func (u Unidirectional) ListenerDevice() schedule.Device {
	return schedule.Device{C: u.Listener}
}

// Beta returns the achieved transmit duty-cycle ω/λ.
func (u Unidirectional) Beta() float64 {
	return float64(u.Sender.Beacons[0].Len) / float64(u.Lambda)
}

// Gamma returns the achieved receive duty-cycle 1/K.
func (u Unidirectional) Gamma() float64 { return 1 / float64(u.K) }

// NewUnidirectional builds the optimal one-way pair from exact integer
// parameters: window length d, listener period k·d, and beacon gap
// λ = (m·k − 1)·d for a gap multiplier m ≥ 1. Every choice satisfies
// λ ≡ −d (mod TC), so k consecutive beacon images tile the listener period
// exactly and the pair is disjoint-deterministic with L = k·λ.
func NewUnidirectional(omega, d timebase.Ticks, k, m int) (Unidirectional, error) {
	if k < 2 {
		return Unidirectional{}, fmt.Errorf("optimal: k=%d must be ≥ 2", k)
	}
	if m < 1 {
		return Unidirectional{}, fmt.Errorf("optimal: gap multiplier m=%d must be ≥ 1", m)
	}
	if d <= 0 || omega <= 0 {
		return Unidirectional{}, fmt.Errorf("optimal: d=%d and ω=%d must be positive", d, omega)
	}
	lambda := timebase.Ticks(m*k-1) * d
	if lambda <= omega {
		return Unidirectional{}, fmt.Errorf("optimal: beacon gap %d must exceed ω=%d; increase d or k", lambda, omega)
	}
	listener, err := schedule.NewUniformWindows(d, k)
	if err != nil {
		return Unidirectional{}, err
	}
	sender, err := schedule.NewEqualGapBeacons(k, lambda, omega, 0)
	if err != nil {
		return Unidirectional{}, err
	}
	return Unidirectional{
		Sender:    sender,
		Listener:  listener,
		K:         k,
		D:         d,
		Lambda:    lambda,
		WorstCase: timebase.Ticks(k) * lambda,
	}, nil
}

// ForDutyCycles builds the optimal one-way pair closest to the requested
// transmit share beta (sender) and receive share gamma (listener): k is the
// nearest integer to 1/γ and d the nearest window length making
// λ = (k−1)·d ≈ ω/β. Achieved duty cycles are exact rationals close to the
// request; inspect Beta()/Gamma() for the realized values.
func ForDutyCycles(omega timebase.Ticks, beta, gamma float64) (Unidirectional, error) {
	if beta <= 0 || beta >= 1 || gamma <= 0 || gamma > 0.5 {
		return Unidirectional{}, fmt.Errorf("optimal: duty cycles β=%v, γ=%v out of constructible range", beta, gamma)
	}
	k := int(math.Round(1 / gamma))
	if k < 2 {
		k = 2
	}
	lambdaTarget := float64(omega) / beta
	d := timebase.Ticks(math.Round(lambdaTarget / float64(k-1)))
	if d < 1 {
		d = 1
	}
	return NewUnidirectional(omega, d, k, 1)
}

// Pair is an optimal bidirectional configuration of two devices.
type Pair struct {
	E, F schedule.Device

	// WorstCaseEtoF is the exact worst-case latency for F discovering E
	// (E's beacons against F's windows); WorstCaseFtoE the reverse.
	WorstCaseEtoF, WorstCaseFtoE timebase.Ticks
}

// WorstCase returns the two-way worst-case latency max(L_E→F, L_F→E).
func (p Pair) WorstCase() timebase.Ticks {
	if p.WorstCaseEtoF > p.WorstCaseFtoE {
		return p.WorstCaseEtoF
	}
	return p.WorstCaseFtoE
}

// NewSymmetric builds an optimal symmetric bidirectional protocol for total
// duty-cycle eta: both devices run the same (B∞, C∞) with the latency-
// optimal split β = η/(2α), γ = η/2 (Theorem 5.5). The realized worst-case
// latency approaches 4αω/η² up to integer rounding of k = 2/η and d.
func NewSymmetric(omega timebase.Ticks, alpha, eta float64) (Pair, error) {
	if alpha <= 0 || eta <= 0 || eta >= 1 {
		return Pair{}, fmt.Errorf("optimal: invalid α=%v or η=%v", alpha, eta)
	}
	beta := eta / (2 * alpha)
	gamma := eta / 2
	u, err := ForDutyCycles(omega, beta, gamma)
	if err != nil {
		return Pair{}, err
	}
	dev := schedule.Device{B: u.Sender, C: u.Listener}
	if err := dev.Validate(); err != nil {
		return Pair{}, err
	}
	return Pair{
		E: dev, F: dev,
		WorstCaseEtoF: u.WorstCase,
		WorstCaseFtoE: u.WorstCase,
	}, nil
}

// NewAsymmetric builds an optimal asymmetric bidirectional protocol for
// per-device duty-cycles etaE and etaF (Theorem 5.7): each device splits
// optimally (βX = ηX/2α, γX = ηX/2), E's beacon gap is matched to F's
// window grid and vice versa, and both one-way latencies equal
// ≈ 4αω/(ηE·ηF) so that neither direction wastes energy (the proof's
// LE = LF condition).
func NewAsymmetric(omega timebase.Ticks, alpha, etaE, etaF float64) (Pair, error) {
	if alpha <= 0 || etaE <= 0 || etaF <= 0 || etaE >= 1 || etaF >= 1 {
		return Pair{}, fmt.Errorf("optimal: invalid α=%v, ηE=%v, ηF=%v", alpha, etaE, etaF)
	}
	// F discovers E: E's beacons (βE) against F's windows (γF).
	uEF, err := ForDutyCycles(omega, etaE/(2*alpha), etaF/2)
	if err != nil {
		return Pair{}, fmt.Errorf("optimal: E→F side: %w", err)
	}
	// E discovers F: F's beacons (βF) against E's windows (γE).
	uFE, err := ForDutyCycles(omega, etaF/(2*alpha), etaE/2)
	if err != nil {
		return Pair{}, fmt.Errorf("optimal: F→E side: %w", err)
	}
	devE := schedule.Device{B: uEF.Sender, C: uFE.Listener}
	devF := schedule.Device{B: uFE.Sender, C: uEF.Listener}
	if err := devE.Validate(); err != nil {
		return Pair{}, err
	}
	if err := devF.Validate(); err != nil {
		return Pair{}, err
	}
	return Pair{
		E: devE, F: devF,
		WorstCaseEtoF: uEF.WorstCase,
		WorstCaseFtoE: uFE.WorstCase,
	}, nil
}

// NewConstrained builds the optimal symmetric protocol under a channel
// utilization cap betaMax (Theorem 5.6): if the cap is above the optimal
// η/(2α) it is ignored; otherwise the transmit share is pinned to the cap
// and the receive share absorbs the rest of the budget, trading latency for
// collision headroom.
func NewConstrained(omega timebase.Ticks, alpha, eta, betaMax float64) (Pair, error) {
	if betaMax <= 0 {
		return Pair{}, fmt.Errorf("optimal: βmax=%v must be positive", betaMax)
	}
	beta := eta / (2 * alpha)
	if beta > betaMax {
		beta = betaMax
	}
	gamma := eta - alpha*beta
	if gamma <= 0 {
		return Pair{}, fmt.Errorf("optimal: η=%v with α=%v leaves no receive budget at β=%v", eta, alpha, beta)
	}
	if gamma > 0.5 {
		gamma = 0.5
	}
	u, err := ForDutyCycles(omega, beta, gamma)
	if err != nil {
		return Pair{}, err
	}
	dev := schedule.Device{B: u.Sender, C: u.Listener}
	return Pair{
		E: dev, F: dev,
		WorstCaseEtoF: u.WorstCase,
		WorstCaseFtoE: u.WorstCase,
	}, nil
}

// Quadruple is the Appendix C construction: both devices run beacon and
// window sequences with period T whose per-period beacon positions are
// temporally correlated with the windows, such that for every initial
// offset either E's beacon falls into F's window or vice versa — one-way
// discovery with half the beacons of direct bidirectional discovery.
type Quadruple struct {
	Device schedule.Device // both devices run this identical schedule
	T      timebase.Ticks  // common period TC = TB
	M      int             // beacons per period (= k/2 rounded up by one block)
	U      timebase.Ticks  // tiling unit: window length minus one tick

	// WorstCase is the exact worst-case one-way latency, equal to T.
	WorstCase timebase.Ticks
}

// NewMutualExclusive builds the Appendix C quadruple with m beacons per
// period and tiling unit u: window length u+1, period T = 2·m·u, beacons at
// positions (2j−1)·u − 1 for j = 1..m. The direct coverage blocks sit at
// even multiples of u and the reflected blocks (Equation 34's Φ_E = −Φ_F
// correlation) at odd multiples, overlapping by one tick at each boundary —
// together they cover every offset, so either direction succeeds within
// T = 2·m·u ≈ 2αω/η² (Theorem C.1).
func NewMutualExclusive(omega, u timebase.Ticks, m int) (Quadruple, error) {
	if m < 1 {
		return Quadruple{}, fmt.Errorf("optimal: m=%d beacons per period invalid", m)
	}
	if u <= omega {
		return Quadruple{}, fmt.Errorf("optimal: tiling unit u=%d must exceed ω=%d", u, omega)
	}
	t := 2 * timebase.Ticks(m) * u
	var times []timebase.Ticks
	for j := 1; j <= m; j++ {
		times = append(times, timebase.Ticks(2*j-1)*u-1)
	}
	b, err := schedule.NewBeaconsAt(times, omega, t)
	if err != nil {
		return Quadruple{}, err
	}
	c, err := schedule.NewWindowsAt([]schedule.Window{{Start: t - (u + 1), Len: u + 1}}, t)
	if err != nil {
		return Quadruple{}, err
	}
	dev := schedule.Device{B: b, C: c}
	if err := dev.Validate(); err != nil {
		return Quadruple{}, err
	}
	return Quadruple{Device: dev, T: t, M: m, U: u, WorstCase: t}, nil
}

// ForEta sizes a mutual-exclusive quadruple for a total duty-cycle eta with
// the Theorem C.1-optimal split: u ≈ αω/η·(achieving β = ω/(2u) = η/2α)
// and m ≈ 1/η (achieving γ ≈ 1/(2m) = η/2).
func ForEta(omega timebase.Ticks, alpha, eta float64) (Quadruple, error) {
	if eta <= 0 || eta >= 1 || alpha <= 0 {
		return Quadruple{}, fmt.Errorf("optimal: invalid η=%v or α=%v", eta, alpha)
	}
	u := timebase.Ticks(math.Round(alpha * float64(omega) / eta))
	m := int(math.Round(1 / eta))
	if m < 1 {
		m = 1
	}
	return NewMutualExclusive(omega, u, m)
}

// Eta returns the quadruple's achieved total duty-cycle.
func (q Quadruple) Eta(alpha float64) float64 { return q.Device.Eta(alpha) }

// VerifyMutualExclusive exhaustively checks the Appendix C property of a
// quadruple at tick resolution: for every initial offset Φ ∈ [0, T) of
// device F's schedule against device E's, at least one of the two
// directions succeeds within one period, and the worst-case one-way latency
// (the largest cyclic gap between success instants) is returned.
//
// The check is brute force by design — it is the independent witness the
// construction is tested against, so it must not share code with the
// interval machinery the construction was derived from.
func VerifyMutualExclusive(q Quadruple) (covered bool, worst timebase.Ticks) {
	t := q.T
	window := q.Device.C.Windows[0]
	a, w := window.Start, window.Len
	beacons := q.Device.B.Beacons

	inWindow := func(x timebase.Ticks) bool {
		x = x.Mod(t)
		return x >= a && x < a+w
	}
	covered = true
	for phi := timebase.Ticks(0); phi < t; phi++ {
		var instants []timebase.Ticks
		for _, bc := range beacons {
			// F's beacon (F-frame position bc.Time) at absolute time
			// bc.Time+phi in E's frame; success iff inside E's window.
			if abs := (bc.Time + phi).Mod(t); inWindow(abs) {
				instants = append(instants, abs)
			}
			// E's beacon at absolute bc.Time; position in F's frame is
			// bc.Time−phi; success iff inside F's window.
			if inWindow(bc.Time - phi) {
				instants = append(instants, bc.Time.Mod(t))
			}
		}
		if len(instants) == 0 {
			return false, 0
		}
		if g := maxCyclicGap(instants, t); g > worst {
			worst = g
		}
	}
	return covered, worst
}

func maxCyclicGap(instants []timebase.Ticks, period timebase.Ticks) timebase.Ticks {
	sortTicks(instants)
	var maxGap timebase.Ticks
	for i := 1; i < len(instants); i++ {
		if g := instants[i] - instants[i-1]; g > maxGap {
			maxGap = g
		}
	}
	if g := period - instants[len(instants)-1] + instants[0]; g > maxGap {
		maxGap = g
	}
	return maxGap
}

func sortTicks(xs []timebase.Ticks) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Redundant is an Appendix-B style schedule: the disjoint-optimal sender
// keeps cycling, so after Q covering cycles every offset has been covered
// by Q distinct beacons; L(Pf) = Q·k·λ is the worst-case time to accumulate
// Q chances.
type Redundant struct {
	Unidirectional
	Q          int
	QWorstCase timebase.Ticks // worst-case time to the Q-th covering beacon
}

// NewRedundant builds the Q-redundant configuration (Equation 33).
func NewRedundant(omega, d timebase.Ticks, k, q int) (Redundant, error) {
	if q < 1 {
		return Redundant{}, fmt.Errorf("optimal: Q=%d must be ≥ 1", q)
	}
	u, err := NewUnidirectional(omega, d, k, 1)
	if err != nil {
		return Redundant{}, err
	}
	return Redundant{
		Unidirectional: u,
		Q:              q,
		QWorstCase:     timebase.Ticks(q) * u.WorstCase,
	}, nil
}

// PerturbedBeacons is the ablation counterpart to the equal-gap optimality
// condition of Theorem 5.1 ("every sum of M consecutive beacon gaps must
// equal M·λ̄"). It returns a still-deterministic sequence of 2k beacons per
// period against the standard k-window listener: every gap satisfies
// λi ≡ −d (mod TC), so any k consecutive beacons tile the circle, but the
// first k gaps are short (TC − d) and the next k long (2·TC − d). Sums of k
// consecutive gaps therefore differ across starting positions — exactly the
// violation the theorem punishes — and the measured worst-case latency
// exceeds k·λ̄ (the coverage bound for the achieved β) by ≈ a third.
func PerturbedBeacons(omega, d timebase.Ticks, k int) (schedule.BeaconSeq, error) {
	if k < 2 {
		return schedule.BeaconSeq{}, fmt.Errorf("optimal: perturbation requires k ≥ 2, got %d", k)
	}
	if d <= omega {
		return schedule.BeaconSeq{}, fmt.Errorf("optimal: d=%d must exceed ω=%d", d, omega)
	}
	tc := timebase.Ticks(k) * d
	short := tc - d
	long := 2*tc - d
	times := make([]timebase.Ticks, 2*k)
	at := timebase.Ticks(0)
	for i := 0; i < 2*k; i++ {
		times[i] = at
		if i < k {
			at += short
		} else {
			at += long
		}
	}
	return schedule.NewBeaconsAt(times, omega, at)
}

// PredictedBound evaluates the closed-form bound matching a constructed
// unidirectional pair, for cross-checking: ω/(β·γ) in ticks.
func (u Unidirectional) PredictedBound() float64 {
	p := core.Params{Omega: u.Sender.Beacons[0].Len, Alpha: 1}
	return p.Unidirectional(u.Beta(), u.Gamma())
}
