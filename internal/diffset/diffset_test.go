package diffset

import (
	"testing"
)

func TestVerifyCatalog(t *testing.T) {
	for n := range catalog {
		s, ok := Known(n)
		if !ok {
			t.Fatalf("Known(%d) missing", n)
		}
		if err := s.Verify(); err != nil {
			t.Errorf("catalog set n=%d fails verification: %v", n, err)
		}
	}
}

func TestKnownReturnsCopy(t *testing.T) {
	s, _ := Known(7)
	s.Elems[0] = 99
	s2, _ := Known(7)
	if s2.Elems[0] == 99 {
		t.Error("Known returned shared storage")
	}
}

func TestVerifyRejectsBadSets(t *testing.T) {
	cases := []struct {
		name string
		s    Set
	}{
		{"wrong k", Set{N: 7, Elems: []int{1, 2}}},
		{"duplicate difference", Set{N: 7, Elems: []int{0, 1, 2}}},
		{"out of range", Set{N: 7, Elems: []int{1, 2, 9}}},
		{"not sorted", Set{N: 7, Elems: []int{2, 1, 4}}},
		{"tiny modulus", Set{N: 2, Elems: []int{0, 1}}},
	}
	for _, c := range cases {
		if err := c.s.Verify(); err == nil {
			t.Errorf("%s: Verify accepted %v", c.name, c.s)
		}
	}
}

func TestSingerSmallPrimes(t *testing.T) {
	for _, q := range []int{2, 3, 5, 7, 11, 13} {
		s, err := Singer(q)
		if err != nil {
			t.Fatalf("Singer(%d): %v", q, err)
		}
		if s.N != q*q+q+1 {
			t.Errorf("Singer(%d): n = %d, want %d", q, s.N, q*q+q+1)
		}
		if s.K() != q+1 {
			t.Errorf("Singer(%d): k = %d, want %d", q, s.K(), q+1)
		}
		if err := s.Verify(); err != nil {
			t.Errorf("Singer(%d) invalid: %v", q, err)
		}
	}
}

func TestSingerRejectsComposite(t *testing.T) {
	if _, err := Singer(4); err == nil {
		t.Error("Singer(4) should be rejected (prime-only construction)")
	}
	if _, err := Singer(1); err == nil {
		t.Error("Singer(1) should be rejected")
	}
}

func TestShiftPreservesProperty(t *testing.T) {
	s, _ := Known(13)
	for _, delta := range []int{1, 5, -3, 13, 26} {
		sh := s.Shift(delta)
		if err := sh.Verify(); err != nil {
			t.Errorf("Shift(%d) broke the difference property: %v", delta, err)
		}
	}
}

func TestFindSmall(t *testing.T) {
	cases := []struct{ n, k int }{
		{7, 3},
		{13, 4},
		{21, 5},
		{31, 6},
	}
	for _, c := range cases {
		s, ok := Find(c.n, c.k)
		if !ok {
			t.Errorf("Find(%d, %d) found nothing", c.n, c.k)
			continue
		}
		if err := s.Verify(); err != nil {
			t.Errorf("Find(%d, %d) returned invalid set: %v", c.n, c.k, err)
		}
	}
}

func TestFindRejectsInconsistentParams(t *testing.T) {
	if _, ok := Find(8, 3); ok {
		t.Error("Find(8,3) should fail: k(k−1) != n−1")
	}
	if _, ok := Find(7, 1); ok {
		t.Error("Find(7,1) should fail")
	}
}

func TestFindAgreesWithSinger(t *testing.T) {
	// Both construction routes must yield valid sets of identical shape.
	singer, err := Singer(5)
	if err != nil {
		t.Fatal(err)
	}
	found, ok := Find(31, 6)
	if !ok {
		t.Fatal("Find(31,6) failed")
	}
	if singer.N != found.N || singer.K() != found.K() {
		t.Errorf("shape mismatch: singer (%d,%d) vs found (%d,%d)",
			singer.N, singer.K(), found.N, found.K())
	}
}

func TestForOrder(t *testing.T) {
	for _, q := range []int{2, 3, 4, 5, 7} {
		s, err := ForOrder(q)
		if err != nil {
			t.Errorf("ForOrder(%d): %v", q, err)
			continue
		}
		if s.N != q*q+q+1 || s.K() != q+1 {
			t.Errorf("ForOrder(%d) shape (%d, %d)", q, s.N, s.K())
		}
	}
	if _, err := ForOrder(6); err == nil {
		t.Error("ForOrder(6) should fail: 6 is neither prime nor in catalog (no plane of order 6 exists)")
	}
}

func TestOrders(t *testing.T) {
	got := Orders(13)
	want := []int{2, 3, 4, 5, 7, 11, 13}
	if len(got) != len(want) {
		t.Fatalf("Orders(13) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Orders(13) = %v, want %v", got, want)
			break
		}
	}
}

func TestDutyCycleScaling(t *testing.T) {
	// The whole point of difference sets for ND: k/n ≈ 1/√n, matching the
	// k ≥ √T lower bound for slotted protocols.
	for _, q := range []int{3, 5, 7, 11} {
		s, err := ForOrder(q)
		if err != nil {
			t.Fatal(err)
		}
		k, n := float64(s.K()), float64(s.N)
		if k*k < n {
			t.Errorf("q=%d: k² = %v < n = %v violates the √T bound", q, k*k, n)
		}
		// And it is tight within one slot: (k−1)² < n.
		if (k-1)*(k-1) >= n {
			t.Errorf("q=%d: set is not tight, (k−1)² = %v ≥ n = %v", q, (k-1)*(k-1), n)
		}
	}
}
