// Package diffset constructs and verifies perfect cyclic difference sets.
//
// A (n, k, 1) perfect difference set D ⊂ Z_n is a k-element set such that
// every non-zero residue modulo n arises exactly once as a difference of
// two elements of D. Zheng, Hou and Sha showed that wake-up schedules built
// from such sets are optimal slotted neighbor-discovery designs: activating
// the k = √n·(1+o(1)) slots indexed by D inside every period of n slots
// guarantees a slot overlap for every phase shift — the k ≥ √T bound the
// paper discusses in Section 6 ("Diffcodes" in Table 1).
//
// Perfect difference sets with λ = 1 exist for n = q² + q + 1 whenever q is
// a prime power (Singer, 1938). This package provides three sources:
//
//   - Singer(q): the projective-plane construction over GF(q³) for prime q,
//     built on package gf;
//   - Known(n): a small catalog of classical sets, each re-verified by the
//     test suite;
//   - Find(n, k): exhaustive backtracking search for small parameters.
package diffset

import (
	"fmt"
	"sort"

	"repro/internal/gf"
)

// Set is a cyclic difference set: Elems ⊂ Z_N, sorted ascending.
type Set struct {
	N     int
	Elems []int
}

// K returns the set size k.
func (s Set) K() int { return len(s.Elems) }

// Verify checks the perfect difference property: every non-zero residue
// modulo N occurs exactly once among the k(k−1) ordered differences.
func (s Set) Verify() error {
	if s.N < 3 {
		return fmt.Errorf("diffset: modulus %d too small", s.N)
	}
	k := s.K()
	if k*(k-1) != s.N-1 {
		return fmt.Errorf("diffset: k(k−1) = %d does not equal n−1 = %d (cannot be a planar difference set)", k*(k-1), s.N-1)
	}
	seen := make([]bool, s.N)
	for i, a := range s.Elems {
		if a < 0 || a >= s.N {
			return fmt.Errorf("diffset: element %d out of range [0, %d)", a, s.N)
		}
		if i > 0 && s.Elems[i-1] >= a {
			return fmt.Errorf("diffset: elements not strictly increasing at index %d", i)
		}
		for _, b := range s.Elems {
			if a == b {
				continue
			}
			d := ((a-b)%s.N + s.N) % s.N
			if seen[d] {
				return fmt.Errorf("diffset: difference %d occurs more than once", d)
			}
			seen[d] = true
		}
	}
	for d := 1; d < s.N; d++ {
		if !seen[d] {
			return fmt.Errorf("diffset: difference %d never occurs", d)
		}
	}
	return nil
}

// Shift returns the set translated by delta modulo N (translates of a
// difference set are difference sets).
func (s Set) Shift(delta int) Set {
	out := Set{N: s.N, Elems: make([]int, s.K())}
	for i, e := range s.Elems {
		out.Elems[i] = ((e+delta)%s.N + s.N) % s.N
	}
	sort.Ints(out.Elems)
	return out
}

// Singer constructs the (q²+q+1, q+1, 1) difference set for a prime q via
// the classical projective-plane construction: with θ a primitive element
// of GF(q³), the exponents i (mod q²+q+1) for which θ^i lies in the
// 2-dimensional GF(q)-subspace {a + b·x} form a perfect difference set —
// the points of a line in PG(2, q) under the Singer cycle.
func Singer(q int) (Set, error) {
	if !gf.IsPrime(q) {
		return Set{}, fmt.Errorf("diffset: Singer construction implemented for prime q only; got %d", q)
	}
	field, err := gf.NewExt(q)
	if err != nil {
		return Set{}, err
	}
	n := q*q + q + 1
	theta := field.Primitive()

	elems := make(map[int]bool)
	e := field.One()
	for i := 0; i < field.Order(); i++ {
		if e[2] == 0 && !e.IsZero() {
			elems[i%n] = true
		}
		e = field.Mul(e, theta)
	}
	out := Set{N: n, Elems: make([]int, 0, len(elems))}
	for i := range elems {
		out.Elems = append(out.Elems, i)
	}
	sort.Ints(out.Elems)
	if out.K() != q+1 {
		return Set{}, fmt.Errorf("diffset: Singer construction for q=%d produced k=%d, want %d", q, out.K(), q+1)
	}
	if err := out.Verify(); err != nil {
		return Set{}, fmt.Errorf("diffset: Singer construction for q=%d failed verification: %w", q, err)
	}
	return out, nil
}

// catalog holds classical small sets, including prime-power orders the
// prime-only Singer construction cannot produce (q = 4 → n = 21). Every
// entry is re-verified by the test suite.
var catalog = map[int]Set{
	7:  {N: 7, Elems: []int{1, 2, 4}},          // q = 2 (Fano plane)
	13: {N: 13, Elems: []int{0, 1, 3, 9}},      // q = 3
	21: {N: 21, Elems: []int{3, 6, 7, 12, 14}}, // q = 4
}

// Known returns a catalog set for modulus n, if one is recorded.
func Known(n int) (Set, bool) {
	s, ok := catalog[n]
	if !ok {
		return Set{}, false
	}
	out := Set{N: s.N, Elems: append([]int(nil), s.Elems...)}
	return out, true
}

// Find searches exhaustively (backtracking over sorted candidate sets
// starting with 0) for an (n, k, 1) difference set. It is intended for
// small n — the search space grows combinatorially — and returns ok=false
// if no set exists or parameters are inconsistent.
func Find(n, k int) (Set, bool) {
	if n < 3 || k < 2 || k*(k-1) != n-1 {
		return Set{}, false
	}
	elems := make([]int, 1, k)
	elems[0] = 0
	used := make([]bool, n) // used[d]: difference d already produced
	var rec func(next int) bool
	rec = func(next int) bool {
		if len(elems) == k {
			return true
		}
		// Elements remaining to place must fit below n.
		for cand := next; cand <= n-(k-len(elems)); cand++ {
			// Mark the differences the candidate introduces incrementally,
			// so collisions between the candidate's own differences (d vs
			// n−d against different existing elements) are caught too.
			marks := make([]int, 0, 2*len(elems))
			ok := true
			for _, e := range elems {
				d1 := (cand - e) % n
				d2 := (e - cand + n) % n
				if used[d1] || used[d2] || d1 == d2 {
					ok = false
					break
				}
				used[d1], used[d2] = true, true
				marks = append(marks, d1, d2)
			}
			if !ok {
				for _, d := range marks {
					used[d] = false
				}
				continue
			}
			elems = append(elems, cand)
			if rec(cand + 1) {
				return true
			}
			elems = elems[:len(elems)-1]
			for _, d := range marks {
				used[d] = false
			}
		}
		return false
	}
	if !rec(1) {
		return Set{}, false
	}
	out := Set{N: n, Elems: append([]int(nil), elems...)}
	if err := out.Verify(); err != nil {
		return Set{}, false
	}
	return out, true
}

// ForOrder returns a (q²+q+1, q+1, 1) set for the given prime-power-ish
// order q, preferring the catalog and falling back to the Singer
// construction for primes.
func ForOrder(q int) (Set, error) {
	n := q*q + q + 1
	if s, ok := Known(n); ok {
		return s, nil
	}
	return Singer(q)
}

// Orders lists the supported orders q up to max, i.e. those for which
// ForOrder succeeds: catalog entries plus all primes.
func Orders(max int) []int {
	var out []int
	for q := 2; q <= max; q++ {
		if gf.IsPrime(q) {
			out = append(out, q)
			continue
		}
		if _, ok := Known(q*q + q + 1); ok {
			out = append(out, q)
		}
	}
	return out
}
