// Package coverage turns Section 4 of the paper into an executable,
// exact analysis engine for neighbor-discovery protocols.
//
// The paper's key construction is the coverage map (Section 4.1): for a
// beacon sequence B′ = b1, b2, … paired with an infinite periodic reception
// window sequence C∞, the set Ωi of initial offsets Φ1 ∈ [0, TC) for which
// beacon bi lands inside a reception window is the set of windows translated
// left by the accumulated beacon gaps (Equation 3). The tuple (B′, C∞) is
// deterministic iff ∪Ωi covers the circle [0, TC) (Definition 4.1), and the
// worst-case packet-to-packet latency l* is the maximum over offsets of the
// earliest covering beacon (Section 4.1, "Packet-to-packet discovery
// latency").
//
// This package computes all of that exactly, in integer ticks, with an
// O(n log n) interval sweep — no discretized offset loops. The same engine
// therefore serves as the repository's reference "simulator" for two
// periodic devices: analyses are exact rather than sampled. A deliberately
// naive brute-force evaluator is provided for cross-validation and for the
// ablation benchmark.
package coverage

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/interval"
	"repro/internal/schedule"
	"repro/internal/timebase"
)

// Options control the analysis.
type Options struct {
	// MaxBeacons caps the number of beacons examined per starting position
	// before the pair is declared non-deterministic. Zero means "one full
	// hyperperiod", which is exact for periodic pairs: beacon images on the
	// circle repeat after lcm(TB, TC), so a pair that has not achieved
	// coverage within the hyperperiod never will.
	MaxBeacons int

	// CountLastPacket adds the airtime ω of the successful packet to all
	// reported latencies (Appendix A.4). The paper neglects it; enabling
	// this reproduces the "+ω" variants of the bounds.
	CountLastPacket bool

	// TruncatedWindows models the fact that a packet must start no later
	// than ω before the end of a reception window to be received in full
	// (Section 3.2, Appendix A.3): each window's useful length shrinks by
	// the packet airtime.
	TruncatedWindows bool
}

// Result is the outcome of analyzing a (B∞, C∞) pair.
type Result struct {
	// Deterministic reports whether every initial offset leads to discovery
	// (Definition 4.1).
	Deterministic bool

	// CoveredFraction is the fraction of offsets in [0, TC) covered at
	// least once; 1.0 for deterministic pairs.
	CoveredFraction float64

	// WorstLatency is the supremum of the discovery latency over all
	// initial conditions, measured from the instant both devices come into
	// range (Definition 3.4): the largest beacon gap preceding a first
	// in-range beacon plus that beacon's worst packet-to-packet latency.
	// Valid only if Deterministic.
	WorstLatency timebase.Ticks

	// WorstPacketLatency is the worst l*: latency measured from the first
	// beacon in range to the successful one (start-to-start unless
	// Options.CountLastPacket). Valid only if Deterministic.
	WorstPacketLatency timebase.Ticks

	// MeanLatency is the expected discovery latency for a uniformly random
	// range-entry instant and independent uniform offset Φ1, in ticks.
	// Valid only if Deterministic.
	MeanLatency float64

	// MinimalPrefix is the paper's M for this pair: the number of beacons,
	// starting from beacon 0, needed before all offsets are covered.
	// Valid only if Deterministic.
	MinimalPrefix int

	// Redundant and Disjoint classify the minimal deterministic prefix per
	// Definition 4.2: redundant iff some offset is covered by more than one
	// of its beacons.
	Redundant bool
	Disjoint  bool

	// MinMultiplicity and MaxMultiplicity are the extremes, over offsets,
	// of how many beacons of one beacon period cover the offset. For the
	// optimal constructions (where TB is a multiple of TC) these equal the
	// redundancy degree: 1/1 for disjoint-optimal, Q/Q+1 for Appendix-B
	// schedules.
	MinMultiplicity, MaxMultiplicity int
}

// Analyze performs exact coverage analysis of the pair (b, c): device E runs
// the beacon sequence b, device F the reception window sequence c, and we
// measure F discovering E.
func Analyze(b schedule.BeaconSeq, c schedule.WindowSeq, opt Options) (Result, error) {
	if err := b.Validate(); err != nil {
		return Result{}, err
	}
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	if b.Empty() {
		return Result{}, errors.New("coverage: beacon sequence is empty")
	}
	if c.Empty() {
		return Result{}, errors.New("coverage: window sequence is empty")
	}

	windows, err := usefulWindows(c, opt, maxOmega(b))
	if err != nil {
		return Result{}, err
	}

	horizon := horizonBeacons(b, c, opt)

	// Absolute beacon times for one hyperperiod starting at beacon 0,
	// plus enough wrap context for every starting beacon.
	gaps := b.Gaps()
	mB := b.MB()

	var res Result

	// Pass 1: start at beacon 0; determine determinism, minimal prefix,
	// and the label sweep reused for multiplicity.
	items0, times0 := coverageItems(b, windows, c.Period, 0, horizon)
	segs, covered := interval.SweepMin(c.Period, items0)
	res.Deterministic = covered
	res.CoveredFraction = coveredFraction(segs, c.Period)
	if !covered {
		// Redundant/Disjoint are properties of a deterministic prefix
		// (Definition 4.2) and stay false for non-deterministic pairs.
		res.MinMultiplicity, res.MaxMultiplicity = multiplicityPerPeriod(b, windows, c.Period)
		return res, nil
	}

	// Minimal deterministic prefix: smallest m such that the first m
	// beacons cover the circle. Binary search over prefix length.
	res.MinimalPrefix = minimalPrefix(c.Period, items0, times0)

	prefixItems := items0[:prefixItemCount(items0, times0, res.MinimalPrefix)]
	res.Redundant, res.Disjoint = classifyPrefix(prefixItems, c.Period)
	res.MinMultiplicity, res.MaxMultiplicity = multiplicityPerPeriod(b, windows, c.Period)

	// Pass 2: worst and mean latency over every starting beacon j. The
	// entry instant falls in the gap before beacon j (length gaps[j-1]),
	// and Φ1 is independent of it.
	extra := timebase.Ticks(0)
	if opt.CountLastPacket {
		extra = maxOmega(b)
	}
	var worst timebase.Ticks
	var worstPacket timebase.Ticks
	var meanNum float64 // Σ_j λ_{j-1} · (E_Φ[l*_j] + λ_{j-1}/2)
	for j := 0; j < mB; j++ {
		items, _ := coverageItems(b, windows, c.Period, j, horizon)
		sj, cov := interval.SweepMin(c.Period, items)
		if !cov {
			// Cannot happen for periodic pairs if pass 1 covered, but guard
			// against pathological inputs.
			return res, fmt.Errorf("coverage: start beacon %d does not achieve coverage although beacon 0 does", j)
		}
		var lMax timebase.Ticks
		var lSum float64
		for _, seg := range sj {
			l := timebase.Ticks(seg.Label) + extra
			if l > lMax {
				lMax = l
			}
			lSum += float64(l) * float64(seg.Iv.Len())
		}
		gapBefore := gaps[(j-1+mB)%mB]
		if lMax > worstPacket {
			worstPacket = lMax
		}
		if gapBefore+lMax > worst {
			worst = gapBefore + lMax
		}
		lMean := lSum / float64(c.Period)
		meanNum += float64(gapBefore) * (lMean + float64(gapBefore)/2)
	}
	res.WorstPacketLatency = worstPacket
	res.WorstLatency = worst
	res.MeanLatency = meanNum / float64(b.Period)
	return res, nil
}

// LatencyProfile returns the exact packet-to-packet discovery latency as a
// function of the initial offset Φ1, for the beacon sequence starting at
// beacon startIdx. Segments with Count == 0 are uncovered offsets.
func LatencyProfile(b schedule.BeaconSeq, c schedule.WindowSeq, startIdx int, opt Options) ([]interval.Segment, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if b.Empty() || c.Empty() {
		return nil, errors.New("coverage: empty sequence")
	}
	windows, err := usefulWindows(c, opt, maxOmega(b))
	if err != nil {
		return nil, err
	}
	horizon := horizonBeacons(b, c, opt)
	items, _ := coverageItems(b, windows, c.Period, startIdx%b.MB(), horizon)
	segs, _ := interval.SweepMin(c.Period, items)
	return segs, nil
}

// QWorstLatency computes the worst-case latency until an offset has been
// covered by q distinct beacons — the Appendix B redundancy metric L(Pf):
// a schedule that covers every offset q times gives each discovery attempt
// q independent chances against collisions. Returns ok=false if some offset
// is not covered q times within the hyperperiod horizon.
func QWorstLatency(b schedule.BeaconSeq, c schedule.WindowSeq, q int, opt Options) (timebase.Ticks, bool, error) {
	if q < 1 {
		return 0, false, fmt.Errorf("coverage: q=%d must be ≥ 1", q)
	}
	if err := b.Validate(); err != nil {
		return 0, false, err
	}
	if err := c.Validate(); err != nil {
		return 0, false, err
	}
	if b.Empty() || c.Empty() {
		return 0, false, errors.New("coverage: empty sequence")
	}
	windows, err := usefulWindows(c, opt, maxOmega(b))
	if err != nil {
		return 0, false, err
	}
	// The horizon must span q coverings: q hyperperiods always suffice
	// (each hyperperiod repeats the full image set). An explicit
	// MaxBeacons cap is honored verbatim.
	horizon := horizonBeacons(b, c, opt)
	if opt.MaxBeacons == 0 {
		horizon *= q
	}
	gaps := b.Gaps()
	mB := b.MB()
	var worst timebase.Ticks
	for j := 0; j < mB; j++ {
		items, _ := coverageItems(b, windows, c.Period, j, horizon)
		segs, cov := interval.SweepKth(c.Period, items, q)
		if !cov {
			return 0, false, nil
		}
		var lMax timebase.Ticks
		for _, seg := range segs {
			if l := timebase.Ticks(seg.Label); l > lMax {
				lMax = l
			}
		}
		if l := gaps[(j-1+mB)%mB] + lMax; l > worst {
			worst = l
		}
	}
	return worst, true, nil
}

// Map is the explicit coverage map of Section 4.1: one offset-set Ωi per
// examined beacon. It exists mainly for inspection, rendering and tests;
// Analyze uses the sweep directly.
type Map struct {
	Period timebase.Ticks // TC
	Omegas []OmegaSet
}

// OmegaSet is the set of initial offsets covered by one beacon.
type OmegaSet struct {
	BeaconIndex int            // i (0-based within B∞ from the start beacon)
	Delay       timebase.Ticks // τi − τ0, the accumulated beacon gaps
	Offsets     *interval.Set  // Ωi restricted to [0, TC)
}

// BuildMap constructs the coverage map of the first numBeacons beacons of
// b (starting at beacon 0) against c.
func BuildMap(b schedule.BeaconSeq, c schedule.WindowSeq, numBeacons int, opt Options) (Map, error) {
	if err := b.Validate(); err != nil {
		return Map{}, err
	}
	if err := c.Validate(); err != nil {
		return Map{}, err
	}
	if b.Empty() || c.Empty() {
		return Map{}, errors.New("coverage: empty sequence")
	}
	if numBeacons <= 0 {
		return Map{}, fmt.Errorf("coverage: numBeacons %d must be positive", numBeacons)
	}
	windows, err := usefulWindows(c, opt, maxOmega(b))
	if err != nil {
		return Map{}, err
	}
	first := b.Beacons[0].Time
	horizonEnd := first + timebase.CeilDiv(timebase.Ticks(numBeacons), timebase.Ticks(b.MB()))*b.Period + b.Period
	beacons := b.BeaconsWithin(first, horizonEnd)
	if len(beacons) < numBeacons {
		return Map{}, fmt.Errorf("coverage: internal: got %d beacons, want %d", len(beacons), numBeacons)
	}
	m := Map{Period: c.Period}
	for i := 0; i < numBeacons; i++ {
		delay := beacons[i].Time - first
		set := interval.NewSet(c.Period)
		for _, w := range windows {
			set.Add(w.Start-delay, w.Len)
		}
		m.Omegas = append(m.Omegas, OmegaSet{BeaconIndex: i, Delay: delay, Offsets: set})
	}
	return m, nil
}

// TotalCoverage returns the paper's Λ (Definition 4.3): the multiplicity-
// weighted measure of covered offsets, i.e. Σi |Ωi|.
func (m Map) TotalCoverage() timebase.Ticks {
	var total timebase.Ticks
	for _, o := range m.Omegas {
		total += o.Offsets.Measure()
	}
	return total
}

// UnionCoverage returns the set of offsets covered by at least one beacon.
func (m Map) UnionCoverage() *interval.Set {
	u := interval.NewSet(m.Period)
	for _, o := range m.Omegas {
		u.UnionWith(o.Offsets)
	}
	return u
}

// Deterministic reports whether the mapped beacons cover every offset.
func (m Map) Deterministic() bool { return m.UnionCoverage().IsFull() }

// BruteForceWorstLatency computes the worst-case discovery latency by
// directly walking the beacon stream for every integer offset Φ1 ∈ [0, TC)
// with the given step, for every starting beacon. It exists to cross-check
// Analyze and to quantify the cost of not having the sweep (the ablation
// benchmark); it is exact when step == 1.
//
// The returned latency matches Result.WorstLatency (a supremum): the grid
// maximum of the entry wait is λ−1, so the supremum is reconstructed by
// adding the full preceding gap analytically.
func BruteForceWorstLatency(b schedule.BeaconSeq, c schedule.WindowSeq, step timebase.Ticks, opt Options) (timebase.Ticks, bool) {
	if step <= 0 {
		step = 1
	}
	windows, err := usefulWindows(c, opt, maxOmega(b))
	if err != nil {
		return 0, false
	}
	wset := interval.NewSet(c.Period)
	for _, w := range windows {
		wset.Add(w.Start, w.Len)
	}
	horizon := horizonBeacons(b, c, opt)
	gaps := b.Gaps()
	mB := b.MB()
	extra := timebase.Ticks(0)
	if opt.CountLastPacket {
		extra = maxOmega(b)
	}
	var worst timebase.Ticks
	for j := 0; j < mB; j++ {
		first := b.Beacons[j].Time
		end := first + timebase.Ticks(horizon/mB+2)*b.Period
		beacons := b.BeaconsWithin(first, end)
		if len(beacons) > horizon {
			beacons = beacons[:horizon]
		}
		var lMax timebase.Ticks
		found := true
		for phi := timebase.Ticks(0); phi < c.Period; phi += step {
			hit := false
			for _, bc := range beacons {
				delay := bc.Time - first
				if wset.Contains(phi + delay) {
					if l := delay + extra; l > lMax {
						lMax = l
					}
					hit = true
					break
				}
			}
			if !hit {
				found = false
				break
			}
		}
		if !found {
			return 0, false
		}
		if l := gaps[(j-1+mB)%mB] + lMax; l > worst {
			worst = l
		}
	}
	return worst, true
}

// --- internals ---

// usefulWindows returns the windows to use for coverage, shrunk by ω when
// Options.TruncatedWindows is set.
func usefulWindows(c schedule.WindowSeq, opt Options, omega timebase.Ticks) ([]schedule.Window, error) {
	if !opt.TruncatedWindows {
		return c.Windows, nil
	}
	out := make([]schedule.Window, 0, len(c.Windows))
	for _, w := range c.Windows {
		if w.Len <= omega {
			return nil, fmt.Errorf("coverage: window of length %d cannot receive packets of airtime %d (Appendix A.3)", w.Len, omega)
		}
		out = append(out, schedule.Window{Start: w.Start, Len: w.Len - omega})
	}
	return out, nil
}

func maxOmega(b schedule.BeaconSeq) timebase.Ticks {
	var m timebase.Ticks
	for _, bc := range b.Beacons {
		if bc.Len > m {
			m = bc.Len
		}
	}
	return m
}

// horizonBeacons returns how many consecutive beacons to examine: one full
// hyperperiod's worth (images repeat after lcm(TB, TC)), or the caller's cap.
func horizonBeacons(b schedule.BeaconSeq, c schedule.WindowSeq, opt Options) int {
	if opt.MaxBeacons > 0 {
		return opt.MaxBeacons
	}
	hp := timebase.LCM(b.Period, c.Period)
	n := hp / b.Period * timebase.Ticks(b.MB())
	const maxHorizon = 4 << 20
	if n > maxHorizon {
		return maxHorizon
	}
	if n < 1 {
		return 1
	}
	return int(n)
}

// coverageItems builds the labeled intervals for a beacon sequence starting
// at beacon startIdx: one item per (beacon, window) pair, labeled with the
// packet-to-packet delay τi − τstart. It also returns the per-beacon delays.
func coverageItems(b schedule.BeaconSeq, windows []schedule.Window, tc timebase.Ticks, startIdx int, horizon int) ([]interval.Labeled, []timebase.Ticks) {
	first := b.Beacons[startIdx].Time
	end := first + timebase.CeilDiv(timebase.Ticks(horizon), timebase.Ticks(b.MB()))*b.Period + b.Period
	beacons := b.BeaconsWithin(first, end)
	if len(beacons) > horizon {
		beacons = beacons[:horizon]
	}
	items := make([]interval.Labeled, 0, len(beacons)*len(windows))
	delays := make([]timebase.Ticks, len(beacons))
	for i, bc := range beacons {
		delay := bc.Time - first
		delays[i] = delay
		for _, w := range windows {
			items = append(items, interval.Labeled{
				Lo:     w.Start - delay,
				Length: w.Len,
				Label:  int64(delay),
			})
		}
	}
	return items, delays
}

// minimalPrefix finds the smallest number of beacons whose union covers the
// circle, assuming the full item list does cover it.
func minimalPrefix(tc timebase.Ticks, items []interval.Labeled, delays []timebase.Ticks) int {
	lo, hi := 1, len(delays)
	for lo < hi {
		mid := (lo + hi) / 2
		n := prefixItemCount(items, delays, mid)
		if _, cov := interval.SweepMin(tc, items[:n]); cov {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// prefixItemCount returns how many leading items belong to the first m
// beacons. Items are emitted beacon-major by coverageItems, so this is
// m × windowsPerBeacon.
func prefixItemCount(items []interval.Labeled, delays []timebase.Ticks, m int) int {
	if len(delays) == 0 {
		return 0
	}
	perBeacon := len(items) / len(delays)
	n := m * perBeacon
	if n > len(items) {
		n = len(items)
	}
	return n
}

func classifyPrefix(items []interval.Labeled, tc timebase.Ticks) (redundant, disjoint bool) {
	if len(items) == 0 {
		return false, true
	}
	segs, _ := interval.SweepMin(tc, items)
	disjoint = true
	for _, seg := range segs {
		if seg.Count > 1 {
			redundant = true
			disjoint = false
		}
	}
	return redundant, disjoint
}

// multiplicityPerPeriod reports min/max, over offsets, of the number of
// beacons within one beacon period TB whose image covers the offset.
func multiplicityPerPeriod(b schedule.BeaconSeq, windows []schedule.Window, tc timebase.Ticks) (minM, maxM int) {
	items := make([]interval.Labeled, 0, b.MB()*len(windows))
	first := b.Beacons[0].Time
	for _, bc := range b.Beacons {
		delay := bc.Time - first
		for _, w := range windows {
			items = append(items, interval.Labeled{Lo: w.Start - delay, Length: w.Len, Label: int64(delay)})
		}
	}
	segs, _ := interval.SweepMin(tc, items)
	minM = math.MaxInt
	for _, seg := range segs {
		if seg.Count < minM {
			minM = seg.Count
		}
		if seg.Count > maxM {
			maxM = seg.Count
		}
	}
	if minM == math.MaxInt {
		minM = 0
	}
	return minM, maxM
}

func coveredFraction(segs []interval.Segment, period timebase.Ticks) float64 {
	var covered timebase.Ticks
	for _, seg := range segs {
		if seg.Count > 0 {
			covered += seg.Iv.Len()
		}
	}
	return float64(covered) / float64(period)
}
