package coverage

import (
	"strings"
	"testing"

	"repro/internal/schedule"
)

func TestRenderDeterministicMap(t *testing.T) {
	b, c := optimalPair(t, 10, 4, 2)
	m, err := BuildMap(b, c, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := m.Render(40)
	if !strings.Contains(out, "deterministic: every offset") {
		t.Errorf("determinism footer missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// 4 Ω rows + union row + footer.
	if len(lines) != 6 {
		t.Fatalf("expected 6 lines, got %d:\n%s", len(lines), out)
	}
	// Every Ω row covers exactly d/TC = ¼ of the width.
	for i := 0; i < 4; i++ {
		hashes := strings.Count(lines[i], "#")
		if hashes != 10 {
			t.Errorf("row %d has %d '#', want 10 (d/TC of width 40):\n%s", i, hashes, out)
		}
	}
	// The union row must be solid.
	if strings.Count(lines[4], "#") != 40 {
		t.Errorf("union row not solid:\n%s", out)
	}
}

func TestRenderNonDeterministicMap(t *testing.T) {
	c, _ := schedule.NewUniformWindows(10, 4)
	b, _ := schedule.NewEqualGapBeacons(2, 40, 2, 0) // images coincide
	m, err := BuildMap(b, c, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := m.Render(40)
	if !strings.Contains(out, "NOT deterministic") {
		t.Errorf("missing non-determinism report:\n%s", out)
	}
	if !strings.Contains(out, "30µs of 40µs uncovered") {
		t.Errorf("uncovered measure missing:\n%s", out)
	}
}

func TestRenderMinimumWidth(t *testing.T) {
	b, c := optimalPair(t, 10, 4, 2)
	m, _ := BuildMap(b, c, 4, Options{})
	out := m.Render(1) // clamps to 10
	if !strings.Contains(out, "Ω1") {
		t.Errorf("render at tiny width broken:\n%s", out)
	}
}
