package coverage

import (
	"math"
	"testing"

	"repro/internal/schedule"
	"repro/internal/timebase"
)

func TestAnalyzeStreamsMatchesPeriodicAnalysis(t *testing.T) {
	// For periodic schedules the stream evaluator (entry-grid) and the
	// exact engine must agree on the worst case up to the grid convention:
	// the engine reports the supremum (gap approached from above), the
	// stream evaluator the attained grid maximum, one tick below.
	c, _ := schedule.NewUniformWindows(10, 4)
	b, _ := schedule.NewEqualGapBeacons(4, 30, 2, 0)
	exact, err := Analyze(b, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The relative phase between the streams is fixed here (both start at
	// 0); sweep it by shifting the window stream through a full listener
	// period using shiftedWindows.
	var worst timebase.Ticks
	var meanSum float64
	for shift := timebase.Ticks(0); shift < c.Period; shift++ {
		sr, err := AnalyzeStreams(b, shiftedWindows{c, shift}, 4*exact.WorstLatency, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !sr.Deterministic {
			t.Fatalf("shift %d: stream analysis not deterministic", shift)
		}
		if sr.WorstLatency > worst {
			worst = sr.WorstLatency
		}
		meanSum += sr.MeanLatency
	}
	// Supremum convention: grid max = sup − 1 tick... but the stream
	// evaluator also counts entry *during* a beacon differently; allow ±ω.
	if diff := int64(exact.WorstLatency) - int64(worst); diff < 0 || diff > 4 {
		t.Errorf("stream worst %d vs exact %d", worst, exact.WorstLatency)
	}
	mean := meanSum / float64(c.Period)
	if math.Abs(mean-exact.MeanLatency) > 2 {
		t.Errorf("stream mean %v vs exact %v", mean, exact.MeanLatency)
	}
}

// shiftedWindows delays every window of a periodic sequence by a constant.
type shiftedWindows struct {
	c     schedule.WindowSeq
	shift timebase.Ticks
}

func (s shiftedWindows) WindowsWithin(from, to timebase.Ticks) []schedule.Window {
	ws := s.c.WindowsWithin(from-s.shift, to-s.shift)
	out := make([]schedule.Window, len(ws))
	for i, w := range ws {
		out[i] = schedule.Window{Start: w.Start + s.shift, Len: w.Len}
	}
	return out
}

func TestAnalyzeStreamsValidation(t *testing.T) {
	b, _ := schedule.NewEqualGapBeacons(1, 100, 2, 0)
	c, _ := schedule.NewUniformWindows(10, 4)
	if _, err := AnalyzeStreams(b, c, 0, 1); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := AnalyzeStreams(nil, c, 100, 1); err == nil {
		t.Error("nil stream accepted")
	}
}

func TestDriftingWindowsStream(t *testing.T) {
	dw := DriftingWindows{Len: 10, Base: 100, Drift: 20}
	// Window starts: 0, 100, 220, 360, 520, ...
	got := dw.WindowsWithin(0, 600)
	wantStarts := []timebase.Ticks{0, 100, 220, 360, 520}
	if len(got) != len(wantStarts) {
		t.Fatalf("windows: %v", got)
	}
	for i, w := range got {
		if w.Start != wantStarts[i] || w.Len != 10 {
			t.Errorf("window %d = %+v, want start %d", i, w, wantStarts[i])
		}
	}
	// Range filtering.
	mid := dw.WindowsWithin(150, 400)
	if len(mid) != 2 || mid[0].Start != 220 || mid[1].Start != 360 {
		t.Errorf("filtered windows: %v", mid)
	}
	if dw.WindowsWithin(100, 100) != nil {
		t.Error("empty range should yield nil")
	}
}

func TestAperiodicListenerStillDiscovers(t *testing.T) {
	// Appendix A.1: a drifting (never-repeating) listener against a
	// periodic sender still discovers, as long as the beacon gap keeps
	// hitting the moving windows. Beacons every 35 ticks: relative to
	// drifting windows spaced 100, 120, 140, … some beacon lands in each
	// neighborhood eventually.
	dw := DriftingWindows{Len: 40, Base: 100, Drift: 10}
	b, _ := schedule.NewEqualGapBeacons(1, 35, 2, 0)
	res, err := AnalyzeStreams(b, dw, 5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deterministic {
		t.Fatal("drifting listener never discovered within horizon")
	}
	if res.WorstLatency <= 0 || res.MeanLatency <= 0 {
		t.Errorf("latencies: worst %v mean %v", res.WorstLatency, res.MeanLatency)
	}
}

func TestStreamResultEntriesCount(t *testing.T) {
	c, _ := schedule.NewUniformWindows(10, 2)
	b, _ := schedule.NewEqualGapBeacons(2, 10, 2, 0)
	res, err := AnalyzeStreams(b, c, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Entries != 10 {
		t.Errorf("entries = %d, want 10", res.Entries)
	}
}
