package coverage

import (
	"testing"

	"repro/internal/schedule"
	"repro/internal/timebase"
)

// TestMaxBeaconsCapPreventsBlowup: pairs with coprime periods have
// hyperperiods equal to the product; the MaxBeacons option bounds the work
// and conservatively reports the coverage achieved within the cap.
func TestMaxBeaconsCapPreventsBlowup(t *testing.T) {
	// Periods 9973 and 9967 (both prime): hyperperiod ≈ 9.9e7 ticks,
	// ≈ 9967 beacon images — fine to compute exactly, but cap it anyway.
	b, err := schedule.NewEqualGapBeacons(1, 9973, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := schedule.NewWindowsAt([]schedule.Window{{Start: 0, Len: 500}}, 9967)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(b, c, Options{MaxBeacons: 50})
	if err != nil {
		t.Fatal(err)
	}
	// Within 50 beacons only ~50·500 of 9967 offsets can be covered.
	if res.Deterministic {
		t.Error("capped horizon cannot certify determinism here")
	}
	if res.CoveredFraction <= 0 || res.CoveredFraction >= 1 {
		t.Errorf("covered fraction %v implausible", res.CoveredFraction)
	}
	// The uncapped analysis does certify it (images drift by 6 per period
	// and the window is 500 wide, so coverage completes).
	full, err := Analyze(b, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !full.Deterministic {
		t.Error("uncapped analysis should certify determinism")
	}
}

// TestAnalyzeManyWindowsPerPeriod exercises nC > 1 listener structures.
func TestAnalyzeManyWindowsPerPeriod(t *testing.T) {
	// Three windows of 5 per 60-tick period (γ = 0.25), beacons every 55.
	c, err := schedule.NewWindowsAt([]schedule.Window{
		{Start: 5, Len: 5}, {Start: 25, Len: 5}, {Start: 45, Len: 5},
	}, 60)
	if err != nil {
		t.Fatal(err)
	}
	b, err := schedule.NewEqualGapBeacons(1, 55, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(b, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deterministic {
		t.Fatalf("drifting beacon against 3-window listener should cover (fraction %v)",
			res.CoveredFraction)
	}
	// Cross-validate against brute force.
	brute, ok := BruteForceWorstLatency(b, c, 1, Options{})
	if !ok || brute != res.WorstLatency {
		t.Errorf("brute %v (ok=%v) vs analyze %v", brute, ok, res.WorstLatency)
	}
}

// TestQWorstLatencyInsufficientCoverage: requesting more redundancy than
// the schedule provides must report ok=false, not hang or invent numbers.
func TestQWorstLatencyInsufficientCoverage(t *testing.T) {
	c, _ := schedule.NewUniformWindows(10, 4)
	b, _ := schedule.NewEqualGapBeacons(4, 30, 2, 0)
	// The pair is exactly 1-covering per hyperperiod... but the infinite
	// sequence keeps cycling, so Q=3 is reachable within 3 hyperperiods.
	lat3, ok, err := QWorstLatency(b, c, 3, Options{})
	if err != nil || !ok {
		t.Fatalf("Q=3 should be reachable by cycling: ok=%v err=%v", ok, err)
	}
	lat1, ok, err := QWorstLatency(b, c, 1, Options{})
	if err != nil || !ok {
		t.Fatal("Q=1 failed")
	}
	if lat3 != 3*lat1 {
		t.Errorf("Q=3 latency %v, want 3×%v", lat3, lat1)
	}
	// With a capped horizon, the requested redundancy becomes unreachable.
	_, ok, err = QWorstLatency(b, c, 3, Options{MaxBeacons: 4})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("capped horizon cannot deliver Q=3")
	}
}

// TestAnalyzeBeaconLongerThanWindow: packets longer than windows are
// received under the base model (any overlap → success at start-in-window
// semantics) but impossible under Appendix A.3 semantics.
func TestAnalyzeBeaconLongerThanWindow(t *testing.T) {
	c, _ := schedule.NewUniformWindows(10, 4)
	b, _ := schedule.NewEqualGapBeacons(4, 30, 15, 0) // ω = 15 > d = 10
	res, err := Analyze(b, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deterministic {
		t.Error("base model should accept start-in-window receptions")
	}
	if _, err := Analyze(b, c, Options{TruncatedWindows: true}); err == nil {
		t.Error("A.3 semantics must reject ω ≥ d")
	}
}

// TestLatencyProfileStartIndexWraps: start indices beyond mB wrap.
func TestLatencyProfileStartIndexWraps(t *testing.T) {
	c, _ := schedule.NewUniformWindows(10, 4)
	b, _ := schedule.NewEqualGapBeacons(4, 30, 2, 0)
	s0, err := LatencyProfile(b, c, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s4, err := LatencyProfile(b, c, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(s0) != len(s4) {
		t.Fatalf("profiles differ in length: %d vs %d", len(s0), len(s4))
	}
	for i := range s0 {
		if s0[i] != s4[i] {
			t.Errorf("segment %d differs between start 0 and start 4 (mod mB)", i)
		}
	}
}

// TestTickOverflowGuard: large but legal schedules must not overflow the
// hyperperiod computation silently — LCM panics on overflow by design.
func TestTickOverflowGuard(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Skip("LCM did not overflow for these inputs")
		}
	}()
	huge := timebase.Ticks(1) << 40
	_ = timebase.LCM(huge+1, huge+3) // coprime-ish huge periods → overflow panic
}
