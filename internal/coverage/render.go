package coverage

import (
	"fmt"
	"strings"

	"repro/internal/timebase"
)

// Render draws the coverage map as ASCII art in the style of the paper's
// Figure 3b: one row per beacon, showing the offsets Φ1 ∈ [0, TC) that the
// beacon covers, plus a footer row marking uncovered offsets. width is the
// number of characters used for the [0, TC) axis (minimum 10).
//
//	Ω1  |······································##########|
//	Ω2  |##########····································|
//	Ω3  |··········##########··························|
//	    all offsets covered
//
// Each '#' cell is covered by the row's beacon; '·' is not. The rendering
// is a diagnostic aid for examples and debugging, not part of the analysis
// path.
func (m Map) Render(width int) string {
	if width < 10 {
		width = 10
	}
	var b strings.Builder
	cell := float64(m.Period) / float64(width)
	for _, o := range m.Omegas {
		b.WriteString(fmt.Sprintf("Ω%-3d %8s |", o.BeaconIndex+1, o.Delay.String()))
		for c := 0; c < width; c++ {
			// A cell is drawn covered if its midpoint is covered.
			mid := timebase.Ticks(cell * (float64(c) + 0.5))
			if o.Offsets.Contains(mid) {
				b.WriteByte('#')
			} else {
				b.WriteRune('·')
			}
		}
		b.WriteString("|\n")
	}
	union := m.UnionCoverage()
	b.WriteString(fmt.Sprintf("%14s |", "union"))
	covered := true
	for c := 0; c < width; c++ {
		mid := timebase.Ticks(cell * (float64(c) + 0.5))
		if union.Contains(mid) {
			b.WriteByte('#')
		} else {
			b.WriteByte(' ')
			covered = false
		}
	}
	b.WriteString("|\n")
	if m.Deterministic() {
		b.WriteString("deterministic: every offset in [0, TC) is covered\n")
	} else {
		gaps := union.Complement()
		b.WriteString(fmt.Sprintf("NOT deterministic: %v of %v uncovered",
			gaps.Measure(), m.Period))
		if !covered {
			b.WriteString(" (gaps visible above)")
		}
		b.WriteString("\n")
	}
	return b.String()
}
