package coverage

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/schedule"
	"repro/internal/timebase"
)

// optimalPair builds the canonical optimal unidirectional pair from
// Section 5.1: listener with a single window of length d per period k·d,
// sender with equal beacon gaps λ = TC − d (so that successive beacon
// images tile the circle).
func optimalPair(t *testing.T, d timebase.Ticks, k int, omega timebase.Ticks) (schedule.BeaconSeq, schedule.WindowSeq) {
	t.Helper()
	c, err := schedule.NewUniformWindows(d, k)
	if err != nil {
		t.Fatal(err)
	}
	gap := c.Period - d
	b, err := schedule.NewEqualGapBeacons(k, gap, omega, 0)
	if err != nil {
		t.Fatal(err)
	}
	return b, c
}

func TestAnalyzeOptimalPair(t *testing.T) {
	// d=10, k=4 → TC=40, window [30,40); beacons every 30 ticks, 4 per
	// period TB=120. Images tile [0,40) exactly.
	b, c := optimalPair(t, 10, 4, 2)
	res, err := Analyze(b, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deterministic {
		t.Fatal("optimal pair not deterministic")
	}
	if res.CoveredFraction != 1.0 {
		t.Errorf("CoveredFraction = %v", res.CoveredFraction)
	}
	if !res.Disjoint || res.Redundant {
		t.Errorf("optimal pair should be disjoint: %+v", res)
	}
	if res.MinimalPrefix != 4 {
		t.Errorf("MinimalPrefix = %d, want 4 (= M = TC/Σd)", res.MinimalPrefix)
	}
	if res.MinMultiplicity != 1 || res.MaxMultiplicity != 1 {
		t.Errorf("multiplicity = %d/%d, want 1/1", res.MinMultiplicity, res.MaxMultiplicity)
	}
	// Worst packet latency: beacon 3 at delay 90; worst total: + gap 30.
	if res.WorstPacketLatency != 90 {
		t.Errorf("WorstPacketLatency = %d, want 90", res.WorstPacketLatency)
	}
	if res.WorstLatency != 120 {
		t.Errorf("WorstLatency = %d, want 120 (= M·λ, Theorem 5.1)", res.WorstLatency)
	}
	// Theorem 5.1 cross-check: L = ⌈TC/Σd⌉·ω/β with β = ω/λ → L = 4·30.
	if res.WorstLatency != 4*30 {
		t.Errorf("coverage bound violated")
	}
}

func TestAnalyzeNonDeterministic(t *testing.T) {
	// Beacon gap exactly TC: every beacon lands on the same offset image.
	c, _ := schedule.NewUniformWindows(10, 4) // TC = 40
	b, _ := schedule.NewEqualGapBeacons(3, 40, 2, 0)
	res, err := Analyze(b, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deterministic {
		t.Fatal("gap == TC must not be deterministic")
	}
	if res.CoveredFraction != 0.25 {
		t.Errorf("CoveredFraction = %v, want 0.25", res.CoveredFraction)
	}
	if res.Redundant || res.Disjoint {
		t.Errorf("classification should be false/false for non-deterministic: %+v", res)
	}
}

func TestAnalyzeRedundantPerPeriod(t *testing.T) {
	// TC=20 (d=10, k=2), beacons every 10 ticks, 4 per period TB=40=2·TC:
	// every offset is covered exactly twice per beacon period (a Q=2
	// Appendix-B-style schedule), while the minimal prefix (2 beacons) is
	// disjoint.
	c, _ := schedule.NewUniformWindows(10, 2)
	b, _ := schedule.NewEqualGapBeacons(4, 10, 2, 0)
	res, err := Analyze(b, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deterministic {
		t.Fatal("should be deterministic")
	}
	if res.MinimalPrefix != 2 {
		t.Errorf("MinimalPrefix = %d, want 2", res.MinimalPrefix)
	}
	if !res.Disjoint {
		t.Errorf("minimal prefix should be disjoint")
	}
	if res.MinMultiplicity != 2 || res.MaxMultiplicity != 2 {
		t.Errorf("multiplicity = %d/%d, want 2/2", res.MinMultiplicity, res.MaxMultiplicity)
	}
}

func TestAnalyzeRedundantPrefix(t *testing.T) {
	// Construct a pair whose minimal covering prefix overlaps itself:
	// TC=40, d=10 windows at [30,40); beacons with gaps 35,35,35,15
	// (period 120). Images: [30,40), [−35→[35,40)+[30? compute in test via
	// the engine; we assert only the classification flags.
	c, _ := schedule.NewUniformWindows(10, 4)
	b, err := schedule.NewBeaconsAt([]timebase.Ticks{0, 35, 70, 105}, 2, 120)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(b, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deterministic {
		t.Skip("pair not deterministic; constructor changed")
	}
	if res.Disjoint && res.Redundant {
		t.Error("flags inconsistent")
	}
}

func TestTheorem42CoveragePerBeacon(t *testing.T) {
	// Theorem 4.2: every beacon induces coverage of exactly Σ dk.
	c, err := schedule.NewWindowsAt([]schedule.Window{{Start: 5, Len: 7}, {Start: 20, Len: 11}}, 60)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := schedule.NewBeaconsAt([]timebase.Ticks{0, 13, 29, 41}, 3, 90)
	m, err := BuildMap(b, c, 12, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range m.Omegas {
		if got := o.Offsets.Measure(); got != c.SumD() {
			t.Errorf("beacon %d covers %d ticks, want Σd = %d (Theorem 4.2)",
				o.BeaconIndex, got, c.SumD())
		}
	}
	if got := m.TotalCoverage(); got != 12*c.SumD() {
		t.Errorf("Λ = %d, want %d", got, 12*c.SumD())
	}
}

func TestMapMatchesAnalyzeDeterminism(t *testing.T) {
	b, c := optimalPair(t, 10, 4, 2)
	m, err := BuildMap(b, c, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Deterministic() {
		t.Error("map of M beacons should be deterministic for the optimal pair")
	}
	m3, _ := BuildMap(b, c, 3, Options{})
	if m3.Deterministic() {
		t.Error("3 < M beacons cannot cover TC (Theorem 4.3)")
	}
}

func TestLatencyProfileTiles(t *testing.T) {
	b, c := optimalPair(t, 10, 4, 2)
	segs, err := LatencyProfile(b, c, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var total timebase.Ticks
	seen := map[int64]timebase.Ticks{}
	for _, seg := range segs {
		if seg.Count == 0 {
			t.Errorf("uncovered segment %v", seg.Iv)
			continue
		}
		total += seg.Iv.Len()
		seen[seg.Label] += seg.Iv.Len()
	}
	if total != c.Period {
		t.Errorf("segments cover %d, want %d", total, c.Period)
	}
	// Each of the 4 beacon delays {0,30,60,90} should own exactly d=10 ticks.
	for _, delay := range []int64{0, 30, 60, 90} {
		if seen[delay] != 10 {
			t.Errorf("delay %d owns %d ticks, want 10", delay, seen[delay])
		}
	}
}

func TestCountLastPacket(t *testing.T) {
	b, c := optimalPair(t, 10, 4, 2)
	plain, err := Analyze(b, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	withPkt, err := Analyze(b, c, Options{CountLastPacket: true})
	if err != nil {
		t.Fatal(err)
	}
	if withPkt.WorstLatency != plain.WorstLatency+2 {
		t.Errorf("CountLastPacket: worst %d, want %d+ω (Appendix A.4)",
			withPkt.WorstLatency, plain.WorstLatency)
	}
}

func TestTruncatedWindowsBreaksTightTiling(t *testing.T) {
	// The ideal tiling covers exactly; shrinking windows by ω (App A.3)
	// must open gaps and destroy determinism.
	b, c := optimalPair(t, 10, 4, 2)
	res, err := Analyze(b, c, Options{TruncatedWindows: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deterministic {
		t.Error("truncated windows should break the exact tiling")
	}
	if res.CoveredFraction >= 1.0 {
		t.Errorf("CoveredFraction = %v", res.CoveredFraction)
	}
}

func TestTruncatedWindowsRejectsTinyWindows(t *testing.T) {
	c, _ := schedule.NewUniformWindows(2, 4)
	b, _ := schedule.NewEqualGapBeacons(4, 6, 2, 0)
	if _, err := Analyze(b, c, Options{TruncatedWindows: true}); err == nil {
		t.Error("window length == ω must error under A.3 semantics")
	}
}

func TestAnalyzeRejectsEmpty(t *testing.T) {
	c, _ := schedule.NewUniformWindows(10, 4)
	b, _ := schedule.NewEqualGapBeacons(4, 30, 2, 0)
	if _, err := Analyze(schedule.BeaconSeq{Period: 10}, c, Options{}); err == nil {
		t.Error("empty beacons accepted")
	}
	if _, err := Analyze(b, schedule.WindowSeq{Period: 10}, Options{}); err == nil {
		t.Error("empty windows accepted")
	}
}

func TestAnalyzeIncommensuratePeriods(t *testing.T) {
	// TB=50, TC=40 → hyperperiod 200; beacon images drift by 10 per period
	// and eventually tile. One beacon per period, window d=10: images at
	// 0,−50,−100,… mod 40 = {30,20,10,0}·... check determinism.
	c, _ := schedule.NewUniformWindows(10, 4)
	b, _ := schedule.NewEqualGapBeacons(1, 50, 2, 0)
	res, err := Analyze(b, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deterministic {
		t.Fatal("drifting images should cover")
	}
	// Worst case: 4 beacons needed → l* = 150; plus gap 50 → 200.
	if res.WorstLatency != 200 {
		t.Errorf("WorstLatency = %d, want 200", res.WorstLatency)
	}
	if res.MinimalPrefix != 4 {
		t.Errorf("MinimalPrefix = %d, want 4", res.MinimalPrefix)
	}
}

func TestAnalyzeMatchesBruteForce(t *testing.T) {
	type pairCase struct {
		name string
		b    schedule.BeaconSeq
		c    schedule.WindowSeq
	}
	var cases []pairCase
	b1, c1 := func() (schedule.BeaconSeq, schedule.WindowSeq) {
		c, _ := schedule.NewUniformWindows(10, 4)
		b, _ := schedule.NewEqualGapBeacons(4, 30, 2, 0)
		return b, c
	}()
	cases = append(cases, pairCase{"optimal", b1, c1})
	b2, _ := schedule.NewBeaconsAt([]timebase.Ticks{0, 13, 47}, 3, 70)
	c2, _ := schedule.NewWindowsAt([]schedule.Window{{Start: 0, Len: 9}, {Start: 22, Len: 6}}, 45)
	cases = append(cases, pairCase{"irregular", b2, c2})
	b3, _ := schedule.NewEqualGapBeacons(1, 50, 2, 10)
	c3, _ := schedule.NewUniformWindows(10, 4)
	cases = append(cases, pairCase{"drifting", b3, c3})

	for _, pc := range cases {
		res, err := Analyze(pc.b, pc.c, Options{})
		if err != nil {
			t.Fatalf("%s: %v", pc.name, err)
		}
		brute, ok := BruteForceWorstLatency(pc.b, pc.c, 1, Options{})
		if ok != res.Deterministic {
			t.Errorf("%s: determinism disagrees (analyze %v, brute %v)", pc.name, res.Deterministic, ok)
			continue
		}
		if !ok {
			continue
		}
		if brute != res.WorstLatency {
			t.Errorf("%s: worst latency analyze=%d brute=%d", pc.name, res.WorstLatency, brute)
		}
	}
}

// Property: on random small periodic pairs, the sweep engine and the
// brute-force evaluator agree exactly.
func TestAnalyzeMatchesBruteForceRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Random windows.
		tc := timebase.Ticks(rng.Intn(60) + 20)
		var windows []schedule.Window
		pos := timebase.Ticks(0)
		for pos < tc-3 && len(windows) < 3 {
			start := pos + timebase.Ticks(rng.Intn(8)+1)
			length := timebase.Ticks(rng.Intn(10) + 2)
			if start+length > tc {
				break
			}
			windows = append(windows, schedule.Window{Start: start, Len: length})
			pos = start + length + 1
		}
		if len(windows) == 0 {
			return true
		}
		c, err := schedule.NewWindowsAt(windows, tc)
		if err != nil {
			return true
		}
		// Random beacons.
		tb := timebase.Ticks(rng.Intn(80) + 20)
		omega := timebase.Ticks(rng.Intn(3) + 1)
		var times []timebase.Ticks
		pos = 0
		for pos < tb-omega && len(times) < 4 {
			tt := pos + timebase.Ticks(rng.Intn(15))
			if tt+omega > tb {
				break
			}
			times = append(times, tt)
			pos = tt + omega + timebase.Ticks(rng.Intn(10)+1)
		}
		if len(times) == 0 {
			return true
		}
		b, err := schedule.NewBeaconsAt(times, omega, tb)
		if err != nil {
			return true
		}
		res, err := Analyze(b, c, Options{})
		if err != nil {
			return false
		}
		brute, ok := BruteForceWorstLatency(b, c, 1, Options{})
		if ok != res.Deterministic {
			return false
		}
		return !ok || brute == res.WorstLatency
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestMeanLatencyBounds(t *testing.T) {
	b, c := optimalPair(t, 10, 4, 2)
	res, err := Analyze(b, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanLatency <= 0 || res.MeanLatency >= float64(res.WorstLatency) {
		t.Errorf("MeanLatency = %v not in (0, %d)", res.MeanLatency, res.WorstLatency)
	}
	// For the optimal pair: wait uniform in (0,30] mean 15; l* uniform over
	// {0,30,60,90} each on d=10 of TC=40 → mean 45. Total 60.
	if res.MeanLatency != 60 {
		t.Errorf("MeanLatency = %v, want 60", res.MeanLatency)
	}
}

func TestMinimalPrefixMatchesBeaconingTheorem(t *testing.T) {
	// Theorem 4.3: M = ⌈TC / Σd⌉ for disjoint-covering sequences.
	for _, k := range []int{2, 3, 5, 8} {
		d := timebase.Ticks(10)
		c, _ := schedule.NewUniformWindows(d, k)
		gap := c.Period - d
		b, _ := schedule.NewEqualGapBeacons(k, gap, 2, 0)
		res, err := Analyze(b, c, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Deterministic {
			t.Fatalf("k=%d: not deterministic", k)
		}
		if res.MinimalPrefix != k {
			t.Errorf("k=%d: MinimalPrefix = %d, want %d", k, res.MinimalPrefix, k)
		}
	}
}
