package coverage

import (
	"errors"
	"fmt"

	"repro/internal/schedule"
	"repro/internal/timebase"
)

// StreamResult is the bounded-horizon analysis of a possibly aperiodic
// schedule pair (Appendix A.1 of the paper: reception window sequences
// that "continuously alter over time" are feasible and obey the same
// bounds).
type StreamResult struct {
	// Deterministic reports whether every examined range-entry instant led
	// to discovery within the horizon. Unlike the periodic analyzer this
	// is a statement about the horizon, not about all time.
	Deterministic bool

	// WorstLatency is the largest observed discovery latency over all
	// examined entry instants (a supremum over the grid).
	WorstLatency timebase.Ticks

	// MeanLatency is the average over examined entry instants.
	MeanLatency float64

	// Entries is the number of range-entry instants examined.
	Entries int
}

// AnalyzeStreams measures discovery latency for arbitrary (aperiodic)
// beacon and window streams by direct evaluation: for every entry instant
// e on a step-spaced grid within [0, horizon), it finds the first beacon
// starting at or after e whose start falls inside a listener window, and
// reports the worst and mean latency.
//
// This is the Appendix A.1 evaluator: it makes no periodicity assumptions
// at all, at the cost of being exhaustive over a grid rather than exact
// over all reals. With step = 1 it is exact for integer-tick schedules
// over the horizon.
func AnalyzeStreams(b schedule.BeaconStream, c schedule.WindowStream, horizon, step timebase.Ticks) (StreamResult, error) {
	if horizon <= 0 {
		return StreamResult{}, fmt.Errorf("coverage: horizon %d must be positive", horizon)
	}
	if step <= 0 {
		step = 1
	}
	if b == nil || c == nil {
		return StreamResult{}, errors.New("coverage: nil stream")
	}

	// Materialize events once: beacons over [0, 2·horizon) so entries near
	// the horizon still see a full window of beacons, windows likewise
	// (windows may have started before an entry instant and still count).
	beacons := b.BeaconsWithin(0, 2*horizon)
	windows := c.WindowsWithin(-horizon, 2*horizon)

	// Precompute, for each beacon, whether it is received (start inside
	// any window) — independent of the entry instant.
	received := make([]bool, len(beacons))
	wi := 0
	for i, bc := range beacons {
		for wi < len(windows) && windows[wi].End() <= bc.Time {
			wi++
		}
		for j := wi; j < len(windows) && windows[j].Start <= bc.Time; j++ {
			if bc.Time >= windows[j].Start && bc.Time < windows[j].End() {
				received[i] = true
				break
			}
		}
	}

	// Sorted list of successful beacon start times.
	var successes []timebase.Ticks
	for i, ok := range received {
		if ok {
			successes = append(successes, beacons[i].Time)
		}
	}

	res := StreamResult{Deterministic: true}
	var sum float64
	si := 0
	for e := timebase.Ticks(0); e < horizon; e += step {
		for si < len(successes) && successes[si] < e {
			si++
		}
		res.Entries++
		if si >= len(successes) {
			res.Deterministic = false
			continue
		}
		lat := successes[si] - e
		if lat > res.WorstLatency {
			res.WorstLatency = lat
		}
		sum += float64(lat)
	}
	if res.Entries > 0 {
		res.MeanLatency = sum / float64(res.Entries)
	}
	return res, nil
}

// DriftingWindows is an Appendix A.1 example of a non-repetitive reception
// window sequence: window i starts at i·Base + i·(i−1)/2·Drift — the
// inter-window spacing grows by Drift each period, so no finite sequence
// ever repeats. The receive duty-cycle still converges (to 0 for positive
// drift), and within any finite horizon the Appendix A.1 bound applies
// with the realized γ.
type DriftingWindows struct {
	Len   timebase.Ticks // window length d
	Base  timebase.Ticks // initial spacing
	Drift timebase.Ticks // per-period spacing increase
}

// WindowsWithin implements schedule.WindowStream.
func (dw DriftingWindows) WindowsWithin(from, to timebase.Ticks) []schedule.Window {
	if dw.Base <= 0 || dw.Len <= 0 || to <= from {
		return nil
	}
	var out []schedule.Window
	start := timebase.Ticks(0)
	spacing := dw.Base
	for i := 0; ; i++ {
		if start >= to {
			break
		}
		if start >= from {
			out = append(out, schedule.Window{Start: start, Len: dw.Len})
		}
		start += spacing
		spacing += dw.Drift
		if spacing <= 0 {
			break // defensive: negative drift exhausted
		}
	}
	return out
}

// Interface check.
var _ schedule.WindowStream = DriftingWindows{}
