package eval

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/optimal"
	"repro/internal/protocols"
	"repro/internal/textplot"
	"repro/internal/timebase"
)

// AblationResult collects the design-choice ablations DESIGN.md calls out,
// as a printable report (the benchmark harness measures the same
// quantities continuously; this runner makes them a one-command artifact).
type AblationResult struct {
	// SweepMicros and BruteMicros time one worst-case analysis of the
	// reference pair with the interval sweep vs. brute-force offsets.
	SweepMicros, BruteMicros float64
	// SweepWorst and BruteWorst are their (identical) answers.
	SweepWorst, BruteWorst timebase.Ticks

	// PerturbationInflation is measured L over the coverage bound when the
	// equal-M-gap-sums condition of Theorem 5.1 is violated.
	PerturbationInflation float64

	// SlotLatencies maps slot length to measured diffcode worst case
	// (Equation 17: latency ∝ I).
	SlotLens      []timebase.Ticks
	SlotLatencies []timebase.Ticks

	// QLatencies is the measured Q-th-coverage latency for Q = 1..4
	// (Equation 33: linear in Q).
	QLatencies []timebase.Ticks
}

// RunAblations executes all four ablations.
func RunAblations(p core.Params) (AblationResult, error) {
	var res AblationResult

	// 1. Sweep vs brute force.
	u, err := optimal.NewUnidirectional(p.Omega, 500, 20, 1)
	if err != nil {
		return res, err
	}
	start := time.Now()
	ana, err := coverage.Analyze(u.Sender, u.Listener, coverage.Options{})
	if err != nil {
		return res, err
	}
	res.SweepMicros = float64(time.Since(start).Microseconds())
	res.SweepWorst = ana.WorstLatency
	start = time.Now()
	brute, ok := coverage.BruteForceWorstLatency(u.Sender, u.Listener, 1, coverage.Options{})
	if !ok {
		return res, fmt.Errorf("eval: brute force disagrees on determinism")
	}
	res.BruteMicros = float64(time.Since(start).Microseconds())
	res.BruteWorst = brute

	// 2. Theorem 5.1 perturbation.
	perturbed, err := optimal.PerturbedBeacons(p.Omega, 500, 8)
	if err != nil {
		return res, err
	}
	listener, err := optimal.NewUnidirectional(p.Omega, 500, 8, 1)
	if err != nil {
		return res, err
	}
	pres, err := coverage.Analyze(perturbed, listener.Listener, coverage.Options{})
	if err != nil {
		return res, err
	}
	bound := p.CoverageBound(listener.Listener.Period, 500, perturbed.Beta())
	res.PerturbationInflation = float64(pres.WorstLatency) / bound

	// 3. Slot length sweep.
	for _, slot := range []timebase.Ticks{200, 400, 800, 1600} {
		d, err := protocols.NewDiffcode(3, slot, p.Omega)
		if err != nil {
			return res, err
		}
		dev, err := d.DeviceFullDuplex()
		if err != nil {
			return res, err
		}
		a, err := coverage.Analyze(dev.B, dev.C, coverage.Options{})
		if err != nil {
			return res, err
		}
		res.SlotLens = append(res.SlotLens, slot)
		res.SlotLatencies = append(res.SlotLatencies, a.WorstLatency)
	}

	// 4. Redundancy sweep.
	r, err := optimal.NewRedundant(p.Omega, 500, 8, 1)
	if err != nil {
		return res, err
	}
	for q := 1; q <= 4; q++ {
		lat, ok, err := coverage.QWorstLatency(r.Sender, r.Listener, q, coverage.Options{})
		if err != nil || !ok {
			return res, fmt.Errorf("eval: Q=%d coverage failed", q)
		}
		res.QLatencies = append(res.QLatencies, lat)
	}
	return res, nil
}

// Render formats the ablation report.
func (res AblationResult) Render() string {
	var b strings.Builder
	b.WriteString("Ablations — design choices quantified\n\n")

	b.WriteString("1. Coverage engine: interval sweep vs brute-force offset scan\n")
	t1 := textplot.NewTable("engine", "time", "worst case")
	t1.AddF("interval sweep", fmt.Sprintf("%.0f µs", res.SweepMicros), res.SweepWorst.String())
	t1.AddF("brute force", fmt.Sprintf("%.0f µs", res.BruteMicros), res.BruteWorst.String())
	b.WriteString(t1.String())
	if res.SweepMicros > 0 {
		b.WriteString(fmt.Sprintf("→ identical answers, ×%.0f speedup\n\n", res.BruteMicros/res.SweepMicros))
	}

	b.WriteString("2. Theorem 5.1: violating equal M-gap sums at identical duty cycles\n")
	b.WriteString(fmt.Sprintf("→ worst case inflates to ×%.3f of the bound (theory: → 4/3)\n\n",
		res.PerturbationInflation))

	b.WriteString("3. Equation 17: slotted latency scales linearly with slot length I\n")
	t3 := textplot.NewTable("slot length", "measured worst case")
	for i := range res.SlotLens {
		t3.AddF(res.SlotLens[i].String(), res.SlotLatencies[i].String())
	}
	b.WriteString(t3.String())
	b.WriteString("\n4. Equation 33: time to Q-fold coverage is linear in Q\n")
	t4 := textplot.NewTable("Q", "L(Q)", "L(Q)/L(1)")
	for i, lat := range res.QLatencies {
		t4.AddF(i+1, lat.String(), float64(lat)/float64(res.QLatencies[0]))
	}
	b.WriteString(t4.String())
	return b.String()
}
