package eval

import (
	"math"
	"strings"
	"testing"
)

func TestRunFigure5CoverageLoss(t *testing.T) {
	res, err := RunFigure5(StdParams)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 4 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	prevLoss := 1.0
	for _, row := range res.Rows {
		// Full duplex always covers completely.
		if row.FullDuplexCov != 1.0 {
			t.Errorf("I=%v: full-duplex coverage %v != 1", row.SlotLen, row.FullDuplexCov)
		}
		// Half duplex loses offsets, tracking ≈ 2ω/I within 2×.
		loss := 1 - row.HalfDuplexCov
		if loss <= 0 {
			t.Errorf("I=%v: half-duplex shows no loss", row.SlotLen)
		}
		if loss > 2*row.PredictedLoss || loss < row.PredictedLoss/3 {
			t.Errorf("I=%v: loss %v far from prediction %v", row.SlotLen, loss, row.PredictedLoss)
		}
		// The loss shrinks as slots grow.
		if loss > prevLoss+1e-9 {
			t.Errorf("I=%v: loss %v did not shrink from %v", row.SlotLen, loss, prevLoss)
		}
		prevLoss = loss
	}
	out := res.Render()
	if !strings.Contains(out, "Figure 5") || strings.Contains(out, "NaN") {
		t.Errorf("render problem:\n%s", out)
	}
}

func TestRenderCoverageMap(t *testing.T) {
	out, err := RenderCoverageMap(StdParams)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "deterministic: every offset") {
		t.Errorf("map should report determinism:\n%s", out)
	}
	// One row per mapped beacon (k = 6) plus the union row.
	if got := strings.Count(out, "Ω"); got != 6 {
		t.Errorf("expected 6 Ω rows, got %d:\n%s", got, out)
	}
	if !strings.Contains(out, "Theorem 4.2") {
		t.Error("Λ line missing")
	}
}

func TestRunAssistanceShape(t *testing.T) {
	res, err := RunAssistance(StdParams)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		// One-way quadruple ≈ half the direct two-way worst case.
		ratio := float64(row.DirectWorst) / float64(row.OneWayWorst)
		if ratio < 1.7 || ratio > 2.4 {
			t.Errorf("η=%v: direct/one-way ratio %v, want ≈ 2 (Thm C.1)", row.Eta, ratio)
		}
		// Assisted two-way bounded by one-way + one period (paper: the
		// penalty is at most TC).
		if row.AssistedWorst < row.OneWayWorst {
			t.Errorf("η=%v: assisted worst below one-way worst", row.Eta)
		}
		if row.AssistedWorst > 2*row.OneWayWorst {
			t.Errorf("η=%v: assisted worst %v exceeds one-way + T", row.Eta, row.AssistedWorst)
		}
		if row.WorstPenalty > row.OneWayWorst {
			t.Errorf("η=%v: penalty %v exceeds TC bound", row.Eta, row.WorstPenalty)
		}
		// Mean well below worst.
		if row.AssistedMean <= 0 || row.AssistedMean >= float64(row.AssistedWorst) {
			t.Errorf("η=%v: mean %v out of range", row.Eta, row.AssistedMean)
		}
		// Assisted two-way worst is comparable to direct (within ~1.3×):
		// halving the beacons does not cost two-way determinism.
		if float64(row.AssistedWorst) > 1.35*float64(row.DirectWorst) {
			t.Errorf("η=%v: assisted worst %v ≫ direct %v", row.Eta, row.AssistedWorst, row.DirectWorst)
		}
	}
	if out := res.Render(); !strings.Contains(out, "assist") || strings.Contains(out, "NaN") {
		t.Errorf("render problem:\n%s", out)
	}
}

func TestFigure5LossApproaches2OmegaOverI(t *testing.T) {
	res, err := RunFigure5(StdParams)
	if err != nil {
		t.Fatal(err)
	}
	// At the largest slot length the relative error to 2ω/I should be
	// small (the loss is exactly 2ω/I up to slot-structure end effects).
	last := res.Rows[len(res.Rows)-1]
	loss := 1 - last.HalfDuplexCov
	if math.Abs(loss-last.PredictedLoss)/last.PredictedLoss > 0.6 {
		t.Errorf("asymptotic loss %v vs prediction %v", loss, last.PredictedLoss)
	}
}
