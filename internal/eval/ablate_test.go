package eval

import (
	"strings"
	"testing"

	tb "repro/internal/timebase"
)

func TestRunAblations(t *testing.T) {
	res, err := RunAblations(StdParams)
	if err != nil {
		t.Fatal(err)
	}
	// Both engines must agree exactly.
	if res.SweepWorst != res.BruteWorst {
		t.Errorf("sweep %v vs brute %v", res.SweepWorst, res.BruteWorst)
	}
	// The sweep should be much faster (allow noisy CI: ≥ 5×).
	if res.BruteMicros < 5*res.SweepMicros {
		t.Logf("speedup only ×%.1f (timing noise?)", res.BruteMicros/res.SweepMicros)
	}
	// Theorem 5.1 violation inflates latency toward 4/3.
	if res.PerturbationInflation < 1.2 || res.PerturbationInflation > 1.5 {
		t.Errorf("perturbation inflation %v, want ≈ 4/3", res.PerturbationInflation)
	}
	// Latency ∝ slot length: doubling I doubles L within slot-structure
	// noise.
	for i := 1; i < len(res.SlotLatencies); i++ {
		ratio := float64(res.SlotLatencies[i]) / float64(res.SlotLatencies[i-1])
		if ratio < 1.8 || ratio > 2.2 {
			t.Errorf("slot step %d: latency ratio %v, want ≈ 2", i, ratio)
		}
	}
	// L(Q) = Q·L(1) exactly.
	for q, lat := range res.QLatencies {
		if lat != res.QLatencies[0]*tb.Ticks(q+1) {
			t.Errorf("Q=%d: L=%v, want %d×%v", q+1, lat, q+1, res.QLatencies[0])
		}
	}
	out := res.Render()
	for _, want := range []string{"Ablations", "speedup", "4/3", "slot length", "L(Q)/L(1)"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
