package eval

import (
	"math"
	"strings"
	"testing"
)

func TestRunTable1FormulaRelations(t *testing.T) {
	res, err := RunTable1(StdParams)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range res.Rows {
		// Table 1 exact relations at every operating point.
		if rel(row.Diffcodes, row.Fundamental) > 1e-9 {
			t.Errorf("η=%v: Diffcodes %v != fundamental %v", row.Eta, row.Diffcodes, row.Fundamental)
		}
		if rel(row.Searchlight, 2*row.Diffcodes) > 1e-9 {
			t.Errorf("η=%v: Searchlight != 2× Diffcodes", row.Eta)
		}
		if rel(row.Disco, 8*row.Diffcodes) > 1e-9 {
			t.Errorf("η=%v: Disco != 8× Diffcodes", row.Eta)
		}
		if !(row.UConnect > row.Diffcodes && row.UConnect < row.Disco) {
			t.Errorf("η=%v: U-Connect %v out of order", row.Eta, row.UConnect)
		}
	}
}

func TestRunTable1MeasuredShape(t *testing.T) {
	res, err := RunTable1(StdParams)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table1Validation{}
	for _, v := range res.Validations {
		byName[v.Name] = v
		// Nothing beats the fundamental slotted bound.
		if v.OptimalityVsEq21 < 0.99 {
			t.Errorf("%s: measured below Eq 21 (%v) — impossible", v.Name, v.OptimalityVsEq21)
		}
		// Every protocol meets its own slot-count guarantee (+1 slot of
		// phase slack).
		if float64(v.Measured) > float64(v.SlotBound)*1.1+1000 {
			t.Errorf("%s: measured %v exceeds slot bound %v", v.Name, v.Measured, v.SlotBound)
		}
	}
	// Shape claim of Table 1: diffcodes closest to optimal, Disco worst.
	dc := byName["Diffcode(q=5)"]
	disco := byName["Disco(5,7)"]
	sl := byName["Searchlight(8)"]
	if !(dc.OptimalityVsEq21 < sl.OptimalityVsEq21) {
		t.Errorf("Diffcodes (%v) should beat Searchlight (%v)",
			dc.OptimalityVsEq21, sl.OptimalityVsEq21)
	}
	if !(sl.OptimalityVsEq21 < disco.OptimalityVsEq21) {
		t.Errorf("Searchlight (%v) should beat Disco (%v)",
			sl.OptimalityVsEq21, disco.OptimalityVsEq21)
	}
	// Under the single-packet model the Table 1 factors reproduce:
	// Diffcodes ≈ 1×, Searchlight ≈ 2×, Disco well above both.
	if dc.OptimalityVsEq21Single > 1.2 {
		t.Errorf("Diffcodes single-packet ratio %v, want ≈ 1 (Table 1: optimal)",
			dc.OptimalityVsEq21Single)
	}
	if sl.OptimalityVsEq21Single < 1.5 || sl.OptimalityVsEq21Single > 2.3 {
		t.Errorf("Searchlight single-packet ratio %v, want ≈ 2 (Table 1 factor)",
			sl.OptimalityVsEq21Single)
	}
	if disco.OptimalityVsEq21Single < 2.5 {
		t.Errorf("Disco single-packet ratio %v, want ≫ 2 (Table 1 factor 8 at balanced primes)",
			disco.OptimalityVsEq21Single)
	}
}

func TestRunFigure6Invariants(t *testing.T) {
	res := RunFigure6(StdParams)
	if len(res.Points) == 0 {
		t.Fatal("no points")
	}
	fourAlphaOmega := 4 * StdParams.Alpha * float64(StdParams.Omega)
	for _, pt := range res.Points {
		// Theorem 5.7 invariant: L·ηE·ηF = 4αω exactly, for every
		// asymmetry — the sense in which asymmetry is free.
		if rel(pt.LTimesProduct, fourAlphaOmega) > 1e-9 {
			t.Errorf("sum=%v r=%v: L·ηE·ηF = %v, want %v", pt.Sum, pt.Ratio,
				pt.LTimesProduct, fourAlphaOmega)
		}
		// And the plotted quantity sits exactly penalty(r) above the
		// symmetric curve 16αω/s.
		sym := 16 * StdParams.Alpha * float64(StdParams.Omega) / pt.Sum
		if rel(pt.LTimesSum, sym*res.PenaltyFactor(pt.Ratio)) > 1e-9 {
			t.Errorf("sum=%v r=%v: L·sum = %v, want %v×%v", pt.Sum, pt.Ratio,
				pt.LTimesSum, sym, res.PenaltyFactor(pt.Ratio))
		}
	}
	// r=1 must coincide with the symmetric bound (penalty exactly 1).
	if res.PenaltyFactor(1) != 1 {
		t.Errorf("penalty(1) = %v", res.PenaltyFactor(1))
	}
	if math.Abs(res.PenaltyFactor(2)-1.125) > 1e-12 {
		t.Errorf("penalty(2) = %v, want 1.125", res.PenaltyFactor(2))
	}
}

func TestRunFigure7Shape(t *testing.T) {
	res := RunFigure7(StdParams)
	if len(res.Series) != 3 {
		t.Fatalf("want 3 series, got %d", len(res.Series))
	}
	for _, s := range res.Series {
		if s.Crossover <= 0 || math.IsNaN(s.BetaMax) {
			t.Fatalf("S=%d: bad series meta %+v", s.S, s)
		}
		for i, eta := range s.Etas {
			if math.IsNaN(res.Unconstrained[i]) {
				continue
			}
			if eta <= s.Crossover {
				if rel(s.Latency[i], res.Unconstrained[i]) > 1e-9 {
					t.Errorf("S=%d η=%v: constrained bound differs below crossover", s.S, eta)
				}
			} else if s.Latency[i] < res.Unconstrained[i] {
				t.Errorf("S=%d η=%v: constrained bound below unconstrained", s.S, eta)
			}
		}
	}
	// The paper: "deteriorated by up to two orders of magnitude".
	last := len(res.Etas) - 1
	s1000 := res.Series[2]
	if ratio := s1000.Latency[last] / res.Unconstrained[last]; ratio < 100 {
		t.Errorf("S=1000 degradation at η≈1: ×%v, want ≥ 100", ratio)
	}
	// Crossovers shrink with S.
	if !(res.Series[0].Crossover > res.Series[1].Crossover &&
		res.Series[1].Crossover > res.Series[2].Crossover) {
		t.Error("crossovers not decreasing in S")
	}
}

func TestRunSlottedAlphaMinima(t *testing.T) {
	res := RunSlottedAlpha(36)
	var at1, atHalf SlottedAlphaRow
	for _, row := range res.Rows {
		if row.Alpha == 1 {
			at1 = row
		}
		if row.Alpha == 0.5 {
			atHalf = row
		}
		// Neither limit ever dips below the fundamental bound.
		if row.ZhengRatio < 1-1e-9 || row.CodeRatio < 1-1e-9 {
			t.Errorf("α=%v: ratio below 1: %+v", row.Alpha, row)
		}
	}
	if math.Abs(at1.ZhengRatio-1) > 1e-9 {
		t.Errorf("Eq 18 at α=1: ratio %v, want 1", at1.ZhengRatio)
	}
	if math.Abs(atHalf.CodeRatio-1) > 1e-9 {
		t.Errorf("Eq 19 at α=0.5: ratio %v, want 1", atHalf.CodeRatio)
	}
}

func TestRunAppendixBRegime(t *testing.T) {
	res, err := RunAppendixB(StdParams)
	if err != nil {
		t.Fatal(err)
	}
	// The fractional solution must land in the paper's regime: ⌈R⌉ = 3,
	// β ≈ 2 %, L′ within a few tens of ms of 0.1583 s.
	r := res.Fractional.Redundancy()
	if int(math.Ceil(r)) != res.PaperQ {
		t.Errorf("⌈R⌉ = %v, paper says Q = %d", math.Ceil(r), res.PaperQ)
	}
	if math.Abs(res.Fractional.Beta-res.PaperBeta) > 0.006 {
		t.Errorf("β = %v, paper says %v", res.Fractional.Beta, res.PaperBeta)
	}
	if math.Abs(res.Fractional.Latency/1e6-res.PaperLatency) > 0.01 {
		t.Errorf("L′ = %v s, paper says %v s", res.Fractional.Latency/1e6, res.PaperLatency)
	}
}

func TestRunAchievabilityAllTight(t *testing.T) {
	res, err := RunAchievability(StdParams)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 6 {
		t.Fatalf("expected ≥ 6 achievability rows, got %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if math.IsNaN(row.Ratio) {
			t.Errorf("%s: NaN ratio", row.Name)
			continue
		}
		if row.Ratio < 0.999 {
			t.Errorf("%s: measured beats the bound (ratio %v) — impossible", row.Name, row.Ratio)
		}
		if row.Ratio > 1.15 {
			t.Errorf("%s: ratio %v too far above 1; construction not tight", row.Name, row.Ratio)
		}
	}
}

func TestRunCollisionMCTracksEq12(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo")
	}
	res, err := RunCollisionMC(StdParams, 40)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		// Eq 12 with S−1 interferers per packet: both devices of a pair
		// transmit in the symmetric simulation, so even S=2 collides at
		// rate ≈ 1−e^(−2β).
		if math.Abs(row.Measured-row.Predicted) > 0.5*row.Predicted+0.01 {
			t.Errorf("S=%d: measured %v vs predicted %v", row.S, row.Measured, row.Predicted)
		}
	}
}

func TestRendersNonEmpty(t *testing.T) {
	t1, err := RunTable1(StdParams)
	if err != nil {
		t.Fatal(err)
	}
	ach, err := RunAchievability(StdParams)
	if err != nil {
		t.Fatal(err)
	}
	appb, err := RunAppendixB(StdParams)
	if err != nil {
		t.Fatal(err)
	}
	outputs := map[string]string{
		"table1":  t1.Render(),
		"fig6":    RunFigure6(StdParams).Render(),
		"fig7":    RunFigure7(StdParams).Render(),
		"slotted": RunSlottedAlpha(36).Render(),
		"appb":    appb.Render(),
		"achieve": ach.Render(),
	}
	for name, out := range outputs {
		if len(out) < 100 {
			t.Errorf("%s: render too short:\n%s", name, out)
		}
		if strings.Contains(out, "NaN") {
			t.Errorf("%s: render contains NaN:\n%s", name, out)
		}
	}
}

func rel(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}
