package eval

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/optimal"
	"repro/internal/protocols"
	"repro/internal/textplot"
	"repro/internal/timebase"
)

// Figure5Row quantifies the slot-alignment coverage loss at one I/ω ratio.
type Figure5Row struct {
	SlotLen         timebase.Ticks
	RatioIOverOmega float64
	HalfDuplexCov   float64 // covered offset fraction, half-duplex slots
	FullDuplexCov   float64 // covered offset fraction, full-duplex slots
	PredictedLoss   float64 // ≈ 2ω/I
}

// Figure5Result reproduces the paper's Figure 5 observation: with slot
// length I close to the packet airtime ω, a large fraction of offsets at
// which two active slots overlap still cannot deliver a packet, because
// the beacon lands in the other device's transmit/turnaround region. The
// loss shrinks as ≈ 2ω/I, which is why slotted protocols need I ≫ ω and
// why their latency (∝ I) cannot approach the slotless bounds.
type Figure5Result struct {
	Omega timebase.Ticks
	Rows  []Figure5Row
}

// RunFigure5 sweeps the slot length of a Disco(3,5) pair and measures the
// covered offset fraction under both slot layouts.
func RunFigure5(p core.Params) (Figure5Result, error) {
	res := Figure5Result{Omega: p.Omega}
	for _, slot := range []timebase.Ticks{3 * p.Omega, 4 * p.Omega, 8 * p.Omega, 16 * p.Omega, 64 * p.Omega} {
		d, err := protocols.NewDisco(3, 5, slot, p.Omega)
		if err != nil {
			return res, err
		}
		half, err := d.Device()
		if err != nil {
			return res, err
		}
		resHalf, err := coverage.Analyze(half.B, half.C, coverage.Options{})
		if err != nil {
			return res, err
		}
		full, err := d.DeviceFullDuplex()
		if err != nil {
			return res, err
		}
		resFull, err := coverage.Analyze(full.B, full.C, coverage.Options{})
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, Figure5Row{
			SlotLen:         slot,
			RatioIOverOmega: float64(slot) / float64(p.Omega),
			HalfDuplexCov:   resHalf.CoveredFraction,
			FullDuplexCov:   resFull.CoveredFraction,
			PredictedLoss:   2 * float64(p.Omega) / float64(slot),
		})
	}
	return res, nil
}

// Render formats the Figure 5 reproduction.
func (res Figure5Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 5 — coverage loss of slotted protocols near I ≈ ω (Disco(3,5))\n\n")
	t := textplot.NewTable("I", "I/ω", "covered (half-duplex)", "covered (full-duplex)", "predicted loss ≈ 2ω/I")
	for _, row := range res.Rows {
		t.AddF(row.SlotLen.String(), row.RatioIOverOmega,
			row.HalfDuplexCov, row.FullDuplexCov, row.PredictedLoss)
	}
	b.WriteString(t.String())
	b.WriteString("\nHalf-duplex slots lose ≈ 2ω/I of all offsets (the paper's Figure 5);\n")
	b.WriteString("the full-duplex idealization of §6.1.1 recovers full coverage.\n")
	return b.String()
}

// RenderCoverageMap reproduces a Figure-3b-style coverage map for the
// optimal unidirectional construction, as a live artifact of Section 4.1.
func RenderCoverageMap(p core.Params) (string, error) {
	u, err := optimal.NewUnidirectional(p.Omega, 8*p.Omega, 6, 1)
	if err != nil {
		return "", err
	}
	m, err := coverage.BuildMap(u.Sender, u.Listener, 6, coverage.Options{})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Coverage map (Section 4.1 / Figure 3b) — optimal pair, k = 6\n")
	b.WriteString(fmt.Sprintf("listener: one %v window per %v; sender: beacon every %v\n\n",
		u.D, u.Listener.Period, u.Lambda))
	b.WriteString(m.Render(60))
	b.WriteString(fmt.Sprintf("\nΛ (total coverage, Def 4.3) = %v = m·Σd = %d·%v (Theorem 4.2)\n",
		m.TotalCoverage(), len(m.Omegas), u.D))
	return b.String(), nil
}

// AssistanceResult compares direct bidirectional discovery against the
// Appendix C quadruple with mutual assistance (the Griassdi mechanism).
type AssistanceResult struct {
	Params core.Params
	Rows   []AssistanceRow
}

// AssistanceRow is one duty-cycle operating point.
type AssistanceRow struct {
	Eta           float64
	DirectWorst   timebase.Ticks // optimal direct bidirectional (Thm 5.5)
	OneWayWorst   timebase.Ticks // quadruple one-way (Thm C.1)
	AssistedWorst timebase.Ticks // quadruple + assisted reply, two-way
	AssistedMean  float64
	WorstPenalty  timebase.Ticks
}

// RunAssistance evaluates mutual assistance across duty cycles.
func RunAssistance(p core.Params) (AssistanceResult, error) {
	res := AssistanceResult{Params: p}
	for _, eta := range []float64{0.02, 0.05, 0.1} {
		direct, err := optimal.NewSymmetric(p.Omega, p.Alpha, eta)
		if err != nil {
			return res, err
		}
		quad, err := optimal.ForEta(p.Omega, p.Alpha, eta)
		if err != nil {
			return res, err
		}
		covered, oneWay := optimal.VerifyMutualExclusive(quad)
		if !covered {
			return res, fmt.Errorf("eval: quadruple at η=%v not covered", eta)
		}
		assist := optimal.EvaluateAssistance(quad)
		res.Rows = append(res.Rows, AssistanceRow{
			Eta:           eta,
			DirectWorst:   direct.WorstCase(),
			OneWayWorst:   oneWay,
			AssistedWorst: assist.TwoWayWorst,
			AssistedMean:  assist.TwoWayMean,
			WorstPenalty:  assist.WorstPenalty,
		})
	}
	return res, nil
}

// Render formats the mutual-assistance comparison.
func (res AssistanceResult) Render() string {
	var b strings.Builder
	b.WriteString("Appendix C + mutual assistance — two-way discovery strategies\n\n")
	t := textplot.NewTable("η", "direct 2-way (Thm 5.5)", "quad 1-way (Thm C.1)",
		"quad+assist 2-way worst", "quad+assist 2-way mean", "worst penalty")
	for _, row := range res.Rows {
		t.AddF(row.Eta, row.DirectWorst.String(), row.OneWayWorst.String(),
			row.AssistedWorst.String(), fmt.Sprintf("%.4gms", row.AssistedMean/1000),
			row.WorstPenalty.String())
	}
	b.WriteString(t.String())
	b.WriteString("\nThe quadruple discovers one way in half the direct protocol's time;\n")
	b.WriteString("the assisted reply costs at most one window period, so two-way worst\n")
	b.WriteString("cases are comparable while the mean improves substantially.\n")
	return b.String()
}
