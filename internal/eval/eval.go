// Package eval regenerates every quantitative artifact of the paper's
// evaluation: Table 1, Figure 6, Figure 7, the Section 6.1 slotted-limit
// comparisons (Equations 18/19), the Appendix B worked example, and an
// achievability table certifying that the constructions of package optimal
// meet the bounds of package core. Each experiment returns structured rows
// (for tests and benchmarks) and renders itself as text (for cmd/ndeval).
package eval

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/collision"
	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/optimal"
	"repro/internal/protocols"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/textplot"
	"repro/internal/timebase"
)

// StdParams is the paper's evaluation setup: ω = 36 µs, α = 1.
var StdParams = core.Params{Omega: 36, Alpha: 1}

// ---------------------------------------------------------------- Table 1

// Table1Row is one evaluated cell family of Table 1: all four protocol
// formulas plus the fundamental bound at one (η, β) operating point.
type Table1Row struct {
	Eta, Beta   float64
	Fundamental float64 // Theorem 5.6 (= Eq 21 in this regime), ticks
	Diffcodes   float64
	Searchlight float64
	Disco       float64
	UConnect    float64
}

// Table1Validation is one measured protocol instance: the coverage engine's
// exact worst-case latency against the closed-form expectation.
type Table1Validation struct {
	Name             string
	Eta, Beta        float64 // achieved by the concrete schedule
	SlotBound        timebase.Ticks
	Measured         timebase.Ticks
	OptimalityVsEq21 float64 // measured / Eq21(η, β): ≥ 1, smaller is better

	// OptimalityVsEq21Single re-normalizes to the Table 1 derivation's
	// single-packet-per-slot model (Eq 20: β = kω/IT): our schedules send
	// two packets per active slot to guarantee one-way discovery under
	// arbitrary phase offsets, which doubles β relative to the model the
	// formulas assume. Diffcodes land near 1.0 in this column.
	OptimalityVsEq21Single float64
}

// Table1Result reproduces Table 1.
type Table1Result struct {
	Params      core.Params
	Rows        []Table1Row
	Validations []Table1Validation
}

// RunTable1 evaluates the Table 1 formulas over an operating grid and
// re-measures concrete instances of each protocol with the coverage engine.
func RunTable1(p core.Params) (Table1Result, error) {
	res := Table1Result{Params: p}
	for _, eta := range []float64{0.01, 0.02, 0.05, 0.10} {
		beta := p.OptimalBeta(eta) // β = η/2α, where Eq 21 = Thm 5.6
		res.Rows = append(res.Rows, Table1Row{
			Eta: eta, Beta: beta,
			Fundamental: p.Constrained(eta, beta),
			Diffcodes:   p.Table1Latency(core.Diffcodes, eta, beta),
			Searchlight: p.Table1Latency(core.SearchlightS, eta, beta),
			Disco:       p.Table1Latency(core.Disco, eta, beta),
			UConnect:    p.Table1Latency(core.UConnect, eta, beta),
		})
	}

	slotLen := timebase.Ticks(1000)
	builds := []struct {
		name  string
		build func() (*protocols.Slotted, error)
	}{
		{"Diffcode(q=4)", func() (*protocols.Slotted, error) { return protocols.NewDiffcode(4, slotLen, p.Omega) }},
		{"Diffcode(q=5)", func() (*protocols.Slotted, error) { return protocols.NewDiffcode(5, slotLen, p.Omega) }},
		{"Searchlight(8)", func() (*protocols.Slotted, error) { return protocols.NewSearchlight(8, false, slotLen, p.Omega) }},
		{"Disco(5,7)", func() (*protocols.Slotted, error) { return protocols.NewDisco(5, 7, slotLen, p.Omega) }},
		{"U-Connect(5)", func() (*protocols.Slotted, error) { return protocols.NewUConnect(5, slotLen, p.Omega) }},
	}
	for _, b := range builds {
		s, err := b.build()
		if err != nil {
			return res, fmt.Errorf("eval: building %s: %w", b.name, err)
		}
		dev, err := s.DeviceFullDuplex()
		if err != nil {
			return res, err
		}
		ana, err := coverage.Analyze(dev.B, dev.C, coverage.Options{})
		if err != nil {
			return res, err
		}
		if !ana.Deterministic {
			return res, fmt.Errorf("eval: %s not deterministic", b.name)
		}
		eta := s.Eta(p.Alpha)
		beta := s.Beta()
		betaSingle := beta / 2 // Eq 20's one-packet-per-slot accounting
		etaSingle := eta - p.Alpha*betaSingle
		res.Validations = append(res.Validations, Table1Validation{
			Name: b.name, Eta: eta, Beta: beta,
			SlotBound:        s.WorstCaseTime(),
			Measured:         ana.WorstLatency,
			OptimalityVsEq21: core.OptimalityRatio(float64(ana.WorstLatency), p.SlottedChannelBound(eta, beta)),
			OptimalityVsEq21Single: core.OptimalityRatio(float64(ana.WorstLatency),
				p.SlottedChannelBound(etaSingle, betaSingle)),
		})
	}
	return res, nil
}

// Render formats the Table 1 reproduction.
func (r Table1Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 1 — worst-case latencies of slotted protocols, dm(β, η) in ms\n")
	b.WriteString(fmt.Sprintf("(ω = %v, α = %.3g, β = η/2α)\n\n", r.Params.Omega, r.Params.Alpha))
	t := textplot.NewTable("η", "β", "bound(Thm 5.6)", "Diffcodes", "Searchlight-S", "Disco", "U-Connect")
	for _, row := range r.Rows {
		t.AddF(row.Eta, row.Beta, ms(row.Fundamental), ms(row.Diffcodes),
			ms(row.Searchlight), ms(row.Disco), ms(row.UConnect))
	}
	b.WriteString(t.String())
	b.WriteString("\nMeasured validation (coverage engine, full-duplex slots):\n")
	v := textplot.NewTable("protocol", "η", "β", "slot bound", "measured",
		"measured/Eq21", "measured/Eq21 (1-pkt model)")
	for _, val := range r.Validations {
		v.AddF(val.Name, val.Eta, val.Beta, val.SlotBound.String(),
			val.Measured.String(), val.OptimalityVsEq21, val.OptimalityVsEq21Single)
	}
	b.WriteString(v.String())
	return b.String()
}

// ---------------------------------------------------------------- Figure 6

// Figure6Point is one evaluated point of Figure 6.
type Figure6Point struct {
	Sum           float64 // ηE + ηF
	Ratio         float64 // r = ηE / ηF
	EtaE          float64
	EtaF          float64
	L             float64 // Theorem 5.7 bound, ticks
	LTimesSum     float64
	LTimesProduct float64 // invariant: = 4αω for every point
}

// Figure6Result reproduces Figure 6: the product of the worst-case bound
// and the joint duty-cycle over the duty-cycle sum, for several asymmetry
// ratios, with the symmetric bound as reference.
type Figure6Result struct {
	Params core.Params
	Ratios []float64
	Sums   []float64
	Points []Figure6Point
}

// RunFigure6 evaluates the asymmetric bound across sums and ratios.
func RunFigure6(p core.Params) Figure6Result {
	res := Figure6Result{
		Params: p,
		Ratios: []float64{1, 2, 4, 10},
	}
	for s := 0.002; s <= 0.2+1e-12; s *= math.Sqrt2 {
		res.Sums = append(res.Sums, s)
	}
	for _, r := range res.Ratios {
		for _, s := range res.Sums {
			etaF := s / (1 + r)
			etaE := s - etaF
			l := p.Asymmetric(etaE, etaF)
			res.Points = append(res.Points, Figure6Point{
				Sum: s, Ratio: r, EtaE: etaE, EtaF: etaF,
				L: l, LTimesSum: l * s, LTimesProduct: l * etaE * etaF,
			})
		}
	}
	return res
}

// PenaltyFactor returns (1+r)²/(4r): the exact factor by which the
// L·(ηE+ηF) curve of asymmetry ratio r sits above the symmetric curve,
// independent of the sum. The paper's Figure 6 reads this as "no cost for
// asymmetry"; the factor is 1.0 at r=1, 1.125 at r=2 and 3.025 at r=10.
func (res Figure6Result) PenaltyFactor(r float64) float64 {
	return (1 + r) * (1 + r) / (4 * r)
}

// Render formats the Figure 6 reproduction.
func (res Figure6Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 6 — L · (ηE + ηF) over the joint duty-cycle (Theorem 5.7)\n\n")
	plot := textplot.Plot{
		Title: "L·(ηE+ηF) [s] vs ηE+ηF (log-log)", LogX: true, LogY: true,
		XLabel: "ηE+ηF", YLabel: "L·(ηE+ηF) in s",
	}
	markers := []rune{'s', '2', '4', 'x'}
	for i, r := range res.Ratios {
		var xs, ys []float64
		for _, pt := range res.Points {
			if pt.Ratio == r {
				xs = append(xs, pt.Sum)
				ys = append(ys, pt.LTimesSum/1e6)
			}
		}
		plot.AddSeries(fmt.Sprintf("ηE/ηF = %g (penalty ×%.3f)", r, res.PenaltyFactor(r)), markers[i%len(markers)], xs, ys)
	}
	b.WriteString(plot.String())
	b.WriteString("\nInvariant check: L·ηE·ηF = 4αω for every point ")
	worst := 0.0
	for _, pt := range res.Points {
		if dev := math.Abs(pt.LTimesProduct-4*res.Params.Alpha*float64(res.Params.Omega)) / (4 * res.Params.Alpha * float64(res.Params.Omega)); dev > worst {
			worst = dev
		}
	}
	b.WriteString(fmt.Sprintf("(max deviation %.2g)\n", worst))
	return b.String()
}

// ---------------------------------------------------------------- Figure 7

// Figure7Series is one S-transmitters curve of Figure 7.
type Figure7Series struct {
	S         int
	BetaMax   float64   // channel-utilization cap from Pc ≤ 1 %
	Crossover float64   // η = 2αβm: constraint becomes active (the circles)
	Etas      []float64 // duty-cycle sweep
	Latency   []float64 // Theorem 5.6 bound, ticks
}

// Figure7Result reproduces Figure 7.
type Figure7Result struct {
	Params        core.Params
	PcMax         float64
	Unconstrained []float64 // 4αω/η² reference over Etas
	Etas          []float64
	Series        []Figure7Series
}

// RunFigure7 evaluates the collision-rate-constrained bounds for
// S ∈ {10, 100, 1000} at Pc ≤ 1 %, as in the paper.
func RunFigure7(p core.Params) Figure7Result {
	res := Figure7Result{Params: p, PcMax: 0.01}
	for eta := 0.0005; eta <= 1.0+1e-12; eta *= 1.2 {
		res.Etas = append(res.Etas, eta)
	}
	res.Unconstrained = make([]float64, len(res.Etas))
	for i, eta := range res.Etas {
		res.Unconstrained[i] = p.Symmetric(eta)
	}
	for _, s := range []int{10, 100, 1000} {
		lat, crossover := collision.ConstrainedSeries(p, res.Etas, s, res.PcMax)
		res.Series = append(res.Series, Figure7Series{
			S:         s,
			BetaMax:   core.MaxBetaForCollisionRate(s, res.PcMax),
			Crossover: crossover,
			Etas:      res.Etas,
			Latency:   lat,
		})
	}
	return res
}

// Render formats the Figure 7 reproduction.
func (res Figure7Result) Render() string {
	var b strings.Builder
	b.WriteString(fmt.Sprintf("Figure 7 — bounds on L with collision rate ≤ %.0f%% (ω=%v, α=%g)\n\n",
		res.PcMax*100, res.Params.Omega, res.Params.Alpha))
	plot := textplot.Plot{
		Title: "L [s] vs duty-cycle η (log-log)", LogX: true, LogY: true,
		XLabel: "η", YLabel: "L in s",
	}
	var xs, ys []float64
	for i, eta := range res.Etas {
		if !math.IsNaN(res.Unconstrained[i]) {
			xs = append(xs, eta)
			ys = append(ys, res.Unconstrained[i]/1e6)
		}
	}
	plot.AddSeries("unconstrained 4αω/η²", '·', xs, ys)
	markers := []rune{'1', '2', '3'}
	for i, s := range res.Series {
		var sx, sy []float64
		for j, eta := range s.Etas {
			if !math.IsNaN(s.Latency[j]) {
				sx = append(sx, eta)
				sy = append(sy, s.Latency[j]/1e6)
			}
		}
		plot.AddSeries(fmt.Sprintf("S=%d (βm=%.4g, crossover η=%.4g)", s.S, s.BetaMax, s.Crossover),
			markers[i%len(markers)], sx, sy)
	}
	b.WriteString(plot.String())
	return b.String()
}

// ------------------------------------------------- Section 6.1 (Eq 18/19)

// SlottedAlphaRow compares the slotted latency limits to the fundamental
// bound at one power ratio α.
type SlottedAlphaRow struct {
	Alpha      float64
	ZhengRatio float64 // Eq 18 / Theorem 5.5
	CodeRatio  float64 // Eq 19 / Theorem 5.5
}

// SlottedAlphaResult reproduces the Section 6.1.1 analysis.
type SlottedAlphaResult struct {
	Omega timebase.Ticks
	Rows  []SlottedAlphaRow
}

// RunSlottedAlpha sweeps α and reports how far the slotted limits sit above
// the fundamental bound: Eq 18 touches it exactly at α = 1, Eq 19 at α = ½.
func RunSlottedAlpha(omega timebase.Ticks) SlottedAlphaResult {
	res := SlottedAlphaResult{Omega: omega}
	for _, alpha := range []float64{0.1, 0.25, 0.5, 0.75, 1, 1.5, 2, 4, 8} {
		p := core.Params{Omega: omega, Alpha: alpha}
		eta := 0.05 // ratios are η-independent
		res.Rows = append(res.Rows, SlottedAlphaRow{
			Alpha:      alpha,
			ZhengRatio: p.SlottedZhengTime(eta) / p.Symmetric(eta),
			CodeRatio:  p.SlottedCodeTime(eta) / p.Symmetric(eta),
		})
	}
	return res
}

// Render formats the slotted-limit comparison.
func (res SlottedAlphaResult) Render() string {
	var b strings.Builder
	b.WriteString("Section 6.1.1 — slotted latency limits vs the fundamental bound\n")
	b.WriteString("(ratio 1.0 = meets the bound; Eq 18 at α=1, Eq 19 at α=0.5)\n\n")
	t := textplot.NewTable("α", "Eq18 / Thm5.5 (Zheng, I=ω)", "Eq19 / Thm5.5 (code-based)")
	for _, row := range res.Rows {
		t.AddF(row.Alpha, row.ZhengRatio, row.CodeRatio)
	}
	b.WriteString(t.String())
	return b.String()
}

// ------------------------------------------------------------- Appendix B

// AppendixBResult reproduces the Appendix B worked example.
type AppendixBResult struct {
	Params     core.Params
	Eta, Pf    float64
	S          int
	IntegerQ   collision.Solution
	Fractional collision.Solution

	// Paper-reported reference values for the same inputs.
	PaperQ       int
	PaperLatency float64 // seconds
	PaperBeta    float64
}

// RunAppendixB solves the paper's example (η=5 %, Pf=0.05 %, S=3).
func RunAppendixB(p core.Params) (AppendixBResult, error) {
	res := AppendixBResult{
		Params: p, Eta: 0.05, Pf: 0.0005, S: 3,
		PaperQ: 3, PaperLatency: 0.1583, PaperBeta: 0.0207,
	}
	var err error
	res.IntegerQ, err = collision.SolveIntegerQ(p, res.Eta, res.Pf, res.S, 8)
	if err != nil {
		return res, err
	}
	res.Fractional, err = collision.SolveFractional(p, res.Eta, res.Pf, res.S, 8)
	return res, err
}

// Render formats the Appendix B comparison.
func (res AppendixBResult) Render() string {
	var b strings.Builder
	b.WriteString(fmt.Sprintf("Appendix B — redundancy under collisions (η=%.3g, Pf=%.3g, S=%d)\n\n",
		res.Eta, res.Pf, res.S))
	t := textplot.NewTable("solver", "Q", "q", "β", "Pc", "L′ [s]")
	t.AddF("paper (reported)", res.PaperQ, "—", res.PaperBeta, 0.079, res.PaperLatency)
	t.AddF("integer Q (Eq 32, q=0)", res.IntegerQ.Q, res.IntegerQ.QFrac,
		res.IntegerQ.Beta, res.IntegerQ.Pc, res.IntegerQ.Latency/1e6)
	t.AddF("fractional (Q+q)", res.Fractional.Q, res.Fractional.QFrac,
		res.Fractional.Beta, res.Fractional.Pc, res.Fractional.Latency/1e6)
	b.WriteString(t.String())
	b.WriteString("\nSee EXPERIMENTS.md for why the paper's exact L′ is not recoverable\nfrom Eq 32/33 and how the regime reproduces.\n")
	return b.String()
}

// -------------------------------------------------------- Achievability

// AchievabilityRow certifies one construction against its bound.
type AchievabilityRow struct {
	Name     string
	Eta      float64 // achieved duty-cycle (per device)
	Bound    float64 // closed-form bound at achieved duty-cycles, ticks
	Measured timebase.Ticks
	Ratio    float64 // measured / bound; 1.0 = bound met exactly
}

// AchievabilityResult is the constructive-tightness table: every bound in
// Section 5 / Appendix C paired with a schedule that meets it.
type AchievabilityResult struct {
	Params core.Params
	Rows   []AchievabilityRow
}

// RunAchievability builds optimal schedules across duty-cycles and
// re-measures them with the coverage engine.
func RunAchievability(p core.Params) (AchievabilityResult, error) {
	res := AchievabilityResult{Params: p}

	for _, eta := range []float64{0.01, 0.02, 0.05} {
		pair, err := optimal.NewSymmetric(p.Omega, p.Alpha, eta)
		if err != nil {
			return res, err
		}
		ana, err := coverage.Analyze(pair.E.B, pair.F.C, coverage.Options{})
		if err != nil {
			return res, err
		}
		etaAch := pair.E.Eta(p.Alpha)
		bound := p.Symmetric(etaAch)
		res.Rows = append(res.Rows, AchievabilityRow{
			Name: fmt.Sprintf("symmetric (Thm 5.5) η=%.3g", eta),
			Eta:  etaAch, Bound: bound, Measured: ana.WorstLatency,
			Ratio: core.OptimalityRatio(float64(ana.WorstLatency), bound),
		})
	}

	pair, err := optimal.NewAsymmetric(p.Omega, p.Alpha, 0.02, 0.08)
	if err != nil {
		return res, err
	}
	anaEF, err := coverage.Analyze(pair.E.B, pair.F.C, coverage.Options{})
	if err != nil {
		return res, err
	}
	anaFE, err := coverage.Analyze(pair.F.B, pair.E.C, coverage.Options{})
	if err != nil {
		return res, err
	}
	measured := anaEF.WorstLatency
	if anaFE.WorstLatency > measured {
		measured = anaFE.WorstLatency
	}
	bound := p.Asymmetric(pair.E.Eta(p.Alpha), pair.F.Eta(p.Alpha))
	res.Rows = append(res.Rows, AchievabilityRow{
		Name: "asymmetric (Thm 5.7) ηE=0.02 ηF=0.08",
		Eta:  pair.E.Eta(p.Alpha) + pair.F.Eta(p.Alpha), Bound: bound, Measured: measured,
		Ratio: core.OptimalityRatio(float64(measured), bound),
	})

	cPair, err := optimal.NewConstrained(p.Omega, p.Alpha, 0.05, 0.005)
	if err != nil {
		return res, err
	}
	anaC, err := coverage.Analyze(cPair.E.B, cPair.F.C, coverage.Options{})
	if err != nil {
		return res, err
	}
	etaAch := cPair.E.Eta(p.Alpha)
	boundC := p.Constrained(etaAch, cPair.E.B.Beta())
	res.Rows = append(res.Rows, AchievabilityRow{
		Name: "constrained (Thm 5.6) η=0.05 βm=0.005",
		Eta:  etaAch, Bound: boundC, Measured: anaC.WorstLatency,
		Ratio: core.OptimalityRatio(float64(anaC.WorstLatency), boundC),
	})

	quad, err := optimal.ForEta(p.Omega, p.Alpha, 0.05)
	if err != nil {
		return res, err
	}
	covered, worst := optimal.VerifyMutualExclusive(quad)
	if !covered {
		return res, fmt.Errorf("eval: mutual-exclusive quadruple has uncovered offsets")
	}
	etaQ := quad.Eta(p.Alpha)
	boundQ := p.MutualExclusive(etaQ)
	res.Rows = append(res.Rows, AchievabilityRow{
		Name: "mutual-exclusive (Thm C.1) η=0.05",
		Eta:  etaQ, Bound: boundQ, Measured: worst,
		Ratio: core.OptimalityRatio(float64(worst), boundQ),
	})
	return res, nil
}

// Render formats the achievability table.
func (res AchievabilityResult) Render() string {
	var b strings.Builder
	b.WriteString("Achievability — constructions vs bounds (ratio 1.0 = tight)\n\n")
	t := textplot.NewTable("construction", "η achieved", "bound", "measured", "ratio")
	for _, row := range res.Rows {
		t.AddF(row.Name, row.Eta, ms(row.Bound), row.Measured.String(), row.Ratio)
	}
	b.WriteString(t.String())
	return b.String()
}

// --------------------------------------------------- Monte-Carlo collisions

// CollisionMCRow compares a measured group-simulation collision rate to the
// Equation 12 prediction.
type CollisionMCRow struct {
	S         int
	Beta      float64
	Predicted float64
	Measured  float64
	Failure   float64 // fraction of pairs undiscovered within the horizon
}

// CollisionMCResult validates Equation 12 in the event simulator.
type CollisionMCResult struct {
	Rows []CollisionMCRow
}

// RunCollisionMC simulates S jittered beaconers and measures collisions.
func RunCollisionMC(p core.Params, trials int) (CollisionMCResult, error) {
	res := CollisionMCResult{}
	gap := timebase.Ticks(3600) // β ≈ 0.01 with ω=36
	b, err := schedule.NewEqualGapBeacons(1, gap, p.Omega, 0)
	if err != nil {
		return res, err
	}
	dev := schedule.Device{B: b, C: schedule.WindowSeq{
		Windows: []schedule.Window{{Start: gap - 360, Len: 360}}, Period: gap}}
	beta := dev.B.Beta()
	for _, s := range []int{2, 5, 10, 20} {
		group, err := sim.GroupDiscovery(dev, s, trials, sim.Config{
			Horizon:    60 * gap,
			Collisions: true,
			Jitter:     gap / 3,
			Seed:       1234,
		})
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, CollisionMCRow{
			S: s, Beta: beta,
			Predicted: core.CollisionProbability(s, beta),
			Measured:  group.CollisionRate,
			Failure:   group.Latency.FailureRate(),
		})
	}
	return res, nil
}

// Render formats the Monte-Carlo collision validation.
func (res CollisionMCResult) Render() string {
	var b strings.Builder
	b.WriteString("Equation 12 validation — simulated vs predicted collision rates\n\n")
	t := textplot.NewTable("S", "β", "Pc predicted (Eq 12)", "Pc simulated", "pair failure rate")
	for _, row := range res.Rows {
		t.AddF(row.S, row.Beta, row.Predicted, row.Measured, row.Failure)
	}
	b.WriteString(t.String())
	return b.String()
}

func ms(ticks float64) string {
	if math.IsNaN(ticks) {
		return "—"
	}
	return fmt.Sprintf("%.4g ms", ticks/1000)
}
