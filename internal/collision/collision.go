// Package collision solves the Appendix B trade-off of the paper: when S
// devices discover each other simultaneously, beacons collide (Equation
// 12), and a protocol can buy robustness by covering every initial offset
// redundantly — a fraction q of offsets Q+1 times, the rest Q times
// (Equation 32) — at the cost of a longer latency L′ (Equation 33). Given a
// duty-cycle η, an acceptable failure rate Pf and a contender count S, the
// solvers below find the redundancy degree and the transmit/receive split
// that minimize L′.
//
// The paper gives this optimization implicitly ("numeric solutions are
// feasible") and works one example; this package is the numeric solver, and
// the test suite pins its output against the paper's example regime.
package collision

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// Solution is an operating point of the Appendix B trade-off.
type Solution struct {
	Q     int     // every offset covered at least Q times
	QFrac float64 // fraction q of offsets covered Q+1 times (0 for integer solutions)

	Beta  float64 // transmit duty-cycle = channel utilization
	Gamma float64 // receive duty-cycle

	Pc      float64 // per-beacon collision probability at Beta (Eq 12, S−2 interferers)
	Pf      float64 // achieved failure rate (≤ the requested bound)
	Latency float64 // L′ in ticks: (Q+q)·ω/(β·γ)
}

// Redundancy returns the effective redundancy degree R = Q + q.
func (s Solution) Redundancy() float64 { return float64(s.Q) + s.QFrac }

// betaGrid controls the resolution of the numeric search over β.
const betaGrid = 4000

// SolveIntegerQ finds, for q = 0 (every offset covered exactly Q times),
// the integer Q and split β that minimize L′ = Q·ω/(βγ) subject to
// Pc(β)^Q ≤ pf, for Q = 1..maxQ. This is the paper's "Assuming q = 0"
// simplification.
func SolveIntegerQ(p core.Params, eta, pf float64, s, maxQ int) (Solution, error) {
	if err := checkArgs(p, eta, pf, s); err != nil {
		return Solution{}, err
	}
	if maxQ < 1 {
		return Solution{}, fmt.Errorf("collision: maxQ=%d must be ≥ 1", maxQ)
	}
	best := Solution{Latency: math.Inf(1)}
	for q := 1; q <= maxQ; q++ {
		sol, ok := bestBetaForQ(p, eta, pf, s, q, 0)
		if ok && sol.Latency < best.Latency {
			best = sol
		}
	}
	if math.IsInf(best.Latency, 1) {
		return Solution{}, fmt.Errorf("collision: no feasible (Q ≤ %d, β) meets Pf=%v for S=%d at η=%v", maxQ, pf, s, eta)
	}
	return best, nil
}

// SolveFractional optimizes over (Q, q, β) jointly: for every candidate β
// it finds the smallest effective redundancy R = Q + q whose Equation 32
// failure rate meets pf — q is solved from the linear interpolation
// (1−q)·Pc^Q + q·Pc^(Q+1) = pf — and minimizes L′ = (Q+q)·ω/(βγ). This is
// the theoretical optimum under the complete-decorrelation assumption, and
// it reproduces the paper's Appendix B example (its "Q = 3" is the
// q ≈ 0.73 fraction of offsets covered three times).
func SolveFractional(p core.Params, eta, pf float64, s, maxQ int) (Solution, error) {
	if err := checkArgs(p, eta, pf, s); err != nil {
		return Solution{}, err
	}
	best := Solution{Latency: math.Inf(1)}
	w := float64(p.Omega)
	for i := 1; i < betaGrid; i++ {
		beta := eta / p.Alpha * float64(i) / betaGrid
		gamma := eta - p.Alpha*beta
		if gamma <= 0 {
			break
		}
		pc := collisionProb(s, beta)
		bigQ, frac, ok := minimalRedundancy(pc, pf, maxQ)
		if !ok {
			continue
		}
		r := float64(bigQ) + frac
		lat := r * w / (beta * gamma)
		if lat < best.Latency {
			best = Solution{
				Q: bigQ, QFrac: frac,
				Beta: beta, Gamma: gamma,
				Pc: pc, Pf: core.RedundantFailureRate(frac, bigQ, s, beta),
				Latency: lat,
			}
		}
	}
	if math.IsInf(best.Latency, 1) {
		return Solution{}, fmt.Errorf("collision: no feasible β meets Pf=%v for S=%d at η=%v", pf, s, eta)
	}
	return best, nil
}

// minimalRedundancy returns the smallest (Q, q) meeting
// (1−q)·pc^Q + q·pc^(Q+1) ≤ pf, minimizing the effective redundancy Q+q.
func minimalRedundancy(pc, pf float64, maxQ int) (bigQ int, q float64, ok bool) {
	if pc <= 0 {
		return 1, 0, true // collisions impossible: single coverage suffices
	}
	if pc >= 1 {
		return 0, 0, false // every beacon collides
	}
	// Smallest integer n with pc^n ≤ pf.
	n := int(math.Ceil(math.Log(pf) / math.Log(pc)))
	if n < 1 {
		n = 1
	}
	if maxQ > 0 && n > maxQ+1 {
		return 0, 0, false
	}
	if n == 1 {
		return 1, 0, true
	}
	// Try to shave the last integer step: Q = n−1 with fractional q from
	// the linear Equation 32.
	pcQ := math.Pow(pc, float64(n-1))
	pcQ1 := pcQ * pc
	q = (pcQ - pf) / (pcQ - pcQ1)
	if q >= 0 && q <= 1 {
		return n - 1, q, true
	}
	return n, 0, true
}

// bestBetaForQ grid-searches β for a fixed integer Q with q = 0.
func bestBetaForQ(p core.Params, eta, pf float64, s, q int, _ float64) (Solution, bool) {
	w := float64(p.Omega)
	best := Solution{Latency: math.Inf(1)}
	found := false
	for i := 1; i < betaGrid; i++ {
		beta := eta / p.Alpha * float64(i) / betaGrid
		gamma := eta - p.Alpha*beta
		if gamma <= 0 {
			break
		}
		pc := collisionProb(s, beta)
		pfAt := math.Pow(pc, float64(q))
		if pfAt > pf {
			continue
		}
		lat := float64(q) * w / (beta * gamma)
		if lat < best.Latency {
			best = Solution{Q: q, Beta: beta, Gamma: gamma, Pc: pc, Pf: pfAt, Latency: lat}
			found = true
		}
	}
	return best, found
}

// collisionProb is Equation 12 with S−2 relevant interferers (the two
// devices of the discovering pair never collide with themselves).
func collisionProb(s int, beta float64) float64 {
	if s <= 2 {
		return 0
	}
	return 1 - math.Exp(-2*float64(s-2)*beta)
}

func checkArgs(p core.Params, eta, pf float64, s int) error {
	if !p.Valid() {
		return fmt.Errorf("collision: invalid radio params %+v", p)
	}
	if eta <= 0 || eta >= 1 {
		return fmt.Errorf("collision: η=%v out of range", eta)
	}
	if pf <= 0 || pf >= 1 {
		return fmt.Errorf("collision: Pf=%v out of range", pf)
	}
	if s < 2 {
		return fmt.Errorf("collision: S=%d must be ≥ 2", s)
	}
	return nil
}

// ConstrainedSeries evaluates Theorem 5.6 over a duty-cycle sweep for the
// channel-utilization cap that keeps the per-beacon collision probability
// of s simultaneous transmitters at or below pcMax — the construction
// behind Figure 7. It returns, for each η, the latency bound in ticks, plus
// the crossover duty-cycle 2αβm below which the constraint is inactive.
func ConstrainedSeries(p core.Params, etas []float64, s int, pcMax float64) (latencies []float64, crossover float64) {
	bm := core.MaxBetaForCollisionRate(s, pcMax)
	latencies = make([]float64, len(etas))
	for i, eta := range etas {
		latencies[i] = p.Constrained(eta, bm)
	}
	return latencies, 2 * p.Alpha * bm
}
