package collision

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/timebase"
)

// paperParams is the Appendix B worked example: ω = 36 µs, α = 1, η = 5 %,
// Pf = 0.05 %, S = 3.
var paperParams = core.Params{Omega: 36, Alpha: 1}

func TestSolveIntegerQPaperExample(t *testing.T) {
	sol, err := SolveIntegerQ(paperParams, 0.05, 0.0005, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports Q = 3, L′ = 0.1583 s, channel utilization 2.07 %.
	// Under Eq 32/33 with q = 0 the optimum lands at Q = 2 with L′ ≈ 0.165 s
	// (see EXPERIMENTS.md for the algebra); we pin the regime rather than
	// the paper's irreproducible point values.
	if sol.Q < 2 || sol.Q > 3 {
		t.Errorf("Q = %d, want 2 or 3", sol.Q)
	}
	seconds := sol.Latency / 1e6
	if seconds < 0.10 || seconds > 0.20 {
		t.Errorf("L′ = %v s, want within [0.10, 0.20] (paper: 0.1583)", seconds)
	}
	if sol.Pf > 0.0005 {
		t.Errorf("achieved Pf %v exceeds the bound", sol.Pf)
	}
	// Energy budget must be respected.
	if got := sol.Beta + sol.Gamma; math.Abs(got-0.05) > 1e-9 {
		t.Errorf("β+γ = %v, want 0.05", got)
	}
}

func TestSolveFractionalPaperExample(t *testing.T) {
	sol, err := SolveFractional(paperParams, 0.05, 0.0005, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Continuous optimum: R ≈ 2.3–2.8 (so ⌈R⌉ = 3, matching the paper's
	// "optimal value of Q is 3"), β ≈ 2 %, L′ ≈ 0.14 s.
	r := sol.Redundancy()
	if r < 2.0 || r > 3.0 {
		t.Errorf("R = %v, want within [2, 3]", r)
	}
	if sol.Beta < 0.015 || sol.Beta > 0.027 {
		t.Errorf("β = %v, want ≈ 0.02 (paper: 0.0207)", sol.Beta)
	}
	seconds := sol.Latency / 1e6
	if seconds < 0.12 || seconds > 0.17 {
		t.Errorf("L′ = %v s, want ≈ 0.14 (paper: 0.1583)", seconds)
	}
	// Fractional relaxation can only improve on integer Q.
	intSol, err := SolveIntegerQ(paperParams, 0.05, 0.0005, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Latency > intSol.Latency+1e-9 {
		t.Errorf("fractional L′ %v worse than integer L′ %v", sol.Latency, intSol.Latency)
	}
}

func TestTwoDevicesNeverCollide(t *testing.T) {
	// S = 2: the discovering pair has no interferers, so Q = 1 and the
	// optimal split is the unconstrained β = η/2α.
	sol, err := SolveFractional(paperParams, 0.05, 0.0005, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Q != 1 || sol.QFrac != 0 {
		t.Errorf("S=2 should need no redundancy: %+v", sol)
	}
	if sol.Pc != 0 || sol.Pf != 0 {
		t.Errorf("S=2 collision stats nonzero: %+v", sol)
	}
	// L′ should approach the symmetric bound 4αω/η².
	want := paperParams.Symmetric(0.05)
	if math.Abs(sol.Latency-want)/want > 0.01 {
		t.Errorf("S=2 latency %v, want ≈ %v", sol.Latency, want)
	}
}

func TestMoreContendersNeedMoreRedundancy(t *testing.T) {
	prevR := 0.0
	prevL := 0.0
	for _, s := range []int{3, 10, 50, 200} {
		sol, err := SolveFractional(paperParams, 0.05, 0.0005, s, 50)
		if err != nil {
			t.Fatalf("S=%d: %v", s, err)
		}
		if sol.Redundancy() < prevR {
			t.Errorf("S=%d: redundancy %v decreased from %v", s, sol.Redundancy(), prevR)
		}
		if sol.Latency < prevL {
			t.Errorf("S=%d: latency %v decreased from %v", s, sol.Latency, prevL)
		}
		prevR, prevL = sol.Redundancy(), sol.Latency
	}
}

func TestTighterFailureBoundCostsLatency(t *testing.T) {
	loose, err := SolveFractional(paperParams, 0.05, 0.01, 5, 20)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := SolveFractional(paperParams, 0.05, 1e-5, 5, 20)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Latency <= loose.Latency {
		t.Errorf("tight Pf should cost latency: %v vs %v", tight.Latency, loose.Latency)
	}
	if tight.Redundancy() <= loose.Redundancy() {
		t.Errorf("tight Pf should need more redundancy: %v vs %v",
			tight.Redundancy(), loose.Redundancy())
	}
}

func TestSolveArgsValidation(t *testing.T) {
	if _, err := SolveIntegerQ(paperParams, 0, 0.01, 3, 5); err == nil {
		t.Error("η=0 accepted")
	}
	if _, err := SolveIntegerQ(paperParams, 0.05, 0, 3, 5); err == nil {
		t.Error("Pf=0 accepted")
	}
	if _, err := SolveIntegerQ(paperParams, 0.05, 0.01, 1, 5); err == nil {
		t.Error("S=1 accepted")
	}
	if _, err := SolveIntegerQ(paperParams, 0.05, 0.01, 3, 0); err == nil {
		t.Error("maxQ=0 accepted")
	}
	if _, err := SolveIntegerQ(core.Params{}, 0.05, 0.01, 3, 5); err == nil {
		t.Error("invalid radio params accepted")
	}
}

func TestInfeasibleBudget(t *testing.T) {
	// Absurdly tight failure bound with huge contention and tiny maxQ.
	if _, err := SolveIntegerQ(paperParams, 0.05, 1e-12, 1000, 1); err == nil {
		t.Error("infeasible configuration should error")
	}
}

func TestConstrainedSeriesFigure7Shape(t *testing.T) {
	// Figure 7: for Pc ≤ 1 %, small duty-cycles are unaffected; beyond the
	// crossover (marked with circles in the paper) the bound departs from
	// the unconstrained 4αω/η² curve by orders of magnitude.
	etas := []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5}
	for _, s := range []int{10, 100, 1000} {
		lats, crossover := ConstrainedSeries(paperParams, etas, s, 0.01)
		if crossover <= 0 {
			t.Fatalf("S=%d: bad crossover %v", s, crossover)
		}
		for i, eta := range etas {
			unconstrained := paperParams.Symmetric(eta)
			if eta <= crossover {
				if math.Abs(lats[i]-unconstrained)/unconstrained > 1e-9 {
					t.Errorf("S=%d η=%v: below crossover but bound differs", s, eta)
				}
			} else if lats[i] <= unconstrained {
				t.Errorf("S=%d η=%v: above crossover but bound not degraded", s, eta)
			}
		}
	}
	// More transmitters → lower crossover and (at high η) worse latency.
	lats10, cross10 := ConstrainedSeries(paperParams, etas, 10, 0.01)
	lats1000, cross1000 := ConstrainedSeries(paperParams, etas, 1000, 0.01)
	if cross1000 >= cross10 {
		t.Errorf("crossover should shrink with S: %v vs %v", cross1000, cross10)
	}
	last := len(etas) - 1
	if lats1000[last] <= lats10[last] {
		t.Error("S=1000 should pay more latency at high duty-cycle")
	}
	// The paper reports degradation "by up to two orders of magnitude".
	if ratio := lats1000[last] / paperParams.Symmetric(etas[last]); ratio < 50 {
		t.Errorf("S=1000 at η=0.5: degradation ratio %v, expected ≫ 50", ratio)
	}
}

func TestLatencyUnitsAreTicks(t *testing.T) {
	sol, err := SolveIntegerQ(paperParams, 0.05, 0.0005, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity anchor: L′ must be comparable to the η=5 % symmetric bound
	// 57600 ticks times the redundancy factor.
	if sol.Latency < float64(50*timebase.Millisecond) || sol.Latency > float64(500*timebase.Millisecond) {
		t.Errorf("L′ = %v ticks implausible", sol.Latency)
	}
}
