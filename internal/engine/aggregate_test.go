package engine

import (
	"testing"

	"repro/internal/timebase"
)

// checkCDFContract asserts the invariants every empirical CDF must hold:
// latencies and fractions monotone non-decreasing, and the final point
// carrying exactly the discovered mass over all judged pairs.
func checkCDFContract(t *testing.T, pts []CDFPoint, discovered, total int) {
	t.Helper()
	if len(pts) == 0 {
		t.Fatal("expected CDF points")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Fraction < pts[i-1].Fraction {
			t.Fatalf("fractions not monotone at %d: %+v", i, pts)
		}
		if pts[i].Latency < pts[i-1].Latency {
			t.Fatalf("latencies not monotone at %d: %+v", i, pts)
		}
	}
	want := float64(discovered) / float64(total)
	if got := pts[len(pts)-1].Fraction; got != want {
		t.Fatalf("final CDF point %v, want discovered/total = %d/%d = %v", got, discovered, total, want)
	}
}

func TestEmpiricalCDFWithMisses(t *testing.T) {
	sorted := []timebase.Ticks{10, 20, 30, 40}
	pts := empiricalCDF(sorted, 6) // 4 discovered of 10 judged
	checkCDFContract(t, pts, 4, 10)
	for _, p := range pts {
		if p.Fraction > 0.4 {
			t.Fatalf("fraction %v exceeds the discovered mass 0.4", p.Fraction)
		}
	}
}

func TestEmpiricalCDFSmallSamples(t *testing.T) {
	cases := []struct {
		name   string
		sorted []timebase.Ticks
		misses int
	}{
		{"single sample", []timebase.Ticks{5}, 0},
		{"single sample one miss", []timebase.Ticks{5}, 1},
		{"two samples", []timebase.Ticks{3, 9}, 0},
		{"three samples two misses", []timebase.Ticks{1, 2, 3}, 2},
	}
	for _, tc := range cases {
		pts := empiricalCDF(tc.sorted, tc.misses)
		checkCDFContract(t, pts, len(tc.sorted), len(tc.sorted)+tc.misses)
	}
}

func TestEmpiricalCDFNoSamples(t *testing.T) {
	if pts := empiricalCDF(nil, 7); pts != nil {
		t.Fatalf("all-miss sample set should yield no CDF, got %+v", pts)
	}
}

// TestCollisionRateIsPooled: the aggregate's CollisionRate must be the
// pooled ratio of its own Collided/Transmissions counters, so a trial with
// 2 transmissions no longer weighs as much as one with 2000.
func TestCollisionRateIsPooled(t *testing.T) {
	agg, err := RunScenario(groupScenario(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Transmissions == 0 || agg.Collided == 0 {
		t.Fatalf("expected collision traffic, got %d/%d", agg.Collided, agg.Transmissions)
	}
	want := float64(agg.Collided) / float64(agg.Transmissions)
	if agg.CollisionRate != want {
		t.Fatalf("CollisionRate %v is not the pooled ratio %v", agg.CollisionRate, want)
	}
}
