package engine

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/obs"
)

// An AdaptiveSpec is a coarse-to-fine parameter search: the same base
// scenario and axes a SweepSpec has, plus an objective to optimize. The
// axis value lists form the coarse round-0 grid; every later round brackets
// the best point seen so far between its evaluated neighbors on each axis
// and lays a finer uniform grid inside the bracket, until the bracket is
// narrower than Tolerance (relative to the coarse axis span) on every axis
// or Rounds is exhausted. Every evaluated point runs through the ordinary
// scenario executor — shared worker pool, deterministic per-trial RNG
// streams, streaming aggregator — so each point's aggregate, and therefore
// the whole refinement trace, is bit-identical for any worker count.
type AdaptiveSpec struct {
	Name        string      `json:"name"`
	Description string      `json:"description,omitempty"`
	Base        Scenario    `json:"base"`
	Axes        []SweepAxis `json:"axes"`

	// Objective is the aggregate field the search optimizes, as a dotted
	// path into the Aggregate JSON shape: "bound_ratio", "latency.mean",
	// "latency.p95", "failure_rate", "collision_rate", … (see
	// ObjectiveNames for the full set).
	Objective string `json:"objective"`

	// Goal is "min" (default) or "max".
	Goal string `json:"goal,omitempty"`

	// Rounds caps the refinement rounds after the coarse pass; 0 means 4.
	Rounds int `json:"rounds,omitempty"`

	// Budget caps the grid laid per refinement round (already-evaluated
	// points are recalled from the memo, not re-run). 0 means the larger
	// of the coarse grid size and 3 points per axis; the minimum useful
	// value is 3^len(Axes).
	Budget int `json:"budget,omitempty"`

	// Tolerance is the relative bracket width — (hi−lo) divided by the
	// coarse span of the axis — below which an axis counts as converged.
	// 0 means 0.05. Integer axes additionally converge when the bracket
	// contains no unevaluated integer.
	Tolerance float64 `json:"tolerance,omitempty"`
}

// Adaptive defaults and caps.
const (
	defaultAdaptiveRounds    = 4
	defaultAdaptiveTolerance = 0.05
	maxAdaptiveRounds        = 64
	// maxAdaptiveAxisPoints caps one axis's refinement resolution so a
	// huge Budget on a low-dimensional search stays a grid, not a scan.
	maxAdaptiveAxisPoints = 65
	// maxAdaptiveAxes bounds the search dimension: past it even the
	// minimal 3-point-per-axis refinement grid (3^axes) would blow
	// through maxSweepPoints, so no budget could be honored.
	maxAdaptiveAxes = 10
)

// objectiveFields maps objective paths (the Aggregate JSON field names) to
// extractors. Latency quantities are in ticks.
var objectiveFields = map[string]func(Aggregate) float64{
	"latency.mean":     func(a Aggregate) float64 { return a.Latency.Mean },
	"latency.min":      func(a Aggregate) float64 { return float64(a.Latency.Min) },
	"latency.max":      func(a Aggregate) float64 { return float64(a.Latency.Max) },
	"latency.p50":      func(a Aggregate) float64 { return float64(a.Latency.P50) },
	"latency.p95":      func(a Aggregate) float64 { return float64(a.Latency.P95) },
	"latency.p99":      func(a Aggregate) float64 { return float64(a.Latency.P99) },
	"exact_worst":      func(a Aggregate) float64 { return float64(a.ExactWorst) },
	"exact_mean":       func(a Aggregate) float64 { return a.ExactMean },
	"bound":            func(a Aggregate) float64 { return a.Bound },
	"bound_ratio":      func(a Aggregate) float64 { return a.BoundRatio },
	"covered_fraction": func(a Aggregate) float64 { return a.CoveredFraction },
	"failure_rate":     func(a Aggregate) float64 { return a.FailureRate },
	"collision_rate":   func(a Aggregate) float64 { return a.CollisionRate },
}

// ObjectiveNames lists the supported objective field paths, sorted.
func ObjectiveNames() []string {
	names := make([]string, 0, len(objectiveFields))
	for n := range objectiveFields {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// normalized returns a copy with defaults applied and each axis's values
// sorted ascending (validation has already rejected duplicates), so the
// refinement ladder is well-ordered no matter how the spec lists them.
func (ap AdaptiveSpec) normalized() AdaptiveSpec {
	out := ap
	if out.Goal == "" {
		out.Goal = "min"
	}
	if out.Rounds == 0 {
		out.Rounds = defaultAdaptiveRounds
	}
	if out.Budget == 0 {
		out.Budget = ap.coarseSpec().Points()
		if min := pow3(len(ap.Axes)); out.Budget < min {
			out.Budget = min
		}
	}
	if out.Tolerance == 0 {
		out.Tolerance = defaultAdaptiveTolerance
	}
	out.Axes = make([]SweepAxis, len(ap.Axes))
	for i, ax := range ap.Axes {
		vals := append([]float64(nil), ax.Values...)
		sort.Float64s(vals)
		out.Axes[i] = SweepAxis{Field: ax.Field, Values: vals}
	}
	return out
}

// coarseSpec is the round-0 grid as an ordinary sweep.
func (ap AdaptiveSpec) coarseSpec() SweepSpec {
	return SweepSpec{Name: ap.Name, Description: ap.Description, Base: ap.Base, Axes: ap.Axes}
}

func pow3(n int) int {
	p := 1
	for i := 0; i < n && p < maxSweepPoints; i++ {
		p *= 3
	}
	return p
}

// Validate checks the spec: the embedded sweep shape (name, known distinct
// axes, integral values where required, bounded grid), a known objective,
// a min/max goal, and sane refinement parameters.
func (ap AdaptiveSpec) Validate() error {
	if err := ap.coarseSpec().Validate(); err != nil {
		return err
	}
	if len(ap.Axes) > maxAdaptiveAxes {
		return fmt.Errorf("engine: adaptive %q: %d axes exceed the %d-axis limit (a 3-point refinement grid would pass %d points)", ap.Name, len(ap.Axes), maxAdaptiveAxes, maxSweepPoints)
	}
	if _, ok := objectiveFields[ap.Objective]; !ok {
		return fmt.Errorf("engine: adaptive %q: unknown objective %q (have %v)", ap.Name, ap.Objective, ObjectiveNames())
	}
	switch ap.Goal {
	case "", "min", "max":
	default:
		return fmt.Errorf("engine: adaptive %q: goal must be \"min\" or \"max\", got %q", ap.Name, ap.Goal)
	}
	if ap.Rounds < 0 || ap.Rounds > maxAdaptiveRounds {
		return fmt.Errorf("engine: adaptive %q: rounds %d out of range [0, %d]", ap.Name, ap.Rounds, maxAdaptiveRounds)
	}
	if ap.Budget < 0 || ap.Budget > maxSweepPoints {
		return fmt.Errorf("engine: adaptive %q: budget %d out of range [0, %d]", ap.Name, ap.Budget, maxSweepPoints)
	}
	if ap.Budget != 0 && ap.Budget < pow3(len(ap.Axes)) {
		return fmt.Errorf("engine: adaptive %q: budget %d cannot fit a 3-point refinement per axis (need ≥ %d)", ap.Name, ap.Budget, pow3(len(ap.Axes)))
	}
	if ap.Tolerance < 0 || ap.Tolerance >= 1 {
		return fmt.Errorf("engine: adaptive %q: tolerance %g must be in (0, 1)", ap.Name, ap.Tolerance)
	}
	return nil
}

// AdaptivePoint is one evaluated grid point of the refinement trace: its
// axis coordinates (in spec axis order), the round that evaluated it, the
// extracted objective value, and the full aggregate. Round summaries and
// the overall best omit the aggregate — it is already recorded on the
// point itself.
type AdaptivePoint struct {
	Name      string     `json:"name"`
	Round     int        `json:"round"`
	Values    []float64  `json:"values"`
	Objective float64    `json:"objective"`
	Aggregate *Aggregate `json:"aggregate,omitempty"`
}

// AxisBracket is one axis's refinement state after a round: the interval
// between the best point's evaluated neighbors, its width relative to the
// coarse axis span, and whether the axis has converged.
type AxisBracket struct {
	Field     string  `json:"field"`
	Lo        float64 `json:"lo"`
	Hi        float64 `json:"hi"`
	RelWidth  float64 `json:"rel_width"`
	Converged bool    `json:"converged"`
}

// AdaptiveRound is one round of the trace: the points newly evaluated that
// round (grid order), the best point seen so far, and the per-axis
// brackets the next round would refine.
type AdaptiveRound struct {
	Round    int             `json:"round"`
	Points   []AdaptivePoint `json:"points"`
	Best     AdaptivePoint   `json:"best"`
	Brackets []AxisBracket   `json:"brackets"`
}

// AdaptiveResult is the full outcome of an adaptive search — the document
// `ndscen -adaptive -out` emits and the golden harness pins. Like every
// engine result it is bit-identical for any worker count.
type AdaptiveResult struct {
	Name        string          `json:"name"`
	Description string          `json:"description,omitempty"`
	Objective   string          `json:"objective"`
	Goal        string          `json:"goal"`
	Tolerance   float64         `json:"tolerance"`
	Converged   bool            `json:"converged"`
	Evaluations int             `json:"evaluations"`
	Best        AdaptivePoint   `json:"best"`
	Rounds      []AdaptiveRound `json:"rounds"`

	// Runtime accumulates the per-round executor invocations' metrics
	// (merged via obs.RunMetrics.Merge) plus the search's memo-cache
	// hits. Like every runtime section it is outside the determinism
	// contract and stripped (StripRuntime) before golden comparison.
	Runtime *obs.RunMetrics `json:"runtime,omitempty"`
}

// adaptiveEvaluator runs a batch of scenarios and returns their aggregates
// in input order. Production uses runMany; tests inject synthetic
// aggregates to exercise the search logic against known objectives.
type adaptiveEvaluator func([]Scenario) ([]Aggregate, error)

// RunAdaptive executes the coarse-to-fine search: the coarse grid first,
// then up to Rounds refinement rounds, each running its new points
// concurrently over one shared worker pool. Previously evaluated
// coordinates are recalled from a memo, never re-run, so raising Rounds
// extends (and never reshuffles) a shorter search.
func RunAdaptive(ap AdaptiveSpec, opt Options) (AdaptiveResult, error) {
	// Each round is one runMany invocation; their metrics merge into a
	// single record carried on the result (and on opt.Metrics when set),
	// with the search's own memo hits folded in.
	var total obs.RunMetrics
	res, err := runAdaptive(ap, func(scs []Scenario) ([]Aggregate, error) {
		o := opt
		var m obs.RunMetrics
		o.Metrics = &m
		aggs, err := runMany(scs, o)
		total.Merge(m)
		return aggs, err
	})
	if err != nil {
		return res, err
	}
	if res.Runtime != nil {
		total.MemoHits = res.Runtime.MemoHits
	}
	res.Runtime = &total
	if opt.Metrics != nil {
		*opt.Metrics = total
	}
	return res, nil
}

// adaptiveSearch is the mutable state of one search run.
type adaptiveSearch struct {
	spec      AdaptiveSpec // normalized
	eval      adaptiveEvaluator
	objective func(Aggregate) float64
	points    []AdaptivePoint // evaluation order
	seen      map[string]bool // canonical coordinate keys
	ladders   [][]float64     // sorted distinct evaluated values per axis
	spans     []float64       // coarse axis spans (hi − lo of round-0 values)
	memoHits  int             // grid coordinates recalled from seen, not re-run
}

func runAdaptive(ap AdaptiveSpec, eval adaptiveEvaluator) (AdaptiveResult, error) {
	if err := ap.Validate(); err != nil {
		return AdaptiveResult{}, err
	}
	sp := ap.normalized()
	s := &adaptiveSearch{
		spec:      sp,
		eval:      eval,
		objective: objectiveFields[sp.Objective],
		seen:      make(map[string]bool),
		ladders:   make([][]float64, len(sp.Axes)),
		spans:     make([]float64, len(sp.Axes)),
	}
	for a, ax := range sp.Axes {
		s.spans[a] = ax.Values[len(ax.Values)-1] - ax.Values[0]
	}

	res := AdaptiveResult{
		Name:        sp.Name,
		Description: sp.Description,
		Objective:   sp.Objective,
		Goal:        sp.Goal,
		Tolerance:   sp.Tolerance,
	}

	// Round 0: the coarse grid, in sweep (row-major) order.
	coarse := make([][]float64, 0, sp.coarseSpec().Points())
	cs := sp.coarseSpec()
	for i := 0; i < cs.Points(); i++ {
		coarse = append(coarse, cs.pointValues(i))
	}
	round, err := s.evaluateRound(0, coarse)
	if err != nil {
		return AdaptiveResult{}, err
	}
	res.Rounds = append(res.Rounds, round)

	for r := 1; r <= sp.Rounds; r++ {
		last := &res.Rounds[len(res.Rounds)-1]
		if allConverged(last.Brackets) {
			res.Converged = true
			break
		}
		grid := s.refinementGrid(last.Best.Values, last.Brackets)
		round, err := s.evaluateRound(r, grid)
		if err != nil {
			return AdaptiveResult{}, err
		}
		// A round that found nothing new means every remaining candidate
		// was already evaluated; the brackets cannot narrow further.
		stalled := len(round.Points) == 0
		res.Rounds = append(res.Rounds, round)
		if stalled {
			break
		}
	}
	final := res.Rounds[len(res.Rounds)-1]
	res.Converged = res.Converged || allConverged(final.Brackets)
	res.Best = final.Best
	res.Evaluations = len(s.points)
	if s.memoHits > 0 {
		res.Runtime = &obs.RunMetrics{MemoHits: s.memoHits}
	}
	return res, nil
}

// evaluateRound runs the not-yet-evaluated points of the round's grid,
// records them, and summarizes the round: best point so far and per-axis
// brackets around it.
func (s *adaptiveSearch) evaluateRound(round int, grid [][]float64) (AdaptiveRound, error) {
	var fresh [][]float64
	var scenarios []Scenario
	for _, vals := range grid {
		key := coordKey(vals)
		if s.seen[key] {
			s.memoHits++
			continue
		}
		s.seen[key] = true
		sc, err := s.pointScenario(round, vals)
		if err != nil {
			return AdaptiveRound{}, err
		}
		fresh = append(fresh, vals)
		scenarios = append(scenarios, sc)
	}
	out := AdaptiveRound{Round: round}
	if len(scenarios) > 0 {
		aggs, err := s.eval(scenarios)
		if err != nil {
			return AdaptiveRound{}, err
		}
		if len(aggs) != len(scenarios) {
			return AdaptiveRound{}, fmt.Errorf("engine: adaptive %q: evaluator returned %d aggregates for %d scenarios", s.spec.Name, len(aggs), len(scenarios))
		}
		for i := range scenarios {
			agg := aggs[i]
			pt := AdaptivePoint{
				Name:      scenarios[i].Name,
				Round:     round,
				Values:    fresh[i],
				Objective: s.objective(agg),
				Aggregate: &agg,
			}
			s.points = append(s.points, pt)
			for a, v := range fresh[i] {
				s.ladders[a] = insertSorted(s.ladders[a], v)
			}
			out.Points = append(out.Points, pt)
		}
	}
	best := s.best()
	out.Best = best
	out.Best.Aggregate = nil
	out.Brackets = s.brackets(best.Values)
	return out, nil
}

// pointScenario materializes one coordinate vector as a validated, named
// scenario, exactly as SweepSpec.Expand does for its grid.
func (s *adaptiveSearch) pointScenario(round int, vals []float64) (Scenario, error) {
	sc := s.spec.Base
	if s.spec.Base.Churn != nil {
		ch := *s.spec.Base.Churn // deep-copy so points never share churn state
		sc.Churn = &ch
	}
	parts := make([]string, len(s.spec.Axes))
	for a, ax := range s.spec.Axes {
		sweepFields[ax.Field].set(&sc, vals[a])
		parts[a] = axisLabel(ax.Field) + "=" + formatAxisValue(vals[a])
	}
	sc.Name = fmt.Sprintf("%s/r%d/%s", s.spec.Name, round, strings.Join(parts, ","))
	if s.spec.Description != "" {
		sc.Description = s.spec.Description
	}
	if err := sc.Validate(); err != nil {
		return Scenario{}, fmt.Errorf("engine: adaptive %q point %q: %w", s.spec.Name, sc.Name, err)
	}
	return sc, nil
}

// best ranks all evaluated points: strictly better objective wins, ties
// keep the earlier evaluation — both independent of worker scheduling, so
// the choice is deterministic. NaN objectives never win.
func (s *adaptiveSearch) best() AdaptivePoint {
	bi := 0
	for i := 1; i < len(s.points); i++ {
		if s.better(s.points[i].Objective, s.points[bi].Objective) {
			bi = i
		}
	}
	return s.points[bi]
}

func (s *adaptiveSearch) better(a, b float64) bool {
	if math.IsNaN(a) {
		return false
	}
	if math.IsNaN(b) {
		return true
	}
	if s.spec.Goal == "max" {
		return a > b
	}
	return a < b
}

// brackets computes, for each axis, the interval between the best point's
// evaluated neighbors on that axis — the region a unimodal objective pins
// its optimum to — and judges convergence against the tolerance.
func (s *adaptiveSearch) brackets(bestVals []float64) []AxisBracket {
	out := make([]AxisBracket, len(s.spec.Axes))
	for a, ax := range s.spec.Axes {
		lo, hi := neighbors(s.ladders[a], bestVals[a])
		br := AxisBracket{Field: ax.Field, Lo: lo, Hi: hi}
		if s.spans[a] > 0 {
			br.RelWidth = (hi - lo) / s.spans[a]
		}
		br.Converged = s.axisConverged(a, br, bestVals[a])
		out[a] = br
	}
	return out
}

// axisConverged: the bracket is relatively narrower than the tolerance, the
// axis never had extent, or (integer axes) no unevaluated integer is left
// inside the bracket to try.
func (s *adaptiveSearch) axisConverged(a int, br AxisBracket, best float64) bool {
	if s.spans[a] == 0 || br.RelWidth <= s.spec.Tolerance {
		return true
	}
	if sweepFields[s.spec.Axes[a].Field].integer {
		// Lo and Hi are the best value's adjacent evaluated neighbors, so
		// the only evaluated value strictly inside the bracket is the best
		// itself; the axis is exhausted when no other integer fits there.
		interior := br.Hi - br.Lo - 1
		if best > br.Lo && best < br.Hi {
			interior--
		}
		return interior < 1
	}
	return false
}

// refinementGrid lays the next round's grid: converged axes stay pinned at
// the best value; each unconverged axis gets n evenly spaced values across
// its bracket (endpoints included — the memo skips the ones already run),
// with n chosen so the whole grid fits the per-round budget.
func (s *adaptiveSearch) refinementGrid(bestVals []float64, brackets []AxisBracket) [][]float64 {
	open := 0
	for _, br := range brackets {
		if !br.Converged {
			open++
		}
	}
	n := axisResolution(s.spec.Budget, open)
	axes := make([][]float64, len(brackets))
	for a, br := range brackets {
		if br.Converged {
			axes[a] = []float64{bestVals[a]}
			continue
		}
		axes[a] = s.axisValues(a, br, n)
	}
	return cartesian(axes)
}

// axisResolution is the per-axis point count: the largest n ≥ 3 with
// n^axes ≤ budget, capped so one axis never degenerates into a scan.
func axisResolution(budget, axes int) int {
	if axes == 0 {
		return 1
	}
	n := 3
	for n < maxAdaptiveAxisPoints {
		p := 1
		over := false
		for i := 0; i < axes; i++ {
			p *= n + 1
			if p > budget {
				over = true
				break
			}
		}
		if over {
			break
		}
		n++
	}
	return n
}

// axisValues spaces n values evenly across the bracket; integer axes round
// to the nearest integer and deduplicate.
func (s *adaptiveSearch) axisValues(a int, br AxisBracket, n int) []float64 {
	integer := sweepFields[s.spec.Axes[a].Field].integer
	vals := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		v := br.Lo + (br.Hi-br.Lo)*float64(i)/float64(n-1)
		if integer {
			v = math.Round(v)
		}
		if len(vals) > 0 && vals[len(vals)-1] == v {
			continue
		}
		vals = append(vals, v)
	}
	return vals
}

// cartesian expands per-axis value lists row-major (first axis slowest),
// matching sweep grid order.
func cartesian(axes [][]float64) [][]float64 {
	total := 1
	for _, vs := range axes {
		total *= len(vs)
	}
	out := make([][]float64, 0, total)
	for i := 0; i < total; i++ {
		vals := make([]float64, len(axes))
		rem := i
		for a := len(axes) - 1; a >= 0; a-- {
			n := len(axes[a])
			vals[a] = axes[a][rem%n]
			rem /= n
		}
		out = append(out, vals)
	}
	return out
}

func allConverged(brackets []AxisBracket) bool {
	for _, br := range brackets {
		if !br.Converged {
			return false
		}
	}
	return true
}

// coordKey is the canonical memo key of a coordinate vector.
func coordKey(vals []float64) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = formatAxisValue(v)
	}
	return strings.Join(parts, ",")
}

// neighbors returns the values bracketing v in the sorted ladder: the
// largest evaluated value strictly below and the smallest strictly above
// (v itself at the ladder's ends).
func neighbors(ladder []float64, v float64) (lo, hi float64) {
	lo, hi = v, v
	i := sort.SearchFloat64s(ladder, v)
	if i > 0 {
		lo = ladder[i-1]
	}
	// Skip past v (and any equal entries — the ladder is distinct, so at
	// most one).
	j := i
	if j < len(ladder) && ladder[j] == v {
		j++
	}
	if j < len(ladder) {
		hi = ladder[j]
	}
	return lo, hi
}

// insertSorted inserts v into a sorted distinct slice, keeping it sorted
// and distinct.
func insertSorted(l []float64, v float64) []float64 {
	i := sort.SearchFloat64s(l, v)
	if i < len(l) && l[i] == v {
		return l
	}
	l = append(l, 0)
	copy(l[i+1:], l[i:])
	l[i] = v
	return l
}
