package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/timebase"
)

// ErrCanceled is the typed error a run returns when Options.Context is
// cancelled before the run completes. Cancellation is honored between trial
// windows, never inside one: a window's trials always finish, so a
// cancelled run never leaves a worker mid-trial, and errors.Is(err,
// ErrCanceled) distinguishes an abort from a genuine trial failure. The
// partial run produces no aggregates — results are all-or-nothing, so a
// caller can never mistake a truncated document for a complete one.
var ErrCanceled = errors.New("engine: run canceled")

// Options tunes execution without changing what is computed — except
// Trials, which (when set) overrides every scenario's trial count and is
// folded into the effective scenario before anything is derived from it,
// and Stream, which trades quantile resolution for bounded memory (see
// stream.go for the accuracy contract). Results stay bit-identical across
// worker counts under every setting.
type Options struct {
	// Workers is the goroutine count sharding the trials; ≤ 0 means
	// GOMAXPROCS. The aggregate result is identical for every value.
	Workers int

	// Trials, when > 0, overrides Scenario.Trials (e.g. a CLI -trials
	// flag or a fast test run).
	Trials int

	// Exact forces every scenario onto the exact-analysis fast path
	// (Scenario.Exact, the -exact flag): aggregates are synthesized from
	// the schedule analysis and no trials run. Scenarios that need
	// Monte-Carlo trials — crowds, churn, any channel model, lossy
	// schedules — fail loudly instead of silently degrading.
	Exact bool

	// Stream selects the aggregation strategy: StreamAuto engages the
	// bounded-memory streaming accumulator above streamThreshold expected
	// samples, StreamOn/StreamOff force it.
	Stream StreamMode

	// Progress, when non-nil, receives serialized execution-progress
	// snapshots: one when trial execution starts, one per
	// ProgressInterval while it runs, and a guaranteed Final one when the
	// pool drains. Snapshots are monotone, the callback is never invoked
	// concurrently with itself, and nothing it observes feeds back into
	// results.
	Progress func(obs.Progress)

	// ProgressInterval is the snapshot period; ≤ 0 means 500ms.
	ProgressInterval time.Duration

	// Metrics, when non-nil, is filled with the run's RunMetrics record
	// when execution finishes — on a failed run too, with what was
	// measured up to the failure.
	Metrics *obs.RunMetrics

	// Context, when non-nil, aborts the run when cancelled. Cancellation
	// is checked between trial windows (see batchSize), so an abort is
	// prompt — bounded by one window, never a whole point — and the run
	// returns an error wrapping ErrCanceled. A nil Context never cancels.
	Context context.Context

	// PointResult, when non-nil, is invoked with each point's input index
	// and finalized aggregate as soon as the point's last trial completes —
	// the streaming hook the daemon's per-point SSE events are built on.
	// Points finalize in completion order, not input order, and the
	// callback runs on whichever worker finishes the point, so invocations
	// for different points may be concurrent; the callback must be safe for
	// that. Like Progress, it observes results and must not feed back into
	// them. Failed and partial-range (sharded) points deliver nothing.
	PointResult func(idx int, agg Aggregate)

	// shard restricts every point to its trial-range shard (zero = the
	// full range). Set by the shard layer (shard.go), never by callers:
	// a sharded run produces snapshots, not aggregates.
	shard ShardSpec

	// capture makes finalize export each point's accumulator state as a
	// PointSnapshot (point.snap) instead of (for partial ranges) or in
	// addition to (for full ranges) aggregating.
	capture bool

	// pointDone, when non-nil, is invoked by the finalizing worker with
	// the point's input index and captured snapshot, serialized by the
	// journal layer. An error fails the point.
	pointDone func(idx int, snap *PointSnapshot) error
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// ctx resolves the run's context; a nil Options.Context never cancels.
func (o Options) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// canceledErr wraps ErrCanceled with how far the run got — useful in logs,
// and errors.Is(err, ErrCanceled) still holds.
func canceledErr(rec *runRecorder) error {
	return fmt.Errorf("%w after %d of %d trials", ErrCanceled, rec.trialsDone.Load(), rec.trialsTotal)
}

// trialOutput is one trial's contribution, stored at its trial index (or
// folded straight into a streaming accumulator) so aggregation order — and
// therefore every float sum — is independent of worker scheduling.
type trialOutput struct {
	samples                 []timebase.Ticks
	misses                  int
	transmissions, collided int
	contacts                []sim.Contact
	channel                 int               // discovery channel (multi-channel pair kind); -1 otherwise
	perChannel              []sim.ChannelLoad // per-channel traffic (multi-node multi-channel kinds)
	chanDisc                []int             // per-channel discovery counts (multi-node multi-channel kinds)
	err                     error
}

// point is one prepared unit of scheduling: an effective scenario with its
// built schedules, resolved horizon and stay, and either a trial-indexed
// output slice (exact aggregation) or nothing at all (streaming — workers
// fold trials into their own accumulators; see runMany).
type point struct {
	sc      Scenario
	b       *built
	cfg     sim.Config
	stay    timebase.Ticks
	horizon timebase.Ticks
	hash    uint64
	stream  bool
	exact   bool // answered from the analysis; lo == hi == Trials == 0

	// idx is the point's index in the run's input order; lo/hi is the
	// half-open trial range this process executes (the full [0, Trials)
	// unless the run is sharded). capture/done mirror Options; snap is
	// the exported accumulator state when capture is set.
	idx     int
	lo, hi  int
	capture bool
	done    func(idx int, snap *PointSnapshot) error
	result  func(idx int, agg Aggregate)
	snap    *PointSnapshot

	// outputs (exact mode) and accs (streaming mode, one accumulator slot
	// per worker — only worker w touches accs[w]) are allocated by the
	// feeder just before the point's first trial is enqueued, and released
	// by the worker that finishes the point's last trial, which aggregates
	// into agg. Keeping at most the in-flight points materialized
	// preserves the old serial RunSuite's peak-memory behavior (one
	// point's state at a time, up to worker lookahead) for arbitrarily
	// long suites and sweeps.
	outputs   []trialOutput
	accs      []*streamAccum
	remaining atomic.Int64
	agg       Aggregate

	// startNS is 1 + the recorder-relative start time of the point's
	// first trial (0 = none started yet), CAS'd once by whichever worker
	// gets there first; the finalizer differences it against its own
	// clock for the point's wall time.
	startNS atomic.Int64

	failed   atomic.Bool
	errMu    sync.Mutex
	errTrial int
	err      error
}

// recordErr keeps the error of the lowest-indexed failing trial. Every
// trial runs even after a point has failed, so the reported trial is the
// minimum over all failures — the same for any worker count.
func (p *point) recordErr(trial int, err error) {
	p.failed.Store(true)
	p.errMu.Lock()
	defer p.errMu.Unlock()
	if p.err == nil || trial < p.errTrial {
		p.err, p.errTrial = err, trial
	}
}

// finalize runs on the worker that finished the point's last trial: it
// aggregates the trial state, attaches the point's runtime record, and
// releases the state (returning its memory estimate to the recorder).
// Failed points skip aggregation but still settle the memory accounting.
func (p *point) finalize(rec *runRecorder) {
	if p.failed.Load() {
		var freed int64
		if p.stream {
			for _, acc := range p.accs {
				if acc != nil {
					freed += acc.approxBytes()
				}
			}
		} else {
			freed = int64(len(p.outputs)) * trialOutputBytes
		}
		rec.accumRelease(freed)
		p.outputs, p.accs = nil, nil
		return
	}
	if p.stream {
		merged := newStreamAccum(p.horizon, p.contactWorst(), p.chanCount())
		rec.accumAdd(merged.approxBytes())
		freed := merged.approxBytes()
		for _, acc := range p.accs {
			if acc != nil {
				freed += acc.approxBytes()
			}
			if err := merged.merge(acc); err != nil {
				// Unreachable by construction — every per-worker
				// accumulator of a point shares one layout — but a merge
				// refusal must fail the point, not corrupt it.
				p.recordErr(p.lo, err)
				rec.accumRelease(freed)
				p.accs = nil
				return
			}
		}
		if p.capture {
			p.snap = p.makeSnapshot()
			p.snap.Stream = merged.state()
		}
		if p.fullRange() {
			p.agg = aggregateStream(p.sc, p.b, p.horizon, merged)
		}
		rec.accumRelease(freed)
		p.accs = nil
	} else {
		st := exactStateFromOutputs(p.sc, p.b, p.outputs)
		if p.capture {
			p.snap = p.makeSnapshot()
			p.snap.Exact = st
			if p.fullRange() {
				// aggregateExact sorts Samples in place; the snapshot must
				// keep trial order, so the aggregate gets its own copy.
				st = st.clone()
			}
		}
		if p.fullRange() {
			if p.exact {
				// The snapshot keeps the empty (but layout-valid) exact
				// state so shard merges work unchanged; the aggregate
				// comes from the analysis, not from the zero samples.
				p.agg = aggregateAnalysis(p.sc, p.b, p.horizon)
			} else {
				p.agg = aggregateExact(p.sc, p.b, p.horizon, st)
			}
		}
		rec.accumRelease(int64(len(p.outputs)) * trialOutputBytes)
		p.outputs = nil
	}
	// Runtime is a trial-execution record; an exact point never starts a
	// trial, so it carries none.
	if p.fullRange() && !p.exact {
		wall := rec.sinceNS() - (p.startNS.Load() - 1)
		if wall < 1 {
			wall = 1
		}
		p.agg.Runtime = &obs.PointMetrics{
			WallMS:       float64(wall) / 1e6,
			TrialsPerSec: float64(p.sc.Trials) / (float64(wall) / 1e9),
		}
	}
	if p.done != nil {
		if err := p.done(p.idx, p.snap); err != nil {
			p.recordErr(p.lo, err)
		}
	}
	if p.result != nil && p.fullRange() && !p.failed.Load() {
		p.result(p.idx, p.agg)
	}
}

// fullRange reports whether this process runs the point's every trial —
// partial (sharded) ranges export state only and never aggregate.
func (p *point) fullRange() bool { return p.lo == 0 && p.hi == p.sc.Trials }

// makeSnapshot exports the point's identity and range; the caller attaches
// the accumulator state.
func (p *point) makeSnapshot() *PointSnapshot {
	return &PointSnapshot{
		Name:     p.sc.Name,
		Scenario: p.sc,
		SpecHash: p.hash,
		Trials:   p.sc.Trials,
		TrialLo:  p.lo,
		TrialHi:  p.hi,
		Streamed: p.stream,
	}
}

// exactEligible gates the exact-analysis fast path: the coverage analysis
// answers only the deterministic quiet-channel pair question, so every
// stochastic ingredient must be absent. Each rejection names what would
// have required Monte-Carlo trials — silently falling back would defeat
// the point of asking for an exact answer.
func exactEligible(sc Scenario, b *built) error {
	switch {
	case sc.Population != 2:
		return fmt.Errorf("engine: scenario %q: exact mode answers the pair workload only; a population of %d interacts stochastically and needs Monte-Carlo trials", sc.Name, sc.Population)
	case sc.Churn != nil:
		return fmt.Errorf("engine: scenario %q: exact mode cannot answer churn — arrivals are a stochastic process; drop the churn spec or run Monte-Carlo trials", sc.Name)
	case sc.Channel != (ChannelSpec{}):
		return fmt.Errorf("engine: scenario %q: exact mode models a quiet channel; collisions, half-duplex, truncation and jitter need Monte-Carlo trials", sc.Name)
	case b.Mode == modeMultiChannelGroup:
		return fmt.Errorf("engine: scenario %q: exact mode cannot answer kind %q — crowd traffic collides stochastically; use kind \"multichannel\" for the pair question", sc.Name, sc.Protocol.Kind)
	case !b.Analysis.Deterministic:
		return fmt.Errorf("engine: scenario %q: exact mode needs a deterministic schedule; this one covers only %.4f of phase offsets, so latency is a distribution with failure mass — run Monte-Carlo trials", sc.Name, b.Analysis.CoveredFraction)
	}
	return nil
}

// prepare validates and materializes one scenario into a schedulable point.
func prepare(sc Scenario, opt Options) (*point, error) {
	if opt.Trials > 0 {
		sc.Trials = opt.Trials
	}
	if opt.Exact {
		sc.Exact = true
	}
	if sc.Exact {
		// The effective spec records the truth: zero trials run. The empty
		// trial range below makes the feeder finalize the point directly.
		sc.Trials = 0
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	b, err := build(sc.Protocol, sc.Population)
	if err != nil {
		return nil, fmt.Errorf("engine: scenario %q: %w", sc.Name, err)
	}
	if sc.Exact {
		if err := exactEligible(sc, b); err != nil {
			return nil, err
		}
	}
	// Group and churn workloads instantiate every device from E's
	// schedule, so a protocol with distinct E/F roles cannot express them.
	if (sc.Population > 2 || sc.Churn != nil) && !b.Symmetric {
		return nil, fmt.Errorf("engine: scenario %q: group and churn workloads need a symmetric protocol", sc.Name)
	}
	horizon, err := resolveHorizon(sc, b)
	if err != nil {
		return nil, err
	}
	stay := timebase.Ticks(0)
	if sc.Churn != nil {
		stay, err = resolveStay(sc, b)
		if err != nil {
			return nil, err
		}
	}
	lo, hi := 0, sc.Trials
	if !opt.shard.IsZero() {
		lo, hi = opt.shard.Range(sc.Trials)
	}
	p := &point{
		sc:      sc,
		b:       b,
		stay:    stay,
		horizon: horizon,
		hash:    sc.Hash(),
		exact:   sc.Exact,
		// Exact points carry the (empty) exact-path state in snapshots, so
		// a forced -stream on never switches them to the streaming form.
		stream:  !sc.Exact && useStream(sc, opt),
		lo:      lo,
		hi:      hi,
		capture: opt.capture,
		done:    opt.pointDone,
		result:  opt.PointResult,
		cfg: sim.Config{
			Horizon:          horizon,
			Collisions:       sc.Channel.Collisions,
			HalfDuplex:       sc.Channel.HalfDuplex,
			TruncatedWindows: sc.Channel.TruncatedWindows,
			Jitter:           sc.Channel.Jitter,
		},
	}
	p.remaining.Store(int64(hi - lo))
	return p, nil
}

// contactWorst is the contact-bin scale: the exact worst case, when the
// schedule is deterministic. Zero disables contact binning. Kept in ticks
// so streamAccum stays all-integer (mergeable state must be exact); the
// one consumer divides in float space at use.
func (p *point) contactWorst() timebase.Ticks {
	if p.sc.Churn == nil || p.b.WorstTwoWay <= 0 {
		return 0
	}
	return p.b.WorstTwoWay
}

// chanCount is the advertising-channel count for per-channel discovery
// and collision accounting; zero disables it.
func (p *point) chanCount() int {
	if p.b.Mode != modeMultiChannel && p.b.Mode != modeMultiChannelGroup {
		return 0
	}
	return p.b.MC.Channels
}

// workItem addresses one contiguous window of trials of one point. Workers
// claim whole windows, amortizing the per-item scheduling cost (channel
// receive, accumulator lookup, point bookkeeping) over batchSize trials;
// outputs stay trial-indexed and streaming accumulators are order-
// insensitive integer state, so batching cannot change any aggregate.
type workItem struct {
	p      *point
	lo, hi int // half-open trial window
}

// batchCap bounds a batch: large enough to amortize scheduling, small
// enough that a point still spreads across workers and progress stays
// responsive.
const batchCap = 256

// batchSize picks the trial-window size for a point: an even split into
// ~4 windows per worker (so the tail imbalance stays small), clamped to
// [1, batchCap]. The size depends only on the trial count and worker
// count, never on scheduling, so windows are deterministic.
func batchSize(trials, workers int) int {
	n := trials / (4 * workers)
	if n < 1 {
		return 1
	}
	if n > batchCap {
		return batchCap
	}
	return n
}

// runMany is the scenario-level scheduler: it prepares every scenario,
// then runs all their trials over ONE shared worker pool, so small and
// large sweep points fill the same cores instead of executing scenario by
// scenario. Exact-mode trials land at their trial index; streaming-mode
// trials fold into per-worker accumulators merged when the point's last
// trial completes — both orderings make every aggregate bit-identical for
// any worker count.
func runMany(scenarios []Scenario, opt Options) ([]Aggregate, error) {
	points, err := runPoints(scenarios, opt)
	if err != nil {
		return nil, err
	}
	aggs := make([]Aggregate, len(points))
	for i, p := range points {
		aggs[i] = p.agg
	}
	return aggs, nil
}

// runPoints is runMany's engine room, shared with the shard and journal
// layers: it runs every point's trial range (the shard's slice of it, when
// Options.shard is set) and returns the finalized points — aggregates on
// full ranges, captured snapshots when Options.capture is set.
func runPoints(scenarios []Scenario, opt Options) ([]*point, error) {
	workers := opt.workers()
	ctx := opt.ctx()
	rec := newRunRecorder(workers, len(scenarios))

	// Preparation (schedule build + exact coverage analysis) is itself
	// sharded: on a sweep whose axes vary protocol parameters, every grid
	// point is a build-cache miss, and analyzing them serially would leave
	// the pool idle. Errors are still reported in input order.
	points := make([]*point, len(scenarios))
	prepErrs := make([]error, len(scenarios))
	var next atomic.Int64
	var pw sync.WaitGroup
	for w := 0; w < workers; w++ {
		pw.Add(1)
		go func() {
			defer pw.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(scenarios) {
					return
				}
				points[i], prepErrs[i] = prepare(scenarios[i], opt)
			}
		}()
	}
	pw.Wait()
	for _, err := range prepErrs {
		if err != nil {
			return nil, err
		}
	}
	for i, p := range points {
		p.idx = i
		rec.trialsTotal += int64(p.hi - p.lo)
	}
	// A context that died before any trial ran aborts here, so a cancelled
	// caller never pays for scheduling a pool that would only be torn down.
	if ctx.Err() != nil {
		return nil, canceledErr(rec)
	}
	stopProgress := rec.startProgress(opt)

	// An all-exact run (or a shard whose every range is empty) has no
	// trials to schedule: the feeder loop below would only finalize each
	// point, so run it inline and skip spawning the trial pool entirely —
	// the exact fast path answers a sweep in microseconds and must not pay
	// goroutine startup for a pool that would receive nothing.
	if rec.trialsTotal == 0 {
		for _, p := range points {
			p.finalize(rec)
			rec.pointsDone.Add(1)
		}
		stopProgress()
		if opt.Metrics != nil {
			*opt.Metrics = rec.metrics(points)
		}
		for _, p := range points {
			if p.err != nil {
				return nil, fmt.Errorf("engine: scenario %q trial %d: %w", p.sc.Name, p.errTrial, p.err)
			}
		}
		return points, nil
	}

	work := make(chan workItem, 4*workers)
	go func() {
		for _, p := range points {
			// A shard of fewer trials than shards leaves some ranges
			// empty; no worker ever decrements such a point, so the
			// feeder finalizes it (to an empty snapshot) directly.
			if p.hi == p.lo {
				p.finalize(rec)
				rec.pointsDone.Add(1)
				continue
			}
			// Allocated here, not in prepare: the bounded channel
			// throttles the feeder, so only in-flight points hold their
			// trial state.
			if p.stream {
				p.accs = make([]*streamAccum, workers)
			} else {
				p.outputs = make([]trialOutput, p.hi-p.lo)
				rec.accumAdd(int64(p.hi-p.lo) * trialOutputBytes)
			}
			bs := batchSize(p.hi-p.lo, workers)
			for t := p.lo; t < p.hi; t += bs {
				hi := t + bs
				if hi > p.hi {
					hi = p.hi
				}
				// A cancelled run stops feeding: the select keeps the
				// feeder from deadlocking on the bounded channel when
				// workers are already bailing out.
				select {
				case work <- workItem{p, t, hi}:
				case <-ctx.Done():
					close(work)
					return
				}
			}
		}
		close(work)
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker owns one simulation arena, reused across every
			// trial it runs (see sim.Scratch for the ownership rules).
			scr := sim.NewScratch()
			for it := range work {
				p := it.p
				// Cancellation is honored between trial windows: an
				// already-claimed window is abandoned whole (its point is
				// marked canceled and its trial accounting settled), and
				// in-flight trials of other workers finish their own
				// windows — nothing stops mid-trial.
				if ctx.Err() != nil {
					p.recordErr(it.lo, ErrCanceled)
					if p.remaining.Add(int64(it.lo-it.hi)) == 0 {
						p.finalize(rec)
						rec.pointsDone.Add(1)
					}
					continue
				}
				t0 := rec.sinceNS()
				p.startNS.CompareAndSwap(0, t0+1)
				// Per-batch state shared by the window's trials: the
				// streaming accumulator is fetched (or created) once.
				var acc *streamAccum
				if p.stream {
					acc = p.accs[w]
					if acc == nil {
						acc = newStreamAccum(p.horizon, p.contactWorst(), p.chanCount())
						rec.accumAdd(acc.approxBytes())
						p.accs[w] = acc
					}
				}
				for trial := it.lo; trial < it.hi; trial++ {
					out := runTrial(p.sc, p.b, p.cfg, p.stay, p.hash, trial, scr)
					switch {
					case out.err != nil:
						p.recordErr(trial, out.err)
					case p.stream:
						acc.absorb(out)
					default:
						p.outputs[trial-p.lo] = out
					}
					rec.trialsDone.Add(1)
				}
				// The worker finishing the point's last trial aggregates
				// and releases it. The atomic counter orders every
				// outputs[t]/accs[w] write before the final decrement,
				// and both trial-ordered exact aggregation and the
				// order-insensitive accumulator merge are independent of
				// which worker finalizes.
				if p.remaining.Add(int64(it.lo-it.hi)) == 0 {
					p.finalize(rec)
					rec.pointsDone.Add(1)
				}
				rec.busyNS[w].Add(rec.sinceNS() - t0)
			}
		}(w)
	}
	wg.Wait()
	stopProgress()
	if opt.Metrics != nil {
		*opt.Metrics = rec.metrics(points)
	}

	// The typed cancellation error wins over the per-point errors it
	// induced: a caller asking errors.Is(err, ErrCanceled) must see the
	// abort, not whichever point happened to record it first.
	if ctx.Err() != nil {
		return nil, canceledErr(rec)
	}
	for _, p := range points {
		if p.err != nil {
			return nil, fmt.Errorf("engine: scenario %q trial %d: %w", p.sc.Name, p.errTrial, p.err)
		}
	}
	return points, nil
}

// RunScenario executes one scenario: builds (or recalls) its schedules,
// resolves the horizon, shards the trials over the worker pool, and
// aggregates. Results are bit-identical for any worker count.
func RunScenario(sc Scenario, opt Options) (Aggregate, error) {
	aggs, err := runMany([]Scenario{sc}, opt)
	if err != nil {
		return Aggregate{}, err
	}
	return aggs[0], nil
}

// RunSuite executes the scenarios concurrently over one shared worker pool
// and returns their aggregates in input order. Per-scenario errors abort
// the suite.
func RunSuite(scenarios []Scenario, opt Options) ([]Aggregate, error) {
	return runMany(scenarios, opt)
}

// runTrial executes one trial on its own deterministic RNG stream, drawn
// from the worker's arena: reseeding the arena's splitmix source in place
// yields the exact stream a fresh rand.New(sim.NewFastSource(seed)) would
// (the default math/rand source costs ~25 µs of seeding per instantiation,
// which dominated the per-trial budget), and the sim buffers are reused
// across the worker's trials.
func runTrial(sc Scenario, b *built, cfg sim.Config, stay timebase.Ticks, hash uint64, trial int, scr *sim.Scratch) trialOutput {
	rng := scr.Rand(trialSeed(hash, trial))
	out := trialOutput{channel: -1}
	switch {
	case b.Mode == modeMultiChannel:
		oc, err := sim.MultiChannelPairTrialScratch(b.MC, cfg.Horizon, rng, scr)
		if err != nil {
			return trialOutput{channel: -1, err: err}
		}
		if oc.Discovered {
			out.samples = []timebase.Ticks{oc.Latency}
			out.channel = oc.Channel
		} else {
			out.misses = 1
		}

	case b.Mode == modeMultiChannelGroup:
		var res sim.MultiChannelGroupResult
		var err error
		if sc.Churn != nil {
			res, err = sim.MultiChannelChurnTrialScratch(b.MC, sc.Population, stay, cfg, rng, scr)
		} else {
			res, err = sim.MultiChannelGroupTrialScratch(b.MC, sc.Population, cfg, rng, scr)
		}
		if err != nil {
			return trialOutput{channel: -1, err: err}
		}
		out.samples = res.Samples
		out.misses = res.Misses
		out.contacts = res.Contacts
		out.transmissions = res.Transmissions
		out.collided = res.Collided
		out.perChannel = res.PerChannel
		out.chanDisc = res.Discoveries

	case b.Mode == modeSlotGrid:
		at, ok, err := b.SlotPair.TrialScratch(cfg.Horizon, rng, scr)
		if err != nil {
			return trialOutput{channel: -1, err: err}
		}
		if ok {
			out.samples = []timebase.Ticks{at}
		} else {
			out.misses = 1
		}

	case sc.Churn != nil:
		contacts, res, err := sim.ChurnTrialScratch(b.E, sc.Population, stay, cfg, rng, scr)
		if err != nil {
			return trialOutput{err: err}
		}
		out.contacts = contacts
		out.transmissions = res.Transmissions
		out.collided = res.Collided
		for _, c := range contacts {
			if c.Discovered {
				out.samples = append(out.samples, c.Latency)
			} else {
				out.misses++
			}
		}

	case sc.Population == 2:
		// The pair workload measures the one-way direction the bounds
		// speak about: E's beacons against F's windows, stripped so that
		// neither device's other half participates.
		at, ok, err := sim.PairTrialScratch(
			schedule.Device{B: b.E.B}, schedule.Device{C: b.F.C}, cfg, rng, scr)
		if err != nil {
			return trialOutput{err: err}
		}
		if ok {
			out.samples = []timebase.Ticks{at}
		} else {
			out.misses = 1
		}

	default:
		tr, err := sim.GroupTrialScratch(b.E, sc.Population, cfg, rng, scr)
		if err != nil {
			return trialOutput{err: err}
		}
		out.samples = tr.Samples
		out.misses = tr.Misses
		out.transmissions = tr.Transmissions
		out.collided = tr.Collided
	}
	return out
}

func resolveHorizon(sc Scenario, b *built) (timebase.Ticks, error) {
	h := sc.Horizon
	switch {
	case h.Ticks > 0:
		return h.Ticks, nil
	case h.WorstMultiple > 0:
		if b.WorstTwoWay == 0 {
			return 0, fmt.Errorf("engine: scenario %q: worst_multiple horizon needs a deterministic schedule", sc.Name)
		}
		return timebase.Ticks(h.WorstMultiple * float64(b.WorstTwoWay)), nil
	case h.PeriodMultiple > 0:
		return timebase.Ticks(h.PeriodMultiple * float64(b.maxPeriod())), nil
	case b.WorstTwoWay > 0:
		return 3 * b.WorstTwoWay, nil
	default:
		return 20 * b.maxPeriod(), nil
	}
}

func resolveStay(sc Scenario, b *built) (timebase.Ticks, error) {
	ch := sc.Churn
	if ch.Stay > 0 {
		return ch.Stay, nil
	}
	if b.WorstTwoWay == 0 {
		return 0, fmt.Errorf("engine: scenario %q: stay_worst_multiple needs a deterministic schedule", sc.Name)
	}
	return timebase.Ticks(ch.StayWorstMultiple * float64(b.WorstTwoWay)), nil
}
