package engine

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/timebase"
)

// Options tunes execution without changing what is computed — except
// Trials, which (when set) overrides every scenario's trial count and is
// folded into the effective scenario before anything is derived from it.
type Options struct {
	// Workers is the goroutine count sharding the trials; ≤ 0 means
	// GOMAXPROCS. The aggregate result is identical for every value.
	Workers int

	// Trials, when > 0, overrides Scenario.Trials (e.g. a CLI -trials
	// flag or a fast test run).
	Trials int
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// trialOutput is one trial's contribution, stored at its trial index so
// aggregation order — and therefore every float sum — is independent of
// worker scheduling.
type trialOutput struct {
	samples                 []timebase.Ticks
	misses                  int
	collisionRate           float64
	transmissions, collided int
	contacts                []sim.Contact
	err                     error
}

// RunScenario executes one scenario: builds (or recalls) its schedules,
// resolves the horizon, shards the trials over the worker pool, and
// aggregates. Results are bit-identical for any worker count.
func RunScenario(sc Scenario, opt Options) (Aggregate, error) {
	if opt.Trials > 0 {
		sc.Trials = opt.Trials
	}
	if err := sc.Validate(); err != nil {
		return Aggregate{}, err
	}
	b, err := build(sc.Protocol, sc.Population)
	if err != nil {
		return Aggregate{}, fmt.Errorf("engine: scenario %q: %w", sc.Name, err)
	}
	// Group and churn workloads instantiate every device from E's
	// schedule, so a protocol with distinct E/F roles cannot express them.
	if (sc.Population > 2 || sc.Churn != nil) && !b.Symmetric {
		return Aggregate{}, fmt.Errorf("engine: scenario %q: group and churn workloads need a symmetric protocol", sc.Name)
	}
	horizon, err := resolveHorizon(sc, b)
	if err != nil {
		return Aggregate{}, err
	}
	stay := timebase.Ticks(0)
	if sc.Churn != nil {
		stay, err = resolveStay(sc, b)
		if err != nil {
			return Aggregate{}, err
		}
	}

	cfg := sim.Config{
		Horizon:          horizon,
		Collisions:       sc.Channel.Collisions,
		HalfDuplex:       sc.Channel.HalfDuplex,
		TruncatedWindows: sc.Channel.TruncatedWindows,
		Jitter:           sc.Channel.Jitter,
	}

	hash := sc.Hash()
	outputs := make([]trialOutput, sc.Trials)
	indices := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < opt.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range indices {
				outputs[t] = runTrial(sc, b, cfg, stay, hash, t)
			}
		}()
	}
	for t := 0; t < sc.Trials; t++ {
		indices <- t
	}
	close(indices)
	wg.Wait()

	for t := range outputs {
		if outputs[t].err != nil {
			return Aggregate{}, fmt.Errorf("engine: scenario %q trial %d: %w", sc.Name, t, outputs[t].err)
		}
	}
	return aggregate(sc, b, horizon, outputs), nil
}

// runTrial executes one trial on its own deterministic RNG stream.
func runTrial(sc Scenario, b *built, cfg sim.Config, stay timebase.Ticks, hash uint64, trial int) trialOutput {
	rng := rand.New(rand.NewSource(trialSeed(hash, trial)))
	var out trialOutput
	switch {
	case sc.Churn != nil:
		contacts, res, err := sim.ChurnTrial(b.E, sc.Population, stay, cfg, rng)
		if err != nil {
			return trialOutput{err: err}
		}
		out.contacts = contacts
		out.collisionRate = res.CollisionRate()
		out.transmissions = res.Transmissions
		out.collided = res.Collided
		for _, c := range contacts {
			if c.Discovered {
				out.samples = append(out.samples, c.Latency)
			} else {
				out.misses++
			}
		}

	case sc.Population == 2:
		// The pair workload measures the one-way direction the bounds
		// speak about: E's beacons against F's windows, stripped so that
		// neither device's other half participates.
		at, ok, err := sim.PairTrial(
			schedule.Device{B: b.E.B}, schedule.Device{C: b.F.C}, cfg, rng)
		if err != nil {
			return trialOutput{err: err}
		}
		if ok {
			out.samples = []timebase.Ticks{at}
		} else {
			out.misses = 1
		}

	default:
		tr, err := sim.GroupTrial(b.E, sc.Population, cfg, rng)
		if err != nil {
			return trialOutput{err: err}
		}
		out.samples = tr.Samples
		out.misses = tr.Misses
		out.collisionRate = tr.CollisionRate
		out.transmissions = tr.Transmissions
		out.collided = tr.Collided
	}
	return out
}

func resolveHorizon(sc Scenario, b *built) (timebase.Ticks, error) {
	h := sc.Horizon
	switch {
	case h.Ticks > 0:
		return h.Ticks, nil
	case h.WorstMultiple > 0:
		if b.WorstTwoWay == 0 {
			return 0, fmt.Errorf("engine: scenario %q: worst_multiple horizon needs a deterministic schedule", sc.Name)
		}
		return timebase.Ticks(h.WorstMultiple * float64(b.WorstTwoWay)), nil
	case h.PeriodMultiple > 0:
		return timebase.Ticks(h.PeriodMultiple * float64(b.maxPeriod())), nil
	case b.WorstTwoWay > 0:
		return 3 * b.WorstTwoWay, nil
	default:
		return 20 * b.maxPeriod(), nil
	}
}

func resolveStay(sc Scenario, b *built) (timebase.Ticks, error) {
	ch := sc.Churn
	if ch.Stay > 0 {
		return ch.Stay, nil
	}
	if b.WorstTwoWay == 0 {
		return 0, fmt.Errorf("engine: scenario %q: stay_worst_multiple needs a deterministic schedule", sc.Name)
	}
	return timebase.Ticks(ch.StayWorstMultiple * float64(b.WorstTwoWay)), nil
}

// RunSuite executes the scenarios in order (each internally parallel) and
// returns their aggregates. Per-scenario errors abort the suite.
func RunSuite(scenarios []Scenario, opt Options) ([]Aggregate, error) {
	aggs := make([]Aggregate, 0, len(scenarios))
	for _, sc := range scenarios {
		agg, err := RunScenario(sc, opt)
		if err != nil {
			return nil, err
		}
		aggs = append(aggs, agg)
	}
	return aggs, nil
}
