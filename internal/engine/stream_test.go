package engine

import (
	"reflect"
	"testing"

	"repro/internal/timebase"
)

// streamScenario exercises every accumulator path at a size where the
// exact path is still cheap to compare against.
func streamScenario() Scenario {
	sc := groupScenario()
	sc.Name = "stream-test"
	return sc
}

// TestStreamMatchesExact pins the accuracy contract: against the exact
// aggregate, the streaming aggregate's counts, min/max, collision and
// contact numbers are identical, the mean agrees to float rounding, and
// every quantile is within one histogram bin above the exact order
// statistic.
func TestStreamMatchesExact(t *testing.T) {
	for _, name := range []string{"group", "churn"} {
		sc := streamScenario()
		if name == "churn" {
			var err error
			sc, err = Preset("churn-busy")
			if err != nil {
				t.Fatal(err)
			}
			sc.Trials = 8
		}
		exact, err := RunScenario(sc, Options{Stream: StreamOff})
		if err != nil {
			t.Fatal(err)
		}
		stream, err := RunScenario(sc, Options{Stream: StreamOn})
		if err != nil {
			t.Fatal(err)
		}

		if exact.Streamed || !stream.Streamed {
			t.Fatalf("%s: Streamed flags wrong: exact=%v stream=%v", name, exact.Streamed, stream.Streamed)
		}
		if stream.QuantileResolution <= 0 {
			t.Fatalf("%s: streamed aggregate must report its quantile resolution", name)
		}
		if stream.Pairs != exact.Pairs ||
			stream.Latency.N != exact.Latency.N ||
			stream.Latency.Misses != exact.Latency.Misses ||
			stream.Latency.Min != exact.Latency.Min ||
			stream.Latency.Max != exact.Latency.Max ||
			stream.Transmissions != exact.Transmissions ||
			stream.Collided != exact.Collided {
			t.Fatalf("%s: exact-contract fields diverge:\nexact  %+v\nstream %+v", name, exact.Latency, stream.Latency)
		}
		if stream.CollisionRate != exact.CollisionRate || stream.FailureRate != exact.FailureRate {
			t.Fatalf("%s: pooled rates diverge: coll %v vs %v, fail %v vs %v",
				name, stream.CollisionRate, exact.CollisionRate, stream.FailureRate, exact.FailureRate)
		}
		if relDiff(stream.Latency.Mean, exact.Latency.Mean) > 1e-9 {
			t.Fatalf("%s: means diverge: %v vs %v", name, stream.Latency.Mean, exact.Latency.Mean)
		}
		res := stream.QuantileResolution
		for _, q := range []struct {
			name          string
			exact, stream timebase.Ticks
		}{
			{"p50", exact.Latency.P50, stream.Latency.P50},
			{"p95", exact.Latency.P95, stream.Latency.P95},
			{"p99", exact.Latency.P99, stream.Latency.P99},
		} {
			if q.stream < q.exact || q.stream > q.exact+res {
				t.Errorf("%s %s: streamed %d outside [%d, %d+%d]", name, q.name, q.stream, q.exact, q.exact, res)
			}
		}
		if !reflect.DeepEqual(stream.ContactBins, exact.ContactBins) {
			t.Fatalf("%s: contact bins diverge:\nexact  %+v\nstream %+v", name, exact.ContactBins, stream.ContactBins)
		}
		// The CDF is monotone and its last point carries the full
		// discovered mass.
		for i := 1; i < len(stream.CDF); i++ {
			if stream.CDF[i].Fraction < stream.CDF[i-1].Fraction || stream.CDF[i].Latency < stream.CDF[i-1].Latency {
				t.Fatalf("%s: streamed CDF not monotone at %d: %+v", name, i, stream.CDF)
			}
		}
		if n := len(stream.CDF); n > 0 {
			discovered := float64(exact.Pairs - exact.Latency.Misses)
			if got := stream.CDF[n-1].Fraction; got != discovered/float64(exact.Pairs) {
				t.Fatalf("%s: streamed CDF tops out at %v, want %v", name, got, discovered/float64(exact.Pairs))
			}
		}
	}
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if b > m {
		m = b
	}
	return d / m
}

func TestUseStreamSelection(t *testing.T) {
	small := Scenario{Population: 2, Trials: 100}
	big := Scenario{Population: 2, Trials: streamThreshold + 1}
	group := Scenario{Population: 30, Trials: 1 + streamThreshold/(30*29)}
	if useStream(small, Options{}) {
		t.Error("small pair scenario should aggregate exactly")
	}
	if !useStream(big, Options{}) {
		t.Error("large pair scenario should stream")
	}
	if !useStream(group, Options{}) {
		t.Error("large group scenario should stream")
	}
	if !useStream(small, Options{Stream: StreamOn}) || useStream(big, Options{Stream: StreamOff}) {
		t.Error("forced modes ignored")
	}
}

// TestStreamAccumMergeOrderInsensitive: merging per-worker accumulators in
// any order must produce identical state — the property that makes the
// streamed aggregate independent of worker scheduling.
func TestStreamAccumMergeOrderInsensitive(t *testing.T) {
	horizon := timebase.Ticks(1 << 20)
	parts := make([]*streamAccum, 3)
	for i := range parts {
		parts[i] = newStreamAccum(horizon, 0, 0)
		for k := 0; k < 1000; k++ {
			parts[i].addSample(timebase.Ticks((i*37 + k*101) % (1 << 20)))
		}
		parts[i].misses += int64(i)
		parts[i].transmissions += int64(10 * i)
		parts[i].collided += int64(i)
	}
	orders := [][]int{{0, 1, 2}, {2, 0, 1}, {1, 2, 0}}
	var merged []*streamAccum
	for _, ord := range orders {
		m := newStreamAccum(horizon, 0, 0)
		for _, i := range ord {
			m.merge(parts[i])
		}
		merged = append(merged, m)
	}
	for i := 1; i < len(merged); i++ {
		if !reflect.DeepEqual(merged[0].stats(), merged[i].stats()) {
			t.Fatalf("merge order %v changed stats:\n%+v\n%+v", orders[i], merged[0].stats(), merged[i].stats())
		}
		if !reflect.DeepEqual(merged[0].cdf(), merged[i].cdf()) {
			t.Fatalf("merge order %v changed the CDF", orders[i])
		}
	}
}

// TestStreamAccumBoundedAllocation is the bounded-memory guarantee: 1.5
// million samples stream through an accumulator without allocating — the
// full sample slice is never materialized.
func TestStreamAccumBoundedAllocation(t *testing.T) {
	acc := newStreamAccum(1<<22, 0, 0)
	out := trialOutput{samples: make([]timebase.Ticks, 1000), misses: 2, transmissions: 40, collided: 3}
	for i := range out.samples {
		out.samples[i] = timebase.Ticks((i * 4099) % (1 << 22))
	}
	allocs := testing.AllocsPerRun(1, func() {
		for i := 0; i < 1500; i++ {
			acc.absorb(out) // 1.5M samples total per run
		}
	})
	if allocs > 0 {
		t.Fatalf("absorbing 1.5M samples allocated %v times; the streaming path must not allocate", allocs)
	}
	if acc.count < 1500*1000 {
		t.Fatalf("accumulator absorbed only %d samples", acc.count)
	}
	st := acc.stats()
	if st.Min != 0 || st.Max >= 1<<22 || st.Mean <= 0 {
		t.Fatalf("implausible streamed stats: %+v", st)
	}
}

// TestMillionTrialSweepPointStreams is the scale acceptance: a sweep point
// with one million trials runs to completion with the automatically
// engaged streaming aggregator.
func TestMillionTrialSweepPointStreams(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-trial point; skipped with -short")
	}
	sp := SweepSpec{
		Name: "bulk",
		Base: Scenario{
			Protocol:   ProtocolSpec{Kind: "optimal", Omega: 36, Alpha: 1},
			Population: 2,
			Trials:     1_000_000,
			Horizon:    HorizonSpec{Ticks: 5000},
			Seed:       9,
		},
		Axes: []SweepAxis{{Field: "protocol.eta", Values: []float64{0.05}}},
	}
	aggs, err := RunSweep(sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := aggs[0]
	if !a.Streamed {
		t.Fatal("a 1M-trial point must auto-engage the streaming aggregator")
	}
	if a.Pairs != 1_000_000 || a.Latency.N != 1_000_000 {
		t.Fatalf("pair accounting wrong: pairs=%d N=%d", a.Pairs, a.Latency.N)
	}
	if a.Latency.N != a.Latency.Misses && a.Latency.Max <= 0 {
		t.Fatalf("implausible aggregate: %+v", a.Latency)
	}
}

// BenchmarkStreamAbsorb1M measures the streaming aggregation rate and, via
// ReportAllocs, documents the zero-allocation hot path.
func BenchmarkStreamAbsorb1M(b *testing.B) {
	out := trialOutput{samples: make([]timebase.Ticks, 1000)}
	for i := range out.samples {
		out.samples[i] = timebase.Ticks((i * 4099) % (1 << 22))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		acc := newStreamAccum(1<<22, 0, 0)
		for i := 0; i < 1000; i++ {
			acc.absorb(out) // 1M samples
		}
		if acc.count != 1_000_000 {
			b.Fatal("bad count")
		}
	}
}
