package engine

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/timebase"
)

// reportAggregates builds a deterministic fixture pair: one fully
// deterministic aggregate with bound facts, CDF and per-channel rows
// (traffic included), and one non-deterministic aggregate without them —
// the two rendering regimes every table distinguishes.
func reportAggregates() []Aggregate {
	det := Aggregate{
		Scenario: Scenario{
			Name:       "det-point",
			Protocol:   ProtocolSpec{Kind: "multichannel-group", Omega: 128},
			Population: 10,
		},
		Deterministic: true,
		ExactWorst:    2 * timebase.Second,
		ExactMean:     float64(timebase.Second),
		Bound:         float64(4 * timebase.Second),
		BoundRatio:    0.5,
		EtaE:          0.02,
		EtaF:          0.02,
		Horizon:       6 * timebase.Second,
		Trials:        100,
		Pairs:         200,
		Latency: sim.Stats{
			N: 200, Misses: 20,
			Min: 1000, Max: 2 * timebase.Second,
			Mean: 5e5, P50: 4e5, P95: 1.5e6, P99: 1.9e6,
		},
		FailureRate:   0.10,
		CollisionRate: 0.25,
		Transmissions: 4000,
		Collided:      1000,
		CDF: []CDFPoint{
			{Latency: 4e5, Fraction: 0.45},
			{Latency: 2e6, Fraction: 0.90},
		},
		PerChannel: []ChannelStat{
			{Channel: 0, Discoveries: 100, Fraction: 0.56, Transmissions: 2000, Collided: 600,
				CollisionRate: 0.30, EntryProb: 0.4, BranchCovered: 1, BranchWorst: 1e6, BranchMean: 4e5},
			{Channel: 1, Discoveries: 80, Fraction: 0.44, Transmissions: 2000, Collided: 400,
				CollisionRate: 0.20, EntryProb: 0.6, BranchCovered: 1, BranchWorst: 2e6, BranchMean: 5e5},
		},
	}
	nondet := Aggregate{
		Scenario: Scenario{
			Name:       "nondet-point",
			Protocol:   ProtocolSpec{Kind: "disco", Omega: 36},
			Population: 2,
		},
		Horizon: timebase.Second,
		Trials:  50,
		Pairs:   50,
		Latency: sim.Stats{N: 50, Misses: 50},
	}
	return []Aggregate{det, nondet}
}

func TestRenderTable(t *testing.T) {
	out := RenderTable(reportAggregates())
	for _, want := range []string{
		"scenario", "worst[s]", "bound[s]", "ratio", "fail%", "coll%",
		"det-point", "multichannel-group", // name and kind columns
		"2",     // worst in seconds
		"0.500", // bound ratio
		"10.00", // failure percent
		"25.00", // collision percent
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table misses %q:\n%s", want, out)
		}
	}
	// The non-deterministic row renders em dashes for the exact facts.
	var nondetRow string
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "nondet-point") {
			nondetRow = line
		}
	}
	if !strings.Contains(nondetRow, "—") {
		t.Errorf("non-deterministic row should render — placeholders: %q", nondetRow)
	}
}

func TestRenderSweepTable(t *testing.T) {
	sp := SweepSpec{
		Name: "rt-sweep",
		Base: Scenario{
			Name:       "base",
			Protocol:   ProtocolSpec{Kind: "optimal", Omega: 36, Alpha: 1},
			Population: 2,
			Trials:     1,
			Seed:       1,
		},
		Axes: []SweepAxis{
			{Field: "protocol.eta", Values: []float64{0.01, 0.02}},
		},
	}
	if _, err := sp.Expand(); err != nil {
		t.Fatal(err)
	}
	aggs := reportAggregates()
	out := RenderSweepTable(sp, aggs)
	// Axis columns are labeled with the last path segment.
	for _, want := range []string{"eta", "0.01", "0.02", "worst[s]", "fail%"} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep table misses %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "det-point") {
		t.Error("sweep table should lead with axis values, not scenario names")
	}
}

func TestRenderChannels(t *testing.T) {
	out := RenderChannels(reportAggregates())
	for _, want := range []string{
		"tx", "coll%", // the per-channel traffic columns
		"2000", "30.00", "20.00", // channel loads and collision rates
		"disc", "100", "80",
		"entry%", "40.00", "60.00",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("channel table misses %q:\n%s", want, out)
		}
	}

	// A pair-kind row (no traffic accounting) renders — placeholders.
	pair := reportAggregates()[:1]
	pair[0].PerChannel = []ChannelStat{{Channel: 0, Discoveries: 5, Fraction: 1, EntryProb: 1, BranchCovered: 1}}
	out = RenderChannels(pair)
	if !strings.Contains(out, "—") {
		t.Errorf("quiet-channel row should render — for tx/coll%%:\n%s", out)
	}

	// No per-channel rows anywhere → empty string, so callers can skip the
	// section entirely.
	if got := RenderChannels(reportAggregates()[1:]); got != "" {
		t.Errorf("aggregates without per-channel rows should render \"\", got:\n%s", got)
	}
}

func TestRenderCDF(t *testing.T) {
	out := RenderCDF(reportAggregates())
	for _, want := range []string{"Discovery latency CDF", "latency [s]", "det-point"} {
		if !strings.Contains(out, want) {
			t.Errorf("CDF plot misses %q:\n%s", want, out)
		}
	}
	if got := RenderCDF(nil); !strings.Contains(got, "no latency samples") {
		t.Errorf("empty CDF should say so, got %q", got)
	}
}

func TestWriteJSONDeterministic(t *testing.T) {
	res := SuiteResult{Suite: "s", Scenarios: reportAggregates()}
	var a, b bytes.Buffer
	if err := WriteJSON(&a, res); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&b, res); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("WriteJSON is not deterministic")
	}
	if !strings.Contains(a.String(), "\"per_channel\"") {
		t.Error("JSON misses the per_channel field")
	}
	if !strings.Contains(a.String(), "\"collision_rate\"") {
		t.Error("JSON misses the per-channel collision_rate field")
	}
	if !strings.HasSuffix(a.String(), "\n") {
		t.Error("JSON document should end with a newline")
	}
}

func TestSeconds(t *testing.T) {
	for _, tc := range []struct {
		ticks float64
		want  string
	}{
		{float64(timebase.Second), "1"},
		{float64(timebase.Second) / 2, "0.5"},
		{float64(2500 * timebase.Millisecond), "2.5"},
	} {
		if got := seconds(tc.ticks); got != tc.want {
			t.Errorf("seconds(%v) = %q, want %q", tc.ticks, got, tc.want)
		}
	}
}
