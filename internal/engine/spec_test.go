package engine

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/timebase"
)

func testScenario() Scenario {
	return Scenario{
		Name:        "test",
		Description: "round-trip fixture",
		Protocol:    ProtocolSpec{Kind: "optimal", Omega: 36, Alpha: 1, Eta: 0.05},
		Population:  4,
		Trials:      10,
		Horizon:     HorizonSpec{WorstMultiple: 6},
		Channel:     ChannelSpec{Collisions: true, HalfDuplex: true, Jitter: 360},
		Churn:       &ChurnSpec{StayWorstMultiple: 2},
		Seed:        42,
	}
}

func TestScenarioJSONRoundTrip(t *testing.T) {
	in := testScenario()
	blob, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Scenario
	if err := json.Unmarshal(blob, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip changed the scenario:\nin  %+v\nout %+v", in, out)
	}
}

func TestScenarioValidate(t *testing.T) {
	good := testScenario()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"no name", func(s *Scenario) { s.Name = "" }},
		{"no kind", func(s *Scenario) { s.Protocol.Kind = "" }},
		{"bad omega", func(s *Scenario) { s.Protocol.Omega = 0 }},
		{"population 1", func(s *Scenario) { s.Population = 1 }},
		{"no trials", func(s *Scenario) { s.Trials = 0 }},
		{"negative jitter", func(s *Scenario) { s.Channel.Jitter = -1 }},
		{"empty churn", func(s *Scenario) { s.Churn = &ChurnSpec{} }},
		{"churn over-specified", func(s *Scenario) {
			s.Churn = &ChurnSpec{Stay: 1000, StayWorstMultiple: 2}
		}},
		{"horizon over-specified", func(s *Scenario) {
			s.Horizon = HorizonSpec{Ticks: 1000, WorstMultiple: 3}
		}},
		// Negative horizon and stay values used to pass the > 0 checks and
		// were then silently ignored by resolveHorizon/resolveStay.
		{"negative horizon ticks", func(s *Scenario) {
			s.Horizon = HorizonSpec{Ticks: -1}
		}},
		{"negative worst multiple", func(s *Scenario) {
			s.Horizon = HorizonSpec{WorstMultiple: -2}
		}},
		{"negative period multiple", func(s *Scenario) {
			s.Horizon = HorizonSpec{PeriodMultiple: -0.5}
		}},
		{"negative churn stay", func(s *Scenario) {
			s.Churn = &ChurnSpec{Stay: -1000}
		}},
		{"negative stay worst multiple", func(s *Scenario) {
			s.Churn = &ChurnSpec{StayWorstMultiple: -2}
		}},
	}
	for _, tc := range cases {
		sc := testScenario()
		tc.mutate(&sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestHashIgnoresTrialCount(t *testing.T) {
	a := testScenario()
	b := testScenario()
	b.Trials = 10 * a.Trials
	if a.Hash() != b.Hash() {
		t.Fatal("hash must be invariant to the trial count (seed prefix property)")
	}
}

func TestHashIgnoresCosmeticFields(t *testing.T) {
	a := testScenario()
	b := testScenario()
	b.Name = "renamed"
	b.Description = "re-worded"
	if a.Hash() != b.Hash() {
		t.Fatal("renaming a scenario must not reshuffle its RNG streams")
	}
}

func TestHashSeparatesScenarios(t *testing.T) {
	base := testScenario()
	seen := map[uint64]string{base.Hash(): "base"}
	variants := map[string]func(*Scenario){
		"seed":       func(s *Scenario) { s.Seed++ },
		"eta":        func(s *Scenario) { s.Protocol.Eta = 0.02 },
		"population": func(s *Scenario) { s.Population++ },
		"jitter":     func(s *Scenario) { s.Channel.Jitter++ },
		"horizon":    func(s *Scenario) { s.Horizon = HorizonSpec{WorstMultiple: 7} },
	}
	for name, mutate := range variants {
		sc := testScenario()
		mutate(&sc)
		h := sc.Hash()
		if prev, dup := seen[h]; dup {
			t.Errorf("variant %q collides with %q", name, prev)
		}
		seen[h] = name
	}
}

func TestTrialSeedsDistinct(t *testing.T) {
	h := testScenario().Hash()
	seen := map[int64]int{}
	for i := 0; i < 10000; i++ {
		s := trialSeed(h, i)
		if s < 0 {
			t.Fatalf("trial %d: negative seed %d", i, s)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("trials %d and %d share seed %d", prev, i, s)
		}
		seen[s] = i
	}
}

func TestHorizonResolution(t *testing.T) {
	b, err := build(ProtocolSpec{Kind: "optimal", Omega: 36, Alpha: 1, Eta: 0.05}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Analysis.Deterministic {
		t.Fatal("optimal schedule should be deterministic")
	}
	sc := testScenario()

	sc.Horizon = HorizonSpec{Ticks: 12345}
	if h, _ := resolveHorizon(sc, b); h != 12345 {
		t.Fatalf("explicit horizon: got %d", h)
	}
	sc.Horizon = HorizonSpec{WorstMultiple: 2}
	if h, _ := resolveHorizon(sc, b); h != 2*b.Analysis.WorstLatency {
		t.Fatalf("worst-multiple horizon: got %d, want %d", h, 2*b.Analysis.WorstLatency)
	}
	sc.Horizon = HorizonSpec{PeriodMultiple: 4}
	if h, _ := resolveHorizon(sc, b); h != 4*b.maxPeriod() {
		t.Fatalf("period-multiple horizon: got %d, want %d", h, 4*b.maxPeriod())
	}
	sc.Horizon = HorizonSpec{}
	if h, _ := resolveHorizon(sc, b); h != 3*b.Analysis.WorstLatency {
		t.Fatalf("default horizon: got %d, want %d", h, 3*b.Analysis.WorstLatency)
	}
}

func TestHorizonSeconds(t *testing.T) {
	if timebase.Second != 1e6 {
		t.Fatalf("tick base changed: 1 s = %d ticks", timebase.Second)
	}
}
