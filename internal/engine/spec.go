// Package engine is the batch-experiment subsystem. A scenario flows
// through a fixed pipeline, one file per stage:
//
//   - spec.go: declarative, JSON-serializable Scenario specifications
//     (protocol kind, population, channel model, churn, horizon, trials,
//     seed), validated before anything is built.
//   - build.go: the protocol-kind dispatch — schedule construction, exact
//     coverage/branch/slot analyses, duty-cycles and fundamental bounds,
//     memoized in a capped LRU.
//   - run.go: the scheduler — every trial of every scenario shards over
//     one shared worker pool, each on its own deterministic RNG stream.
//   - aggregate.go, stream.go: two aggregation paths with one output
//     shape — exact trial-ordered pooling, and bounded-memory streaming
//     accumulators whose all-integer state merges order-insensitively.
//   - sweep.go, adaptive.go: the search layer — fixed cartesian grids
//     (SweepSpec) and coarse-to-fine adaptive refinement toward an
//     objective (AdaptiveSpec), both generating ordinary scenarios.
//   - report.go: text tables, per-channel tables, ASCII CDF plots,
//     adaptive refinement traces, deterministic indented JSON.
//   - registry.go: named presets, suites, sweeps and adaptive searches
//     (disjoint namespaces, self-validated at init), generalizing the
//     examples/ programs.
//
// The determinism contract: for a given spec (including its Seed), every
// result — scenario aggregate, sweep grid, adaptive refinement trace — is
// bit-identical no matter how many workers execute it. Each trial draws
// randomness from its own stream, seeded from the scenario's identity
// hash and the trial index — never from shared state. The committed
// golden files under testdata/golden/ pin this end to end; see
// docs/ARCHITECTURE.md for the full layer map and extension recipes.
package engine

import (
	"encoding/json"
	"fmt"
	"hash/fnv"

	"repro/internal/timebase"
)

// ProtocolSpec declaratively names a protocol construction and its
// parameters. Kind selects the constructor; only the fields that kind uses
// are consulted. Zero-valued optional fields take kind-specific defaults.
type ProtocolSpec struct {
	// Kind is one of: "optimal" (Theorem 5.5 symmetric construction),
	// "asymmetric" (Theorem 5.7), "constrained" (Theorem 5.6),
	// "pi-optimal" (the optimal construction expressed as BLE-like PI
	// parameters), "ble" (a named BLE preset), "pi" (explicit Ta/Ts/Ds),
	// "disco", "uconnect", "searchlight", "diffcode" (the Table 1 slotted
	// protocols simulated in continuous time), "multichannel" (a BLE-style
	// advertiser rotating each event over several advertising channels
	// against a channel-cycling scanner), "multichannel-group" /
	// "multichannel-churn" (N such devices, each advertising on every
	// channel and scanning the cycle, with per-channel collision
	// accounting — statically present or arriving/departing), or
	// "slot-disco", "slot-uconnect", "slot-searchlight", "slot-diffcode"
	// (the slotted protocols simulated on an aligned slot grid, the
	// slot-domain literature's model).
	Kind string `json:"kind"`

	// Omega is the packet airtime ω in ticks; Alpha the TX/RX power ratio
	// (default 1).
	Omega timebase.Ticks `json:"omega"`
	Alpha float64        `json:"alpha,omitempty"`

	// Eta is the per-device total duty-cycle for "optimal", "constrained"
	// and "pi-optimal"; EtaE/EtaF are the two budgets for "asymmetric".
	Eta  float64 `json:"eta,omitempty"`
	EtaE float64 `json:"eta_e,omitempty"`
	EtaF float64 `json:"eta_f,omitempty"`

	// BetaMax caps channel utilization for "constrained". If zero and PF
	// is set, the cap is solved from the Appendix B redundancy design for
	// failure probability ≤ PF among the scenario's population.
	BetaMax float64 `json:"beta_max,omitempty"`
	PF      float64 `json:"pf,omitempty"`

	// Slotted-protocol parameters: Disco primes P1 < P2, U-Connect prime
	// P, Diffcode order Q, Searchlight period T (Striped selects
	// Searchlight-S), and the slot length.
	P1      int            `json:"p1,omitempty"`
	P2      int            `json:"p2,omitempty"`
	P       int            `json:"p,omitempty"`
	Q       int            `json:"q,omitempty"`
	T       int            `json:"t,omitempty"`
	Striped bool           `json:"striped,omitempty"`
	SlotLen timebase.Ticks `json:"slot_len,omitempty"`

	// Preset names a BLE operating point for kinds "ble" and
	// "multichannel": "fast", "balanced" or "lowpower". For
	// "multichannel" it fills whichever of Ta/Ts/Ds are zero.
	Preset string `json:"preset,omitempty"`

	// Explicit periodic-interval parameters for kinds "pi" and
	// "multichannel".
	Ta timebase.Ticks `json:"ta,omitempty"`
	Ts timebase.Ticks `json:"ts,omitempty"`
	Ds timebase.Ticks `json:"ds,omitempty"`

	// The PDU model for kind "multichannel": every advertising interval
	// the device sends one PDU per channel, Channels channels back to
	// back, spaced IFS apart, while the scanner listens to one channel
	// per scan interval, cycling through all of them. Channels defaults
	// to BLE's 3 advertising channels and IFS to the BLE 150 µs
	// inter-frame space.
	Channels int            `json:"channels,omitempty"`
	IFS      timebase.Ticks `json:"ifs,omitempty"`
}

// MultiChannel reports whether the spec names the multi-channel pair kind.
func (p ProtocolSpec) MultiChannel() bool { return p.Kind == "multichannel" }

// MultiChannelGroup reports whether the spec names a multi-node
// multi-channel kind, which runs on the world kernel with per-channel
// collision accounting.
func (p ProtocolSpec) MultiChannelGroup() bool {
	return p.Kind == "multichannel-group" || p.Kind == "multichannel-churn"
}

// SlotDomain reports whether the spec names a slot-aligned kind.
func (p ProtocolSpec) SlotDomain() bool {
	switch p.Kind {
	case "slot-disco", "slot-uconnect", "slot-searchlight", "slot-diffcode":
		return true
	}
	return false
}

// ChannelSpec selects the channel and radio semantics of the simulation.
type ChannelSpec struct {
	Collisions       bool           `json:"collisions,omitempty"`
	HalfDuplex       bool           `json:"half_duplex,omitempty"`
	TruncatedWindows bool           `json:"truncated_windows,omitempty"`
	Jitter           timebase.Ticks `json:"jitter,omitempty"`
}

// ChurnSpec, when present, switches the scenario to the mobility workload:
// devices arrive at random times in the first half of the horizon and stay
// for the given duration (exactly one of the fields must be set; 0 + 0 is
// invalid).
type ChurnSpec struct {
	// Stay is the explicit presence duration in ticks.
	Stay timebase.Ticks `json:"stay,omitempty"`
	// StayWorstMultiple expresses the stay as a multiple of the exact
	// worst-case pair latency (requires a deterministic schedule).
	StayWorstMultiple float64 `json:"stay_worst_multiple,omitempty"`
}

// HorizonSpec resolves the simulated duration. Exactly one field should be
// set; an all-zero spec defaults to 3× the exact worst case when the
// schedule is deterministic and 20× the longest schedule period otherwise.
type HorizonSpec struct {
	// Ticks is an explicit horizon.
	Ticks timebase.Ticks `json:"ticks,omitempty"`
	// WorstMultiple scales the exact worst-case pair latency (requires a
	// deterministic schedule).
	WorstMultiple float64 `json:"worst_multiple,omitempty"`
	// PeriodMultiple scales the longest schedule period.
	PeriodMultiple float64 `json:"period_multiple,omitempty"`
}

// Scenario is one declarative experiment: a protocol, a population, a
// channel model, an optional churn process, and a trial count. It is the
// unit of work the executor shards and the registry names.
type Scenario struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`

	Protocol ProtocolSpec `json:"protocol"`

	// Population is the number of devices in range of each other; 2
	// selects the pair workload (sender E against listener F), larger
	// values the group workload of identical devices.
	Population int `json:"population"`

	// Trials is the number of independent Monte-Carlo trials.
	Trials int `json:"trials"`

	Horizon HorizonSpec `json:"horizon"`
	Channel ChannelSpec `json:"channel"`
	Churn   *ChurnSpec  `json:"churn,omitempty"`

	// Seed folds into every per-trial RNG stream; two scenarios differing
	// only in Seed run disjoint randomness.
	Seed int64 `json:"seed"`

	// Exact switches the scenario to the exact-analysis fast path: the
	// aggregate is answered from the schedule's already-computed coverage
	// analysis (worst/mean latency, covered fraction, bound ratio) and no
	// Monte-Carlo trials run at all. Only deterministic quiet-channel pair
	// questions qualify — population 2, no churn, a zero channel model, and
	// a schedule whose analysis is deterministic; anything stochastic is
	// rejected loudly at prepare time (see exactEligible). Trials is forced
	// to 0 in the effective spec, and the resulting aggregate carries the
	// ExactMode flag.
	Exact bool `json:"exact,omitempty"`
}

// Validate checks the parts of the spec that can be judged without
// building the protocol.
func (s Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("engine: scenario needs a name")
	}
	if s.Protocol.Kind == "" {
		return fmt.Errorf("engine: scenario %q needs a protocol kind", s.Name)
	}
	if s.Protocol.Omega <= 0 {
		return fmt.Errorf("engine: scenario %q: omega %d must be positive", s.Name, s.Protocol.Omega)
	}
	if s.Population < 2 {
		return fmt.Errorf("engine: scenario %q: population %d must be ≥ 2", s.Name, s.Population)
	}
	// Exact points run no trials, so their effective specs (and snapshots
	// of them) legitimately carry Trials == 0.
	if s.Trials < 1 && !s.Exact {
		return fmt.Errorf("engine: scenario %q: trials %d must be ≥ 1", s.Name, s.Trials)
	}
	if s.Trials < 0 {
		return fmt.Errorf("engine: scenario %q: trials %d must be ≥ 0", s.Name, s.Trials)
	}
	if s.Channel.Jitter < 0 {
		return fmt.Errorf("engine: scenario %q: jitter %d must be ≥ 0", s.Name, s.Channel.Jitter)
	}
	if s.Protocol.Channels < 0 {
		return fmt.Errorf("engine: scenario %q: channels %d must be ≥ 0", s.Name, s.Protocol.Channels)
	}
	if s.Protocol.IFS < 0 {
		return fmt.Errorf("engine: scenario %q: ifs %d must be ≥ 0", s.Name, s.Protocol.IFS)
	}
	if s.Protocol.MultiChannel() || s.Protocol.SlotDomain() {
		// These kinds run on their own per-trial primitives, which model
		// a quiet pair channel: no ALOHA collisions, no jitter, and only
		// the two-device workload.
		if s.Population != 2 {
			return fmt.Errorf("engine: scenario %q: kind %q supports only the pair workload (population 2)", s.Name, s.Protocol.Kind)
		}
		if s.Churn != nil {
			return fmt.Errorf("engine: scenario %q: kind %q does not support churn", s.Name, s.Protocol.Kind)
		}
		if s.Channel != (ChannelSpec{}) {
			return fmt.Errorf("engine: scenario %q: kind %q does not support a channel model (collisions, half-duplex, truncation, jitter)", s.Name, s.Protocol.Kind)
		}
	}
	if s.Protocol.Kind == "multichannel-group" && s.Churn != nil {
		return fmt.Errorf("engine: scenario %q: kind multichannel-group models a static population; use multichannel-churn", s.Name)
	}
	if s.Protocol.Kind == "multichannel-churn" && s.Churn == nil {
		return fmt.Errorf("engine: scenario %q: kind multichannel-churn needs a churn spec", s.Name)
	}
	if s.Churn != nil {
		// Negative values would skip the > 0 branches of resolveStay and
		// silently fall through to defaults — reject them outright.
		if s.Churn.Stay < 0 {
			return fmt.Errorf("engine: scenario %q: churn stay %d must be positive", s.Name, s.Churn.Stay)
		}
		if s.Churn.StayWorstMultiple < 0 {
			return fmt.Errorf("engine: scenario %q: churn stay_worst_multiple %g must be positive", s.Name, s.Churn.StayWorstMultiple)
		}
		if s.Churn.Stay == 0 && s.Churn.StayWorstMultiple == 0 {
			return fmt.Errorf("engine: scenario %q: churn needs stay or stay_worst_multiple", s.Name)
		}
		if s.Churn.Stay != 0 && s.Churn.StayWorstMultiple != 0 {
			return fmt.Errorf("engine: scenario %q: churn stay over-specified", s.Name)
		}
	}
	h := s.Horizon
	// Same story for the horizon: resolveHorizon ignores negative values,
	// so they must not pass validation.
	if h.Ticks < 0 {
		return fmt.Errorf("engine: scenario %q: horizon ticks %d must be positive", s.Name, h.Ticks)
	}
	if h.WorstMultiple < 0 {
		return fmt.Errorf("engine: scenario %q: horizon worst_multiple %g must be positive", s.Name, h.WorstMultiple)
	}
	if h.PeriodMultiple < 0 {
		return fmt.Errorf("engine: scenario %q: horizon period_multiple %g must be positive", s.Name, h.PeriodMultiple)
	}
	set := 0
	if h.Ticks > 0 {
		set++
	}
	if h.WorstMultiple > 0 {
		set++
	}
	if h.PeriodMultiple > 0 {
		set++
	}
	if set > 1 {
		return fmt.Errorf("engine: scenario %q: horizon over-specified", s.Name)
	}
	return nil
}

// Hash is the scenario's identity for RNG derivation: an FNV-64a digest of
// the canonical JSON encoding with the cosmetic fields (Name, Description)
// and the trial count zeroed out. Excluding the cosmetic fields means
// renaming a scenario never changes its results; excluding Trials gives
// seeds a prefix property — raising the trial count keeps the randomness
// of the existing trials and appends new streams, so a longer run extends
// rather than reshuffles a shorter one.
func (s Scenario) Hash() uint64 {
	c := s
	c.Name = ""
	c.Description = ""
	c.Trials = 0
	blob, err := json.Marshal(c)
	if err != nil {
		// Scenario contains only marshalable fields; this cannot happen.
		panic(fmt.Sprintf("engine: hash: %v", err))
	}
	h := fnv.New64a()
	h.Write(blob)
	return h.Sum64()
}

// trialSeed derives the trial'th RNG seed from the scenario hash with a
// splitmix64 finalizer, so neighboring trial indices yield statistically
// independent streams.
func trialSeed(hash uint64, trial int) int64 {
	x := hash + 0x9e3779b97f4a7c15*uint64(trial+1)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x >> 1) // keep it non-negative for readability in dumps
}
