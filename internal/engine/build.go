package engine

import (
	"container/list"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"repro/internal/collision"
	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/multichannel"
	"repro/internal/obs"
	"repro/internal/optimal"
	"repro/internal/protocols"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/slots"
	"repro/internal/timebase"
)

// buildMode selects the per-trial primitive a built protocol runs on.
type buildMode int

const (
	// modePair is the continuous-time event simulator: schedules E and F
	// with arbitrary tick-level phase offsets (pair, group and churn
	// workloads).
	modePair buildMode = iota
	// modeMultiChannel is the multi-channel advertiser/scanner pair
	// (sim.MultiChannelPairTrial against multichannel.Analyze).
	modeMultiChannel
	// modeSlotGrid is the slot-aligned slotted pair
	// (sim.SlotGridPairTrial against slots.Analyze).
	modeSlotGrid
	// modeMultiChannelGroup is the multi-node multi-channel workload on
	// the world kernel (sim.MultiChannelGroupTrial /
	// sim.MultiChannelChurnTrial with per-channel collision accounting);
	// the pairwise multichannel.Analyze facts stay attached as the
	// quiet-channel baseline.
	modeMultiChannelGroup
)

// built is the materialized form of a ProtocolSpec: the two device
// schedules a scenario simulates (E == F for symmetric kinds), the exact
// coverage analysis of E's beacons against F's windows, and the
// fundamental bound the configuration should be measured against.
// Multi-channel and slot-domain kinds materialize their own models (MC,
// Slot) instead of device schedules; their exact facts are translated into
// the same Analysis shape so aggregation is mode-independent.
type built struct {
	Mode buildMode

	E, F      schedule.Device
	Symmetric bool // F is a copy of E; group workloads require this

	Analysis coverage.Result // exact pair analysis of E.B vs F.C
	// WorstTwoWay is the exact worst case the Bound speaks about: the
	// max over both discovery directions for asymmetric pairs, and
	// simply Analysis.WorstLatency when E == F. Zero when the schedule
	// is not deterministic.
	WorstTwoWay timebase.Ticks
	Bound       float64 // fundamental bound in ticks at the achieved budgets
	EtaE        float64 // E's achieved total duty-cycle
	EtaF        float64 // F's achieved total duty-cycle
	BetaE       float64 // E's transmit channel utilization
	GammaF      float64 // F's receive duty-cycle
	BetaMax     float64 // resolved channel cap ("constrained" only)

	// MC is the multi-channel model and MCBranches its per-starting-PDU
	// exact analysis (modeMultiChannel only).
	MC         multichannel.Config
	MCBranches []multichannel.Branch

	// Slot is the slot-domain schedule, SlotLen the slot length, and
	// SlotPair the prepared trial state shared (read-only) by all trials
	// (modeSlotGrid only).
	Slot     slots.Schedule
	SlotLen  timebase.Ticks
	SlotPair *sim.SlotGridPair
}

// buildCacheCap bounds the build cache: enough to cover every preset,
// suite and modest sweep without rebuilds, while a 100k-point
// protocol-axis sweep — every grid point a distinct key — retains at most
// this many builds instead of all of them for the process lifetime.
const buildCacheCap = 256

// buildCache memoizes built schedules across trials, scenarios and suites:
// repeated trials of the same scenario — and distinct scenarios sharing a
// protocol — never rebuild or re-analyze schedules. Keyed by the protocol
// spec plus the population when the build consults it (the Appendix B
// solve). Entries hold a sync.Once so concurrent prepares of sweep points
// sharing a key run the expensive build + analysis exactly once; the cache
// evicts least-recently-used entries past its capacity (in-flight builders
// keep their entry alive through their own reference).
var buildCache = newBuildLRU(buildCacheCap)

// buildUncachedCalls counts buildUncached invocations, observed by the
// concurrent-miss test to prove the once-per-key contract.
var buildUncachedCalls atomic.Int64

type buildEntry struct {
	once sync.Once
	b    *built
	err  error
}

// buildLRU is the bounded, mutex-guarded LRU replacing the former
// unbounded sync.Map. Lookup and insertion are O(1); the lock is held only
// for list/map surgery, never across a build. It counts its traffic
// (hits/misses/evictions) for the observability layer; the counters are
// process-lifetime totals, snapshotted and differenced per run.
type buildLRU struct {
	mu      sync.Mutex
	cap     int
	entries map[uint64]*list.Element
	order   *list.List // front = most recently used; values are *lruNode

	hits, misses, evictions int64
}

type lruNode struct {
	key   uint64
	entry *buildEntry
}

func newBuildLRU(capacity int) *buildLRU {
	return &buildLRU{
		cap:     capacity,
		entries: make(map[uint64]*list.Element),
		order:   list.New(),
	}
}

// get returns the entry for key, creating (and, past capacity, evicting
// the least recently used) as needed.
func (c *buildLRU) get(key uint64) *buildEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.hits++
		c.order.MoveToFront(el)
		return el.Value.(*lruNode).entry
	}
	c.misses++
	e := &buildEntry{}
	c.entries[key] = c.order.PushFront(&lruNode{key: key, entry: e})
	if c.order.Len() > c.cap {
		c.evictions++
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.entries, back.Value.(*lruNode).key)
	}
	return e
}

// stats snapshots the cache's lifetime traffic counters.
func (c *buildLRU) stats() obs.CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return obs.CacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions}
}

// len reports the resident entry count (for the eviction test).
func (c *buildLRU) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// populationDependent reports whether building p consults the scenario
// population — only the Appendix B solve does. buildKey and buildUncached
// both defer to this predicate so the cache can never share a build whose
// construction actually depended on the population.
func populationDependent(p ProtocolSpec) bool {
	return p.Kind == "constrained" && p.BetaMax == 0 && p.PF > 0
}

func buildKey(p ProtocolSpec, population int) uint64 {
	// For population-independent builds, keying on the population would
	// only duplicate build + analysis work across a population sweep's
	// grid points.
	if !populationDependent(p) {
		population = 0
	}
	blob, err := json.Marshal(struct {
		P ProtocolSpec `json:"p"`
		S int          `json:"s"`
	}{p, population})
	if err != nil {
		panic(fmt.Sprintf("engine: build key: %v", err))
	}
	h := fnv.New64a()
	h.Write(blob)
	return h.Sum64()
}

// build materializes the protocol spec, memoized (errors included — specs
// are deterministic, so a failing build always fails).
func build(p ProtocolSpec, population int) (*built, error) {
	e := buildCache.get(buildKey(p, population))
	e.once.Do(func() { e.b, e.err = buildUncached(p, population) })
	return e.b, e.err
}

// blePI resolves a named BLE operating point.
func blePI(preset string) (protocols.PI, error) {
	switch preset {
	case "fast":
		return protocols.BLEFastAdv, nil
	case "balanced":
		return protocols.BLEBalanced, nil
	case "lowpower":
		return protocols.BLELowPower, nil
	}
	return protocols.PI{}, fmt.Errorf("engine: unknown BLE preset %q", preset)
}

func buildUncached(p ProtocolSpec, population int) (*built, error) {
	buildUncachedCalls.Add(1)
	alpha := p.Alpha
	if alpha == 0 {
		alpha = 1
	}
	params := core.Params{Omega: p.Omega, Alpha: alpha}

	if p.MultiChannel() || p.MultiChannelGroup() {
		return buildMultiChannel(p, params, alpha)
	}
	if p.SlotDomain() {
		return buildSlotGrid(p, params, alpha)
	}

	b := &built{Symmetric: true}
	switch p.Kind {
	case "optimal":
		pair, err := optimal.NewSymmetric(p.Omega, alpha, p.Eta)
		if err != nil {
			return nil, err
		}
		b.E, b.F = pair.E, pair.F

	case "asymmetric":
		pair, err := optimal.NewAsymmetric(p.Omega, alpha, p.EtaE, p.EtaF)
		if err != nil {
			return nil, err
		}
		b.E, b.F = pair.E, pair.F
		b.Symmetric = false

	case "constrained":
		betaMax := p.BetaMax
		if populationDependent(p) {
			// Appendix B: derive the channel cap from the redundancy
			// design for failure rate ≤ PF among the population.
			sol, err := collision.SolveFractional(params, p.Eta, p.PF, population, 64)
			if err != nil {
				return nil, fmt.Errorf("engine: solving Appendix B cap: %w", err)
			}
			betaMax = sol.Beta
		}
		if betaMax <= 0 {
			return nil, fmt.Errorf("engine: constrained kind needs beta_max or pf")
		}
		pair, err := optimal.NewConstrained(p.Omega, alpha, p.Eta, betaMax)
		if err != nil {
			return nil, err
		}
		b.E, b.F = pair.E, pair.F
		b.BetaMax = betaMax

	case "pi-optimal":
		pi, err := protocols.OptimalPI(p.Omega, alpha, p.Eta)
		if err != nil {
			return nil, err
		}
		dev, err := pi.Device()
		if err != nil {
			return nil, err
		}
		b.E, b.F = dev, dev

	case "ble":
		pi, err := blePI(p.Preset)
		if err != nil {
			return nil, err
		}
		if p.Omega > 0 {
			pi.Omega = p.Omega
		}
		dev, err := pi.Device()
		if err != nil {
			return nil, err
		}
		b.E, b.F = dev, dev

	case "pi":
		pi := protocols.PI{Ta: p.Ta, Ts: p.Ts, Ds: p.Ds, Omega: p.Omega}
		dev, err := pi.Device()
		if err != nil {
			return nil, err
		}
		b.E, b.F = dev, dev

	case "disco", "uconnect", "searchlight", "diffcode":
		sl, err := buildSlotted(p)
		if err != nil {
			return nil, err
		}
		dev, err := sl.Device()
		if err != nil {
			return nil, err
		}
		b.E, b.F = dev, dev

	default:
		return nil, fmt.Errorf("engine: unknown protocol kind %q", p.Kind)
	}

	ana, err := coverage.Analyze(b.E.B, b.F.C, coverage.Options{})
	if err != nil {
		return nil, fmt.Errorf("engine: analyzing %s: %w", p.Kind, err)
	}
	b.Analysis = ana
	if ana.Deterministic {
		b.WorstTwoWay = ana.WorstLatency
	}
	if !b.Symmetric {
		// The two-way bounds (Theorem 5.7) cap the slower direction, so
		// the bound-comparable worst case is the max over both.
		rev, err := coverage.Analyze(b.F.B, b.E.C, coverage.Options{})
		if err != nil {
			return nil, fmt.Errorf("engine: analyzing %s reverse direction: %w", p.Kind, err)
		}
		switch {
		case !ana.Deterministic || !rev.Deterministic:
			b.WorstTwoWay = 0
		case rev.WorstLatency > b.WorstTwoWay:
			b.WorstTwoWay = rev.WorstLatency
		}
	}
	b.EtaE = b.E.Eta(alpha)
	b.EtaF = b.F.Eta(alpha)
	b.BetaE = b.E.B.Beta()
	b.GammaF = b.F.C.Gamma()

	switch p.Kind {
	case "asymmetric":
		b.Bound = params.Asymmetric(b.EtaE, b.EtaF)
	case "constrained":
		b.Bound = params.Constrained(b.EtaE, b.BetaMax)
	case "ble", "pi":
		// Each device's transmit and receive budget separately, spent
		// optimally (Theorem 5.7 with each side's full budget doubled to
		// express a one-way configuration), as in the BLE comparison of
		// the paper's Section 7.
		etaAdv := alpha * b.E.B.Beta()
		etaScan := b.F.C.Gamma()
		if etaAdv > 0 && etaScan > 0 {
			b.Bound = params.Asymmetric(2*etaAdv, 2*etaScan)
		}
	default:
		b.Bound = params.Symmetric(b.EtaE)
	}
	return b, nil
}

// buildSlotted constructs the slotted protocol named by p.Kind (with any
// "slot-" prefix already stripped by the caller for slot-domain kinds).
func buildSlotted(p ProtocolSpec) (*protocols.Slotted, error) {
	switch p.Kind {
	case "disco", "slot-disco":
		return protocols.NewDisco(p.P1, p.P2, p.SlotLen, p.Omega)
	case "uconnect", "slot-uconnect":
		return protocols.NewUConnect(p.P, p.SlotLen, p.Omega)
	case "searchlight", "slot-searchlight":
		return protocols.NewSearchlight(p.T, p.Striped, p.SlotLen, p.Omega)
	case "diffcode", "slot-diffcode":
		return protocols.NewDiffcode(p.Q, p.SlotLen, p.Omega)
	}
	return nil, fmt.Errorf("engine: unknown slotted kind %q", p.Kind)
}

// multiChannelConfig resolves the multi-channel model of spec p: explicit
// Ta/Ts/Ds/Omega, else the named BLE preset's values (the same precedence
// the "ble" kind applies), with BLE defaults for the channel count (3)
// and inter-frame space (150 µs).
func multiChannelConfig(p ProtocolSpec) (multichannel.Config, error) {
	ta, ts, ds, omega := p.Ta, p.Ts, p.Ds, p.Omega
	if p.Preset != "" {
		pi, err := blePI(p.Preset)
		if err != nil {
			return multichannel.Config{}, err
		}
		if ta == 0 {
			ta = pi.Ta
		}
		if ts == 0 {
			ts = pi.Ts
		}
		if ds == 0 {
			ds = pi.Ds
		}
		if omega == 0 {
			omega = pi.Omega
		}
	}
	channels := p.Channels
	if channels == 0 {
		channels = 3
	}
	ifs := p.IFS
	if ifs == 0 {
		ifs = 150 * timebase.Microsecond
	}
	return multichannel.Config{
		Ta: ta, Omega: omega, IFS: ifs,
		Ts: ts, Ds: ds, Channels: channels,
	}, nil
}

// buildMultiChannel materializes the "multichannel" kind and its
// multi-node siblings ("multichannel-group", "multichannel-churn"): the
// exact facts come from multichannel.Analyze, translated into the Analysis
// shape the aggregator reads for every mode. For the multi-node kinds the
// analysis is the quiet-channel pairwise baseline the crowd is measured
// against; every device plays both roles, so the build is symmetric.
func buildMultiChannel(p ProtocolSpec, params core.Params, alpha float64) (*built, error) {
	cfg, err := multiChannelConfig(p)
	if err != nil {
		return nil, err
	}
	res, err := multichannel.Analyze(cfg)
	if err != nil {
		return nil, fmt.Errorf("engine: analyzing multichannel: %w", err)
	}
	b := &built{
		Mode:       modeMultiChannel,
		Symmetric:  false, // advertiser and scanner are distinct roles
		MC:         cfg,
		MCBranches: res.Branches,
		Analysis: coverage.Result{
			Deterministic:   res.Deterministic,
			CoveredFraction: res.CoveredFraction,
			WorstLatency:    res.WorstLatency,
			MeanLatency:     res.MeanLatency,
		},
	}
	if p.MultiChannelGroup() {
		b.Mode = modeMultiChannelGroup
		b.Symmetric = true // every device advertises and scans
	}
	if res.Deterministic {
		b.WorstTwoWay = res.WorstLatency
	}
	// The advertiser transmits Channels PDUs per advertising interval; the
	// scanner listens Ds out of every scan interval.
	b.BetaE = float64(cfg.Channels) * float64(cfg.Omega) / float64(cfg.Ta)
	b.GammaF = float64(cfg.Ds) / float64(cfg.Ts)
	if b.Symmetric {
		// Multi-node kinds: each device spends the advertiser's and the
		// scanner's budget, so the symmetric bound at the combined
		// duty-cycle is the yardstick.
		b.EtaE = alpha*b.BetaE + b.GammaF
		b.EtaF = b.EtaE
		b.Bound = params.Symmetric(b.EtaE)
		return b, nil
	}
	b.EtaE = alpha * b.BetaE
	b.EtaF = b.GammaF
	// As for "ble"/"pi": each side's budget doubled to express a one-way
	// configuration, so the ratio measures the multi-channel rotation
	// against the paper's two-way worst case at matched budgets.
	if b.EtaE > 0 && b.GammaF > 0 {
		b.Bound = params.Asymmetric(2*b.EtaE, 2*b.GammaF)
	}
	return b, nil
}

// buildSlotGrid materializes a "slot-*" kind: the schedule pattern comes
// from the same constructors as the continuous-time slotted kinds, the
// exact facts from the slot-domain analysis, and latency = slots × slot
// length throughout.
func buildSlotGrid(p ProtocolSpec, params core.Params, alpha float64) (*built, error) {
	if p.Kind == "slot-searchlight" && p.Striped {
		// Searchlight-S closes its striped-probing gaps by extending the
		// listen phase past the slot edge — exactly the overlap a rigid
		// slot grid cannot express.
		return nil, fmt.Errorf("engine: slot-searchlight does not support striped (slot extension needs the continuous-time kind)")
	}
	sl, err := buildSlotted(p)
	if err != nil {
		return nil, err
	}
	sch := slots.Schedule{Period: sl.Period, Active: sl.Active}
	res, err := slots.Analyze(sch, sch)
	if err != nil {
		return nil, fmt.Errorf("engine: analyzing %s: %w", p.Kind, err)
	}
	pair, err := sim.NewSlotGridPair(sch, sch, p.SlotLen)
	if err != nil {
		return nil, fmt.Errorf("engine: preparing %s: %w", p.Kind, err)
	}
	b := &built{
		Mode:      modeSlotGrid,
		Symmetric: true,
		Slot:      sch,
		SlotLen:   p.SlotLen,
		SlotPair:  pair,
		Analysis: coverage.Result{
			Deterministic:   res.Deterministic,
			CoveredFraction: res.CoveredFraction,
			WorstLatency:    timebase.Ticks(res.WorstSlots) * p.SlotLen,
			MeanLatency:     res.MeanSlots * float64(p.SlotLen),
		},
	}
	if res.Deterministic {
		b.WorstTwoWay = b.Analysis.WorstLatency
	}
	// Energy accounting uses the same slot layout as the continuous-time
	// kinds (two edge beacons plus the listen stretch per active slot), so
	// the two paths for one protocol are directly comparable.
	b.BetaE = sl.Beta()
	b.GammaF = sl.Gamma()
	b.EtaE = sl.Eta(alpha)
	b.EtaF = b.EtaE
	b.Bound = params.Symmetric(b.EtaE)
	return b, nil
}

// maxPeriod is the longest repetition period of the built pair, the
// fallback horizon unit for non-deterministic schedules.
func (b *built) maxPeriod() timebase.Ticks {
	switch b.Mode {
	case modeMultiChannel, modeMultiChannelGroup:
		// The longer of the advertiser's interval and the scanner's full
		// channel cycle (the hyperperiod can be impractically long).
		m := b.MC.Ta
		if c := timebase.Ticks(b.MC.Channels) * b.MC.Ts; c > m {
			m = c
		}
		return m
	case modeSlotGrid:
		return timebase.Ticks(b.Slot.Period) * b.SlotLen
	}
	m := b.E.B.Period
	for _, p := range []timebase.Ticks{b.E.C.Period, b.F.B.Period, b.F.C.Period} {
		if p > m {
			m = p
		}
	}
	return m
}
