package engine

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sync"

	"repro/internal/collision"
	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/optimal"
	"repro/internal/protocols"
	"repro/internal/schedule"
	"repro/internal/timebase"
)

// built is the materialized form of a ProtocolSpec: the two device
// schedules a scenario simulates (E == F for symmetric kinds), the exact
// coverage analysis of E's beacons against F's windows, and the
// fundamental bound the configuration should be measured against.
type built struct {
	E, F      schedule.Device
	Symmetric bool // F is a copy of E; group workloads require this

	Analysis coverage.Result // exact pair analysis of E.B vs F.C
	// WorstTwoWay is the exact worst case the Bound speaks about: the
	// max over both discovery directions for asymmetric pairs, and
	// simply Analysis.WorstLatency when E == F. Zero when the schedule
	// is not deterministic.
	WorstTwoWay timebase.Ticks
	Bound       float64 // fundamental bound in ticks at the achieved budgets
	EtaE        float64 // E's achieved total duty-cycle
	EtaF        float64 // F's achieved total duty-cycle
	BetaMax     float64 // resolved channel cap ("constrained" only)
}

// buildCache memoizes built schedules across trials, scenarios and suites:
// repeated trials of the same scenario — and distinct scenarios sharing a
// protocol — never rebuild or re-analyze schedules. Keyed by the protocol
// spec plus the population when the build consults it (the Appendix B
// solve). Entries hold a sync.Once so concurrent prepares of sweep points
// sharing a key run the expensive build + analysis exactly once.
var buildCache sync.Map // uint64 → *buildEntry

type buildEntry struct {
	once sync.Once
	b    *built
	err  error
}

// populationDependent reports whether building p consults the scenario
// population — only the Appendix B solve does. buildKey and buildUncached
// both defer to this predicate so the cache can never share a build whose
// construction actually depended on the population.
func populationDependent(p ProtocolSpec) bool {
	return p.Kind == "constrained" && p.BetaMax == 0 && p.PF > 0
}

func buildKey(p ProtocolSpec, population int) uint64 {
	// For population-independent builds, keying on the population would
	// only duplicate build + analysis work across a population sweep's
	// grid points.
	if !populationDependent(p) {
		population = 0
	}
	blob, err := json.Marshal(struct {
		P ProtocolSpec `json:"p"`
		S int          `json:"s"`
	}{p, population})
	if err != nil {
		panic(fmt.Sprintf("engine: build key: %v", err))
	}
	h := fnv.New64a()
	h.Write(blob)
	return h.Sum64()
}

// build materializes the protocol spec, memoized (errors included — specs
// are deterministic, so a failing build always fails).
func build(p ProtocolSpec, population int) (*built, error) {
	v, _ := buildCache.LoadOrStore(buildKey(p, population), &buildEntry{})
	e := v.(*buildEntry)
	e.once.Do(func() { e.b, e.err = buildUncached(p, population) })
	return e.b, e.err
}

func buildUncached(p ProtocolSpec, population int) (*built, error) {
	alpha := p.Alpha
	if alpha == 0 {
		alpha = 1
	}
	params := core.Params{Omega: p.Omega, Alpha: alpha}

	b := &built{Symmetric: true}
	switch p.Kind {
	case "optimal":
		pair, err := optimal.NewSymmetric(p.Omega, alpha, p.Eta)
		if err != nil {
			return nil, err
		}
		b.E, b.F = pair.E, pair.F

	case "asymmetric":
		pair, err := optimal.NewAsymmetric(p.Omega, alpha, p.EtaE, p.EtaF)
		if err != nil {
			return nil, err
		}
		b.E, b.F = pair.E, pair.F
		b.Symmetric = false

	case "constrained":
		betaMax := p.BetaMax
		if populationDependent(p) {
			// Appendix B: derive the channel cap from the redundancy
			// design for failure rate ≤ PF among the population.
			sol, err := collision.SolveFractional(params, p.Eta, p.PF, population, 64)
			if err != nil {
				return nil, fmt.Errorf("engine: solving Appendix B cap: %w", err)
			}
			betaMax = sol.Beta
		}
		if betaMax <= 0 {
			return nil, fmt.Errorf("engine: constrained kind needs beta_max or pf")
		}
		pair, err := optimal.NewConstrained(p.Omega, alpha, p.Eta, betaMax)
		if err != nil {
			return nil, err
		}
		b.E, b.F = pair.E, pair.F
		b.BetaMax = betaMax

	case "pi-optimal":
		pi, err := protocols.OptimalPI(p.Omega, alpha, p.Eta)
		if err != nil {
			return nil, err
		}
		dev, err := pi.Device()
		if err != nil {
			return nil, err
		}
		b.E, b.F = dev, dev

	case "ble":
		var pi protocols.PI
		switch p.Preset {
		case "fast":
			pi = protocols.BLEFastAdv
		case "balanced":
			pi = protocols.BLEBalanced
		case "lowpower":
			pi = protocols.BLELowPower
		default:
			return nil, fmt.Errorf("engine: unknown BLE preset %q", p.Preset)
		}
		if p.Omega > 0 {
			pi.Omega = p.Omega
		}
		dev, err := pi.Device()
		if err != nil {
			return nil, err
		}
		b.E, b.F = dev, dev

	case "pi":
		pi := protocols.PI{Ta: p.Ta, Ts: p.Ts, Ds: p.Ds, Omega: p.Omega}
		dev, err := pi.Device()
		if err != nil {
			return nil, err
		}
		b.E, b.F = dev, dev

	case "disco", "uconnect", "searchlight", "diffcode":
		var (
			sl  *protocols.Slotted
			err error
		)
		switch p.Kind {
		case "disco":
			sl, err = protocols.NewDisco(p.P1, p.P2, p.SlotLen, p.Omega)
		case "uconnect":
			sl, err = protocols.NewUConnect(p.P, p.SlotLen, p.Omega)
		case "searchlight":
			sl, err = protocols.NewSearchlight(p.T, p.Striped, p.SlotLen, p.Omega)
		case "diffcode":
			sl, err = protocols.NewDiffcode(p.Q, p.SlotLen, p.Omega)
		}
		if err != nil {
			return nil, err
		}
		dev, err := sl.Device()
		if err != nil {
			return nil, err
		}
		b.E, b.F = dev, dev

	default:
		return nil, fmt.Errorf("engine: unknown protocol kind %q", p.Kind)
	}

	ana, err := coverage.Analyze(b.E.B, b.F.C, coverage.Options{})
	if err != nil {
		return nil, fmt.Errorf("engine: analyzing %s: %w", p.Kind, err)
	}
	b.Analysis = ana
	if ana.Deterministic {
		b.WorstTwoWay = ana.WorstLatency
	}
	if !b.Symmetric {
		// The two-way bounds (Theorem 5.7) cap the slower direction, so
		// the bound-comparable worst case is the max over both.
		rev, err := coverage.Analyze(b.F.B, b.E.C, coverage.Options{})
		if err != nil {
			return nil, fmt.Errorf("engine: analyzing %s reverse direction: %w", p.Kind, err)
		}
		switch {
		case !ana.Deterministic || !rev.Deterministic:
			b.WorstTwoWay = 0
		case rev.WorstLatency > b.WorstTwoWay:
			b.WorstTwoWay = rev.WorstLatency
		}
	}
	b.EtaE = b.E.Eta(alpha)
	b.EtaF = b.F.Eta(alpha)

	switch p.Kind {
	case "asymmetric":
		b.Bound = params.Asymmetric(b.EtaE, b.EtaF)
	case "constrained":
		b.Bound = params.Constrained(b.EtaE, b.BetaMax)
	case "ble", "pi":
		// Each device's transmit and receive budget separately, spent
		// optimally (Theorem 5.7 with each side's full budget doubled to
		// express a one-way configuration), as in the BLE comparison of
		// the paper's Section 7.
		etaAdv := alpha * b.E.B.Beta()
		etaScan := b.F.C.Gamma()
		if etaAdv > 0 && etaScan > 0 {
			b.Bound = params.Asymmetric(2*etaAdv, 2*etaScan)
		}
	default:
		b.Bound = params.Symmetric(b.EtaE)
	}
	return b, nil
}

// maxPeriod is the longest repetition period of the built pair, the
// fallback horizon unit for non-deterministic schedules.
func (b *built) maxPeriod() timebase.Ticks {
	m := b.E.B.Period
	for _, p := range []timebase.Ticks{b.E.C.Period, b.F.B.Period, b.F.C.Period} {
		if p > m {
			m = p
		}
	}
	return m
}
