package engine

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/timebase"
)

// This file is the shard/merge execution layer: it splits any scenario
// list, sweep, or adaptive round across processes by trial-index range,
// serializes each process's accumulator state as a versioned ndshard/1
// snapshot, and merges snapshot sets into results byte-identical to an
// unsharded run.
//
// Why this is exact and not approximate: the engine's determinism contract
// already makes every trial independent of scheduling — trial t of a
// scenario runs on the RNG stream seeded from (spec hash, t) no matter
// which worker or process executes it. Aggregation is either a function of
// the sample multiset plus integer counters (the exact path sorts before
// computing anything order-sensitive) or an all-integer mergeable
// accumulator (the streaming path). Both are closed under concatenation /
// merge of disjoint trial ranges, so shard k of n simply runs the
// contiguous range [⌊(k−1)·T/n⌋, ⌊k·T/n⌋) and exports its state; the merge
// reassembles the full-range state and runs the same finalizer an
// unsharded run would. Byte-identity (after StripRuntime) is asserted by
// the property harness in shardprop_test.go and by the CI shard-matrix
// job.
//
// Adaptive searches shard by round: a refinement round's grid depends on
// every previous round's aggregates, so one pass cannot run the whole
// search. Instead each shard replays the deterministic search against a
// pool of already-merged evaluations, finds the first round the pool
// cannot answer, and runs its trial range of exactly those scenarios; the
// merge combines the shards into full evaluations, appends them to the
// pool, and replays — emitting either the final AdaptiveResult or a
// continuation snapshot for the next shard round.

// SnapshotCodec is the ndshard serialization version. Decoding rejects
// every other value: snapshot state is accumulator internals, and reading
// a future layout as the current one would corrupt results silently.
const SnapshotCodec = "ndshard/1"

// Snapshot kinds: what produced the contained point snapshots, which
// decides how a merge finalizes them.
const (
	// SnapshotSuite marks a scenario-list (suite/preset/spec-file) shard.
	SnapshotSuite = "suite"
	// SnapshotSweep marks a sweep-grid shard.
	SnapshotSweep = "sweep"
	// SnapshotAdaptive marks an adaptive-search shard or continuation.
	SnapshotAdaptive = "adaptive"
	// SnapshotJournal marks a journal entry: one completed point at full
	// trial range, persisted for crash resume.
	SnapshotJournal = "journal"
)

// A ShardSpec selects trial-range shard k of n (1-based): the contiguous
// trial range [⌊(k−1)·T/n⌋, ⌊k·T/n⌋) of every scenario. The n ranges
// partition [0, T) exactly; a range may be empty when n exceeds a
// scenario's trial count.
type ShardSpec struct {
	K int `json:"k"`
	N int `json:"n"`
}

// ParseShard parses the CLI form "k/n".
func ParseShard(s string) (ShardSpec, error) {
	ks, ns, ok := strings.Cut(s, "/")
	if !ok {
		return ShardSpec{}, fmt.Errorf("engine: shard %q: want \"k/n\" with integers", s)
	}
	k, kerr := strconv.Atoi(ks)
	n, nerr := strconv.Atoi(ns)
	if kerr != nil || nerr != nil {
		return ShardSpec{}, fmt.Errorf("engine: shard %q: want \"k/n\" with integers", s)
	}
	sh := ShardSpec{K: k, N: n}
	if err := sh.Validate(); err != nil {
		return ShardSpec{}, err
	}
	return sh, nil
}

// IsZero reports the unset spec (no sharding).
func (s ShardSpec) IsZero() bool { return s.K == 0 && s.N == 0 }

// Validate checks 1 ≤ k ≤ n.
func (s ShardSpec) Validate() error {
	if s.N < 1 || s.K < 1 || s.K > s.N {
		return fmt.Errorf("engine: shard %d/%d: want 1 ≤ k ≤ n", s.K, s.N)
	}
	return nil
}

// Range returns the shard's half-open trial range [lo, hi) of a
// trials-sized scenario. Ranges of consecutive k are contiguous and
// together cover [0, trials) exactly.
func (s ShardSpec) Range(trials int) (lo, hi int) {
	lo = int(int64(s.K-1) * int64(trials) / int64(s.N))
	hi = int(int64(s.K) * int64(trials) / int64(s.N))
	return lo, hi
}

func (s ShardSpec) String() string { return fmt.Sprintf("%d/%d", s.K, s.N) }

// ExactState is the exact aggregation path's mergeable accumulator: the
// trial-ordered latency sample pool plus every integer counter the
// finalizer consumes. States of adjacent trial ranges merge by
// concatenating samples (in shard order — trial order is preserved) and
// adding counters; the finalizer sorts, so the merged aggregate is
// byte-identical to the unsharded one.
type ExactState struct {
	Samples       []timebase.Ticks `json:"samples,omitempty"` // trial-ordered
	Misses        int64            `json:"misses,omitempty"`
	Transmissions int64            `json:"transmissions,omitempty"`
	Collided      int64            `json:"collided,omitempty"`
	ContactN      []int64          `json:"contact_n,omitempty"` // per contactBinEdges bin
	ContactD      []int64          `json:"contact_d,omitempty"`
	ChanDisc      []int64          `json:"chan_disc,omitempty"` // per advertising channel
	ChanTx        []int64          `json:"chan_tx,omitempty"`
	ChanColl      []int64          `json:"chan_coll,omitempty"`
}

// validate checks internal consistency: non-negative counters and matched
// counter-array pairs. Scenario-dependent layout (channel counts, contact
// gating) is checked at finalization, where the schedule is built.
func (st *ExactState) validate() error {
	if st.Misses < 0 || st.Transmissions < 0 || st.Collided < 0 {
		return errors.New("negative counter")
	}
	if len(st.ContactN) != len(st.ContactD) {
		return fmt.Errorf("contact_n has %d bins, contact_d %d", len(st.ContactN), len(st.ContactD))
	}
	if len(st.ContactN) != 0 && len(st.ContactN) != len(contactBinEdges) {
		return fmt.Errorf("contact bins: got %d, want %d", len(st.ContactN), len(contactBinEdges))
	}
	if len(st.ChanTx) != len(st.ChanColl) {
		return fmt.Errorf("chan_tx has %d channels, chan_coll %d", len(st.ChanTx), len(st.ChanColl))
	}
	if len(st.ChanTx) != 0 && len(st.ChanTx) != len(st.ChanDisc) {
		return fmt.Errorf("chan_tx has %d channels, chan_disc %d", len(st.ChanTx), len(st.ChanDisc))
	}
	for _, counts := range [][]int64{st.ContactN, st.ContactD, st.ChanDisc, st.ChanTx, st.ChanColl} {
		for _, n := range counts {
			if n < 0 {
				return errors.New("negative counter")
			}
		}
	}
	return nil
}

// merge appends b's trial range onto st's. The two states must describe
// the same scenario (the caller has checked the spec hash), so their
// counter layouts must agree; a mismatch means a corrupted snapshot.
func (st *ExactState) merge(b *ExactState) error {
	if len(st.ContactN) != len(b.ContactN) || len(st.ChanDisc) != len(b.ChanDisc) || len(st.ChanTx) != len(b.ChanTx) {
		return fmt.Errorf("engine: merging exact states with mismatched counter layouts (%d/%d/%d vs %d/%d/%d contact/disc/tx bins)",
			len(st.ContactN), len(st.ChanDisc), len(st.ChanTx), len(b.ContactN), len(b.ChanDisc), len(b.ChanTx))
	}
	st.Samples = append(st.Samples, b.Samples...)
	st.Misses += b.Misses
	st.Transmissions += b.Transmissions
	st.Collided += b.Collided
	for i := range st.ContactN {
		st.ContactN[i] += b.ContactN[i]
		st.ContactD[i] += b.ContactD[i]
	}
	for i := range st.ChanDisc {
		st.ChanDisc[i] += b.ChanDisc[i]
	}
	for i := range st.ChanTx {
		st.ChanTx[i] += b.ChanTx[i]
		st.ChanColl[i] += b.ChanColl[i]
	}
	return nil
}

// clone deep-copies the state (the finalizer sorts Samples in place, so a
// snapshot that must keep trial order hands the finalizer a clone).
func (st *ExactState) clone() *ExactState {
	c := *st
	c.Samples = append([]timebase.Ticks(nil), st.Samples...)
	c.ContactN = copyCounts(st.ContactN)
	c.ContactD = copyCounts(st.ContactD)
	c.ChanDisc = copyCounts(st.ChanDisc)
	c.ChanTx = copyCounts(st.ChanTx)
	c.ChanColl = copyCounts(st.ChanColl)
	return &c
}

// StreamState is the streaming accumulator's serialized form: the exact
// field-for-field image of a streamAccum, all-integer and mergeable (the
// 128-bit latency sum travels as its two uint64 halves — encoding/json
// round-trips uint64 exactly).
type StreamState struct {
	Horizon  timebase.Ticks `json:"horizon"`
	BinWidth timebase.Ticks `json:"bin_width"`
	Worst    timebase.Ticks `json:"worst,omitempty"`

	Count  int64          `json:"count"`
	Misses int64          `json:"misses,omitempty"`
	SumLo  uint64         `json:"sum_lo"`
	SumHi  uint64         `json:"sum_hi,omitempty"`
	Min    timebase.Ticks `json:"min"`
	Max    timebase.Ticks `json:"max"`

	Bins []int64 `json:"bins"`

	Transmissions int64 `json:"transmissions,omitempty"`
	Collided      int64 `json:"collided,omitempty"`

	ContactN []int64 `json:"contact_n"`
	ContactD []int64 `json:"contact_d"`

	ChanDisc []int64 `json:"chan_disc,omitempty"`
	ChanTx   []int64 `json:"chan_tx,omitempty"`
	ChanColl []int64 `json:"chan_coll,omitempty"`
}

// validate checks internal consistency: the fixed histogram layout, the
// count/histogram invariant (every sample lands in exactly one bin), and
// non-negative counters — everything decodable input could violate without
// reference to the scenario.
func (s *StreamState) validate() error {
	if s.BinWidth < 1 {
		return fmt.Errorf("bin width %d < 1", s.BinWidth)
	}
	if len(s.Bins) != streamBins {
		return fmt.Errorf("histogram has %d bins, want %d", len(s.Bins), streamBins)
	}
	if s.Count < 0 || s.Misses < 0 || s.Transmissions < 0 || s.Collided < 0 {
		return errors.New("negative counter")
	}
	var total int64
	for _, n := range s.Bins {
		if n < 0 {
			return errors.New("negative histogram bin")
		}
		total += n
	}
	if total != s.Count {
		return fmt.Errorf("histogram holds %d samples, count says %d", total, s.Count)
	}
	if s.Count > 0 && s.Min > s.Max {
		return fmt.Errorf("min %d > max %d", s.Min, s.Max)
	}
	if len(s.ContactN) != len(contactBinEdges) || len(s.ContactD) != len(contactBinEdges) {
		return fmt.Errorf("contact bins: got %d/%d, want %d", len(s.ContactN), len(s.ContactD), len(contactBinEdges))
	}
	if len(s.ChanDisc) != len(s.ChanTx) || len(s.ChanDisc) != len(s.ChanColl) {
		return fmt.Errorf("channel counters: %d/%d/%d lengths differ", len(s.ChanDisc), len(s.ChanTx), len(s.ChanColl))
	}
	for _, counts := range [][]int64{s.ContactN, s.ContactD, s.ChanDisc, s.ChanTx, s.ChanColl} {
		for _, n := range counts {
			if n < 0 {
				return errors.New("negative counter")
			}
		}
	}
	return nil
}

// A PointSnapshot is one scenario's accumulator state over one trial
// range: the full effective scenario (so the merge can rebuild schedules
// and re-derive the horizon), its identity hash (guarding against merging
// states of different specs), the range, and exactly one of the two
// accumulator forms.
type PointSnapshot struct {
	Name     string   `json:"name"`
	Scenario Scenario `json:"scenario"`
	SpecHash uint64   `json:"spec_hash"`
	Trials   int      `json:"trials"`
	TrialLo  int      `json:"trial_lo"`
	TrialHi  int      `json:"trial_hi"`
	Streamed bool     `json:"streamed,omitempty"`

	Exact  *ExactState  `json:"exact,omitempty"`
	Stream *StreamState `json:"stream,omitempty"`
}

// validate checks the point against its own embedded scenario and the
// snapshot's shard spec (zero = the point must cover the full range).
func (ps *PointSnapshot) validate(shard ShardSpec) error {
	if err := ps.Scenario.Validate(); err != nil {
		return err
	}
	if ps.Name != ps.Scenario.Name {
		return fmt.Errorf("point name %q does not match scenario name %q", ps.Name, ps.Scenario.Name)
	}
	if h := ps.Scenario.Hash(); ps.SpecHash != h {
		return fmt.Errorf("point %q: spec hash %#x does not match scenario (%#x)", ps.Name, ps.SpecHash, h)
	}
	if ps.Trials != ps.Scenario.Trials {
		return fmt.Errorf("point %q: trials %d does not match scenario (%d)", ps.Name, ps.Trials, ps.Scenario.Trials)
	}
	lo, hi := 0, ps.Trials
	if !shard.IsZero() {
		lo, hi = shard.Range(ps.Trials)
	}
	if ps.TrialLo != lo || ps.TrialHi != hi {
		return fmt.Errorf("point %q: trial range [%d, %d) does not match shard %s of %d trials (want [%d, %d))",
			ps.Name, ps.TrialLo, ps.TrialHi, shard, ps.Trials, lo, hi)
	}
	switch {
	case ps.Streamed && (ps.Stream == nil || ps.Exact != nil):
		return fmt.Errorf("point %q: streamed point must carry exactly the stream state", ps.Name)
	case !ps.Streamed && (ps.Exact == nil || ps.Stream != nil):
		return fmt.Errorf("point %q: exact point must carry exactly the exact state", ps.Name)
	}
	if ps.Streamed {
		if err := ps.Stream.validate(); err != nil {
			return fmt.Errorf("point %q: stream state: %w", ps.Name, err)
		}
		return nil
	}
	if err := ps.Exact.validate(); err != nil {
		return fmt.Errorf("point %q: exact state: %w", ps.Name, err)
	}
	return nil
}

// A Snapshot is the ndshard/1 document one shard process emits and the
// merge consumes: the codec version, what kind of run produced it, the
// shard coordinates, and one PointSnapshot per point in run order. Adaptive
// snapshots additionally carry the search spec and the pool of already
// fully-merged evaluations (Evaluations), which every shard of a round must
// share; an adaptive continuation (the merge's output when the search needs
// more rounds) has Evaluations only and a zero Shard.
type Snapshot struct {
	Codec string    `json:"codec"`
	Kind  string    `json:"kind"`
	Label string    `json:"label,omitempty"`
	Shard ShardSpec `json:"shard,omitempty"`

	Adaptive    *AdaptiveSpec   `json:"adaptive,omitempty"`
	Evaluations []PointSnapshot `json:"evaluations,omitempty"`

	Points []PointSnapshot `json:"points,omitempty"`
}

// Validate checks the document end to end: codec version, kind, shard
// bounds, and every contained point snapshot (trial ranges against the
// shard spec, spec hashes against the embedded scenarios, accumulator
// invariants). Decoding runs it, so no malformed snapshot reaches the
// merge or finalization layers.
func (s *Snapshot) Validate() error {
	if s.Codec != SnapshotCodec {
		return fmt.Errorf("engine: unsupported snapshot codec %q (this build reads %q)", s.Codec, SnapshotCodec)
	}
	switch s.Kind {
	case SnapshotSuite, SnapshotSweep, SnapshotAdaptive, SnapshotJournal:
	default:
		return fmt.Errorf("engine: unknown snapshot kind %q", s.Kind)
	}
	if s.Shard.IsZero() {
		if s.Kind != SnapshotAdaptive || len(s.Points) > 0 {
			return fmt.Errorf("engine: snapshot without a shard spec must be an adaptive continuation")
		}
	} else if err := s.Shard.Validate(); err != nil {
		return err
	}
	if s.Kind != SnapshotAdaptive && (s.Adaptive != nil || len(s.Evaluations) > 0) {
		return fmt.Errorf("engine: %s snapshot must not carry adaptive search state", s.Kind)
	}
	if s.Kind == SnapshotAdaptive && s.Adaptive == nil {
		return fmt.Errorf("engine: adaptive snapshot needs its search spec")
	}
	names := make(map[string]bool, len(s.Points))
	for i := range s.Points {
		if err := s.Points[i].validate(s.Shard); err != nil {
			return fmt.Errorf("engine: snapshot point %d: %w", i, err)
		}
		if names[s.Points[i].Name] {
			return fmt.Errorf("engine: snapshot repeats point %q", s.Points[i].Name)
		}
		names[s.Points[i].Name] = true
	}
	for i := range s.Evaluations {
		// Pooled evaluations are always full-range (they are merged).
		if err := s.Evaluations[i].validate(ShardSpec{}); err != nil {
			return fmt.Errorf("engine: snapshot evaluation %d: %w", i, err)
		}
	}
	return nil
}

// EncodeSnapshot writes the snapshot as deterministic, indented ndshard/1
// JSON.
func EncodeSnapshot(w io.Writer, s Snapshot) error {
	if err := s.Validate(); err != nil {
		return err
	}
	return writeIndentedJSON(w, s)
}

// DecodeSnapshot reads and validates one ndshard/1 snapshot. Unknown
// fields, trailing data, version skew and every accumulator-invariant
// violation are rejected with an error; no input panics. The decoded form
// is canonical (empty slices normalized to nil), so
// decode(encode(decode(x))) == decode(x).
func DecodeSnapshot(r io.Reader) (Snapshot, error) {
	var s Snapshot
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("engine: decoding snapshot: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return Snapshot{}, fmt.Errorf("engine: decoding snapshot: trailing data after the document")
	}
	s.canonicalize()
	if err := s.Validate(); err != nil {
		return Snapshot{}, err
	}
	return s, nil
}

// canonicalize nil-normalizes empty slices so a decoded snapshot re-encodes
// to the same bytes (omitempty drops empty slices at encode time).
func (s *Snapshot) canonicalize() {
	if len(s.Points) == 0 {
		s.Points = nil
	}
	if len(s.Evaluations) == 0 {
		s.Evaluations = nil
	}
	for _, pts := range [][]PointSnapshot{s.Points, s.Evaluations} {
		for i := range pts {
			if ex := pts[i].Exact; ex != nil {
				if len(ex.Samples) == 0 {
					ex.Samples = nil
				}
				ex.ContactN = copyCounts(ex.ContactN)
				ex.ContactD = copyCounts(ex.ContactD)
				ex.ChanDisc = copyCounts(ex.ChanDisc)
				ex.ChanTx = copyCounts(ex.ChanTx)
				ex.ChanColl = copyCounts(ex.ChanColl)
			}
			if st := pts[i].Stream; st != nil {
				st.ChanDisc = copyCounts(st.ChanDisc)
				st.ChanTx = copyCounts(st.ChanTx)
				st.ChanColl = copyCounts(st.ChanColl)
			}
		}
	}
}

// ReadSnapshotFile loads and validates one snapshot file.
func ReadSnapshotFile(path string) (Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return Snapshot{}, err
	}
	defer f.Close()
	s, err := DecodeSnapshot(f)
	if err != nil {
		return Snapshot{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// WriteSnapshotFile writes the snapshot to path (atomically: a temp file
// in the same directory, then rename — a crash mid-write never leaves a
// half-snapshot behind).
func WriteSnapshotFile(path string, s Snapshot) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := EncodeSnapshot(f, s); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// runShard executes the shard's trial range of every scenario and captures
// one PointSnapshot per point instead of aggregates.
func runShard(label, kind string, scenarios []Scenario, shard ShardSpec, opt Options) (Snapshot, error) {
	if err := shard.Validate(); err != nil {
		return Snapshot{}, err
	}
	o := opt
	o.shard = shard
	o.capture = true
	points, err := runPoints(scenarios, o)
	if err != nil {
		return Snapshot{}, err
	}
	snap := Snapshot{Codec: SnapshotCodec, Kind: kind, Label: label, Shard: shard, Points: make([]PointSnapshot, len(points))}
	for i, p := range points {
		snap.Points[i] = *p.snap
	}
	if opt.Metrics != nil {
		opt.Metrics.ShardK = shard.K
		opt.Metrics.ShardN = shard.N
		opt.Metrics.SnapshotPoints = len(points)
	}
	return snap, nil
}

// RunScenariosShard runs trial-range shard k/n of a scenario list and
// returns the ndshard/1 snapshot to feed MergeSnapshots. The label names
// the run (suite name, spec file); the merged SuiteResult carries it.
func RunScenariosShard(label string, scenarios []Scenario, shard ShardSpec, opt Options) (Snapshot, error) {
	return runShard(label, SnapshotSuite, scenarios, shard, opt)
}

// RunSweepShard expands the sweep and runs trial-range shard k/n of every
// grid point, returning the snapshot to feed MergeSnapshots.
func RunSweepShard(sp SweepSpec, shard ShardSpec, opt Options) (Snapshot, error) {
	scenarios, err := sp.Expand()
	if err != nil {
		return Snapshot{}, err
	}
	return runShard(sp.Name, SnapshotSweep, scenarios, shard, opt)
}

// validateShardSet checks a snapshot set is mergeable: one codec, one kind,
// one label, the same point list, and shard specs that are exactly 1..n of
// one n. Returns the set sorted by shard index.
func validateShardSet(snaps []Snapshot) ([]Snapshot, error) {
	if len(snaps) == 0 {
		return nil, errors.New("engine: no snapshots to merge")
	}
	sorted := append([]Snapshot(nil), snaps...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Shard.K < sorted[j].Shard.K })
	first := sorted[0]
	n := first.Shard.N
	if len(sorted) != n {
		return nil, fmt.Errorf("engine: merge needs all %d shards, got %d snapshots", n, len(sorted))
	}
	for i, s := range sorted {
		if s.Codec != SnapshotCodec {
			return nil, fmt.Errorf("engine: snapshot %d: unsupported codec %q", i, s.Codec)
		}
		if s.Kind != first.Kind || s.Label != first.Label {
			return nil, fmt.Errorf("engine: snapshot %d is %s %q, want %s %q — snapshots from different runs",
				i, s.Kind, s.Label, first.Kind, first.Label)
		}
		if s.Shard.N != n || s.Shard.K != i+1 {
			return nil, fmt.Errorf("engine: shard set is not exactly 1/%[1]d..%[1]d/%[1]d (got %s)", n, s.Shard)
		}
		if len(s.Points) != len(first.Points) {
			return nil, fmt.Errorf("engine: shard %s has %d points, shard %s has %d",
				s.Shard, len(s.Points), first.Shard, len(first.Points))
		}
	}
	return sorted, nil
}

// mergeShardPoints reassembles the full-range PointSnapshots from a
// validated, sorted shard set: per point, the exact states concatenate in
// shard (= trial) order and the stream states merge through the guarded
// accumulator merge; spec hashes and trial-range contiguity are enforced.
func mergeShardPoints(sorted []Snapshot) ([]PointSnapshot, error) {
	out := make([]PointSnapshot, len(sorted[0].Points))
	for i := range out {
		base := sorted[0].Points[i]
		merged := base
		if merged.Streamed {
			merged.Stream = base.Stream.accum().state() // deep copy
		} else {
			merged.Exact = base.Exact.clone()
		}
		for _, s := range sorted[1:] {
			ps := s.Points[i]
			if ps.Name != merged.Name || ps.SpecHash != merged.SpecHash || ps.Trials != merged.Trials {
				return nil, fmt.Errorf("engine: shard %s point %d is %q (hash %#x, %d trials), want %q (hash %#x, %d trials) — snapshots from different runs",
					s.Shard, i, ps.Name, ps.SpecHash, ps.Trials, merged.Name, merged.SpecHash, merged.Trials)
			}
			if ps.Streamed != merged.Streamed {
				return nil, fmt.Errorf("engine: shard %s point %q switches aggregation paths", s.Shard, ps.Name)
			}
			if ps.TrialLo != merged.TrialHi {
				return nil, fmt.Errorf("engine: point %q: shard %s starts at trial %d, want %d (gap or overlap)",
					ps.Name, s.Shard, ps.TrialLo, merged.TrialHi)
			}
			if merged.Streamed {
				acc := merged.Stream.accum()
				if err := acc.merge(ps.Stream.accum()); err != nil {
					return nil, fmt.Errorf("engine: point %q: %w", ps.Name, err)
				}
				merged.Stream = acc.state()
			} else if err := merged.Exact.merge(ps.Exact); err != nil {
				return nil, fmt.Errorf("engine: point %q: %w", ps.Name, err)
			}
			merged.TrialHi = ps.TrialHi
		}
		if merged.TrialLo != 0 || merged.TrialHi != merged.Trials {
			return nil, fmt.Errorf("engine: point %q: merged range [%d, %d) does not cover the %d trials",
				merged.Name, merged.TrialLo, merged.TrialHi, merged.Trials)
		}
		out[i] = merged
	}
	return out, nil
}

// finalizePoint turns one full-range PointSnapshot into its Aggregate: it
// rebuilds the scenario's schedules and horizon exactly as prepare does,
// checks the state's layout against them, and runs the same finalizer an
// unsharded run uses — so the result is byte-identical by construction.
func finalizePoint(ps PointSnapshot) (Aggregate, error) {
	if err := ps.validate(ShardSpec{}); err != nil {
		return Aggregate{}, err
	}
	p, err := prepare(ps.Scenario, Options{})
	if err != nil {
		return Aggregate{}, err
	}
	if p.exact && ps.Streamed {
		// prepare never streams an exact point, so a snapshot claiming both
		// was not produced by this engine.
		return Aggregate{}, fmt.Errorf("engine: point %q: an exact point cannot carry stream state", ps.Name)
	}
	if ps.Streamed {
		// Merging the state into a freshly laid-out accumulator both
		// validates the layout against the scenario (horizon, bin width,
		// contact scale, channel count) and normalizes the state.
		merged := newStreamAccum(p.horizon, p.contactWorst(), p.chanCount())
		if err := merged.merge(ps.Stream.accum()); err != nil {
			return Aggregate{}, fmt.Errorf("engine: point %q: snapshot does not match its scenario: %w", ps.Name, err)
		}
		return aggregateStream(p.sc, p.b, p.horizon, merged), nil
	}
	st := ps.Exact
	wantContact := 0
	if p.contactWorst() > 0 {
		wantContact = len(contactBinEdges)
	}
	wantChan := p.chanCount()
	wantTx := 0
	if p.b.Mode == modeMultiChannelGroup {
		wantTx = wantChan
	}
	if len(st.ContactN) != wantContact || len(st.ChanDisc) != wantChan || len(st.ChanTx) != wantTx {
		return Aggregate{}, fmt.Errorf("engine: point %q: snapshot does not match its scenario: contact/chan/tx counters %d/%d/%d, want %d/%d/%d",
			ps.Name, len(st.ContactN), len(st.ChanDisc), len(st.ChanTx), wantContact, wantChan, wantTx)
	}
	if p.exact {
		// Same synthesis as an unsharded run's finalize: the snapshot's
		// exact state is empty by construction, and the answer comes from
		// the analysis.
		return aggregateAnalysis(p.sc, p.b, p.horizon), nil
	}
	return aggregateExact(p.sc, p.b, p.horizon, st.clone()), nil
}

// MergeSnapshots merges a complete shard set (every shard 1..n of one
// suite or sweep run) into the final SuiteResult, byte-identical — after
// StripRuntime — to the document an unsharded run of the same scenarios
// would produce. Adaptive snapshot sets go through MergeAdaptiveSnapshots
// instead (their merge may need further shard rounds).
func MergeSnapshots(snaps []Snapshot) (SuiteResult, error) {
	sorted, err := validateShardSet(snaps)
	if err != nil {
		return SuiteResult{}, err
	}
	if sorted[0].Kind == SnapshotAdaptive {
		return SuiteResult{}, errors.New("engine: adaptive snapshots merge via MergeAdaptiveSnapshots")
	}
	merged, err := mergeShardPoints(sorted)
	if err != nil {
		return SuiteResult{}, err
	}
	res := SuiteResult{Suite: sorted[0].Label, Scenarios: make([]Aggregate, len(merged))}
	for i, ps := range merged {
		agg, err := finalizePoint(ps)
		if err != nil {
			return SuiteResult{}, err
		}
		res.Scenarios[i] = agg
	}
	return res, nil
}

// pendingEval is the control-flow error the replay evaluator raises when
// the pool cannot answer a round: it carries the scenarios the next shard
// round must run. runAdaptive propagates evaluator errors unchanged, so it
// surfaces intact.
type pendingEval struct {
	scenarios []Scenario
}

func (e *pendingEval) Error() string {
	return fmt.Sprintf("engine: adaptive round needs %d evaluations not yet in the snapshot pool", len(e.scenarios))
}

// replayAdaptive re-runs the deterministic search against a pool of
// already-computed aggregates keyed by scenario name (grid-point names
// encode the round and coordinates, so they are unique and stable). It
// returns either the finished result or the scenario batch of the first
// round the pool cannot answer.
func replayAdaptive(ap AdaptiveSpec, pool map[string]Aggregate) (AdaptiveResult, []Scenario, error) {
	res, err := runAdaptive(ap, func(scs []Scenario) ([]Aggregate, error) {
		aggs := make([]Aggregate, len(scs))
		var missing []Scenario
		for i, sc := range scs {
			agg, ok := pool[sc.Name]
			if !ok {
				missing = append(missing, sc)
				continue
			}
			aggs[i] = agg
		}
		if len(missing) > 0 {
			return nil, &pendingEval{scenarios: missing}
		}
		return aggs, nil
	})
	if err != nil {
		var pend *pendingEval
		if errors.As(err, &pend) {
			return AdaptiveResult{}, pend.scenarios, nil
		}
		return AdaptiveResult{}, nil, err
	}
	return res, nil, nil
}

// adaptiveSpecEqual compares two specs by canonical JSON — the comparison
// every shard/continuation consistency check uses.
func adaptiveSpecEqual(a, b AdaptiveSpec) bool {
	ja, aerr := json.Marshal(a)
	jb, berr := json.Marshal(b)
	return aerr == nil && berr == nil && bytes.Equal(ja, jb)
}

// evalPool finalizes a pooled evaluation list into aggregates keyed by
// point name.
func evalPool(evals []PointSnapshot) (map[string]Aggregate, error) {
	pool := make(map[string]Aggregate, len(evals))
	for _, ps := range evals {
		agg, err := finalizePoint(ps)
		if err != nil {
			return nil, err
		}
		pool[ps.Name] = agg
	}
	return pool, nil
}

// RunAdaptiveShard runs trial-range shard k/n of one adaptive round. prior
// is nil for the first round, else the continuation snapshot the previous
// MergeAdaptiveSnapshots emitted. Exactly one of the returns is set: a
// shard snapshot for the merge, or — when the pooled evaluations already
// complete the search, so there is nothing left to run — the final result.
func RunAdaptiveShard(ap AdaptiveSpec, shard ShardSpec, prior *Snapshot, opt Options) (*Snapshot, *AdaptiveResult, error) {
	if err := shard.Validate(); err != nil {
		return nil, nil, err
	}
	if err := ap.Validate(); err != nil {
		return nil, nil, err
	}
	var evals []PointSnapshot
	if prior != nil {
		if prior.Kind != SnapshotAdaptive || prior.Adaptive == nil {
			return nil, nil, errors.New("engine: -resume snapshot is not an adaptive continuation")
		}
		if !adaptiveSpecEqual(*prior.Adaptive, ap) {
			return nil, nil, fmt.Errorf("engine: continuation snapshot belongs to a different adaptive spec (%q)", prior.Adaptive.Name)
		}
		evals = prior.Evaluations
	}
	pool, err := evalPool(evals)
	if err != nil {
		return nil, nil, err
	}
	res, pending, err := replayAdaptive(ap, pool)
	if err != nil {
		return nil, nil, err
	}
	if pending == nil {
		return nil, &res, nil
	}
	snap, err := runShard(ap.Name, SnapshotAdaptive, pending, shard, opt)
	if err != nil {
		return nil, nil, err
	}
	snap.Adaptive = &ap
	snap.Evaluations = evals
	return &snap, nil, nil
}

// MergeAdaptiveSnapshots merges one adaptive shard round: it reassembles
// the round's full-range evaluations, appends them to the pool, and
// replays the search. When the search finishes it returns the final
// AdaptiveResult (byte-identical, after StripRuntime, to an unsharded
// RunAdaptive); otherwise it returns the continuation snapshot to pass as
// -resume to the next shard round.
func MergeAdaptiveSnapshots(snaps []Snapshot) (*AdaptiveResult, *Snapshot, error) {
	sorted, err := validateShardSet(snaps)
	if err != nil {
		return nil, nil, err
	}
	first := sorted[0]
	if first.Kind != SnapshotAdaptive {
		return nil, nil, fmt.Errorf("engine: %s snapshots merge via MergeSnapshots", first.Kind)
	}
	for i, s := range sorted[1:] {
		if !adaptiveSpecEqual(*s.Adaptive, *first.Adaptive) {
			return nil, nil, fmt.Errorf("engine: snapshot %d carries a different adaptive spec", i+1)
		}
		if !pointSetEqual(s.Evaluations, first.Evaluations) {
			return nil, nil, fmt.Errorf("engine: snapshot %d carries a different evaluation pool — shards from different rounds", i+1)
		}
	}
	merged, err := mergeShardPoints(sorted)
	if err != nil {
		return nil, nil, err
	}
	evals := append(append([]PointSnapshot(nil), first.Evaluations...), merged...)
	pool, err := evalPool(evals)
	if err != nil {
		return nil, nil, err
	}
	res, pending, err := replayAdaptive(*first.Adaptive, pool)
	if err != nil {
		return nil, nil, err
	}
	if pending != nil {
		cont := Snapshot{
			Codec:       SnapshotCodec,
			Kind:        SnapshotAdaptive,
			Label:       first.Label,
			Adaptive:    first.Adaptive,
			Evaluations: evals,
		}
		return nil, &cont, nil
	}
	return &res, nil, nil
}

// pointSetEqual compares two pooled evaluation lists by identity and
// range — enough to reject mixing shards of different rounds without
// comparing full accumulator payloads.
func pointSetEqual(a, b []PointSnapshot) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].SpecHash != b[i].SpecHash ||
			a[i].Trials != b[i].Trials || a[i].Streamed != b[i].Streamed {
			return false
		}
	}
	return true
}
