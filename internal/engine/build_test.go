package engine

import (
	"sync"
	"testing"

	"repro/internal/timebase"
)

// piSpec is a cheap-to-build spec family with one distinct cache key per
// index (Ta varies, everything else fixed; single-beacon schedules keep
// the coverage analysis trivial).
func piSpec(i int) ProtocolSpec {
	return ProtocolSpec{Kind: "pi", Omega: 36, Alpha: 1,
		Ta: timebase.Ticks(1000 + i), Ts: 2000, Ds: 500}
}

// TestBuildCacheEviction: the cache must stay bounded no matter how many
// distinct protocol builds pass through it — the failure mode was a huge
// protocol-axis sweep retaining every build for the process lifetime.
func TestBuildCacheEviction(t *testing.T) {
	c := newBuildLRU(8)
	for i := 0; i < 100; i++ {
		c.get(uint64(i))
	}
	if got := c.len(); got != 8 {
		t.Fatalf("cache holds %d entries, want the capacity 8", got)
	}
	// The most recently inserted keys survive; the earliest were evicted,
	// so re-fetching key 0 creates a fresh entry (still bounded).
	e99 := c.get(99)
	if c.get(99) != e99 {
		t.Fatal("resident key must return the same entry")
	}
	e0 := c.get(0)
	if e0 == nil || c.len() != 8 {
		t.Fatalf("re-miss after eviction broke the bound: len=%d", c.len())
	}

	// End to end: run far more distinct builds than the capacity through
	// the real cache and check residency stays bounded.
	for i := 0; i < 2*buildCacheCap; i++ {
		if _, err := build(piSpec(i), 2); err != nil {
			t.Fatal(err)
		}
	}
	if got := buildCache.len(); got > buildCacheCap {
		t.Fatalf("build cache grew to %d entries past its %d cap", got, buildCacheCap)
	}
}

// TestBuildCacheLRUOrder: a touched entry must outlive untouched older
// ones.
func TestBuildCacheLRUOrder(t *testing.T) {
	c := newBuildLRU(2)
	a := c.get(1)
	c.get(2)
	if c.get(1) != a {
		t.Fatal("key 1 should still be resident")
	}
	c.get(3) // evicts 2 (least recently used), not 1
	if c.get(1) != a {
		t.Fatal("touching key 1 should have protected it from eviction")
	}
}

// TestBuildCacheConcurrentMiss: many goroutines missing on the same key
// concurrently must run the underlying build exactly once and all observe
// the same result — the sync.Once contract the old sync.Map gave, now
// under the LRU.
func TestBuildCacheConcurrentMiss(t *testing.T) {
	spec := ProtocolSpec{Kind: "optimal", Omega: 36, Alpha: 1, Eta: 0.0123456}
	before := buildUncachedCalls.Load()

	const goroutines = 16
	results := make([]*built, goroutines)
	errs := make([]error, goroutines)
	var start, done sync.WaitGroup
	start.Add(1)
	for g := 0; g < goroutines; g++ {
		done.Add(1)
		go func(g int) {
			defer done.Done()
			start.Wait() // maximize contention on the first miss
			results[g], errs[g] = build(spec, 2)
		}(g)
	}
	start.Done()
	done.Wait()

	if calls := buildUncachedCalls.Load() - before; calls != 1 {
		t.Fatalf("%d concurrent misses ran buildUncached %d times, want exactly 1", goroutines, calls)
	}
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatal(errs[g])
		}
		if results[g] != results[0] {
			t.Fatalf("goroutine %d observed a different build", g)
		}
	}
}
