package engine

import (
	"fmt"
	"math/bits"

	"repro/internal/sim"
	"repro/internal/timebase"
)

// This file implements the bounded-memory streaming aggregator. Above
// streamThreshold expected latency samples (or when forced via
// Options.Stream) the executor stops materializing the pooled sample slice
// and instead folds every trial into a streamAccum: a fixed-size,
// mergeable accumulator whose state is entirely integer-valued —
// count/min/max, a 128-bit latency sum, a fixed-bin latency histogram, and
// pooled collision and contact counters. Integer addition and min/max are
// associative and commutative, so merging per-worker accumulators in any
// order yields bit-identical aggregates for any worker count — the same
// determinism contract as the exact path, with O(streamBins) memory no
// matter how many trials run.
//
// Accuracy contract: Count, Misses, Min, Max, FailureRate, CollisionRate,
// Transmissions, Collided and ContactBins are exact. Mean is computed from
// an exact 128-bit integer sum and rounds only at the final float64
// conversion (one ulp — tighter than the exact path's sequential float
// summation). The quantiles (P50/P95/P99) and the CDF latencies are bin
// upper edges, so they overestimate the exact order statistic by less than
// one bin width (horizon/streamBins, reported as QuantileResolution in the
// aggregate).

// streamBins is the fixed histogram resolution. Latency samples live in
// [0, horizon], so one bin spans ceil(horizon/streamBins) ticks.
const streamBins = 4096

// streamThreshold is the expected-sample count above which a scenario is
// aggregated with the streaming accumulator instead of the pooled slice.
const streamThreshold = 1 << 18

// StreamMode selects the aggregation strategy.
type StreamMode int

const (
	// StreamAuto engages the streaming aggregator when the expected
	// sample count (trials × pairs per trial) exceeds streamThreshold.
	StreamAuto StreamMode = iota
	// StreamOn forces the streaming aggregator.
	StreamOn
	// StreamOff forces exact aggregation over the pooled sample slice.
	StreamOff
)

// ParseStreamMode resolves the textual mode selector the CLI flag and the
// daemon's job requests share: "auto" (or empty), "on", "off".
func ParseStreamMode(s string) (StreamMode, error) {
	switch s {
	case "", "auto":
		return StreamAuto, nil
	case "on":
		return StreamOn, nil
	case "off":
		return StreamOff, nil
	default:
		return StreamAuto, fmt.Errorf("engine: unknown stream mode %q (want auto, on or off)", s)
	}
}

// expectedSamples bounds the latency samples a scenario can produce: one
// per trial for the pair workload, S·(S−1) ordered pairs per trial
// otherwise (churn contacts are a subset of the ordered pairs; the
// multi-node multi-channel kinds judge every ordered pair even at S = 2).
func expectedSamples(sc Scenario) int64 {
	perTrial := int64(1)
	if sc.Population > 2 || sc.Churn != nil || sc.Protocol.MultiChannelGroup() {
		perTrial = int64(sc.Population) * int64(sc.Population-1)
	}
	return int64(sc.Trials) * perTrial
}

// useStream decides the aggregation strategy for a scenario. It depends
// only on the effective scenario and options, never on worker scheduling,
// so both paths keep the determinism contract.
func useStream(sc Scenario, opt Options) bool {
	switch opt.Stream {
	case StreamOn:
		return true
	case StreamOff:
		return false
	default:
		return expectedSamples(sc) > streamThreshold
	}
}

// streamAccum is one mergeable accumulator. The zero value is not useful;
// use newStreamAccum so every accumulator for a scenario shares the same
// bin layout and contact scale.
type streamAccum struct {
	horizon  timebase.Ticks
	binWidth timebase.Ticks
	worst    timebase.Ticks // contact-bin scale (exact worst case); 0 disables

	count        int64
	misses       int64
	sumLo, sumHi uint64 // 128-bit sum of latency ticks
	min, max     timebase.Ticks

	bins []int64 // bins[i] counts samples in [i·binWidth, (i+1)·binWidth)

	transmissions, collided int64

	contactN, contactD []int64 // contacts / discovered per contactBinEdges

	chanDisc []int64 // discoveries per advertising channel (multi-channel)
	chanTx   []int64 // transmissions per advertising channel (multi-node)
	chanColl []int64 // collided packets per advertising channel (multi-node)
}

func newStreamAccum(horizon, worst timebase.Ticks, channels int) *streamAccum {
	w := timebase.CeilDiv(horizon+1, streamBins)
	if w < 1 {
		w = 1
	}
	return &streamAccum{
		horizon:  horizon,
		binWidth: w,
		worst:    worst,
		bins:     make([]int64, streamBins),
		contactN: make([]int64, len(contactBinEdges)),
		contactD: make([]int64, len(contactBinEdges)),
		chanDisc: make([]int64, channels),
		chanTx:   make([]int64, channels),
		chanColl: make([]int64, channels),
	}
}

func (a *streamAccum) addSample(lat timebase.Ticks) {
	if a.count == 0 || lat < a.min {
		a.min = lat
	}
	if a.count == 0 || lat > a.max {
		a.max = lat
	}
	a.count++
	var carry uint64
	a.sumLo, carry = bits.Add64(a.sumLo, uint64(lat), 0)
	a.sumHi += carry
	b := int(lat / a.binWidth)
	if b < 0 {
		b = 0
	}
	if b >= len(a.bins) {
		b = len(a.bins) - 1
	}
	a.bins[b]++
}

// absorb folds one trial's output into the accumulator. The per-trial
// slices stay trial-sized and die with the trialOutput, so memory is
// bounded by the largest single trial, not the trial count.
func (a *streamAccum) absorb(out trialOutput) {
	for _, s := range out.samples {
		a.addSample(s)
	}
	a.misses += int64(out.misses)
	a.transmissions += int64(out.transmissions)
	a.collided += int64(out.collided)
	if a.worst > 0 {
		for _, c := range out.contacts {
			idx := contactBinIndex(float64(c.Overlap) / float64(a.worst))
			a.contactN[idx]++
			if c.Discovered {
				a.contactD[idx]++
			}
		}
	}
	if c := out.channel; c >= 0 && c < len(a.chanDisc) {
		a.chanDisc[c]++
	}
	for c, n := range out.chanDisc {
		if c < len(a.chanDisc) {
			a.chanDisc[c] += int64(n)
		}
	}
	for c, l := range out.perChannel {
		if c < len(a.chanTx) {
			a.chanTx[c] += int64(l.Transmissions)
			a.chanColl[c] += int64(l.Collided)
		}
	}
}

// approxBytes estimates the accumulator's resident memory for the
// peak-accumulator metric: the backing arrays plus a fixed allowance for
// the struct header. An estimate is enough — the metric exists to show
// streaming's bounded footprint against exact pooling, not to audit the
// allocator.
func (a *streamAccum) approxBytes() int64 {
	n := len(a.bins) + len(a.contactN) + len(a.contactD) +
		len(a.chanDisc) + len(a.chanTx) + len(a.chanColl)
	return int64(n)*8 + 160
}

// merge folds b into a. All state is integer sums and min/max, so the
// result is independent of merge order. Accumulators from different bin
// layouts or contact scales are rejected: pooling them would not panic but
// would silently misattribute counts, which matters now that accumulator
// state crosses process boundaries as ndshard snapshots.
func (a *streamAccum) merge(b *streamAccum) error {
	if b == nil {
		return nil
	}
	if a.horizon != b.horizon || a.binWidth != b.binWidth || a.worst != b.worst {
		return fmt.Errorf("engine: merging incompatible stream accumulators: horizon/binWidth/worst %d/%d/%d vs %d/%d/%d",
			a.horizon, a.binWidth, a.worst, b.horizon, b.binWidth, b.worst)
	}
	if len(a.bins) != len(b.bins) {
		return fmt.Errorf("engine: merging incompatible stream accumulators: %d histogram bins vs %d", len(a.bins), len(b.bins))
	}
	if len(a.contactN) != len(b.contactN) || len(a.contactD) != len(b.contactD) {
		return fmt.Errorf("engine: merging incompatible stream accumulators: contact bins %d/%d vs %d/%d",
			len(a.contactN), len(a.contactD), len(b.contactN), len(b.contactD))
	}
	if len(a.chanDisc) != len(b.chanDisc) || len(a.chanTx) != len(b.chanTx) || len(a.chanColl) != len(b.chanColl) {
		return fmt.Errorf("engine: merging incompatible stream accumulators: %d channels vs %d", len(a.chanDisc), len(b.chanDisc))
	}
	if b.count > 0 {
		if a.count == 0 || b.min < a.min {
			a.min = b.min
		}
		if a.count == 0 || b.max > a.max {
			a.max = b.max
		}
	}
	a.count += b.count
	a.misses += b.misses
	var carry uint64
	a.sumLo, carry = bits.Add64(a.sumLo, b.sumLo, 0)
	a.sumHi += b.sumHi + carry
	for i := range a.bins {
		a.bins[i] += b.bins[i]
	}
	a.transmissions += b.transmissions
	a.collided += b.collided
	for i := range a.contactN {
		a.contactN[i] += b.contactN[i]
		a.contactD[i] += b.contactD[i]
	}
	for i := range a.chanDisc {
		a.chanDisc[i] += b.chanDisc[i]
		a.chanTx[i] += b.chanTx[i]
		a.chanColl[i] += b.chanColl[i]
	}
	return nil
}

// state exports the accumulator as its serializable ndshard/1 form. Every
// slice is copied, so the snapshot is immune to later mutation of the
// accumulator (and vice versa).
func (a *streamAccum) state() *StreamState {
	return &StreamState{
		Horizon:       a.horizon,
		BinWidth:      a.binWidth,
		Worst:         a.worst,
		Count:         a.count,
		Misses:        a.misses,
		SumLo:         a.sumLo,
		SumHi:         a.sumHi,
		Min:           a.min,
		Max:           a.max,
		Bins:          append([]int64(nil), a.bins...),
		Transmissions: a.transmissions,
		Collided:      a.collided,
		ContactN:      append([]int64(nil), a.contactN...),
		ContactD:      append([]int64(nil), a.contactD...),
		ChanDisc:      copyCounts(a.chanDisc),
		ChanTx:        copyCounts(a.chanTx),
		ChanColl:      copyCounts(a.chanColl),
	}
}

// accum reconstructs a streamAccum from its serialized state. The state
// has already passed StreamState.validate, so the slice lengths are
// internally consistent; compatibility with a specific scenario's layout is
// checked by the caller via merge's guards.
func (s *StreamState) accum() *streamAccum {
	return &streamAccum{
		horizon:       s.Horizon,
		binWidth:      s.BinWidth,
		worst:         s.Worst,
		count:         s.Count,
		misses:        s.Misses,
		sumLo:         s.SumLo,
		sumHi:         s.SumHi,
		min:           s.Min,
		max:           s.Max,
		bins:          append([]int64(nil), s.Bins...),
		transmissions: s.Transmissions,
		collided:      s.Collided,
		contactN:      append([]int64(nil), s.ContactN...),
		contactD:      append([]int64(nil), s.ContactD...),
		chanDisc:      expandCounts(s.ChanDisc),
		chanTx:        expandCounts(s.ChanTx),
		chanColl:      expandCounts(s.ChanColl),
	}
}

// copyCounts copies a counter slice, normalizing empty to nil so encoded
// snapshots have one canonical form (decode∘encode is the identity).
func copyCounts(s []int64) []int64 {
	if len(s) == 0 {
		return nil
	}
	return append([]int64(nil), s...)
}

// expandCounts is copyCounts' inverse direction: a nil serialized counter
// list reconstructs as the empty (zero-channel) slice newStreamAccum makes.
func expandCounts(s []int64) []int64 {
	if len(s) == 0 {
		return []int64{}
	}
	return append([]int64(nil), s...)
}

// binUpper returns the quantile estimate for histogram bin b: the bin's
// upper edge, clamped into the exactly-known [min, max] envelope.
func (a *streamAccum) binUpper(b int) timebase.Ticks {
	v := timebase.Ticks(b+1) * a.binWidth
	if v > a.max {
		v = a.max
	}
	if v < a.min {
		v = a.min
	}
	return v
}

// rankBin returns the histogram bin containing the rank'th (0-based)
// sample in sorted order.
func (a *streamAccum) rankBin(rank int64) int {
	if rank < 0 {
		rank = 0
	}
	var cum int64
	for b, n := range a.bins {
		cum += n
		if cum > rank {
			return b
		}
	}
	return len(a.bins) - 1
}

// quantile mirrors the exact path's order statistic (sorted[int(q·(n−1))])
// at bin resolution.
func (a *streamAccum) quantile(q float64) timebase.Ticks {
	if a.count == 0 {
		return 0
	}
	return a.binUpper(a.rankBin(int64(q * float64(a.count-1))))
}

// stats builds the sim.Stats view: N, Misses, Min and Max are exact, Mean
// is exact up to one float64 rounding of the 128-bit sum, and the
// quantiles are bin-resolution estimates.
func (a *streamAccum) stats() sim.Stats {
	st := sim.Stats{N: int(a.count + a.misses), Misses: int(a.misses)}
	if a.count == 0 {
		return st
	}
	st.Min = a.min
	st.Max = a.max
	sum := float64(a.sumHi)*float64(1<<32)*float64(1<<32) + float64(a.sumLo)
	st.Mean = sum / float64(a.count)
	st.P50 = a.quantile(0.50)
	st.P95 = a.quantile(0.95)
	st.P99 = a.quantile(0.99)
	return st
}

// cdf mirrors empiricalCDF on the histogram: for each grid quantile, the
// latency is the covering bin's upper edge and the fraction is the exact
// cumulative count at that bin over all judged pairs.
func (a *streamAccum) cdf() []CDFPoint {
	if a.count == 0 {
		return nil
	}
	total := float64(a.count + a.misses)
	pts := make([]CDFPoint, 0, len(cdfQuantiles))
	var cum int64
	b := -1
	for _, q := range cdfQuantiles {
		idx := int64(q*float64(a.count)) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= a.count {
			idx = a.count - 1
		}
		target := a.rankBin(idx)
		for b < target {
			b++
			cum += a.bins[b]
		}
		pts = append(pts, CDFPoint{
			Latency:  a.binUpper(target),
			Fraction: float64(cum) / total,
		})
	}
	return pts
}

// contactBins materializes the churn histogram from the pooled counters.
func (a *streamAccum) contactBins() []ContactBin {
	if a.worst <= 0 {
		return nil
	}
	bins := make([]ContactBin, len(contactBinEdges))
	for i, lo := range contactBinEdges {
		bins[i].Lo = lo
		if i+1 < len(contactBinEdges) {
			bins[i].Hi = contactBinEdges[i+1]
		}
		bins[i].Contacts = int(a.contactN[i])
		bins[i].Discovered = int(a.contactD[i])
	}
	return bins
}

// aggregateStream is the streaming counterpart of aggregate: it finalizes
// the merged accumulator into the same Aggregate shape, flagged with
// Streamed and the quantile resolution of its histogram.
func aggregateStream(sc Scenario, b *built, horizon timebase.Ticks, acc *streamAccum) Aggregate {
	agg := baseAggregate(sc, b, horizon)
	agg.Pairs = int(acc.count + acc.misses)
	agg.Latency = acc.stats()
	agg.Transmissions = int(acc.transmissions)
	agg.Collided = int(acc.collided)
	agg.Streamed = true
	agg.QuantileResolution = acc.binWidth
	agg.FailureRate = agg.Latency.FailureRate()
	if acc.transmissions > 0 {
		agg.CollisionRate = float64(acc.collided) / float64(acc.transmissions)
	}
	agg.CDF = acc.cdf()
	if sc.Churn != nil && acc.worst > 0 {
		agg.ContactBins = acc.contactBins()
	}
	switch b.Mode {
	case modeMultiChannel:
		agg.PerChannel = channelStats(b, acc.chanDisc, nil, nil)
	case modeMultiChannelGroup:
		agg.PerChannel = channelStats(b, acc.chanDisc, acc.chanTx, acc.chanColl)
	}
	return agg
}
