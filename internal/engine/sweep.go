package engine

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/timebase"
)

// A SweepSpec is a first-class parameter sweep: a base scenario plus named
// axes, each ranging a protocol/population/channel field over a value
// list. Expansion takes the cartesian product of the axes (first axis
// slowest, last fastest) and stamps every grid point with a canonical
// name, so a sweep is just a generated scenario matrix — it runs through
// the same scheduler, keeps the same per-scenario determinism contract,
// and serializes to JSON like everything else in this package.
type SweepSpec struct {
	Name        string      `json:"name"`
	Description string      `json:"description,omitempty"`
	Base        Scenario    `json:"base"`
	Axes        []SweepAxis `json:"axes"`
}

// SweepAxis ranges one scenario field over a list of values. Field is a
// dotted path into the Scenario JSON shape (e.g. "protocol.eta",
// "population", "channel.jitter"); see sweepFields for the supported set.
// Values are numeric for every field; integer-valued fields reject
// fractional entries.
type SweepAxis struct {
	Field  string    `json:"field"`
	Values []float64 `json:"values"`
}

// maxSweepPoints caps grid expansion: a typo in a value list should fail
// loudly, not enqueue a million scenarios.
const maxSweepPoints = 100000

// sweepField is one settable scenario field: whether it is integer-valued
// and how to apply a value to a scenario.
type sweepField struct {
	integer bool
	set     func(*Scenario, float64)
}

// sweepFields maps axis field paths to setters. Paths follow the Scenario
// JSON field names.
var sweepFields = map[string]sweepField{
	"protocol.eta":            {set: func(s *Scenario, v float64) { s.Protocol.Eta = v }},
	"protocol.eta_e":          {set: func(s *Scenario, v float64) { s.Protocol.EtaE = v }},
	"protocol.eta_f":          {set: func(s *Scenario, v float64) { s.Protocol.EtaF = v }},
	"protocol.alpha":          {set: func(s *Scenario, v float64) { s.Protocol.Alpha = v }},
	"protocol.beta_max":       {set: func(s *Scenario, v float64) { s.Protocol.BetaMax = v }},
	"protocol.pf":             {set: func(s *Scenario, v float64) { s.Protocol.PF = v }},
	"protocol.omega":          {integer: true, set: func(s *Scenario, v float64) { s.Protocol.Omega = timebase.Ticks(v) }},
	"protocol.channels":       {integer: true, set: func(s *Scenario, v float64) { s.Protocol.Channels = int(v) }},
	"protocol.ifs":            {integer: true, set: func(s *Scenario, v float64) { s.Protocol.IFS = timebase.Ticks(v) }},
	"protocol.ta":             {integer: true, set: func(s *Scenario, v float64) { s.Protocol.Ta = timebase.Ticks(v) }},
	"protocol.ts":             {integer: true, set: func(s *Scenario, v float64) { s.Protocol.Ts = timebase.Ticks(v) }},
	"protocol.ds":             {integer: true, set: func(s *Scenario, v float64) { s.Protocol.Ds = timebase.Ticks(v) }},
	"protocol.slot_len":       {integer: true, set: func(s *Scenario, v float64) { s.Protocol.SlotLen = timebase.Ticks(v) }},
	"protocol.p1":             {integer: true, set: func(s *Scenario, v float64) { s.Protocol.P1 = int(v) }},
	"protocol.p2":             {integer: true, set: func(s *Scenario, v float64) { s.Protocol.P2 = int(v) }},
	"protocol.p":              {integer: true, set: func(s *Scenario, v float64) { s.Protocol.P = int(v) }},
	"protocol.q":              {integer: true, set: func(s *Scenario, v float64) { s.Protocol.Q = int(v) }},
	"protocol.t":              {integer: true, set: func(s *Scenario, v float64) { s.Protocol.T = int(v) }},
	"population":              {integer: true, set: func(s *Scenario, v float64) { s.Population = int(v) }},
	"trials":                  {integer: true, set: func(s *Scenario, v float64) { s.Trials = int(v) }},
	"seed":                    {integer: true, set: func(s *Scenario, v float64) { s.Seed = int64(v) }},
	"channel.jitter":          {integer: true, set: func(s *Scenario, v float64) { s.Channel.Jitter = timebase.Ticks(v) }},
	"horizon.ticks":           {integer: true, set: func(s *Scenario, v float64) { s.Horizon.Ticks = timebase.Ticks(v) }},
	"horizon.worst_multiple":  {set: func(s *Scenario, v float64) { s.Horizon.WorstMultiple = v }},
	"horizon.period_multiple": {set: func(s *Scenario, v float64) { s.Horizon.PeriodMultiple = v }},
	"churn.stay_worst_multiple": {set: func(s *Scenario, v float64) {
		if s.Churn == nil {
			s.Churn = &ChurnSpec{}
		}
		s.Churn.StayWorstMultiple = v
	}},
}

// SweepFieldNames lists the sweepable field paths, sorted.
func SweepFieldNames() []string {
	names := make([]string, 0, len(sweepFields))
	for n := range sweepFields {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Validate checks the sweep's shape: a name, at least one axis, known and
// distinct fields, non-empty integral-where-required value lists, and a
// bounded grid.
func (sp SweepSpec) Validate() error {
	if sp.Name == "" {
		return fmt.Errorf("engine: sweep needs a name")
	}
	if len(sp.Axes) == 0 {
		return fmt.Errorf("engine: sweep %q needs at least one axis", sp.Name)
	}
	seen := make(map[string]bool, len(sp.Axes))
	points := 1
	for _, ax := range sp.Axes {
		def, ok := sweepFields[ax.Field]
		if !ok {
			return fmt.Errorf("engine: sweep %q: unknown field %q (have %v)", sp.Name, ax.Field, SweepFieldNames())
		}
		if seen[ax.Field] {
			return fmt.Errorf("engine: sweep %q: duplicate axis %q", sp.Name, ax.Field)
		}
		seen[ax.Field] = true
		if len(ax.Values) == 0 {
			return fmt.Errorf("engine: sweep %q: axis %q has no values", sp.Name, ax.Field)
		}
		vseen := make(map[float64]bool, len(ax.Values))
		for _, v := range ax.Values {
			if vseen[v] {
				return fmt.Errorf("engine: sweep %q: axis %q repeats value %v", sp.Name, ax.Field, v)
			}
			vseen[v] = true
		}
		if def.integer {
			for _, v := range ax.Values {
				if v != float64(int64(v)) {
					return fmt.Errorf("engine: sweep %q: axis %q needs integer values, got %v", sp.Name, ax.Field, v)
				}
			}
		}
		if points > maxSweepPoints/len(ax.Values) {
			return fmt.Errorf("engine: sweep %q expands past %d points", sp.Name, maxSweepPoints)
		}
		points *= len(ax.Values)
	}
	return nil
}

// Points returns the grid size.
func (sp SweepSpec) Points() int {
	n := 1
	for _, ax := range sp.Axes {
		n *= len(ax.Values)
	}
	return n
}

// pointValues returns the axis values of grid point i in row-major order
// (first axis slowest, last axis fastest).
func (sp SweepSpec) pointValues(i int) []float64 {
	vals := make([]float64, len(sp.Axes))
	for a := len(sp.Axes) - 1; a >= 0; a-- {
		n := len(sp.Axes[a].Values)
		vals[a] = sp.Axes[a].Values[i%n]
		i /= n
	}
	return vals
}

// axisLabel is the short display name of an axis: the last path segment.
func axisLabel(field string) string {
	if i := strings.LastIndexByte(field, '.'); i >= 0 {
		return field[i+1:]
	}
	return field
}

func formatAxisValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// pointName is the canonical name of a grid point:
// "<sweep>/<axis>=<value>,<axis>=<value>".
func (sp SweepSpec) pointName(vals []float64) string {
	parts := make([]string, len(sp.Axes))
	for a, ax := range sp.Axes {
		parts[a] = axisLabel(ax.Field) + "=" + formatAxisValue(vals[a])
	}
	return sp.Name + "/" + strings.Join(parts, ",")
}

// Expand materializes the scenario matrix: one validated scenario per grid
// point, in row-major axis order, each named after its coordinates.
func (sp SweepSpec) Expand() ([]Scenario, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	out := make([]Scenario, 0, sp.Points())
	for i := 0; i < sp.Points(); i++ {
		vals := sp.pointValues(i)
		sc := sp.Base
		if sp.Base.Churn != nil {
			ch := *sp.Base.Churn // deep-copy so points never share churn state
			sc.Churn = &ch
		}
		for a, ax := range sp.Axes {
			sweepFields[ax.Field].set(&sc, vals[a])
		}
		sc.Name = sp.pointName(vals)
		if sp.Description != "" {
			sc.Description = sp.Description
		}
		if err := sc.Validate(); err != nil {
			return nil, fmt.Errorf("engine: sweep %q point %q: %w", sp.Name, sc.Name, err)
		}
		out = append(out, sc)
	}
	return out, nil
}

// RunSweep expands the sweep and runs every grid point concurrently over
// one shared worker pool, returning one aggregate per point in grid order.
// Each point keeps the per-scenario determinism contract: its aggregate is
// bit-identical for any worker count.
func RunSweep(sp SweepSpec, opt Options) ([]Aggregate, error) {
	scenarios, err := sp.Expand()
	if err != nil {
		return nil, err
	}
	return runMany(scenarios, opt)
}
