package engine

import (
	"bytes"
	"context"
	"errors"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestContextPreCanceled: a context that is already dead aborts the run
// before any trial is scheduled, with the typed ErrCanceled.
func TestContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	aggs, err := RunSuite([]Scenario{groupScenario()}, Options{Workers: 2, Context: ctx})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-canceled run returned %v, want ErrCanceled", err)
	}
	if aggs != nil {
		t.Errorf("canceled run leaked aggregates: %v", aggs)
	}
	if !strings.Contains(err.Error(), "after 0 of") {
		t.Errorf("error does not report zero executed trials: %v", err)
	}
}

// TestContextCancelMidRun: cancelling while trials execute aborts the run
// with ErrCanceled and no aggregates — results are all-or-nothing, so a
// truncated run can never masquerade as a complete one.
func TestContextCancelMidRun(t *testing.T) {
	sc := groupScenario()
	sc.Trials = 6000
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var m obs.RunMetrics
	opt := Options{
		Workers:          2,
		Context:          ctx,
		Metrics:          &m,
		ProgressInterval: time.Millisecond,
		Progress: func(p obs.Progress) {
			if p.TrialsDone > 0 {
				cancel()
			}
		},
	}
	aggs, err := RunSuite([]Scenario{sc, sc, sc}, opt)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled run returned %v, want ErrCanceled", err)
	}
	if aggs != nil {
		t.Errorf("canceled run leaked aggregates: %v", aggs)
	}
	// Metrics still report what was measured up to the abort.
	if m.Workers != 2 {
		t.Errorf("canceled run recorded no metrics: %+v", m)
	}
}

// TestContextNilNeverCancels: the zero Options run to completion unchanged —
// adding the field must not perturb existing callers.
func TestContextNilNeverCancels(t *testing.T) {
	if _, err := RunSuite([]Scenario{groupScenario()}, Options{Workers: 2}); err != nil {
		t.Fatalf("nil-context run failed: %v", err)
	}
}

// TestPointResultDelivery: every full-range point delivers exactly one
// PointResult invocation carrying its input index and an aggregate
// identical to the one the run returns — including exact fast-path points,
// which never execute a trial.
func TestPointResultDelivery(t *testing.T) {
	a := groupScenario()
	b := groupScenario()
	b.Name, b.Seed, b.Trials = "group-test-b", 7, 16
	exact := Scenario{
		Name:       "exact-point",
		Protocol:   ProtocolSpec{Kind: "optimal", Omega: 36, Alpha: 1, Eta: 0.05},
		Population: 2,
		Horizon:    HorizonSpec{WorstMultiple: 3},
		Exact:      true,
	}
	scenarios := []Scenario{a, exact, b}

	var mu sync.Mutex
	got := make(map[int]Aggregate)
	aggs, err := RunSuite(scenarios, Options{
		Workers: 3,
		PointResult: func(idx int, agg Aggregate) {
			mu.Lock()
			defer mu.Unlock()
			if _, dup := got[idx]; dup {
				t.Errorf("point %d delivered twice", idx)
			}
			got[idx] = agg
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(scenarios) {
		t.Fatalf("delivered %d points, want %d", len(got), len(scenarios))
	}
	for i := range scenarios {
		agg, ok := got[i]
		if !ok {
			t.Errorf("point %d never delivered", i)
			continue
		}
		if !bytes.Equal(marshalAgg(t, agg), marshalAgg(t, aggs[i])) {
			t.Errorf("point %d: delivered aggregate differs from returned one", i)
		}
	}
}

// TestPointResultErrorSuppressed: a failing point delivers nothing — the
// hook releases results, never failures.
func TestPointResultErrorSuppressed(t *testing.T) {
	bad := groupScenario()
	bad.Name = "bad-point"
	bad.Protocol.Eta = 0 // invalid: build fails during prepare
	var calls int
	_, err := RunSuite([]Scenario{bad}, Options{
		Workers:     2,
		PointResult: func(int, Aggregate) { calls++ },
	})
	if err == nil {
		t.Fatal("invalid scenario did not fail")
	}
	if calls != 0 {
		t.Errorf("failed run delivered %d point results, want 0", calls)
	}
}

// TestJournalPointResult: a journaled resume releases EVERY point through
// the hook — restored ones from their snapshots, pending ones from the
// executor — remapped to the original input indices, so a daemon's event
// stream is complete across a crash.
func TestJournalPointResult(t *testing.T) {
	sp := journalSweep()
	scenarios, err := sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := RunJournaled(sp.Name, scenarios, Options{Workers: 2}, dir); err != nil {
		t.Fatal(err)
	}
	// Lose two of the four points, as a mid-sweep kill would.
	for _, i := range []int{0, 2} {
		if err := os.Remove(journalPointPath(dir, i)); err != nil {
			t.Fatal(err)
		}
	}
	var mu sync.Mutex
	got := make(map[int]Aggregate)
	var m obs.RunMetrics
	aggs, err := RunJournaled(sp.Name, scenarios, Options{
		Workers: 2,
		Metrics: &m,
		PointResult: func(idx int, agg Aggregate) {
			mu.Lock()
			defer mu.Unlock()
			if _, dup := got[idx]; dup {
				t.Errorf("point %d delivered twice", idx)
			}
			got[idx] = agg
		},
	}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.ResumedPoints != 2 || m.SnapshotPoints != 2 {
		t.Fatalf("resume split wrong: resumed=%d snapshots=%d", m.ResumedPoints, m.SnapshotPoints)
	}
	if len(got) != len(scenarios) {
		t.Fatalf("delivered %d points, want %d", len(got), len(scenarios))
	}
	for i := range scenarios {
		if !bytes.Equal(marshalAgg(t, got[i]), marshalAgg(t, aggs[i])) {
			t.Errorf("point %d: delivered aggregate differs from returned one", i)
		}
	}
}

// TestParseStreamMode pins the shared selector the CLI flag and the daemon
// job spec both resolve through.
func TestParseStreamMode(t *testing.T) {
	for in, want := range map[string]StreamMode{"": StreamAuto, "auto": StreamAuto, "on": StreamOn, "off": StreamOff} {
		got, err := ParseStreamMode(in)
		if err != nil || got != want {
			t.Errorf("ParseStreamMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseStreamMode("bogus"); err == nil {
		t.Error("ParseStreamMode accepted an unknown mode")
	}
}
