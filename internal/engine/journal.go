package engine

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
)

// The job journal makes long runs crash-resumable: a journaled run writes
// one ndshard/1 snapshot per completed point into a journal directory
// (atomically — temp file + rename, so a kill mid-write never leaves a
// torn entry), and a re-run of the same job finalizes the journaled
// points from their snapshots and executes only the missing ones. The
// resumed document is byte-identical (modulo "runtime" sections) to an
// uninterrupted run, because the snapshot finalizer is the same code path
// an unsharded run aggregates through.
//
// Layout: <dir>/journal.json is the manifest binding the directory to one
// job (codec version, label, and a hash over the point list and stream
// mode), and <dir>/point-NNNN.json is point NNNN's completed snapshot —
// kind "journal", shard 1/1, exactly one full-range PointSnapshot.

// JournalCodec versions the journal manifest layout.
const JournalCodec = "ndjournal/1"

// journalManifest binds a journal directory to one job, so resuming with
// different scenarios, trial counts, or stream mode is rejected instead of
// silently mixing results.
type journalManifest struct {
	Codec   string `json:"codec"`
	Label   string `json:"label"`
	JobHash uint64 `json:"job_hash"`
	Points  int    `json:"points"`
}

// journalJobHash fingerprints the job: the label, the aggregation-path
// selector, and every effective scenario's identity and trial count, in
// order. FNV-64a over a canonical line form.
func journalJobHash(label string, scenarios []Scenario, opt Options) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%d\n", label, opt.Stream, len(scenarios))
	for _, sc := range scenarios {
		fmt.Fprintf(h, "%s|%#x|%d\n", sc.Name, sc.Hash(), sc.Trials)
	}
	return h.Sum64()
}

func journalPointPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("point-%04d.json", i))
}

// openJournal verifies the directory's manifest against this job, creating
// the directory and manifest on first use.
func openJournal(dir string, want journalManifest) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, "journal.json")
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		tmp := path + ".tmp"
		var buf bytes.Buffer
		if err := writeIndentedJSON(&buf, want); err != nil {
			return err
		}
		if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
			return err
		}
		return os.Rename(tmp, path)
	}
	if err != nil {
		return err
	}
	var got journalManifest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&got); err != nil {
		return fmt.Errorf("engine: journal manifest %s: %w", path, err)
	}
	if got.Codec != want.Codec {
		return fmt.Errorf("engine: journal %s: unsupported codec %q (this build reads %q)", dir, got.Codec, want.Codec)
	}
	if got != want {
		return fmt.Errorf("engine: journal %s belongs to a different job (label %q, hash %#x, %d points; this run is label %q, hash %#x, %d points)",
			dir, got.Label, got.JobHash, got.Points, want.Label, want.JobHash, want.Points)
	}
	return nil
}

// RunJournaled runs the scenarios like RunSuite, but journals every
// completed point's accumulator snapshot into dir and, when the journal
// already holds entries for this job, restores them instead of
// re-executing — so an interrupted sweep resumes where it died and
// produces the identical final aggregates. Metrics (when requested)
// report the split as ResumedPoints vs freshly-run points.
func RunJournaled(label string, scenarios []Scenario, opt Options, dir string) ([]Aggregate, error) {
	if len(scenarios) == 0 {
		return nil, errors.New("engine: journaled run needs at least one scenario")
	}
	// Fold the trial and exact overrides up front, exactly as prepare
	// would: the journal is keyed by effective scenarios, and snapshots
	// embed them.
	eff := make([]Scenario, len(scenarios))
	for i, sc := range scenarios {
		if opt.Trials > 0 {
			sc.Trials = opt.Trials
		}
		if opt.Exact {
			sc.Exact = true
		}
		if sc.Exact {
			sc.Trials = 0
		}
		if err := sc.Validate(); err != nil {
			return nil, err
		}
		eff[i] = sc
	}
	o := opt
	o.Trials = 0
	o.Exact = false

	if err := openJournal(dir, journalManifest{
		Codec:   JournalCodec,
		Label:   label,
		JobHash: journalJobHash(label, eff, o),
		Points:  len(eff),
	}); err != nil {
		return nil, err
	}

	aggs := make([]Aggregate, len(eff))
	resumed := 0
	var pending []Scenario
	var pendingIdx []int
	for i, sc := range eff {
		path := journalPointPath(dir, i)
		if _, err := os.Stat(path); errors.Is(err, os.ErrNotExist) {
			pending = append(pending, sc)
			pendingIdx = append(pendingIdx, i)
			continue
		}
		snap, err := ReadSnapshotFile(path)
		if err != nil {
			return nil, err
		}
		if snap.Kind != SnapshotJournal || len(snap.Points) != 1 {
			return nil, fmt.Errorf("engine: %s is not a journal entry", path)
		}
		ps := snap.Points[0]
		if ps.Name != sc.Name || ps.SpecHash != sc.Hash() || ps.Trials != sc.Trials {
			return nil, fmt.Errorf("engine: journal entry %s holds %q (hash %#x, %d trials), want %q (hash %#x, %d trials)",
				path, ps.Name, ps.SpecHash, ps.Trials, sc.Name, sc.Hash(), sc.Trials)
		}
		agg, err := finalizePoint(ps)
		if err != nil {
			return nil, fmt.Errorf("engine: journal entry %s: %w", path, err)
		}
		aggs[i] = agg
		resumed++
		// Restored points release their results through the same hook the
		// executor fires, so a resumed run's event stream is complete.
		if opt.PointResult != nil {
			opt.PointResult(i, agg)
		}
	}

	if len(pending) > 0 {
		o.capture = true
		if opt.PointResult != nil {
			// The executor indexes the pending slice; callers see the
			// original input order.
			o.PointResult = func(idx int, agg Aggregate) {
				opt.PointResult(pendingIdx[idx], agg)
			}
		}
		o.pointDone = func(idx int, snap *PointSnapshot) error {
			return WriteSnapshotFile(journalPointPath(dir, pendingIdx[idx]), Snapshot{
				Codec:  SnapshotCodec,
				Kind:   SnapshotJournal,
				Label:  label,
				Shard:  ShardSpec{K: 1, N: 1},
				Points: []PointSnapshot{*snap},
			})
		}
		points, err := runPoints(pending, o)
		if err != nil {
			return nil, err
		}
		for bi, p := range points {
			aggs[pendingIdx[bi]] = p.agg
		}
	}
	if opt.Metrics != nil {
		opt.Metrics.ResumedPoints = resumed
		opt.Metrics.SnapshotPoints = len(pending)
	}
	return aggs, nil
}
