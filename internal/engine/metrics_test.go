package engine

import (
	"bytes"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestRunMetricsPopulated: every runMany invocation produces a full
// RunMetrics record — totals, worker accounting, aggregation-path split —
// and attaches a PointMetrics record to every aggregate.
func TestRunMetricsPopulated(t *testing.T) {
	sc := groupScenario()
	var m obs.RunMetrics
	aggs, err := RunSuite([]Scenario{sc, sc}, Options{Workers: 3, Metrics: &m})
	if err != nil {
		t.Fatal(err)
	}
	if m.Points != 2 || m.Trials != int64(2*sc.Trials) {
		t.Errorf("totals wrong: %+v", m)
	}
	if m.Workers != 3 || len(m.WorkerBusy) != 3 {
		t.Errorf("worker accounting wrong: %+v", m)
	}
	if m.WallMS <= 0 || m.TrialsPerSec <= 0 {
		t.Errorf("wall/throughput not measured: %+v", m)
	}
	if m.StreamedPoints+m.ExactPoints != 2 {
		t.Errorf("path split wrong: %+v", m)
	}
	if m.PeakAccumBytes <= 0 {
		t.Errorf("peak accumulator estimate missing: %+v", m)
	}
	for i, a := range aggs {
		if a.Runtime == nil || a.Runtime.WallMS <= 0 || a.Runtime.TrialsPerSec <= 0 {
			t.Errorf("aggregate %d missing point metrics: %+v", i, a.Runtime)
		}
	}
}

// TestMetricsStreamedPath: forcing the streaming aggregator is visible in
// the path split and still reports a bounded peak-memory estimate.
func TestMetricsStreamedPath(t *testing.T) {
	var m obs.RunMetrics
	if _, err := RunScenario(groupScenario(), Options{Workers: 2, Stream: StreamOn, Metrics: &m}); err != nil {
		t.Fatal(err)
	}
	if m.StreamedPoints != 1 || m.ExactPoints != 0 {
		t.Errorf("forced streaming not reflected: %+v", m)
	}
	if m.PeakAccumBytes <= 0 {
		t.Errorf("streaming accumulators not accounted: %+v", m)
	}
}

// TestMetricsWorkerInvariance pins the tentpole's contract precisely:
// worker 1 and worker 8 runs differ ONLY inside the runtime sections.
// Both carry metrics; after StripRuntime the full documents are
// byte-identical.
func TestMetricsWorkerInvariance(t *testing.T) {
	sc := groupScenario()
	render := func(workers int) (stripped, raw []byte) {
		t.Helper()
		var m obs.RunMetrics
		aggs, err := RunSuite([]Scenario{sc}, Options{Workers: workers, Metrics: &m})
		if err != nil {
			t.Fatal(err)
		}
		res := SuiteResult{Suite: "metrics-invariance", Scenarios: aggs, Runtime: &m}
		var rawBuf bytes.Buffer
		if err := WriteJSON(&rawBuf, res); err != nil {
			t.Fatal(err)
		}
		res.StripRuntime()
		var buf bytes.Buffer
		if err := WriteJSON(&buf, res); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), rawBuf.Bytes()
	}
	serial, rawSerial := render(1)
	parallel, rawParallel := render(8)
	if !bytes.Equal(serial, parallel) {
		t.Error("stripped documents differ between 1 and 8 workers")
	}
	// The raw documents must actually carry the runtime sections — if the
	// field silently stopped serializing, the invariance above is vacuous.
	for name, raw := range map[string][]byte{"serial": rawSerial, "parallel": rawParallel} {
		if !bytes.Contains(raw, []byte(`"runtime"`)) {
			t.Errorf("%s document carries no runtime section", name)
		}
	}
}

// sentinelMetrics populates every RunMetrics field with a non-zero value,
// so a field that escaped the exclusion would be visible in serialized
// output.
func sentinelMetrics() *obs.RunMetrics {
	return &obs.RunMetrics{
		WallMS: 1, Points: 1, Trials: 1, TrialsPerSec: 1,
		Workers: 1, WorkerBusy: []float64{1},
		BuildCache:     obs.CacheStats{Hits: 1, Misses: 1, Evictions: 1},
		StreamedPoints: 1, ExactPoints: 1, MemoHits: 1, PeakAccumBytes: 1,
		QueueWaitMS: 1, ResultCacheHit: true,
	}
}

// TestGoldenExcludesRuntime enforces the golden-exclusion contract: a
// result whose every runtime slot is populated serializes, after
// StripRuntime, to bytes containing no trace of the metrics — so goldens
// can never absorb a wall time.
func TestGoldenExcludesRuntime(t *testing.T) {
	agg := Aggregate{Runtime: &obs.PointMetrics{WallMS: 1, TrialsPerSec: 1}}
	suite := SuiteResult{Suite: "x", Scenarios: []Aggregate{agg}, Runtime: sentinelMetrics()}
	adaptive := AdaptiveResult{
		Name:    "x",
		Best:    AdaptivePoint{Aggregate: &Aggregate{Runtime: &obs.PointMetrics{WallMS: 1}}},
		Runtime: sentinelMetrics(),
		Rounds: []AdaptiveRound{{
			Points: []AdaptivePoint{{Aggregate: &Aggregate{Runtime: &obs.PointMetrics{WallMS: 1}}}},
			Best:   AdaptivePoint{Aggregate: &Aggregate{Runtime: &obs.PointMetrics{WallMS: 1}}},
		}},
	}

	var before bytes.Buffer
	if err := writeIndentedJSON(&before, suite); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(before.Bytes(), []byte(`"runtime"`)) {
		t.Fatal("populated suite result did not serialize its runtime sections")
	}

	suite.StripRuntime()
	adaptive.StripRuntime()
	for name, v := range map[string]any{"suite": suite, "adaptive": adaptive} {
		var buf bytes.Buffer
		if err := writeIndentedJSON(&buf, v); err != nil {
			t.Fatal(err)
		}
		for _, leak := range []string{"runtime", "wall_ms", "trials_per_sec", "worker_busy", "build_cache"} {
			if bytes.Contains(buf.Bytes(), []byte(leak)) {
				t.Errorf("%s: stripped document still mentions %q", name, leak)
			}
		}
	}
}

// TestProgressCallbackOrdering pins the Progress contract: an initial
// snapshot, monotone counters, serialized delivery, and a guaranteed
// Final snapshot with every counter at its total.
func TestProgressCallbackOrdering(t *testing.T) {
	sc := groupScenario()
	sc.Trials = 24
	var snaps []obs.Progress
	var inFlight atomic.Int32
	opt := Options{
		Workers:          4,
		ProgressInterval: time.Millisecond,
		Progress: func(p obs.Progress) {
			if inFlight.Add(1) != 1 {
				t.Error("progress callback invoked concurrently")
			}
			snaps = append(snaps, p) // unsynchronized on purpose: serialized delivery makes this safe
			inFlight.Add(-1)
		},
	}
	if _, err := RunSuite([]Scenario{sc, sc}, opt); err != nil {
		t.Fatal(err)
	}
	if len(snaps) < 2 {
		t.Fatalf("want at least initial+final snapshots, got %d", len(snaps))
	}
	for i := 1; i < len(snaps)-1; i++ {
		if snaps[i].Final {
			t.Errorf("snapshot %d of %d marked Final", i, len(snaps))
		}
	}
	for i := 1; i < len(snaps); i++ {
		a, b := snaps[i-1], snaps[i]
		if b.TrialsDone < a.TrialsDone || b.PointsDone < a.PointsDone || b.ElapsedMS < a.ElapsedMS {
			t.Errorf("snapshots not monotone: %+v then %+v", a, b)
		}
	}
	final := snaps[len(snaps)-1]
	if !final.Final {
		t.Error("last snapshot not marked Final")
	}
	if final.TrialsDone != final.TrialsTotal || final.TrialsTotal != int64(2*sc.Trials) {
		t.Errorf("final trial counters wrong: %+v", final)
	}
	if final.PointsDone != 2 || final.PointsTotal != 2 {
		t.Errorf("final point counters wrong: %+v", final)
	}
	if final.EtaMS != 0 {
		t.Errorf("final snapshot carries an ETA: %+v", final)
	}
}

// TestAdaptiveRuntimeMetrics: RunAdaptive accumulates its per-round
// executor metrics into one record and counts its memo recalls.
func TestAdaptiveRuntimeMetrics(t *testing.T) {
	ap, err := AdaptivePreset("adaptive-eta")
	if err != nil {
		t.Fatal(err)
	}
	ap.Base.Trials = 8
	var m obs.RunMetrics
	res, err := RunAdaptive(ap, Options{Workers: 2, Metrics: &m})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runtime == nil {
		t.Fatal("adaptive result carries no runtime record")
	}
	if res.Runtime.Points != res.Evaluations {
		t.Errorf("runtime points %d != evaluations %d", res.Runtime.Points, res.Evaluations)
	}
	if res.Runtime.Trials == 0 || res.Runtime.WallMS <= 0 {
		t.Errorf("executor metrics not accumulated: %+v", res.Runtime)
	}
	if len(res.Rounds) > 1 && res.Runtime.MemoHits == 0 {
		// Refinement grids always re-propose their bracket endpoints,
		// which the memo recalls instead of re-running.
		t.Errorf("refined search reports no memo hits: %+v", res.Runtime)
	}
	if !reflect.DeepEqual(m, *res.Runtime) {
		t.Errorf("opt.Metrics (%+v) disagrees with result runtime (%+v)", m, *res.Runtime)
	}
}

// TestRenderRunMetrics smoke-tests the summary rendering.
func TestRenderRunMetrics(t *testing.T) {
	m := *sentinelMetrics()
	m.Points, m.Trials, m.Workers = 3, 300, 2
	m.WorkerBusy = []float64{0.95, 0.91}
	out := RenderRunMetrics(m)
	for _, want := range []string{"3 points", "300 trials", "2 workers", "build cache", "0.95", "memo"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
