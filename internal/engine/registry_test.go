package engine

import (
	"strings"
	"testing"
)

// TestPresetsBuildAndRun runs every registry preset for a couple of trials
// — a smoke test that each declarative spec validates, its protocol
// builds, its horizon resolves, and the executor completes.
func TestPresetsBuildAndRun(t *testing.T) {
	for _, name := range Presets() {
		name := name
		t.Run(name, func(t *testing.T) {
			sc, err := Preset(name)
			if err != nil {
				t.Fatal(err)
			}
			if sc.Name != name {
				t.Fatalf("preset %q names itself %q", name, sc.Name)
			}
			if err := sc.Validate(); err != nil {
				t.Fatal(err)
			}
			agg, err := RunScenario(sc, Options{Trials: 2})
			if err != nil {
				t.Fatal(err)
			}
			if agg.Pairs == 0 {
				t.Fatal("no pairs judged")
			}
		})
	}
}

func TestSuitesResolve(t *testing.T) {
	for _, name := range Suites() {
		scenarios, err := Suite(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(scenarios) == 0 {
			t.Fatalf("suite %q is empty", name)
		}
		seen := map[string]bool{}
		for _, sc := range scenarios {
			if err := sc.Validate(); err != nil {
				t.Errorf("suite %q scenario %q: %v", name, sc.Name, err)
			}
			if seen[sc.Name] {
				t.Errorf("suite %q: duplicate scenario %q", name, sc.Name)
			}
			seen[sc.Name] = true
		}
	}
}

func TestPresetCopiesAreIndependent(t *testing.T) {
	a, err := Preset("churn-quiet")
	if err != nil {
		t.Fatal(err)
	}
	a.Churn.StayWorstMultiple = 99
	b, err := Preset("churn-quiet")
	if err != nil {
		t.Fatal(err)
	}
	if b.Churn.StayWorstMultiple == 99 {
		t.Fatal("preset lookups share churn state")
	}
}

func TestUnknownNamesError(t *testing.T) {
	if _, err := Preset("no-such-preset"); err == nil || !strings.Contains(err.Error(), "unknown preset") {
		t.Fatalf("expected unknown-preset error, got %v", err)
	}
	if _, err := Suite("no-such-suite"); err == nil || !strings.Contains(err.Error(), "unknown suite") {
		t.Fatalf("expected unknown-suite error, got %v", err)
	}
}

// TestFig7SuiteRuns is the acceptance-criteria suite at reduced trials.
func TestFig7SuiteRuns(t *testing.T) {
	scenarios, err := Suite("paper-fig7")
	if err != nil {
		t.Fatal(err)
	}
	aggs, err := RunSuite(scenarios, Options{Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(aggs) != len(scenarios) {
		t.Fatalf("got %d aggregates for %d scenarios", len(aggs), len(scenarios))
	}
	// The capped design must actually cap: lower channel utilization than
	// the raw optimum at the same budget.
	var rawBeta, cappedBeta float64
	for _, a := range aggs {
		switch a.Scenario.Name {
		case "fig7-raw-s20":
			rawBeta = a.EtaE / 2 // β = η/2 at α = 1 for the symmetric optimum
		case "fig7-capped-s20":
			cappedBeta = a.EtaE
		}
	}
	if rawBeta == 0 || cappedBeta == 0 {
		t.Fatal("expected both raw and capped S=20 scenarios in the suite")
	}
	// Render paths should not panic and should mention every scenario.
	table := RenderTable(aggs)
	for _, sc := range scenarios {
		if !strings.Contains(table, sc.Name) {
			t.Errorf("table misses scenario %q", sc.Name)
		}
	}
	_ = RenderCDF(aggs)
}

// TestCheckRegistryAcceptsCurrent: the live registry passes its own
// startup validation (init would have panicked otherwise; this pins the
// contract explicitly).
func TestCheckRegistryAcceptsCurrent(t *testing.T) {
	if err := checkRegistry(presets, suites, sweepPresets, adaptivePresets); err != nil {
		t.Fatal(err)
	}
}

// TestCheckRegistryRejectsCollisions: duplicate or colliding names across
// the scenario/suite/sweep namespaces — and presets whose entries
// misreport their own name — fail startup validation with a message
// naming the offender.
func TestCheckRegistryRejectsCollisions(t *testing.T) {
	sc := func(name string) func() Scenario {
		return func() Scenario { return Scenario{Name: name} }
	}
	sw := func(name string) func() SweepSpec {
		return func() SweepSpec { return SweepSpec{Name: name} }
	}
	ad := func(name string) func() AdaptiveSpec {
		return func() AdaptiveSpec { return AdaptiveSpec{Name: name} }
	}
	for _, tc := range []struct {
		name      string
		presets   map[string]func() Scenario
		suites    map[string]func() []Scenario
		sweeps    map[string]func() SweepSpec
		adaptives map[string]func() AdaptiveSpec
		want      string
	}{
		{
			name:    "preset-suite collision",
			presets: map[string]func() Scenario{"dup": sc("dup")},
			suites: map[string]func() []Scenario{
				"dup": func() []Scenario { return []Scenario{sc("a")()} },
			},
			want: `"dup" registered as both scenario preset and suite`,
		},
		{
			name:    "preset-sweep collision",
			presets: map[string]func() Scenario{"dup": sc("dup")},
			sweeps:  map[string]func() SweepSpec{"dup": sw("dup")},
			want:    `"dup" registered as both scenario preset and sweep preset`,
		},
		{
			name:   "suite-sweep collision",
			suites: map[string]func() []Scenario{"dup": func() []Scenario { return nil }},
			sweeps: map[string]func() SweepSpec{"dup": sw("dup")},
			want:   `"dup" registered as both suite and sweep preset`,
		},
		{
			name:    "preset misnames its scenario",
			presets: map[string]func() Scenario{"right": sc("wrong")},
			want:    `scenario preset "right" builds a scenario named "wrong"`,
		},
		{
			name:   "sweep misnames itself",
			sweeps: map[string]func() SweepSpec{"right": sw("wrong")},
			want:   `sweep preset "right" builds a sweep named "wrong"`,
		},
		{
			name: "suite with duplicate scenario names",
			suites: map[string]func() []Scenario{
				"s": func() []Scenario { return []Scenario{sc("x")(), sc("x")()} },
			},
			want: `suite "s" contains two scenarios named "x"`,
		},
		{
			name:    "unnamed preset",
			presets: map[string]func() Scenario{"": sc("")},
			want:    "unnamed scenario preset",
		},
		{
			name:      "sweep-adaptive collision",
			sweeps:    map[string]func() SweepSpec{"dup": sw("dup")},
			adaptives: map[string]func() AdaptiveSpec{"dup": ad("dup")},
			want:      `"dup" registered as both sweep preset and adaptive preset`,
		},
		{
			name:      "adaptive misnames itself",
			adaptives: map[string]func() AdaptiveSpec{"right": ad("wrong")},
			want:      `adaptive preset "right" builds a spec named "wrong"`,
		},
		{
			name: "adaptive preset fails validation",
			adaptives: map[string]func() AdaptiveSpec{
				"bad": func() AdaptiveSpec {
					return AdaptiveSpec{
						Name:      "bad",
						Axes:      []SweepAxis{{Field: "protocol.eta", Values: []float64{0.01, 0.02}}},
						Objective: "no-such-objective",
					}
				},
			},
			want: `unknown objective "no-such-objective"`,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := checkRegistry(tc.presets, tc.suites, tc.sweeps, tc.adaptives)
			if err == nil {
				t.Fatal("invalid registry accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
