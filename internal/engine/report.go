package engine

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/obs"
	"repro/internal/textplot"
	"repro/internal/timebase"
)

// SuiteResult is the JSON document ndscen emits: the suite name and one
// aggregate per scenario, in suite order. Its deterministic content is
// byte-identical across worker counts and parallelism; the runtime
// sections (the suite-level RunMetrics here and each aggregate's
// PointMetrics) are the deliberate exception — observability data that
// legitimately differs run to run, and therefore structurally excluded
// from golden comparison via StripRuntime.
type SuiteResult struct {
	Suite     string          `json:"suite,omitempty"`
	Scenarios []Aggregate     `json:"scenarios"`
	Runtime   *obs.RunMetrics `json:"runtime,omitempty"`
}

// StripRuntime removes every runtime (observability) section from the
// result, leaving exactly the deterministic content the golden harness
// pins and the worker-invariance contract speaks about.
func (r *SuiteResult) StripRuntime() {
	r.Runtime = nil
	for i := range r.Scenarios {
		r.Scenarios[i].Runtime = nil
	}
}

// StripRuntime removes every runtime section from the adaptive trace: the
// accumulated run record plus each evaluated point's metrics.
func (r *AdaptiveResult) StripRuntime() {
	r.Runtime = nil
	if r.Best.Aggregate != nil {
		r.Best.Aggregate.Runtime = nil
	}
	for ri := range r.Rounds {
		rd := &r.Rounds[ri]
		if rd.Best.Aggregate != nil {
			rd.Best.Aggregate.Runtime = nil
		}
		for pi := range rd.Points {
			if a := rd.Points[pi].Aggregate; a != nil {
				a.Runtime = nil
			}
		}
	}
}

// WriteJSON emits the result as deterministic, indented JSON.
func WriteJSON(w io.Writer, res SuiteResult) error {
	return writeIndentedJSON(w, res)
}

// WriteAdaptiveJSON emits an adaptive refinement trace as deterministic,
// indented JSON — the same encoding the golden harness pins.
func WriteAdaptiveJSON(w io.Writer, res AdaptiveResult) error {
	return writeIndentedJSON(w, res)
}

func writeIndentedJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// seconds renders a tick quantity in seconds with sensible precision.
func seconds(ticks float64) string {
	return fmt.Sprintf("%.4g", ticks/float64(timebase.Second))
}

// RenderTable renders one row per aggregate: duty-cycles, exact facts,
// Monte-Carlo latency stats, failure and collision rates.
func RenderTable(aggs []Aggregate) string {
	t := textplot.NewTable(
		"scenario", "protocol", "S", "trials", "η_E", "η_F",
		"worst[s]", "bound[s]", "ratio", "mean[s]", "p50[s]", "p95[s]", "p99[s]",
		"fail%", "coll%")
	for _, a := range aggs {
		worst := "—"
		if a.Deterministic {
			worst = seconds(float64(a.ExactWorst))
		}
		bound, ratio := "—", "—"
		if a.Bound > 0 {
			bound = seconds(a.Bound)
			if a.BoundRatio > 0 {
				ratio = fmt.Sprintf("%.3f", a.BoundRatio)
			}
		}
		t.Add(
			a.Scenario.Name, a.Scenario.Protocol.Kind,
			fmt.Sprintf("%d", a.Scenario.Population),
			fmt.Sprintf("%d", a.Trials),
			fmt.Sprintf("%.4f", a.EtaE), fmt.Sprintf("%.4f", a.EtaF),
			worst, bound, ratio,
			seconds(a.Latency.Mean),
			seconds(float64(a.Latency.P50)),
			seconds(float64(a.Latency.P95)),
			seconds(float64(a.Latency.P99)),
			fmt.Sprintf("%.2f", a.FailureRate*100),
			fmt.Sprintf("%.2f", a.CollisionRate*100),
		)
	}
	return t.String()
}

// RenderSweepTable renders one row per grid point with the sweep's axis
// values as leading columns, followed by the standard metrics. The
// aggregates must be in grid order, as RunSweep returns them.
func RenderSweepTable(sp SweepSpec, aggs []Aggregate) string {
	// The ms column appears only when the aggregates carry runtime
	// records; rendering a runtime-stripped result (ndscen -q) omits it.
	withMS := false
	for _, a := range aggs {
		if a.Runtime != nil {
			withMS = true
			break
		}
	}
	cols := make([]string, 0, len(sp.Axes)+10)
	for _, ax := range sp.Axes {
		cols = append(cols, axisLabel(ax.Field))
	}
	cols = append(cols,
		"worst[s]", "bound[s]", "ratio", "mean[s]", "p50[s]", "p95[s]", "p99[s]",
		"fail%", "coll%")
	if withMS {
		cols = append(cols, "ms")
	}
	t := textplot.NewTable(cols...)
	for i, a := range aggs {
		row := make([]string, 0, len(cols))
		for _, v := range sp.pointValues(i) {
			row = append(row, formatAxisValue(v))
		}
		worst := "—"
		if a.Deterministic {
			worst = seconds(float64(a.ExactWorst))
		}
		bound, ratio := "—", "—"
		if a.Bound > 0 {
			bound = seconds(a.Bound)
			if a.BoundRatio > 0 {
				ratio = fmt.Sprintf("%.3f", a.BoundRatio)
			}
		}
		row = append(row,
			worst, bound, ratio,
			seconds(a.Latency.Mean),
			seconds(float64(a.Latency.P50)),
			seconds(float64(a.Latency.P95)),
			seconds(float64(a.Latency.P99)),
			fmt.Sprintf("%.2f", a.FailureRate*100),
			fmt.Sprintf("%.2f", a.CollisionRate*100),
		)
		if withMS {
			row = append(row, pointMS(a.Runtime))
		}
		t.Add(row...)
	}
	return t.String()
}

// pointMS renders one aggregate's wall time for the ms table column.
func pointMS(m *obs.PointMetrics) string {
	if m == nil {
		return "—"
	}
	return fmt.Sprintf("%.1f", m.WallMS)
}

// RenderAdaptiveTable renders an adaptive search as a refinement-trace
// table — one row per evaluated point in evaluation order, with its round,
// axis coordinates, objective value, and a marker on the overall best —
// followed by the final per-axis brackets and the convergence verdict.
func RenderAdaptiveTable(res AdaptiveResult) string {
	if len(res.Rounds) == 0 {
		return "(empty adaptive trace)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Adaptive %s: %s %s, tolerance %g (%d evaluations)\n",
		res.Name, res.Goal, res.Objective, res.Tolerance, res.Evaluations)

	// As in RenderSweepTable: per-point timing appears only when the
	// trace carries runtime records (stripped under ndscen -q).
	withMS := false
	for _, r := range res.Rounds {
		for _, pt := range r.Points {
			if pt.Aggregate != nil && pt.Aggregate.Runtime != nil {
				withMS = true
			}
		}
	}
	cols := []string{"round"}
	if len(res.Rounds) > 0 {
		for _, br := range res.Rounds[0].Brackets {
			cols = append(cols, axisLabel(br.Field))
		}
	}
	cols = append(cols, res.Objective)
	if withMS {
		cols = append(cols, "ms")
	}
	cols = append(cols, "best")
	t := textplot.NewTable(cols...)
	for _, r := range res.Rounds {
		for _, pt := range r.Points {
			row := make([]string, 0, len(cols))
			row = append(row, fmt.Sprintf("%d", pt.Round))
			for _, v := range pt.Values {
				row = append(row, formatAxisValue(v))
			}
			marker := ""
			if pt.Name == res.Best.Name {
				marker = "*"
			}
			row = append(row, formatObjective(pt.Objective))
			if withMS {
				ms := "—"
				if pt.Aggregate != nil {
					ms = pointMS(pt.Aggregate.Runtime)
				}
				row = append(row, ms)
			}
			row = append(row, marker)
			t.Add(row...)
		}
	}
	b.WriteString(t.String())

	last := res.Rounds[len(res.Rounds)-1]
	for _, br := range last.Brackets {
		state := "open"
		if br.Converged {
			state = "converged"
		}
		fmt.Fprintf(&b, "bracket %s ∈ [%s, %s]  width %.2f%% of span  (%s)\n",
			axisLabel(br.Field), formatAxisValue(br.Lo), formatAxisValue(br.Hi),
			br.RelWidth*100, state)
	}
	verdict := "stopped before convergence (raise rounds or budget, or loosen tolerance)"
	if res.Converged {
		verdict = fmt.Sprintf("converged after %d refinement rounds", len(res.Rounds)-1)
	}
	fmt.Fprintf(&b, "best %s: %s = %s — %s\n",
		res.Best.Name, res.Objective, formatObjective(res.Best.Objective), verdict)
	return b.String()
}

func formatObjective(v float64) string {
	return strconv.FormatFloat(v, 'g', 8, 64)
}

// RenderChannels renders the per-channel breakdown of multi-channel
// aggregates — Monte-Carlo discovery share by advertising channel next to
// the exact branch-entry analysis, plus the per-channel traffic and
// collision accounting of the multi-node kinds — or "" when no aggregate
// carries one.
func RenderChannels(aggs []Aggregate) string {
	t := textplot.NewTable(
		"scenario", "ch", "entry%", "covered", "worst[s]", "mean[s]", "disc", "disc%", "tx", "coll%")
	any := false
	for _, a := range aggs {
		for _, c := range a.PerChannel {
			any = true
			tx, coll := "—", "—"
			if c.Transmissions > 0 {
				tx = fmt.Sprintf("%d", c.Transmissions)
				coll = fmt.Sprintf("%.2f", c.CollisionRate*100)
			}
			t.Add(
				a.Scenario.Name,
				fmt.Sprintf("%d", c.Channel),
				fmt.Sprintf("%.2f", c.EntryProb*100),
				fmt.Sprintf("%.4f", c.BranchCovered),
				seconds(float64(c.BranchWorst)),
				seconds(c.BranchMean),
				fmt.Sprintf("%d", c.Discoveries),
				fmt.Sprintf("%.2f", c.Fraction*100),
				tx, coll,
			)
		}
	}
	if !any {
		return ""
	}
	return "Per-channel (multi-channel kinds; entry/covered/worst/mean are exact branch analysis,\ntx/coll% the per-channel packet traffic of the multi-node kinds):\n" + t.String()
}

// cdfMarkers cycles through distinguishable plot markers.
var cdfMarkers = []rune{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// RenderCDF renders the pooled discovery-latency CDFs of the aggregates as
// one ASCII plot (fraction discovered vs latency in seconds).
func RenderCDF(aggs []Aggregate) string {
	p := textplot.Plot{
		Title:  "Discovery latency CDF",
		XLabel: "latency [s]",
		YLabel: "fraction of pairs discovered",
	}
	plotted := false
	for i, a := range aggs {
		if len(a.CDF) == 0 {
			continue
		}
		xs := make([]float64, len(a.CDF))
		ys := make([]float64, len(a.CDF))
		for j, pt := range a.CDF {
			xs[j] = pt.Latency.Seconds()
			ys[j] = pt.Fraction
		}
		p.AddSeries(a.Scenario.Name, cdfMarkers[i%len(cdfMarkers)], xs, ys)
		plotted = true
	}
	if !plotted {
		return "(no latency samples to plot)\n"
	}
	return p.String()
}

// RenderRunMetrics renders the run's metrics record as the multi-line
// summary ndscen prints after its tables: headline throughput, worker
// utilization, build-cache traffic, and the aggregation-path split.
func RenderRunMetrics(m obs.RunMetrics) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Runtime: %d points, %d trials in %.3fs — %.0f trials/s, %d workers\n",
		m.Points, m.Trials, m.WallMS/1000, m.TrialsPerSec, m.Workers)
	if len(m.WorkerBusy) > 0 {
		parts := make([]string, len(m.WorkerBusy))
		for i, f := range m.WorkerBusy {
			parts[i] = fmt.Sprintf("%.2f", f)
		}
		fmt.Fprintf(&b, "  worker busy: %s\n", strings.Join(parts, " "))
	}
	fmt.Fprintf(&b, "  build cache: %d hits, %d misses, %d evictions\n",
		m.BuildCache.Hits, m.BuildCache.Misses, m.BuildCache.Evictions)
	fmt.Fprintf(&b, "  aggregation: %d streamed, %d exact; peak accumulator state %s\n",
		m.StreamedPoints, m.ExactPoints, formatBytes(m.PeakAccumBytes))
	if m.MemoHits > 0 {
		fmt.Fprintf(&b, "  adaptive memo: %d hits\n", m.MemoHits)
	}
	if m.ShardN > 0 {
		fmt.Fprintf(&b, "  shard: %d/%d, %d snapshot points\n", m.ShardK, m.ShardN, m.SnapshotPoints)
	}
	if m.ResumedPoints > 0 {
		fmt.Fprintf(&b, "  journal: %d points resumed, %d freshly run\n", m.ResumedPoints, m.SnapshotPoints)
	}
	if m.ResultCacheHit {
		fmt.Fprintf(&b, "  result cache: hit (no execution)\n")
	}
	if m.QueueWaitMS > 0 {
		fmt.Fprintf(&b, "  queue wait: %.3fs\n", m.QueueWaitMS/1000)
	}
	return b.String()
}

// formatBytes renders a byte count with a binary unit.
func formatBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}
