package engine

import (
	"sort"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/timebase"
)

// CDFPoint is one point of the empirical discovery-latency CDF: Fraction
// of all judged pairs (including misses) discovered within Latency.
type CDFPoint struct {
	Latency  timebase.Ticks `json:"latency"`
	Fraction float64        `json:"fraction"`
}

// Aggregate is the full result of one scenario: the effective spec, the
// exact schedule-level facts (analysis and bound), and the Monte-Carlo
// measurements pooled over all trials. It is the JSON unit ndscen emits.
type Aggregate struct {
	Scenario Scenario `json:"scenario"`

	// Schedule-level exact facts, independent of the trials.
	Deterministic   bool           `json:"deterministic"`
	CoveredFraction float64        `json:"covered_fraction"`
	ExactWorst      timebase.Ticks `json:"exact_worst,omitempty"` // 0 when not deterministic
	ExactMean       float64        `json:"exact_mean,omitempty"`
	Bound           float64        `json:"bound,omitempty"`       // fundamental bound, ticks
	BoundRatio      float64        `json:"bound_ratio,omitempty"` // ExactWorst / Bound
	EtaE            float64        `json:"eta_e"`
	EtaF            float64        `json:"eta_f"`
	BetaE           float64        `json:"beta_e"`  // E's transmit channel utilization
	GammaF          float64        `json:"gamma_f"` // F's receive duty-cycle
	Horizon         timebase.Ticks `json:"horizon"`

	// Monte-Carlo aggregates over all trials. CollisionRate is the pooled
	// ratio Collided/Transmissions, so every packet weighs the same no
	// matter how trials split the traffic.
	Trials        int        `json:"trials"`
	Pairs         int        `json:"pairs"` // judged (receiver, sender) pairs incl. misses
	Latency       sim.Stats  `json:"latency"`
	FailureRate   float64    `json:"failure_rate"`
	CDF           []CDFPoint `json:"cdf,omitempty"`
	CollisionRate float64    `json:"collision_rate"`
	Transmissions int        `json:"transmissions"`
	Collided      int        `json:"collided"`

	// ExactMode marks aggregates answered from the schedule analysis alone
	// (Scenario.Exact / the -exact flag): no trials ran, so the Monte-Carlo
	// block is empty except for Latency.Max/Mean, which restate the exact
	// worst/mean latency so downstream table and sweep consumers keep
	// reading the same columns.
	ExactMode bool `json:"exact_mode,omitempty"`

	// Streamed marks aggregates produced by the bounded-memory streaming
	// accumulator; their quantiles and CDF latencies are histogram bin
	// upper edges, accurate to QuantileResolution ticks (see stream.go for
	// the full accuracy contract). Everything else is exact.
	Streamed           bool           `json:"streamed,omitempty"`
	QuantileResolution timebase.Ticks `json:"quantile_resolution,omitempty"`

	// ContactBins, for churn scenarios with a deterministic schedule,
	// bins the per-contact discovery ratio by contact duration relative
	// to the exact worst case L — the deployment-planning view: contacts
	// of at least L are guaranteed, shorter ones are best-effort.
	ContactBins []ContactBin `json:"contact_bins,omitempty"`

	// PerChannel, for multi-channel kinds, is the per-advertising-channel
	// view: Monte-Carlo discovery counts by the channel the successful
	// PDU used, joined with the exact branch-entry analysis of the
	// starting-PDU branch on the same channel.
	PerChannel []ChannelStat `json:"per_channel,omitempty"`

	// Runtime is the point's execution-metrics record (wall time from
	// first to last trial, implied trials/sec). It is OUTSIDE the
	// determinism contract: values differ run to run and worker count to
	// worker count, so the golden harness and the worker-invariance tests
	// strip it (StripRuntime) before comparing.
	Runtime *obs.PointMetrics `json:"runtime,omitempty"`
}

// ChannelStat is one advertising channel's row: integer Monte-Carlo
// discovery and traffic counts (deterministic across worker counts) plus
// the exact per-branch facts of multichannel.Analyze.
type ChannelStat struct {
	Channel     int     `json:"channel"`
	Discoveries int     `json:"discoveries"`
	Fraction    float64 `json:"fraction"` // of all discovered trials

	// Per-channel traffic accounting of the multi-node kinds: packets on
	// air on this channel, packets destroyed by same-channel overlap, and
	// their pooled ratio. All zero for the pair kind, whose model is a
	// quiet channel.
	Transmissions int     `json:"transmissions,omitempty"`
	Collided      int     `json:"collided,omitempty"`
	CollisionRate float64 `json:"collision_rate,omitempty"`

	// EntryProb is the probability that range entry falls in the
	// transmission gap before this channel's PDU; BranchCovered the
	// fraction of scanner offsets that ever discover in that branch;
	// BranchWorst/BranchMean that branch's exact worst and mean latency
	// over its discovering offsets.
	EntryProb     float64        `json:"entry_prob"`
	BranchCovered float64        `json:"branch_covered"`
	BranchWorst   timebase.Ticks `json:"branch_worst,omitempty"`
	BranchMean    float64        `json:"branch_mean,omitempty"`
}

// channelStats joins the Monte-Carlo per-channel discovery counts with the
// per-channel traffic counters and the exact branch analysis. counts has
// one slot per channel; tx and coll may be nil (the pair kind's quiet
// channel carries no traffic accounting).
func channelStats(b *built, counts, tx, coll []int64) []ChannelStat {
	if len(counts) == 0 {
		return nil
	}
	var total int64
	for _, n := range counts {
		total += n
	}
	stats := make([]ChannelStat, len(counts))
	for c := range stats {
		stats[c] = ChannelStat{Channel: c, Discoveries: int(counts[c])}
		if total > 0 {
			stats[c].Fraction = float64(counts[c]) / float64(total)
		}
		if c < len(tx) {
			stats[c].Transmissions = int(tx[c])
			stats[c].Collided = int(coll[c])
			if tx[c] > 0 {
				stats[c].CollisionRate = float64(coll[c]) / float64(tx[c])
			}
		}
		if c < len(b.MCBranches) {
			br := b.MCBranches[c]
			stats[c].EntryProb = br.EntryProb
			stats[c].BranchCovered = br.Covered
			stats[c].BranchWorst = br.Worst
			stats[c].BranchMean = br.Mean
		}
	}
	return stats
}

// ContactBin is one row of the churn discovery-ratio histogram: contacts
// whose joint presence lasted [Lo·L, Hi·L), with Hi = 0 meaning unbounded.
type ContactBin struct {
	Lo         float64 `json:"lo"`
	Hi         float64 `json:"hi,omitempty"`
	Contacts   int     `json:"contacts"`
	Discovered int     `json:"discovered"`
}

// Ratio is the discovered fraction of the bin's contacts.
func (b ContactBin) Ratio() float64 {
	if b.Contacts == 0 {
		return 0
	}
	return float64(b.Discovered) / float64(b.Contacts)
}

// contactBinEdges are the bin boundaries in units of the worst case L.
var contactBinEdges = []float64{0, 0.25, 0.5, 0.75, 1.0, 1.5}

// cdfQuantiles is the fixed grid the empirical CDF is sampled on.
var cdfQuantiles = []float64{0.05, 0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90, 0.95, 0.99, 1.00}

// baseAggregate assembles the trial-independent portion of an Aggregate —
// the effective spec and the exact schedule-level facts — shared by the
// exact and streaming finalizers so the two paths cannot drift apart.
func baseAggregate(sc Scenario, b *built, horizon timebase.Ticks) Aggregate {
	agg := Aggregate{
		Scenario:        sc,
		Deterministic:   b.Analysis.Deterministic,
		CoveredFraction: b.Analysis.CoveredFraction,
		EtaE:            b.EtaE,
		EtaF:            b.EtaF,
		BetaE:           b.BetaE,
		GammaF:          b.GammaF,
		Horizon:         horizon,
		Trials:          sc.Trials,
	}
	if b.Analysis.Deterministic {
		// For asymmetric pairs this is the two-way worst case — the
		// quantity the Theorem 5.7 bound constrains.
		agg.ExactWorst = b.WorstTwoWay
		agg.ExactMean = b.Analysis.MeanLatency
	}
	if b.Bound > 0 {
		agg.Bound = b.Bound
		if agg.ExactWorst > 0 {
			agg.BoundRatio = float64(agg.ExactWorst) / b.Bound
		}
	}
	return agg
}

// aggregate pools the per-trial outputs in trial order, so every sum and
// sort sees the same sequence regardless of which worker ran which trial.
// It is a thin composition of the exact accumulator state and its
// finalizer — the same two stages a sharded run serializes between
// processes — so an unsharded run and a merged shard set cannot drift.
func aggregate(sc Scenario, b *built, horizon timebase.Ticks, outputs []trialOutput) Aggregate {
	return aggregateExact(sc, b, horizon, exactStateFromOutputs(sc, b, outputs))
}

// exactStateFromOutputs folds the trial-indexed outputs into the exact
// path's mergeable state: the trial-ordered sample pool plus every integer
// counter the finalizer needs. Concatenating two states covering adjacent
// trial ranges gives exactly the state of the combined range.
func exactStateFromOutputs(sc Scenario, b *built, outputs []trialOutput) *ExactState {
	st := &ExactState{}
	for i := range outputs {
		st.Samples = append(st.Samples, outputs[i].samples...)
		st.Misses += int64(outputs[i].misses)
		st.Transmissions += int64(outputs[i].transmissions)
		st.Collided += int64(outputs[i].collided)
	}
	if sc.Churn != nil && b.WorstTwoWay > 0 {
		st.ContactN = make([]int64, len(contactBinEdges))
		st.ContactD = make([]int64, len(contactBinEdges))
		worst := float64(b.WorstTwoWay)
		for i := range outputs {
			for _, c := range outputs[i].contacts {
				idx := contactBinIndex(float64(c.Overlap) / worst)
				st.ContactN[idx]++
				if c.Discovered {
					st.ContactD[idx]++
				}
			}
		}
	}
	switch b.Mode {
	case modeMultiChannel:
		st.ChanDisc = make([]int64, b.MC.Channels)
		for i := range outputs {
			if c := outputs[i].channel; c >= 0 && c < len(st.ChanDisc) {
				st.ChanDisc[c]++
			}
		}
	case modeMultiChannelGroup:
		st.ChanDisc = make([]int64, b.MC.Channels)
		st.ChanTx = make([]int64, b.MC.Channels)
		st.ChanColl = make([]int64, b.MC.Channels)
		for i := range outputs {
			for c, n := range outputs[i].chanDisc {
				st.ChanDisc[c] += int64(n)
			}
			for c, l := range outputs[i].perChannel {
				st.ChanTx[c] += int64(l.Transmissions)
				st.ChanColl[c] += int64(l.Collided)
			}
		}
	}
	return st
}

// aggregateExact finalizes an exact accumulator state covering a point's
// full trial range. It takes ownership of st.Samples (sorted in place);
// the counter slices are only read. Sorting erases the trial order, so any
// state assembled from the same sample multiset and counters — one process
// or a merged shard set — finalizes to the identical aggregate.
func aggregateExact(sc Scenario, b *built, horizon timebase.Ticks, st *ExactState) Aggregate {
	samples := st.Samples
	// One sort of the pooled samples serves both the quantile stats and
	// the CDF.
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })

	agg := baseAggregate(sc, b, horizon)
	agg.Pairs = len(samples) + int(st.Misses)
	agg.Latency = sim.CollectSorted(samples, int(st.Misses))
	agg.Transmissions = int(st.Transmissions)
	agg.Collided = int(st.Collided)
	agg.FailureRate = agg.Latency.FailureRate()
	if st.Transmissions > 0 {
		agg.CollisionRate = float64(st.Collided) / float64(st.Transmissions)
	}
	agg.CDF = empiricalCDF(samples, int(st.Misses))
	if sc.Churn != nil && b.WorstTwoWay > 0 {
		agg.ContactBins = contactBinsFromCounters(st.ContactN, st.ContactD)
	}
	switch b.Mode {
	case modeMultiChannel:
		agg.PerChannel = channelStats(b, st.ChanDisc, nil, nil)
	case modeMultiChannelGroup:
		agg.PerChannel = channelStats(b, st.ChanDisc, st.ChanTx, st.ChanColl)
	}
	return agg
}

// aggregateAnalysis answers an exact-mode point from the schedule analysis
// alone: the coverage analysis already integrates the trial ensemble over
// every phase offset exactly, so the worst and mean latency are the limits
// the Monte-Carlo estimators converge to. Eligibility (exactEligible) has
// guaranteed a deterministic quiet-channel pair, so the failure mass is
// zero and no sample pool, CDF or traffic counters exist. Multi-channel
// points keep their per-branch exact rows with zero Monte-Carlo counts.
func aggregateAnalysis(sc Scenario, b *built, horizon timebase.Ticks) Aggregate {
	agg := baseAggregate(sc, b, horizon)
	agg.ExactMode = true
	agg.Latency = sim.Stats{
		Max:  b.Analysis.WorstLatency,
		Mean: b.Analysis.MeanLatency,
	}
	if b.Mode == modeMultiChannel {
		agg.PerChannel = channelStats(b, make([]int64, b.MC.Channels), nil, nil)
	}
	return agg
}

// contactBinsFromCounters materializes the churn discovery-ratio histogram
// from the pooled per-bin counters (integer counts: order-independent, so
// trivially deterministic across worker counts and shard splits).
func contactBinsFromCounters(contactN, contactD []int64) []ContactBin {
	bins := make([]ContactBin, len(contactBinEdges))
	for i, lo := range contactBinEdges {
		bins[i].Lo = lo
		if i+1 < len(contactBinEdges) {
			bins[i].Hi = contactBinEdges[i+1]
		}
		if i < len(contactN) {
			bins[i].Contacts = int(contactN[i])
		}
		if i < len(contactD) {
			bins[i].Discovered = int(contactD[i])
		}
	}
	return bins
}

// contactBinIndex returns the contactBinEdges bin for a contact whose
// overlap is x worst-case lengths.
func contactBinIndex(x float64) int {
	idx := 0
	for j, lo := range contactBinEdges {
		if x >= lo {
			idx = j
		}
	}
	return idx
}

// empiricalCDF samples the pooled latency distribution (already sorted
// ascending) on the quantile grid. Fractions are taken over discovered +
// missed pairs, so a curve that tops out below 1.0 directly shows the
// failure mass.
func empiricalCDF(sorted []timebase.Ticks, misses int) []CDFPoint {
	if len(sorted) == 0 {
		return nil
	}
	total := float64(len(sorted) + misses)
	pts := make([]CDFPoint, 0, len(cdfQuantiles))
	for _, q := range cdfQuantiles {
		idx := int(q*float64(len(sorted))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		pts = append(pts, CDFPoint{
			Latency:  sorted[idx],
			Fraction: float64(idx+1) / total,
		})
	}
	return pts
}
