package engine

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/timebase"
)

// crowdScenario is a fast multi-node multi-channel point.
func crowdScenario(t *testing.T) Scenario {
	t.Helper()
	sc, err := Preset("ble3-crowd")
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestMultiChannelGroupWorkerInvariance extends the engine's determinism
// contract to the multi-node multi-channel kinds: aggregates — including
// the per-channel collision accounting — are byte-identical between 1 and
// 8 workers, on both aggregation paths.
func TestMultiChannelGroupWorkerInvariance(t *testing.T) {
	crowd := crowdScenario(t)
	crowd.Trials = 12
	churn, err := Preset("ble3-churn")
	if err != nil {
		t.Fatal(err)
	}
	churn.Trials = 12
	for _, sc := range []Scenario{crowd, churn} {
		for _, mode := range []StreamMode{StreamOff, StreamOn} {
			serial, err := RunScenario(sc, Options{Workers: 1, Stream: mode})
			if err != nil {
				t.Fatalf("%s serial: %v", sc.Name, err)
			}
			parallel, err := RunScenario(sc, Options{Workers: 8, Stream: mode})
			if err != nil {
				t.Fatalf("%s parallel: %v", sc.Name, err)
			}
			if !bytes.Equal(marshalAgg(t, serial), marshalAgg(t, parallel)) {
				t.Errorf("%s (stream=%v): aggregates differ between 1 and 8 workers", sc.Name, mode)
			}
		}
	}
}

// TestMultiChannelGroupMatchesSerialTrials cross-checks the engine's
// sharded per-channel collision aggregates against a serial brute-force
// loop over the same per-trial primitive and RNG streams on a small
// population — the whole executor pipeline (sharding, accumulators,
// per-channel joins) must reproduce it exactly. The kernel itself is
// pinned against a quadratic reference in internal/sim.
func TestMultiChannelGroupMatchesSerialTrials(t *testing.T) {
	sc := crowdScenario(t)
	sc.Population = 4
	sc.Trials = 25
	agg, err := RunScenario(sc, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}

	b, err := build(sc.Protocol, sc.Population)
	if err != nil {
		t.Fatal(err)
	}
	horizon := agg.Horizon
	cfg := sim.Config{Horizon: horizon, Collisions: true, HalfDuplex: true}
	hash := sc.Hash()
	var transmissions, collided, discovered, missed int
	chanTx := make([]int, b.MC.Channels)
	chanColl := make([]int, b.MC.Channels)
	chanDisc := make([]int, b.MC.Channels)
	for trial := 0; trial < sc.Trials; trial++ {
		rng := rand.New(sim.NewFastSource(trialSeed(hash, trial)))
		res, err := sim.MultiChannelGroupTrial(b.MC, sc.Population, cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		transmissions += res.Transmissions
		collided += res.Collided
		discovered += len(res.Samples)
		missed += res.Misses
		for c, l := range res.PerChannel {
			chanTx[c] += l.Transmissions
			chanColl[c] += l.Collided
		}
		for c, d := range res.Discoveries {
			chanDisc[c] += d
		}
	}
	if agg.Transmissions != transmissions || agg.Collided != collided {
		t.Fatalf("pooled traffic diverges: engine %d/%d, serial %d/%d",
			agg.Transmissions, agg.Collided, transmissions, collided)
	}
	if agg.Pairs != discovered+missed || agg.Latency.Misses != missed {
		t.Fatalf("pair accounting diverges: engine %d pairs/%d misses, serial %d/%d",
			agg.Pairs, agg.Latency.Misses, discovered+missed, missed)
	}
	if len(agg.PerChannel) != b.MC.Channels {
		t.Fatalf("want %d per-channel rows, got %d", b.MC.Channels, len(agg.PerChannel))
	}
	for c, row := range agg.PerChannel {
		if row.Transmissions != chanTx[c] || row.Collided != chanColl[c] || row.Discoveries != chanDisc[c] {
			t.Fatalf("channel %d diverges: engine tx=%d coll=%d disc=%d, serial tx=%d coll=%d disc=%d",
				c, row.Transmissions, row.Collided, row.Discoveries, chanTx[c], chanColl[c], chanDisc[c])
		}
		if row.Transmissions > 0 {
			want := float64(row.Collided) / float64(row.Transmissions)
			if row.CollisionRate != want {
				t.Fatalf("channel %d collision rate %v, want %v", c, row.CollisionRate, want)
			}
		}
	}
}

// TestMultiChannelGroupPerChannelConsistency: per-channel rows sum to the
// pooled totals on both aggregation paths.
func TestMultiChannelGroupPerChannelConsistency(t *testing.T) {
	sc := crowdScenario(t)
	sc.Trials = 15
	for _, mode := range []StreamMode{StreamOff, StreamOn} {
		agg, err := RunScenario(sc, Options{Stream: mode})
		if err != nil {
			t.Fatal(err)
		}
		var tx, coll, disc int
		for _, row := range agg.PerChannel {
			tx += row.Transmissions
			coll += row.Collided
			disc += row.Discoveries
		}
		if tx != agg.Transmissions || coll != agg.Collided {
			t.Fatalf("stream=%v: per-channel traffic %d/%d doesn't sum to pooled %d/%d",
				mode, tx, coll, agg.Transmissions, agg.Collided)
		}
		wantDisc := agg.Pairs - agg.Latency.Misses
		if disc != wantDisc {
			t.Fatalf("stream=%v: per-channel discoveries %d, want %d", mode, disc, wantDisc)
		}
		if agg.Transmissions == 0 || agg.Collided == 0 {
			t.Fatalf("stream=%v: crowd preset should produce collisions, got %d/%d",
				mode, agg.Collided, agg.Transmissions)
		}
	}
}

// TestMultiChannelChurnContactBins: the churn kind produces contact bins
// against the exact pairwise worst case, with consistent counts.
func TestMultiChannelChurnContactBins(t *testing.T) {
	sc, err := Preset("ble3-churn")
	if err != nil {
		t.Fatal(err)
	}
	sc.Trials = 20
	agg, err := RunScenario(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !agg.Deterministic || agg.ExactWorst <= 0 {
		t.Fatalf("ble3-fast pair analysis should be deterministic: %+v", agg.Deterministic)
	}
	if len(agg.ContactBins) == 0 {
		t.Fatal("churn scenario produced no contact bins")
	}
	contacts, discovered := 0, 0
	for _, b := range agg.ContactBins {
		contacts += b.Contacts
		discovered += b.Discovered
		if b.Discovered > b.Contacts {
			t.Fatalf("bin %+v discovered more than its contacts", b)
		}
	}
	if contacts != agg.Pairs {
		t.Fatalf("binned %d contacts, judged %d pairs", contacts, agg.Pairs)
	}
	if discovered != agg.Pairs-agg.Latency.Misses {
		t.Fatalf("binned %d discoveries, want %d", discovered, agg.Pairs-agg.Latency.Misses)
	}
}

// TestSweepDensityRuns: the density sweep expands over the population axis
// and every point carries per-channel accounting.
func TestSweepDensityRuns(t *testing.T) {
	sp, err := SweepPreset("sweep-density")
	if err != nil {
		t.Fatal(err)
	}
	sp.Base.Trials = 6
	aggs, err := RunSweep(sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(aggs) != 4 {
		t.Fatalf("want 4 grid points, got %d", len(aggs))
	}
	prevTx := 0
	for i, a := range aggs {
		if len(a.PerChannel) != 3 {
			t.Fatalf("point %d: want 3 per-channel rows, got %d", i, len(a.PerChannel))
		}
		if a.Transmissions <= prevTx {
			t.Fatalf("point %d: traffic %d should grow with population (prev %d)", i, a.Transmissions, prevTx)
		}
		prevTx = a.Transmissions
	}
}

// TestMultiChannelGroupValidation: the multi-node kinds accept the
// workloads the pair kind rejects, and enforce their own churn pairing.
func TestMultiChannelGroupValidation(t *testing.T) {
	group := Scenario{
		Name:       "g",
		Protocol:   ProtocolSpec{Kind: "multichannel-group", Omega: 128, Alpha: 1, Preset: "fast"},
		Population: 5,
		Trials:     1,
		Channel:    ChannelSpec{Collisions: true, HalfDuplex: true, Jitter: 10},
		Seed:       1,
	}
	if err := group.Validate(); err != nil {
		t.Fatalf("group workload with channel model rejected: %v", err)
	}
	withChurn := group
	withChurn.Churn = &ChurnSpec{Stay: 100}
	if err := withChurn.Validate(); err == nil || !strings.Contains(err.Error(), "multichannel-churn") {
		t.Errorf("multichannel-group with churn should point at multichannel-churn, got %v", err)
	}
	churn := group
	churn.Protocol.Kind = "multichannel-churn"
	if err := churn.Validate(); err == nil || !strings.Contains(err.Error(), "churn spec") {
		t.Errorf("multichannel-churn without churn spec should be rejected, got %v", err)
	}
	churn.Churn = &ChurnSpec{Stay: 200 * timebase.Millisecond}
	if err := churn.Validate(); err != nil {
		t.Fatalf("valid multichannel-churn rejected: %v", err)
	}
}

// TestMultiChannelGroupJitterRuns: the kernel's jitter path is open to the
// multi-node kinds (the BLE advDelay decorrelation the single-channel
// workloads already had).
func TestMultiChannelGroupJitterRuns(t *testing.T) {
	sc := crowdScenario(t)
	sc.Trials = 8
	sc.Channel.Jitter = 300 // µs-scale advDelay per PDU
	agg, err := RunScenario(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Pairs == 0 || agg.Transmissions == 0 {
		t.Fatalf("jittered crowd produced no work: %+v", agg.Latency)
	}
}
