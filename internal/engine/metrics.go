package engine

import (
	"sync/atomic"
	"time"
	"unsafe"

	"repro/internal/obs"
)

// This file is the engine side of the observability layer: a per-run
// recorder that watches runMany execute — wall clocks, per-worker busy
// time, aggregation-state memory, build-cache traffic — and serves the
// Progress callback. Everything here is measurement only; nothing feeds
// back into what the engine computes, so the determinism contract
// (bit-identical aggregates for any worker count) is untouched by
// construction.

// defaultProgressInterval is the Progress snapshot period when
// Options.ProgressInterval is unset.
const defaultProgressInterval = 500 * time.Millisecond

// trialOutputBytes is the struct-header size of one materialized trial
// output — the unit of the exact path's accumulator-memory estimate. The
// per-trial slices it points at die with aggregation and are deliberately
// not counted: the metric tracks the trial-indexed state whose footprint
// scales with the trial count, which is what streaming mode bounds.
var trialOutputBytes = int64(unsafe.Sizeof(trialOutput{}))

// runRecorder collects one runMany invocation's RunMetrics and drives the
// Progress callback. Counters are atomics updated from the worker pool;
// the snapshot methods only read, so a snapshot is cheap and never blocks
// a worker.
type runRecorder struct {
	start       time.Time
	workers     int
	pointsTotal int
	trialsTotal int64

	pointsDone atomic.Int64
	trialsDone atomic.Int64

	// busyNS[w] is worker w's cumulative trial-execution time (including
	// any point finalization it performed). busy/wall is the worker's
	// utilization; a well-fed pool sits near 1.0 everywhere.
	busyNS []atomic.Int64

	// accumCur tracks the live aggregation-state estimate (materialized
	// trial-output slices plus streaming accumulators); accumPeak its
	// high-water mark.
	accumCur  atomic.Int64
	accumPeak atomic.Int64

	// cache0 is the build cache's traffic snapshot at run start; the
	// run's traffic is the final snapshot minus this.
	cache0 obs.CacheStats
}

func newRunRecorder(workers, points int) *runRecorder {
	return &runRecorder{
		start:       time.Now(),
		workers:     workers,
		pointsTotal: points,
		busyNS:      make([]atomic.Int64, workers),
		cache0:      buildCache.stats(),
	}
}

// sinceNS is the nanoseconds elapsed since the run started — the time
// base every recorder measurement uses.
func (r *runRecorder) sinceNS() int64 { return int64(time.Since(r.start)) }

// accumAdd tracks newly materialized aggregation state, maintaining the
// high-water mark with a CAS loop (racing adds may interleave, but the
// peak never under-reports a level that accumCur actually reached).
func (r *runRecorder) accumAdd(n int64) {
	cur := r.accumCur.Add(n)
	for {
		peak := r.accumPeak.Load()
		if cur <= peak || r.accumPeak.CompareAndSwap(peak, cur) {
			return
		}
	}
}

// accumRelease returns aggregation state tracked by accumAdd.
func (r *runRecorder) accumRelease(n int64) { r.accumCur.Add(-n) }

// snapshot assembles one Progress view of the counters. Counters only
// grow, so successive snapshots are monotone even though the reads are
// not atomic as a group.
func (r *runRecorder) snapshot(final bool) obs.Progress {
	elapsed := float64(r.sinceNS()) / 1e6
	done := r.trialsDone.Load()
	p := obs.Progress{
		PointsDone:  int(r.pointsDone.Load()),
		PointsTotal: r.pointsTotal,
		TrialsDone:  done,
		TrialsTotal: r.trialsTotal,
		ElapsedMS:   elapsed,
		Final:       final,
	}
	if !final && done > 0 && done < r.trialsTotal {
		p.EtaMS = elapsed * float64(r.trialsTotal-done) / float64(done)
	}
	return p
}

// startProgress launches the progress monitor: an immediate snapshot, one
// per interval from a single goroutine, and — via the returned stop
// function, which the caller must invoke after the pool drains — a
// guaranteed Final snapshot. One goroutine issues every callback, so the
// callback is never invoked concurrently with itself.
func (r *runRecorder) startProgress(opt Options) (stop func()) {
	if opt.Progress == nil {
		return func() {}
	}
	interval := opt.ProgressInterval
	if interval <= 0 {
		interval = defaultProgressInterval
	}
	opt.Progress(r.snapshot(false))
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-quit:
				return
			case <-t.C:
				opt.Progress(r.snapshot(false))
			}
		}
	}()
	return func() {
		close(quit)
		<-done
		opt.Progress(r.snapshot(true))
	}
}

// metrics finalizes the run's RunMetrics record once the pool has
// drained.
func (r *runRecorder) metrics(points []*point) obs.RunMetrics {
	wallNS := r.sinceNS()
	if wallNS < 1 {
		wallNS = 1
	}
	m := obs.RunMetrics{
		WallMS:         float64(wallNS) / 1e6,
		Points:         r.pointsTotal,
		Trials:         r.trialsTotal,
		TrialsPerSec:   float64(r.trialsTotal) / (float64(wallNS) / 1e9),
		Workers:        r.workers,
		BuildCache:     buildCache.stats().Sub(r.cache0),
		PeakAccumBytes: r.accumPeak.Load(),
	}
	m.WorkerBusy = make([]float64, r.workers)
	for w := range m.WorkerBusy {
		f := float64(r.busyNS[w].Load()) / float64(wallNS)
		if f > 1 {
			f = 1
		}
		m.WorkerBusy[w] = f
	}
	for _, p := range points {
		if p.stream {
			m.StreamedPoints++
		} else {
			m.ExactPoints++
		}
	}
	return m
}
