package engine

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// kindSweep returns one small scenario per protocol-kind family, each
// exercising its arena-backed trial primitive through the batched worker
// path: the single-channel pair kernel (optimal, asymmetric, ble), the
// multi-channel pair, the slot-aligned grid, the multi-channel crowd, the
// group workload, and churn.
func kindSweep(t *testing.T) []Scenario {
	t.Helper()
	var out []Scenario
	add := func(name string, trials int) {
		sc, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		sc.Trials = trials
		out = append(out, sc)
	}
	add("quickstart", 16)        // optimal pair
	add("sensornet", 16)         // asymmetric pair
	add("ble-fast", 16)          // BLE pair with advDelay jitter
	add("ble3-fast", 16)         // multi-channel pair
	add("ble3-crowd", 4)         // multi-channel group
	add("busynetwork-jitter", 8) // population group on the collision channel
	add("churn-busy", 4)         // churn workload
	grids, err := Suite("slotgrid")
	if err != nil {
		t.Fatal(err)
	}
	grid := grids[0]
	grid.Trials = 16
	out = append(out, grid) // slot-aligned grid pair
	return out
}

// TestArenaPathWorkerInvarianceAllKinds pins the arena overhaul's contract
// in one sweep: for every protocol-kind family, the batched per-worker
// scratch path aggregates byte-identically with 1 worker and with 8. Run
// under -race this doubles as the data-race check on the shared batch
// cursor and per-worker arenas.
func TestArenaPathWorkerInvarianceAllKinds(t *testing.T) {
	for _, sc := range kindSweep(t) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			serial, err := RunScenario(sc, Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := RunScenario(sc, Options{Workers: 8})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(marshalAgg(t, serial), marshalAgg(t, parallel)) {
				t.Error("aggregates differ between 1 and 8 workers")
			}
		})
	}
}

// TestExactMatchesMonteCarlo: the exact fast path and a Monte-Carlo run of
// the same point must tell the same story — the simulated mean converges on
// the analytic mean, and no simulated latency exceeds the analytic worst
// case (phases are uniform, so the MC maximum approaches it from below).
func TestExactMatchesMonteCarlo(t *testing.T) {
	sc, err := Preset("quickstart")
	if err != nil {
		t.Fatal(err)
	}
	sc.Trials = 2000
	mc, err := RunScenario(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := RunScenario(sc, Options{Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	if !exact.ExactMode || exact.Trials != 0 {
		t.Fatalf("exact aggregate not flagged: exact_mode=%v trials=%d", exact.ExactMode, exact.Trials)
	}
	if mc.ExactMode {
		t.Fatal("Monte-Carlo aggregate flagged exact_mode")
	}
	if exact.ExactWorst != mc.ExactWorst {
		t.Errorf("exact-mode analysis worst %d != Monte-Carlo run's analysis worst %d", exact.ExactWorst, mc.ExactWorst)
	}
	if mc.Latency.Max > exact.Latency.Max {
		t.Errorf("simulated max %d exceeds exact worst case %d", mc.Latency.Max, exact.Latency.Max)
	}
	if rel := math.Abs(mc.Latency.Mean-exact.Latency.Mean) / exact.Latency.Mean; rel > 0.05 {
		t.Errorf("simulated mean %.1f vs exact mean %.1f: relative error %.3f > 0.05",
			mc.Latency.Mean, exact.Latency.Mean, rel)
	}
}

// TestExactRejectsStochasticKinds: every stochastic ingredient must be
// refused loudly — each exactEligible branch, with an error naming why
// that workload needs Monte-Carlo trials.
func TestExactRejectsStochasticKinds(t *testing.T) {
	quick, err := Preset("quickstart")
	if err != nil {
		t.Fatal(err)
	}
	crowd, err := Preset("ble3-crowd")
	if err != nil {
		t.Fatal(err)
	}
	crowd.Population = 2
	crowd.Channel = ChannelSpec{}
	churn, err := Preset("churn-quiet")
	if err != nil {
		t.Fatal(err)
	}
	churn.Population = 2
	churn.Channel = ChannelSpec{}
	jittery := quick
	jittery.Channel = ChannelSpec{Jitter: 10}
	protos, err := Suite("protocols")
	if err != nil {
		t.Fatal(err)
	}
	var disco Scenario
	for _, sc := range protos {
		if sc.Name == "proto-disco" {
			disco = sc
		}
	}
	if disco.Name == "" {
		t.Fatal("proto-disco not in the protocols suite")
	}

	group := quick
	group.Population = 5

	cases := []struct {
		sc   Scenario
		want string
	}{
		{group, "pair workload only"},
		{churn, "cannot answer churn"},
		{jittery, "quiet channel"},
		{crowd, "collides stochastically"},
		{disco, "deterministic schedule"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.sc.Name+"/"+c.want, func(t *testing.T) {
			_, err := RunScenario(c.sc, Options{Exact: true})
			if err == nil {
				t.Fatal("stochastic scenario accepted in exact mode")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}
