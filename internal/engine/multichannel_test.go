package engine

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/timebase"
)

// mcScenario is a fast, deterministic multi-channel point.
func mcScenario() Scenario {
	sc, err := Preset("ble3-fast")
	if err != nil {
		panic(err)
	}
	return sc
}

// TestMultiChannelMatchesAnalysis cross-validates the Monte-Carlo trial
// against the exact analysis: with 4000 trials the sample mean is within
// 5% of multichannel.Analyze's expectation (the standard error is an
// order of magnitude below that), no sample exceeds the exact worst case,
// and a deterministic configuration never misses.
func TestMultiChannelMatchesAnalysis(t *testing.T) {
	sc := mcScenario()
	sc.Trials = 4000
	agg, err := RunScenario(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !agg.Deterministic {
		t.Fatal("ble3-fast must analyze as deterministic")
	}
	if agg.FailureRate != 0 {
		t.Fatalf("deterministic multi-channel pair missed: %v", agg.FailureRate)
	}
	if agg.ExactMean <= 0 || agg.ExactWorst <= 0 {
		t.Fatalf("analysis facts missing: mean=%v worst=%v", agg.ExactMean, agg.ExactWorst)
	}
	if rel := math.Abs(agg.Latency.Mean-agg.ExactMean) / agg.ExactMean; rel > 0.05 {
		t.Fatalf("Monte-Carlo mean %v deviates %.1f%% from exact mean %v (tolerance 5%%)",
			agg.Latency.Mean, rel*100, agg.ExactMean)
	}
	if agg.Latency.Max > agg.ExactWorst {
		t.Fatalf("sampled latency %d exceeds the exact worst case %d", agg.Latency.Max, agg.ExactWorst)
	}
	// CDF sanity against the analysis: monotone, topping out at full mass
	// at a latency no later than the exact worst case.
	for i := 1; i < len(agg.CDF); i++ {
		if agg.CDF[i].Fraction < agg.CDF[i-1].Fraction {
			t.Fatalf("CDF not monotone at %d: %+v", i, agg.CDF)
		}
	}
	last := agg.CDF[len(agg.CDF)-1]
	if last.Fraction != 1 || last.Latency > agg.ExactWorst {
		t.Fatalf("CDF must reach 1.0 within the exact worst case: %+v", last)
	}

	// Per-channel accounting: every discovery lands on exactly one
	// channel, entry probabilities sum to 1, and every branch is covered.
	if len(agg.PerChannel) != 3 {
		t.Fatalf("want 3 per-channel rows, got %+v", agg.PerChannel)
	}
	totalDisc, totalEntry := 0, 0.0
	for _, c := range agg.PerChannel {
		totalDisc += c.Discoveries
		totalEntry += c.EntryProb
		if c.BranchCovered != 1 {
			t.Fatalf("deterministic config must cover every branch: %+v", c)
		}
		if c.BranchWorst > agg.ExactWorst {
			t.Fatalf("branch worst %d exceeds global worst %d", c.BranchWorst, agg.ExactWorst)
		}
	}
	if totalDisc != sc.Trials {
		t.Fatalf("per-channel discoveries sum to %d, want %d", totalDisc, sc.Trials)
	}
	if math.Abs(totalEntry-1) > 1e-9 {
		t.Fatalf("entry probabilities sum to %v, want 1", totalEntry)
	}
}

// TestMultiChannelCoverageMatchesAnalysis uses a deliberately gappy
// configuration (advertising interval equal to the scanner's full cycle,
// so PDU offsets never drift) to check the probabilistic contract: the
// Monte-Carlo discovery fraction matches the analysis' covered fraction
// within 3 percentage points (4σ for 2000 trials).
func TestMultiChannelCoverageMatchesAnalysis(t *testing.T) {
	sc := Scenario{
		Name: "mc-gappy",
		Protocol: ProtocolSpec{
			Kind: "multichannel", Omega: 128, Alpha: 1,
			Ta: 90 * timebase.Millisecond,
			Ts: 30 * timebase.Millisecond,
			Ds: 3 * timebase.Millisecond,
		},
		Population: 2,
		Trials:     2000,
		Horizon:    HorizonSpec{PeriodMultiple: 20},
		Seed:       23,
	}
	agg, err := RunScenario(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Deterministic {
		t.Fatal("the gappy configuration must not be deterministic")
	}
	if agg.CoveredFraction <= 0 || agg.CoveredFraction >= 1 {
		t.Fatalf("implausible covered fraction %v", agg.CoveredFraction)
	}
	discovered := 1 - agg.FailureRate
	if math.Abs(discovered-agg.CoveredFraction) > 0.03 {
		t.Fatalf("Monte-Carlo discovery fraction %v deviates from covered fraction %v past tolerance",
			discovered, agg.CoveredFraction)
	}
}

// TestSlotGridMatchesSlotAnalysis cross-validates the slot-grid trial
// against slots.Analyze through the engine: the Monte-Carlo mean is within
// 5% of the exact slot-domain expectation and no sample exceeds the exact
// worst case.
func TestSlotGridMatchesSlotAnalysis(t *testing.T) {
	for _, name := range []string{"slot-disco", "slot-uconnect", "slot-searchlight", "slot-diffcode"} {
		suite, err := Suite("slotgrid")
		if err != nil {
			t.Fatal(err)
		}
		var sc Scenario
		for _, s := range suite {
			if s.Name == name {
				sc = s
			}
		}
		sc.Trials = 3000
		agg, err := RunScenario(sc, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !agg.Deterministic {
			t.Fatalf("%s: slot-aligned schedule must be deterministic", name)
		}
		if agg.FailureRate != 0 {
			t.Fatalf("%s: deterministic slot pair missed: %v", name, agg.FailureRate)
		}
		if agg.Latency.Max > agg.ExactWorst {
			t.Fatalf("%s: sampled %d exceeds exact worst %d", name, agg.Latency.Max, agg.ExactWorst)
		}
		if rel := math.Abs(agg.Latency.Mean-agg.ExactMean) / agg.ExactMean; rel > 0.05 {
			t.Fatalf("%s: Monte-Carlo mean %v deviates %.1f%% from exact mean %v",
				name, agg.Latency.Mean, rel*100, agg.ExactMean)
		}
		// Slot-domain latencies are whole slots.
		slotLen := sc.Protocol.SlotLen
		for _, q := range []timebase.Ticks{agg.Latency.Min, agg.Latency.P50, agg.Latency.Max} {
			if q%slotLen != 0 {
				t.Fatalf("%s: latency %d is not a whole number of %d-tick slots", name, q, slotLen)
			}
		}
	}
}

// TestNewKindsWorkerInvariance extends the engine's core determinism
// contract to the new kinds: multi-channel and slot-domain aggregates are
// byte-identical between 1 and 8 workers, on both aggregation paths.
func TestNewKindsWorkerInvariance(t *testing.T) {
	mc := mcScenario()
	mc.Trials = 500
	slot, err := Suite("slotgrid")
	if err != nil {
		t.Fatal(err)
	}
	scenarios := append([]Scenario{mc}, slot...)
	for _, sc := range scenarios {
		for _, mode := range []StreamMode{StreamOff, StreamOn} {
			serial, err := RunScenario(sc, Options{Workers: 1, Stream: mode})
			if err != nil {
				t.Fatalf("%s serial: %v", sc.Name, err)
			}
			parallel, err := RunScenario(sc, Options{Workers: 8, Stream: mode})
			if err != nil {
				t.Fatalf("%s parallel: %v", sc.Name, err)
			}
			if !bytes.Equal(marshalAgg(t, serial), marshalAgg(t, parallel)) {
				t.Errorf("%s (stream=%v): aggregates differ between 1 and 8 workers", sc.Name, mode)
			}
		}
	}
}

// TestMultiChannelStreamMatchesExact pins the streaming accuracy contract
// for a multi-channel point: counts, min/max, per-channel discovery
// counts and branch facts identical; mean within float rounding; quantiles
// within one histogram bin.
func TestMultiChannelStreamMatchesExact(t *testing.T) {
	sc := mcScenario()
	sc.Trials = 600
	exact, err := RunScenario(sc, Options{Stream: StreamOff})
	if err != nil {
		t.Fatal(err)
	}
	stream, err := RunScenario(sc, Options{Stream: StreamOn})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Streamed || !stream.Streamed {
		t.Fatalf("Streamed flags wrong: exact=%v stream=%v", exact.Streamed, stream.Streamed)
	}
	if stream.Pairs != exact.Pairs ||
		stream.Latency.N != exact.Latency.N ||
		stream.Latency.Misses != exact.Latency.Misses ||
		stream.Latency.Min != exact.Latency.Min ||
		stream.Latency.Max != exact.Latency.Max {
		t.Fatalf("exact-contract fields diverge:\nexact  %+v\nstream %+v", exact.Latency, stream.Latency)
	}
	if relDiff(stream.Latency.Mean, exact.Latency.Mean) > 1e-9 {
		t.Fatalf("means diverge: %v vs %v", stream.Latency.Mean, exact.Latency.Mean)
	}
	res := stream.QuantileResolution
	for _, q := range [][2]timebase.Ticks{
		{exact.Latency.P50, stream.Latency.P50},
		{exact.Latency.P95, stream.Latency.P95},
		{exact.Latency.P99, stream.Latency.P99},
	} {
		if q[1] < q[0] || q[1] > q[0]+res {
			t.Errorf("streamed quantile %d outside [%d, %d+%d]", q[1], q[0], q[0], res)
		}
	}
	if len(stream.PerChannel) != len(exact.PerChannel) {
		t.Fatalf("per-channel row counts diverge: %d vs %d", len(stream.PerChannel), len(exact.PerChannel))
	}
	for i := range exact.PerChannel {
		if stream.PerChannel[i] != exact.PerChannel[i] {
			t.Fatalf("per-channel row %d diverges:\nexact  %+v\nstream %+v",
				i, exact.PerChannel[i], stream.PerChannel[i])
		}
	}
}

// TestMultiChannelSweep runs the sweep-channels preset end to end: every
// point stays deterministic, and the single-channel idealization beats the
// full 3-channel rotation (the scanner only visits each channel a third of
// the time, which is the cost the sweep exists to expose).
func TestMultiChannelSweep(t *testing.T) {
	sp, err := SweepPreset("sweep-channels")
	if err != nil {
		t.Fatal(err)
	}
	sp.Base.Trials = 60
	aggs, err := RunSweep(sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(aggs) != 3 {
		t.Fatalf("want 3 grid points, got %d", len(aggs))
	}
	for i, a := range aggs {
		if !a.Deterministic {
			t.Fatalf("point %d not deterministic", i)
		}
	}
	if aggs[0].ExactWorst >= aggs[2].ExactWorst {
		t.Errorf("1-channel worst %d should beat the 3-channel rotation's %d",
			aggs[0].ExactWorst, aggs[2].ExactWorst)
	}
}

// TestNewKindsValidation: the new kinds reject the workloads and channel
// semantics their per-trial primitives do not model.
func TestNewKindsValidation(t *testing.T) {
	base := mcScenario()
	for _, tc := range []struct {
		name   string
		mutate func(*Scenario)
		want   string
	}{
		{"group", func(s *Scenario) { s.Population = 5 }, "pair workload"},
		{"churn", func(s *Scenario) { s.Churn = &ChurnSpec{Stay: 100} }, "churn"},
		{"collisions", func(s *Scenario) { s.Channel.Collisions = true }, "channel model"},
		{"jitter", func(s *Scenario) { s.Channel.Jitter = 10 }, "channel model"},
		{"negative channels", func(s *Scenario) { s.Protocol.Channels = -1 }, "channels"},
		{"negative ifs", func(s *Scenario) { s.Protocol.IFS = -1 }, "ifs"},
	} {
		sc := base
		tc.mutate(&sc)
		err := sc.Validate()
		if err == nil {
			t.Errorf("%s: invalid multi-channel scenario accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}

	striped := Scenario{
		Name:       "striped-slot",
		Protocol:   ProtocolSpec{Kind: "slot-searchlight", Omega: 36, Alpha: 1, T: 16, Striped: true, SlotLen: 5000},
		Population: 2,
		Trials:     1,
		Seed:       1,
	}
	if _, err := RunScenario(striped, Options{}); err == nil || !strings.Contains(err.Error(), "striped") {
		t.Errorf("striped slot-searchlight should be rejected, got %v", err)
	}
}

// TestMultiChannelConfigPresetFillIn: the preset supplies whatever timing
// fields the spec leaves zero — including Omega, matching the "ble" kind's
// precedence (an explicit value always wins).
func TestMultiChannelConfigPresetFillIn(t *testing.T) {
	cfg, err := multiChannelConfig(ProtocolSpec{Kind: "multichannel", Preset: "fast"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Omega != 128 || cfg.Ta == 0 || cfg.Ts == 0 || cfg.Ds == 0 {
		t.Fatalf("preset fill-in incomplete: %+v", cfg)
	}
	if cfg.Channels != 3 || cfg.IFS != 150 {
		t.Fatalf("BLE defaults missing: %+v", cfg)
	}
	over, err := multiChannelConfig(ProtocolSpec{Kind: "multichannel", Preset: "fast", Omega: 64, Channels: 2})
	if err != nil {
		t.Fatal(err)
	}
	if over.Omega != 64 || over.Channels != 2 {
		t.Fatalf("explicit values must override the preset: %+v", over)
	}
}
