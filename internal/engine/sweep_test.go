package engine

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

func testSweep() SweepSpec {
	return SweepSpec{
		Name:        "test-sweep",
		Description: "η × S grid fixture",
		Base: Scenario{
			Protocol:   ProtocolSpec{Kind: "optimal", Omega: 36, Alpha: 1},
			Population: 2,
			Trials:     6,
			Horizon:    HorizonSpec{WorstMultiple: 3},
			Seed:       13,
		},
		Axes: []SweepAxis{
			{Field: "protocol.eta", Values: []float64{0.02, 0.05}},
			{Field: "population", Values: []float64{2, 4}},
		},
	}
}

func TestSweepExpandGrid(t *testing.T) {
	sp := testSweep()
	scenarios, err := sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) != 4 || sp.Points() != 4 {
		t.Fatalf("expected 4 grid points, got %d (Points() = %d)", len(scenarios), sp.Points())
	}
	// Row-major: first axis slowest, last fastest.
	wantNames := []string{
		"test-sweep/eta=0.02,population=2",
		"test-sweep/eta=0.02,population=4",
		"test-sweep/eta=0.05,population=2",
		"test-sweep/eta=0.05,population=4",
	}
	wantEta := []float64{0.02, 0.02, 0.05, 0.05}
	wantPop := []int{2, 4, 2, 4}
	for i, sc := range scenarios {
		if sc.Name != wantNames[i] {
			t.Errorf("point %d named %q, want %q", i, sc.Name, wantNames[i])
		}
		if sc.Protocol.Eta != wantEta[i] || sc.Population != wantPop[i] {
			t.Errorf("point %d: eta=%g S=%d, want eta=%g S=%d",
				i, sc.Protocol.Eta, sc.Population, wantEta[i], wantPop[i])
		}
		// Un-swept base fields carry through unchanged.
		if sc.Trials != 6 || sc.Seed != 13 {
			t.Errorf("point %d lost base fields: %+v", i, sc)
		}
	}
}

func TestSweepExpandDoesNotShareChurn(t *testing.T) {
	sp := testSweep()
	sp.Base.Population = 4
	sp.Base.Churn = &ChurnSpec{StayWorstMultiple: 2}
	sp.Axes = []SweepAxis{{Field: "churn.stay_worst_multiple", Values: []float64{1, 3}}}
	scenarios, err := sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if scenarios[0].Churn == scenarios[1].Churn {
		t.Fatal("grid points share one ChurnSpec pointer")
	}
	if scenarios[0].Churn.StayWorstMultiple != 1 || scenarios[1].Churn.StayWorstMultiple != 3 {
		t.Fatalf("churn axis not applied: %+v / %+v", scenarios[0].Churn, scenarios[1].Churn)
	}
	if sp.Base.Churn.StayWorstMultiple != 2 {
		t.Fatal("expansion mutated the base scenario")
	}
}

func TestSweepValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*SweepSpec)
	}{
		{"no name", func(sp *SweepSpec) { sp.Name = "" }},
		{"no axes", func(sp *SweepSpec) { sp.Axes = nil }},
		{"unknown field", func(sp *SweepSpec) { sp.Axes[0].Field = "protocol.nope" }},
		{"duplicate field", func(sp *SweepSpec) { sp.Axes[1].Field = sp.Axes[0].Field }},
		{"empty values", func(sp *SweepSpec) { sp.Axes[0].Values = nil }},
		{"fractional integer", func(sp *SweepSpec) { sp.Axes[1].Values = []float64{2.5} }},
		{"grid blow-up", func(sp *SweepSpec) {
			vals := make([]float64, 400)
			for i := range vals {
				vals[i] = float64(i + 2)
			}
			sp.Axes[0].Values = vals
			sp.Axes[1].Values = vals
		}},
	}
	for _, tc := range cases {
		sp := testSweep()
		tc.mutate(&sp)
		if err := sp.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestSweepJSONRoundTrip(t *testing.T) {
	in := testSweep()
	blob, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out SweepSpec
	if err := json.Unmarshal(blob, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip changed the sweep:\nin  %+v\nout %+v", in, out)
	}
}

func TestSweepPresetsExpandAndRun(t *testing.T) {
	for _, name := range SweepPresets() {
		sp, err := SweepPreset(name)
		if err != nil {
			t.Fatal(err)
		}
		scenarios, err := sp.Expand()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(scenarios) != sp.Points() {
			t.Fatalf("%s: %d scenarios from a %d-point grid", name, len(scenarios), sp.Points())
		}
	}
	if _, err := SweepPreset("nope"); err == nil {
		t.Fatal("unknown sweep preset accepted")
	}

	// One full preset run, trimmed: every point aggregates and points
	// stay in grid order.
	sp, err := SweepPreset("sweep-eta")
	if err != nil {
		t.Fatal(err)
	}
	aggs, err := RunSweep(sp, Options{Trials: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(aggs) != sp.Points() {
		t.Fatalf("%d aggregates from a %d-point sweep", len(aggs), sp.Points())
	}
	for i, a := range aggs {
		want := sp.pointName(sp.pointValues(i))
		if a.Scenario.Name != want {
			t.Errorf("aggregate %d is %q, want %q", i, a.Scenario.Name, want)
		}
		if a.Trials != 4 {
			t.Errorf("point %d ran %d trials, want 4", i, a.Trials)
		}
	}
}

// TestSweepWorkerCountInvariance is the PR's acceptance contract: the full
// JSON document of a sweep — with the streaming aggregator engaged — is
// byte-identical for 1 worker and for 8.
func TestSweepWorkerCountInvariance(t *testing.T) {
	sp := testSweep()
	sp.Base.Channel = ChannelSpec{Collisions: true, HalfDuplex: true, Jitter: 360}

	render := func(workers int, mode StreamMode) []byte {
		t.Helper()
		aggs, err := RunSweep(sp, Options{Workers: workers, Stream: mode})
		if err != nil {
			t.Fatal(err)
		}
		res := SuiteResult{Suite: sp.Name, Scenarios: aggs}
		res.StripRuntime() // wall times differ; the contract is about content
		var buf bytes.Buffer
		if err := WriteJSON(&buf, res); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	for _, mode := range []StreamMode{StreamOff, StreamOn} {
		serial := render(1, mode)
		parallel := render(8, mode)
		if !bytes.Equal(serial, parallel) {
			t.Errorf("mode %v: sweep JSON differs between 1 and 8 workers", mode)
		}
	}
}

// TestSuiteSharedPoolMatchesSerial: RunSuite now schedules scenarios over
// one shared pool; its aggregates must still match running each scenario
// alone.
func TestSuiteSharedPoolMatchesSerial(t *testing.T) {
	scenarios, err := testSweep().Expand()
	if err != nil {
		t.Fatal(err)
	}
	suite, err := RunSuite(scenarios, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, sc := range scenarios {
		alone, err := RunScenario(sc, Options{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(marshalAgg(t, suite[i]), marshalAgg(t, alone)) {
			t.Errorf("scenario %q: suite-pooled aggregate differs from solo run", sc.Name)
		}
	}
}

// TestSweepErrorNamesPoint: a failing grid point must surface its
// coordinate name deterministically.
func TestSweepErrorNamesPoint(t *testing.T) {
	sp := testSweep()
	sp.Axes[0].Values = []float64{0.02, -1} // negative η fails in build
	_, err := RunSweep(sp, Options{})
	if err == nil {
		t.Fatal("sweep with an invalid point should fail")
	}
}

func TestSweepValidateRejectsDuplicateValues(t *testing.T) {
	sp := testSweep()
	sp.Axes[0].Values = []float64{0.02, 0.05, 0.02}
	if err := sp.Validate(); err == nil {
		t.Fatal("duplicate axis values should be rejected (they expand to identically-named points)")
	}
}
