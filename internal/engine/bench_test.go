package engine

import (
	"runtime"
	"testing"
)

// benchScenario is trial-heavy enough that sharding matters: the wall-clock
// ratio between these two benchmarks is the engine's parallel speedup.
func benchScenario() Scenario {
	sc := busyPreset()
	sc.Name = "bench-busy"
	sc.Population = 10
	sc.Trials = 32
	return sc
}

func runBench(b *testing.B, workers int) {
	b.Helper()
	sc := benchScenario()
	// Warm the build cache so the loop measures the batched trial path,
	// not schedule analysis.
	if _, err := RunScenario(sc, Options{Trials: 1, Workers: workers}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunScenario(sc, Options{Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
	reportTrials(b, sc.Trials)
}

// reportTrials derives trials/sec from the measured loop so the batched
// execution path's throughput is visible directly in `go test -bench`
// output, matching the ndbench trajectory metric.
func reportTrials(b *testing.B, trials int) {
	b.Helper()
	elapsed := b.Elapsed().Seconds()
	if trials > 0 && elapsed > 0 {
		b.ReportMetric(float64(trials)*float64(b.N)/elapsed, "trials/s")
	}
}

func BenchmarkRunScenario1Worker(b *testing.B) { runBench(b, 1) }

func BenchmarkRunScenarioAllCores(b *testing.B) { runBench(b, runtime.GOMAXPROCS(0)) }

// benchKind runs a scenario-shaped benchmark for one protocol kind: the
// per-trial primitive plus the engine's sharding and aggregation overhead.
func benchKind(b *testing.B, sc Scenario, trials int) {
	b.Helper()
	sc.Trials = trials
	// Warm the build cache so the loop measures trials, not analysis.
	if _, err := RunScenario(sc, Options{Trials: 1}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunScenario(sc, Options{}); err != nil {
			b.Fatal(err)
		}
	}
	reportTrials(b, sc.Trials)
}

// BenchmarkExactPoint measures the exact-analysis fast path: the same
// quickstart point BenchmarkExactPointMC simulates, answered straight
// from the cached schedule analysis with zero trials. Their ns/op ratio
// is the exact-mode speedup ISSUE 9 gates on (≥ 100×).
func BenchmarkExactPoint(b *testing.B) {
	sc, err := Preset("quickstart")
	if err != nil {
		b.Fatal(err)
	}
	sc.Exact = true
	benchKind(b, sc, 0)
}

// BenchmarkExactPointMC is the Monte-Carlo twin of BenchmarkExactPoint:
// identical scenario, 500 simulated trials.
func BenchmarkExactPointMC(b *testing.B) {
	sc, err := Preset("quickstart")
	if err != nil {
		b.Fatal(err)
	}
	benchKind(b, sc, 500)
}

// BenchmarkMultiChannelPairScenario measures the multi-channel pair path
// (sim.MultiChannelPairTrial on the world kernel).
func BenchmarkMultiChannelPairScenario(b *testing.B) {
	sc, err := Preset("ble3-fast")
	if err != nil {
		b.Fatal(err)
	}
	benchKind(b, sc, 64)
}

// BenchmarkSlotGridPairScenario measures the slot-aligned pair path
// (sim.SlotGridPair.Trial on the world kernel).
func BenchmarkSlotGridPairScenario(b *testing.B) {
	suite, err := Suite("slotgrid")
	if err != nil {
		b.Fatal(err)
	}
	benchKind(b, suite[0], 64)
}

// BenchmarkMultiChannelGroupScenario measures the kernel's multi-node
// multi-channel group path with per-channel collisions and half-duplex
// radios (sim.MultiChannelGroupTrial).
func BenchmarkMultiChannelGroupScenario(b *testing.B) {
	sc, err := Preset("ble3-crowd")
	if err != nil {
		b.Fatal(err)
	}
	benchKind(b, sc, 16)
}

// BenchmarkScheduleCache measures a cached re-build: the memoized path
// must be orders of magnitude below buildUncached.
func BenchmarkScheduleCache(b *testing.B) {
	spec := ProtocolSpec{Kind: "optimal", Omega: 36, Alpha: 1, Eta: 0.05}
	if _, err := build(spec, 2); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := build(spec, 2); err != nil {
			b.Fatal(err)
		}
	}
}
