package engine

import (
	"runtime"
	"testing"
)

// benchScenario is trial-heavy enough that sharding matters: the wall-clock
// ratio between these two benchmarks is the engine's parallel speedup.
func benchScenario() Scenario {
	sc := busyPreset()
	sc.Name = "bench-busy"
	sc.Population = 10
	sc.Trials = 32
	return sc
}

func runBench(b *testing.B, workers int) {
	b.Helper()
	sc := benchScenario()
	for i := 0; i < b.N; i++ {
		if _, err := RunScenario(sc, Options{Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunScenario1Worker(b *testing.B) { runBench(b, 1) }

func BenchmarkRunScenarioAllCores(b *testing.B) { runBench(b, runtime.GOMAXPROCS(0)) }

// BenchmarkScheduleCache measures a cached re-build: the memoized path
// must be orders of magnitude below buildUncached.
func BenchmarkScheduleCache(b *testing.B) {
	spec := ProtocolSpec{Kind: "optimal", Omega: 36, Alpha: 1, Eta: 0.05}
	if _, err := build(spec, 2); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := build(spec, 2); err != nil {
			b.Fatal(err)
		}
	}
}
