package engine

import (
	"bytes"
	"testing"

	"repro/internal/timebase"
)

// Satellite 2: the ndshard/1 codec fuzz target. The invariant under
// arbitrary input: DecodeSnapshot either returns an error — never panics —
// or returns a snapshot whose re-encoding is a fixed point of the codec
// (decode ∘ encode is the identity on accepted documents).
func FuzzSnapshotCodec(f *testing.F) {
	seedScenario := func(trials int, churn bool) Scenario {
		sc := Scenario{
			Name:       "fuzz-seed",
			Protocol:   ProtocolSpec{Kind: "optimal", Omega: 36 * timebase.Microsecond, Alpha: 1, Eta: 0.05},
			Population: 2,
			Trials:     trials,
			Horizon:    HorizonSpec{WorstMultiple: 3},
			Seed:       31,
		}
		if churn {
			sc.Population = 4
			sc.Horizon = HorizonSpec{WorstMultiple: 8}
			sc.Churn = &ChurnSpec{StayWorstMultiple: 2}
		}
		return sc
	}
	encodeSeed := func(sc Scenario, k, n int, mode StreamMode) []byte {
		snap, err := RunScenariosShard("fuzz", []Scenario{sc}, ShardSpec{K: k, N: n}, Options{Workers: 2, Stream: mode})
		if err != nil {
			f.Fatalf("seed run: %v", err)
		}
		var buf bytes.Buffer
		if err := EncodeSnapshot(&buf, snap); err != nil {
			f.Fatalf("seed encode: %v", err)
		}
		return buf.Bytes()
	}

	exact := encodeSeed(seedScenario(6, false), 1, 2, StreamOff)
	streamed := encodeSeed(seedScenario(6, false), 2, 3, StreamOn)
	churned := encodeSeed(seedScenario(5, true), 1, 1, StreamOff)
	empty := encodeSeed(seedScenario(2, false), 3, 7, StreamOff) // empty trial range

	f.Add(exact)
	f.Add(streamed)
	f.Add(churned)
	f.Add(empty)
	f.Add(exact[:len(exact)/2])                                              // truncated
	f.Add(bytes.Replace(exact, []byte("ndshard/1"), []byte("ndshard/2"), 1)) // version skew
	f.Add(bytes.Replace(streamed, []byte(`"count"`), []byte(`"cuont"`), 1))  // unknown field
	f.Add(append(append([]byte(nil), churned...), '{', '}'))                 // trailing data
	f.Add([]byte("{}"))
	f.Add([]byte(`{"codec":"ndshard/1","kind":"suite","shard":{"k":1,"n":1},"points":[]}`))
	f.Add([]byte(`not json at all`))
	if i := bytes.IndexByte(streamed, ':'); i >= 0 { // flipped byte
		corrupt := append([]byte(nil), streamed...)
		corrupt[i+1] ^= 0x5a
		f.Add(corrupt)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeSnapshot(bytes.NewReader(data))
		if err != nil {
			return // rejected is fine; panicking is the only failure mode here
		}
		var first bytes.Buffer
		if err := EncodeSnapshot(&first, snap); err != nil {
			t.Fatalf("accepted snapshot failed to re-encode: %v", err)
		}
		again, err := DecodeSnapshot(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("codec rejected its own output: %v", err)
		}
		var second bytes.Buffer
		if err := EncodeSnapshot(&second, again); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("decode∘encode is not a fixed point:\nfirst:  %.300s\nsecond: %.300s", first.Bytes(), second.Bytes())
		}
	})
}
