package engine

import (
	"bytes"
	"encoding/json"
	"testing"
)

// groupScenario exercises every aggregation path: collisions, jitter,
// misses, multiple devices.
func groupScenario() Scenario {
	return Scenario{
		Name:       "group-test",
		Protocol:   ProtocolSpec{Kind: "optimal", Omega: 36, Alpha: 1, Eta: 0.05},
		Population: 6,
		Trials:     12,
		Horizon:    HorizonSpec{WorstMultiple: 6},
		Channel:    ChannelSpec{Collisions: true, HalfDuplex: true, Jitter: 360},
		Seed:       5,
	}
}

// marshalAgg serializes an aggregate's deterministic content: the runtime
// (observability) section legitimately differs run to run and is outside
// the invariance contract these tests pin, so it is stripped first.
func marshalAgg(t *testing.T, a Aggregate) []byte {
	t.Helper()
	a.Runtime = nil
	blob, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestWorkerCountInvariance is the engine's core contract: the same
// scenario aggregates bit-identically with 1 worker and with many.
func TestWorkerCountInvariance(t *testing.T) {
	scenarios := []Scenario{groupScenario()}
	if quick, err := Preset("quickstart"); err == nil {
		quick.Trials = 40
		scenarios = append(scenarios, quick)
	}
	churn, err := Preset("churn-busy")
	if err != nil {
		t.Fatal(err)
	}
	churn.Trials = 8
	scenarios = append(scenarios, churn)

	for _, sc := range scenarios {
		serial, err := RunScenario(sc, Options{Workers: 1})
		if err != nil {
			t.Fatalf("%s serial: %v", sc.Name, err)
		}
		parallel, err := RunScenario(sc, Options{Workers: 8})
		if err != nil {
			t.Fatalf("%s parallel: %v", sc.Name, err)
		}
		if !bytes.Equal(marshalAgg(t, serial), marshalAgg(t, parallel)) {
			t.Errorf("%s: aggregates differ between 1 and 8 workers", sc.Name)
		}
	}
}

// TestRunScenarioRepeatable: same scenario, same options, twice → same
// bytes (the schedule cache must not leak state into results).
func TestRunScenarioRepeatable(t *testing.T) {
	sc := groupScenario()
	a, err := RunScenario(sc, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenario(sc, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshalAgg(t, a), marshalAgg(t, b)) {
		t.Fatal("repeated runs differ")
	}
}

func TestSeedChangesResults(t *testing.T) {
	sc := groupScenario()
	a, err := RunScenario(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sc.Seed++
	b, err := RunScenario(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(marshalAgg(t, a), marshalAgg(t, b)) {
		t.Fatal("different seeds produced identical aggregates")
	}
}

// TestTrialPrefixProperty: the first N trials of a longer run see the same
// randomness as an N-trial run, so aggregates built from per-trial outputs
// agree on the shared prefix. We verify via the executor: a 4-trial run's
// sample multiset must be a subset of the 8-trial run's.
func TestTrialPrefixProperty(t *testing.T) {
	sc := groupScenario()
	sc.Trials = 4
	short, err := RunScenario(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sc.Trials = 8
	long, err := RunScenario(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if short.Pairs >= long.Pairs {
		// Same per-pair accounting per trial: 6·5 pairs × trials.
		t.Fatalf("pair counts: short %d, long %d", short.Pairs, long.Pairs)
	}
	if short.Pairs != 4*6*5 || long.Pairs != 8*6*5 {
		t.Fatalf("unexpected pair totals: short %d, long %d", short.Pairs, long.Pairs)
	}
}

func TestPairScenarioMatchesExactAnalysis(t *testing.T) {
	sc, err := Preset("quickstart")
	if err != nil {
		t.Fatal(err)
	}
	sc.Trials = 120
	agg, err := RunScenario(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !agg.Deterministic {
		t.Fatal("quickstart schedule should be deterministic")
	}
	if agg.FailureRate != 0 {
		t.Fatalf("deterministic pair with 3×worst horizon missed %.1f%%", agg.FailureRate*100)
	}
	if agg.Latency.Max > agg.ExactWorst {
		t.Fatalf("simulated max %d exceeds exact worst case %d", agg.Latency.Max, agg.ExactWorst)
	}
	if agg.BoundRatio < 0.9 || agg.BoundRatio > 1.5 {
		t.Fatalf("optimal construction should sit near the bound, ratio %.3f", agg.BoundRatio)
	}
}

// TestAsymmetricBoundRatioIsTwoWay: the Theorem 5.7 bound constrains the
// slower direction, so the reported worst case must cover both directions
// — a fundamental bound cannot be beaten (ratio ≥ 1, up to rounding).
func TestAsymmetricBoundRatioIsTwoWay(t *testing.T) {
	sc, err := Preset("sensornet")
	if err != nil {
		t.Fatal(err)
	}
	agg, err := RunScenario(sc, Options{Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	if agg.BoundRatio < 0.999 {
		t.Fatalf("two-way worst case reported below the fundamental bound: ratio %.4f", agg.BoundRatio)
	}
}

func TestGroupScenarioCollisions(t *testing.T) {
	agg, err := RunScenario(groupScenario(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Transmissions == 0 {
		t.Fatal("no transmissions recorded")
	}
	if agg.CollisionRate <= 0 {
		t.Fatal("collision channel with 6 contending devices should collide sometimes")
	}
	if len(agg.CDF) == 0 {
		t.Fatal("CDF missing")
	}
	for i := 1; i < len(agg.CDF); i++ {
		if agg.CDF[i].Fraction < agg.CDF[i-1].Fraction || agg.CDF[i].Latency < agg.CDF[i-1].Latency {
			t.Fatalf("CDF not monotone at %d: %+v", i, agg.CDF)
		}
	}
}

func TestTrialsOverride(t *testing.T) {
	sc := groupScenario()
	agg, err := RunScenario(sc, Options{Trials: 3})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Trials != 3 {
		t.Fatalf("override ignored: %d trials", agg.Trials)
	}
}

func TestGroupNeedsSymmetricProtocol(t *testing.T) {
	sc := groupScenario()
	sc.Protocol = ProtocolSpec{Kind: "asymmetric", Omega: 36, Alpha: 1, EtaE: 0.01, EtaF: 0.1}
	if _, err := RunScenario(sc, Options{}); err == nil {
		t.Fatal("asymmetric group scenario should be rejected")
	}
	// Churn also instantiates every device from E, even at population 2.
	sc.Population = 2
	sc.Churn = &ChurnSpec{StayWorstMultiple: 2}
	if _, err := RunScenario(sc, Options{}); err == nil {
		t.Fatal("asymmetric churn scenario should be rejected")
	}
}

func TestChurnContactBins(t *testing.T) {
	sc, err := Preset("churn-quiet")
	if err != nil {
		t.Fatal(err)
	}
	sc.Trials = 10
	agg, err := RunScenario(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(agg.ContactBins) != len(contactBinEdges) {
		t.Fatalf("got %d contact bins, want %d", len(agg.ContactBins), len(contactBinEdges))
	}
	total, discovered := 0, 0
	for _, b := range agg.ContactBins {
		if b.Discovered > b.Contacts {
			t.Fatalf("bin %+v: discovered exceeds contacts", b)
		}
		total += b.Contacts
		discovered += b.Discovered
	}
	if total != agg.Pairs {
		t.Fatalf("bins hold %d contacts, aggregate judged %d", total, agg.Pairs)
	}
	if discovered != agg.Pairs-agg.Latency.Misses {
		t.Fatalf("bins hold %d discoveries, aggregate has %d", discovered, agg.Pairs-agg.Latency.Misses)
	}
	// Contacts of at least the worst case are guaranteed on a quiet
	// channel — the last bins (overlap ≥ L) must discover everything.
	for _, b := range agg.ContactBins {
		if b.Lo >= 1.0 && b.Contacts > 0 && b.Discovered != b.Contacts {
			t.Fatalf("bin [%.2f,%.2f): %d/%d discovered — guaranteed contacts missed on a quiet channel",
				b.Lo, b.Hi, b.Discovered, b.Contacts)
		}
	}
}
