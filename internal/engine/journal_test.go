package engine

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/timebase"
)

func journalSweep() SweepSpec {
	return SweepSpec{
		Name: "journal-sweep",
		Base: Scenario{
			Protocol:   ProtocolSpec{Kind: "optimal", Omega: 36 * timebase.Microsecond, Alpha: 1},
			Population: 2,
			Trials:     12,
			Horizon:    HorizonSpec{WorstMultiple: 3},
			Seed:       23,
		},
		Axes: []SweepAxis{{Field: "protocol.eta", Values: []float64{0.01, 0.02, 0.05, 0.10}}},
	}
}

func renderStripped(t *testing.T, name string, aggs []Aggregate) []byte {
	t.Helper()
	res := SuiteResult{Suite: name, Scenarios: aggs}
	res.StripRuntime()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// A journaled run must produce the same document as a plain run, and a
// resume after losing some entries must re-execute exactly the missing
// points and still produce the identical document.
func TestJournalResume(t *testing.T) {
	sp := journalSweep()
	scenarios, err := sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := RunSuite(scenarios, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := renderStripped(t, sp.Name, direct)

	dir := t.TempDir()
	var m obs.RunMetrics
	aggs, err := RunJournaled(sp.Name, scenarios, Options{Workers: 2, Metrics: &m}, dir)
	if err != nil {
		t.Fatalf("journaled run: %v", err)
	}
	if got := renderStripped(t, sp.Name, aggs); !bytes.Equal(got, want) {
		t.Errorf("journaled run differs from plain run")
	}
	if m.ResumedPoints != 0 || m.SnapshotPoints != len(scenarios) {
		t.Errorf("fresh journaled run: resumed=%d snapshots=%d, want 0/%d", m.ResumedPoints, m.SnapshotPoints, len(scenarios))
	}

	// Simulate a mid-sweep kill: two completed points survive in the
	// journal, the rest never finished.
	for _, i := range []int{1, 3} {
		if err := os.Remove(journalPointPath(dir, i)); err != nil {
			t.Fatal(err)
		}
	}
	var m2 obs.RunMetrics
	resumed, err := RunJournaled(sp.Name, scenarios, Options{Workers: 3, Metrics: &m2}, dir)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if got := renderStripped(t, sp.Name, resumed); !bytes.Equal(got, want) {
		t.Errorf("resumed run differs from plain run")
	}
	if m2.ResumedPoints != 2 || m2.SnapshotPoints != 2 {
		t.Errorf("resume re-executed the wrong points: resumed=%d snapshots=%d, want 2/2", m2.ResumedPoints, m2.SnapshotPoints)
	}
	// The resume re-ran only the two missing points' trials.
	if wantTrials := int64(2 * sp.Base.Trials); m2.Trials != wantTrials {
		t.Errorf("resume ran %d trials, want %d", m2.Trials, wantTrials)
	}

	// A fully journaled job resumes without running anything.
	var m3 obs.RunMetrics
	if _, err := RunJournaled(sp.Name, scenarios, Options{Workers: 2, Metrics: &m3}, dir); err != nil {
		t.Fatalf("no-op resume: %v", err)
	}
	if m3.ResumedPoints != len(scenarios) || m3.SnapshotPoints != 0 {
		t.Errorf("no-op resume: resumed=%d snapshots=%d, want %d/0", m3.ResumedPoints, m3.SnapshotPoints, len(scenarios))
	}
}

// A journal directory is bound to one job: resuming with different
// parameters (here the trial count) must be refused, not mixed in.
func TestJournalJobMismatch(t *testing.T) {
	sp := journalSweep()
	scenarios, err := sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := RunJournaled(sp.Name, scenarios, Options{Workers: 2}, dir); err != nil {
		t.Fatal(err)
	}
	_, err = RunJournaled(sp.Name, scenarios, Options{Workers: 2, Trials: 99}, dir)
	if err == nil || !strings.Contains(err.Error(), "different job") {
		t.Errorf("trial-count mismatch: got %v, want different-job error", err)
	}
}

// A torn or tampered journal entry fails the resume loudly.
func TestJournalCorruptEntry(t *testing.T) {
	sp := journalSweep()
	scenarios, err := sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := RunJournaled(sp.Name, scenarios, Options{Workers: 2}, dir); err != nil {
		t.Fatal(err)
	}
	path := journalPointPath(dir, 0)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := RunJournaled(sp.Name, scenarios, Options{Workers: 2}, dir); err == nil {
		t.Error("resume accepted a truncated journal entry")
	}

	// An entry swapped in from another point is an identity mismatch.
	other, err := os.ReadFile(journalPointPath(dir, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, other, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := RunJournaled(sp.Name, scenarios, Options{Workers: 2}, dir); err == nil ||
		!strings.Contains(err.Error(), "holds") {
		t.Errorf("swapped entry: got %v, want identity-mismatch error", err)
	}

	// journal.json must exist alongside the entries.
	if err := os.Remove(filepath.Join(dir, "journal.json")); err != nil {
		t.Fatal(err)
	}
	if _, err := RunJournaled(sp.Name, scenarios, Options{Workers: 2, Trials: 99}, dir); err == nil {
		t.Error("missing manifest with mismatched job parameters was accepted")
	}
}
