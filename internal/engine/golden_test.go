package engine

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// The golden-result regression harness: every paper suite (and the
// multi-channel/slot-domain additions) has its full JSON output committed
// under testdata/golden/, and TestGolden re-runs each against the
// committed bytes. The engine's determinism contract makes this exact —
// aggregates are bit-identical for any worker count — so any diff is a
// real behavioral change: a protocol construction, an analysis, the
// aggregation pipeline, or the RNG derivation drifted. Intentional changes
// regenerate the files with
//
//	go test ./internal/engine -run TestGolden -update
//
// and the diff is reviewed like any other code change.
var update = flag.Bool("update", false, "regenerate testdata/golden files")

const goldenDir = "testdata/golden"

// goldenSuites names the scenario suites under golden protection. All run
// at their registry-default trial counts (each is sub-second).
var goldenSuites = []string{
	"paper-fig7",
	"protocols",
	"examples",
	"multichannel",
	"multichannel-group",
	"slotgrid",
}

// goldenSweeps names the sweep presets under golden protection.
var goldenSweeps = []string{
	"sweep-channels",
	"sweep-density",
	"sweep-eta",
}

// goldenAdaptives names the adaptive presets whose full refinement trace
// (every evaluated point, bracket and best choice) is under golden
// protection.
var goldenAdaptives = []string{
	"adaptive-density",
	"adaptive-eta",
}

func goldenCompare(t *testing.T, name string, res any) {
	t.Helper()
	// Runtime (observability) sections carry wall times and cache traffic
	// that differ every run; they are structurally excluded from golden
	// comparison so the committed files stay byte-identical.
	// TestGoldenExcludesRuntime (metrics_test.go) enforces the exclusion.
	switch r := res.(type) {
	case SuiteResult:
		r.StripRuntime()
		res = r
	case AdaptiveResult:
		r.StripRuntime()
		res = r
	}
	var buf bytes.Buffer
	if err := writeIndentedJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(goldenDir, name+".json")
	if *update {
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, buf.Len())
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (run with -update to create it): %v", path, err)
	}
	if bytes.Equal(buf.Bytes(), want) {
		return
	}
	// Point at the first diverging line rather than dumping two full
	// documents.
	gotLines := bytes.Split(buf.Bytes(), []byte("\n"))
	wantLines := bytes.Split(want, []byte("\n"))
	for i := range gotLines {
		if i >= len(wantLines) {
			t.Fatalf("%s: output has %d extra lines; first extra: %s",
				path, len(gotLines)-len(wantLines), gotLines[i])
		}
		if !bytes.Equal(gotLines[i], wantLines[i]) {
			t.Fatalf("%s: first divergence at line %d:\n got: %s\nwant: %s\n(run with -update if the change is intentional)",
				path, i+1, gotLines[i], wantLines[i])
		}
	}
	t.Fatalf("%s: committed file has %d extra lines past the %d produced",
		path, len(wantLines)-len(gotLines), len(gotLines))
}

func TestGoldenSuites(t *testing.T) {
	for _, name := range goldenSuites {
		t.Run(name, func(t *testing.T) {
			scenarios, err := Suite(name)
			if err != nil {
				t.Fatal(err)
			}
			aggs, err := RunSuite(scenarios, Options{})
			if err != nil {
				t.Fatal(err)
			}
			goldenCompare(t, "suite-"+name, SuiteResult{Suite: name, Scenarios: aggs})
		})
	}
}

func TestGoldenSweeps(t *testing.T) {
	for _, name := range goldenSweeps {
		t.Run(name, func(t *testing.T) {
			sp, err := SweepPreset(name)
			if err != nil {
				t.Fatal(err)
			}
			aggs, err := RunSweep(sp, Options{})
			if err != nil {
				t.Fatal(err)
			}
			goldenCompare(t, "sweep-"+name, SuiteResult{Suite: sp.Name, Scenarios: aggs})
		})
	}
}

func TestGoldenAdaptives(t *testing.T) {
	for _, name := range goldenAdaptives {
		t.Run(name, func(t *testing.T) {
			ap, err := AdaptivePreset(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := RunAdaptive(ap, Options{})
			if err != nil {
				t.Fatal(err)
			}
			goldenCompare(t, "adaptive-"+name, res)
		})
	}
}

// TestGoldenFilesAccounted fails when a committed golden file no longer
// corresponds to any protected suite or sweep — stale files would silently
// stop regression-checking whatever they once pinned.
func TestGoldenFilesAccounted(t *testing.T) {
	entries, err := os.ReadDir(goldenDir)
	if err != nil {
		t.Fatalf("reading %s (run TestGolden* with -update first): %v", goldenDir, err)
	}
	known := make(map[string]bool)
	for _, n := range goldenSuites {
		known["suite-"+n+".json"] = true
	}
	for _, n := range goldenSweeps {
		known["sweep-"+n+".json"] = true
	}
	for _, n := range goldenAdaptives {
		known["adaptive-"+n+".json"] = true
	}
	seen := 0
	for _, e := range entries {
		if !known[e.Name()] {
			t.Errorf("stray golden file %s: not produced by any protected suite or sweep", e.Name())
			continue
		}
		seen++
	}
	if want := len(known); seen != want {
		missing := fmt.Sprintf("have %d of %d golden files", seen, want)
		t.Fatalf("%s — run `go test ./internal/engine -run TestGolden -update` and commit the result", missing)
	}
}
