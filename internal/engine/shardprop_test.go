package engine

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/timebase"
)

// Satellite 1: the property harness for the shard/merge determinism
// contract. For randomized scenarios across every protocol kind, shard
// counts n ∈ {1, 2, 3, 7}, both aggregation paths, and arbitrary worker
// counts, merging shards 1..n must reproduce — byte for byte, after
// StripRuntime — the document an unsharded run writes. Every shard
// snapshot is round-tripped through the ndshard/1 codec on the way, so the
// property covers serialization, not just in-memory merging.

// propTemplates covers every protocol kind and execution mode the engine
// dispatches on: the five continuous-time branches of runTrial (pair,
// group, churn, multi-channel pair, multi-channel group/churn) and the
// slot-grid branch, plus the slotted continuous protocols and every
// schedule family (optimal, asymmetric, constrained, ble, slotted).
// Trials and seed are stamped per property case.
func propTemplates() []Scenario {
	const omega = 36 * timebase.Microsecond
	const bleOmega = 128 * timebase.Microsecond
	slot := 5 * timebase.Millisecond
	return []Scenario{
		{
			Name:       "prop-optimal",
			Protocol:   ProtocolSpec{Kind: "optimal", Omega: omega, Alpha: 1, Eta: 0.02},
			Population: 2,
			Horizon:    HorizonSpec{WorstMultiple: 3},
		},
		{
			Name:       "prop-asymmetric",
			Protocol:   ProtocolSpec{Kind: "asymmetric", Omega: omega, Alpha: 1, EtaE: 0.005, EtaF: 0.10},
			Population: 2,
			Horizon:    HorizonSpec{WorstMultiple: 3},
		},
		{
			Name:       "prop-constrained",
			Protocol:   ProtocolSpec{Kind: "constrained", Omega: omega, Alpha: 1, Eta: 0.05, PF: 0.001},
			Population: 2,
			Horizon:    HorizonSpec{WorstMultiple: 3},
		},
		{
			Name:       "prop-ble",
			Protocol:   ProtocolSpec{Kind: "ble", Omega: bleOmega, Alpha: 1, Preset: "fast"},
			Population: 2,
			Horizon:    HorizonSpec{WorstMultiple: 3},
			Channel:    ChannelSpec{Jitter: 10 * timebase.Millisecond},
		},
		{
			Name:       "prop-multichannel",
			Protocol:   ProtocolSpec{Kind: "multichannel", Omega: bleOmega, Alpha: 1, Preset: "fast"},
			Population: 2,
			Horizon:    HorizonSpec{WorstMultiple: 3},
		},
		{
			Name:       "prop-mc-group",
			Protocol:   ProtocolSpec{Kind: "multichannel-group", Omega: bleOmega, Alpha: 1, Preset: "fast"},
			Population: 4,
			Horizon:    HorizonSpec{WorstMultiple: 6},
			Channel:    ChannelSpec{Collisions: true, HalfDuplex: true},
		},
		{
			Name:       "prop-mc-churn",
			Protocol:   ProtocolSpec{Kind: "multichannel-churn", Omega: bleOmega, Alpha: 1, Preset: "fast"},
			Population: 4,
			Horizon:    HorizonSpec{WorstMultiple: 10},
			Churn:      &ChurnSpec{StayWorstMultiple: 4},
			Channel:    ChannelSpec{Collisions: true, HalfDuplex: true},
		},
		{
			Name:       "prop-group",
			Protocol:   ProtocolSpec{Kind: "optimal", Omega: omega, Alpha: 1, Eta: 0.05},
			Population: 6,
			Horizon:    HorizonSpec{WorstMultiple: 8},
			Channel:    ChannelSpec{Collisions: true, HalfDuplex: true, Jitter: 360 * timebase.Microsecond},
		},
		{
			Name:       "prop-churn",
			Protocol:   ProtocolSpec{Kind: "optimal", Omega: omega, Alpha: 1, Eta: 0.05},
			Population: 5,
			Horizon:    HorizonSpec{WorstMultiple: 8},
			Churn:      &ChurnSpec{StayWorstMultiple: 2},
		},
		{
			Name:       "prop-slotgrid",
			Protocol:   ProtocolSpec{Kind: "slot-disco", Omega: omega, Alpha: 1, P1: 37, P2: 43, SlotLen: slot},
			Population: 2,
			Horizon:    HorizonSpec{WorstMultiple: 2},
		},
		{
			Name:       "prop-slotted",
			Protocol:   ProtocolSpec{Kind: "searchlight", Omega: omega, Alpha: 1, T: 16, Striped: true, SlotLen: slot},
			Population: 2,
			Horizon:    HorizonSpec{PeriodMultiple: 3},
		},
	}
}

// codecRoundTrip pushes a snapshot through the ndshard/1 codec and asserts
// the round-trip is the identity on bytes: encode(decode(encode(x))) ==
// encode(x).
func codecRoundTrip(t *testing.T, snap Snapshot) Snapshot {
	t.Helper()
	var first bytes.Buffer
	if err := EncodeSnapshot(&first, snap); err != nil {
		t.Fatalf("encode: %v", err)
	}
	dec, err := DecodeSnapshot(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatalf("decode of own encoding: %v", err)
	}
	var second bytes.Buffer
	if err := EncodeSnapshot(&second, dec); err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("codec round-trip is not the identity:\nfirst:  %.200s\nsecond: %.200s", first.Bytes(), second.Bytes())
	}
	return dec
}

// diffJSON reports the first divergence between two rendered documents.
func diffJSON(t *testing.T, label string, want, got []byte) {
	t.Helper()
	if bytes.Equal(want, got) {
		return
	}
	i := 0
	for i < len(want) && i < len(got) && want[i] == got[i] {
		i++
	}
	lo := i - 120
	if lo < 0 {
		lo = 0
	}
	t.Errorf("%s: merged shards differ from the unsharded run at byte %d:\nunsharded: …%s\nmerged:    …%s",
		label, i, clip(want, lo, i+120), clip(got, lo, i+120))
}

func clip(b []byte, lo, hi int) []byte {
	if hi > len(b) {
		hi = len(b)
	}
	return b[lo:hi]
}

// assertShardMergeIdentical is the core property: shard the scenario list
// n ways (each shard with its own worker count), round-trip every snapshot
// through the codec, merge in shuffled order, and require the stripped
// result's bytes to equal the unsharded run's.
func assertShardMergeIdentical(t *testing.T, rng *rand.Rand, label string, scenarios []Scenario, n int, mode StreamMode) {
	t.Helper()
	aggs, err := RunSuite(scenarios, Options{Workers: 1 + rng.Intn(4), Stream: mode})
	if err != nil {
		t.Fatalf("%s: unsharded run: %v", label, err)
	}
	want := SuiteResult{Suite: label, Scenarios: aggs}
	want.StripRuntime()
	var wantBuf bytes.Buffer
	if err := WriteJSON(&wantBuf, want); err != nil {
		t.Fatal(err)
	}

	snaps := make([]Snapshot, n)
	for k := 1; k <= n; k++ {
		snap, err := RunScenariosShard(label, scenarios, ShardSpec{K: k, N: n}, Options{Workers: 1 + rng.Intn(4), Stream: mode})
		if err != nil {
			t.Fatalf("%s: shard %d/%d: %v", label, k, n, err)
		}
		snaps[k-1] = codecRoundTrip(t, snap)
	}
	rng.Shuffle(len(snaps), func(i, j int) { snaps[i], snaps[j] = snaps[j], snaps[i] })
	merged, err := MergeSnapshots(snaps)
	if err != nil {
		t.Fatalf("%s: merge: %v", label, err)
	}
	merged.StripRuntime()
	var gotBuf bytes.Buffer
	if err := WriteJSON(&gotBuf, merged); err != nil {
		t.Fatal(err)
	}
	diffJSON(t, label, wantBuf.Bytes(), gotBuf.Bytes())
}

func TestShardMergeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	for _, tmpl := range propTemplates() {
		tmpl := tmpl
		t.Run(tmpl.Name, func(t *testing.T) {
			for _, n := range []int{1, 2, 3, 7} {
				sc := tmpl
				sc.Trials = 4 + rng.Intn(12)
				if n == 7 && rng.Intn(2) == 0 {
					sc.Trials = 5 // fewer trials than shards: empty ranges must merge too
				}
				sc.Seed = 1 + rng.Int63n(1<<30)
				mode := StreamOff
				if rng.Intn(2) == 0 {
					mode = StreamOn
				}
				assertShardMergeIdentical(t, rng,
					fmt.Sprintf("%s/n%d", tmpl.Name, n), []Scenario{sc}, n, mode)
			}
		})
	}
}

// Both aggregation paths must hold the property on the same spec — the
// randomized cases above pick one mode each; this pins the pair.
func TestShardMergePropertyBothPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sc := propTemplates()[0]
	sc.Trials = 17
	sc.Seed = 9
	for _, mode := range []StreamMode{StreamOff, StreamOn} {
		assertShardMergeIdentical(t, rng, fmt.Sprintf("both-paths/%d", mode), []Scenario{sc}, 3, mode)
	}
}

// A sweep shards as its expanded scenario matrix: merge(shards of every
// grid point) must equal the unsharded sweep document.
func TestShardMergePropertySweep(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sp := SweepSpec{
		Name: "prop-sweep",
		Base: Scenario{
			Protocol:   ProtocolSpec{Kind: "optimal", Omega: 36 * timebase.Microsecond, Alpha: 1},
			Population: 2,
			Trials:     10,
			Horizon:    HorizonSpec{WorstMultiple: 3},
			Seed:       5,
		},
		Axes: []SweepAxis{{Field: "protocol.eta", Values: []float64{0.01, 0.02, 0.05}}},
	}
	scenarios, err := sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 7} {
		aggs, err := RunSweep(sp, Options{Workers: 1 + rng.Intn(4)})
		if err != nil {
			t.Fatal(err)
		}
		want := SuiteResult{Suite: sp.Name, Scenarios: aggs}
		want.StripRuntime()
		var wantBuf bytes.Buffer
		if err := WriteJSON(&wantBuf, want); err != nil {
			t.Fatal(err)
		}

		snaps := make([]Snapshot, n)
		for k := 1; k <= n; k++ {
			snap, err := RunSweepShard(sp, ShardSpec{K: k, N: n}, Options{Workers: 1 + rng.Intn(4)})
			if err != nil {
				t.Fatalf("sweep shard %d/%d: %v", k, n, err)
			}
			snaps[k-1] = codecRoundTrip(t, snap)
		}
		merged, err := MergeSnapshots(snaps)
		if err != nil {
			t.Fatalf("sweep merge: %v", err)
		}
		merged.StripRuntime()
		var gotBuf bytes.Buffer
		if err := WriteJSON(&gotBuf, merged); err != nil {
			t.Fatal(err)
		}
		diffJSON(t, fmt.Sprintf("sweep/n%d (%d points)", n, len(scenarios)), wantBuf.Bytes(), gotBuf.Bytes())
	}
}

// An adaptive search shards round by round: each shard replays the search
// against the merged evaluation pool, runs its trial slice of the pending
// round, and the merge either finishes the search or emits a continuation
// for the next round. The final trace must be byte-identical to the
// unsharded search.
func TestShardMergePropertyAdaptive(t *testing.T) {
	for _, name := range []string{"adaptive-eta", "adaptive-density"} {
		name := name
		t.Run(name, func(t *testing.T) {
			ap, err := AdaptivePreset(name)
			if err != nil {
				t.Fatal(err)
			}
			opt := Options{Workers: 2, Trials: 8}
			want, err := RunAdaptive(ap, opt)
			if err != nil {
				t.Fatalf("unsharded adaptive: %v", err)
			}
			want.StripRuntime()
			var wantBuf bytes.Buffer
			if err := WriteAdaptiveJSON(&wantBuf, want); err != nil {
				t.Fatal(err)
			}

			const n = 3
			var prior *Snapshot
			var got *AdaptiveResult
			for round := 0; got == nil; round++ {
				if round > maxAdaptiveRounds+1 {
					t.Fatalf("shard loop did not converge after %d rounds", round)
				}
				snaps := make([]Snapshot, 0, n)
				for k := 1; k <= n; k++ {
					snap, res, err := RunAdaptiveShard(ap, ShardSpec{K: k, N: n}, prior, Options{Workers: 1 + k%3, Trials: 8})
					if err != nil {
						t.Fatalf("round %d shard %d/%d: %v", round, k, n, err)
					}
					if res != nil {
						got = res
						break
					}
					snaps = append(snaps, codecRoundTrip(t, *snap))
				}
				if got != nil {
					break
				}
				res, cont, err := MergeAdaptiveSnapshots(snaps)
				if err != nil {
					t.Fatalf("round %d merge: %v", round, err)
				}
				if res != nil {
					got = res
					break
				}
				prior = cont
			}
			got.StripRuntime()
			var gotBuf bytes.Buffer
			if err := WriteAdaptiveJSON(&gotBuf, *got); err != nil {
				t.Fatal(err)
			}
			diffJSON(t, name, wantBuf.Bytes(), gotBuf.Bytes())
		})
	}
}
