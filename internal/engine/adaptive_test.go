package engine

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// syntheticSpec is a valid adaptive spec whose points never reach the
// executor: tests pair it with a synthetic evaluator to drive the search
// logic against an objective with a known optimum.
func syntheticSpec(axis SweepAxis) AdaptiveSpec {
	return AdaptiveSpec{
		Name: "synthetic",
		Base: Scenario{
			Protocol:   ProtocolSpec{Kind: "optimal", Omega: 36, Alpha: 1, Eta: 0.05},
			Population: 4,
			Trials:     1,
			Seed:       1,
		},
		Axes:      []SweepAxis{axis},
		Objective: "exact_mean",
		Goal:      "min",
		Rounds:    8,
		Budget:    9,
		Tolerance: 0.01,
	}
}

// syntheticEval evaluates f over the scenario's axis value, recording every
// coordinate it is asked for.
func syntheticEval(value func(Scenario) float64, f func(float64) float64, log *[]float64) adaptiveEvaluator {
	return func(scs []Scenario) ([]Aggregate, error) {
		aggs := make([]Aggregate, len(scs))
		for i, sc := range scs {
			x := value(sc)
			if log != nil {
				*log = append(*log, x)
			}
			aggs[i] = Aggregate{Scenario: sc, ExactMean: f(x)}
		}
		return aggs, nil
	}
}

func etaOf(sc Scenario) float64        { return sc.Protocol.Eta }
func populationOf(sc Scenario) float64 { return float64(sc.Population) }

// TestAdaptiveConvergesOnKnownMinimum: a smooth objective with an interior
// minimum off the coarse grid must be bracketed within the tolerance, with
// the minimum inside the final bracket.
func TestAdaptiveConvergesOnKnownMinimum(t *testing.T) {
	const xstar = 0.37
	sp := syntheticSpec(SweepAxis{Field: "protocol.eta", Values: []float64{0.1, 0.3, 0.5, 0.7, 0.9}})
	f := func(x float64) float64 { return (x - xstar) * (x - xstar) }

	res, err := runAdaptive(sp, syntheticEval(etaOf, f, nil))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("search did not converge in %d rounds: %+v", sp.Rounds, res.Rounds[len(res.Rounds)-1].Brackets)
	}
	br := res.Rounds[len(res.Rounds)-1].Brackets[0]
	span := 0.9 - 0.1
	if w := (br.Hi - br.Lo) / span; w > sp.Tolerance {
		t.Fatalf("final bracket [%g, %g] rel width %g exceeds tolerance %g", br.Lo, br.Hi, w, sp.Tolerance)
	}
	if xstar < br.Lo || xstar > br.Hi {
		t.Fatalf("known minimum %g outside final bracket [%g, %g]", xstar, br.Lo, br.Hi)
	}
	if d := math.Abs(res.Best.Values[0] - xstar); d > sp.Tolerance*span {
		t.Fatalf("best point %g is %g away from the minimum %g", res.Best.Values[0], d, xstar)
	}
}

// TestAdaptiveMaxGoal: goal "max" brackets an interior maximum the same way.
func TestAdaptiveMaxGoal(t *testing.T) {
	const xstar = 0.62
	sp := syntheticSpec(SweepAxis{Field: "protocol.eta", Values: []float64{0.1, 0.3, 0.5, 0.7, 0.9}})
	sp.Goal = "max"
	f := func(x float64) float64 { return -(x - xstar) * (x - xstar) }

	res, err := runAdaptive(sp, syntheticEval(etaOf, f, nil))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("max search did not converge")
	}
	br := res.Rounds[len(res.Rounds)-1].Brackets[0]
	if xstar < br.Lo || xstar > br.Hi {
		t.Fatalf("known maximum %g outside final bracket [%g, %g]", xstar, br.Lo, br.Hi)
	}
}

// TestAdaptiveIntegerAxis: an integer axis refines onto whole values and
// converges when no untried integer is left in the bracket, even under a
// tolerance too tight for the float rule.
func TestAdaptiveIntegerAxis(t *testing.T) {
	sp := syntheticSpec(SweepAxis{Field: "population", Values: []float64{4, 16, 28}})
	sp.Tolerance = 0.001
	f := func(p float64) float64 { return (p - 11) * (p - 11) }

	var asked []float64
	res, err := runAdaptive(sp, syntheticEval(populationOf, f, &asked))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("integer search did not converge")
	}
	if res.Best.Values[0] != 11 {
		t.Fatalf("best population %g, want 11", res.Best.Values[0])
	}
	for _, x := range asked {
		if x != math.Trunc(x) {
			t.Fatalf("integer axis evaluated fractional population %g", x)
		}
	}
}

// TestAdaptiveNeverReevaluates: the memo must make every evaluated
// coordinate unique, so refinement endpoints (already on the ladder) cost
// nothing.
func TestAdaptiveNeverReevaluates(t *testing.T) {
	sp := syntheticSpec(SweepAxis{Field: "protocol.eta", Values: []float64{0.1, 0.3, 0.5, 0.7, 0.9}})
	var asked []float64
	res, err := runAdaptive(sp, syntheticEval(etaOf, func(x float64) float64 { return (x - 0.42) * (x - 0.42) }, &asked))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[float64]bool)
	for _, x := range asked {
		if seen[x] {
			t.Fatalf("coordinate %g evaluated twice", x)
		}
		seen[x] = true
	}
	if len(asked) != res.Evaluations {
		t.Fatalf("evaluator saw %d points, result reports %d", len(asked), res.Evaluations)
	}
}

// TestAdaptiveBudgetCapsRounds: no refinement round may lay a grid larger
// than the budget.
func TestAdaptiveBudgetCapsRounds(t *testing.T) {
	sp := AdaptiveSpec{
		Name: "budgeted",
		Base: Scenario{
			Protocol:   ProtocolSpec{Kind: "optimal", Omega: 36, Alpha: 1, Eta: 0.05},
			Population: 4, Trials: 1, Seed: 1,
		},
		Axes: []SweepAxis{
			{Field: "protocol.eta", Values: []float64{0.1, 0.5, 0.9}},
			{Field: "horizon.worst_multiple", Values: []float64{2, 6, 10}},
		},
		Objective: "exact_mean",
		Rounds:    4,
		Budget:    9,
		Tolerance: 0.01,
	}
	f := func(sc Scenario) float64 {
		dx := sc.Protocol.Eta - 0.33
		dy := sc.Horizon.WorstMultiple - 7.2
		return dx*dx + dy*dy
	}
	eval := func(scs []Scenario) ([]Aggregate, error) {
		aggs := make([]Aggregate, len(scs))
		for i, sc := range scs {
			aggs[i] = Aggregate{Scenario: sc, ExactMean: f(sc)}
		}
		return aggs, nil
	}
	res, err := runAdaptive(sp, eval)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rounds[1:] {
		if len(r.Points) > sp.Budget {
			t.Fatalf("round %d evaluated %d new points, budget %d", r.Round, len(r.Points), sp.Budget)
		}
	}
}

func TestAdaptiveValidation(t *testing.T) {
	valid := func() AdaptiveSpec {
		return AdaptiveSpec{
			Name: "v",
			Base: Scenario{
				Protocol:   ProtocolSpec{Kind: "optimal", Omega: 36, Alpha: 1, Eta: 0.05},
				Population: 2, Trials: 1, Seed: 1,
			},
			Axes:      []SweepAxis{{Field: "protocol.eta", Values: []float64{0.01, 0.05}}},
			Objective: "latency.mean",
		}
	}
	for _, tc := range []struct {
		name   string
		mutate func(*AdaptiveSpec)
		want   string
	}{
		{"unknown objective", func(ap *AdaptiveSpec) { ap.Objective = "latency.p42" }, "unknown objective"},
		{"bad goal", func(ap *AdaptiveSpec) { ap.Goal = "best" }, "goal must be"},
		{"negative rounds", func(ap *AdaptiveSpec) { ap.Rounds = -1 }, "rounds"},
		{"tiny budget", func(ap *AdaptiveSpec) { ap.Budget = 2 }, "budget"},
		{"tolerance too large", func(ap *AdaptiveSpec) { ap.Tolerance = 1 }, "tolerance"},
		{"unknown axis", func(ap *AdaptiveSpec) { ap.Axes[0].Field = "protocol.nope" }, "unknown field"},
		{"no axes", func(ap *AdaptiveSpec) { ap.Axes = nil }, "at least one axis"},
		{"too many axes", func(ap *AdaptiveSpec) {
			// 11 distinct axes of 2 values each: the coarse grid (2048)
			// passes the sweep cap, but a 3-point refinement grid (3^11)
			// could not honor any budget.
			ap.Axes = nil
			for _, f := range []string{
				"protocol.eta", "protocol.eta_e", "protocol.eta_f", "protocol.alpha",
				"protocol.beta_max", "protocol.pf", "population", "trials",
				"seed", "horizon.worst_multiple", "channel.jitter",
			} {
				ap.Axes = append(ap.Axes, SweepAxis{Field: f, Values: []float64{1, 2}})
			}
		}, "axis limit"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ap := valid()
			tc.mutate(&ap)
			err := ap.Validate()
			if err == nil {
				t.Fatal("invalid spec accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	if err := valid().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

// TestAdaptiveWorkerInvariance: the full refinement trace — every evaluated
// aggregate, bracket and best choice — must be byte-identical whether one
// worker or eight execute the trials.
func TestAdaptiveWorkerInvariance(t *testing.T) {
	ap, err := AdaptivePreset("adaptive-eta")
	if err != nil {
		t.Fatal(err)
	}
	var blobs [2][]byte
	for i, workers := range []int{1, 8} {
		res, err := RunAdaptive(ap, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		res.StripRuntime() // wall times differ; the contract is about content
		var buf bytes.Buffer
		if err := WriteAdaptiveJSON(&buf, res); err != nil {
			t.Fatal(err)
		}
		blobs[i] = buf.Bytes()
	}
	if !bytes.Equal(blobs[0], blobs[1]) {
		t.Fatal("adaptive trace differs between -workers 1 and -workers 8")
	}
}

// TestAdaptivePresetsRun: every registry adaptive preset executes end to
// end (at reduced trials) and produces a renderable trace.
func TestAdaptivePresetsRun(t *testing.T) {
	for _, name := range AdaptivePresets() {
		name := name
		t.Run(name, func(t *testing.T) {
			ap, err := AdaptivePreset(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := RunAdaptive(ap, Options{Trials: 2})
			if err != nil {
				t.Fatal(err)
			}
			if res.Evaluations == 0 || len(res.Rounds) == 0 {
				t.Fatalf("empty result: %+v", res)
			}
			if res.Best.Name == "" || res.Best.Aggregate != nil {
				t.Fatalf("best point malformed: %+v", res.Best)
			}
			table := RenderAdaptiveTable(res)
			if !strings.Contains(table, res.Best.Name) {
				t.Fatalf("trace table does not mention the best point %q:\n%s", res.Best.Name, table)
			}
		})
	}
}

// TestAdaptiveEtaFindsInteriorPeak: the committed adaptive-eta preset must
// actually refine — the discretization penalty peaks strictly inside the
// coarse grid, so refinement rounds must evaluate new η values and the
// winner must beat every coarse point.
func TestAdaptiveEtaFindsInteriorPeak(t *testing.T) {
	ap, err := AdaptivePreset("adaptive-eta")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunAdaptive(ap, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("adaptive-eta did not converge")
	}
	if res.Best.Round == 0 {
		t.Fatalf("best η %g already on the coarse grid — refinement found nothing", res.Best.Values[0])
	}
	var coarseBest float64
	for _, pt := range res.Rounds[0].Points {
		if pt.Objective > coarseBest {
			coarseBest = pt.Objective
		}
	}
	if res.Best.Objective <= coarseBest {
		t.Fatalf("refined best %g does not improve on the coarse grid's %g", res.Best.Objective, coarseBest)
	}
}
