package engine

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/timebase"
)

func TestParseShard(t *testing.T) {
	good := map[string]ShardSpec{
		"1/1":   {K: 1, N: 1},
		"2/3":   {K: 2, N: 3},
		"7/7":   {K: 7, N: 7},
		"10/64": {K: 10, N: 64},
	}
	for in, want := range good {
		got, err := ParseShard(in)
		if err != nil {
			t.Errorf("ParseShard(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParseShard(%q) = %v, want %v", in, got, want)
		}
	}
	bad := []string{
		"", "1", "1/", "/3", "a/b", "1/3/5", "1.5/3", "0/0", "0/3", "2/1", "-1/3", "1/-3", "-2/-3", "1 / 3",
	}
	for _, in := range bad {
		if _, err := ParseShard(in); err == nil {
			t.Errorf("ParseShard(%q): want error", in)
		}
	}
}

func TestShardRangePartition(t *testing.T) {
	for _, trials := range []int{0, 1, 2, 3, 5, 7, 16, 100, 101} {
		for _, n := range []int{1, 2, 3, 7, 13} {
			prev := 0
			for k := 1; k <= n; k++ {
				lo, hi := (ShardSpec{K: k, N: n}).Range(trials)
				if lo != prev {
					t.Fatalf("trials=%d n=%d: shard %d starts at %d, want %d (ranges must be contiguous)", trials, n, k, lo, prev)
				}
				if hi < lo {
					t.Fatalf("trials=%d n=%d: shard %d has hi %d < lo %d", trials, n, k, hi, lo)
				}
				prev = hi
			}
			if prev != trials {
				t.Fatalf("trials=%d n=%d: shards cover [0, %d), want [0, %d)", trials, n, prev, trials)
			}
		}
	}
}

// tinySnapshot runs one small scenario as shard k/n and returns the
// snapshot, for merge-validation tests that need realistic inputs.
func tinySnapshot(t *testing.T, sc Scenario, k, n int, mode StreamMode) Snapshot {
	t.Helper()
	snap, err := RunScenariosShard("tiny", []Scenario{sc}, ShardSpec{K: k, N: n}, Options{Workers: 2, Stream: mode})
	if err != nil {
		t.Fatalf("RunScenariosShard %d/%d: %v", k, n, err)
	}
	return snap
}

func tinyScenario(trials int, seed int64) Scenario {
	return Scenario{
		Name:       "tiny",
		Protocol:   ProtocolSpec{Kind: "optimal", Omega: 36 * timebase.Microsecond, Alpha: 1, Eta: 0.02},
		Population: 2,
		Trials:     trials,
		Horizon:    HorizonSpec{WorstMultiple: 3},
		Seed:       seed,
	}
}

func TestMergeSnapshotsValidation(t *testing.T) {
	sc := tinyScenario(9, 7)
	s1 := tinySnapshot(t, sc, 1, 3, StreamOff)
	s2 := tinySnapshot(t, sc, 2, 3, StreamOff)
	s3 := tinySnapshot(t, sc, 3, 3, StreamOff)

	cases := []struct {
		name  string
		snaps []Snapshot
		want  string
	}{
		{"empty", nil, "no snapshots"},
		{"missing shard", []Snapshot{s1, s3}, "all 3 shards"},
		{"duplicate shard", []Snapshot{s1, s2, s2}, "not exactly"},
		{"foreign n", []Snapshot{s1, s2, tinySnapshot(t, sc, 3, 7, StreamOff)}, "not exactly"},
	}
	for _, c := range cases {
		if _, err := MergeSnapshots(c.snaps); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: got %v, want error containing %q", c.name, err, c.want)
		}
	}

	// Mixed runs: same shard shape, different spec → spec-hash mismatch.
	other := tinyScenario(9, 8) // different seed → different hash
	o2 := tinySnapshot(t, other, 2, 3, StreamOff)
	o2.Label = s1.Label
	if _, err := MergeSnapshots([]Snapshot{s1, o2, s3}); err == nil || !strings.Contains(err.Error(), "different runs") {
		t.Errorf("spec-hash mismatch: got %v, want 'different runs' error", err)
	}

	// Version skew is rejected before anything is merged.
	skew := s2
	skew.Codec = "ndshard/2"
	if _, err := MergeSnapshots([]Snapshot{s1, skew, s3}); err == nil || !strings.Contains(err.Error(), "codec") {
		t.Errorf("codec skew: got %v, want codec error", err)
	}

	// The happy path still merges.
	if _, err := MergeSnapshots([]Snapshot{s3, s1, s2}); err != nil {
		t.Errorf("unordered full set: %v", err)
	}
}

// Satellite fix: the pooled streaming counters must refuse to merge
// accumulators with mismatched histogram layouts instead of silently
// corrupting state.
func TestStreamMergeGuards(t *testing.T) {
	a := newStreamAccum(1000, 0, 0)
	b := newStreamAccum(2000, 0, 0) // different horizon → different bin width
	if err := a.merge(b); err == nil || !strings.Contains(err.Error(), "incompatible") {
		t.Errorf("horizon mismatch: got %v, want incompatible-accumulator error", err)
	}
	c := newStreamAccum(1000, 0, 0)
	c.bins = c.bins[:len(c.bins)-1]
	if err := a.merge(c); err == nil || !strings.Contains(err.Error(), "bins") {
		t.Errorf("bin-count mismatch: got %v, want bin-count error", err)
	}
	d := newStreamAccum(1000, 0, 3)
	if err := a.merge(d); err == nil || !strings.Contains(err.Error(), "channels") {
		t.Errorf("channel-count mismatch: got %v, want channel error", err)
	}
	if err := a.merge(newStreamAccum(1000, 0, 0)); err != nil {
		t.Errorf("compatible merge: %v", err)
	}
	if err := a.merge(nil); err != nil {
		t.Errorf("nil merge: %v", err)
	}
}

// The same guard must hold at the snapshot layer: merging shard states
// whose histogram layouts disagree is an error, not corruption.
func TestMergeStreamLayoutMismatch(t *testing.T) {
	sc := tinyScenario(8, 7)
	s1 := tinySnapshot(t, sc, 1, 2, StreamOn)
	s2 := tinySnapshot(t, sc, 2, 2, StreamOn)
	s2.Points[0].Stream.Horizon++ // corrupt the layout, keep identity
	if _, err := MergeSnapshots([]Snapshot{s1, s2}); err == nil || !strings.Contains(err.Error(), "incompatible") {
		t.Errorf("stream layout mismatch: got %v, want incompatible-accumulator error", err)
	}
}

func TestSnapshotDecodeRejections(t *testing.T) {
	sc := tinyScenario(6, 7)
	snap := tinySnapshot(t, sc, 1, 2, StreamOff)
	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, snap); err != nil {
		t.Fatalf("encode: %v", err)
	}
	valid := buf.Bytes()

	if _, err := DecodeSnapshot(bytes.NewReader(valid)); err != nil {
		t.Fatalf("decode of valid snapshot: %v", err)
	}

	cases := map[string][]byte{
		"truncated":      valid[:len(valid)/2],
		"trailing data":  append(append([]byte{}, valid...), []byte("{}")...),
		"version skew":   bytes.Replace(append([]byte{}, valid...), []byte("ndshard/1"), []byte("ndshard/9"), 1),
		"unknown field":  bytes.Replace(append([]byte{}, valid...), []byte(`"codec"`), []byte(`"kodec"`), 1),
		"empty document": []byte("{}"),
		"not json":       []byte("accumulator"),
	}
	for name, data := range cases {
		if _, err := DecodeSnapshot(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: decode accepted corrupted input", name)
		}
	}
}

// An n of 1 must behave as the identity: one shard, one merge, same bytes
// as the direct run.
func TestSingleShardIdentity(t *testing.T) {
	sc := tinyScenario(12, 7)
	aggs, err := RunSuite([]Scenario{sc}, Options{Workers: 2})
	if err != nil {
		t.Fatalf("RunSuite: %v", err)
	}
	direct := SuiteResult{Suite: "tiny", Scenarios: aggs}
	direct.StripRuntime()

	merged, err := MergeSnapshots([]Snapshot{tinySnapshot(t, sc, 1, 1, StreamAuto)})
	if err != nil {
		t.Fatalf("MergeSnapshots: %v", err)
	}
	merged.StripRuntime()

	var a, b bytes.Buffer
	if err := WriteJSON(&a, direct); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&b, merged); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("1/1 shard + merge differs from the direct run")
	}
}
