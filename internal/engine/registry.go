package engine

import (
	"fmt"
	"sort"

	"repro/internal/timebase"
)

// The registry names ready-made scenarios (presets) and ordered scenario
// lists (suites). Presets are constructed afresh on every lookup so
// callers can mutate their copy freely.
//
// The presets absorb the six examples/ programs: each example is now a
// thin wrapper that fetches its preset, runs it through the engine, and
// narrates the result.

const (
	omegaPaper = 36 * timebase.Microsecond  // the paper's evaluation airtime
	omegaBLE   = 128 * timebase.Microsecond // BLE ADV_IND airtime
)

var presets = map[string]func() Scenario{
	// quickstart: the optimal symmetric construction at η = 2 % on a quiet
	// channel — the Monte-Carlo cross-check of Theorem 5.5.
	"quickstart": func() Scenario {
		return Scenario{
			Name:        "quickstart",
			Description: "optimal symmetric pair at η=2%, quiet channel (Theorem 5.5 cross-check)",
			Protocol:    ProtocolSpec{Kind: "optimal", Omega: omegaPaper, Alpha: 1, Eta: 0.02},
			Population:  2,
			Trials:      500,
			Horizon:     HorizonSpec{WorstMultiple: 3},
			Seed:        7,
		}
	},

	// sensornet: the asymmetric sensor/gateway pairing of Theorem 5.7.
	"sensornet": func() Scenario {
		return Scenario{
			Name:        "sensornet",
			Description: "asymmetric pair: 0.5% sensor vs 10% gateway (Theorem 5.7)",
			Protocol:    ProtocolSpec{Kind: "asymmetric", Omega: omegaPaper, Alpha: 1, EtaE: 0.005, EtaF: 0.10},
			Population:  2,
			Trials:      400,
			Horizon:     HorizonSpec{WorstMultiple: 3},
			Seed:        11,
		}
	},

	// lifetime: the η that Theorem 5.5 requires for a 2-second worst case
	// at BLE airtime — the constructive row of the battery-life plan.
	"lifetime": func() Scenario {
		return Scenario{
			Name:        "lifetime",
			Description: "optimal pair at the η for a 2 s worst case, ω=128 µs (battery-plan check)",
			Protocol:    ProtocolSpec{Kind: "optimal", Omega: omegaBLE, Alpha: 1, Eta: 0.016},
			Population:  2,
			Trials:      400,
			Horizon:     HorizonSpec{WorstMultiple: 3},
			Seed:        21,
		}
	},

	// blebeacon: the three standard BLE operating points, advertiser
	// against scanner, with the advDelay jitter real BLE relies on.
	"ble-fast":     func() Scenario { return blePreset("fast") },
	"ble-balanced": func() Scenario { return blePreset("balanced") },
	"ble-lowpower": func() Scenario { return blePreset("lowpower") },

	// ble3: the same operating points with the real 3-channel advertising
	// rotation — each event sends one PDU per channel 37/38/39, the
	// scanner cycles channels per scan interval — so the effective
	// problem is the union of three phase-locked single-channel problems
	// (the paper's Section 7 BLE setting).
	"ble3-fast":     func() Scenario { return ble3Preset("fast") },
	"ble3-lowpower": func() Scenario { return ble3Preset("lowpower") },

	// ble3-crowd / ble3-churn: the multi-node multi-channel workloads on
	// the world kernel — N full BLE devices (each advertising on every
	// channel and scanning the cycle) with per-channel ALOHA collisions
	// and half-duplex radios, statically present or churning in and out.
	"ble3-crowd": func() Scenario {
		return Scenario{
			Name:        "ble3-crowd",
			Description: "10 BLE fast devices, 3-channel rotation, per-channel collisions, half-duplex",
			Protocol:    ProtocolSpec{Kind: "multichannel-group", Omega: omegaBLE, Alpha: 1, Preset: "fast"},
			Population:  10,
			Trials:      40,
			Horizon:     HorizonSpec{WorstMultiple: 6},
			Channel:     ChannelSpec{Collisions: true, HalfDuplex: true},
			Seed:        53,
		}
	},
	"ble3-churn": func() Scenario {
		return Scenario{
			Name:        "ble3-churn",
			Description: "8 churning BLE fast devices, 3-channel rotation: discovery ratio vs contact length",
			Protocol:    ProtocolSpec{Kind: "multichannel-churn", Omega: omegaBLE, Alpha: 1, Preset: "fast"},
			Population:  8,
			Trials:      40,
			Horizon:     HorizonSpec{WorstMultiple: 10},
			// Contacts are judged only when joint presence covers the
			// scanner's full channel cycle (≈ 2.3× the pairwise worst case
			// at the fast operating point), so the stay must comfortably
			// exceed it for bounded contacts to be exercised at all.
			Churn:   &ChurnSpec{StayWorstMultiple: 4},
			Channel: ChannelSpec{Collisions: true, HalfDuplex: true},
			Seed:    57,
		}
	},

	// busynetwork: 20 devices on the ALOHA channel. Raw = the two-device
	// optimum left uncapped; jitter adds BLE-style decorrelation; capped
	// derives the Appendix B channel cap for Pf ≤ 0.1 %.
	"busynetwork-raw": func() Scenario {
		sc := busyPreset()
		sc.Name = "busynetwork-raw"
		sc.Description = "20 devices, two-device optimum, collisions, no jitter"
		sc.Channel.Jitter = 0
		return sc
	},
	"busynetwork-jitter": func() Scenario {
		sc := busyPreset()
		sc.Name = "busynetwork-jitter"
		sc.Description = "20 devices, two-device optimum, collisions, λ/4 jitter"
		return sc
	},
	"busynetwork-capped": func() Scenario {
		sc := busyPreset()
		sc.Name = "busynetwork-capped"
		sc.Description = "20 devices, Appendix B channel cap for Pf ≤ 0.1%, collisions, jitter"
		sc.Protocol = ProtocolSpec{Kind: "constrained", Omega: omegaPaper, Alpha: 1, Eta: 0.05, PF: 0.001}
		return sc
	},

	// churn: mobile devices with bounded contact windows, quiet vs busy.
	"churn-quiet": func() Scenario {
		sc := churnPreset()
		sc.Name = "churn-quiet"
		sc.Description = "10 mobile devices, quiet channel: discovery ratio vs contact length"
		return sc
	},
	"churn-busy": func() Scenario {
		sc := churnPreset()
		sc.Name = "churn-busy"
		sc.Description = "10 mobile devices, ALOHA channel, half-duplex, ω jitter"
		sc.Channel = ChannelSpec{Collisions: true, HalfDuplex: true, Jitter: omegaPaper}
		return sc
	},
}

func blePreset(preset string) Scenario {
	// Horizon scales with each preset's own worst case (3×), so even the
	// low-power point (worst case ≈ 173 s) is measured uncensored.
	return Scenario{
		Name:        "ble-" + preset,
		Description: fmt.Sprintf("BLE %s advertiser vs scanner with advDelay jitter", preset),
		Protocol:    ProtocolSpec{Kind: "ble", Omega: omegaBLE, Alpha: 1, Preset: preset},
		Population:  2,
		Trials:      300,
		Horizon:     HorizonSpec{WorstMultiple: 3},
		Channel:     ChannelSpec{Jitter: 10 * timebase.Millisecond},
		Seed:        3,
	}
}

func ble3Preset(preset string) Scenario {
	return Scenario{
		Name:        "ble3-" + preset,
		Description: fmt.Sprintf("BLE %s advertiser vs scanner over 3 advertising channels", preset),
		Protocol:    ProtocolSpec{Kind: "multichannel", Omega: omegaBLE, Alpha: 1, Preset: preset},
		Population:  2,
		Trials:      300,
		Horizon:     HorizonSpec{WorstMultiple: 3},
		Seed:        13,
	}
}

func busyPreset() Scenario {
	// At η = 5 % the optimal beacon gap is λ = ω/β = 36/0.025 = 1440 µs;
	// λ/4 = 360 µs of jitter decorrelates periodic collision patterns.
	return Scenario{
		Protocol:   ProtocolSpec{Kind: "optimal", Omega: omegaPaper, Alpha: 1, Eta: 0.05},
		Population: 20,
		Trials:     25,
		Horizon:    HorizonSpec{WorstMultiple: 12},
		Channel:    ChannelSpec{Collisions: true, HalfDuplex: true, Jitter: 360 * timebase.Microsecond},
		Seed:       2024,
	}
}

func churnPreset() Scenario {
	return Scenario{
		Protocol:   ProtocolSpec{Kind: "optimal", Omega: omegaPaper, Alpha: 1, Eta: 0.05},
		Population: 10,
		Trials:     60,
		Horizon:    HorizonSpec{WorstMultiple: 8},
		Churn:      &ChurnSpec{StayWorstMultiple: 2},
		Seed:       99,
	}
}

// fig7Suite is the simulation-flavored Figure 7 reproduction: how the
// uncapped two-device optimum degrades with population size S on the
// collision channel, against the Appendix B capped design at the same
// total budget.
func fig7Suite() []Scenario {
	var out []Scenario
	for _, s := range []int{5, 10, 20} {
		raw := busyPreset()
		raw.Name = fmt.Sprintf("fig7-raw-s%d", s)
		raw.Description = fmt.Sprintf("uncapped optimum, S=%d, collisions+jitter", s)
		raw.Population = s
		raw.Trials = 40
		out = append(out, raw)

		capped := busyPreset()
		capped.Name = fmt.Sprintf("fig7-capped-s%d", s)
		capped.Description = fmt.Sprintf("Appendix B cap (Pf ≤ 0.1%%), S=%d, collisions+jitter", s)
		capped.Protocol = ProtocolSpec{Kind: "constrained", Omega: omegaPaper, Alpha: 1, Eta: 0.05, PF: 0.001}
		capped.Population = s
		capped.Trials = 40
		out = append(out, capped)
	}
	return out
}

// protocolsSuite compares the classic constructions against the optimal
// one at matched slot/duty parameters on a quiet channel. The slotted
// protocols' stripped one-way schedules (beacons vs windows only) are not
// deterministic under arbitrary phase offsets, so their horizons scale
// with the schedule period instead of the (undefined) exact worst case.
func protocolsSuite() []Scenario {
	slot := 5 * timebase.Millisecond
	base := func(name, desc string, h HorizonSpec, p ProtocolSpec) Scenario {
		return Scenario{
			Name:        name,
			Description: desc,
			Protocol:    p,
			Population:  2,
			Trials:      200,
			Horizon:     h,
			Seed:        17,
		}
	}
	worst := HorizonSpec{WorstMultiple: 2}
	period := HorizonSpec{PeriodMultiple: 3}
	return []Scenario{
		base("proto-optimal", "optimal symmetric at η=5%", worst,
			ProtocolSpec{Kind: "optimal", Omega: omegaPaper, Alpha: 1, Eta: 0.05}),
		base("proto-pi-optimal", "optimal construction as PI parameters, η=5%", worst,
			ProtocolSpec{Kind: "pi-optimal", Omega: omegaPaper, Alpha: 1, Eta: 0.05}),
		base("proto-disco", "Disco(37,43), 5 ms slots", period,
			ProtocolSpec{Kind: "disco", Omega: omegaPaper, Alpha: 1, P1: 37, P2: 43, SlotLen: slot}),
		base("proto-uconnect", "U-Connect(31), 5 ms slots", period,
			ProtocolSpec{Kind: "uconnect", Omega: omegaPaper, Alpha: 1, P: 31, SlotLen: slot}),
		base("proto-searchlight", "Searchlight-S(16), 5 ms slots", period,
			ProtocolSpec{Kind: "searchlight", Omega: omegaPaper, Alpha: 1, T: 16, Striped: true, SlotLen: slot}),
		base("proto-diffcode", "Diffcode(q=7), 5 ms slots", period,
			ProtocolSpec{Kind: "diffcode", Omega: omegaPaper, Alpha: 1, Q: 7, SlotLen: slot}),
	}
}

// slotGridSuite runs the Table 1 slotted protocols in the slot domain —
// aligned slot grids, discovery in the first shared active slot — the
// model the slotted literature states its guarantees in. Slot alignment
// makes every schedule deterministic, so horizons scale with the exact
// worst case (unlike the continuous-time protocolsSuite, whose stripped
// one-way schedules are not deterministic under arbitrary offsets).
func slotGridSuite() []Scenario {
	slot := 5 * timebase.Millisecond
	base := func(name, desc string, p ProtocolSpec) Scenario {
		return Scenario{
			Name:        name,
			Description: desc,
			Protocol:    p,
			Population:  2,
			Trials:      200,
			Horizon:     HorizonSpec{WorstMultiple: 2},
			Seed:        19,
		}
	}
	return []Scenario{
		base("slot-disco", "Disco(37,43) on an aligned 5 ms slot grid",
			ProtocolSpec{Kind: "slot-disco", Omega: omegaPaper, Alpha: 1, P1: 37, P2: 43, SlotLen: slot}),
		base("slot-uconnect", "U-Connect(31) on an aligned 5 ms slot grid",
			ProtocolSpec{Kind: "slot-uconnect", Omega: omegaPaper, Alpha: 1, P: 31, SlotLen: slot}),
		base("slot-searchlight", "Searchlight(16) on an aligned 5 ms slot grid",
			ProtocolSpec{Kind: "slot-searchlight", Omega: omegaPaper, Alpha: 1, T: 16, SlotLen: slot}),
		base("slot-diffcode", "Diffcode(q=7) on an aligned 5 ms slot grid",
			ProtocolSpec{Kind: "slot-diffcode", Omega: omegaPaper, Alpha: 1, Q: 7, SlotLen: slot}),
	}
}

// Sweep presets reproduce the paper's curve-shaped results: worst case and
// bound ratio swept over duty-cycle η (the Fig. 6 axis) and population S on
// the collision channel (the Fig. 7/8 axis).
var sweepPresets = map[string]func() SweepSpec{
	// sweep-eta: the optimal symmetric construction across the paper's
	// duty-cycle range — each point's ExactWorst/Bound ratio traces how
	// tightly Theorem 5.5 is achieved as η varies.
	"sweep-eta": func() SweepSpec {
		return SweepSpec{
			Name:        "sweep-eta",
			Description: "optimal symmetric pair: worst case and bound ratio vs duty-cycle η",
			Base: Scenario{
				Protocol:   ProtocolSpec{Kind: "optimal", Omega: omegaPaper, Alpha: 1},
				Population: 2,
				Trials:     256,
				Horizon:    HorizonSpec{WorstMultiple: 3},
				Seed:       31,
			},
			Axes: []SweepAxis{
				{Field: "protocol.eta", Values: []float64{0.005, 0.01, 0.02, 0.05, 0.10}},
			},
		}
	},

	// sweep-population: the uncapped two-device optimum degrading with
	// population on the ALOHA channel — the raw curve of Figure 7.
	"sweep-population": func() SweepSpec {
		base := busyPreset()
		base.Trials = 24
		return SweepSpec{
			Name:        "sweep-population",
			Description: "uncapped optimum vs population S, collisions + jitter",
			Base:        base,
			Axes: []SweepAxis{
				{Field: "population", Values: []float64{5, 10, 15, 20}},
			},
		}
	},

	// sweep-population-capped: the same S axis under the Appendix B
	// channel cap — the counterpart curve Figure 7 plots against the raw
	// optimum.
	"sweep-population-capped": func() SweepSpec {
		base := busyPreset()
		base.Trials = 24
		base.Protocol = ProtocolSpec{Kind: "constrained", Omega: omegaPaper, Alpha: 1, Eta: 0.05, PF: 0.001}
		return SweepSpec{
			Name:        "sweep-population-capped",
			Description: "Appendix B capped design (Pf ≤ 0.1%) vs population S, collisions + jitter",
			Base:        base,
			Axes: []SweepAxis{
				{Field: "population", Values: []float64{5, 10, 15, 20}},
			},
		}
	},

	// sweep-channels: the BLE fast operating point with the per-event
	// channel rotation swept from 1 (the single-channel idealization most
	// of the ND literature analyzes) to BLE's 3 — the cost of rotating a
	// fixed advertising budget across channels the scanner visits only a
	// third of the time.
	"sweep-channels": func() SweepSpec {
		return SweepSpec{
			Name:        "sweep-channels",
			Description: "BLE fast advertiser vs scanner: discovery latency vs advertising-channel count",
			Base: Scenario{
				Protocol:   ProtocolSpec{Kind: "multichannel", Omega: omegaBLE, Alpha: 1, Preset: "fast"},
				Population: 2,
				Trials:     256,
				Horizon:    HorizonSpec{WorstMultiple: 3},
				Seed:       41,
			},
			Axes: []SweepAxis{
				{Field: "protocol.channels", Values: []float64{1, 2, 3}},
			},
		}
	},

	// sweep-density: the multi-node multi-channel crowd on a fixed
	// population grid — kept as the coarse baseline; the adaptive-density
	// preset refines the same axis adaptively where the objective moves
	// fastest (the group/multi-channel regime of the Karowski-style
	// multi-channel discovery analyses).
	"sweep-density": func() SweepSpec {
		return SweepSpec{
			Name:        "sweep-density",
			Description: "BLE fast crowd, 3-channel rotation, fixed population grid (adaptive-density refines it)",
			Base: Scenario{
				Protocol:   ProtocolSpec{Kind: "multichannel-group", Omega: omegaBLE, Alpha: 1, Preset: "fast"},
				Population: 4,
				Trials:     16,
				Horizon:    HorizonSpec{WorstMultiple: 6},
				Channel:    ChannelSpec{Collisions: true, HalfDuplex: true},
				Seed:       61,
			},
			Axes: []SweepAxis{
				{Field: "population", Values: []float64{4, 8, 12, 16}},
			},
		}
	},

	// sweep-eta-population: a two-axis grid (η × S) on the collision
	// channel — the cartesian-product smoke sweep.
	"sweep-eta-population": func() SweepSpec {
		base := busyPreset()
		base.Trials = 12
		return SweepSpec{
			Name:        "sweep-eta-population",
			Description: "duty-cycle × population grid on the collision channel",
			Base:        base,
			Axes: []SweepAxis{
				{Field: "protocol.eta", Values: []float64{0.02, 0.05}},
				{Field: "population", Values: []float64{5, 10}},
			},
		}
	},
}

// Adaptive presets reproduce the paper's frontier-shaped results by
// searching the parameter space coarse-to-fine instead of on a fixed grid.
var adaptivePresets = map[string]func() AdaptiveSpec{
	// adaptive-eta: the optimality frontier of Theorem 5.5, searched. The
	// symmetric construction rounds its parameters to integers, so the
	// achieved worst case strays above the continuous bound by an amount
	// that wiggles with η; the search refines the coarse Fig. 6 grid
	// around the η where the discretization penalty (bound_ratio) peaks.
	"adaptive-eta": func() AdaptiveSpec {
		return AdaptiveSpec{
			Name:        "adaptive-eta",
			Description: "optimal symmetric pair: refine the η curve around the worst discretization penalty",
			Base: Scenario{
				Protocol:   ProtocolSpec{Kind: "optimal", Omega: omegaPaper, Alpha: 1},
				Population: 2,
				Trials:     64,
				Horizon:    HorizonSpec{WorstMultiple: 3},
				Seed:       31,
			},
			Axes: []SweepAxis{
				{Field: "protocol.eta", Values: []float64{0.005, 0.01, 0.02, 0.05, 0.10}},
			},
			Objective: "bound_ratio",
			Goal:      "max",
			Rounds:    4,
			Budget:    9,
			Tolerance: 0.02,
		}
	},

	// adaptive-density: the adaptive replacement for the fixed
	// sweep-density grid — refine the BLE crowd's population axis toward
	// the density where per-channel collisions bite hardest, stopping when
	// no untried population is left in the bracket.
	"adaptive-density": func() AdaptiveSpec {
		return AdaptiveSpec{
			Name:        "adaptive-density",
			Description: "BLE fast crowd, 3-channel rotation: refine population toward the worst collision rate",
			Base: Scenario{
				Protocol:   ProtocolSpec{Kind: "multichannel-group", Omega: omegaBLE, Alpha: 1, Preset: "fast"},
				Population: 4,
				Trials:     16,
				Horizon:    HorizonSpec{WorstMultiple: 6},
				Channel:    ChannelSpec{Collisions: true, HalfDuplex: true},
				Seed:       61,
			},
			Axes: []SweepAxis{
				{Field: "population", Values: []float64{4, 8, 12, 16}},
			},
			Objective: "collision_rate",
			Goal:      "max",
			Rounds:    3,
			Budget:    4,
			Tolerance: 0.05,
		}
	},
}

// AdaptivePreset returns a fresh copy of the named adaptive sweep.
func AdaptivePreset(name string) (AdaptiveSpec, error) {
	f, ok := adaptivePresets[name]
	if !ok {
		return AdaptiveSpec{}, fmt.Errorf("engine: unknown adaptive sweep %q (have %v)", name, AdaptivePresets())
	}
	return f(), nil
}

// AdaptivePresets lists the adaptive preset names, sorted.
func AdaptivePresets() []string {
	return sortedKeys(adaptivePresets)
}

// SweepPreset returns a fresh copy of the named sweep.
func SweepPreset(name string) (SweepSpec, error) {
	f, ok := sweepPresets[name]
	if !ok {
		return SweepSpec{}, fmt.Errorf("engine: unknown sweep %q (have %v)", name, SweepPresets())
	}
	return f(), nil
}

// SweepPresets lists the sweep preset names, sorted.
func SweepPresets() []string {
	names := make([]string, 0, len(sweepPresets))
	for n := range sweepPresets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

var suites = map[string]func() []Scenario{
	"paper-fig7": fig7Suite,
	"protocols":  protocolsSuite,
	"slotgrid":   slotGridSuite,
	"multichannel": func() []Scenario {
		return []Scenario{presets["ble3-fast"](), presets["ble3-lowpower"]()}
	},
	"multichannel-group": func() []Scenario {
		return []Scenario{presets["ble3-crowd"](), presets["ble3-churn"]()}
	},
	"examples": func() []Scenario {
		names := []string{
			"quickstart", "sensornet", "lifetime",
			"ble-fast", "ble-balanced", "ble-lowpower",
			"busynetwork-raw", "busynetwork-jitter", "busynetwork-capped",
			"churn-quiet", "churn-busy",
		}
		out := make([]Scenario, 0, len(names))
		for _, n := range names {
			out = append(out, presets[n]())
		}
		return out
	},
}

// Preset returns a fresh copy of the named scenario.
func Preset(name string) (Scenario, error) {
	f, ok := presets[name]
	if !ok {
		return Scenario{}, fmt.Errorf("engine: unknown preset %q (have %v)", name, Presets())
	}
	return f(), nil
}

// Presets lists the preset names, sorted.
func Presets() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Suite returns fresh copies of the named suite's scenarios, in order.
func Suite(name string) ([]Scenario, error) {
	f, ok := suites[name]
	if !ok {
		return nil, fmt.Errorf("engine: unknown suite %q (have %v)", name, Suites())
	}
	return f(), nil
}

// Suites lists the suite names, sorted.
func Suites() []string {
	names := make([]string, 0, len(suites))
	for n := range suites {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// checkRegistry validates the preset namespaces at startup: a scenario
// preset, suite, sweep or adaptive-sweep name may appear in only one
// namespace (ndscen resolves all four by name, and a collision would make
// -list ambiguous and shadow one entry), every preset must build an entry
// whose self-reported name matches its registry key (the golden harness and
// the CLI both join on it), and a suite must not contain two scenarios with
// the same name (aggregates would be indistinguishable in every report).
func checkRegistry(
	scenarioPresets map[string]func() Scenario,
	suitePresets map[string]func() []Scenario,
	sweeps map[string]func() SweepSpec,
	adaptives map[string]func() AdaptiveSpec,
) error {
	owner := make(map[string]string)
	claim := func(name, ns string) error {
		if name == "" {
			return fmt.Errorf("engine: registry has an unnamed %s", ns)
		}
		if prev, ok := owner[name]; ok {
			return fmt.Errorf("engine: registry name %q registered as both %s and %s", name, prev, ns)
		}
		owner[name] = ns
		return nil
	}
	// Deterministic iteration so a broken registry always panics with the
	// same message.
	for _, name := range sortedKeys(scenarioPresets) {
		if err := claim(name, "scenario preset"); err != nil {
			return err
		}
		if sc := scenarioPresets[name](); sc.Name != name {
			return fmt.Errorf("engine: scenario preset %q builds a scenario named %q", name, sc.Name)
		}
	}
	for _, name := range sortedKeys(suitePresets) {
		if err := claim(name, "suite"); err != nil {
			return err
		}
		seen := make(map[string]bool)
		for _, sc := range suitePresets[name]() {
			if seen[sc.Name] {
				return fmt.Errorf("engine: suite %q contains two scenarios named %q", name, sc.Name)
			}
			seen[sc.Name] = true
		}
	}
	for _, name := range sortedKeys(sweeps) {
		if err := claim(name, "sweep preset"); err != nil {
			return err
		}
		if sp := sweeps[name](); sp.Name != name {
			return fmt.Errorf("engine: sweep preset %q builds a sweep named %q", name, sp.Name)
		}
	}
	for _, name := range sortedKeys(adaptives) {
		if err := claim(name, "adaptive preset"); err != nil {
			return err
		}
		ap := adaptives[name]()
		if ap.Name != name {
			return fmt.Errorf("engine: adaptive preset %q builds a spec named %q", name, ap.Name)
		}
		// Adaptive specs generate their grids at run time, so a broken
		// preset would otherwise surface only when first run.
		if err := ap.Validate(); err != nil {
			return fmt.Errorf("engine: adaptive preset %q: %w", name, err)
		}
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	if err := checkRegistry(presets, suites, sweepPresets, adaptivePresets); err != nil {
		panic(fmt.Sprintf("invalid preset registry: %v", err))
	}
}
