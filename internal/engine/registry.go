package engine

import (
	"fmt"
	"sort"

	"repro/internal/timebase"
)

// The registry names ready-made scenarios (presets) and ordered scenario
// lists (suites). Presets are constructed afresh on every lookup so
// callers can mutate their copy freely.
//
// The presets absorb the six examples/ programs: each example is now a
// thin wrapper that fetches its preset, runs it through the engine, and
// narrates the result.

const (
	omegaPaper = 36 * timebase.Microsecond  // the paper's evaluation airtime
	omegaBLE   = 128 * timebase.Microsecond // BLE ADV_IND airtime
)

var presets = map[string]func() Scenario{
	// quickstart: the optimal symmetric construction at η = 2 % on a quiet
	// channel — the Monte-Carlo cross-check of Theorem 5.5.
	"quickstart": func() Scenario {
		return Scenario{
			Name:        "quickstart",
			Description: "optimal symmetric pair at η=2%, quiet channel (Theorem 5.5 cross-check)",
			Protocol:    ProtocolSpec{Kind: "optimal", Omega: omegaPaper, Alpha: 1, Eta: 0.02},
			Population:  2,
			Trials:      500,
			Horizon:     HorizonSpec{WorstMultiple: 3},
			Seed:        7,
		}
	},

	// sensornet: the asymmetric sensor/gateway pairing of Theorem 5.7.
	"sensornet": func() Scenario {
		return Scenario{
			Name:        "sensornet",
			Description: "asymmetric pair: 0.5% sensor vs 10% gateway (Theorem 5.7)",
			Protocol:    ProtocolSpec{Kind: "asymmetric", Omega: omegaPaper, Alpha: 1, EtaE: 0.005, EtaF: 0.10},
			Population:  2,
			Trials:      400,
			Horizon:     HorizonSpec{WorstMultiple: 3},
			Seed:        11,
		}
	},

	// lifetime: the η that Theorem 5.5 requires for a 2-second worst case
	// at BLE airtime — the constructive row of the battery-life plan.
	"lifetime": func() Scenario {
		return Scenario{
			Name:        "lifetime",
			Description: "optimal pair at the η for a 2 s worst case, ω=128 µs (battery-plan check)",
			Protocol:    ProtocolSpec{Kind: "optimal", Omega: omegaBLE, Alpha: 1, Eta: 0.016},
			Population:  2,
			Trials:      400,
			Horizon:     HorizonSpec{WorstMultiple: 3},
			Seed:        21,
		}
	},

	// blebeacon: the three standard BLE operating points, advertiser
	// against scanner, with the advDelay jitter real BLE relies on.
	"ble-fast":     func() Scenario { return blePreset("fast") },
	"ble-balanced": func() Scenario { return blePreset("balanced") },
	"ble-lowpower": func() Scenario { return blePreset("lowpower") },

	// busynetwork: 20 devices on the ALOHA channel. Raw = the two-device
	// optimum left uncapped; jitter adds BLE-style decorrelation; capped
	// derives the Appendix B channel cap for Pf ≤ 0.1 %.
	"busynetwork-raw": func() Scenario {
		sc := busyPreset()
		sc.Name = "busynetwork-raw"
		sc.Description = "20 devices, two-device optimum, collisions, no jitter"
		sc.Channel.Jitter = 0
		return sc
	},
	"busynetwork-jitter": func() Scenario {
		sc := busyPreset()
		sc.Name = "busynetwork-jitter"
		sc.Description = "20 devices, two-device optimum, collisions, λ/4 jitter"
		return sc
	},
	"busynetwork-capped": func() Scenario {
		sc := busyPreset()
		sc.Name = "busynetwork-capped"
		sc.Description = "20 devices, Appendix B channel cap for Pf ≤ 0.1%, collisions, jitter"
		sc.Protocol = ProtocolSpec{Kind: "constrained", Omega: omegaPaper, Alpha: 1, Eta: 0.05, PF: 0.001}
		return sc
	},

	// churn: mobile devices with bounded contact windows, quiet vs busy.
	"churn-quiet": func() Scenario {
		sc := churnPreset()
		sc.Name = "churn-quiet"
		sc.Description = "10 mobile devices, quiet channel: discovery ratio vs contact length"
		return sc
	},
	"churn-busy": func() Scenario {
		sc := churnPreset()
		sc.Name = "churn-busy"
		sc.Description = "10 mobile devices, ALOHA channel, half-duplex, ω jitter"
		sc.Channel = ChannelSpec{Collisions: true, HalfDuplex: true, Jitter: omegaPaper}
		return sc
	},
}

func blePreset(preset string) Scenario {
	// Horizon scales with each preset's own worst case (3×), so even the
	// low-power point (worst case ≈ 173 s) is measured uncensored.
	return Scenario{
		Name:        "ble-" + preset,
		Description: fmt.Sprintf("BLE %s advertiser vs scanner with advDelay jitter", preset),
		Protocol:    ProtocolSpec{Kind: "ble", Omega: omegaBLE, Alpha: 1, Preset: preset},
		Population:  2,
		Trials:      300,
		Horizon:     HorizonSpec{WorstMultiple: 3},
		Channel:     ChannelSpec{Jitter: 10 * timebase.Millisecond},
		Seed:        3,
	}
}

func busyPreset() Scenario {
	// At η = 5 % the optimal beacon gap is λ = ω/β = 36/0.025 = 1440 µs;
	// λ/4 = 360 µs of jitter decorrelates periodic collision patterns.
	return Scenario{
		Protocol:   ProtocolSpec{Kind: "optimal", Omega: omegaPaper, Alpha: 1, Eta: 0.05},
		Population: 20,
		Trials:     25,
		Horizon:    HorizonSpec{WorstMultiple: 12},
		Channel:    ChannelSpec{Collisions: true, HalfDuplex: true, Jitter: 360 * timebase.Microsecond},
		Seed:       2024,
	}
}

func churnPreset() Scenario {
	return Scenario{
		Protocol:   ProtocolSpec{Kind: "optimal", Omega: omegaPaper, Alpha: 1, Eta: 0.05},
		Population: 10,
		Trials:     60,
		Horizon:    HorizonSpec{WorstMultiple: 8},
		Churn:      &ChurnSpec{StayWorstMultiple: 2},
		Seed:       99,
	}
}

// fig7Suite is the simulation-flavored Figure 7 reproduction: how the
// uncapped two-device optimum degrades with population size S on the
// collision channel, against the Appendix B capped design at the same
// total budget.
func fig7Suite() []Scenario {
	var out []Scenario
	for _, s := range []int{5, 10, 20} {
		raw := busyPreset()
		raw.Name = fmt.Sprintf("fig7-raw-s%d", s)
		raw.Description = fmt.Sprintf("uncapped optimum, S=%d, collisions+jitter", s)
		raw.Population = s
		raw.Trials = 40
		out = append(out, raw)

		capped := busyPreset()
		capped.Name = fmt.Sprintf("fig7-capped-s%d", s)
		capped.Description = fmt.Sprintf("Appendix B cap (Pf ≤ 0.1%%), S=%d, collisions+jitter", s)
		capped.Protocol = ProtocolSpec{Kind: "constrained", Omega: omegaPaper, Alpha: 1, Eta: 0.05, PF: 0.001}
		capped.Population = s
		capped.Trials = 40
		out = append(out, capped)
	}
	return out
}

// protocolsSuite compares the classic constructions against the optimal
// one at matched slot/duty parameters on a quiet channel.
func protocolsSuite() []Scenario {
	slot := 5 * timebase.Millisecond
	base := func(name, desc string, p ProtocolSpec) Scenario {
		return Scenario{
			Name:        name,
			Description: desc,
			Protocol:    p,
			Population:  2,
			Trials:      200,
			Horizon:     HorizonSpec{WorstMultiple: 2},
			Seed:        17,
		}
	}
	return []Scenario{
		base("proto-optimal", "optimal symmetric at η=5%",
			ProtocolSpec{Kind: "optimal", Omega: omegaPaper, Alpha: 1, Eta: 0.05}),
		base("proto-pi-optimal", "optimal construction as PI parameters, η=5%",
			ProtocolSpec{Kind: "pi-optimal", Omega: omegaPaper, Alpha: 1, Eta: 0.05}),
		base("proto-disco", "Disco(37,43), 5 ms slots",
			ProtocolSpec{Kind: "disco", Omega: omegaPaper, Alpha: 1, P1: 37, P2: 43, SlotLen: slot}),
		base("proto-uconnect", "U-Connect(31), 5 ms slots",
			ProtocolSpec{Kind: "uconnect", Omega: omegaPaper, Alpha: 1, P: 31, SlotLen: slot}),
		base("proto-searchlight", "Searchlight-S(16), 5 ms slots",
			ProtocolSpec{Kind: "searchlight", Omega: omegaPaper, Alpha: 1, T: 16, Striped: true, SlotLen: slot}),
		base("proto-diffcode", "Diffcode(q=7), 5 ms slots",
			ProtocolSpec{Kind: "diffcode", Omega: omegaPaper, Alpha: 1, Q: 7, SlotLen: slot}),
	}
}

var suites = map[string]func() []Scenario{
	"paper-fig7": fig7Suite,
	"protocols":  protocolsSuite,
	"examples": func() []Scenario {
		names := []string{
			"quickstart", "sensornet", "lifetime",
			"ble-fast", "ble-balanced", "ble-lowpower",
			"busynetwork-raw", "busynetwork-jitter", "busynetwork-capped",
			"churn-quiet", "churn-busy",
		}
		out := make([]Scenario, 0, len(names))
		for _, n := range names {
			out = append(out, presets[n]())
		}
		return out
	},
}

// Preset returns a fresh copy of the named scenario.
func Preset(name string) (Scenario, error) {
	f, ok := presets[name]
	if !ok {
		return Scenario{}, fmt.Errorf("engine: unknown preset %q (have %v)", name, Presets())
	}
	return f(), nil
}

// Presets lists the preset names, sorted.
func Presets() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Suite returns fresh copies of the named suite's scenarios, in order.
func Suite(name string) ([]Scenario, error) {
	f, ok := suites[name]
	if !ok {
		return nil, fmt.Errorf("engine: unknown suite %q (have %v)", name, Suites())
	}
	return f(), nil
}

// Suites lists the suite names, sorted.
func Suites() []string {
	names := make([]string, 0, len(suites))
	for n := range suites {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
