package interval

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/timebase"
)

func TestIntervalBasics(t *testing.T) {
	iv := Interval{3, 7}
	if iv.Len() != 4 {
		t.Errorf("Len = %d, want 4", iv.Len())
	}
	if iv.Empty() {
		t.Error("non-empty interval reported Empty")
	}
	if !iv.Contains(3) || iv.Contains(7) || !iv.Contains(6) || iv.Contains(2) {
		t.Error("Contains violates half-open semantics")
	}
	if (Interval{5, 5}).Empty() != true {
		t.Error("zero-length interval not Empty")
	}
}

func TestNewSetPanicsOnBadPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSet(0) did not panic")
		}
	}()
	NewSet(0)
}

func TestSetAddSimple(t *testing.T) {
	s := NewSet(100)
	s.Add(10, 5)
	s.Add(20, 5)
	want := []Interval{{10, 15}, {20, 25}}
	got := s.Intervals()
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("Intervals = %v, want %v", got, want)
	}
	if s.Measure() != 10 {
		t.Errorf("Measure = %d, want 10", s.Measure())
	}
}

func TestSetAddMergesOverlapping(t *testing.T) {
	s := NewSet(100)
	s.Add(10, 10)
	s.Add(15, 10) // overlaps [10,20)
	got := s.Intervals()
	if len(got) != 1 || got[0] != (Interval{10, 25}) {
		t.Errorf("Intervals = %v, want [[10,25)]", got)
	}
}

func TestSetAddMergesAdjacent(t *testing.T) {
	s := NewSet(100)
	s.Add(10, 5)
	s.Add(15, 5) // touches at 15
	got := s.Intervals()
	if len(got) != 1 || got[0] != (Interval{10, 20}) {
		t.Errorf("adjacent intervals not merged: %v", got)
	}
}

func TestSetAddWraps(t *testing.T) {
	s := NewSet(100)
	s.Add(95, 10) // wraps to [95,100) + [0,5)
	got := s.Intervals()
	if len(got) != 2 || got[0] != (Interval{0, 5}) || got[1] != (Interval{95, 100}) {
		t.Errorf("wrap split wrong: %v", got)
	}
	if !s.Contains(97) || !s.Contains(2) || s.Contains(5) || s.Contains(50) {
		t.Error("Contains wrong after wrap")
	}
}

func TestSetAddNegativeStart(t *testing.T) {
	s := NewSet(100)
	s.Add(-3, 5) // = [97,100) + [0,2)
	if !s.Contains(98) || !s.Contains(1) || s.Contains(2) {
		t.Errorf("negative start handled wrong: %v", s.Intervals())
	}
}

func TestSetAddFullCircle(t *testing.T) {
	s := NewSet(50)
	s.Add(30, 50)
	if !s.IsFull() {
		t.Error("length == period should cover the circle")
	}
	s2 := NewSet(50)
	s2.Add(10, 1000)
	if !s2.IsFull() {
		t.Error("length > period should cover the circle")
	}
}

func TestSetAddIgnoresNonPositive(t *testing.T) {
	s := NewSet(50)
	s.Add(10, 0)
	s.Add(10, -5)
	if !s.IsEmpty() {
		t.Errorf("non-positive lengths should be ignored: %v", s.Intervals())
	}
}

func TestSetGaps(t *testing.T) {
	s := NewSet(100)
	s.Add(10, 10)
	s.Add(50, 10)
	gaps := s.Gaps()
	want := []Interval{{0, 10}, {20, 50}, {60, 100}}
	if len(gaps) != len(want) {
		t.Fatalf("Gaps = %v, want %v", gaps, want)
	}
	for i := range want {
		if gaps[i] != want[i] {
			t.Errorf("gap %d = %v, want %v", i, gaps[i], want[i])
		}
	}
}

func TestSetGapsEmptyAndFull(t *testing.T) {
	s := NewSet(100)
	if g := s.Gaps(); len(g) != 1 || g[0] != (Interval{0, 100}) {
		t.Errorf("empty set gaps = %v", g)
	}
	s.Add(0, 100)
	if g := s.Gaps(); len(g) != 0 {
		t.Errorf("full set gaps = %v", g)
	}
}

func TestComplementInvolution(t *testing.T) {
	s := NewSet(100)
	s.Add(5, 10)
	s.Add(40, 20)
	c := s.Complement()
	if c.Measure() != 100-s.Measure() {
		t.Errorf("complement measure %d, want %d", c.Measure(), 100-s.Measure())
	}
	cc := c.Complement()
	if !cc.Equal(s) {
		t.Errorf("double complement %v != original %v", cc, s)
	}
}

func TestUnionWith(t *testing.T) {
	a := NewSet(100)
	a.Add(0, 10)
	b := NewSet(100)
	b.Add(5, 20)
	a.UnionWith(b)
	got := a.Intervals()
	if len(got) != 1 || got[0] != (Interval{0, 25}) {
		t.Errorf("union = %v, want [[0,25)]", got)
	}
}

func TestUnionWithMismatchedPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched-period union did not panic")
		}
	}()
	NewSet(10).UnionWith(NewSet(20))
}

func TestCloneIsIndependent(t *testing.T) {
	a := NewSet(100)
	a.Add(0, 10)
	b := a.Clone()
	b.Add(50, 10)
	if a.Measure() != 10 || b.Measure() != 20 {
		t.Error("Clone shares state with original")
	}
}

// Property: Set built from random adds agrees with a brute-force boolean array.
func TestSetMatchesBruteForce(t *testing.T) {
	const period = 97
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSet(period)
		ref := make([]bool, period)
		for i := 0; i < int(n%24); i++ {
			lo := timebase.Ticks(rng.Intn(4 * period)).Mod(period)
			length := timebase.Ticks(rng.Intn(period + 10))
			s.Add(lo, length)
			for k := timebase.Ticks(0); k < length && k < period; k++ {
				ref[(lo+k)%period] = true
			}
		}
		var refMeasure timebase.Ticks
		for p := timebase.Ticks(0); p < period; p++ {
			if ref[p] {
				refMeasure++
			}
			if s.Contains(p) != ref[p] {
				return false
			}
		}
		return s.Measure() == refMeasure
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSweepMinEmpty(t *testing.T) {
	segs, covered := SweepMin(100, nil)
	if covered {
		t.Error("empty input reported covered")
	}
	if len(segs) != 1 || segs[0].Count != 0 || segs[0].Iv != (Interval{0, 100}) {
		t.Errorf("segs = %v", segs)
	}
}

func TestSweepMinSingle(t *testing.T) {
	segs, covered := SweepMin(100, []Labeled{{Lo: 10, Length: 20, Label: 7}})
	if covered {
		t.Error("partial coverage reported covered")
	}
	// Expect [0,10) uncovered, [10,30) label 7, [30,100) uncovered.
	if len(segs) != 3 {
		t.Fatalf("segments: %v", segs)
	}
	if segs[1].Label != 7 || segs[1].Count != 1 || segs[1].Iv != (Interval{10, 30}) {
		t.Errorf("middle segment: %+v", segs[1])
	}
}

func TestSweepMinPicksMinimumLabel(t *testing.T) {
	segs, covered := SweepMin(100, []Labeled{
		{Lo: 0, Length: 100, Label: 50},
		{Lo: 20, Length: 10, Label: 5},
	})
	if !covered {
		t.Fatal("full coverage not detected")
	}
	for _, seg := range segs {
		want := int64(50)
		if seg.Iv.Lo >= 20 && seg.Iv.Hi <= 30 {
			want = 5
		}
		if seg.Label != want {
			t.Errorf("segment %v label %d, want %d", seg.Iv, seg.Label, want)
		}
	}
}

func TestSweepMinWrapping(t *testing.T) {
	segs, covered := SweepMin(100, []Labeled{
		{Lo: 90, Length: 20, Label: 1}, // [90,100) + [0,10)
		{Lo: 10, Length: 80, Label: 2}, // [10,90)
	})
	if !covered {
		t.Fatal("should be fully covered")
	}
	for _, seg := range segs {
		want := int64(2)
		if seg.Iv.Hi <= 10 || seg.Iv.Lo >= 90 {
			want = 1
		}
		if seg.Label != want {
			t.Errorf("segment %v label %d, want %d", seg.Iv, seg.Label, want)
		}
	}
}

func TestSweepMinCounts(t *testing.T) {
	segs, _ := SweepMin(10, []Labeled{
		{Lo: 0, Length: 10, Label: 1},
		{Lo: 0, Length: 10, Label: 2},
		{Lo: 5, Length: 2, Label: 3},
	})
	for _, seg := range segs {
		want := 2
		if seg.Iv.Lo >= 5 && seg.Iv.Hi <= 7 {
			want = 3
		}
		if seg.Count != want {
			t.Errorf("segment %v count %d, want %d", seg.Iv, seg.Count, want)
		}
		if seg.Label != 1 {
			t.Errorf("segment %v label %d, want 1", seg.Iv, seg.Label)
		}
	}
}

func TestSweepMinHalfOpenBoundary(t *testing.T) {
	// Two intervals meeting at a point must not create a gap or an overlap.
	segs, covered := SweepMin(10, []Labeled{
		{Lo: 0, Length: 5, Label: 1},
		{Lo: 5, Length: 5, Label: 2},
	})
	if !covered {
		t.Fatal("adjacent intervals should cover the circle")
	}
	for _, seg := range segs {
		if seg.Count != 1 {
			t.Errorf("segment %v count %d, want 1", seg.Iv, seg.Count)
		}
	}
}

// Property: SweepMin agrees with a brute-force per-point evaluation.
func TestSweepMinMatchesBruteForce(t *testing.T) {
	const period = 61
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var items []Labeled
		for i := 0; i < int(n%16); i++ {
			items = append(items, Labeled{
				Lo:     timebase.Ticks(rng.Intn(period)),
				Length: timebase.Ticks(rng.Intn(period + 5)),
				Label:  int64(rng.Intn(50)),
			})
		}
		segs, covered := SweepMin(period, items)

		// Brute force reference.
		refCount := make([]int, period)
		refMin := make([]int64, period)
		for p := range refMin {
			refMin[p] = int64(1) << 62
		}
		for _, it := range items {
			if it.Length <= 0 {
				continue
			}
			l := it.Length
			if l > period {
				l = period
			}
			for k := timebase.Ticks(0); k < l; k++ {
				p := (it.Lo + k).Mod(period)
				refCount[p]++
				if it.Label < refMin[p] {
					refMin[p] = it.Label
				}
			}
		}
		refCovered := true
		for _, c := range refCount {
			if c == 0 {
				refCovered = false
			}
		}
		if covered != refCovered {
			return false
		}
		// Segments must tile the circle exactly.
		var total timebase.Ticks
		for _, seg := range segs {
			total += seg.Iv.Len()
			for p := seg.Iv.Lo; p < seg.Iv.Hi; p++ {
				if refCount[p] != seg.Count {
					return false
				}
				if seg.Count > 0 && refMin[p] != seg.Label {
					return false
				}
			}
		}
		return total == period
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
