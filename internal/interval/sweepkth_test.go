package interval

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/timebase"
)

func TestSweepKthEqualsSweepMinForK1(t *testing.T) {
	items := []Labeled{
		{Lo: 0, Length: 40, Label: 10},
		{Lo: 20, Length: 40, Label: 3},
		{Lo: 50, Length: 30, Label: 7},
	}
	min1, cov1 := SweepMin(80, items)
	kth, covK := SweepKth(80, items, 1)
	if cov1 != covK {
		t.Fatalf("coverage disagrees: %v vs %v", cov1, covK)
	}
	if len(min1) != len(kth) {
		t.Fatalf("segment counts differ: %d vs %d", len(min1), len(kth))
	}
	for i := range min1 {
		if min1[i].Iv != kth[i].Iv || min1[i].Count != kth[i].Count {
			t.Errorf("segment %d shape differs", i)
		}
		if min1[i].Count > 0 && min1[i].Label != kth[i].Label {
			t.Errorf("segment %d: min %d vs kth(1) %d", i, min1[i].Label, kth[i].Label)
		}
	}
}

func TestSweepKthSecondCoverage(t *testing.T) {
	// Two full-circle covers with labels 5 and 9, plus a patch labeled 1.
	items := []Labeled{
		{Lo: 0, Length: 100, Label: 5},
		{Lo: 0, Length: 100, Label: 9},
		{Lo: 10, Length: 20, Label: 1},
	}
	segs, covered := SweepKth(100, items, 2)
	if !covered {
		t.Fatal("double coverage not detected")
	}
	for _, seg := range segs {
		want := int64(9)
		if seg.Iv.Lo >= 10 && seg.Iv.Hi <= 30 {
			want = 5 // labels there: 1, 5, 9 → 2nd smallest is 5
		}
		if seg.Label != want {
			t.Errorf("segment %v: 2nd label %d, want %d", seg.Iv, seg.Label, want)
		}
	}
	// Third coverage only exists on the patch.
	_, covered3 := SweepKth(100, items, 3)
	if covered3 {
		t.Error("triple coverage reported for a doubly-covered circle")
	}
}

func TestSweepKthPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k=0 did not panic")
		}
	}()
	SweepKth(10, nil, 0)
}

// Property: SweepKth agrees with brute-force per-point k-th smallest label.
func TestSweepKthMatchesBruteForce(t *testing.T) {
	const period = 53
	f := func(seed int64, n uint8, kk uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(kk%3) + 1
		var items []Labeled
		for i := 0; i < int(n%12); i++ {
			items = append(items, Labeled{
				Lo:     timebase.Ticks(rng.Intn(period)),
				Length: timebase.Ticks(rng.Intn(period + 5)),
				Label:  int64(rng.Intn(40)),
			})
		}
		segs, covered := SweepKth(period, items, k)

		// Brute force: per-point sorted labels.
		perPoint := make([][]int64, period)
		for _, it := range items {
			if it.Length <= 0 {
				continue
			}
			l := it.Length
			if l > period {
				l = period
			}
			for d := timebase.Ticks(0); d < l; d++ {
				p := (it.Lo + d).Mod(period)
				perPoint[p] = append(perPoint[p], it.Label)
			}
		}
		refCovered := true
		for _, labels := range perPoint {
			if len(labels) < k {
				refCovered = false
			}
		}
		if covered != refCovered {
			return false
		}
		for _, seg := range segs {
			for p := seg.Iv.Lo; p < seg.Iv.Hi; p++ {
				labels := perPoint[p]
				if len(labels) != seg.Count {
					return false
				}
				if seg.Count >= k {
					// k-th smallest by insertion sort.
					sorted := append([]int64(nil), labels...)
					for i := 1; i < len(sorted); i++ {
						for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
							sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
						}
					}
					if sorted[k-1] != seg.Label {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
