// Package interval implements sets of half-open intervals on a circle.
//
// The paper's coverage arguments (Section 4.1) all live on the circle
// [0, TC): an initial offset Φ1 is a point on this circle, each beacon's
// set of "successful" offsets Ωi is a union of intervals on it, and a
// protocol is deterministic iff the union of all Ωi covers the full circle.
// This package provides the exact integer interval arithmetic those
// arguments need: normalized unions, measures, gap enumeration, and a
// labeled min-sweep used to extract worst-case discovery latencies.
//
// All intervals are half-open [Lo, Hi): a beacon sent exactly at the end of
// a reception window is not received. Endpoints are timebase.Ticks.
package interval

import (
	"fmt"
	"sort"

	"repro/internal/timebase"
)

// Interval is a non-wrapping half-open interval [Lo, Hi) with Lo ≤ Hi.
type Interval struct {
	Lo, Hi timebase.Ticks
}

// Len returns the length Hi − Lo.
func (iv Interval) Len() timebase.Ticks { return iv.Hi - iv.Lo }

// Empty reports whether the interval has zero length.
func (iv Interval) Empty() bool { return iv.Hi <= iv.Lo }

// Contains reports whether t lies in [Lo, Hi).
func (iv Interval) Contains(t timebase.Ticks) bool { return t >= iv.Lo && t < iv.Hi }

// String renders the interval as "[lo, hi)".
func (iv Interval) String() string { return fmt.Sprintf("[%d, %d)", iv.Lo, iv.Hi) }

// Set is a canonical set of disjoint, sorted intervals within [0, period).
// The zero value is not usable; construct with NewSet.
type Set struct {
	period timebase.Ticks
	ivs    []Interval // sorted by Lo, pairwise disjoint, non-adjacent
}

// NewSet returns an empty set on the circle [0, period). period must be > 0.
func NewSet(period timebase.Ticks) *Set {
	if period <= 0 {
		panic(fmt.Sprintf("interval: NewSet with non-positive period %d", period))
	}
	return &Set{period: period}
}

// Period returns the circumference of the circle the set lives on.
func (s *Set) Period() timebase.Ticks { return s.period }

// Add inserts the circular interval starting at lo (any integer, reduced mod
// period) with the given length. Lengths ≥ period cover the whole circle;
// non-positive lengths are ignored.
func (s *Set) Add(lo, length timebase.Ticks) {
	if length <= 0 {
		return
	}
	if length >= s.period {
		s.ivs = []Interval{{0, s.period}}
		return
	}
	start := lo.Mod(s.period)
	end := start + length
	if end <= s.period {
		s.insert(Interval{start, end})
	} else {
		// Wraps: split into the tail and the head of the circle.
		s.insert(Interval{start, s.period})
		s.insert(Interval{0, end - s.period})
	}
}

// insert merges a non-wrapping interval into the canonical representation.
func (s *Set) insert(iv Interval) {
	if iv.Empty() {
		return
	}
	// Find the first existing interval with Hi >= iv.Lo (merge candidates).
	i := sort.Search(len(s.ivs), func(k int) bool { return s.ivs[k].Hi >= iv.Lo })
	j := i
	merged := iv
	for j < len(s.ivs) && s.ivs[j].Lo <= merged.Hi {
		if s.ivs[j].Lo < merged.Lo {
			merged.Lo = s.ivs[j].Lo
		}
		if s.ivs[j].Hi > merged.Hi {
			merged.Hi = s.ivs[j].Hi
		}
		j++
	}
	// Replace s.ivs[i:j] with merged.
	out := make([]Interval, 0, len(s.ivs)-(j-i)+1)
	out = append(out, s.ivs[:i]...)
	out = append(out, merged)
	out = append(out, s.ivs[j:]...)
	s.ivs = out
}

// Measure returns the total covered length.
func (s *Set) Measure() timebase.Ticks {
	var m timebase.Ticks
	for _, iv := range s.ivs {
		m += iv.Len()
	}
	return m
}

// IsFull reports whether the set covers the entire circle.
func (s *Set) IsFull() bool { return s.Measure() == s.period }

// IsEmpty reports whether the set is empty.
func (s *Set) IsEmpty() bool { return len(s.ivs) == 0 }

// Contains reports whether point t (reduced mod period) is covered.
func (s *Set) Contains(t timebase.Ticks) bool {
	p := t.Mod(s.period)
	i := sort.Search(len(s.ivs), func(k int) bool { return s.ivs[k].Hi > p })
	return i < len(s.ivs) && s.ivs[i].Contains(p)
}

// Intervals returns a copy of the canonical interval list.
func (s *Set) Intervals() []Interval {
	out := make([]Interval, len(s.ivs))
	copy(out, s.ivs)
	return out
}

// Gaps returns the uncovered intervals, linearized (a gap wrapping the origin
// is reported as two pieces: [lastHi, period) and [0, firstLo)).
func (s *Set) Gaps() []Interval {
	if len(s.ivs) == 0 {
		return []Interval{{0, s.period}}
	}
	var gaps []Interval
	if s.ivs[0].Lo > 0 {
		gaps = append(gaps, Interval{0, s.ivs[0].Lo})
	}
	for i := 1; i < len(s.ivs); i++ {
		gaps = append(gaps, Interval{s.ivs[i-1].Hi, s.ivs[i].Lo})
	}
	if last := s.ivs[len(s.ivs)-1].Hi; last < s.period {
		gaps = append(gaps, Interval{last, s.period})
	}
	return gaps
}

// UnionWith adds every interval of o (which must share the same period).
func (s *Set) UnionWith(o *Set) {
	if o.period != s.period {
		panic(fmt.Sprintf("interval: union of sets with periods %d and %d", s.period, o.period))
	}
	for _, iv := range o.ivs {
		s.insert(iv)
	}
}

// Complement returns the set of uncovered points.
func (s *Set) Complement() *Set {
	c := NewSet(s.period)
	for _, g := range s.Gaps() {
		c.insert(g)
	}
	return c
}

// Equal reports whether two sets cover exactly the same points.
func (s *Set) Equal(o *Set) bool {
	if s.period != o.period || len(s.ivs) != len(o.ivs) {
		return false
	}
	for i := range s.ivs {
		if s.ivs[i] != o.ivs[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the set.
func (s *Set) Clone() *Set {
	c := NewSet(s.period)
	c.ivs = append([]Interval(nil), s.ivs...)
	return c
}

// String renders the set as a list of intervals.
func (s *Set) String() string {
	return fmt.Sprintf("Set(period=%d, %v)", s.period, s.ivs)
}

// Labeled is an interval on the circle annotated with an int64 label. In
// coverage analysis the label is the packet-to-packet discovery latency
// achieved when the initial offset falls inside the interval; the min-sweep
// below then computes the best (earliest) beacon per offset.
type Labeled struct {
	Lo, Length timebase.Ticks // circular placement, reduced mod period
	Label      int64
}

// Segment is an elementary segment of the circle produced by SweepMin: all
// offsets in Iv share the same covering multiplicity Count and the same
// minimal label Label. Count == 0 means the segment is uncovered (and Label
// is meaningless).
type Segment struct {
	Iv    Interval
	Label int64
	Count int
}

// SweepMin partitions [0, period) into elementary segments. For every
// segment it reports how many of the labeled intervals cover it and the
// minimum label among them. covered is true iff every point of the circle is
// covered at least once.
//
// The sweep runs in O(n log n) for n input intervals and is the workhorse
// behind exact worst-case-latency extraction: max over segments of the
// minimal label is the worst-case packet-to-packet latency (Section 4.1).
func SweepMin(period timebase.Ticks, items []Labeled) (segs []Segment, covered bool) {
	if period <= 0 {
		panic(fmt.Sprintf("interval: SweepMin with non-positive period %d", period))
	}
	type event struct {
		at    timebase.Ticks
		delta int // +1 open, −1 close
		label int64
	}
	var events []event
	for _, it := range items {
		if it.Length <= 0 {
			continue
		}
		length := it.Length
		if length > period {
			length = period
		}
		lo := it.Lo.Mod(period)
		hi := lo + length
		if hi <= period {
			events = append(events,
				event{lo, +1, it.Label}, event{hi, -1, it.Label})
		} else {
			events = append(events,
				event{lo, +1, it.Label}, event{period, -1, it.Label},
				event{0, +1, it.Label}, event{hi - period, -1, it.Label})
		}
	}
	if len(events) == 0 {
		return []Segment{{Iv: Interval{0, period}, Count: 0}}, false
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		// Closes before opens at the same point keeps half-open semantics.
		return events[i].delta < events[j].delta
	})

	// Active multiset of labels; a simple sorted slice is fine because the
	// overlap depth in real schedules is tiny (the redundancy factor Q).
	var active minMultiset
	covered = true
	var prev timebase.Ticks
	flush := func(upTo timebase.Ticks) {
		if upTo <= prev {
			return
		}
		seg := Segment{Iv: Interval{prev, upTo}, Count: active.size()}
		if seg.Count == 0 {
			covered = false
		} else {
			seg.Label = active.min()
		}
		segs = append(segs, seg)
		prev = upTo
	}
	for _, ev := range events {
		flush(ev.at)
		if ev.delta > 0 {
			active.add(ev.label)
		} else {
			active.remove(ev.label)
		}
	}
	flush(period)
	return segs, covered
}

// SweepKth is SweepMin generalized to redundant coverage: for every
// elementary segment it reports the k-th smallest label among covering
// intervals (k = 1 reproduces SweepMin's labels). covered is true iff every
// point is covered at least k times. Appendix B of the paper uses this to
// compute L(Pf): the worst-case time until an offset has been covered by Q
// distinct beacons.
func SweepKth(period timebase.Ticks, items []Labeled, k int) (segs []Segment, covered bool) {
	if k < 1 {
		panic(fmt.Sprintf("interval: SweepKth with k=%d", k))
	}
	all, _ := SweepMin(period, items)
	// SweepMin already partitions the circle; recompute the k-th label per
	// segment with a second pass keyed by the same boundaries. Rather than
	// re-sweeping, walk the items per segment: segment counts are small
	// (the redundancy degree), so this stays cheap.
	covered = true
	for _, seg := range all {
		if seg.Count < k {
			covered = false
			segs = append(segs, Segment{Iv: seg.Iv, Count: seg.Count})
			continue
		}
		segs = append(segs, Segment{Iv: seg.Iv, Count: seg.Count, Label: kthLabelAt(period, items, seg.Iv.Lo, k)})
	}
	return segs, covered
}

// kthLabelAt returns the k-th smallest label among intervals covering point
// p (which must be covered at least k times).
func kthLabelAt(period timebase.Ticks, items []Labeled, p timebase.Ticks, k int) int64 {
	var labels []int64
	for _, it := range items {
		if it.Length <= 0 {
			continue
		}
		length := it.Length
		if length > period {
			length = period
		}
		lo := it.Lo.Mod(period)
		d := (p - lo).Mod(period)
		if d < length {
			labels = append(labels, it.Label)
		}
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	return labels[k-1]
}

// minMultiset is a small multiset of int64 values supporting min().
type minMultiset struct {
	vals []int64
}

func (m *minMultiset) add(v int64) {
	i := sort.Search(len(m.vals), func(k int) bool { return m.vals[k] >= v })
	m.vals = append(m.vals, 0)
	copy(m.vals[i+1:], m.vals[i:])
	m.vals[i] = v
}

func (m *minMultiset) remove(v int64) {
	i := sort.Search(len(m.vals), func(k int) bool { return m.vals[k] >= v })
	if i < len(m.vals) && m.vals[i] == v {
		m.vals = append(m.vals[:i], m.vals[i+1:]...)
		return
	}
	panic(fmt.Sprintf("interval: removing absent label %d", v))
}

func (m *minMultiset) size() int { return len(m.vals) }

func (m *minMultiset) min() int64 {
	if len(m.vals) == 0 {
		panic("interval: min of empty multiset")
	}
	return m.vals[0]
}
