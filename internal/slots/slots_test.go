package slots

import (
	"testing"

	"repro/internal/coverage"
	"repro/internal/protocols"
	"repro/internal/timebase"
)

func TestScheduleValidate(t *testing.T) {
	good := Schedule{Period: 10, Active: []int{0, 3, 7}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	bad := []Schedule{
		{Period: 0, Active: []int{0}},
		{Period: 10, Active: nil},
		{Period: 10, Active: []int{10}},
		{Period: 10, Active: []int{3, 3}},
		{Period: 10, Active: []int{5, 2}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad schedule %d accepted", i)
		}
	}
}

func TestDiscoWorstCaseIsCRTBound(t *testing.T) {
	// Disco's guarantee: two devices with the same coprime prime pair
	// discover within p1·p2 slots, and the bound is attained.
	for _, pp := range [][2]int{{3, 5}, {5, 7}, {7, 11}} {
		d, err := Disco(pp[0], pp[1])
		if err != nil {
			t.Fatal(err)
		}
		worst, ok := Symmetric(d)
		if !ok {
			t.Fatalf("Disco(%v) not deterministic slot-aligned", pp)
		}
		bound := pp[0] * pp[1]
		if worst > bound {
			t.Errorf("Disco(%v): worst %d exceeds p1·p2 = %d", pp, worst, bound)
		}
		// The CRT bound is tight within one prime gap.
		if worst < bound-pp[1] {
			t.Errorf("Disco(%v): worst %d suspiciously below p1·p2 = %d", pp, worst, bound)
		}
	}
}

func TestDiffcodeWorstCaseIsPeriod(t *testing.T) {
	// A perfect difference set guarantees an overlap within n slots for
	// every rotation — and n is tight for some rotation.
	for _, q := range []int{2, 3, 4, 5, 7} {
		d, err := Diffcode(q)
		if err != nil {
			t.Fatal(err)
		}
		worst, ok := Symmetric(d)
		if !ok {
			t.Fatalf("Diffcode(q=%d) not deterministic", q)
		}
		if worst > d.Period {
			t.Errorf("q=%d: worst %d exceeds n = %d", q, worst, d.Period)
		}
		// Optimality in slot count: k active slots with k ≥ √T (the Zheng
		// bound), met with equality up to the +1 of n = q²+q+1.
		if k, min := len(d.Active), ZhengLowerBound(d.Period); k > min+1 {
			t.Errorf("q=%d: k = %d far above the √T bound %d", q, k, min)
		}
	}
}

func TestUConnectWorstCase(t *testing.T) {
	for _, p := range []int{3, 5, 7} {
		u, err := UConnect(p)
		if err != nil {
			t.Fatal(err)
		}
		worst, ok := Symmetric(u)
		if !ok {
			t.Fatalf("U-Connect(%d) not deterministic", p)
		}
		if worst > p*p {
			t.Errorf("p=%d: worst %d exceeds p² = %d", p, worst, p*p)
		}
	}
}

func TestSearchlightWorstCase(t *testing.T) {
	for _, tt := range []int{4, 6, 8, 10} {
		s, err := Searchlight(tt)
		if err != nil {
			t.Fatal(err)
		}
		worst, ok := Symmetric(s)
		if !ok {
			t.Fatalf("Searchlight(%d) not deterministic slot-aligned", tt)
		}
		// Guarantee: t·⌈t/2⌉ slots.
		if bound := tt * ((tt + 1) / 2); worst > bound {
			t.Errorf("t=%d: worst %d exceeds t·⌈t/2⌉ = %d", tt, worst, bound)
		}
	}
}

func TestZhengLowerBound(t *testing.T) {
	cases := []struct{ period, want int }{
		{1, 1}, {2, 2}, {4, 2}, {5, 3}, {9, 3}, {10, 4}, {49, 7}, {50, 8},
	}
	for _, c := range cases {
		if got := ZhengLowerBound(c.period); got != c.want {
			t.Errorf("ZhengLowerBound(%d) = %d, want %d", c.period, got, c.want)
		}
	}
}

func TestAsymmetricPairWorstCase(t *testing.T) {
	// Two different Disco configurations with pairwise coprime primes must
	// also discover each other (the Disco cross-pair guarantee).
	a, _ := Disco(3, 5)
	b, _ := Disco(7, 11)
	worst, ok := WorstCase(a, b)
	if !ok {
		t.Fatal("cross-pair Disco not deterministic")
	}
	// Guarantee: min over prime pairs of the CRT products ≥ worst; the
	// loosest usable pair is 5·11.
	if worst > 5*11 {
		t.Errorf("cross worst %d exceeds 55", worst)
	}
}

func TestNonDeterministicPair(t *testing.T) {
	// Identical single-slot schedules with equal periods never meet at
	// offset ≠ 0.
	s := Schedule{Period: 10, Active: []int{0}}
	if _, ok := Symmetric(s); ok {
		t.Error("single-slot schedule cannot be deterministic against itself")
	}
}

// TestSlotDomainMatchesTickDomain cross-validates the two independent
// engines: the slot-domain worst case times the slot length must bracket
// the tick-domain (full-duplex) measured worst case.
func TestSlotDomainMatchesTickDomain(t *testing.T) {
	slotLen := timebase.Ticks(500)
	omega := timebase.Ticks(10)

	cases := []struct {
		name  string
		slots Schedule
		build func() (*protocols.Slotted, error)
	}{
		{
			"disco(3,5)",
			func() Schedule { s, _ := Disco(3, 5); return s }(),
			func() (*protocols.Slotted, error) { return protocols.NewDisco(3, 5, slotLen, omega) },
		},
		{
			"diffcode(3)",
			func() Schedule { s, _ := Diffcode(3); return s }(),
			func() (*protocols.Slotted, error) { return protocols.NewDiffcode(3, slotLen, omega) },
		},
		{
			"uconnect(5)",
			func() Schedule { s, _ := UConnect(5); return s }(),
			func() (*protocols.Slotted, error) { return protocols.NewUConnect(5, slotLen, omega) },
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			slotWorst, ok := Symmetric(c.slots)
			if !ok {
				t.Fatal("slot domain: not deterministic")
			}
			proto, err := c.build()
			if err != nil {
				t.Fatal(err)
			}
			dev, err := proto.DeviceFullDuplex()
			if err != nil {
				t.Fatal(err)
			}
			res, err := coverage.Analyze(dev.B, dev.C, coverage.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Deterministic {
				t.Fatal("tick domain: not deterministic")
			}
			// The two engines model different physics: the slot domain
			// assumes aligned slots and one overlap notion; the tick
			// domain sweeps continuous offsets where the two-beacon slot
			// layout can succeed up to ~2 slots earlier (partial overlap)
			// or ~1 slot later (fractional misalignment). Cross-validate
			// within a ±3-slot bracket.
			tickSlots := float64(res.WorstLatency) / float64(slotLen)
			if diff := tickSlots - float64(slotWorst); diff > 1.5 || diff < -3.5 {
				t.Errorf("tick worst %.2f slots vs slot-domain %d slots (diff %.2f)",
					tickSlots, slotWorst, diff)
			}
		})
	}
}

// TestAnalyzeMatchesWorstCase: the O(P²) gap-structure analysis must agree
// with the brute-force WorstCase enumeration on worst case and coverage,
// for identical and differing-period pairs alike.
func TestAnalyzeMatchesWorstCase(t *testing.T) {
	mk := func(f func() (Schedule, error)) Schedule {
		s, err := f()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	pairs := [][2]Schedule{
		{mk(func() (Schedule, error) { return Disco(3, 5) }), mk(func() (Schedule, error) { return Disco(3, 5) })},
		{mk(func() (Schedule, error) { return Disco(5, 7) }), mk(func() (Schedule, error) { return Disco(5, 7) })},
		{mk(func() (Schedule, error) { return UConnect(5) }), mk(func() (Schedule, error) { return UConnect(5) })},
		{mk(func() (Schedule, error) { return Diffcode(3) }), mk(func() (Schedule, error) { return Diffcode(3) })},
		{mk(func() (Schedule, error) { return Searchlight(6) }), mk(func() (Schedule, error) { return Searchlight(6) })},
		// Different periods: Disco against U-Connect.
		{mk(func() (Schedule, error) { return Disco(3, 5) }), mk(func() (Schedule, error) { return UConnect(5) })},
		// A non-deterministic pair: two disjoint single-slot schedules of
		// the same period never overlap for most phase differences.
		{{Period: 4, Active: []int{0}}, {Period: 4, Active: []int{0}}},
	}
	for i, pr := range pairs {
		res, err := Analyze(pr[0], pr[1])
		if err != nil {
			t.Fatalf("pair %d: %v", i, err)
		}
		worst, ok := WorstCase(pr[0], pr[1])
		if ok != res.Deterministic {
			t.Errorf("pair %d: determinism disagrees: WorstCase %v, Analyze %v", i, ok, res.Deterministic)
			continue
		}
		if ok && worst != res.WorstSlots {
			t.Errorf("pair %d: worst disagrees: WorstCase %d, Analyze %d", i, worst, res.WorstSlots)
		}
		if res.Deterministic && res.CoveredFraction != 1 {
			t.Errorf("pair %d: deterministic but covered %v", i, res.CoveredFraction)
		}
		if res.Deterministic && (res.MeanSlots < 1 || res.MeanSlots > float64(res.WorstSlots)) {
			t.Errorf("pair %d: mean %v outside [1, %d]", i, res.MeanSlots, res.WorstSlots)
		}
	}
}

// TestAnalyzeMeanByEnumeration cross-checks MeanSlots against a direct
// enumeration of all phase pairs on a small schedule.
func TestAnalyzeMeanByEnumeration(t *testing.T) {
	s, err := Disco(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(s, s)
	if err != nil {
		t.Fatal(err)
	}
	set := make([]bool, s.Period)
	for _, a := range s.Active {
		set[a] = true
	}
	var sum, n float64
	for u := 0; u < s.Period; u++ {
		for v := 0; v < s.Period; v++ {
			for dt := 0; dt < s.Period; dt++ {
				if set[(u+dt)%s.Period] && set[(v+dt)%s.Period] {
					sum += float64(dt + 1)
					n++
					break
				}
			}
		}
	}
	want := sum / n
	if diff := res.MeanSlots - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("Analyze mean %v, enumeration %v", res.MeanSlots, want)
	}
}

// TestAnalyzeCoveredFraction: a single active slot against itself overlaps
// only when the phase difference is zero.
func TestAnalyzeCoveredFraction(t *testing.T) {
	s := Schedule{Period: 8, Active: []int{0}}
	res, err := Analyze(s, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deterministic {
		t.Fatal("single-slot schedule cannot be deterministic")
	}
	if res.CoveredFraction != 1.0/8 {
		t.Fatalf("covered fraction %v, want 1/8", res.CoveredFraction)
	}
}
