// Package slots analyzes slotted neighbor-discovery schedules purely in
// the slot domain, the way the slotted-protocol literature does: time is a
// sequence of equal slots, a schedule is a set of active slot indices
// repeating with some period, and discovery happens in the first slot
// where both devices are active (slot alignment is assumed; the paper's
// Figure 5 and packages protocols/coverage handle what alignment hides).
//
// The package serves as an independent verification path: its worst-case
// slot counts are computed combinatorially, with no shared code with the
// tick-domain coverage engine, and the test suites of both packages
// cross-validate each other via latency = slots × slot length. The
// engine's "slot-*" protocol kinds pair Analyze with the slot-grid
// Monte-Carlo trials of package sim.
package slots

import (
	"fmt"

	"repro/internal/diffset"
	"repro/internal/gf"
)

// Schedule is a slot-domain schedule: the sorted active slot indices
// within a repeating period.
type Schedule struct {
	Period int
	Active []int
}

// Validate checks the structural invariants.
func (s Schedule) Validate() error {
	if s.Period < 1 {
		return fmt.Errorf("slots: period %d invalid", s.Period)
	}
	if len(s.Active) == 0 {
		return fmt.Errorf("slots: no active slots")
	}
	prev := -1
	for _, a := range s.Active {
		if a < 0 || a >= s.Period {
			return fmt.Errorf("slots: slot %d outside [0, %d)", a, s.Period)
		}
		if a <= prev {
			return fmt.Errorf("slots: active slots not strictly increasing")
		}
		prev = a
	}
	return nil
}

// DutyCycle returns the fraction of active slots.
func (s Schedule) DutyCycle() float64 {
	return float64(len(s.Active)) / float64(s.Period)
}

// activeSet returns a boolean lookup table.
func (s Schedule) activeSet() []bool {
	set := make([]bool, s.Period)
	for _, a := range s.Active {
		set[a] = true
	}
	return set
}

// WorstCase computes the exact worst-case number of slots until a and b
// share an active slot, over every possible pair of initial phases (where
// in its pattern each device is when discovery begins). The second return
// value is false if some phase pair never leads to an overlap (the pair is
// non-deterministic even slot-aligned).
//
// This is the literature's "discovery guaranteed within N slots"
// definition executed literally: for initial phases (u, v), the discovery
// slot is min{ t ≥ 0 : a active at u+t, b active at v+t }, and the worst
// case is the max over all (u, v). Both schedules repeat, so
// t < lcm(Ta, Tb) suffices.
func WorstCase(a, b Schedule) (int, bool) {
	if err := a.Validate(); err != nil {
		return 0, false
	}
	if err := b.Validate(); err != nil {
		return 0, false
	}
	setA := a.activeSet()
	setB := b.activeSet()
	hyper := lcm(a.Period, b.Period)
	worst := 0
	for u := 0; u < a.Period; u++ {
		for v := 0; v < b.Period; v++ {
			found := false
			for t := 0; t < hyper; t++ {
				if setA[(u+t)%a.Period] && setB[(v+t)%b.Period] {
					if t+1 > worst {
						worst = t + 1 // +1: discovery completes within slot t
					}
					found = true
					break
				}
			}
			if !found {
				return 0, false
			}
		}
	}
	return worst, true
}

// Symmetric computes the worst case of a schedule against itself.
func Symmetric(s Schedule) (int, bool) { return WorstCase(s, s) }

// Result is the exact outcome of a slot-aligned pair analysis.
type Result struct {
	// Deterministic reports whether every phase pair leads to a shared
	// active slot.
	Deterministic bool

	// CoveredFraction is the fraction of phase pairs that ever discover.
	CoveredFraction float64

	// WorstSlots is the exact worst-case discovery slot count over the
	// phase pairs that discover (discovery within slot t counts t+1
	// slots), matching WorstCase when the pair is deterministic.
	WorstSlots int

	// MeanSlots is the expected discovery slot count over uniform phase
	// pairs, conditional on discovery.
	MeanSlots float64
}

// Analyze computes the exact worst-case and mean discovery slot counts of
// schedules a and b under slot alignment, over independent uniform initial
// phases — the quantity the slot-grid Monte-Carlo trials sample.
//
// Both schedules advance one slot per tick of the shared grid, so the
// joint state repeats with the hyperperiod P = lcm(Ta, Tb) and the phase
// difference d = (v − u) mod P is invariant. For each d the positions
// where both are active form a set S_d; the first-overlap delay from phase
// u is the circular distance from u to the next element of S_d, so worst
// and mean reduce to the gap structure of S_d. Complexity O(P²), far below
// WorstCase's O(Ta·Tb·P).
func Analyze(a, b Schedule) (Result, error) {
	if err := a.Validate(); err != nil {
		return Result{}, err
	}
	if err := b.Validate(); err != nil {
		return Result{}, err
	}
	p := lcm(a.Period, b.Period)
	setA := a.activeSet()
	setB := b.activeSet()
	actA := make([]bool, p)
	actB := make([]bool, p)
	for i := 0; i < p; i++ {
		actA[i] = setA[i%a.Period]
		actB[i] = setB[i%b.Period]
	}

	var (
		worst      int
		meanNum    float64 // Σ_d Σ_u delay(u, d)
		coveredD   int     // phase differences with any overlap
		uncoveredD int
	)
	for d := 0; d < p; d++ {
		// Walk the circle once, accumulating the gap structure of
		// S_d = { s : actA[s] ∧ actB[(s+d) mod p] }: per gap of length g
		// the delays are 0..g−1, summing to g(g−1)/2 with maximum g−1.
		first, prev := -1, -1
		for s := 0; s < p; s++ {
			if !(actA[s] && actB[(s+d)%p]) {
				continue
			}
			if first < 0 {
				first = s
			} else {
				g := s - prev
				meanNum += float64(g) * float64(g-1) / 2
				if g-1 > worst {
					worst = g - 1
				}
			}
			prev = s
		}
		if first < 0 {
			uncoveredD++
			continue
		}
		coveredD++
		g := p - prev + first // wraparound gap
		meanNum += float64(g) * float64(g-1) / 2
		if g-1 > worst {
			worst = g - 1
		}
	}
	res := Result{
		Deterministic:   uncoveredD == 0,
		CoveredFraction: float64(coveredD) / float64(p),
	}
	if coveredD > 0 {
		// Discovery within slot t completes after t+1 slots.
		res.WorstSlots = worst + 1
		res.MeanSlots = meanNum/(float64(coveredD)*float64(p)) + 1
	}
	return res, nil
}

// Disco returns the slot-domain Disco schedule for primes p1 < p2.
func Disco(p1, p2 int) (Schedule, error) {
	if !gf.IsPrime(p1) || !gf.IsPrime(p2) || p1 >= p2 {
		return Schedule{}, fmt.Errorf("slots: Disco needs primes p1 < p2, got %d, %d", p1, p2)
	}
	period := p1 * p2
	var active []int
	for i := 0; i < period; i++ {
		if i%p1 == 0 || i%p2 == 0 {
			active = append(active, i)
		}
	}
	return Schedule{Period: period, Active: active}, nil
}

// UConnect returns the slot-domain U-Connect schedule for odd prime p.
func UConnect(p int) (Schedule, error) {
	if !gf.IsPrime(p) || p < 3 {
		return Schedule{}, fmt.Errorf("slots: U-Connect needs an odd prime, got %d", p)
	}
	period := p * p
	seen := make(map[int]bool)
	for i := 0; i < period; i += p {
		seen[i] = true
	}
	for i := 0; i < (p+1)/2; i++ {
		seen[i] = true
	}
	active := make([]int, 0, len(seen))
	for i := 0; i < period; i++ {
		if seen[i] {
			active = append(active, i)
		}
	}
	return Schedule{Period: period, Active: active}, nil
}

// Diffcode returns the slot-domain difference-set schedule of order q.
func Diffcode(q int) (Schedule, error) {
	ds, err := diffset.ForOrder(q)
	if err != nil {
		return Schedule{}, err
	}
	return Schedule{Period: ds.N, Active: ds.Elems}, nil
}

// Searchlight returns the slot-domain Searchlight schedule with anchor
// period t (plain sequential probing; the full pattern period is
// t·⌈t/2⌉ slots).
func Searchlight(t int) (Schedule, error) {
	if t < 4 {
		return Schedule{}, fmt.Errorf("slots: Searchlight period %d too small", t)
	}
	sweep := (t + 1) / 2
	var active []int
	for j := 0; j < sweep; j++ {
		probe := 1 + j
		active = append(active, j*t, j*t+probe)
	}
	return Schedule{Period: t * sweep, Active: dedupeSorted(active)}, nil
}

// ZhengLowerBound is the k ≥ √T bound of [17,16]: the minimum number of
// active slots per period T for which guaranteed discovery within T slots
// is possible at all.
func ZhengLowerBound(period int) int {
	k := 0
	for k*k < period {
		k++
	}
	return k
}

func dedupeSorted(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

func lcm(a, b int) int {
	g := gcd(a, b)
	return a / g * b
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
