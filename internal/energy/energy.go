// Package energy converts the paper's duty-cycle abstractions into
// battery-life numbers for real radios.
//
// The bounds trade the total duty-cycle η = α·β + γ against latency; what
// a deployment actually cares about is "how long does the coin cell last
// if I want discovery within two seconds". This package closes that gap:
// a RadioProfile carries the transmit, receive and sleep currents of a
// concrete radio (which also fixes the paper's α = Ptx/Prx), and the
// conversion functions map schedules or duty-cycle pairs to average
// current and lifetime.
package energy

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/schedule"
	"repro/internal/timebase"
)

// RadioProfile is a radio's current draw in its three states, in
// milliamperes at the nominal supply voltage.
type RadioProfile struct {
	Name         string
	TxCurrent    float64 // mA while transmitting
	RxCurrent    float64 // mA while receiving/listening
	SleepCurrent float64 // mA asleep
}

// Well-known profiles (datasheet ballpark figures at 3 V, 0 dBm TX).
var (
	// NRF52 approximates a Nordic nRF52832: 5.3 mA TX @ 0 dBm, 5.4 mA RX,
	// 3 µA system-on sleep.
	NRF52 = RadioProfile{Name: "nRF52832", TxCurrent: 5.3, RxCurrent: 5.4, SleepCurrent: 0.003}
	// CC2640 approximates a TI CC2640R2: 6.1 mA TX @ 0 dBm, 5.9 mA RX,
	// 2.7 µA standby.
	CC2640 = RadioProfile{Name: "CC2640R2", TxCurrent: 6.1, RxCurrent: 5.9, SleepCurrent: 0.0027}
	// CR2032 is the usual coin-cell capacity in mAh, exported for
	// convenience in lifetime calculations.
	CR2032Capacity = 225.0
)

// Validate checks the profile.
func (r RadioProfile) Validate() error {
	if r.TxCurrent <= 0 || r.RxCurrent <= 0 || r.SleepCurrent < 0 {
		return fmt.Errorf("energy: implausible currents in profile %q", r.Name)
	}
	if r.SleepCurrent >= r.RxCurrent {
		return fmt.Errorf("energy: sleep current not below receive current in %q", r.Name)
	}
	return nil
}

// Alpha returns the paper's power ratio α = Ptx/Prx for this radio.
func (r RadioProfile) Alpha() float64 { return r.TxCurrent / r.RxCurrent }

// AverageCurrent returns the long-run average current in mA for a device
// transmitting a fraction beta and listening a fraction gamma of the time.
func (r RadioProfile) AverageCurrent(beta, gamma float64) float64 {
	if beta < 0 || gamma < 0 || beta+gamma > 1 {
		return math.NaN()
	}
	return beta*r.TxCurrent + gamma*r.RxCurrent + (1-beta-gamma)*r.SleepCurrent
}

// DeviceCurrent returns the average current of a concrete schedule.
func (r RadioProfile) DeviceCurrent(d schedule.Device) float64 {
	return r.AverageCurrent(d.B.Beta(), d.C.Gamma())
}

// LifetimeHours returns how long a battery of the given capacity (mAh)
// sustains the duty-cycle pair.
func (r RadioProfile) LifetimeHours(beta, gamma, capacityMAh float64) float64 {
	i := r.AverageCurrent(beta, gamma)
	if math.IsNaN(i) || i <= 0 || capacityMAh <= 0 {
		return math.NaN()
	}
	return capacityMAh / i
}

// PlanPoint is one row of a latency/lifetime plan.
type PlanPoint struct {
	LatencySeconds float64 // worst-case discovery target
	Eta            float64 // minimum duty-cycle admitting it (Thm 5.5)
	Beta, Gamma    float64 // optimal split at this radio's α
	CurrentMA      float64
	LifetimeDays   float64
}

// Plan computes, for each worst-case latency target (in seconds), the
// minimum duty-cycle the fundamental bound admits, the optimal
// transmit/listen split for this radio's α, and the resulting battery
// life — the deployment-facing form of the paper's Pareto front.
func Plan(r RadioProfile, omega timebase.Ticks, capacityMAh float64, latencies []float64) ([]PlanPoint, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	p := core.Params{Omega: omega, Alpha: r.Alpha()}
	if !p.Valid() {
		return nil, fmt.Errorf("energy: invalid radio params ω=%d", omega)
	}
	var out []PlanPoint
	for _, ls := range latencies {
		if ls <= 0 {
			return nil, fmt.Errorf("energy: latency target %v invalid", ls)
		}
		lTicks := ls * 1e6
		eta := p.EtaForLatency(lTicks)
		if math.IsNaN(eta) || eta > 1 {
			return nil, fmt.Errorf("energy: latency %v s unreachable (needs η = %v)", ls, eta)
		}
		beta := p.OptimalBeta(eta)
		gamma := eta / 2
		i := r.AverageCurrent(beta, gamma)
		out = append(out, PlanPoint{
			LatencySeconds: ls,
			Eta:            eta,
			Beta:           beta,
			Gamma:          gamma,
			CurrentMA:      i,
			LifetimeDays:   capacityMAh / i / 24,
		})
	}
	return out, nil
}
