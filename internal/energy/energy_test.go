package energy

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/optimal"
)

func TestProfilesValid(t *testing.T) {
	for _, r := range []RadioProfile{NRF52, CC2640} {
		if err := r.Validate(); err != nil {
			t.Errorf("%s: %v", r.Name, err)
		}
		// α near 1 for BLE radios, as the paper's evaluation assumes.
		if a := r.Alpha(); a < 0.7 || a > 1.3 {
			t.Errorf("%s: α = %v outside BLE-typical range", r.Name, a)
		}
	}
	bad := RadioProfile{Name: "bad", TxCurrent: 1, RxCurrent: 1, SleepCurrent: 2}
	if err := bad.Validate(); err == nil {
		t.Error("sleep > rx accepted")
	}
}

func TestAverageCurrent(t *testing.T) {
	r := RadioProfile{Name: "t", TxCurrent: 10, RxCurrent: 5, SleepCurrent: 0.001}
	// 1 % TX, 2 % RX: 0.1 + 0.1 + 0.97·0.001.
	got := r.AverageCurrent(0.01, 0.02)
	want := 0.1 + 0.1 + 0.97*0.001
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("AverageCurrent = %v, want %v", got, want)
	}
	if !math.IsNaN(r.AverageCurrent(-0.1, 0)) || !math.IsNaN(r.AverageCurrent(0.6, 0.6)) {
		t.Error("invalid duty cycles accepted")
	}
}

func TestDeviceCurrentMatchesDutyCycles(t *testing.T) {
	pair, err := optimal.NewSymmetric(36, 1, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	got := NRF52.DeviceCurrent(pair.E)
	want := NRF52.AverageCurrent(pair.E.B.Beta(), pair.E.C.Gamma())
	if got != want {
		t.Errorf("DeviceCurrent %v != AverageCurrent %v", got, want)
	}
}

func TestLifetimeHours(t *testing.T) {
	r := RadioProfile{Name: "t", TxCurrent: 10, RxCurrent: 10, SleepCurrent: 0}
	// η = 1 % → 0.1 mA average → 225 mAh lasts 2250 h.
	got := r.LifetimeHours(0.005, 0.005, 225)
	if math.Abs(got-2250) > 1e-9 {
		t.Errorf("LifetimeHours = %v, want 2250", got)
	}
	if !math.IsNaN(r.LifetimeHours(0.005, 0.005, 0)) {
		t.Error("zero capacity accepted")
	}
}

func TestPlanMonotonicity(t *testing.T) {
	plan, err := Plan(NRF52, 128, CR2032Capacity, []float64{0.5, 1, 2, 5, 10, 30})
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range plan {
		// η = √(4αω/L): check against core directly.
		p := core.Params{Omega: 128, Alpha: NRF52.Alpha()}
		if math.Abs(pt.Eta-p.EtaForLatency(pt.LatencySeconds*1e6)) > 1e-12 {
			t.Errorf("plan η mismatch at %v s", pt.LatencySeconds)
		}
		if i > 0 {
			prev := plan[i-1]
			if pt.Eta >= prev.Eta {
				t.Errorf("longer latency target should need less duty-cycle")
			}
			if pt.LifetimeDays <= prev.LifetimeDays {
				t.Errorf("longer latency target should live longer")
			}
		}
		// Round trip: the bound at the planned η returns the target.
		p2 := core.Params{Omega: 128, Alpha: NRF52.Alpha()}
		back := p2.Symmetric(pt.Eta) / 1e6
		if math.Abs(back-pt.LatencySeconds)/pt.LatencySeconds > 1e-9 {
			t.Errorf("round trip %v s → η → %v s", pt.LatencySeconds, back)
		}
	}
}

func TestPlanRejectsUnreachableTargets(t *testing.T) {
	// 1 µs worst case with 128 µs packets needs η > 1.
	if _, err := Plan(NRF52, 128, CR2032Capacity, []float64{1e-6}); err == nil {
		t.Error("unreachable latency accepted")
	}
	if _, err := Plan(NRF52, 128, CR2032Capacity, []float64{-1}); err == nil {
		t.Error("negative latency accepted")
	}
	if _, err := Plan(RadioProfile{}, 128, 225, []float64{1}); err == nil {
		t.Error("invalid profile accepted")
	}
}

func TestInverseBoundsInCore(t *testing.T) {
	p := core.Params{Omega: 36, Alpha: 1}
	// η(L(η)) = η.
	for _, eta := range []float64{0.01, 0.05, 0.2} {
		l := p.Symmetric(eta)
		if math.Abs(p.EtaForLatency(l)-eta) > 1e-12 {
			t.Errorf("EtaForLatency(Symmetric(%v)) = %v", eta, p.EtaForLatency(l))
		}
		lm := p.MutualExclusive(eta)
		if math.Abs(p.EtaForLatencyMutualExclusive(lm)-eta) > 1e-12 {
			t.Errorf("mutual-exclusive inverse broken at η=%v", eta)
		}
	}
	// Product inverse.
	l := p.Asymmetric(0.02, 0.08)
	if math.Abs(p.EtaProductForLatency(l)-0.02*0.08) > 1e-12 {
		t.Errorf("EtaProductForLatency(Asymmetric) = %v", p.EtaProductForLatency(l))
	}
	if !math.IsNaN(p.EtaForLatency(0)) {
		t.Error("L=0 should be NaN")
	}
}
