// Package textplot renders experiment output as aligned text tables and
// ASCII line plots, so every figure and table of the paper can be
// regenerated on a terminal with no plotting dependencies.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// Add appends a row; missing cells render empty, extra cells are dropped.
func (t *Table) Add(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddF appends a row of formatted values: strings pass through, float64
// render with %.4g, ints with %d.
func (t *Table) AddF(cells ...interface{}) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case string:
			row = append(row, v)
		case float64:
			row = append(row, fmt.Sprintf("%.4g", v))
		case int:
			row = append(row, fmt.Sprintf("%d", v))
		case int64:
			row = append(row, fmt.Sprintf("%d", v))
		case fmt.Stringer:
			row = append(row, v.String())
		default:
			row = append(row, fmt.Sprint(v))
		}
	}
	t.Add(row...)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if w := len([]rune(cell)); w > widths[i] {
				widths[i] = w
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len([]rune(cell))))
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteString("\n")
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Series is one named line of a plot.
type Series struct {
	Name   string
	Marker rune
	X, Y   []float64
}

// Plot renders one or more series on a character grid, optionally with
// logarithmic axes (points with non-positive coordinates are skipped on log
// axes).
type Plot struct {
	Title      string
	XLabel     string
	YLabel     string
	Width      int // plot area width in characters (default 72)
	Height     int // plot area height in characters (default 20)
	LogX, LogY bool

	series []Series
}

// AddSeries appends a series to the plot.
func (p *Plot) AddSeries(name string, marker rune, x, y []float64) {
	p.series = append(p.series, Series{Name: name, Marker: marker, X: x, Y: y})
}

// String renders the plot.
func (p *Plot) String() string {
	w, h := p.Width, p.Height
	if w <= 0 {
		w = 72
	}
	if h <= 0 {
		h = 20
	}
	tx := func(v float64) (float64, bool) { return v, true }
	ty := tx
	if p.LogX {
		tx = logT
	}
	if p.LogY {
		ty = logT
	}
	// Collect transformed bounds.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range p.series {
		for i := range s.X {
			x, okx := tx(s.X[i])
			y, oky := ty(s.Y[i])
			if !okx || !oky {
				continue
			}
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	var b strings.Builder
	if p.Title != "" {
		b.WriteString(p.Title)
		b.WriteString("\n")
	}
	if math.IsInf(minX, 1) || minX == maxX && minY == maxY && len(p.series) == 0 {
		b.WriteString("(no plottable points)\n")
		return b.String()
	}
	if minX == maxX {
		maxX = minX + 1
	}
	if minY == maxY {
		maxY = minY + 1
	}
	grid := make([][]rune, h)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", w))
	}
	for _, s := range p.series {
		for i := range s.X {
			x, okx := tx(s.X[i])
			y, oky := ty(s.Y[i])
			if !okx || !oky {
				continue
			}
			col := int((x - minX) / (maxX - minX) * float64(w-1))
			row := h - 1 - int((y-minY)/(maxY-minY)*float64(h-1))
			if col >= 0 && col < w && row >= 0 && row < h {
				grid[row][col] = s.Marker
			}
		}
	}
	yLo, yHi := p.axisValue(minY, p.LogY), p.axisValue(maxY, p.LogY)
	b.WriteString(fmt.Sprintf("%10.3g ┤%s\n", yHi, string(grid[0])))
	for i := 1; i < h-1; i++ {
		b.WriteString(fmt.Sprintf("%10s │%s\n", "", string(grid[i])))
	}
	b.WriteString(fmt.Sprintf("%10.3g ┤%s\n", yLo, string(grid[h-1])))
	b.WriteString(fmt.Sprintf("%10s └%s\n", "", strings.Repeat("─", w)))
	xLo, xHi := p.axisValue(minX, p.LogX), p.axisValue(maxX, p.LogX)
	b.WriteString(fmt.Sprintf("%11s%-.3g%s%.3g\n", "", xLo,
		strings.Repeat(" ", max(1, w-14)), xHi))
	if p.XLabel != "" || p.YLabel != "" {
		b.WriteString(fmt.Sprintf("%11sx: %s   y: %s\n", "", p.XLabel, p.YLabel))
	}
	for _, s := range p.series {
		b.WriteString(fmt.Sprintf("%11s%c %s\n", "", s.Marker, s.Name))
	}
	return b.String()
}

func (p *Plot) axisValue(t float64, log bool) float64 {
	if log {
		return math.Pow(10, t)
	}
	return t
}

func logT(v float64) (float64, bool) {
	if v <= 0 {
		return 0, false
	}
	return math.Log10(v), true
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
