package textplot

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("name", "value")
	tb.Add("short", "1")
	tb.Add("a-much-longer-name", "22222")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
	// The value column must start at the same offset in every data row.
	idx1 := strings.Index(lines[2], "1")
	idx2 := strings.Index(lines[3], "22222")
	if idx1 != idx2 {
		t.Errorf("columns misaligned:\n%s", out)
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Errorf("headers missing:\n%s", out)
	}
}

func TestTableAddF(t *testing.T) {
	tb := NewTable("a", "b", "c", "d")
	tb.AddF("x", 3.14159, 42, int64(7))
	out := tb.String()
	for _, want := range []string{"x", "3.142", "42", "7"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTableMissingAndExtraCells(t *testing.T) {
	tb := NewTable("a", "b")
	tb.Add("only-one")
	tb.Add("x", "y", "dropped")
	out := tb.String()
	if strings.Contains(out, "dropped") {
		t.Errorf("extra cell not dropped:\n%s", out)
	}
}

func TestPlotBasics(t *testing.T) {
	p := Plot{Title: "test plot", XLabel: "x", YLabel: "y", Width: 40, Height: 10}
	p.AddSeries("linear", '*', []float64{1, 2, 3, 4}, []float64{1, 2, 3, 4})
	out := p.String()
	if !strings.Contains(out, "test plot") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "*") {
		t.Error("no plotted points")
	}
	if !strings.Contains(out, "linear") {
		t.Error("legend missing")
	}
	// Monotone series: the first data line (top) should contain the marker
	// near the right edge, the last near the left.
	lines := strings.Split(out, "\n")
	top := lines[1]
	if pos := strings.IndexRune(top, '*'); pos < len(top)/2 {
		t.Errorf("increasing series should peak on the right:\n%s", out)
	}
}

func TestPlotLogAxes(t *testing.T) {
	p := Plot{LogX: true, LogY: true, Width: 40, Height: 10}
	p.AddSeries("decade", 'o', []float64{0.001, 0.01, 0.1, 1}, []float64{1e6, 1e4, 1e2, 1})
	out := p.String()
	if !strings.Contains(out, "o") {
		t.Errorf("no points on log axes:\n%s", out)
	}
	// On log-log, 1/x² is a straight line: markers should appear in at
	// least 4 distinct rows.
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.ContainsRune(line, 'o') && !strings.Contains(line, "decade") {
			rows++
		}
	}
	if rows < 4 {
		t.Errorf("expected ≥4 marker rows, got %d:\n%s", rows, out)
	}
}

func TestPlotSkipsNonPositiveOnLogAxes(t *testing.T) {
	p := Plot{LogY: true, Width: 30, Height: 8}
	p.AddSeries("s", 'x', []float64{1, 2, 3}, []float64{0, -5, 10})
	out := p.String()
	count := strings.Count(out, "x:")
	_ = count
	markers := 0
	for _, line := range strings.Split(out, "\n") {
		if !strings.Contains(line, "s") || true {
			markers += strings.Count(line, "x")
		}
	}
	// Only the y=10 point survives (plus the legend line's 'x').
	if markers > 3 {
		t.Errorf("non-positive values leaked onto log axis:\n%s", out)
	}
}

func TestPlotEmptySeries(t *testing.T) {
	p := Plot{}
	out := p.String()
	if out == "" {
		t.Error("empty plot should still render something")
	}
}
