package analyzers

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestAtomicFields(t *testing.T) {
	a := NewAtomicFields(AtomicFieldsConfig{
		Packages:   []string{"..."},
		AllowFuncs: []string{"atomicfields.finalize"},
	})
	analysistest.Run(t, testdata(t), a, "atomicfields")
}

// TestAtomicFieldsAllowAll: declaring every accessor as a sync point
// silences the fixture — the allowlist is honored per function.
func TestAtomicFieldsAllowAll(t *testing.T) {
	a := NewAtomicFields(AtomicFieldsConfig{
		Packages: []string{"..."},
		AllowFuncs: []string{
			"atomicfields.finalize",
			"atomicfields.recorder.snapshot",
		},
	})
	loadAndExpectNone(t, a, "atomicfields")
}
