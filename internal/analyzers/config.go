// Package analyzers is the repository's determinism-contract lint suite:
// five static-analysis passes (on the in-tree internal/analysis framework)
// that machine-check the invariants docs/ARCHITECTURE.md states in prose —
// no wall clock or global RNG in trial paths, sorted output from map
// iteration, all-integer mergeable accumulators, atomics never mixed with
// plain access, and golden-serialized results free of runtime metrics
// outside the stripped "runtime" key.
//
// Every pass reads its scope and allowlist from a Config (ndlint.json at
// the repository root, loaded by cmd/ndlint), so exceptions are declared
// in one reviewed file instead of silently hard-coded.
package analyzers

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

// Config is the suite's configuration document: one section per analyzer.
// The zero value runs nothing (every scope empty), so a config must state
// what it checks — a missing section cannot silently widen or narrow a
// pass.
type Config struct {
	NoDeterminism NoDeterminismConfig `json:"nodeterminism"`
	MapRange      MapRangeConfig      `json:"maprange"`
	IntAccum      IntAccumConfig      `json:"intaccum"`
	AtomicFields  AtomicFieldsConfig  `json:"atomicfields"`
	GoldenPurity  GoldenPurityConfig  `json:"goldenpurity"`
}

// NoDeterminismConfig scopes the wall-clock/global-RNG ban.
type NoDeterminismConfig struct {
	// Packages are the import-path patterns the pass applies to: exact
	// paths, "prefix/..." subtrees, or "..." for everything.
	Packages []string `json:"packages"`

	// AllowFiles suppress diagnostics in the named files (slash-separated
	// path suffixes, e.g. "internal/engine/metrics.go") — the declared
	// exceptions, typically observability code measuring wall time.
	AllowFiles []string `json:"allow_files,omitempty"`
}

// MapRangeConfig scopes the unsorted-map-iteration check.
type MapRangeConfig struct {
	Packages   []string `json:"packages"`
	AllowFiles []string `json:"allow_files,omitempty"`
}

// IntAccumConfig names the mergeable accumulator types that must stay
// all-integer.
type IntAccumConfig struct {
	// Types are fully qualified type names ("pkgpath.TypeName").
	Types []string `json:"types"`

	// AllowFields are declared field exceptions ("pkgpath.TypeName.Field").
	AllowFields []string `json:"allow_fields,omitempty"`
}

// AtomicFieldsConfig scopes the no-mixed-atomic-access check.
type AtomicFieldsConfig struct {
	Packages []string `json:"packages"`

	// AllowFuncs are the documented sync points: functions that may access
	// atomic fields plainly ("pkgpath.Func" or "pkgpath.Type.Method").
	AllowFuncs []string `json:"allow_funcs,omitempty"`
}

// GoldenPurityConfig names the golden-serialized root types and the
// metrics packages they must only reference under the runtime key.
type GoldenPurityConfig struct {
	// Roots are the result types golden files serialize
	// ("pkgpath.TypeName"); every struct type reachable from them through
	// exported, serialized fields is checked.
	Roots []string `json:"roots"`

	// MetricsPackages are the observability packages whose types may only
	// appear under RuntimeKey.
	MetricsPackages []string `json:"metrics_packages"`

	// RuntimeKey is the JSON key StripRuntime removes (default "runtime").
	RuntimeKey string `json:"runtime_key,omitempty"`
}

// LoadConfig reads and strictly parses a Config file: unknown keys are
// rejected so a typo'd section cannot silently disable a pass.
func LoadConfig(path string) (Config, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return Config{}, err
	}
	dec := json.NewDecoder(bytes.NewReader(blob))
	dec.DisallowUnknownFields()
	var cfg Config
	if err := dec.Decode(&cfg); err != nil {
		return Config{}, fmt.Errorf("parsing %s: %w", path, err)
	}
	return cfg, nil
}

// All constructs the full suite under one config, in fixed order.
func All(cfg Config) []*analysis.Analyzer {
	return []*analysis.Analyzer{
		NewNoDeterminism(cfg.NoDeterminism),
		NewMapRange(cfg.MapRange),
		NewIntAccum(cfg.IntAccum),
		NewAtomicFields(cfg.AtomicFields),
		NewGoldenPurity(cfg.GoldenPurity),
	}
}

// inScope reports whether pkgpath matches any of the patterns: "..."
// matches everything, "prefix/..." a subtree (including the prefix
// itself), anything else exactly.
func inScope(patterns []string, pkgpath string) bool {
	for _, pat := range patterns {
		if pat == "..." {
			return true
		}
		if prefix, ok := strings.CutSuffix(pat, "/..."); ok {
			if pkgpath == prefix || strings.HasPrefix(pkgpath, prefix+"/") {
				return true
			}
			continue
		}
		if pkgpath == pat {
			return true
		}
	}
	return false
}

// fileAllowed reports whether filename (an absolute position filename)
// ends with one of the declared allowlist suffixes.
func fileAllowed(allow []string, filename string) bool {
	f := filepath.ToSlash(filename)
	for _, suffix := range allow {
		if f == suffix || strings.HasSuffix(f, "/"+suffix) {
			return true
		}
	}
	return false
}

// splitQualified splits "pkgpath.Name" on the last dot of the final path
// element: everything before the element's first dot is the package path.
func splitQualified(q string) (pkgpath, name string, err error) {
	slash := strings.LastIndexByte(q, '/')
	dot := strings.IndexByte(q[slash+1:], '.')
	if dot < 0 {
		return "", "", fmt.Errorf("qualified name %q: want \"pkgpath.Name\"", q)
	}
	return q[:slash+1+dot], q[slash+1+dot+1:], nil
}
