package analyzers

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
)

func testdata(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

func TestNoDeterminism(t *testing.T) {
	a := NewNoDeterminism(NoDeterminismConfig{
		Packages:   []string{"..."},
		AllowFiles: []string{"nodeterminism/allowed.go"},
	})
	analysistest.Run(t, testdata(t), a, "nodeterminism")
}

// TestNoDeterminismOutOfScope: a package outside the configured scope is
// never reported, violations and all.
func TestNoDeterminismOutOfScope(t *testing.T) {
	a := NewNoDeterminism(NoDeterminismConfig{Packages: []string{"someother/..."}})
	loadAndExpectNone(t, a, "nodeterminism")
}
