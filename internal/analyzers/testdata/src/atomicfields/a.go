// Package atomicfields exercises the no-mixed-atomic-access check.
package atomicfields

import "sync/atomic"

// recorder mixes access styles on n: add() updates it atomically, but
// snapshot() reads it plainly — a data race the analyzer must flag.
type recorder struct {
	n     int64
	total int64
}

func (r *recorder) add() {
	atomic.AddInt64(&r.n, 1)
}

func (r *recorder) snapshot() int64 {
	return r.n // want `plain access to atomic field recorder\.n`
}

// load is atomic everywhere: silent.
func (r *recorder) load() int64 {
	return atomic.LoadInt64(&r.n)
}

// plainOnly never touches atomics on total, so plain access is fine.
func (r *recorder) plainOnly() int64 {
	r.total++
	return r.total
}

// typed uses the sync/atomic wrapper types: safe by construction, plain
// access is not even expressible.
type typed struct {
	n atomic.Int64
}

func (t *typed) bump() int64 {
	t.n.Add(1)
	return t.n.Load()
}

// finalize is a documented sync point (allow_funcs in the test config):
// its plain read happens after the owner's pool-drain barrier.
func finalize(r *recorder) int64 {
	return r.n
}
