// Package obsstub stands in for an observability package in the
// goldenpurity fixtures: its types are runtime metrics that must only
// appear under the stripped "runtime" JSON key.
package obsstub

// RunMetrics mimics a run-level metrics record.
type RunMetrics struct {
	WallMS float64 `json:"wall_ms"`
}

// PointMetrics mimics a per-point metrics record.
type PointMetrics struct {
	WallMS float64 `json:"wall_ms"`
}
