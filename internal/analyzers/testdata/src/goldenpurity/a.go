// Package goldenpurity exercises the metrics-only-under-runtime check.
package goldenpurity

import "obsstub"

// Result is a clean golden root: its metrics ride under the "runtime" key
// that StripRuntime removes, and the unexported field is never serialized.
type Result struct {
	Name    string              `json:"name"`
	Value   float64             `json:"value"`
	Runtime *obsstub.RunMetrics `json:"runtime,omitempty"`
	scratch obsstub.PointMetrics
}

// BadResult leaks metrics under a non-runtime key.
type BadResult struct {
	Name    string              `json:"name"`
	Metrics *obsstub.RunMetrics `json:"metrics,omitempty"` // want `golden-serialized field BadResult\.Metrics carries metrics type \*obsstub\.RunMetrics under JSON key "metrics"`
}

// Nested reaches the leak through the serialized object graph: the root is
// clean but its Points rows are not.
type Nested struct {
	Points []PointRow `json:"points"`
}

// PointRow carries per-point metrics under an untagged field (JSON key
// "Stats" — still not "runtime").
type PointRow struct {
	Value float64
	Stats obsstub.PointMetrics // want `golden-serialized field PointRow\.Stats carries metrics type obsstub\.PointMetrics under JSON key "Stats"`
}

// Skipped hides metrics behind json:"-": never serialized, silent.
type Skipped struct {
	Hidden obsstub.RunMetrics `json:"-"`
}
