// Package nodeterminism exercises the wall-clock/global-RNG ban: seeded
// violations below must fire, the injected-source idiom must stay silent.
package nodeterminism

import (
	"math/rand"
	"time"
)

// trialBad draws from the process-global RNG and reads the wall clock —
// both forbidden in trial paths.
func trialBad() (int, time.Time) {
	n := rand.Intn(10)                 // want `global RNG call rand\.Intn`
	start := time.Now()                // want `wall-clock call time\.Now`
	_ = time.Since(start)              // want `wall-clock call time\.Since`
	_ = rand.Float64()                 // want `global RNG call rand\.Float64`
	time.Sleep(time.Millisecond)       // want `wall-clock call time\.Sleep`
	rand.Shuffle(3, func(i, j int) {}) // want `global RNG call rand\.Shuffle`
	return n, start
}

// trialGood draws every random number from an injected source and never
// touches the wall clock: the sanctioned pattern.
func trialGood(src rand.Source) int {
	rng := rand.New(src) // constructors are fine; the stream is injected
	sum := rng.Intn(10) + int(rng.Int63n(5))
	if rng.Float64() > 0.5 {
		sum++
	}
	return sum
}

// seededGood builds a deterministic stream from an explicit seed — also
// fine: no global state, no wall clock.
func seededGood(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// durationsGood uses time only for arithmetic types, never the clock.
func durationsGood(d time.Duration) time.Duration {
	return d * 2
}

// fnRefBad passes a global-RNG function as a value: still a use of the
// global source.
func fnRefBad() func(int) int {
	return rand.Intn // want `global RNG call rand\.Intn`
}
