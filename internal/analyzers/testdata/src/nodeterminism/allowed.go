package nodeterminism

import "time"

// observe measures wall time — a genuine observability need. This file is
// on the test config's allow_files list, so nothing here is reported.
func observe() time.Duration {
	start := time.Now()
	return time.Since(start)
}
