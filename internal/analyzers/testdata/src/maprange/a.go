// Package maprange exercises the unsorted-map-iteration check.
package maprange

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// listBad collects map keys in iteration order and never sorts: the
// classic golden-nondeterminism bug.
func listBad(m map[string]int) []string {
	var names []string
	for n := range m {
		names = append(names, n) // want `append to "names" during map iteration with no subsequent sort`
	}
	return names
}

// listGood collects then sorts — the sanctioned idiom.
func listGood(m map[string]int) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// sliceSortGood discharges the check with sort.Slice too.
func sliceSortGood(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// localGood appends to a slice born inside the loop body: its order dies
// with the iteration, nothing leaks.
func localGood(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var doubled []int
		for _, v := range vs {
			doubled = append(doubled, 2*v)
		}
		total += len(doubled)
	}
	return total
}

// printBad writes formatted output while iterating: the rows land in map
// order.
func printBad(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `fmt\.Printf called during map iteration`
	}
}

// encodeBad serializes JSON mid-iteration.
func encodeBad(m map[string]int) {
	enc := json.NewEncoder(os.Stdout)
	for k := range m {
		enc.Encode(k) // want `json\.Encode called during map iteration`
	}
}

// errorsGood builds error strings during iteration — fmt.Errorf and
// Sprintf are not sinks; whether their results leak is the append rule's
// business.
func errorsGood(m map[string]int) error {
	for k, v := range m {
		if v < 0 {
			return fmt.Errorf("negative entry %s", k)
		}
	}
	return nil
}

// sortedRangeGood iterates a slice (not a map): out of scope.
func sortedRangeGood(names []string) []string {
	var out []string
	for _, n := range names {
		out = append(out, n)
	}
	return out
}
