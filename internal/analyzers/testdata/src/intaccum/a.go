// Package intaccum exercises the all-integer accumulator check.
package intaccum

// ticks is a named integer type, as fine as a plain int64.
type ticks int64

// goodAccum is a valid mergeable accumulator: every field integer-valued,
// through named types, slices, arrays and nested structs.
type goodAccum struct {
	count    int64
	min, max ticks
	bins     []int64
	grid     [4]uint32
	nested   counters
}

type counters struct {
	hits, misses uint64
}

// badAccum smuggles floats into merged state.
type badAccum struct {
	count int64
	mean  float64   // want `accumulator field intaccum\.badAccum\.mean is float64`
	bins  []float32 // want `accumulator field intaccum\.badAccum\.bins is a slice of float32`
}

// nestedBad hides the float one level down.
type nestedBad struct {
	inner floaty // want `accumulator field intaccum\.nestedBad\.inner is a struct carrying float64`
}

type floaty struct {
	x float64
}

// exceptAccum declares its float as a config exception (allow_fields), so
// only the undeclared one fires.
type exceptAccum struct {
	scale float64 // declared exception: constant per-point scale, never merged
	rate  float64 // want `accumulator field intaccum\.exceptAccum\.rate is float64`
	count int64
}
