package analyzers

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestIntAccum(t *testing.T) {
	a := NewIntAccum(IntAccumConfig{
		Types: []string{
			"intaccum.goodAccum",
			"intaccum.badAccum",
			"intaccum.nestedBad",
			"intaccum.exceptAccum",
		},
		AllowFields: []string{"intaccum.exceptAccum.scale"},
	})
	analysistest.Run(t, testdata(t), a, "intaccum")
}

// TestIntAccumStaleConfig: naming a type that does not exist is an
// analyzer error, not a silent no-op — config rot must be loud.
func TestIntAccumStaleConfig(t *testing.T) {
	a := NewIntAccum(IntAccumConfig{Types: []string{"intaccum.vanishedAccum"}})
	src := testdata(t) + "/src"
	loader := analysis.NewLoader(src, "")
	pkgs, err := loader.LoadPatterns(src, "intaccum")
	if err != nil {
		t.Fatal(err)
	}
	_, err = analysis.Run([]*analysis.Analyzer{a}, pkgs)
	if err == nil || !strings.Contains(err.Error(), "vanishedAccum") {
		t.Fatalf("want stale-config error naming vanishedAccum, got %v", err)
	}
}
