package analyzers

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis"
)

// TestRepoIsClean runs the full suite over the real module with the
// checked-in ndlint.json — the same invocation CI's ndlint job makes — and
// asserts zero findings. This is the regression lock on the violations
// fixed when the suite landed (streamAccum's float worst field, now
// timebase.Ticks): reintroducing one fails this test, not just CI.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type-check is slow; skipped with -short")
	}
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	modPath, err := analysis.ModulePath(root)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadConfig(filepath.Join(root, "ndlint.json"))
	if err != nil {
		t.Fatal(err)
	}
	loader := analysis.NewLoader(root, modPath)
	pkgs, err := loader.LoadPatterns(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analysis.Run(All(cfg), pkgs)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
