package analyzers

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestMapRange(t *testing.T) {
	a := NewMapRange(MapRangeConfig{Packages: []string{"..."}})
	analysistest.Run(t, testdata(t), a, "maprange")
}

// TestMapRangeAllowFile: the whole fixture goes quiet when its file is a
// declared exception.
func TestMapRangeAllowFile(t *testing.T) {
	a := NewMapRange(MapRangeConfig{
		Packages:   []string{"..."},
		AllowFiles: []string{"maprange/a.go"},
	})
	loadAndExpectNone(t, a, "maprange")
}
