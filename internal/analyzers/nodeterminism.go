package analyzers

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// forbiddenTimeFuncs are the package time functions that read or depend on
// the wall clock. Referencing any of them from a trial-path package makes
// results depend on when (or how fast) the run executed — the exact
// dependence the determinism contract forbids.
var forbiddenTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"After": true, "Tick": true, "NewTicker": true, "NewTimer": true,
	"AfterFunc": true, "Sleep": true,
}

// forbiddenRandFuncs are the math/rand (and math/rand/v2) top-level
// functions that draw from the process-global source. Trial code must draw
// from an injected rand.Source (see sim.Config.Source) so every trial has
// its own deterministic stream; the global source is shared, seeded
// nondeterministically, and serializes goroutines on one lock.
var forbiddenRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int64": true, "Int64N": true,
	"IntN": true, "Uint32": true, "Uint64": true, "Uint64N": true,
	"UintN": true, "Uint": true, "N": true,
	"Float32": true, "Float64": true, "NormFloat64": true,
	"ExpFloat64": true, "Perm": true, "Shuffle": true, "Read": true,
	"Seed": true,
}

// NewNoDeterminism builds the nodeterminism pass: within the configured
// packages, forbid wall-clock reads (time.Now, time.Since, timers) and
// global math/rand draws. Randomness must flow through an injected
// rand.Source; time must come from the simulated timebase. Files on the
// allowlist (observability code measuring real wall time) are the declared
// exceptions.
func NewNoDeterminism(cfg NoDeterminismConfig) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "nodeterminism",
		Doc:  "forbid wall-clock and global-RNG use in trial-path packages",
	}
	a.Run = func(pass *analysis.Pass) error {
		if !inScope(cfg.Packages, pass.Pkg.Path()) {
			return nil
		}
		for _, file := range pass.Files {
			filename := pass.Fset.Position(file.Pos()).Filename
			if fileAllowed(cfg.AllowFiles, filename) {
				continue
			}
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				// Only package-level functions: methods on time.Timer or
				// rand.Rand values are fine — a *rand.Rand is exactly the
				// injected-stream pattern the contract wants.
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					return true
				}
				switch fn.Pkg().Path() {
				case "time":
					if forbiddenTimeFuncs[fn.Name()] {
						pass.Reportf(sel.Pos(),
							"wall-clock call time.%s in deterministic trial path (inject simulated time, or allowlist observability files in ndlint config)",
							fn.Name())
					}
				case "math/rand", "math/rand/v2":
					if forbiddenRandFuncs[fn.Name()] {
						pass.Reportf(sel.Pos(),
							"global RNG call rand.%s in deterministic trial path (draw from an injected rand.Source instead)",
							fn.Name())
					}
				}
				return true
			})
		}
		return nil
	}
	return a
}
