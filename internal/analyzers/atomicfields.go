package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// NewAtomicFields builds the atomicfields pass: a struct field whose
// address is ever passed to a sync/atomic function is an atomic field, and
// every other access to it must also be atomic — a plain read or write
// racing an atomic update is undefined behavior the race detector only
// catches when a test happens to interleave it. Functions listed in
// AllowFuncs ("pkgpath.Func" or "pkgpath.Type.Method") are the documented
// sync points (constructors before publication, finalizers after a
// pool-drain barrier) where plain access is declared safe.
//
// Fields of the typed atomic.Int64/Uint64/Bool/... wrappers are safe by
// construction (no plain access is expressible) and are not tracked.
func NewAtomicFields(cfg AtomicFieldsConfig) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "atomicfields",
		Doc:  "fields accessed via sync/atomic must never be accessed plainly",
	}
	a.Run = func(pass *analysis.Pass) error {
		if !inScope(cfg.Packages, pass.Pkg.Path()) {
			return nil
		}
		// Phase 1: every &struct.field handed to a sync/atomic function,
		// remembering the exact selector nodes used atomically.
		atomicFields := make(map[*types.Var]bool)
		atomicUses := make(map[*ast.SelectorExpr]bool)
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isAtomicFunc(pass, call) {
					return true
				}
				for _, arg := range call.Args {
					unary, ok := arg.(*ast.UnaryExpr)
					if !ok || unary.Op.String() != "&" {
						continue
					}
					sel, ok := unary.X.(*ast.SelectorExpr)
					if !ok {
						continue
					}
					if v := fieldVar(pass, sel); v != nil {
						atomicFields[v] = true
						atomicUses[sel] = true
					}
				}
				return true
			})
		}
		if len(atomicFields) == 0 {
			return nil
		}
		// Phase 2: any other selector reaching one of those fields is a
		// plain access, reported unless the enclosing function is a
		// declared sync point.
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				key := funcKey(pass.Pkg.Path(), fd)
				allowed := false
				for _, f := range cfg.AllowFuncs {
					if f == key {
						allowed = true
						break
					}
				}
				if allowed {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok || atomicUses[sel] {
						return true
					}
					v := fieldVar(pass, sel)
					if v != nil && atomicFields[v] {
						pass.Reportf(sel.Pos(),
							"plain access to atomic field %s.%s in %s: this field is updated via sync/atomic elsewhere, so every access must be atomic (or declare %s as a sync point in allow_funcs)",
							fieldOwner(v), v.Name(), key, key)
					}
					return true
				})
			}
		}
		return nil
	}
	return a
}

// isAtomicFunc reports whether call targets a package-level sync/atomic
// function (AddInt64, LoadUint32, CompareAndSwapPointer, ...).
func isAtomicFunc(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// fieldVar resolves a selector to the struct field it reads, if any.
func fieldVar(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Var {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj().(*types.Var)
}

// fieldOwner names the struct type a field belongs to, best-effort (the
// declaring package's type whose struct contains the var).
func fieldOwner(v *types.Var) string {
	if v.Pkg() == nil {
		return "?"
	}
	scope := v.Pkg().Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == v {
				return name
			}
		}
	}
	return "?"
}

// funcKey is the allowlist key for a function declaration:
// "pkgpath.Func" or "pkgpath.Type.Method" (pointer receivers stripped).
func funcKey(pkgpath string, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return pkgpath + "." + fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	name := "?"
	switch t := t.(type) {
	case *ast.Ident:
		name = t.Name
	case *ast.IndexExpr: // generic receiver Type[T]
		if id, ok := t.X.(*ast.Ident); ok {
			name = id.Name
		}
	}
	return pkgpath + "." + name + "." + strings.TrimSpace(fd.Name.Name)
}
