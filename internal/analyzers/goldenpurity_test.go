package analyzers

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestGoldenPurity(t *testing.T) {
	a := NewGoldenPurity(GoldenPurityConfig{
		Roots: []string{
			"goldenpurity.Result",
			"goldenpurity.BadResult",
			"goldenpurity.Nested",
			"goldenpurity.Skipped",
		},
		MetricsPackages: []string{"obsstub"},
		RuntimeKey:      "runtime",
	})
	analysistest.Run(t, testdata(t), a, "goldenpurity")
}

// TestGoldenPurityRootsScoped: with only the clean roots configured, the
// leaky types are unreachable and nothing fires.
func TestGoldenPurityRootsScoped(t *testing.T) {
	a := NewGoldenPurity(GoldenPurityConfig{
		Roots:           []string{"goldenpurity.Result", "goldenpurity.Skipped"},
		MetricsPackages: []string{"obsstub"},
	})
	loadAndExpectNone(t, a, "goldenpurity")
}
