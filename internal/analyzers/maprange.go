package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// NewMapRange builds the maprange pass: the classic golden-nondeterminism
// bug is iterating a map and letting the iteration order reach serialized
// output. Two patterns are flagged inside `for ... range <map>` bodies:
//
//   - appending to a slice declared outside the loop with no subsequent
//     sort of that slice in the same function — the slice inherits map
//     order and whatever consumes it (JSON encoding, table rendering,
//     accumulator merge) becomes run-dependent;
//   - calling an order-sensitive sink directly (fmt printing, json
//     encoding, or any call named in SinkCalls) — the output is written in
//     map order with no chance to sort at all.
//
// A sort (sort.* or slices.Sort*) of the collected slice after the loop
// silences the first pattern: collect-then-sort is exactly the sanctioned
// idiom (see engine.Presets).
func NewMapRange(cfg MapRangeConfig) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "maprange",
		Doc:  "flag map iteration whose order can reach serialized output unsorted",
	}
	a.Run = func(pass *analysis.Pass) error {
		if !inScope(cfg.Packages, pass.Pkg.Path()) {
			return nil
		}
		for _, file := range pass.Files {
			filename := pass.Fset.Position(file.Pos()).Filename
			if fileAllowed(cfg.AllowFiles, filename) {
				continue
			}
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					checkFuncBody(pass, fd.Body)
				}
			}
		}
		return nil
	}
	return a
}

// checkFuncBody finds map ranges in one function body, descending into
// nested function literals with their own (nested) body as the sort scope.
func checkFuncBody(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkFuncBody(pass, n.Body)
			return false
		case *ast.RangeStmt:
			if isMapType(pass.TypesInfo.TypeOf(n.X)) {
				checkMapRange(pass, body, n)
			}
		}
		return true
	})
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRange inspects one map-range statement inside scope (the
// enclosing function body).
func checkMapRange(pass *analysis.Pass, scope *ast.BlockStmt, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) || i >= len(n.Lhs) {
					continue
				}
				ident, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.ObjectOf(ident)
				if obj == nil || withinNode(rng, obj.Pos()) {
					continue // loop-local slice: order dies with the iteration
				}
				if sortedAfter(pass, scope, rng.End(), obj) {
					continue
				}
				pass.Reportf(n.Pos(),
					"append to %q during map iteration with no subsequent sort: map order reaches the collected slice (sort it after the loop, or allowlist in ndlint config)",
					ident.Name)
			}
		case *ast.CallExpr:
			if name, ok := sinkCall(pass, n); ok {
				pass.Reportf(n.Pos(),
					"%s called during map iteration: output is emitted in nondeterministic map order (collect and sort first)",
					name)
			}
		}
		return true
	})
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	ident, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[ident].(*types.Builtin)
	return ok && b.Name() == "append"
}

// withinNode reports whether pos falls inside n's source span.
func withinNode(n ast.Node, pos token.Pos) bool {
	return n.Pos() <= pos && pos < n.End()
}

// sortedAfter reports whether a sort/slices call referencing obj appears
// in scope after pos — the collect-then-sort discharge.
func sortedAfter(pass *analysis.Pass, scope *ast.BlockStmt, pos token.Pos, obj types.Object) bool {
	found := false
	ast.Inspect(scope, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			refs := false
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
					refs = true
				}
				return !refs
			})
			if refs {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// calleeFunc resolves a call's target to a types.Func when it is a named
// function or method.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// builtinSinks are the always-on order-sensitive sinks: direct writes of
// formatted output or JSON.
var builtinSinks = map[string]map[string]bool{
	"fmt":           {"Print": true, "Printf": true, "Println": true, "Fprint": true, "Fprintf": true, "Fprintln": true},
	"encoding/json": {"Marshal": true, "MarshalIndent": true, "Encode": true},
}

// sinkCall reports whether call targets an order-sensitive sink, returning
// its display name.
func sinkCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	if names, ok := builtinSinks[fn.Pkg().Path()]; ok && names[fn.Name()] {
		return fn.Pkg().Name() + "." + fn.Name(), true
	}
	return "", false
}
