package analyzers

import (
	"fmt"
	"go/types"

	"repro/internal/analysis"
)

// NewIntAccum builds the intaccum pass: the configured accumulator/merge
// types must declare only integer-valued state. Integer addition and
// min/max are associative and commutative, so per-worker accumulators
// merge to bit-identical results in any order; one float field breaks the
// contract silently (float addition is order-sensitive). Fields are
// checked recursively through named types, structs, arrays, slices, maps
// and pointers; declared exceptions go in AllowFields.
func NewIntAccum(cfg IntAccumConfig) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "intaccum",
		Doc:  "mergeable accumulator types must hold only integer state",
	}
	a.Run = func(pass *analysis.Pass) error {
		allow := make(map[string]bool)
		for _, f := range cfg.AllowFields {
			allow[f] = true
		}
		for _, q := range cfg.Types {
			pkgpath, name, err := splitQualified(q)
			if err != nil {
				return err
			}
			if pkgpath != pass.Pkg.Path() {
				continue
			}
			obj := pass.Pkg.Scope().Lookup(name)
			if obj == nil {
				return fmt.Errorf("configured accumulator type %s not found (stale ndlint config?)", q)
			}
			named, ok := obj.Type().(*types.Named)
			if !ok {
				return fmt.Errorf("configured accumulator %s is not a named type", q)
			}
			st, ok := named.Underlying().(*types.Struct)
			if !ok {
				return fmt.Errorf("configured accumulator %s is not a struct", q)
			}
			checkAccumStruct(pass, q, st, allow, map[types.Type]bool{named: true})
		}
		return nil
	}
	return a
}

// checkAccumStruct reports every field of st (recursively) whose type is
// not integer-valued. qual is the configured type's qualified name, used
// to build the allowlist key for direct fields.
func checkAccumStruct(pass *analysis.Pass, qual string, st *types.Struct, allow map[string]bool, seen map[types.Type]bool) {
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if allow[qual+"."+f.Name()] {
			continue
		}
		if bad, why := nonIntegerPart(f.Type(), seen); bad {
			pass.Reportf(f.Pos(),
				"accumulator field %s.%s is %s: merge types must be all-integer so merges stay exact (fix the field or declare it in allow_fields)",
				qual, f.Name(), why)
		}
	}
}

// nonIntegerPart reports whether t contains non-integer scalar state,
// returning a human description of the offending part. seen guards
// against recursive types.
func nonIntegerPart(t types.Type, seen map[types.Type]bool) (bool, string) {
	if seen[t] {
		return false, ""
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Basic:
		switch u.Kind() {
		case types.Int, types.Int8, types.Int16, types.Int32, types.Int64,
			types.Uint, types.Uint8, types.Uint16, types.Uint32, types.Uint64,
			types.Uintptr:
			return false, ""
		default:
			return true, describeType(t)
		}
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if bad, why := nonIntegerPart(u.Field(i).Type(), seen); bad {
				return true, fmt.Sprintf("a struct carrying %s (field %q)", why, u.Field(i).Name())
			}
		}
		return false, ""
	case *types.Slice:
		if bad, why := nonIntegerPart(u.Elem(), seen); bad {
			return true, "a slice of " + why
		}
		return false, ""
	case *types.Array:
		if bad, why := nonIntegerPart(u.Elem(), seen); bad {
			return true, "an array of " + why
		}
		return false, ""
	case *types.Map:
		if bad, why := nonIntegerPart(u.Key(), seen); bad {
			return true, "a map keyed by " + why
		}
		if bad, why := nonIntegerPart(u.Elem(), seen); bad {
			return true, "a map of " + why
		}
		return false, ""
	case *types.Pointer:
		if bad, why := nonIntegerPart(u.Elem(), seen); bad {
			return true, "a pointer to " + why
		}
		return false, ""
	default:
		return true, describeType(t)
	}
}

func describeType(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
