package analyzers

import (
	"fmt"
	"go/types"
	"reflect"
	"strings"

	"repro/internal/analysis"
)

// NewGoldenPurity builds the goldenpurity pass: result types the golden
// harness serializes must not leak observability state into the pinned
// bytes. Concretely, walking every struct type reachable from the
// configured roots through serialized fields, any field whose type comes
// from a metrics package must sit under the configured runtime JSON key —
// the one key StripRuntime removes before golden comparison. A metrics
// field under any other key would make goldens differ run to run.
func NewGoldenPurity(cfg GoldenPurityConfig) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "goldenpurity",
		Doc:  "golden-serialized types may carry metrics only under the stripped runtime key",
	}
	a.Run = func(pass *analysis.Pass) error {
		key := cfg.RuntimeKey
		if key == "" {
			key = "runtime"
		}
		metrics := make(map[string]bool)
		for _, p := range cfg.MetricsPackages {
			metrics[p] = true
		}
		seen := make(map[*types.Named]bool)
		for _, q := range cfg.Roots {
			pkgpath, name, err := splitQualified(q)
			if err != nil {
				return err
			}
			if pkgpath != pass.Pkg.Path() {
				continue
			}
			obj := pass.Pkg.Scope().Lookup(name)
			if obj == nil {
				return fmt.Errorf("configured golden root %s not found (stale ndlint config?)", q)
			}
			named, ok := obj.Type().(*types.Named)
			if !ok {
				return fmt.Errorf("configured golden root %s is not a named type", q)
			}
			walkGoldenType(pass, named, key, metrics, seen)
		}
		return nil
	}
	return a
}

// walkGoldenType checks one named type's struct fields and recurses into
// the serialized object graph.
func walkGoldenType(pass *analysis.Pass, named *types.Named, key string, metrics map[string]bool, seen map[*types.Named]bool) {
	if seen[named] {
		return
	}
	seen[named] = true
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	typeName := named.Obj().Name()
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		// encoding/json serializes only exported fields; unexported state
		// never reaches a golden file.
		if !f.Exported() {
			continue
		}
		jsonName, skip := jsonFieldName(f.Name(), st.Tag(i))
		if skip {
			continue
		}
		elem := namedElem(f.Type())
		if elem != nil && elem.Obj().Pkg() != nil && metrics[elem.Obj().Pkg().Path()] {
			if jsonName != key {
				pass.Reportf(f.Pos(),
					"golden-serialized field %s.%s carries metrics type %s under JSON key %q: metrics may only appear under the %q key that StripRuntime removes",
					typeName, f.Name(), describeType(f.Type()), jsonName, key)
			}
			// Under the runtime key the whole metrics subtree is stripped
			// before golden comparison; no need to descend.
			continue
		}
		if elem != nil {
			walkGoldenType(pass, elem, key, metrics, seen)
		}
	}
}

// namedElem strips pointers, slices, arrays and maps down to the named
// element type, or nil for plain scalars and anonymous composites.
func namedElem(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Named:
			return u
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Map:
			t = u.Elem()
		default:
			return nil
		}
	}
}

// jsonFieldName resolves the key encoding/json would use for a field, and
// whether the field is skipped entirely (json:"-").
func jsonFieldName(fieldName, tag string) (name string, skip bool) {
	jt := reflect.StructTag(tag).Get("json")
	if jt == "" {
		return fieldName, false
	}
	parts := strings.Split(jt, ",")
	if parts[0] == "-" && len(parts) == 1 {
		return "", true
	}
	if parts[0] == "" {
		return fieldName, false
	}
	return parts[0], false
}
