package analyzers

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis"
)

// loadAndExpectNone runs one analyzer over a fixture package expecting
// zero findings, ignoring the fixture's want comments — used to prove
// scope and allowlist machinery suppresses diagnostics wholesale.
func loadAndExpectNone(t *testing.T, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	src := filepath.Join(testdata(t), "src")
	loader := analysis.NewLoader(src, "")
	loaded, err := loader.LoadPatterns(src, pkgs...)
	if err != nil {
		t.Fatalf("loading %v: %v", pkgs, err)
	}
	findings, err := analysis.Run([]*analysis.Analyzer{a}, loaded)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding: %s", f)
	}
}
