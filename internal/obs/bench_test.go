package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func benchFixture(results ...BenchResult) BenchFile {
	return BenchFile{
		Schema:  BenchSchema,
		Host:    HostInfo{Go: "go1.22", OS: "linux", Arch: "amd64", CPUs: 8},
		Results: results,
	}
}

func row(name string, ns float64) BenchResult {
	return BenchResult{Name: name, Iters: 10, NsPerOp: ns}
}

func TestBenchFileValidate(t *testing.T) {
	good := benchFixture(row("a", 100))
	if err := good.Validate(); err != nil {
		t.Fatalf("valid file rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*BenchFile)
		want string
	}{
		{"schema", func(f *BenchFile) { f.Schema = "ndbench/0" }, "schema"},
		{"empty", func(f *BenchFile) { f.Results = nil }, "no results"},
		{"dup", func(f *BenchFile) { f.Results = append(f.Results, row("a", 50)) }, "duplicate"},
		{"noname", func(f *BenchFile) { f.Results[0].Name = "" }, "empty name"},
		{"iters", func(f *BenchFile) { f.Results[0].Iters = 0 }, "iters"},
		{"ns", func(f *BenchFile) { f.Results[0].NsPerOp = 0 }, "ns_per_op"},
		{"neg", func(f *BenchFile) { f.Results[0].AllocsPerOp = -1 }, "negative"},
	}
	for _, c := range cases {
		f := benchFixture(row("a", 100))
		c.mut(&f)
		err := f.Validate()
		if err == nil {
			t.Errorf("%s: invalid file accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// TestCompareBenchThresholds pins the -compare judgment: the tolerance
// band around ratio 1.0, regression above, improvement below, and the
// only-base/only-current classification of unmatched rows.
func TestCompareBenchThresholds(t *testing.T) {
	base := benchFixture(
		row("steady", 100),
		row("slower", 100),
		row("faster", 100),
		row("edge-high", 100),
		row("dropped", 100),
	)
	cur := benchFixture(
		row("steady", 109),    // within ±10%
		row("slower", 200),    // 2× — regression
		row("faster", 40),     // 0.4× — improvement
		row("edge-high", 110), // exactly 1+tol: NOT a regression (strict >)
		row("added", 100),     // only in current
	)
	deltas := CompareBench(base, cur, 0.10, 0)
	got := make(map[string]BenchDelta, len(deltas))
	for _, d := range deltas {
		got[d.Name] = d
	}
	if len(deltas) != 6 {
		t.Fatalf("want 6 rows, got %d", len(deltas))
	}
	// Rows come back sorted by name.
	for i := 1; i < len(deltas); i++ {
		if deltas[i-1].Name >= deltas[i].Name {
			t.Fatalf("rows not sorted: %q before %q", deltas[i-1].Name, deltas[i].Name)
		}
	}
	if d := got["steady"]; d.Regression || d.Improvement {
		t.Errorf("steady misjudged: %+v", d)
	}
	if d := got["slower"]; !d.Regression || d.Ratio != 2.0 {
		t.Errorf("slower misjudged: %+v", d)
	}
	if d := got["faster"]; !d.Improvement {
		t.Errorf("faster misjudged: %+v", d)
	}
	if d := got["edge-high"]; d.Regression {
		t.Errorf("ratio exactly at the tolerance edge must not regress: %+v", d)
	}
	if d := got["dropped"]; !d.OnlyBase || d.Regression {
		t.Errorf("dropped misjudged: %+v", d)
	}
	if d := got["added"]; !d.OnlyCurrent || d.Regression {
		t.Errorf("added misjudged: %+v", d)
	}
	if n := Regressions(deltas); n != 1 {
		t.Errorf("Regressions = %d, want 1", n)
	}
}

// TestCompareBenchDefaultTolerance: a non-positive tolerance falls back
// to the forgiving shared-runner default.
func TestCompareBenchDefaultTolerance(t *testing.T) {
	base := benchFixture(row("a", 100))
	cur := benchFixture(row("a", 120)) // +20%: inside the 25% default
	if n := Regressions(CompareBench(base, cur, 0, 0)); n != 0 {
		t.Fatalf("+20%% flagged under the %g default tolerance", DefaultBenchTolerance)
	}
	cur = benchFixture(row("a", 130)) // +30%: outside
	if n := Regressions(CompareBench(base, cur, 0, 0)); n != 1 {
		t.Fatal("+30% not flagged under the default tolerance")
	}
}

func allocRow(name string, ns float64, allocs int64) BenchResult {
	return BenchResult{Name: name, Iters: 10, NsPerOp: ns, AllocsPerOp: allocs}
}

// TestCompareBenchAllocRegression pins the allocs/op axis: growth beyond
// the alloc tolerance regresses, growth within it does not, shrinking
// never does, and a zero-alloc baseline flags ANY allocation — the exact
// guard an arena-reuse overhaul needs.
func TestCompareBenchAllocRegression(t *testing.T) {
	base := benchFixture(
		allocRow("steady", 100, 1000),
		allocRow("grown", 100, 1000),
		allocRow("shrunk", 100, 1000),
		allocRow("edge", 100, 1000),
		allocRow("waszero", 100, 0),
		allocRow("stayzero", 100, 0),
	)
	cur := benchFixture(
		allocRow("steady", 100, 1050), // +5%: inside the 10% band
		allocRow("grown", 100, 1200),  // +20%: regression
		allocRow("shrunk", 100, 100),  // 10× fewer: fine
		allocRow("edge", 100, 1100),   // exactly 1+tol: NOT a regression (strict >)
		allocRow("waszero", 100, 3),   // 0 → 3: regression, no finite ratio
		allocRow("stayzero", 100, 0),  // 0 → 0: fine
	)
	deltas := CompareBench(base, cur, 0.25, 0.10)
	got := make(map[string]BenchDelta, len(deltas))
	for _, d := range deltas {
		got[d.Name] = d
	}
	if d := got["steady"]; d.AllocRegression {
		t.Errorf("steady misjudged: %+v", d)
	}
	if d := got["grown"]; !d.AllocRegression || d.AllocRatio != 1.2 {
		t.Errorf("grown misjudged: %+v", d)
	}
	if d := got["shrunk"]; d.AllocRegression {
		t.Errorf("shrunk misjudged: %+v", d)
	}
	if d := got["edge"]; d.AllocRegression {
		t.Errorf("ratio exactly at the alloc tolerance edge must not regress: %+v", d)
	}
	if d := got["waszero"]; !d.AllocRegression || d.AllocRatio != 0 {
		t.Errorf("waszero misjudged: %+v", d)
	}
	if d := got["stayzero"]; d.AllocRegression {
		t.Errorf("stayzero misjudged: %+v", d)
	}
	// None of these rows moved on ns/op, so Regressions counts exactly the
	// alloc-regressed ones.
	if n := Regressions(deltas); n != 2 {
		t.Errorf("Regressions = %d, want 2 (grown, waszero)", n)
	}
	// A non-positive allocTol falls back to the 10% default.
	if n := Regressions(CompareBench(benchFixture(allocRow("a", 100, 100)), benchFixture(allocRow("a", 100, 115)), 0.25, 0)); n != 1 {
		t.Error("+15% allocs not flagged under the default alloc tolerance")
	}
}

func TestParseBenchFixtureJSON(t *testing.T) {
	blob := []byte(`{
		"schema": "ndbench/1",
		"label": "fixture",
		"host": {"go": "go1.22", "os": "linux", "arch": "amd64", "cpus": 4},
		"results": [
			{"name": "EngineScenarioAllCores", "iters": 50, "ns_per_op": 2.5e6,
			 "allocs_per_op": 120, "bytes_per_op": 80000,
			 "trials_per_op": 32, "trials_per_sec": 12800}
		]
	}`)
	f, err := ParseBenchFile(blob)
	if err != nil {
		t.Fatal(err)
	}
	if f.Results[0].TrialsPerSec != 12800 {
		t.Fatalf("round-trip lost trials/sec: %+v", f.Results[0])
	}
	if _, err := ParseBenchFile([]byte(`{"schema": "ndbench/1"}`)); err == nil {
		t.Fatal("empty result list parsed as valid")
	}
	if _, err := ParseBenchFile([]byte(`not json`)); err == nil {
		t.Fatal("garbage parsed as valid")
	}
}

// repoRoot walks up to the module root so the committed-trajectory check
// works from any test cwd.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above the test directory")
		}
		dir = parent
	}
}

// TestCommittedBenchTrajectoryValid: every committed BENCH_*.json must
// parse and validate against the current schema — a malformed trajectory
// file would silently break the CI comparison.
func TestCommittedBenchTrajectoryValid(t *testing.T) {
	root := repoRoot(t)
	matches, err := filepath.Glob(filepath.Join(root, "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("no committed BENCH_*.json trajectory files found")
	}
	for _, path := range matches {
		if _, err := ReadBenchFile(path); err != nil {
			t.Errorf("%s: %v", filepath.Base(path), err)
		}
	}
}
