package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// BenchSchema identifies the BENCH_*.json document shape. Bump only with
// a migration in cmd/ndbench.
const BenchSchema = "ndbench/1"

// DefaultBenchTolerance is the relative ns/op slack -compare allows
// before flagging a regression. Shared CI runners are noisy; a quarter is
// deliberately forgiving — the trajectory exists to catch order-of-
// magnitude drifts and trend lines, not 5% wobbles.
const DefaultBenchTolerance = 0.25

// DefaultAllocTolerance is the relative allocs/op slack -compare allows.
// Allocation counts are deterministic — no scheduler noise, no CPU
// contention — so the band is much tighter than the ns/op one: a 10% drift
// means someone actually added allocations to a measured path.
const DefaultAllocTolerance = 0.10

// HostInfo fingerprints the machine a benchmark file was produced on, so
// a cross-host comparison is visibly apples-to-oranges.
type HostInfo struct {
	Go       string `json:"go"`
	OS       string `json:"os"`
	Arch     string `json:"arch"`
	CPUs     int    `json:"cpus"`
	CPUModel string `json:"cpu_model,omitempty"`
}

// BenchResult is one normalized benchmark row: the testing.B measurements
// plus, for trial-running benchmarks, the derived trials/sec throughput.
type BenchResult struct {
	Name        string  `json:"name"`
	Iters       int64   `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`

	// TrialsPerOp is the Monte-Carlo trials one op executes (0 for
	// analysis-only benchmarks); TrialsPerSec the implied throughput.
	TrialsPerOp  int     `json:"trials_per_op,omitempty"`
	TrialsPerSec float64 `json:"trials_per_sec,omitempty"`
}

// BenchFile is the persisted benchmark trajectory document: one
// BENCH_<pr>.json per PR, committed, and CI-compared against its
// predecessor so perf claims stay grounded in recorded numbers.
type BenchFile struct {
	Schema    string        `json:"schema"`
	Label     string        `json:"label,omitempty"` // e.g. "PR 6"
	Benchtime string        `json:"benchtime,omitempty"`
	Host      HostInfo      `json:"host"`
	Results   []BenchResult `json:"results"`
}

// Validate checks the document's schema and shape: the schema string,
// at least one result, distinct names, and positive measurements.
func (f BenchFile) Validate() error {
	if f.Schema != BenchSchema {
		return fmt.Errorf("obs: bench file schema %q, want %q", f.Schema, BenchSchema)
	}
	if len(f.Results) == 0 {
		return fmt.Errorf("obs: bench file has no results")
	}
	seen := make(map[string]bool, len(f.Results))
	for _, r := range f.Results {
		if r.Name == "" {
			return fmt.Errorf("obs: bench result with empty name")
		}
		if seen[r.Name] {
			return fmt.Errorf("obs: duplicate bench result %q", r.Name)
		}
		seen[r.Name] = true
		if r.Iters <= 0 {
			return fmt.Errorf("obs: bench %q: iters %d must be positive", r.Name, r.Iters)
		}
		if r.NsPerOp <= 0 {
			return fmt.Errorf("obs: bench %q: ns_per_op %g must be positive", r.Name, r.NsPerOp)
		}
		if r.AllocsPerOp < 0 || r.BytesPerOp < 0 || r.TrialsPerOp < 0 || r.TrialsPerSec < 0 {
			return fmt.Errorf("obs: bench %q: negative measurement", r.Name)
		}
	}
	return nil
}

// ParseBenchFile decodes and validates a bench document.
func ParseBenchFile(blob []byte) (BenchFile, error) {
	var f BenchFile
	if err := json.Unmarshal(blob, &f); err != nil {
		return BenchFile{}, fmt.Errorf("obs: parsing bench file: %w", err)
	}
	if err := f.Validate(); err != nil {
		return BenchFile{}, err
	}
	return f, nil
}

// ReadBenchFile loads and validates a bench document from disk.
func ReadBenchFile(path string) (BenchFile, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return BenchFile{}, err
	}
	f, err := ParseBenchFile(blob)
	if err != nil {
		return BenchFile{}, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// BenchDelta is one benchmark's base-to-current comparison row.
type BenchDelta struct {
	Name string `json:"name"`

	// BaseNs and CurNs are the two ns/op readings; Ratio is CurNs/BaseNs
	// (1.0 = unchanged, above = slower). Both zero (and Ratio 0) when the
	// benchmark exists on only one side.
	BaseNs float64 `json:"base_ns,omitempty"`
	CurNs  float64 `json:"cur_ns,omitempty"`
	Ratio  float64 `json:"ratio,omitempty"`

	// BaseAllocs and CurAllocs are the two allocs/op readings; AllocRatio
	// is CurAllocs/BaseAllocs (0 when the base row allocated nothing).
	// AllocRegression flags an allocs/op growth beyond the alloc tolerance
	// — including the 0 → N case, which has no finite ratio but is exactly
	// the drift an arena-reuse overhaul must not silently absorb.
	BaseAllocs      int64   `json:"base_allocs,omitempty"`
	CurAllocs       int64   `json:"cur_allocs,omitempty"`
	AllocRatio      float64 `json:"alloc_ratio,omitempty"`
	AllocRegression bool    `json:"alloc_regression,omitempty"`

	// Regression / Improvement flag ns/op ratios outside the tolerance
	// band. OnlyBase marks benchmarks dropped since the baseline;
	// OnlyCurrent newly added ones. Neither counts as a regression.
	Regression  bool `json:"regression,omitempty"`
	Improvement bool `json:"improvement,omitempty"`
	OnlyBase    bool `json:"only_base,omitempty"`
	OnlyCurrent bool `json:"only_current,omitempty"`
}

// CompareBench joins two bench files by benchmark name and judges each
// shared row on two axes: ns/op against the relative tolerance (ratio >
// 1+tol is a regression, < 1−tol an improvement) and allocs/op against
// allocTol (growth beyond 1+allocTol, or any allocations where the base
// had none, is an alloc regression). Rows are returned sorted by name;
// non-positive tolerances take the respective defaults.
func CompareBench(base, cur BenchFile, tolerance, allocTol float64) []BenchDelta {
	if tolerance <= 0 {
		tolerance = DefaultBenchTolerance
	}
	if allocTol <= 0 {
		allocTol = DefaultAllocTolerance
	}
	baseBy := make(map[string]BenchResult, len(base.Results))
	for _, r := range base.Results {
		baseBy[r.Name] = r
	}
	curBy := make(map[string]BenchResult, len(cur.Results))
	for _, r := range cur.Results {
		curBy[r.Name] = r
	}
	names := make([]string, 0, len(baseBy)+len(curBy))
	for n := range baseBy {
		names = append(names, n)
	}
	for n := range curBy {
		if _, ok := baseBy[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	deltas := make([]BenchDelta, 0, len(names))
	for _, n := range names {
		b, inBase := baseBy[n]
		c, inCur := curBy[n]
		d := BenchDelta{Name: n}
		switch {
		case inBase && inCur:
			d.BaseNs = b.NsPerOp
			d.CurNs = c.NsPerOp
			d.Ratio = c.NsPerOp / b.NsPerOp
			d.Regression = d.Ratio > 1+tolerance
			d.Improvement = d.Ratio < 1-tolerance
			d.BaseAllocs = b.AllocsPerOp
			d.CurAllocs = c.AllocsPerOp
			if b.AllocsPerOp > 0 {
				d.AllocRatio = float64(c.AllocsPerOp) / float64(b.AllocsPerOp)
				d.AllocRegression = d.AllocRatio > 1+allocTol
			} else if c.AllocsPerOp > 0 {
				// A zero-alloc baseline has no finite ratio; any growth is
				// the regression the zero was fought for.
				d.AllocRegression = true
			}
		case inBase:
			d.BaseNs = b.NsPerOp
			d.OnlyBase = true
		default:
			d.CurNs = c.NsPerOp
			d.OnlyCurrent = true
		}
		deltas = append(deltas, d)
	}
	return deltas
}

// Regressions counts the rows of a comparison regressed on either axis
// (ns/op or allocs/op).
func Regressions(deltas []BenchDelta) int {
	n := 0
	for _, d := range deltas {
		if d.Regression || d.AllocRegression {
			n++
		}
	}
	return n
}
