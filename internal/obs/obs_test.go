package obs

import (
	"strings"
	"testing"
)

func TestCacheStatsSub(t *testing.T) {
	now := CacheStats{Hits: 10, Misses: 4, Evictions: 1}
	prev := CacheStats{Hits: 7, Misses: 4}
	d := now.Sub(prev)
	if d != (CacheStats{Hits: 3, Misses: 0, Evictions: 1}) {
		t.Fatalf("unexpected delta %+v", d)
	}
}

func TestRunMetricsMerge(t *testing.T) {
	a := RunMetrics{
		WallMS: 100, Points: 2, Trials: 200, Workers: 4,
		WorkerBusy:     []float64{0.9, 0.8, 0.7, 0.6},
		BuildCache:     CacheStats{Hits: 1, Misses: 2},
		StreamedPoints: 1, ExactPoints: 1,
		PeakAccumBytes: 1000,
	}
	b := RunMetrics{
		WallMS: 300, Points: 3, Trials: 600, Workers: 8,
		BuildCache:     CacheStats{Hits: 4, Misses: 1, Evictions: 2},
		StreamedPoints: 0, ExactPoints: 3,
		MemoHits:       5,
		PeakAccumBytes: 500,
		QueueWaitMS:    25,
		ResultCacheHit: true,
	}
	a.Merge(b)
	if a.WallMS != 400 || a.Points != 5 || a.Trials != 800 {
		t.Fatalf("totals wrong: %+v", a)
	}
	if a.Workers != 8 || a.PeakAccumBytes != 1000 {
		t.Fatalf("maxima wrong: %+v", a)
	}
	if a.BuildCache != (CacheStats{Hits: 5, Misses: 3, Evictions: 2}) {
		t.Fatalf("cache merge wrong: %+v", a.BuildCache)
	}
	if a.StreamedPoints != 1 || a.ExactPoints != 4 || a.MemoHits != 5 {
		t.Fatalf("path/memo counts wrong: %+v", a)
	}
	if a.WorkerBusy != nil {
		t.Fatal("merged record must drop per-worker busy fractions")
	}
	if a.QueueWaitMS != 25 || !a.ResultCacheHit {
		t.Fatalf("daemon counters not merged: %+v", a)
	}
	// 800 trials over 0.4 s.
	if a.TrialsPerSec != 2000 {
		t.Fatalf("trials/sec = %g, want 2000", a.TrialsPerSec)
	}
}

func TestProgressString(t *testing.T) {
	p := Progress{
		PointsDone: 3, PointsTotal: 10,
		TrialsDone: 150, TrialsTotal: 500,
		ElapsedMS: 1500, EtaMS: 3500,
	}
	s := p.String()
	for _, want := range []string{"3/10 points", "150/500 trials", "1.5s", "eta 3.5s"} {
		if !strings.Contains(s, want) {
			t.Errorf("progress string %q missing %q", s, want)
		}
	}
	p.Final = true
	if s := p.String(); strings.Contains(s, "eta") {
		t.Errorf("final snapshot must not estimate an ETA: %q", s)
	}
}
