// Package obs is the engine's observability layer: run-metrics records,
// progress snapshots, and the persisted benchmark-trajectory schema. It
// depends only on the standard library and is determinism-safe by
// construction — nothing in this package feeds back into what the engine
// computes, only into what it reports about how the computation went.
//
// The contract with the rest of the repository: every value defined here
// lives OUTSIDE the determinism contract. Aggregates, sweep grids and
// adaptive traces are bit-identical for any worker count; their "runtime"
// sections (RunMetrics, PointMetrics) carry wall times, worker busy
// fractions and cache traffic that legitimately differ run to run, and
// are therefore structurally excluded from golden comparison (the golden
// harness strips them, and a test enforces the exclusion).
package obs

import "fmt"

// CacheStats counts one cache's traffic over a run: lookups that found an
// entry, lookups that created one, and entries evicted past capacity. The
// engine's schedule/analysis build cache is process-global, so these are
// deltas between the run's start and end snapshots — concurrent runs in
// one process see each other's traffic.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// Sub returns the delta c − prev, the traffic between two snapshots.
func (c CacheStats) Sub(prev CacheStats) CacheStats {
	return CacheStats{
		Hits:      c.Hits - prev.Hits,
		Misses:    c.Misses - prev.Misses,
		Evictions: c.Evictions - prev.Evictions,
	}
}

// add folds o into c (used when merging round-level metrics).
func (c *CacheStats) add(o CacheStats) {
	c.Hits += o.Hits
	c.Misses += o.Misses
	c.Evictions += o.Evictions
}

// RunMetrics is the runtime record of one executor invocation — a suite,
// a sweep, or (accumulated over rounds) an adaptive search. It is carried
// in the "runtime" section of result documents and rendered by ndscen's
// metrics summary; it is never part of the determinism contract.
type RunMetrics struct {
	// WallMS is the total wall-clock time of the run in milliseconds.
	WallMS float64 `json:"wall_ms"`

	// Points is the number of scenarios (grid points) executed and Trials
	// the total Monte-Carlo trials across all of them.
	Points int   `json:"points"`
	Trials int64 `json:"trials"`

	// TrialsPerSec is Trials over the wall time — the headline throughput
	// number the ROADMAP's perf items are judged by.
	TrialsPerSec float64 `json:"trials_per_sec"`

	// Workers is the resolved worker-goroutine count and WorkerBusy each
	// worker's busy fraction: time spent executing trials divided by the
	// run's wall time. A well-fed pool sits near 1.0 on every worker;
	// low fractions mean the feeder or a serial stage is the bottleneck.
	Workers    int       `json:"workers"`
	WorkerBusy []float64 `json:"worker_busy,omitempty"`

	// BuildCache is the schedule/analysis build cache's traffic during
	// the run (hits recall a memoized build + exact analysis; misses pay
	// for one; evictions drop the least-recently-used entry).
	BuildCache CacheStats `json:"build_cache"`

	// StreamedPoints and ExactPoints split the points by aggregation
	// path: bounded-memory streaming accumulators vs trial-ordered exact
	// pooling.
	StreamedPoints int `json:"streamed_points"`
	ExactPoints    int `json:"exact_points"`

	// MemoHits counts adaptive-search coordinates recalled from the
	// evaluation memo instead of re-run (adaptive runs only).
	MemoHits int `json:"memo_hits,omitempty"`

	// ShardK/ShardN identify the trial-range shard this invocation ran
	// (sharded runs only; 0/0 = unsharded) and SnapshotPoints counts the
	// accumulator snapshots it exported.
	ShardK         int `json:"shard_k,omitempty"`
	ShardN         int `json:"shard_n,omitempty"`
	SnapshotPoints int `json:"snapshot_points,omitempty"`

	// ResumedPoints counts points restored from a job journal instead of
	// re-executed (journaled runs only).
	ResumedPoints int `json:"resumed_points,omitempty"`

	// QueueWaitMS is the time a daemon job spent queued before a runner
	// picked it up (daemon-scheduled runs only).
	QueueWaitMS float64 `json:"queue_wait_ms,omitempty"`

	// ResultCacheHit marks a daemon job answered from the result cache: no
	// execution happened, and every other field reports the original run.
	ResultCacheHit bool `json:"result_cache_hit,omitempty"`

	// PeakAccumBytes is the high-water estimate of live aggregation
	// state — materialized trial-output slices plus streaming
	// accumulators — across the run.
	PeakAccumBytes int64 `json:"peak_accum_bytes"`
}

// Merge folds another invocation's metrics into m: durations, counts and
// cache traffic add; worker counts and peak memory take the maximum; the
// throughput is re-derived from the merged totals. RunAdaptive uses this
// to accumulate its per-round executor invocations into one record.
func (m *RunMetrics) Merge(o RunMetrics) {
	m.WallMS += o.WallMS
	m.Points += o.Points
	m.Trials += o.Trials
	m.BuildCache.add(o.BuildCache)
	m.StreamedPoints += o.StreamedPoints
	m.ExactPoints += o.ExactPoints
	m.MemoHits += o.MemoHits
	m.SnapshotPoints += o.SnapshotPoints
	m.ResumedPoints += o.ResumedPoints
	m.QueueWaitMS += o.QueueWaitMS
	m.ResultCacheHit = m.ResultCacheHit || o.ResultCacheHit
	if m.ShardK == 0 && m.ShardN == 0 {
		m.ShardK, m.ShardN = o.ShardK, o.ShardN
	}
	if o.Workers > m.Workers {
		m.Workers = o.Workers
	}
	if o.PeakAccumBytes > m.PeakAccumBytes {
		m.PeakAccumBytes = o.PeakAccumBytes
	}
	// Per-worker busy fractions of distinct invocations are not
	// commensurable (different walls); a merged record drops them.
	m.WorkerBusy = nil
	m.TrialsPerSec = 0
	if m.WallMS > 0 {
		m.TrialsPerSec = float64(m.Trials) / (m.WallMS / 1000)
	}
}

// PointMetrics is one scenario's (grid point's) runtime record, carried
// in the aggregate's "runtime" section: the wall time from the point's
// first trial starting to its last trial finishing, and the implied
// throughput. Like RunMetrics it is outside the determinism contract.
type PointMetrics struct {
	WallMS       float64 `json:"wall_ms"`
	TrialsPerSec float64 `json:"trials_per_sec"`
}

// Progress is one execution-progress snapshot, delivered to the
// Progress callback on the engine options. Snapshots are serialized (the
// callback is never invoked concurrently) and monotone: PointsDone and
// TrialsDone never decrease, and the last snapshot has Final set with
// every counter at its total.
type Progress struct {
	// PointsDone / PointsTotal count completed scenarios (grid points).
	PointsDone  int
	PointsTotal int

	// TrialsDone / TrialsTotal count completed Monte-Carlo trials across
	// all points.
	TrialsDone  int64
	TrialsTotal int64

	// ElapsedMS is the wall time since the run started; EtaMS the naive
	// remaining-time estimate Elapsed·(total−done)/done, 0 until any
	// trial has finished.
	ElapsedMS float64
	EtaMS     float64

	// Final marks the guaranteed last snapshot, emitted after the run
	// completes.
	Final bool
}

// String renders a one-line human-readable form, the shape the ndscen
// -progress ticker prints.
func (p Progress) String() string {
	eta := ""
	if !p.Final && p.EtaMS > 0 {
		eta = fmt.Sprintf(", eta %.1fs", p.EtaMS/1000)
	}
	return fmt.Sprintf("%d/%d points, %d/%d trials, %.1fs%s",
		p.PointsDone, p.PointsTotal, p.TrialsDone, p.TrialsTotal, p.ElapsedMS/1000, eta)
}
