// Package multichannel models BLE-style multi-channel neighbor discovery.
//
// The paper (like most of the ND literature) assumes a single channel.
// Real BLE advertises each event on three advertising channels (37, 38,
// 39) back to back, while the scanner listens to one channel per scan
// interval, cycling through the three. A beacon is received only if its
// channel matches the scanner's current channel and the timing overlaps —
// so the effective discovery problem is the union of three phase-locked
// single-channel problems.
//
// This package computes the exact worst-case multi-channel discovery
// latency with the same interval-sweep technique as package coverage: the
// scanner's channel schedule repeats with period channels·Ts (the
// analysis circle), every advertising event contributes one offset
// interval per (PDU, matching window) pair, and the labeled sweep yields
// the per-offset first-success delay. The engine's "multichannel" kinds
// pair this analysis (including the per-starting-PDU branch stats) with
// the multi-channel Monte-Carlo trials of package sim.
package multichannel

import (
	"fmt"

	"repro/internal/interval"
	"repro/internal/timebase"
)

// Config describes a BLE-like advertiser/scanner pair.
type Config struct {
	// Advertiser: every Ta, one PDU of airtime Omega per channel, spaced
	// IFS apart (start to start: Omega + IFS).
	Ta    timebase.Ticks
	Omega timebase.Ticks
	IFS   timebase.Ticks

	// Scanner: listens Ds at the end of every scan interval Ts, on one
	// channel per interval, cycling through Channels channels.
	Ts timebase.Ticks
	Ds timebase.Ticks

	// Channels is the number of advertising channels (BLE: 3).
	Channels int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Channels < 1 {
		return fmt.Errorf("multichannel: %d channels invalid", c.Channels)
	}
	if c.Omega <= 0 {
		return fmt.Errorf("multichannel: airtime %d invalid", c.Omega)
	}
	if c.IFS < 0 {
		return fmt.Errorf("multichannel: negative inter-frame space")
	}
	eventLen := timebase.Ticks(c.Channels)*(c.Omega+c.IFS) - c.IFS
	if c.Ta <= eventLen {
		return fmt.Errorf("multichannel: advertising interval %d must exceed the %d-channel event length %d", c.Ta, c.Channels, eventLen)
	}
	if c.Ds <= 0 || c.Ds > c.Ts {
		return fmt.Errorf("multichannel: scan window %d / interval %d invalid", c.Ds, c.Ts)
	}
	return nil
}

// Result is the exact multi-channel analysis outcome.
type Result struct {
	// Deterministic reports whether every initial offset leads to
	// discovery.
	Deterministic bool

	// CoveredFraction is the fraction of offsets that ever discover.
	CoveredFraction float64

	// WorstLatency is the supremum discovery latency from range entry
	// (valid only if Deterministic).
	WorstLatency timebase.Ticks

	// MeanLatency is the expectation over uniform entry and offset.
	MeanLatency float64

	// Branches holds the per-starting-PDU breakdown, one entry per
	// channel, in PDU order.
	Branches []Branch
}

// Branch is the exact analysis of one starting-PDU branch: the case where
// range entry falls in the transmission gap preceding PDU j (whose channel
// equals its index within the advertising event).
type Branch struct {
	// PDU is the starting PDU index, which is also its channel.
	PDU int

	// EntryProb is the probability that a uniform range entry lands in
	// this branch: the preceding gap over the advertising interval.
	EntryProb float64

	// Covered is the fraction of scanner offsets that ever discover when
	// entry falls in this branch.
	Covered float64

	// Worst is the supremum latency from range entry within the branch,
	// over the offsets that discover. Zero when Covered is zero.
	Worst timebase.Ticks

	// Mean is the expected latency from range entry within the branch,
	// over uniform entry in the gap and the offsets that discover. Zero
	// when Covered is zero.
	Mean float64
}

// pdu is one advertising PDU within the repeating event.
type pdu struct {
	channel int
	offset  timebase.Ticks // start relative to the event start
}

// Analyze computes the exact worst-case discovery latency of the
// configuration, sweeping all relative phases between advertiser and
// scanner.
func Analyze(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	circle := timebase.Ticks(cfg.Channels) * cfg.Ts // scanner channel cycle

	// PDUs within one advertising event.
	pdus := make([]pdu, cfg.Channels)
	for i := range pdus {
		pdus[i] = pdu{channel: i, offset: timebase.Ticks(i) * (cfg.Omega + cfg.IFS)}
	}

	// Scanner window for channel c sits at the end of interval c within
	// the cycle: [c·Ts + Ts − Ds, (c+1)·Ts).
	winStart := func(ch int) timebase.Ticks {
		return timebase.Ticks(ch)*cfg.Ts + cfg.Ts - cfg.Ds
	}

	// Beacon occurrences repeat with period Ta; their images on the
	// circle repeat after the hyperperiod.
	hyper := timebase.LCM(cfg.Ta, circle)
	events := int(hyper / cfg.Ta)
	if events < 1 {
		events = 1
	}

	var (
		worst     timebase.Ticks
		meanNum   float64
		coveredOK = true
		coveredW  float64 // Σ_j gap_j · covered_j, in ticks²
		branches  = make([]Branch, 0, cfg.Channels)
	)
	// Starting PDU j: range entry can fall anywhere in the gap before it.
	// Gaps within an event are IFS-scale; the gap before PDU 0 spans back
	// to the previous event's last PDU.
	for j := 0; j < cfg.Channels; j++ {
		var items []interval.Labeled
		start := pdus[j].offset
		for e := 0; e < events+1; e++ {
			for _, p := range pdus {
				at := timebase.Ticks(e)*cfg.Ta + p.offset
				if at < start {
					continue
				}
				delay := at - start
				items = append(items, interval.Labeled{
					Lo:     winStart(p.channel) - delay,
					Length: cfg.Ds,
					Label:  int64(delay),
				})
			}
		}
		segs, cov := interval.SweepMin(circle, items)
		if !cov {
			coveredOK = false
		}
		var lMax timebase.Ticks
		var lSum float64
		var covSum timebase.Ticks
		for _, seg := range segs {
			if seg.Count == 0 {
				continue
			}
			covSum += seg.Iv.Len()
			if l := timebase.Ticks(seg.Label); l > lMax {
				lMax = l
			}
			lSum += float64(seg.Label) * float64(seg.Iv.Len())
		}
		// Range entry lands in the gap before PDU j with probability
		// gapBefore/Ta, and within that branch a fraction covSum/circle
		// of offsets ever discovers — so the overall covered fraction is
		// the gap-weighted mean over all starting PDUs, not branch 0's
		// coverage alone (branches differ whenever the channel/window
		// geometry does).
		gapBefore := gapBeforePDU(cfg, pdus, j)
		coveredW += float64(gapBefore) * float64(covSum)
		br := Branch{
			PDU:       j,
			EntryProb: float64(gapBefore) / float64(cfg.Ta),
			Covered:   float64(covSum) / float64(circle),
		}
		if covSum > 0 {
			// Branch latency over discovering offsets: the expected
			// remaining gap (gap/2 for uniform entry) plus the mean label
			// over the covered offsets; the branch worst is the full gap
			// plus the largest label.
			br.Worst = gapBefore + lMax
			br.Mean = lSum/float64(covSum) + float64(gapBefore)/2
		}
		branches = append(branches, br)
		if cov {
			if l := gapBefore + lMax; l > worst {
				worst = l
			}
			meanNum += float64(gapBefore) * (lSum/float64(circle) + float64(gapBefore)/2)
		}
	}
	res := Result{
		Deterministic:   coveredOK,
		CoveredFraction: coveredW / (float64(cfg.Ta) * float64(circle)),
		Branches:        branches,
	}
	if coveredOK {
		res.WorstLatency = worst
		res.MeanLatency = meanNum / float64(cfg.Ta)
	}
	return res, nil
}

// gapBeforePDU returns the transmission gap preceding PDU j (start to
// start), across the event boundary for j == 0.
func gapBeforePDU(cfg Config, pdus []pdu, j int) timebase.Ticks {
	if j > 0 {
		return pdus[j].offset - pdus[j-1].offset
	}
	return cfg.Ta - pdus[len(pdus)-1].offset
}

// BLE returns the standard 3-channel configuration for the given
// advertising and scanning parameters, with the 150 µs BLE inter-frame
// space.
func BLE(ta, omega, ts, ds timebase.Ticks) Config {
	return Config{Ta: ta, Omega: omega, IFS: 150, Ts: ts, Ds: ds, Channels: 3}
}
