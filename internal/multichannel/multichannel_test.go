package multichannel

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/coverage"
	"repro/internal/interval"
	"repro/internal/schedule"
	"repro/internal/timebase"
)

func TestValidate(t *testing.T) {
	good := BLE(20000, 128, 30000, 30000)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Ta: 1000, Omega: 100, Ts: 1000, Ds: 100, Channels: 0},
		{Ta: 1000, Omega: 0, Ts: 1000, Ds: 100, Channels: 1},
		{Ta: 100, Omega: 100, Ts: 1000, Ds: 100, Channels: 1}, // Ta ≤ event
		{Ta: 1000, Omega: 100, Ts: 1000, Ds: 0, Channels: 1},
		{Ta: 1000, Omega: 100, Ts: 1000, Ds: 2000, Channels: 1},
		{Ta: 1000, Omega: 100, IFS: -1, Ts: 1000, Ds: 100, Channels: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// TestSingleChannelMatchesCoverageEngine: with one channel and zero IFS,
// the multichannel analyzer must agree exactly with the general coverage
// engine on the equivalent PI pair.
func TestSingleChannelMatchesCoverageEngine(t *testing.T) {
	cfg := Config{Ta: 1700, Omega: 36, IFS: 0, Ts: 4000, Ds: 500, Channels: 1}
	got, err := Analyze(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := schedule.NewBeaconsAt([]timebase.Ticks{0}, 36, 1700)
	if err != nil {
		t.Fatal(err)
	}
	c, err := schedule.NewWindowsAt([]schedule.Window{{Start: 3500, Len: 500}}, 4000)
	if err != nil {
		t.Fatal(err)
	}
	want, err := coverage.Analyze(b, c, coverage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Deterministic != want.Deterministic {
		t.Fatalf("determinism: multichannel %v vs coverage %v", got.Deterministic, want.Deterministic)
	}
	if got.WorstLatency != want.WorstLatency {
		t.Errorf("worst: multichannel %v vs coverage %v", got.WorstLatency, want.WorstLatency)
	}
	if math.Abs(got.MeanLatency-want.MeanLatency) > 1 {
		t.Errorf("mean: multichannel %v vs coverage %v", got.MeanLatency, want.MeanLatency)
	}
}

func TestThreeChannelContinuousScanning(t *testing.T) {
	// Continuous scanner (Ds = Ts): every event's matching PDU is heard as
	// soon as the scanner sits on its channel — worst case is bounded by
	// the channel cycle plus one advertising interval.
	cfg := BLE(20000, 128, 30000, 30000)
	res, err := Analyze(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deterministic {
		t.Fatalf("continuous 3-channel scanning must be deterministic (covered %v)", res.CoveredFraction)
	}
	cycle := timebase.Ticks(3) * cfg.Ts
	if res.WorstLatency > cycle+cfg.Ta {
		t.Errorf("worst %v exceeds cycle+Ta = %v", res.WorstLatency, cycle+cfg.Ta)
	}
	if res.WorstLatency <= cfg.Ta {
		t.Errorf("worst %v suspiciously below one advertising interval", res.WorstLatency)
	}
}

func TestThreeChannelCostsMoreThanOne(t *testing.T) {
	// At identical (Ta, Ts, Ds): a three-channel scanner spends two thirds
	// of its intervals on channels a given single-channel advertiser
	// never uses. Compare against a single-channel system with the same
	// parameters: multi-channel worst case must be larger.
	single := Config{Ta: 5100, Omega: 36, IFS: 0, Ts: 4000, Ds: 1000, Channels: 1}
	multi := Config{Ta: 5100, Omega: 36, IFS: 150, Ts: 4000, Ds: 1000, Channels: 3}
	rs, err := Analyze(single)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := Analyze(multi)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Deterministic {
		t.Skip("single-channel base case not deterministic for these params")
	}
	if rm.Deterministic && rm.WorstLatency <= rs.WorstLatency {
		t.Errorf("3-channel worst %v should exceed 1-channel %v", rm.WorstLatency, rs.WorstLatency)
	}
}

func TestBLEPresetAnalyzable(t *testing.T) {
	// A realistic background-scanning phone vs a beacon: adv 152.5 ms,
	// scan 30 ms per 300 ms interval, 3 channels.
	cfg := BLE(152500, 128, 300000, 30000)
	res, err := Analyze(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Whether deterministic depends on the arithmetic relation between Ta
	// and 3·Ts; either way the analysis must produce sane numbers.
	if res.CoveredFraction <= 0 || res.CoveredFraction > 1 {
		t.Errorf("covered fraction %v", res.CoveredFraction)
	}
	if res.Deterministic && res.WorstLatency <= 0 {
		t.Error("deterministic but zero worst latency")
	}
}

func TestMeanBelowWorst(t *testing.T) {
	cfg := BLE(20000, 128, 30000, 30000)
	res, err := Analyze(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deterministic {
		t.Skip("not deterministic")
	}
	if res.MeanLatency <= 0 || res.MeanLatency >= float64(res.WorstLatency) {
		t.Errorf("mean %v not in (0, %v)", res.MeanLatency, res.WorstLatency)
	}
}

// branchCoverage mirrors Analyze's per-starting-PDU item construction and
// returns branch j's covered fraction plus a per-tick coverage mask of the
// scanner circle — the independent oracle for the coverage-weighting
// regression test below.
func branchCoverage(cfg Config, j int) (float64, []bool) {
	circle := timebase.Ticks(cfg.Channels) * cfg.Ts
	pdus := make([]pdu, cfg.Channels)
	for i := range pdus {
		pdus[i] = pdu{channel: i, offset: timebase.Ticks(i) * (cfg.Omega + cfg.IFS)}
	}
	winStart := func(ch int) timebase.Ticks {
		return timebase.Ticks(ch)*cfg.Ts + cfg.Ts - cfg.Ds
	}
	hyper := timebase.LCM(cfg.Ta, circle)
	events := int(hyper / cfg.Ta)
	if events < 1 {
		events = 1
	}
	var items []interval.Labeled
	start := pdus[j].offset
	for e := 0; e < events+1; e++ {
		for _, p := range pdus {
			at := timebase.Ticks(e)*cfg.Ta + p.offset
			if at < start {
				continue
			}
			items = append(items, interval.Labeled{
				Lo:     winStart(p.channel) - (at - start),
				Length: cfg.Ds,
				Label:  int64(at - start),
			})
		}
	}
	segs, _ := interval.SweepMin(circle, items)
	var covered timebase.Ticks
	mask := make([]bool, circle)
	for _, seg := range segs {
		if seg.Count == 0 {
			continue
		}
		covered += seg.Iv.Len()
		for t := seg.Iv.Lo; t < seg.Iv.Lo+seg.Iv.Len(); t++ {
			mask[t.Mod(circle)] = true
		}
	}
	return float64(covered) / float64(circle), mask
}

// TestCoveredFractionWeighsAllBranches is the regression test for the
// starting-PDU coverage shortcut: CoveredFraction used to be read from the
// j == 0 branch alone, even though each starting PDU covers a different
// offset set. Over a full hyperperiod the branch sets are rotations of
// each other (so their measures coincide — verified below to document why
// the shortcut's number happened to agree), but the defined quantity is
// the entry-probability-weighted coverage over all branches, which is what
// Analyze must compute: Σ_j (gap_j/Ta)·covered_j/circle. The weighted form
// stays correct if the per-branch construction ever loses that rotation
// symmetry (truncated horizons, per-channel window lengths).
func TestCoveredFractionWeighsAllBranches(t *testing.T) {
	// Two channels, Ta == Ts: beacons stay phase-locked to the scan
	// cycle, so coverage is partial and the branch sets are visibly
	// distinct rotations.
	cfg := Config{Ta: 10, Omega: 2, IFS: 1, Ts: 10, Ds: 3, Channels: 2}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	pdus := make([]pdu, cfg.Channels)
	for i := range pdus {
		pdus[i] = pdu{channel: i, offset: timebase.Ticks(i) * (cfg.Omega + cfg.IFS)}
	}
	covs := make([]float64, cfg.Channels)
	masks := make([][]bool, cfg.Channels)
	var weighted float64
	var gapSum timebase.Ticks
	for j := range covs {
		covs[j], masks[j] = branchCoverage(cfg, j)
		gap := gapBeforePDU(cfg, pdus, j)
		gapSum += gap
		weighted += float64(gap) * covs[j]
	}
	weighted /= float64(cfg.Ta)
	if gapSum != cfg.Ta {
		t.Fatalf("gaps sum to %d, want Ta=%d", gapSum, cfg.Ta)
	}

	// The branches must genuinely differ as sets — otherwise the fixture
	// would not distinguish the weighted computation from any shortcut.
	if reflect.DeepEqual(masks[0], masks[1]) {
		t.Fatalf("fixture lost its point: branches cover identical offset sets %v", masks[0])
	}

	res, err := Analyze(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deterministic {
		t.Fatal("partially covered config reported deterministic")
	}
	if res.CoveredFraction <= 0 || res.CoveredFraction >= 1 {
		t.Fatalf("expected partial coverage, got %v", res.CoveredFraction)
	}
	if diff := res.CoveredFraction - weighted; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("CoveredFraction %v, want gap-weighted %v (branches %v)",
			res.CoveredFraction, weighted, covs)
	}
}

// TestBranchStatsConsistent: the per-branch breakdown must reassemble into
// the aggregate facts — entry probabilities sum to 1, the gap-weighted
// branch coverages give CoveredFraction, and for deterministic configs the
// worst branch worst equals WorstLatency and the entry-weighted branch
// means give MeanLatency.
func TestBranchStatsConsistent(t *testing.T) {
	for _, cfg := range []Config{
		BLE(20_000, 128, 30_000, 30_000),
		BLE(90_000, 128, 30_000, 3_000), // gappy
		{Ta: 5_000, Omega: 100, IFS: 50, Ts: 2_000, Ds: 700, Channels: 2},
	} {
		res, err := Analyze(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Branches) != cfg.Channels {
			t.Fatalf("%d branches for %d channels", len(res.Branches), cfg.Channels)
		}
		var entrySum, covSum, meanSum float64
		var worst timebase.Ticks
		for j, br := range res.Branches {
			if br.PDU != j {
				t.Fatalf("branch %d labeled PDU %d", j, br.PDU)
			}
			entrySum += br.EntryProb
			covSum += br.EntryProb * br.Covered
			meanSum += br.EntryProb * br.Mean
			if br.Worst > worst {
				worst = br.Worst
			}
		}
		if diff := entrySum - 1; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("entry probabilities sum to %v", entrySum)
		}
		if diff := covSum - res.CoveredFraction; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("gap-weighted branch coverage %v vs CoveredFraction %v", covSum, res.CoveredFraction)
		}
		if res.Deterministic {
			if worst != res.WorstLatency {
				t.Errorf("max branch worst %d vs WorstLatency %d", worst, res.WorstLatency)
			}
			if diff := (meanSum - res.MeanLatency) / res.MeanLatency; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("entry-weighted branch means %v vs MeanLatency %v", meanSum, res.MeanLatency)
			}
		}
	}
}
