package server

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

// startJournaled is newTestServer with a journal directory, returning the
// server so the test can restart against the same directory.
func startJournaled(t *testing.T, dir string) (*Server, *Client, func()) {
	t.Helper()
	s, err := New(Config{Workers: 2, JournalDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	stop := func() {
		hs.Close()
		s.Close()
	}
	return s, Dial(hs.URL), stop
}

// TestRestartResume: a journal-backed daemon that dies with a job's result
// unwritten re-enqueues the job on restart and — via the engine's point
// journal — re-executes only the points that never completed, producing
// the identical document.
func TestRestartResume(t *testing.T) {
	dir := t.TempDir()
	ctx := testCtx(t)

	// First life: run the sweep-density preset to completion so the job
	// dir holds job.json, one engine point file per grid point, and
	// result.json.
	_, c, stop := startJournaled(t, dir)
	st, err := c.Submit(ctx, JobRequest{Kind: "sweep", Name: "sweep-density"})
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != stateDone {
		t.Fatalf("first life: state %q, error %q", final.State, final.Error)
	}
	want, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	stop()

	// Simulate a crash that lost the final write and some point journal
	// entries: delete result.json and two point files. What remains is
	// exactly what a SIGKILL mid-sweep leaves behind.
	jobDir := filepath.Join(dir, "jobs", st.ID)
	if err := os.Remove(filepath.Join(jobDir, "result.json")); err != nil {
		t.Fatal(err)
	}
	points, err := filepath.Glob(filepath.Join(jobDir, "engine", "point-*.json"))
	if err != nil || len(points) < 3 {
		t.Fatalf("engine journal files = %v (err %v), want one per grid point", points, err)
	}
	for _, p := range points[:2] {
		if err := os.Remove(p); err != nil {
			t.Fatal(err)
		}
	}

	// Second life: recovery re-enqueues the job under the same identity
	// and the run resumes the surviving points.
	_, c2, stop2 := startJournaled(t, dir)
	defer stop2()
	final, err = c2.Wait(ctx, st.ID)
	if err != nil {
		t.Fatalf("resumed job not visible after restart: %v", err)
	}
	if final.State != stateDone {
		t.Fatalf("resumed job state %q, error %q", final.State, final.Error)
	}
	if final.Runtime == nil || final.Runtime.ResumedPoints != len(points)-2 {
		t.Errorf("resumed_points = %+v, want %d restored from the journal", final.Runtime, len(points)-2)
	}
	doc, err := c2.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stripDocument(t, "sweep", doc), stripDocument(t, "sweep", want)) {
		t.Error("resumed document differs from the pre-crash run")
	}
	if !bytes.Equal(stripDocument(t, "sweep", doc), readGolden(t, "sweep-sweep-density.json")) {
		t.Error("resumed document differs from the golden file")
	}
}

// TestRestartAdoptsFinished: finished journal-backed jobs come back as
// cache entries — a resubmission after restart is a cache hit serving the
// original bytes, with nothing re-executed.
func TestRestartAdoptsFinished(t *testing.T) {
	dir := t.TempDir()
	ctx := testCtx(t)

	_, c, stop := startJournaled(t, dir)
	st, err := c.Submit(ctx, tinySweepRequest())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	want, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	stop()

	s2, c2, stop2 := startJournaled(t, dir)
	defer stop2()
	got, err := c2.Result(ctx, st.ID)
	if err != nil {
		t.Fatalf("recovered job's result not served: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Error("recovered result differs from the original bytes")
	}
	re, err := c2.Submit(ctx, tinySweepRequest())
	if err != nil {
		t.Fatal(err)
	}
	if !re.Cached || re.ID != st.ID {
		t.Errorf("resubmit after restart = %+v, want cache hit on %s", re, st.ID)
	}
	if runs := s2.jobsRun.Load(); runs != 0 {
		t.Errorf("restarted daemon executed %d jobs, want 0 — the journal held the result", runs)
	}
}

// TestRecoverSkipsDebris: a half-written job.json (a kill mid-submit) must
// not prevent startup or resurrect a bogus job.
func TestRecoverSkipsDebris(t *testing.T) {
	dir := t.TempDir()
	debris := filepath.Join(dir, "jobs", "deadbeefdeadbeef")
	if err := os.MkdirAll(debris, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(debris, "job.json"), []byte(`{"kind":"sui`), 0o644); err != nil {
		t.Fatal(err)
	}
	s, c, stop := startJournaled(t, dir)
	defer stop()
	if len(s.jobs) != 0 {
		t.Errorf("recovered %d jobs from debris, want 0", len(s.jobs))
	}
	h, err := c.Healthz(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if h["status"] != "ok" {
		t.Errorf("daemon unhealthy after debris recovery: %v", h)
	}
}
