package server

import "time"

// This file is the package's only wall-clock access, allowlisted for the
// ndlint nodeterminism analyzer: the daemon measures queue waits and paces
// client-side polling, but nothing read from the clock feeds into what the
// engine computes — results stay bit-identical whatever these return.

// nowNS is the wall clock reading queue-wait accounting uses.
func nowNS() int64 { return time.Now().UnixNano() }

// sleep paces the client's status polling loop.
func sleep(d time.Duration) { time.Sleep(d) }
