package server

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/engine"
)

// stripDocument parses a served document, strips the runtime sections the
// way the golden pipeline does, and re-renders it.
func stripDocument(t *testing.T, kind string, doc []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if kind == "adaptive" {
		var res engine.AdaptiveResult
		if err := json.Unmarshal(doc, &res); err != nil {
			t.Fatalf("parse adaptive document: %v", err)
		}
		res.StripRuntime()
		if err := engine.WriteAdaptiveJSON(&buf, res); err != nil {
			t.Fatal(err)
		}
	} else {
		var res engine.SuiteResult
		if err := json.Unmarshal(doc, &res); err != nil {
			t.Fatalf("parse suite document: %v", err)
		}
		res.StripRuntime()
		if err := engine.WriteJSON(&buf, res); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func readGolden(t *testing.T, name string) []byte {
	t.Helper()
	blob, err := os.ReadFile(filepath.Join("..", "engine", "testdata", "golden", name))
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	return blob
}

func counter(t *testing.T, h map[string]any, key string) float64 {
	t.Helper()
	v, ok := h[key].(float64)
	if !ok {
		t.Fatalf("healthz %q = %v (%T), want number", key, h[key], h[key])
	}
	return v
}

// TestGoldenEquivalence is the end-to-end harness: the documents the HTTP
// service serves for the committed presets are byte-identical (after
// stripping the runtime sections) to the engine's golden files — and the
// result cache answers resubmissions with the same bytes without running
// anything.
func TestGoldenEquivalence(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2})
	ctx := testCtx(t)

	cases := []struct {
		req    JobRequest
		golden string
	}{
		{JobRequest{Kind: "suite", Name: "paper-fig7"}, "suite-paper-fig7.json"},
		{JobRequest{Kind: "sweep", Name: "sweep-density"}, "sweep-sweep-density.json"},
		{JobRequest{Kind: "adaptive", Name: "adaptive-eta"}, "adaptive-adaptive-eta.json"},
	}

	docs := make(map[string][]byte)
	for _, tc := range cases {
		st, err := c.Submit(ctx, tc.req)
		if err != nil {
			t.Fatalf("%s %s: submit: %v", tc.req.Kind, tc.req.Name, err)
		}
		if st.State != stateQueued && st.State != stateRunning {
			t.Errorf("%s: fresh submit state = %q", tc.req.Name, st.State)
		}
		final, err := c.Wait(ctx, st.ID)
		if err != nil {
			t.Fatalf("%s: wait: %v", tc.req.Name, err)
		}
		if final.State != stateDone {
			t.Fatalf("%s: state %q, error %q", tc.req.Name, final.State, final.Error)
		}
		if final.Runtime == nil || final.Runtime.Trials == 0 {
			t.Errorf("%s: terminal status missing runtime metrics: %+v", tc.req.Name, final.Runtime)
		}
		doc, err := c.Result(ctx, st.ID)
		if err != nil {
			t.Fatalf("%s: result: %v", tc.req.Name, err)
		}
		docs[st.ID] = doc
		got := stripDocument(t, tc.req.Kind, doc)
		want := readGolden(t, tc.golden)
		if !bytes.Equal(got, want) {
			t.Errorf("%s: served document differs from golden %s\ngot:\n%s\nwant:\n%s",
				tc.req.Name, tc.golden, got, want)
		}
	}

	h, err := c.Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	jobsRun, cacheHits := counter(t, h, "jobs_run"), counter(t, h, "cache_hits")
	if jobsRun != float64(len(cases)) {
		t.Errorf("jobs_run = %v, want %d", jobsRun, len(cases))
	}

	// Resubmitting each spec must hit the result cache: no new execution,
	// ResultCacheHit flagged, and the served bytes identical to the fresh
	// run's — byte for byte, runtime sections included.
	for _, tc := range cases {
		st, err := c.Submit(ctx, tc.req)
		if err != nil {
			t.Fatalf("%s: resubmit: %v", tc.req.Name, err)
		}
		if !st.Cached || st.State != stateDone {
			t.Errorf("%s: resubmit = %+v, want cached done", tc.req.Name, st)
		}
		if st.Runtime == nil || !st.Runtime.ResultCacheHit {
			t.Errorf("%s: cache-hit response runtime = %+v, want ResultCacheHit", tc.req.Name, st.Runtime)
		}
		doc, err := c.Result(ctx, st.ID)
		if err != nil {
			t.Fatalf("%s: cached result: %v", tc.req.Name, err)
		}
		if !bytes.Equal(doc, docs[st.ID]) {
			t.Errorf("%s: cached document differs from the fresh run's bytes", tc.req.Name)
		}
	}

	h, err = c.Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := counter(t, h, "jobs_run"); got != jobsRun {
		t.Errorf("jobs_run after cache hits = %v, want unchanged %v", got, jobsRun)
	}
	if got := counter(t, h, "cache_hits"); got != cacheHits+float64(len(cases)) {
		t.Errorf("cache_hits = %v, want %v", got, cacheHits+float64(len(cases)))
	}

	// The cache-hit status must not have mutated the stored job: a plain
	// status fetch reports the original run, not the cache-hit view.
	for id := range docs {
		st, err := c.Job(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.Cached || (st.Runtime != nil && st.Runtime.ResultCacheHit) {
			t.Errorf("job %s: stored status leaked cache-hit flags: %+v", id, st)
		}
	}
}
