package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/engine"
)

// The per-job event stream: engine callbacks (progress snapshots, per-point
// results) append into a bounded ring; SSE clients follow it at their own
// pace. Appends NEVER block — when a slow client lets the ring fill, the
// oldest events are dropped (the dropped count is observable on the stream's
// first event id), so a stalled consumer can never stall the engine. The
// terminal "result" event is always the last entry and is appended after
// every point event, so a client that sees it has seen everything that
// still exists.

// event is one SSE frame: a monotonically increasing id, an event name
// ("progress", "point", "result") and a JSON payload.
type event struct {
	id   int64
	name string
	data []byte
}

// eventBuffer is the bounded drop-oldest ring behind one job's SSE stream.
type eventBuffer struct {
	mu      sync.Mutex
	cap     int
	events  []event
	nextID  int64
	dropped int64
	wake    chan struct{} // closed and replaced on every append
}

func newEventBuffer(capacity int) *eventBuffer {
	return &eventBuffer{cap: capacity, nextID: 1, wake: make(chan struct{})}
}

// append adds one event, dropping the oldest when the ring is full, and
// wakes every waiting follower. It never blocks on consumers.
func (b *eventBuffer) append(name string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		// Payloads are our own types; a marshal failure is a programming
		// error, but the stream must not panic a worker — drop the event.
		return
	}
	b.mu.Lock()
	b.events = append(b.events, event{id: b.nextID, name: name, data: data})
	b.nextID++
	if len(b.events) > b.cap {
		drop := len(b.events) - b.cap
		b.events = append(b.events[:0:0], b.events[drop:]...)
		b.dropped += int64(drop)
	}
	close(b.wake)
	b.wake = make(chan struct{})
	b.mu.Unlock()
}

// since returns the buffered events with id > after, plus the channel the
// next append will close — the follower's wait handle.
func (b *eventBuffer) since(after int64) ([]event, <-chan struct{}) {
	b.mu.Lock()
	defer b.mu.Unlock()
	i := 0
	for i < len(b.events) && b.events[i].id <= after {
		i++
	}
	out := make([]event, len(b.events)-i)
	copy(out, b.events[i:])
	return out, b.wake
}

// droppedCount reports how many events the ring has discarded.
func (b *eventBuffer) droppedCount() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// pointEvent is the "point" payload: one grid point's index in the job's
// input order and its finalized aggregate, released as soon as the point's
// last trial completes.
type pointEvent struct {
	Index     int              `json:"index"`
	Aggregate engine.Aggregate `json:"aggregate"`
}

// resultEvent is the terminal "result" payload.
type resultEvent struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
}

// handleEvents serves GET /v1/jobs/{id}/events: a Server-Sent-Events
// stream of the job's buffered events, followed live until the terminal
// "result" event is delivered. Reconnecting clients resume from the
// Last-Event-ID header; events dropped past the ring's capacity are gone
// (the first delivered id reveals the gap).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request, j *Job) {
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, fmt.Errorf("response writer cannot stream"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	var last int64
	if lid := r.Header.Get("Last-Event-ID"); lid != "" {
		fmt.Sscanf(lid, "%d", &last)
	}
	for {
		// Sample terminality BEFORE draining: the "result" event is
		// appended before the done channel closes, so a drain that starts
		// after the terminal observation is guaranteed to include it.
		term := j.terminal()
		evs, wake := j.events.since(last)
		for _, e := range evs {
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.id, e.name, e.data)
			last = e.id
		}
		if len(evs) > 0 {
			fl.Flush()
			continue // the ring may have grown while writing
		}
		if term {
			return
		}
		select {
		case <-wake:
		case <-j.done:
		case <-r.Context().Done():
			return
		}
	}
}
