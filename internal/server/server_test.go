package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/timebase"
)

// newTestServer starts an in-process daemon on an ephemeral port and a
// client bound to it, both torn down with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, Dial(hs.URL)
}

// gatedTestServer is newTestServer with every runner held at a gate the
// test opens; the gate is installed under the server lock before any job
// exists, so the runner's later read is ordered after it.
func newGatedTestServer(t *testing.T, cfg Config) (*Server, *Client, chan struct{}) {
	t.Helper()
	s, c := newTestServer(t, cfg)
	gate := make(chan struct{})
	s.mu.Lock()
	s.gate = gate
	s.mu.Unlock()
	return s, c, gate
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	t.Cleanup(cancel)
	return ctx
}

// tinySweepRequest is a small, fast inline sweep used across tests.
func tinySweepRequest() JobRequest {
	return JobRequest{
		Kind: "sweep",
		Sweep: &engine.SweepSpec{
			Name: "tiny-sweep",
			Base: engine.Scenario{
				Protocol:   engine.ProtocolSpec{Kind: "optimal", Omega: 36 * timebase.Microsecond, Alpha: 1},
				Population: 2,
				Trials:     8,
				Horizon:    engine.HorizonSpec{WorstMultiple: 3},
				Seed:       11,
			},
			Axes: []engine.SweepAxis{{Field: "protocol.eta", Values: []float64{0.01, 0.02, 0.05}}},
		},
	}
}

// slowSweepRequest is an inline sweep with enough trials that a test can
// observe (and cancel) it mid-run.
func slowSweepRequest() JobRequest {
	return JobRequest{
		Kind: "sweep",
		Sweep: &engine.SweepSpec{
			Name: "slow-sweep",
			Base: engine.Scenario{
				Protocol:   engine.ProtocolSpec{Kind: "optimal", Omega: 36, Alpha: 1},
				Population: 6,
				Trials:     200000,
				Horizon:    engine.HorizonSpec{WorstMultiple: 6},
				Channel:    engine.ChannelSpec{Collisions: true, HalfDuplex: true, Jitter: 360},
				Seed:       5,
			},
			Axes: []engine.SweepAxis{{Field: "protocol.eta", Values: []float64{0.02, 0.05, 0.1}}},
		},
	}
}

func TestPresetsEndpoint(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2})
	got, err := c.Presets(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	find := func(section, name string) bool {
		for _, e := range got[section] {
			if e.Name == name {
				return true
			}
		}
		return false
	}
	if !find("suites", "paper-fig7") {
		t.Errorf("suite paper-fig7 missing from listing: %v", got["suites"])
	}
	if !find("sweeps", "sweep-density") {
		t.Errorf("sweep sweep-density missing from listing: %v", got["sweeps"])
	}
	if !find("adaptive", "adaptive-eta") {
		t.Errorf("adaptive adaptive-eta missing from listing: %v", got["adaptive"])
	}
}

func TestHealthz(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2})
	h, err := c.Healthz(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if h["status"] != "ok" {
		t.Errorf("healthz status = %v", h["status"])
	}
	for _, key := range []string{"queued", "running", "jobs_run", "cache_hits"} {
		if _, ok := h[key]; !ok {
			t.Errorf("healthz missing %q: %v", key, h)
		}
	}
}

// TestSubmitValidation: every malformed submission is a 400 with a JSON
// error envelope, never an accepted job.
func TestSubmitValidation(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2})
	ctx := testCtx(t)
	cases := []struct {
		name string
		req  JobRequest
		want string
	}{
		{"unknown kind", JobRequest{Kind: "banquet"}, "unknown job kind"},
		{"unknown suite", JobRequest{Kind: "suite", Name: "no-such-suite"}, "no-such-suite"},
		{"no spec", JobRequest{Kind: "sweep"}, "needs a sweep preset name"},
		{"bad stream", JobRequest{Kind: "suite", Name: "paper-fig7", Stream: "sideways"}, "stream mode"},
		{"conflicting inline", JobRequest{Kind: "sweep", Sweep: tinySweepRequest().Sweep, Adaptive: &engine.AdaptiveSpec{}}, "at most one"},
	}
	for _, tc := range cases {
		_, err := c.Submit(ctx, tc.req)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
		if ae, ok := err.(*apiError); ok && ae.Status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, ae.Status)
		}
	}
	// An unknown JSON key must be rejected, like ndscen's spec files.
	resp, err := http.Post(c.base+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"suite","name":"paper-fig7","trialz":5}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown key: status %d, want 400", resp.StatusCode)
	}
}

func TestUnknownJobAndMethods(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2})
	ctx := testCtx(t)
	if _, err := c.Job(ctx, "deadbeef"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("unknown job: got %v, want 404", err)
	}
	if _, err := c.Result(ctx, "deadbeef"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("unknown job result: got %v, want 404", err)
	}
	resp, err := http.Get(c.base + "/v1/nothing")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown endpoint: status %d, want 404", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodPut, c.base+"/v1/jobs", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("PUT /v1/jobs: status %d, want 405", resp.StatusCode)
	}
}

// TestResultNotReady: a queued job's result is a 409, not an empty body.
func TestResultNotReady(t *testing.T) {
	_, c, gate := newGatedTestServer(t, Config{Workers: 2})
	ctx := testCtx(t)
	st, err := c.Submit(ctx, tinySweepRequest())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Result(ctx, st.ID); err == nil || !strings.Contains(err.Error(), "409") {
		t.Errorf("unfinished result: got %v, want 409", err)
	}
	close(gate)
	if _, err := c.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Result(ctx, st.ID); err != nil {
		t.Errorf("finished result: %v", err)
	}
}

func TestJobList(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2})
	ctx := testCtx(t)
	st, err := c.Submit(ctx, tinySweepRequest())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(c.base + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != st.ID {
		t.Errorf("job list = %+v, want the one submitted job", list.Jobs)
	}
}
