// Package server is the engine's service layer: the HTTP daemon behind
// cmd/ndd. It accepts scenario/suite/sweep/adaptive job submissions,
// schedules them over a bounded priority queue onto a shared engine worker
// pool, streams progress and per-point results over SSE, answers repeated
// submissions from a canonical-spec-hash result cache, and (journal-backed)
// resumes in-flight jobs across a daemon restart.
//
// The layer adds scheduling, caching and transport — never computation:
// every document it serves is byte-identical (after StripRuntime) to what
// the equivalent ndscen invocation writes, which the end-to-end golden
// harness asserts against the committed goldens.
package server

import (
	"container/heap"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
)

// Config tunes the daemon; zero values select the documented defaults.
type Config struct {
	// Workers is the engine worker-goroutine count every job runs with
	// (0 = GOMAXPROCS). One pool size for all jobs: results are
	// bit-identical for any value, so it is pure capacity planning.
	Workers int

	// Runners is how many jobs execute concurrently (0 = 1). The default
	// keeps one job at a time on the shared pool; raise it only when jobs
	// are small and latency matters more than per-job throughput.
	Runners int

	// QueueSize bounds the jobs waiting to run (0 = 64). A full queue
	// rejects submissions with 429 and a Retry-After header.
	QueueSize int

	// CacheEntries bounds the finished jobs retained for result-cache
	// hits (0 = 128); past it the oldest finished job is forgotten.
	CacheEntries int

	// EventBuffer bounds each job's SSE ring (0 = 256 events); a slow
	// client past it loses the oldest events, never stalls the engine.
	EventBuffer int

	// JournalDir, when non-empty, makes jobs durable: requests persist at
	// submit, suite-shaped jobs journal per-point snapshots, and a
	// restarted daemon resumes unfinished jobs (see persist.go).
	JournalDir string

	// ProgressInterval is the progress-snapshot period (0 = the engine's
	// 500ms default).
	ProgressInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Runners <= 0 {
		c.Runners = 1
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 128
	}
	if c.EventBuffer <= 0 {
		c.EventBuffer = 256
	}
	return c
}

// Server is the daemon: job registry, bounded priority queue, runner pool
// and result cache behind one http.Handler.
type Server struct {
	cfg Config

	mu        sync.Mutex
	cond      *sync.Cond
	jobs      map[string]*Job
	queue     jobHeap
	queued    int
	seq       int64
	doneOrder []string
	closed    bool

	jobsRun   atomic.Int64
	cacheHits atomic.Int64

	wg sync.WaitGroup

	// gate, when non-nil, holds every runner before each job start — a
	// test hook for deterministic queue-full and cancellation tests.
	gate chan struct{}
}

// New builds the daemon, replays its journal (when configured), and starts
// the runner pool.
func New(cfg Config) (*Server, error) {
	s := &Server{
		cfg:  cfg.withDefaults(),
		jobs: make(map[string]*Job),
	}
	s.cond = sync.NewCond(&s.mu)
	if err := s.recover(); err != nil {
		return nil, fmt.Errorf("server: replaying journal %s: %w", cfg.JournalDir, err)
	}
	for i := 0; i < s.cfg.Runners; i++ {
		s.wg.Add(1)
		go s.runner()
	}
	return s, nil
}

// Close stops the daemon: queued jobs stay queued (journal-backed ones
// resume on the next start), the running job's context is canceled, and
// every runner is joined before Close returns.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].seq < jobs[k].seq })
	for _, j := range jobs {
		j.mu.Lock()
		if j.cancelFn != nil && j.state == stateRunning {
			j.cancelFn()
		}
		j.mu.Unlock()
	}
	s.wg.Wait()
}

func (s *Server) newJob(spec jobSpec, req JobRequest) *Job {
	s.seq++
	return &Job{
		id:       fmt.Sprintf("%016x", spec.hash),
		spec:     spec,
		req:      req,
		seq:      s.seq,
		priority: req.Priority,
		submitNS: nowNS(),
		state:    stateQueued,
		done:     make(chan struct{}),
		events:   newEventBuffer(s.cfg.EventBuffer),
	}
}

func (s *Server) pushLocked(j *Job) {
	heap.Push(&s.queue, j)
	s.queued++
	s.cond.Signal()
}

// submit is the scheduling decision behind POST /v1/jobs: dedupe onto a
// live job, answer from the result cache, or enqueue — all under one lock,
// so N concurrent submissions of one spec create exactly one job.
func (s *Server) submit(req JobRequest) (JobStatus, int, error) {
	spec, err := resolveRequest(req)
	if err != nil {
		return JobStatus{}, http.StatusBadRequest, err
	}
	id := fmt.Sprintf("%016x", spec.hash)

	s.mu.Lock()
	if existing, ok := s.jobs[id]; ok {
		st := existing.status()
		switch st.State {
		case stateQueued, stateRunning:
			s.mu.Unlock()
			st.Deduped = true
			return st, http.StatusOK, nil
		case stateDone:
			s.mu.Unlock()
			s.cacheHits.Add(1)
			st.Cached = true
			if st.Runtime != nil {
				st.Runtime.ResultCacheHit = true
			}
			return st, http.StatusOK, nil
		}
		// Failed or canceled: fall through and replace with a fresh run.
	}
	if s.queued >= s.cfg.QueueSize {
		s.mu.Unlock()
		return JobStatus{}, http.StatusTooManyRequests,
			fmt.Errorf("queue full (%d jobs waiting); retry later", s.cfg.QueueSize)
	}
	j := s.newJob(spec, req)
	s.jobs[id] = j
	s.mu.Unlock()

	// Durability before acknowledgment: the request must be on disk
	// before the 202 leaves, or a crash could lose an accepted job.
	if err := s.persistRequest(j); err != nil {
		s.mu.Lock()
		delete(s.jobs, id)
		s.mu.Unlock()
		return JobStatus{}, http.StatusInternalServerError, fmt.Errorf("persisting job: %w", err)
	}

	s.mu.Lock()
	s.pushLocked(j)
	s.mu.Unlock()
	return j.status(), http.StatusAccepted, nil
}

// cancel implements DELETE /v1/jobs/{id}.
func (s *Server) cancel(j *Job) (JobStatus, int) {
	j.mu.Lock()
	switch j.state {
	case stateQueued:
		// Settle it here; the runner skips settled jobs when it pops them.
		j.state = stateCanceled
		j.errMsg = "canceled while queued"
		j.mu.Unlock()
		s.mu.Lock()
		// Drop it from the heap — unless a runner popped it (and did the
		// queued-- accounting) in the window since the state flipped.
		for i, q := range s.queue {
			if q == j {
				heap.Remove(&s.queue, i)
				s.queued--
				break
			}
		}
		s.mu.Unlock()
		j.events.append("result", resultEvent{ID: j.id, State: stateCanceled, Error: "canceled while queued"})
		close(j.done)
		return j.status(), http.StatusOK
	case stateRunning:
		cancel := j.cancelFn
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		// The runner observes the dead context between trial windows and
		// settles the job; the 202 reports cancellation in progress.
		return j.status(), http.StatusAccepted
	default:
		j.mu.Unlock()
		return j.status(), http.StatusConflict
	}
}

// Handler returns the daemon's HTTP surface.
func (s *Server) Handler() http.Handler { return s }

// ServeHTTP routes manually (the go directive predates method patterns in
// net/http's mux): /healthz, /v1/presets, /v1/jobs, /v1/jobs/{id}[/result|/events].
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/healthz":
		s.handleHealthz(w, r)
	case r.URL.Path == "/v1/presets":
		s.handlePresets(w, r)
	case r.URL.Path == "/v1/jobs":
		switch r.Method {
		case http.MethodPost:
			s.handleSubmit(w, r)
		case http.MethodGet:
			s.handleList(w, r)
		default:
			httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		}
	case strings.HasPrefix(r.URL.Path, "/v1/jobs/"):
		s.handleJob(w, r)
	default:
		httpError(w, http.StatusNotFound, fmt.Errorf("no such endpoint %s", r.URL.Path))
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("parsing job request: %w", err))
		return
	}
	st, code, err := s.submit(req)
	if err != nil {
		if code == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		httpError(w, code, err)
		return
	}
	writeJSON(w, code, st)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	// Deterministic listing order: by id.
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].id < jobs[k].id })
	statuses := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		statuses[i] = j.status()
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": statuses})
}

// handleJob dispatches /v1/jobs/{id}, /v1/jobs/{id}/result and
// /v1/jobs/{id}/events.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no such job %q", id))
		return
	}
	switch {
	case sub == "" && r.Method == http.MethodGet:
		writeJSON(w, http.StatusOK, j.status())
	case sub == "" && r.Method == http.MethodDelete:
		st, code := s.cancel(j)
		writeJSON(w, code, st)
	case sub == "result" && r.Method == http.MethodGet:
		s.handleResult(w, j)
	case sub == "events" && r.Method == http.MethodGet:
		s.handleEvents(w, r, j)
	default:
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed on %s", r.Method, r.URL.Path))
	}
}

// handleResult serves the finished document verbatim — the bytes the
// engine rendered, cached or fresh, identical either way.
func (s *Server) handleResult(w http.ResponseWriter, j *Job) {
	j.mu.Lock()
	state, doc, errMsg := j.state, j.result, j.errMsg
	j.mu.Unlock()
	switch state {
	case stateDone:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(doc)
	case stateFailed, stateCanceled:
		httpError(w, http.StatusConflict, fmt.Errorf("job %s %s: %s", j.id, state, errMsg))
	default:
		httpError(w, http.StatusConflict, fmt.Errorf("job %s is %s; result not ready", j.id, state))
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	s.mu.Lock()
	queued := s.queued
	running := 0
	for _, j := range s.jobs {
		j.mu.Lock()
		if j.state == stateRunning {
			running++
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"queued":     queued,
		"running":    running,
		"jobs_run":   s.jobsRun.Load(),
		"cache_hits": s.cacheHits.Load(),
	})
}

// PresetEntry is one registry listing row.
type PresetEntry struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	Scenarios   int    `json:"scenarios,omitempty"`
	Points      int    `json:"points,omitempty"`
	Goal        string `json:"goal,omitempty"`
	Objective   string `json:"objective,omitempty"`
}

func (s *Server) handlePresets(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	var presets, suites, sweeps, adaptives []PresetEntry
	for _, n := range engine.Presets() {
		sc, _ := engine.Preset(n)
		presets = append(presets, PresetEntry{Name: n, Description: sc.Description})
	}
	for _, n := range engine.Suites() {
		scenarios, _ := engine.Suite(n)
		suites = append(suites, PresetEntry{Name: n, Scenarios: len(scenarios)})
	}
	for _, n := range engine.SweepPresets() {
		sp, _ := engine.SweepPreset(n)
		sweeps = append(sweeps, PresetEntry{Name: n, Description: sp.Description, Points: sp.Points()})
	}
	for _, n := range engine.AdaptivePresets() {
		ap, _ := engine.AdaptivePreset(n)
		adaptives = append(adaptives, PresetEntry{Name: n, Description: ap.Description, Goal: ap.Goal, Objective: ap.Objective})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"presets":  presets,
		"suites":   suites,
		"sweeps":   sweeps,
		"adaptive": adaptives,
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
