package server

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sync"

	"repro/internal/engine"
	"repro/internal/obs"
)

// JobRequest is the POST /v1/jobs body: what to run (a registry name or an
// inline spec) plus execution options. Exactly one spec source applies per
// kind; unknown JSON keys are rejected, like ndscen's spec files.
type JobRequest struct {
	// Kind selects the job shape: "scenario" (one preset or inline
	// scenario list), "suite" (a named suite), "sweep" (a named sweep
	// preset or inline SweepSpec), or "adaptive" (a named adaptive preset
	// or inline AdaptiveSpec).
	Kind string `json:"kind"`

	// Name is the registry name (preset, suite, sweep or adaptive preset)
	// when the spec is not inline.
	Name string `json:"name,omitempty"`

	// Scenarios is the inline spec for kind "scenario"/"suite".
	Scenarios []engine.Scenario `json:"scenarios,omitempty"`

	// Sweep is the inline spec for kind "sweep".
	Sweep *engine.SweepSpec `json:"sweep,omitempty"`

	// Adaptive is the inline spec for kind "adaptive".
	Adaptive *engine.AdaptiveSpec `json:"adaptive,omitempty"`

	// Trials overrides every scenario's trial count (like -trials);
	// Exact forces the exact-analysis fast path (like -exact); Stream
	// selects the aggregation strategy: "auto" (default), "on", "off".
	Trials int    `json:"trials,omitempty"`
	Exact  bool   `json:"exact,omitempty"`
	Stream string `json:"stream,omitempty"`

	// Priority orders the queue: higher runs first; ties run in
	// submission order.
	Priority int `json:"priority,omitempty"`
}

// JobStatus is the status document GET /v1/jobs/{id} (and every submit
// response) returns.
type JobStatus struct {
	ID       string `json:"id"`
	Kind     string `json:"kind"`
	Label    string `json:"label"`
	State    string `json:"state"`
	Priority int    `json:"priority,omitempty"`
	Error    string `json:"error,omitempty"`

	// Deduped marks a submit response that attached to an already
	// queued/running job with the same canonical spec; Cached marks one
	// answered from the result cache without running anything.
	Deduped bool `json:"deduped,omitempty"`
	Cached  bool `json:"cached,omitempty"`

	// Runtime is the run's metrics record, present once the job is
	// terminal (and, for cache hits, reporting the original run with
	// ResultCacheHit set).
	Runtime *obs.RunMetrics `json:"runtime,omitempty"`
}

// Job states.
const (
	stateQueued   = "queued"
	stateRunning  = "running"
	stateDone     = "done"
	stateFailed   = "failed"
	stateCanceled = "canceled"
)

// jobSpec is a resolved, validated job: the canonical form everything
// downstream (queue, cache key, executor) works from.
type jobSpec struct {
	kind     string // the request kind
	label    string // document label: suite name, sweep name, …
	adaptive bool

	scenarios    []engine.Scenario
	adaptiveSpec engine.AdaptiveSpec

	trials int
	exact  bool
	stream engine.StreamMode

	hash uint64
}

// Job is one tracked submission. Identity IS the canonical spec hash —
// resubmitting an identical spec attaches to the existing job (queued or
// running: singleflight; done: a result-cache hit).
type Job struct {
	id       string
	spec     jobSpec
	req      JobRequest // the persisted form a journal-backed daemon resumes from
	seq      int64
	priority int
	submitNS int64

	mu      sync.Mutex
	state   string
	errMsg  string
	metrics obs.RunMetrics
	result  []byte

	cancelFn func() // set while running; aborts the engine run

	done   chan struct{} // closed on any terminal state
	events *eventBuffer
}

// terminal reports whether the job reached a final state.
func (j *Job) terminal() bool {
	select {
	case <-j.done:
		return true
	default:
		return false
	}
}

// status renders the job's status document.
func (j *Job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:       j.id,
		Kind:     j.spec.kind,
		Label:    j.spec.label,
		State:    j.state,
		Priority: j.priority,
		Error:    j.errMsg,
	}
	if j.state == stateDone || j.state == stateFailed || j.state == stateCanceled {
		m := j.metrics
		st.Runtime = &m
	}
	return st
}

// resolveRequest turns a request into the canonical jobSpec, resolving
// registry names and validating inline specs. Every error is a client
// error (HTTP 400).
func resolveRequest(req JobRequest) (jobSpec, error) {
	stream, err := engine.ParseStreamMode(req.Stream)
	if err != nil {
		return jobSpec{}, err
	}
	spec := jobSpec{
		kind:   req.Kind,
		trials: req.Trials,
		exact:  req.Exact,
		stream: stream,
	}
	inline := 0
	for _, set := range []bool{len(req.Scenarios) > 0, req.Sweep != nil, req.Adaptive != nil} {
		if set {
			inline++
		}
	}
	if inline > 1 {
		return jobSpec{}, fmt.Errorf("pass at most one of scenarios, sweep, adaptive")
	}
	switch req.Kind {
	case "scenario":
		switch {
		case req.Name != "":
			sc, err := engine.Preset(req.Name)
			if err != nil {
				return jobSpec{}, err
			}
			spec.scenarios, spec.label = []engine.Scenario{sc}, req.Name
		case len(req.Scenarios) > 0:
			spec.scenarios, spec.label = req.Scenarios, "inline"
		default:
			return jobSpec{}, fmt.Errorf("kind %q needs a preset name or inline scenarios", req.Kind)
		}
	case "suite":
		switch {
		case req.Name != "":
			scenarios, err := engine.Suite(req.Name)
			if err != nil {
				return jobSpec{}, err
			}
			spec.scenarios, spec.label = scenarios, req.Name
		case len(req.Scenarios) > 0:
			spec.scenarios, spec.label = req.Scenarios, "inline"
		default:
			return jobSpec{}, fmt.Errorf("kind %q needs a suite name or inline scenarios", req.Kind)
		}
	case "sweep":
		var sp engine.SweepSpec
		switch {
		case req.Name != "":
			sp, err = engine.SweepPreset(req.Name)
			if err != nil {
				return jobSpec{}, err
			}
		case req.Sweep != nil:
			sp = *req.Sweep
		default:
			return jobSpec{}, fmt.Errorf("kind %q needs a sweep preset name or an inline sweep spec", req.Kind)
		}
		scenarios, err := sp.Expand()
		if err != nil {
			return jobSpec{}, err
		}
		spec.scenarios, spec.label = scenarios, sp.Name
	case "adaptive":
		switch {
		case req.Name != "":
			ap, err := engine.AdaptivePreset(req.Name)
			if err != nil {
				return jobSpec{}, err
			}
			spec.adaptiveSpec = ap
		case req.Adaptive != nil:
			spec.adaptiveSpec = *req.Adaptive
		default:
			return jobSpec{}, fmt.Errorf("kind %q needs an adaptive preset name or an inline adaptive spec", req.Kind)
		}
		spec.adaptive = true
		spec.label = spec.adaptiveSpec.Name
	default:
		return jobSpec{}, fmt.Errorf("unknown job kind %q (want scenario, suite, sweep or adaptive)", req.Kind)
	}
	// Validate scenarios up front, with the run options folded the way the
	// executor folds them, so a bad spec is a 400 at submit, not a failed
	// job later.
	for _, sc := range spec.scenarios {
		if spec.trials > 0 {
			sc.Trials = spec.trials
		}
		if spec.exact {
			sc.Exact = true
		}
		if sc.Exact {
			sc.Trials = 0
		}
		if err := sc.Validate(); err != nil {
			return jobSpec{}, err
		}
	}
	spec.hash = spec.canonicalHash()
	return spec, nil
}

// canonicalHash fingerprints the job's deterministic identity: the kind,
// label, execution options that change results (trials, exact, stream),
// and the resolved spec. Workers are deliberately excluded — the engine's
// determinism contract makes results bit-identical for any worker count,
// which is exactly what lets the result cache answer across submissions
// with different pool sizes.
func (s jobSpec) canonicalHash() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%d|%t|%d\n", s.kind, s.label, s.trials, s.exact, s.stream)
	if s.adaptive {
		// The adaptive spec is pure data; its canonical JSON is its
		// identity.
		blob, _ := json.Marshal(s.adaptiveSpec)
		h.Write(blob)
		return h.Sum64()
	}
	for _, sc := range s.scenarios {
		fmt.Fprintf(h, "%s|%#x|%d|%t\n", sc.Name, sc.Hash(), sc.Trials, sc.Exact)
	}
	return h.Sum64()
}
