package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client talks to a running ndd daemon. The zero-ish constructor Dial is
// all configuration most callers need; every method is context-aware and
// returns the daemon's JSON error message on non-2xx responses.
type Client struct {
	base string
	hc   *http.Client
}

// Dial returns a client for the daemon at base (e.g.
// "http://127.0.0.1:8080"). No connection is made until the first call.
func Dial(base string) *Client {
	return &Client{base: strings.TrimSuffix(base, "/"), hc: http.DefaultClient}
}

// apiError is the daemon's error envelope, surfaced verbatim.
type apiError struct {
	Status int
	Msg    string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("daemon: HTTP %d: %s", e.Status, e.Msg)
}

// IsRetryable reports whether err is the daemon's queue-full rejection.
func IsRetryable(err error) bool {
	ae, ok := err.(*apiError)
	return ok && ae.Status == http.StatusTooManyRequests
}

func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		blob, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(blob)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var envelope struct {
			Error string `json:"error"`
		}
		msg := strings.TrimSpace(string(blob))
		if json.Unmarshal(blob, &envelope) == nil && envelope.Error != "" {
			msg = envelope.Error
		}
		return &apiError{Status: resp.StatusCode, Msg: msg}
	}
	if out == nil {
		return nil
	}
	if raw, ok := out.(*[]byte); ok {
		*raw = blob
		return nil
	}
	return json.Unmarshal(blob, out)
}

// Submit posts a job and returns its status: freshly queued, deduped onto
// a live job, or answered from the result cache (Cached set, result
// immediately available).
func (c *Client) Submit(ctx context.Context, req JobRequest) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &st)
	return st, err
}

// Job fetches a job's status.
func (c *Client) Job(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Result fetches a finished job's document — the exact bytes the engine
// rendered.
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	var doc []byte
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, &doc)
	return doc, err
}

// Cancel requests cancellation: queued jobs settle immediately, running
// jobs abort at the next trial-window boundary.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Wait polls until the job reaches a terminal state (done, failed or
// canceled) or ctx expires, and returns the final status.
func (c *Client) Wait(ctx context.Context, id string) (JobStatus, error) {
	const poll = 25 * time.Millisecond
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return st, err
		}
		switch st.State {
		case stateDone, stateFailed, stateCanceled:
			return st, nil
		}
		if err := ctx.Err(); err != nil {
			return st, err
		}
		sleep(poll)
	}
}

// Healthz fetches the daemon's health/counters document.
func (c *Client) Healthz(ctx context.Context) (map[string]any, error) {
	var out map[string]any
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &out)
	return out, err
}

// Presets fetches the registry listing.
func (c *Client) Presets(ctx context.Context) (map[string][]PresetEntry, error) {
	var out map[string][]PresetEntry
	err := c.do(ctx, http.MethodGet, "/v1/presets", nil, &out)
	return out, err
}
