package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// Journal-backed persistence (Config.JournalDir): every accepted job
// writes its request to <dir>/jobs/<id>/job.json before the submit
// response, suite-shaped jobs run through the engine's crash-resumable
// point journal under <dir>/jobs/<id>/engine/, and completed documents
// land in <dir>/jobs/<id>/result.json (temp file + rename, so a kill
// mid-write never leaves a torn document). A restarted daemon rescans the
// directory: finished jobs come back as cache entries, unfinished ones
// re-enqueue and — thanks to the engine journal — re-execute only the
// points that never completed. Adaptive jobs persist request and result
// but re-run from scratch on resume (the search shards round by round
// instead of journaling points).

func (s *Server) jobDir(id string) string {
	return filepath.Join(s.cfg.JournalDir, "jobs", id)
}

// engineJournalDir is the per-job engine point journal, empty when the
// daemon is not journal-backed or the job shape has no point journal.
func (s *Server) engineJournalDir(j *Job) string {
	if s.cfg.JournalDir == "" || j.spec.adaptive {
		return ""
	}
	return filepath.Join(s.jobDir(j.id), "engine")
}

// persistRequest writes the job's request durably before the submit
// response is sent — the contract that makes an accepted job survive a
// kill that lands a microsecond later.
func (s *Server) persistRequest(j *Job) error {
	if s.cfg.JournalDir == "" {
		return nil
	}
	dir := s.jobDir(j.id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	blob, err := json.MarshalIndent(j.req, "", "  ")
	if err != nil {
		return err
	}
	return atomicWrite(filepath.Join(dir, "job.json"), blob)
}

// persistResult stores a completed job's document.
func (s *Server) persistResult(j *Job, doc []byte) {
	if s.cfg.JournalDir == "" {
		return
	}
	// A persistence failure must not fail the job — the result is already
	// computed and served from memory; only restart durability degrades.
	_ = atomicWrite(filepath.Join(s.jobDir(j.id), "result.json"), doc)
}

func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// recover rescans the journal at startup: for every persisted job,
// either reload its finished result into the cache or re-enqueue it.
// Returns an error only for a corrupt journal root; individual unreadable
// jobs are skipped (a half-written job.json from a kill mid-submit is
// expected debris, not a reason to refuse to start).
func (s *Server) recover() error {
	if s.cfg.JournalDir == "" {
		return nil
	}
	root := filepath.Join(s.cfg.JournalDir, "jobs")
	entries, err := os.ReadDir(root)
	if errors.Is(err, os.ErrNotExist) {
		return os.MkdirAll(root, 0o755)
	}
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		id := e.Name()
		blob, err := os.ReadFile(filepath.Join(root, id, "job.json"))
		if err != nil {
			continue
		}
		var req JobRequest
		dec := json.NewDecoder(bytes.NewReader(blob))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			continue
		}
		spec, err := resolveRequest(req)
		if err != nil {
			continue
		}
		if fmt.Sprintf("%016x", spec.hash) != id {
			// The directory no longer matches the spec it claims to hold
			// (an edited registry, a renamed preset): skip rather than
			// serve a result under the wrong identity.
			continue
		}
		if doc, err := os.ReadFile(filepath.Join(root, id, "result.json")); err == nil {
			s.adoptFinished(spec, req, doc)
			continue
		}
		// Unfinished: re-enqueue. The engine journal under the job dir
		// makes the re-run resume its completed points.
		s.enqueueLocked(spec, req)
	}
	return nil
}

// adoptFinished installs a recovered finished job as a live cache entry.
func (s *Server) adoptFinished(spec jobSpec, req JobRequest, doc []byte) {
	j := s.newJob(spec, req)
	j.state = stateDone
	j.result = doc
	j.events.append("result", resultEvent{ID: j.id, State: stateDone})
	close(j.done)
	s.jobs[j.id] = j
	s.doneOrder = append(s.doneOrder, j.id)
}

// enqueueLocked creates and enqueues a job; the caller holds s.mu or has
// exclusive access (startup).
func (s *Server) enqueueLocked(spec jobSpec, req JobRequest) *Job {
	j := s.newJob(spec, req)
	s.jobs[j.id] = j
	s.pushLocked(j)
	return j
}
