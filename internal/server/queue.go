package server

import (
	"bytes"
	"container/heap"
	"context"
	"errors"

	"repro/internal/engine"
	"repro/internal/obs"
)

// jobHeap orders the queue: higher priority first, submission order within
// a priority. container/heap over this keeps pop O(log n) however many
// jobs a burst enqueues.
type jobHeap []*Job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h jobHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x any)   { *h = append(*h, x.(*Job)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}

// runner is one job-executing goroutine. The engine's worker pool is the
// concurrency mechanism for trials; runners only decide how many JOBS run
// at once (default 1: one shared pool, jobs queue behind it).
func (s *Server) runner() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		j := heap.Pop(&s.queue).(*Job)
		s.queued--
		s.mu.Unlock()
		if s.gate != nil {
			// Test hook: hold the runner here so tests can fill the queue
			// deterministically.
			<-s.gate
		}
		s.run(j)
	}
}

// run executes one popped job to a terminal state.
func (s *Server) run(j *Job) {
	j.mu.Lock()
	if j.state != stateQueued {
		// Canceled while queued: the DELETE handler already settled it.
		j.mu.Unlock()
		return
	}
	j.state = stateRunning
	ctx, cancel := context.WithCancel(context.Background())
	j.cancelFn = cancel
	queueWaitMS := float64(nowNS()-j.submitNS) / 1e6
	j.mu.Unlock()
	defer cancel()

	doc, metrics, err := s.execute(ctx, j, queueWaitMS)
	s.jobsRun.Add(1)

	j.mu.Lock()
	j.metrics = metrics
	switch {
	case err == nil:
		j.state = stateDone
		j.result = doc
	case errors.Is(err, engine.ErrCanceled):
		j.state = stateCanceled
		j.errMsg = err.Error()
	default:
		j.state = stateFailed
		j.errMsg = err.Error()
	}
	state, errMsg := j.state, j.errMsg
	j.mu.Unlock()

	if err == nil {
		s.persistResult(j, doc)
		s.retainDone(j)
	}
	// Terminal event before the done close: followers that observe the
	// closed channel are guaranteed to find this event in the ring.
	j.events.append("result", resultEvent{ID: j.id, State: state, Error: errMsg})
	close(j.done)
}

// execute runs the job's spec through the engine and renders the result
// document — the same document shape, byte for byte, that ndscen writes
// for the equivalent invocation.
func (s *Server) execute(ctx context.Context, j *Job, queueWaitMS float64) ([]byte, obs.RunMetrics, error) {
	var m obs.RunMetrics
	opt := engine.Options{
		Workers:          s.cfg.Workers,
		Trials:           j.spec.trials,
		Exact:            j.spec.exact,
		Stream:           j.spec.stream,
		Context:          ctx,
		Metrics:          &m,
		ProgressInterval: s.cfg.ProgressInterval,
		Progress: func(p obs.Progress) {
			j.events.append("progress", p)
		},
		PointResult: func(idx int, agg engine.Aggregate) {
			j.events.append("point", pointEvent{Index: idx, Aggregate: agg})
		},
	}

	if j.spec.adaptive {
		res, err := engine.RunAdaptive(j.spec.adaptiveSpec, opt)
		if err != nil {
			return nil, m, err
		}
		m.QueueWaitMS = queueWaitMS
		res.Runtime = &m
		var buf bytes.Buffer
		if err := engine.WriteAdaptiveJSON(&buf, res); err != nil {
			return nil, m, err
		}
		return buf.Bytes(), m, nil
	}

	var aggs []engine.Aggregate
	var err error
	if dir := s.engineJournalDir(j); dir != "" {
		aggs, err = engine.RunJournaled(j.spec.label, j.spec.scenarios, opt, dir)
	} else {
		aggs, err = engine.RunSuite(j.spec.scenarios, opt)
	}
	if err != nil {
		return nil, m, err
	}
	m.QueueWaitMS = queueWaitMS
	res := engine.SuiteResult{Suite: j.spec.label, Scenarios: aggs, Runtime: &m}
	var buf bytes.Buffer
	if err := engine.WriteJSON(&buf, res); err != nil {
		return nil, m, err
	}
	return buf.Bytes(), m, nil
}

// retainDone records a completed job in the done-LRU and evicts past the
// cache capacity: evicted jobs disappear from the jobs map entirely (their
// id 404s afterwards), bounding resident result bytes.
func (s *Server) retainDone(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.doneOrder = append(s.doneOrder, j.id)
	for len(s.doneOrder) > s.cfg.CacheEntries {
		victim := s.doneOrder[0]
		s.doneOrder = s.doneOrder[1:]
		if v, ok := s.jobs[victim]; ok && v != j {
			delete(s.jobs, victim)
		}
	}
}
