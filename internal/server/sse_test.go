package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// sseFrame is one parsed SSE frame.
type sseFrame struct {
	id   int64
	name string
	data string
}

// readSSE consumes an SSE body until EOF (the handler closes the stream
// after the terminal result event) and returns the parsed frames.
func readSSE(t *testing.T, resp *http.Response) []sseFrame {
	t.Helper()
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type = %q", ct)
	}
	var frames []sseFrame
	var cur sseFrame
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.name != "" || cur.data != "" {
				frames = append(frames, cur)
			}
			cur = sseFrame{}
		case strings.HasPrefix(line, "id: "):
			id, err := strconv.ParseInt(strings.TrimPrefix(line, "id: "), 10, 64)
			if err != nil {
				t.Fatalf("bad SSE id line %q: %v", line, err)
			}
			cur.id = id
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("read SSE stream: %v", err)
	}
	return frames
}

// TestSSEStream: the events endpoint delivers well-formed frames with
// strictly increasing ids, monotone progress snapshots, every point event
// before the terminal result event — which is always last.
func TestSSEStream(t *testing.T) {
	_, c, gate := newGatedTestServer(t, Config{Workers: 2, ProgressInterval: time.Millisecond})
	ctx := testCtx(t)

	req := tinySweepRequest()
	req.Sweep.Base.Trials = 64
	st, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}

	// Attach the stream while the job is still gated, then let it run:
	// the client follows the run live.
	resp, err := http.Get(c.base + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	close(gate)
	frames := readSSE(t, resp)

	if len(frames) == 0 {
		t.Fatal("no SSE frames delivered")
	}
	var lastID int64
	var lastTrials int64
	points := map[int]bool{}
	resultAt := -1
	for i, f := range frames {
		if f.id <= lastID {
			t.Errorf("frame %d: id %d not strictly increasing after %d", i, f.id, lastID)
		}
		lastID = f.id
		switch f.name {
		case "progress":
			var p obs.Progress
			if err := json.Unmarshal([]byte(f.data), &p); err != nil {
				t.Fatalf("frame %d: bad progress payload: %v", i, err)
			}
			if p.TrialsDone < lastTrials {
				t.Errorf("frame %d: trials done went backwards: %d after %d", i, p.TrialsDone, lastTrials)
			}
			lastTrials = p.TrialsDone
		case "point":
			var pe pointEvent
			if err := json.Unmarshal([]byte(f.data), &pe); err != nil {
				t.Fatalf("frame %d: bad point payload: %v", i, err)
			}
			if points[pe.Index] {
				t.Errorf("frame %d: point %d delivered twice", i, pe.Index)
			}
			points[pe.Index] = true
			if resultAt >= 0 {
				t.Errorf("frame %d: point event after the terminal result event", i)
			}
		case "result":
			if resultAt >= 0 {
				t.Errorf("frame %d: second result event", i)
			}
			resultAt = i
			var re resultEvent
			if err := json.Unmarshal([]byte(f.data), &re); err != nil {
				t.Fatalf("frame %d: bad result payload: %v", i, err)
			}
			if re.ID != st.ID || re.State != stateDone {
				t.Errorf("result event = %+v, want done for %s", re, st.ID)
			}
		default:
			t.Errorf("frame %d: unknown event %q", i, f.name)
		}
	}
	if resultAt != len(frames)-1 {
		t.Errorf("result event at frame %d, want last (%d)", resultAt, len(frames)-1)
	}
	if len(points) != 3 {
		t.Errorf("point events for %d points, want 3", len(points))
	}

	// A late subscriber replays the buffered tail and still ends on the
	// result event.
	resp, err = http.Get(c.base + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	replay := readSSE(t, resp)
	if len(replay) == 0 || replay[len(replay)-1].name != "result" {
		t.Errorf("replayed stream does not end with the result event: %+v", replay)
	}

	// Last-Event-ID resumes past everything already seen: only the
	// remainder (at least the result event) is delivered.
	hreq, _ := http.NewRequest(http.MethodGet, c.base+"/v1/jobs/"+st.ID+"/events", nil)
	hreq.Header.Set("Last-Event-ID", strconv.FormatInt(replay[len(replay)-2].id, 10))
	resp, err = http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	resumed := readSSE(t, resp)
	if len(resumed) != 1 || resumed[0].name != "result" {
		t.Errorf("Last-Event-ID resume delivered %+v, want just the result event", resumed)
	}
}

// TestSSESlowClient: a consumer that never reads cannot block the engine —
// the ring drops the oldest events, the job completes, and a late reader
// still gets a well-formed tail ending in the result event.
func TestSSESlowClient(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 2, EventBuffer: 4, ProgressInterval: time.Millisecond})
	ctx := testCtx(t)

	// No client attached at all — the buffer fills and sheds while the job
	// runs, which is exactly the stalled-consumer case from the engine's
	// point of view.
	req := tinySweepRequest()
	req.Sweep.Base.Trials = 256
	st, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != stateDone {
		t.Fatalf("job state %q — a full event ring must not affect execution", final.State)
	}

	s.mu.Lock()
	j := s.jobs[st.ID]
	s.mu.Unlock()
	if j == nil {
		t.Fatal("job evaporated")
	}
	if got := j.events.droppedCount(); got == 0 {
		t.Error("event ring dropped nothing — the test did not exercise overflow")
	}

	resp, err := http.Get(c.base + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	frames := readSSE(t, resp)
	if len(frames) == 0 || len(frames) > 4 {
		t.Fatalf("late reader got %d frames, want 1..4 (ring capacity)", len(frames))
	}
	if frames[0].id == 1 {
		t.Error("first delivered id is 1 — the drop gap should be visible in the ids")
	}
	if frames[len(frames)-1].name != "result" {
		t.Errorf("tail does not end with the result event: %+v", frames)
	}
}
