package server

import (
	"bytes"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSingleflight: N concurrent submissions of the same spec coalesce
// onto one job — the engine runs exactly once, everyone reads the same
// document.
func TestSingleflight(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 2})
	ctx := testCtx(t)

	const n = 16
	var wg sync.WaitGroup
	statuses := make([]JobStatus, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], errs[i] = c.Submit(ctx, tinySweepRequest())
		}(i)
	}
	wg.Wait()

	id := ""
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("submit %d: %v", i, errs[i])
		}
		if id == "" {
			id = statuses[i].ID
		}
		if statuses[i].ID != id {
			t.Fatalf("submit %d: id %s, want %s — identical specs must share one job", i, statuses[i].ID, id)
		}
	}
	if _, err := c.Wait(ctx, id); err != nil {
		t.Fatal(err)
	}
	if got := s.jobsRun.Load(); got != 1 {
		t.Errorf("jobs run = %d, want exactly 1 for %d identical submissions", got, n)
	}

	// And everyone who asks gets the same bytes.
	first, err := c.Result(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	again, err := c.Result(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, again) {
		t.Error("repeated result fetches returned different bytes")
	}
}

// TestQueueFull: submissions past the queue bound are rejected with 429 +
// Retry-After, and succeed once the queue drains.
func TestQueueFull(t *testing.T) {
	s, c, gate := newGatedTestServer(t, Config{Workers: 2, QueueSize: 2})
	ctx := testCtx(t)

	submit := func(trials int) (JobStatus, error) {
		req := tinySweepRequest()
		req.Sweep.Base.Trials = trials // distinct trials → distinct spec hash
		return c.Submit(ctx, req)
	}

	// First job: the runner pops it and parks at the gate (still in state
	// queued, but out of the queue). Poll the queue depth so the fills
	// below are deterministic.
	first, err := submit(4)
	if err != nil {
		t.Fatal(err)
	}
	for {
		s.mu.Lock()
		depth := s.queued
		s.mu.Unlock()
		if depth == 0 {
			break
		}
		if err := ctx.Err(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}

	// Fill the queue.
	var held []JobStatus
	for i := 0; i < 2; i++ {
		st, err := submit(5 + i)
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, st)
	}

	// The next distinct submission must bounce.
	if _, err := submit(12); err == nil || !IsRetryable(err) {
		t.Fatalf("overfull submit: got %v, want retryable 429", err)
	}
	// Raw request to check the Retry-After header the client discards.
	resp, err := http.Post(c.base+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"sweep","name":"sweep-density"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overfull raw submit: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After header")
	}

	// A duplicate of a queued job is NOT a new queue entry: dedupe still
	// answers 200 even when the queue is full.
	dup, err := submit(5)
	if err != nil {
		t.Fatalf("dedupe while full: %v", err)
	}
	if !dup.Deduped || dup.ID != held[0].ID {
		t.Errorf("dedupe while full = %+v, want deduped onto %s", dup, held[0].ID)
	}

	// Open the gate: everything drains and the bounced spec now fits.
	close(gate)
	for _, st := range append([]JobStatus{first}, held...) {
		if got, err := c.Wait(ctx, st.ID); err != nil || got.State != stateDone {
			t.Fatalf("drain %s: %v %+v", st.ID, err, got)
		}
	}
	st, err := submit(12)
	if err != nil {
		t.Fatalf("post-drain submit: %v", err)
	}
	if _, err := c.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
}

// TestCancelQueued: canceling a queued job settles it immediately without
// ever running it.
func TestCancelQueued(t *testing.T) {
	s, c, gate := newGatedTestServer(t, Config{Workers: 2})
	ctx := testCtx(t)

	// Hold the runner on one job, queue a second, cancel the second.
	blocker, err := c.Submit(ctx, tinySweepRequest())
	if err != nil {
		t.Fatal(err)
	}
	victimReq := tinySweepRequest()
	victimReq.Sweep.Base.Trials = 16
	victim, err := c.Submit(ctx, victimReq)
	if err != nil {
		t.Fatal(err)
	}

	st, err := c.Cancel(ctx, victim.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != stateCanceled {
		t.Errorf("canceled queued job state = %q, want canceled immediately", st.State)
	}
	if _, err := c.Result(ctx, victim.ID); err == nil || !strings.Contains(err.Error(), "409") {
		t.Errorf("canceled job result: got %v, want 409", err)
	}
	// Canceling a terminal job is a conflict.
	if _, err := c.Cancel(ctx, victim.ID); err == nil || !strings.Contains(err.Error(), "409") {
		t.Errorf("double cancel: got %v, want 409", err)
	}

	close(gate)
	if got, err := c.Wait(ctx, blocker.ID); err != nil || got.State != stateDone {
		t.Fatalf("blocker: %v %+v", err, got)
	}
	if got := s.jobsRun.Load(); got != 1 {
		t.Errorf("jobs run = %d, want 1 (the canceled job must never execute)", got)
	}
}

// TestCancelRunning: DELETE on a running job aborts the engine at the next
// trial-window boundary — promptly, long before the sweep would finish.
func TestCancelRunning(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2})
	ctx := testCtx(t)

	st, err := c.Submit(ctx, slowSweepRequest())
	if err != nil {
		t.Fatal(err)
	}
	for {
		got, err := c.Job(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.State == stateRunning {
			break
		}
		if got.State != stateQueued {
			t.Fatalf("job state %q before cancel", got.State)
		}
		time.Sleep(time.Millisecond)
	}

	ack, err := c.Cancel(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if ack.State != stateRunning && ack.State != stateCanceled {
		t.Errorf("cancel ack state = %q", ack.State)
	}

	start := nowNS()
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != stateCanceled {
		t.Fatalf("state after cancel = %q, error %q", final.State, final.Error)
	}
	if !strings.Contains(final.Error, "canceled") {
		t.Errorf("canceled job error = %q, want the engine's typed cancellation", final.Error)
	}
	if waited := time.Duration(nowNS() - start); waited > 30*time.Second {
		t.Errorf("cancellation took %v — the engine did not stop at a window boundary", waited)
	}
}
