// Package core implements the paper's primary contribution: the complete
// family of fundamental lower bounds on the worst-case latency of pairwise
// deterministic neighbor discovery (Section 5), the slotted-protocol limits
// derived from them (Section 6), and the relaxed-assumption variants from
// Appendix A.
//
// Conventions:
//
//   - Latencies are returned in float64 ticks (microseconds), the same unit
//     as timebase.Ticks; divide by 1e6 (or use timebase helpers) for seconds.
//     Formulas produce fractional ticks, so the float type is deliberate.
//   - Duty cycles β, γ, η and probabilities are dimensionless floats.
//   - Out-of-domain inputs (non-positive duty cycles, β exceeding η/α, …)
//     yield NaN, following the math package's convention; use the Valid
//     methods for upfront validation.
package core

import (
	"math"

	"repro/internal/timebase"
)

// Params carries the radio constants every bound depends on: the packet
// airtime ω and the transmit/receive power ratio α = Ptx/Prx.
type Params struct {
	Omega timebase.Ticks // packet airtime ω, in ticks
	Alpha float64        // α = Ptx / Prx
}

// Valid reports whether the parameters are usable.
func (p Params) Valid() bool {
	return p.Omega > 0 && p.Alpha > 0 && !math.IsNaN(p.Alpha) && !math.IsInf(p.Alpha, 0)
}

func (p Params) omega() float64 { return float64(p.Omega) }

func (p Params) nan() float64 { return math.NaN() }

// MinBeacons is Theorem 4.3 (the Beaconing Theorem): the minimum number of
// beacons M = ⌈TC / Σdk⌉ any beacon sequence needs to achieve deterministic
// discovery against a reception window sequence with period tc and total
// window time sumD per period.
func MinBeacons(tc, sumD timebase.Ticks) int {
	if tc <= 0 || sumD <= 0 {
		return 0
	}
	return int(timebase.CeilDiv(tc, sumD))
}

// CoverageBound is Theorem 5.1: the lowest worst-case latency of any
// (B∞, C∞) tuple, L = ⌈TC/Σdi⌉ · ω/β, in ticks.
func (p Params) CoverageBound(tc, sumD timebase.Ticks, beta float64) float64 {
	m := MinBeacons(tc, sumD)
	if m == 0 || beta <= 0 || !p.Valid() {
		return p.nan()
	}
	return float64(m) * p.omega() / beta
}

// Unidirectional is Theorem 5.4: the lowest worst-case latency for device F
// (receive duty-cycle gammaF) to discover device E (transmit duty-cycle
// betaE): L = ω / (βE · γF).
func (p Params) Unidirectional(betaE, gammaF float64) float64 {
	if !p.Valid() || betaE <= 0 || gammaF <= 0 || gammaF > 1 || betaE > 1 {
		return p.nan()
	}
	return p.omega() / (betaE * gammaF)
}

// OptimalBeta returns the transmit duty-cycle β = η/(2α) that minimizes the
// worst-case latency for a total duty-cycle η (from the proof of Theorem
// 5.5). The corresponding receive share is γ = η/2.
func (p Params) OptimalBeta(eta float64) float64 {
	if !p.Valid() || eta <= 0 {
		return p.nan()
	}
	return eta / (2 * p.Alpha)
}

// Symmetric is Theorem 5.5: no bidirectional ND protocol in which both
// devices run duty-cycle η can guarantee a worst-case latency below
// L = 4αω/η².
func (p Params) Symmetric(eta float64) float64 {
	if !p.Valid() || eta <= 0 || eta > 1+p.Alpha {
		return p.nan()
	}
	return 4 * p.Alpha * p.omega() / (eta * eta)
}

// Asymmetric is Theorem 5.7: the lowest worst-case two-way latency for
// devices with duty-cycles ηE and ηF is L = 4αω/(ηE·ηF). With ηE == ηF it
// reduces to the symmetric bound.
func (p Params) Asymmetric(etaE, etaF float64) float64 {
	if !p.Valid() || etaE <= 0 || etaF <= 0 {
		return p.nan()
	}
	return 4 * p.Alpha * p.omega() / (etaE * etaF)
}

// Constrained is Theorem 5.6: the symmetric bound when the channel
// utilization must not exceed betaMax. Below the critical duty-cycle
// η = 2α·βm the constraint is inactive; above it the latency degrades to
// L = ω/(η·βm − α·βm²).
func (p Params) Constrained(eta, betaMax float64) float64 {
	if !p.Valid() || eta <= 0 || betaMax <= 0 {
		return p.nan()
	}
	if eta <= 2*p.Alpha*betaMax {
		return p.Symmetric(eta)
	}
	return p.omega() / (eta*betaMax - p.Alpha*betaMax*betaMax)
}

// MutualExclusive is Theorem C.1: when the quadruple of sequences exploits
// the temporal correlation between B∞ and C∞ on each device (Appendix C),
// one-way discovery (either E discovers F or F discovers E) is guaranteed
// with L = 2αω/η² — a factor 2 below the symmetric two-way bound. This is
// the tightest bound for all pairwise deterministic ND protocols.
func (p Params) MutualExclusive(eta float64) float64 {
	if !p.Valid() || eta <= 0 {
		return p.nan()
	}
	return 2 * p.Alpha * p.omega() / (eta * eta)
}

// CollisionProbability is Equation 12 (unslotted ALOHA, following
// Abramson): the probability that a beacon from a newly arriving sender
// collides, when s senders each occupy the channel for a fraction beta of
// the time: Pc = 1 − e^(−2(s−1)β).
func CollisionProbability(s int, beta float64) float64 {
	if s < 1 || beta < 0 {
		return math.NaN()
	}
	if s == 1 {
		return 0
	}
	return 1 - math.Exp(-2*float64(s-1)*beta)
}

// MaxBetaForCollisionRate inverts Equation 12: the largest channel
// utilization βm such that s simultaneous senders keep the per-beacon
// collision probability at or below pc.
func MaxBetaForCollisionRate(s int, pc float64) float64 {
	if s < 2 {
		return math.Inf(1) // a lone sender never collides
	}
	if pc <= 0 || pc >= 1 {
		return math.NaN()
	}
	return -math.Log(1-pc) / (2 * float64(s-1))
}

// --- Section 6: previously known protocols and slotted limits ---

// SlottedZhengTime is Equation 18: the latency limit implied by the
// k ≥ √T bound of Zheng et al. [17,16] once the slot length is pushed to
// its theoretical minimum I = ω (full-duplex radio):
// L ≥ ω(1 + 2α + α²)/η². Equals the fundamental symmetric bound iff α = 1.
func (p Params) SlottedZhengTime(eta float64) float64 {
	if !p.Valid() || eta <= 0 {
		return p.nan()
	}
	a := p.Alpha
	return p.omega() * (1 + 2*a + a*a) / (eta * eta)
}

// SlottedCodeTime is Equation 19: the corresponding limit for the
// code-based schedules of Meng et al. [6,7], which send two packets per
// active slot: L ≥ ω(½ + 2α + 2α²)/η². Equals the fundamental bound iff
// α = ½.
func (p Params) SlottedCodeTime(eta float64) float64 {
	if !p.Valid() || eta <= 0 {
		return p.nan()
	}
	a := p.Alpha
	return p.omega() * (0.5 + 2*a + 2*a*a) / (eta * eta)
}

// SlottedChannelBound is Equation 21: the latency/duty-cycle/channel-
// utilization limit of slotted protocols satisfying k ≥ √T, for slot
// lengths large against ω: L ≥ ω/(ηβ − αβ²). It coincides with the
// fundamental constrained bound (Theorem 5.6) whenever β ≤ η/(2α).
func (p Params) SlottedChannelBound(eta, beta float64) float64 {
	if !p.Valid() || eta <= 0 || beta <= 0 {
		return p.nan()
	}
	den := eta*beta - p.Alpha*beta*beta
	if den <= 0 {
		return p.nan()
	}
	return p.omega() / den
}

// SlottedProtocol identifies a protocol row of Table 1.
type SlottedProtocol int

// The protocols whose worst-case latencies Table 1 reports.
const (
	Diffcodes    SlottedProtocol = iota // difference-set schedules, Zheng et al. [17]
	Disco                               // Dutta & Culler [3]
	SearchlightS                        // Searchlight-Striped, Bakht et al. [5]
	UConnect                            // Kandhalu et al. [4]
)

// String returns the protocol's name as used in the paper.
func (sp SlottedProtocol) String() string {
	switch sp {
	case Diffcodes:
		return "Diffcodes"
	case Disco:
		return "Disco"
	case SearchlightS:
		return "Searchlight-S"
	case UConnect:
		return "U-Connect"
	default:
		return "unknown"
	}
}

// Table1Latency evaluates the closed-form worst-case latency dm(β, η) of a
// slotted protocol from Table 1 of the paper, for large slots (I ≫ ω) with
// the slot length expressed through the channel utilization β.
func (p Params) Table1Latency(proto SlottedProtocol, eta, beta float64) float64 {
	if !p.Valid() || eta <= 0 || beta <= 0 {
		return p.nan()
	}
	den := eta*beta - p.Alpha*beta*beta
	if den <= 0 {
		return p.nan()
	}
	w := p.omega()
	switch proto {
	case Diffcodes:
		return w / den
	case Disco:
		return 8 * w / den
	case SearchlightS:
		return 2 * w / den
	case UConnect:
		inner := w * w * (8*eta - 8*p.Alpha*beta + 9)
		if inner < 0 {
			return p.nan()
		}
		num := 3*w + math.Sqrt(inner)
		return num * num / (8 * w * den)
	default:
		return p.nan()
	}
}

// --- Appendix A: relaxed assumptions ---

// RadioOverheads models a non-ideal radio (Appendix A.2/A.5): effective
// additional active durations for switching between sleep, transmit and
// receive states, already weighted by the relative power draw of the
// switching phase.
type RadioOverheads struct {
	DoTx   timebase.Ticks // sleep → transmit → sleep
	DoRx   timebase.Ticks // sleep → receive → sleep
	DoTxRx timebase.Ticks // transmit → receive
	DoRxTx timebase.Ticks // receive → transmit
}

// OverheadBound is Equation 27 (Appendix A.2): the unidirectional bound for
// a radio with switching overheads and a single reception window of length
// d1 per period: L = (1/γ)·(1 + doRx/d1)·(ω + doTx)/β. Single-window
// sequences minimize the overhead term, so this is the tightest non-ideal
// bound.
func (p Params) OverheadBound(o RadioOverheads, d1 timebase.Ticks, beta, gamma float64) float64 {
	if !p.Valid() || beta <= 0 || gamma <= 0 || d1 <= 0 || o.DoRx < 0 || o.DoTx < 0 {
		return p.nan()
	}
	return (1 / gamma) * (1 + float64(o.DoRx)/float64(d1)) * (p.omega() + float64(o.DoTx)) / beta
}

// TruncatedBound is Equation 28 (Appendix A.3): the coverage bound when
// packets starting within the last ω of a window are lost, so each window
// contributes only dk − ω of coverage: L = ⌈TC/Σ(dk−ω)⌉ · ω/β.
func (p Params) TruncatedBound(tc timebase.Ticks, windows []timebase.Ticks, beta float64) float64 {
	if !p.Valid() || tc <= 0 || beta <= 0 || len(windows) == 0 {
		return p.nan()
	}
	var useful timebase.Ticks
	for _, d := range windows {
		if d <= p.Omega {
			return p.nan() // a window shorter than ω can never receive
		}
		useful += d - p.Omega
	}
	return float64(timebase.CeilDiv(tc, useful)) * p.omega() / beta
}

// TruncatedBoundLimit is Equation 30: the limit of the truncated bound as
// TC → ∞ with nC = 1, which recovers ω/(βγ) — Theorem 5.4 is therefore
// unaffected by the truncation assumption.
func (p Params) TruncatedBoundLimit(beta, gamma float64) float64 {
	return p.Unidirectional(beta, gamma)
}

// WithLastPacket adds the airtime of the final, successful packet to a
// latency bound (Appendix A.4): every bound grows by exactly ω and the
// optimal β/γ split is unchanged.
func (p Params) WithLastPacket(latency float64) float64 {
	if math.IsNaN(latency) {
		return latency
	}
	return latency + p.omega()
}

// SelfBlockingFailure is Equation 31 (Appendix A.5): when one device runs
// both an optimal B∞ and C∞, exactly one of its own beacons overlaps one of
// its reception windows per worst-case period, blocking
// doTxRx + doRxTx + da of listening time; the resulting probability that a
// remote packet is missed is that blocked time over the total listening
// time M·Σdi per worst-case latency.
func SelfBlockingFailure(o RadioOverheads, da timebase.Ticks, m int, sumD timebase.Ticks) float64 {
	if m <= 0 || sumD <= 0 || da < 0 || o.DoTxRx < 0 || o.DoRxTx < 0 {
		return math.NaN()
	}
	blocked := float64(o.DoTxRx + o.DoRxTx + da)
	return blocked / (float64(m) * float64(sumD))
}

// --- Appendix B: redundant coverage under collisions ---

// RedundantFailureRate is Equation 32: the probability that discovery is
// not achieved within L′ when a fraction q of offsets is covered Q+1 times
// and the rest Q times, each beacon colliding independently with
// probability Pc = 1 − e^(−2(S−2)β):
//
//	Pf = (1−q)·Pc^Q + q·Pc^(Q+1)
//
// S−2 senders interfere because the two devices discovering each other
// never collide with themselves.
func RedundantFailureRate(q float64, bigQ int, s int, beta float64) float64 {
	if bigQ < 1 || q < 0 || q > 1 || s < 2 || beta < 0 {
		return math.NaN()
	}
	pc := 0.0
	if s > 2 {
		pc = 1 - math.Exp(-2*float64(s-2)*beta)
	}
	return (1-q)*math.Pow(pc, float64(bigQ)) + q*math.Pow(pc, float64(bigQ+1))
}

// RedundantLatency is Equation 33: the worst-case latency of a schedule
// that covers every offset Q times, L(Pf) = ⌈Q·TC/Σdi⌉·ω/β. With a
// single-window sequence (TC/Σd = 1/γ) this is ⌈Q/γ⌉·ω/β.
func (p Params) RedundantLatency(bigQ int, gamma, beta float64) float64 {
	if !p.Valid() || bigQ < 1 || gamma <= 0 || gamma > 1 || beta <= 0 {
		return p.nan()
	}
	m := math.Ceil(float64(bigQ) / gamma)
	return m * p.omega() / beta
}

// EtaForLatency inverts Theorem 5.5: the minimum symmetric duty-cycle
// that admits a worst-case latency of l ticks, η = √(4αω/l).
func (p Params) EtaForLatency(l float64) float64 {
	if !p.Valid() || l <= 0 {
		return p.nan()
	}
	return math.Sqrt(4 * p.Alpha * p.omega() / l)
}

// EtaProductForLatency inverts Theorem 5.7: the required product ηE·ηF for
// a two-way worst case of l ticks. Any split of the product meets the
// latency; the split determines who pays (see Figure 6).
func (p Params) EtaProductForLatency(l float64) float64 {
	if !p.Valid() || l <= 0 {
		return p.nan()
	}
	return 4 * p.Alpha * p.omega() / l
}

// EtaForLatencyMutualExclusive inverts Theorem C.1: the minimum duty-cycle
// for one-way mutual-exclusive discovery within l ticks, η = √(2αω/l).
func (p Params) EtaForLatencyMutualExclusive(l float64) float64 {
	if !p.Valid() || l <= 0 {
		return p.nan()
	}
	return math.Sqrt(2 * p.Alpha * p.omega() / l)
}

// OptimalityRatio compares a protocol's measured worst-case latency to the
// relevant fundamental bound; 1.0 means the protocol is optimal. Both
// inputs are in ticks.
func OptimalityRatio(measured, bound float64) float64 {
	if bound <= 0 || math.IsNaN(bound) || math.IsNaN(measured) {
		return math.NaN()
	}
	return measured / bound
}
