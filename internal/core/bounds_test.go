package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/timebase"
)

// stdParams matches the paper's evaluation setup (ω = 36 µs, α = 1).
var stdParams = Params{Omega: 36, Alpha: 1}

func TestParamsValid(t *testing.T) {
	if !stdParams.Valid() {
		t.Error("standard params invalid")
	}
	bad := []Params{
		{Omega: 0, Alpha: 1},
		{Omega: 36, Alpha: 0},
		{Omega: 36, Alpha: -1},
		{Omega: 36, Alpha: math.NaN()},
		{Omega: 36, Alpha: math.Inf(1)},
	}
	for i, p := range bad {
		if p.Valid() {
			t.Errorf("params %d should be invalid: %+v", i, p)
		}
	}
}

func TestMinBeacons(t *testing.T) {
	cases := []struct {
		tc, sumD timebase.Ticks
		want     int
	}{
		{40, 10, 4},
		{40, 12, 4},  // ⌈40/12⌉ = 4
		{40, 13, 4},  // ⌈40/13⌉ = 4
		{40, 14, 3},  // ⌈40/14⌉ = 3
		{40, 40, 1},  // full-period window
		{40, 100, 1}, // more listening than period still needs 1 beacon
		{0, 10, 0},   // degenerate
		{40, 0, 0},   // degenerate
	}
	for _, c := range cases {
		if got := MinBeacons(c.tc, c.sumD); got != c.want {
			t.Errorf("MinBeacons(%d, %d) = %d, want %d", c.tc, c.sumD, got, c.want)
		}
	}
}

func TestCoverageBound(t *testing.T) {
	// TC=40, Σd=10 → M=4; β = ω/λ with λ=30, ω=36? Use direct numbers:
	// β = 0.01 → L = 4·36/0.01 = 14400 ticks.
	got := stdParams.CoverageBound(40, 10, 0.01)
	if got != 14400 {
		t.Errorf("CoverageBound = %v, want 14400", got)
	}
	if !math.IsNaN(stdParams.CoverageBound(40, 10, 0)) {
		t.Error("β=0 should give NaN")
	}
}

func TestUnidirectionalBound(t *testing.T) {
	// L = ω/(β·γ): 36/(0.01·0.025) = 144000 ticks = 0.144 s.
	got := stdParams.Unidirectional(0.01, 0.025)
	if !almost(got, 144000) {
		t.Errorf("Unidirectional = %v, want 144000", got)
	}
	for _, bad := range [][2]float64{{0, 0.1}, {0.1, 0}, {-0.1, 0.1}, {1.5, 0.5}, {0.5, 1.5}} {
		if !math.IsNaN(stdParams.Unidirectional(bad[0], bad[1])) {
			t.Errorf("Unidirectional(%v, %v) should be NaN", bad[0], bad[1])
		}
	}
}

func TestSymmetricBound(t *testing.T) {
	// Thm 5.5: L = 4αω/η². η=5%, ω=36µs, α=1 → 4·36/0.0025 = 57600 µs.
	got := stdParams.Symmetric(0.05)
	if !almost(got, 57600) {
		t.Errorf("Symmetric(0.05) = %v, want 57600", got)
	}
	// Symmetric bound equals Unidirectional at the optimal split β=η/2α, γ=η/2.
	eta := 0.03
	beta := stdParams.OptimalBeta(eta)
	gamma := eta / 2
	if !almostRel(stdParams.Symmetric(eta), stdParams.Unidirectional(beta, gamma), 1e-12) {
		t.Error("Symmetric != Unidirectional at optimal split")
	}
}

func TestOptimalBetaMinimizesUnidirectional(t *testing.T) {
	// The split β = η/2α must beat any perturbed split for several α.
	for _, alpha := range []float64{0.5, 1, 2, 5} {
		p := Params{Omega: 36, Alpha: alpha}
		eta := 0.04
		best := p.OptimalBeta(eta)
		lBest := p.Unidirectional(best, eta-alpha*best)
		for _, f := range []float64{0.5, 0.8, 1.2, 1.5} {
			b := best * f
			gamma := eta - alpha*b
			if gamma <= 0 {
				continue
			}
			if l := p.Unidirectional(b, gamma); l < lBest-1e-9 {
				t.Errorf("α=%v: perturbed split β=%v gives L=%v < optimal %v", alpha, b, l, lBest)
			}
		}
	}
}

func TestAsymmetricBound(t *testing.T) {
	// Thm 5.7: L = 4αω/(ηE·ηF); reduces to symmetric when equal.
	if !almostRel(stdParams.Asymmetric(0.05, 0.05), stdParams.Symmetric(0.05), 1e-12) {
		t.Error("Asymmetric(η,η) != Symmetric(η)")
	}
	got := stdParams.Asymmetric(0.08, 0.02)
	want := 4.0 * 36 / (0.08 * 0.02)
	if !almostRel(got, want, 1e-12) {
		t.Errorf("Asymmetric = %v, want %v", got, want)
	}
	// Invariant: L · ηE · ηF = 4αω regardless of the split.
	for _, pair := range [][2]float64{{0.01, 0.09}, {0.03, 0.07}, {0.05, 0.05}} {
		l := stdParams.Asymmetric(pair[0], pair[1])
		if !almostRel(l*pair[0]*pair[1], 4*36, 1e-9) {
			t.Errorf("L·ηE·ηF invariant violated for %v", pair)
		}
	}
}

func TestConstrainedBound(t *testing.T) {
	eta := 0.05
	// Unconstrained regime: βm ≥ η/2α keeps the symmetric bound.
	if got := stdParams.Constrained(eta, 0.025); !almostRel(got, stdParams.Symmetric(eta), 1e-12) {
		t.Errorf("inactive constraint changed the bound: %v", got)
	}
	if got := stdParams.Constrained(eta, 0.5); !almostRel(got, stdParams.Symmetric(eta), 1e-12) {
		t.Errorf("slack constraint changed the bound: %v", got)
	}
	// Active regime: βm < η/2α.
	bm := 0.01
	want := 36.0 / (eta*bm - 1*bm*bm)
	if got := stdParams.Constrained(eta, bm); !almostRel(got, want, 1e-12) {
		t.Errorf("Constrained = %v, want %v", got, want)
	}
	// The constrained bound is never better than the symmetric bound.
	for _, bm := range []float64{0.001, 0.005, 0.01, 0.02, 0.025, 0.1} {
		if stdParams.Constrained(eta, bm) < stdParams.Symmetric(eta)-1e-9 {
			t.Errorf("constraint βm=%v improved the bound", bm)
		}
	}
	// Continuity at the crossover η = 2αβm.
	bm = 0.01
	etaCross := 2 * stdParams.Alpha * bm
	lo := stdParams.Constrained(etaCross*(1-1e-9), bm)
	hi := stdParams.Constrained(etaCross*(1+1e-9), bm)
	if !almostRel(lo, hi, 1e-6) {
		t.Errorf("discontinuity at crossover: %v vs %v", lo, hi)
	}
}

func TestMutualExclusiveBound(t *testing.T) {
	// Thm C.1: exactly half the symmetric bound.
	eta := 0.04
	if !almostRel(stdParams.MutualExclusive(eta)*2, stdParams.Symmetric(eta), 1e-12) {
		t.Error("MutualExclusive != Symmetric/2")
	}
}

func TestCollisionProbability(t *testing.T) {
	if got := CollisionProbability(1, 0.5); got != 0 {
		t.Errorf("single sender Pc = %v, want 0", got)
	}
	if got := CollisionProbability(2, 0); got != 0 {
		t.Errorf("zero utilization Pc = %v, want 0", got)
	}
	// Eq 12 sanity: S=3, β=0.0414 → Pc ≈ 7.9 % (the Appendix B example,
	// with S−1=2 senders interfering).
	got := CollisionProbability(3, 0.02067)
	if math.Abs(got-0.0794) > 0.002 {
		t.Errorf("Pc = %v, want ≈0.079", got)
	}
	// Monotone in both arguments.
	if CollisionProbability(10, 0.01) <= CollisionProbability(5, 0.01) {
		t.Error("Pc not increasing in S")
	}
	if CollisionProbability(5, 0.02) <= CollisionProbability(5, 0.01) {
		t.Error("Pc not increasing in β")
	}
}

func TestMaxBetaForCollisionRateInverts(t *testing.T) {
	for _, s := range []int{2, 3, 10, 100} {
		for _, pc := range []float64{0.001, 0.01, 0.1, 0.5} {
			beta := MaxBetaForCollisionRate(s, pc)
			if back := CollisionProbability(s, beta); !almostRel(back, pc, 1e-9) {
				t.Errorf("S=%d pc=%v: round trip gave %v", s, pc, back)
			}
		}
	}
	if !math.IsInf(MaxBetaForCollisionRate(1, 0.01), 1) {
		t.Error("single sender should allow unbounded β")
	}
}

func TestSlottedZhengTime(t *testing.T) {
	// Eq 18 equals the fundamental bound exactly at α=1 and exceeds it
	// elsewhere.
	eta := 0.05
	p1 := Params{Omega: 36, Alpha: 1}
	if !almostRel(p1.SlottedZhengTime(eta), p1.Symmetric(eta), 1e-12) {
		t.Error("Eq 18 != fundamental bound at α=1")
	}
	for _, alpha := range []float64{0.2, 0.5, 2, 5} {
		p := Params{Omega: 36, Alpha: alpha}
		if p.SlottedZhengTime(eta) <= p.Symmetric(eta) {
			t.Errorf("α=%v: Eq 18 should exceed the fundamental bound", alpha)
		}
	}
}

func TestSlottedCodeTime(t *testing.T) {
	// Eq 19 is minimized (and equals the fundamental bound) at α = 1/2.
	eta := 0.05
	pHalf := Params{Omega: 36, Alpha: 0.5}
	if !almostRel(pHalf.SlottedCodeTime(eta), pHalf.Symmetric(eta), 1e-12) {
		t.Error("Eq 19 != fundamental bound at α=1/2")
	}
	for _, alpha := range []float64{0.1, 0.3, 1, 2} {
		p := Params{Omega: 36, Alpha: alpha}
		if p.SlottedCodeTime(eta) < p.Symmetric(eta)-1e-9 {
			t.Errorf("α=%v: Eq 19 beat the fundamental bound", alpha)
		}
	}
}

func TestSlottedChannelBoundMatchesConstrained(t *testing.T) {
	// Eq 21 coincides with Theorem 5.6 for β ≤ η/2α (paper, §6.1.2).
	eta := 0.05
	for _, beta := range []float64{0.005, 0.01, 0.02, 0.025} {
		if !almostRel(stdParams.SlottedChannelBound(eta, beta), stdParams.Constrained(eta, beta), 1e-12) {
			t.Errorf("β=%v: Eq 21 %v != Thm 5.6 %v", beta,
				stdParams.SlottedChannelBound(eta, beta), stdParams.Constrained(eta, beta))
		}
	}
	// Above the optimum the slotted bound exceeds the fundamental one.
	beta := 0.04
	if stdParams.SlottedChannelBound(eta, beta) <= stdParams.Constrained(eta, beta) {
		t.Error("β > η/2α: slotted bound should be worse than Thm 5.6")
	}
}

func TestTable1Ordering(t *testing.T) {
	// At any operating point: Diffcodes < Searchlight-S < Disco, and
	// Diffcodes matches Eq 21 exactly (it is the optimal slotted design).
	eta, beta := 0.05, 0.01
	l := func(sp SlottedProtocol) float64 { return stdParams.Table1Latency(sp, eta, beta) }
	if !almostRel(l(Diffcodes), stdParams.SlottedChannelBound(eta, beta), 1e-12) {
		t.Error("Diffcodes row != Eq 21")
	}
	if !almostRel(l(SearchlightS), 2*l(Diffcodes), 1e-12) {
		t.Error("Searchlight-S != 2× Diffcodes")
	}
	if !almostRel(l(Disco), 8*l(Diffcodes), 1e-12) {
		t.Error("Disco != 8× Diffcodes")
	}
	u := l(UConnect)
	if u <= l(Diffcodes) || u >= l(Disco) {
		t.Errorf("U-Connect %v not between Diffcodes %v and Disco %v", u, l(Diffcodes), l(Disco))
	}
	if s := UConnect.String(); s != "U-Connect" {
		t.Errorf("String() = %q", s)
	}
}

func TestUConnectFormula(t *testing.T) {
	// Spot-check the U-Connect row against a hand-computed value.
	eta, beta := 0.05, 0.01
	w := 36.0
	inner := w * w * (8*eta - 8*beta + 9)
	want := math.Pow(3*w+math.Sqrt(inner), 2) / (8 * w * (eta*beta - beta*beta))
	if got := stdParams.Table1Latency(UConnect, eta, beta); !almostRel(got, want, 1e-12) {
		t.Errorf("UConnect = %v, want %v", got, want)
	}
}

func TestOverheadBound(t *testing.T) {
	// Zero overheads reduce Eq 27 to Theorem 5.4.
	o := RadioOverheads{}
	beta, gamma := 0.01, 0.025
	if !almostRel(stdParams.OverheadBound(o, 1000, beta, gamma), stdParams.Unidirectional(beta, gamma), 1e-12) {
		t.Error("zero overheads != ideal bound")
	}
	// Overheads strictly increase the bound; larger windows amortize doRx.
	o = RadioOverheads{DoTx: 10, DoRx: 100}
	small := stdParams.OverheadBound(o, 500, beta, gamma)
	large := stdParams.OverheadBound(o, 5000, beta, gamma)
	ideal := stdParams.Unidirectional(beta, gamma)
	if small <= ideal || large <= ideal {
		t.Error("overheads did not increase the bound")
	}
	if large >= small {
		t.Error("larger window should amortize the receive overhead")
	}
}

func TestTruncatedBound(t *testing.T) {
	// Eq 28 with one window: ⌈TC/(d1−ω)⌉·ω/β.
	beta := 0.01
	got := stdParams.TruncatedBound(4000, []timebase.Ticks{1036}, beta)
	want := float64(timebase.CeilDiv(4000, 1000)) * 36 / beta
	if !almostRel(got, want, 1e-12) {
		t.Errorf("TruncatedBound = %v, want %v", got, want)
	}
	// Window shorter than ω is impossible.
	if !math.IsNaN(stdParams.TruncatedBound(4000, []timebase.Ticks{36}, beta)) {
		t.Error("window == ω should be NaN")
	}
	// Eq 29/30: as TC grows (k·(d1−ω) with d1 fixed), the bound approaches
	// ω/(βγ) from above.
	d1 := timebase.Ticks(1036)
	prev := math.Inf(1)
	for _, k := range []timebase.Ticks{2, 8, 64, 1024} {
		tc := k * (d1 - 36)
		gamma := float64(d1) / float64(tc)
		l := stdParams.TruncatedBound(tc, []timebase.Ticks{d1}, beta)
		limit := stdParams.TruncatedBoundLimit(beta, gamma)
		if l < limit-1e-6 {
			t.Errorf("k=%d: truncated bound %v below its limit %v", k, l, limit)
		}
		ratio := l / limit
		if ratio > prev+1e-9 {
			t.Errorf("k=%d: ratio to limit not shrinking (%v after %v)", k, ratio, prev)
		}
		prev = ratio
	}
}

func TestWithLastPacket(t *testing.T) {
	if got := stdParams.WithLastPacket(1000); got != 1036 {
		t.Errorf("WithLastPacket = %v, want 1036", got)
	}
	if !math.IsNaN(stdParams.WithLastPacket(math.NaN())) {
		t.Error("NaN should pass through")
	}
}

func TestSelfBlockingFailure(t *testing.T) {
	// Eq 31: Pfail = (doTxRx+doRxTx+da)/(M·Σd).
	o := RadioOverheads{DoTxRx: 20, DoRxTx: 30}
	got := SelfBlockingFailure(o, 50, 10, 1000)
	if !almostRel(got, 100.0/10000, 1e-12) {
		t.Errorf("SelfBlockingFailure = %v, want 0.01", got)
	}
	if !math.IsNaN(SelfBlockingFailure(o, 50, 0, 1000)) {
		t.Error("M=0 should be NaN")
	}
}

func TestRedundantFailureRate(t *testing.T) {
	// q=0 reduces to Pc^Q.
	s, beta := 5, 0.02
	pc := 1 - math.Exp(-2*float64(s-2)*beta)
	for q := 1; q <= 4; q++ {
		got := RedundantFailureRate(0, q, s, beta)
		if !almostRel(got, math.Pow(pc, float64(q)), 1e-12) {
			t.Errorf("Q=%d: Pf = %v, want Pc^Q", q, got)
		}
	}
	// q interpolates between Q and Q+1.
	lo := RedundantFailureRate(0, 3, s, beta)
	hi := RedundantFailureRate(0, 4, s, beta)
	mid := RedundantFailureRate(0.5, 3, s, beta)
	if !(hi < mid && mid < lo) {
		t.Errorf("interpolation broken: %v %v %v", lo, mid, hi)
	}
	// Two devices alone (S=2) never fail.
	if got := RedundantFailureRate(0, 2, 2, 0.5); got != 0 {
		t.Errorf("S=2 should have Pf=0, got %v", got)
	}
}

func TestRedundantLatency(t *testing.T) {
	// Q=1 with γ=1/k reduces to the coverage bound M·ω/β.
	gamma, beta := 0.025, 0.02
	got := stdParams.RedundantLatency(1, gamma, beta)
	want := 40 * 36.0 / beta
	if !almostRel(got, want, 1e-12) {
		t.Errorf("RedundantLatency(1) = %v, want %v", got, want)
	}
	// Latency scales linearly in Q for 1/γ integer.
	if !almostRel(stdParams.RedundantLatency(3, gamma, beta), 3*want, 1e-12) {
		t.Error("RedundantLatency not linear in Q")
	}
}

func TestOptimalityRatio(t *testing.T) {
	if got := OptimalityRatio(200, 100); got != 2 {
		t.Errorf("ratio = %v, want 2", got)
	}
	if !math.IsNaN(OptimalityRatio(100, 0)) {
		t.Error("zero bound should be NaN")
	}
}

// Property: the asymmetric bound is symmetric in its arguments and
// monotonically decreasing in each duty-cycle.
func TestAsymmetricProperties(t *testing.T) {
	f := func(a, b uint8) bool {
		etaE := float64(a%99+1) / 100
		etaF := float64(b%99+1) / 100
		l1 := stdParams.Asymmetric(etaE, etaF)
		l2 := stdParams.Asymmetric(etaF, etaE)
		if !almostRel(l1, l2, 1e-12) {
			return false
		}
		return stdParams.Asymmetric(etaE*1.1, etaF) < l1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: for every η, the constrained bound as a function of βm is
// minimized at or above βm = η/2α and equals the symmetric bound there.
func TestConstrainedMinimumAtOptimalBeta(t *testing.T) {
	f := func(e uint8) bool {
		eta := float64(e%50+1) / 100
		best := stdParams.Constrained(eta, stdParams.OptimalBeta(eta))
		return almostRel(best, stdParams.Symmetric(eta), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func almostRel(a, b, tol float64) bool {
	if a == b {
		return true
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return true
	}
	return math.Abs(a-b)/den < tol
}
