package timebase

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestTicksDurationRoundTrip(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want Ticks
	}{
		{time.Microsecond, 1},
		{time.Millisecond, 1000},
		{time.Second, 1000000},
		{2500 * time.Nanosecond, 2}, // truncates
		{0, 0},
	}
	for _, c := range cases {
		if got := FromDuration(c.d); got != c.want {
			t.Errorf("FromDuration(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	if got := (Ticks(1500)).Duration(); got != 1500*time.Microsecond {
		t.Errorf("Duration() = %v, want 1.5ms", got)
	}
}

func TestSecondsConversion(t *testing.T) {
	if got := Second.Seconds(); got != 1.0 {
		t.Errorf("Second.Seconds() = %v, want 1", got)
	}
	if got := FromSeconds(0.05); got != 50*Millisecond {
		t.Errorf("FromSeconds(0.05) = %v, want 50ms", got)
	}
	if got := FromSeconds(1e-6); got != 1 {
		t.Errorf("FromSeconds(1e-6) = %v, want 1", got)
	}
}

func TestTicksString(t *testing.T) {
	cases := []struct {
		t    Ticks
		want string
	}{
		{0, "0µs"},
		{36, "36µs"},
		{1 * Millisecond, "1ms"},
		{1500, "1.5ms"},
		{2 * Second, "2s"},
		{1500 * Millisecond, "1.5s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Ticks(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestMod(t *testing.T) {
	cases := []struct {
		t, p, want Ticks
	}{
		{0, 10, 0},
		{7, 10, 7},
		{10, 10, 0},
		{23, 10, 3},
		{-1, 10, 9},
		{-10, 10, 0},
		{-23, 10, 7},
	}
	for _, c := range cases {
		if got := c.t.Mod(c.p); got != c.want {
			t.Errorf("(%d).Mod(%d) = %d, want %d", c.t, c.p, got, c.want)
		}
	}
}

func TestModPanicsOnNonPositivePeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Mod(0) did not panic")
		}
	}()
	Ticks(5).Mod(0)
}

func TestGCD(t *testing.T) {
	cases := []struct{ a, b, want Ticks }{
		{0, 0, 0},
		{0, 5, 5},
		{5, 0, 5},
		{12, 18, 6},
		{18, 12, 6},
		{7, 13, 1},
		{-12, 18, 6},
		{12, -18, 6},
		{1000000, 625, 625},
	}
	for _, c := range cases {
		if got := GCD(c.a, c.b); got != c.want {
			t.Errorf("GCD(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLCM(t *testing.T) {
	cases := []struct{ a, b, want Ticks }{
		{0, 5, 0},
		{5, 0, 0},
		{4, 6, 12},
		{7, 13, 91},
		{-4, 6, 12},
		{10, 10, 10},
	}
	for _, c := range cases {
		if got := LCM(c.a, c.b); got != c.want {
			t.Errorf("LCM(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLCMOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("LCM overflow did not panic")
		}
	}()
	LCM(math.MaxInt64-1, math.MaxInt64-2)
}

func TestGCDProperties(t *testing.T) {
	f := func(a, b int32) bool {
		x, y := Ticks(a), Ticks(b)
		g := GCD(x, y)
		if x == 0 && y == 0 {
			return g == 0
		}
		if g <= 0 {
			return false
		}
		// g divides both and is symmetric.
		return absT(x)%g == 0 && absT(y)%g == 0 && g == GCD(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLCMGCDProduct(t *testing.T) {
	f := func(a, b int16) bool {
		x, y := Ticks(a), Ticks(b)
		if x == 0 || y == 0 {
			return LCM(x, y) == 0
		}
		return LCM(x, y)*GCD(x, y) == absT(x*y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewRatioReduces(t *testing.T) {
	r := NewRatio(50, 2000)
	if r.Num != 1 || r.Den != 40 {
		t.Errorf("NewRatio(50,2000) = %v, want 1/40", r)
	}
	if r.String() != "1/40" {
		t.Errorf("String() = %q", r.String())
	}
	if got := r.Float(); got != 0.025 {
		t.Errorf("Float() = %v, want 0.025", got)
	}
}

func TestNewRatioNegativeDenominator(t *testing.T) {
	// A double negative normalizes to a positive ratio.
	defer func() {
		if recover() == nil {
			t.Fatal("NewRatio(-1, 2) did not panic")
		}
	}()
	NewRatio(-1, 2)
}

func TestNewRatioZero(t *testing.T) {
	r := NewRatio(0, 17)
	if !r.IsZero() || r.Den != 1 {
		t.Errorf("NewRatio(0,17) = %v, want 0/1", r)
	}
}

func TestRatioMul(t *testing.T) {
	a := NewRatio(1, 40)
	b := NewRatio(40, 3)
	got := a.Mul(b)
	if got.Num != 1 || got.Den != 3 {
		t.Errorf("1/40 * 40/3 = %v, want 1/3", got)
	}
}

func TestApproximateRatioExact(t *testing.T) {
	cases := []struct {
		x    float64
		den  Ticks
		want Ratio
	}{
		{0.025, 1000, Ratio{1, 40}},
		{0.5, 10, Ratio{1, 2}},
		{0, 10, Ratio{0, 1}},
		{3, 10, Ratio{3, 1}},
		{1.0 / 3.0, 100, Ratio{1, 3}},
	}
	for _, c := range cases {
		got := ApproximateRatio(c.x, c.den)
		if got != c.want {
			t.Errorf("ApproximateRatio(%v, %d) = %v, want %v", c.x, c.den, got, c.want)
		}
	}
}

func TestApproximateRatioPi(t *testing.T) {
	got := ApproximateRatio(math.Pi, 200)
	// Best rational approximation of π with denominator ≤ 200 is 355/113.
	if got.Num != 355 || got.Den != 113 {
		t.Errorf("ApproximateRatio(π, 200) = %v, want 355/113", got)
	}
}

func TestApproximateRatioDenominatorBound(t *testing.T) {
	f := func(num uint16, den uint16) bool {
		d := Ticks(den%999) + 1
		x := float64(num%1000) / 1000.0
		r := ApproximateRatio(x, d)
		if r.Den > d || r.Den < 1 {
			return false
		}
		// Error must be no worse than the trivial rounding p = round(x*d), q = d.
		trivial := math.Abs(x - math.Round(x*float64(d))/float64(d))
		return math.Abs(x-r.Float()) <= trivial+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want Ticks }{
		{0, 5, 0},
		{1, 5, 1},
		{5, 5, 1},
		{6, 5, 2},
		{10, 5, 2},
		{11, 5, 3},
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCeilDivPanics(t *testing.T) {
	for _, c := range []struct{ a, b Ticks }{{1, 0}, {-1, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("CeilDiv(%d, %d) did not panic", c.a, c.b)
				}
			}()
			CeilDiv(c.a, c.b)
		}()
	}
}
