// Package timebase provides the integer time representation used by all
// schedule arithmetic in this repository.
//
// Neighbor-discovery determinism proofs are interval-coverage statements:
// a schedule either covers every initial offset or it does not. Floating
// point rounding can open (or close) zero-width gaps and silently turn a
// deterministic schedule into a probabilistic one, so every quantity that
// participates in coverage analysis — window starts, window lengths, beacon
// times, beacon gaps, periods — is kept in integer Ticks. One tick is one
// microsecond, which is finer than the shortest packet airtime the paper
// considers (ω = 32 µs) and exactly represents all BLE-style timing grids
// (0.625 ms multiples).
//
// Floating point appears only in closed-form bound formulas and statistics,
// where it belongs.
package timebase

import (
	"fmt"
	"math"
	"time"
)

// Ticks is an instant or duration measured in integer microseconds.
type Ticks int64

// Common tick quantities.
const (
	Microsecond Ticks = 1
	Millisecond Ticks = 1000 * Microsecond
	Second      Ticks = 1000 * Millisecond
	Minute      Ticks = 60 * Second
)

// FromDuration converts a time.Duration to Ticks, truncating sub-microsecond
// precision.
func FromDuration(d time.Duration) Ticks {
	return Ticks(d / time.Microsecond)
}

// Duration converts t to a time.Duration.
func (t Ticks) Duration() time.Duration {
	return time.Duration(t) * time.Microsecond
}

// Seconds returns t expressed in seconds as a float64.
func (t Ticks) Seconds() float64 {
	return float64(t) / float64(Second)
}

// FromSeconds converts a duration in seconds to Ticks, rounding to the
// nearest microsecond.
func FromSeconds(s float64) Ticks {
	return Ticks(math.Round(s * float64(Second)))
}

// String renders the tick count in a human-friendly unit.
func (t Ticks) String() string {
	switch {
	case t == 0:
		return "0µs"
	case t%Second == 0:
		return fmt.Sprintf("%ds", t/Second)
	case t >= Second || t <= -Second:
		return fmt.Sprintf("%.6gs", t.Seconds())
	case t%Millisecond == 0:
		return fmt.Sprintf("%dms", t/Millisecond)
	case t >= Millisecond || t <= -Millisecond:
		return fmt.Sprintf("%.6gms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%dµs", int64(t))
	}
}

// Mod returns t modulo period, normalized into [0, period). It requires
// period > 0 and works for negative t, unlike the built-in % operator.
func (t Ticks) Mod(period Ticks) Ticks {
	if period <= 0 {
		panic(fmt.Sprintf("timebase: Mod with non-positive period %d", period))
	}
	m := t % period
	if m < 0 {
		m += period
	}
	return m
}

// GCD returns the greatest common divisor of a and b. GCD(0, 0) == 0.
// Negative inputs are treated by absolute value.
func GCD(a, b Ticks) Ticks {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// LCM returns the least common multiple of a and b, or 0 if either is 0.
// It panics on overflow because a silently wrapped hyperperiod would make
// coverage analysis unsound.
func LCM(a, b Ticks) Ticks {
	if a == 0 || b == 0 {
		return 0
	}
	g := GCD(a, b)
	q := a / g
	// Overflow check: |q * b| must fit in int64.
	if q != 0 && absT(b) > math.MaxInt64/absT(q) {
		panic(fmt.Sprintf("timebase: LCM(%d, %d) overflows int64", a, b))
	}
	l := q * b
	return absT(l)
}

func absT(t Ticks) Ticks {
	if t < 0 {
		return -t
	}
	return t
}

// Ratio is an exact non-negative rational number p/q with q > 0, used to
// represent duty cycles without floating point error during schedule
// construction ("listen 1 tick out of every 40").
type Ratio struct {
	Num Ticks // numerator
	Den Ticks // denominator, always > 0 after normalization
}

// NewRatio returns num/den reduced to lowest terms.
// It panics if den == 0 or if the value would be negative.
func NewRatio(num, den Ticks) Ratio {
	if den == 0 {
		panic("timebase: ratio with zero denominator")
	}
	if den < 0 {
		num, den = -num, -den
	}
	if num < 0 {
		panic(fmt.Sprintf("timebase: negative ratio %d/%d", num, den))
	}
	if num == 0 {
		return Ratio{0, 1}
	}
	g := GCD(num, den)
	return Ratio{num / g, den / g}
}

// Float returns the ratio as a float64.
func (r Ratio) Float() float64 { return float64(r.Num) / float64(r.Den) }

// IsZero reports whether the ratio is exactly zero.
func (r Ratio) IsZero() bool { return r.Num == 0 }

// String renders the ratio as "p/q".
func (r Ratio) String() string { return fmt.Sprintf("%d/%d", r.Num, r.Den) }

// Mul returns r*s reduced to lowest terms. It panics on int64 overflow.
func (r Ratio) Mul(s Ratio) Ratio {
	// Cross-reduce first to keep intermediates small.
	g1 := GCD(r.Num, s.Den)
	g2 := GCD(s.Num, r.Den)
	n1, d2 := r.Num/g1, s.Den/g1
	n2, d1 := s.Num/g2, r.Den/g2
	if n1 != 0 && absT(n2) > math.MaxInt64/absT(n1) {
		panic("timebase: ratio multiply overflow (numerator)")
	}
	if d1 != 0 && absT(d2) > math.MaxInt64/absT(d1) {
		panic("timebase: ratio multiply overflow (denominator)")
	}
	return NewRatio(n1*n2, d1*d2)
}

// ApproximateRatio finds a rational p/q ≈ x with q ≤ maxDen using continued
// fractions (best rational approximation). It requires 0 ≤ x and maxDen ≥ 1.
//
// Schedule constructors use this to turn a requested floating-point duty
// cycle into an exact integer schedule: e.g. γ = 0.025 becomes 1/40.
func ApproximateRatio(x float64, maxDen Ticks) Ratio {
	if maxDen < 1 {
		panic("timebase: ApproximateRatio with maxDen < 1")
	}
	if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 {
		panic(fmt.Sprintf("timebase: ApproximateRatio of invalid value %v", x))
	}
	if x == 0 {
		return Ratio{0, 1}
	}
	// Continued fraction expansion with convergents p/q.
	// Standard recurrence: p_{-1}=1, q_{-1}=0; p_{-2}=0, q_{-2}=1.
	pPrev, qPrev := Ticks(1), Ticks(0)
	pPrev2, qPrev2 := Ticks(0), Ticks(1)
	val := x
	bestP, bestQ := Ticks(math.Round(x)), Ticks(1)
	for i := 0; i < 64; i++ {
		a := Ticks(math.Floor(val))
		p := a*pPrev + pPrev2
		q := a*qPrev + qPrev2
		if q > maxDen || q < 0 || p < 0 {
			// Try the best semiconvergent that still fits.
			if qPrev > 0 {
				aMax := (maxDen - qPrev2) / qPrev
				if aMax >= 1 {
					sp := aMax*pPrev + pPrev2
					sq := aMax*qPrev + qPrev2
					if sq >= 1 && better(x, sp, sq, bestP, bestQ) {
						bestP, bestQ = sp, sq
					}
				}
			}
			break
		}
		if better(x, p, q, bestP, bestQ) || i == 0 {
			bestP, bestQ = p, q
		}
		frac := val - math.Floor(val)
		if frac < 1e-15 {
			break
		}
		val = 1 / frac
		pPrev2, qPrev2 = pPrev, qPrev
		pPrev, qPrev = p, q
	}
	if bestQ < 1 {
		bestP, bestQ = Ticks(math.Round(x)), 1
	}
	return NewRatio(bestP, bestQ)
}

func better(x float64, p, q, bp, bq Ticks) bool {
	if q <= 0 {
		return false
	}
	if bq <= 0 {
		return true
	}
	return math.Abs(x-float64(p)/float64(q)) <= math.Abs(x-float64(bp)/float64(bq))
}

// CeilDiv returns ⌈a/b⌉ for b > 0, a ≥ 0.
func CeilDiv(a, b Ticks) Ticks {
	if b <= 0 {
		panic(fmt.Sprintf("timebase: CeilDiv with non-positive divisor %d", b))
	}
	if a < 0 {
		panic(fmt.Sprintf("timebase: CeilDiv with negative dividend %d", a))
	}
	return (a + b - 1) / b
}
