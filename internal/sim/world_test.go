package sim

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/multichannel"
	"repro/internal/schedule"
	"repro/internal/timebase"
)

// floorDivT is floor division on ticks (the test's own, so the reference
// shares no arithmetic helpers with the kernel).
func floorDivT(a, b timebase.Ticks) timebase.Ticks {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// bruteOccurrences enumerates the absolute start times of a periodic
// event (period, local offset at, placed by phase) whose unjittered start
// falls in [lo, hi), in increasing time order, by explicit cycle
// enumeration — deliberately independent of schedule.BeaconsWithin /
// WindowsWithin, so a defect there cannot hide from the cross-check.
func bruteOccurrences(period, at, phase, lo, hi timebase.Ticks) []timebase.Ticks {
	var out []timebase.Ticks
	for k := floorDivT(lo-at-phase, period); ; k++ {
		s := k*period + at + phase
		if s < lo {
			continue
		}
		if s >= hi {
			return out
		}
		out = append(out, s)
	}
}

// bruteTransmitsDuring is the reference's own half-duplex predicate: any
// unjittered beacon occurrence of the node overlapping [from, to), found
// by direct cycle enumeration rather than WorldNode.transmitsDuring.
func bruteTransmitsDuring(n *WorldNode, from, to timebase.Ticks) bool {
	for _, em := range n.Emits {
		if em.B.Period <= 0 {
			continue
		}
		for _, bc := range em.B.Beacons {
			// An occurrence s overlaps iff s < to and s+Len > from, so
			// enumerate starts in [from-Len+1, to) — shifted one period
			// early to be safely inclusive.
			for _, s := range bruteOccurrences(em.B.Period, bc.Time, em.Phase, from-bc.Len-em.B.Period, to) {
				if s < to && s+bc.Len > from {
					return true
				}
			}
		}
	}
	return false
}

// bruteWorld is the O(n²) reference implementation of the kernel: pairwise
// collision marking per channel and a direct scan of every (window, packet)
// combination, with no sorting, no binary search, no running maxima, and
// its own occurrence enumeration and half-duplex check. The kernel must
// agree with it exactly — transmissions, per-channel loads and every first
// reception.
func bruteWorld(t *testing.T, nodes []WorldNode, cfg Config) WorldResult {
	t.Helper()
	nCh, err := channelCount(nodes)
	if err != nil {
		t.Fatal(err)
	}
	type btx struct {
		sender, channel int
		start, end      timebase.Ticks
		collided        bool
	}
	var rng *rand.Rand
	if cfg.Jitter > 0 {
		rng = cfg.rng()
	}
	var txs []btx
	for i, n := range nodes {
		depart := n.departOr(cfg.Horizon)
		for _, em := range n.Emits {
			if em.B.Empty() {
				continue
			}
			// Jitter must be drawn in the kernel's order: per emission,
			// every beacon whose unjittered start lies in [-Period,
			// Horizon), time-ascending. Cycle-major enumeration over the
			// sorted in-period beacons yields exactly that order.
			type occ struct {
				s   timebase.Ticks
				len timebase.Ticks
			}
			var occs []occ
			for _, bc := range em.B.Beacons {
				for _, s := range bruteOccurrences(em.B.Period, bc.Time, em.Phase, -em.B.Period, cfg.Horizon) {
					occs = append(occs, occ{s: s, len: bc.Len})
				}
			}
			sort.Slice(occs, func(a, b int) bool { return occs[a].s < occs[b].s })
			for _, o := range occs {
				start := o.s
				if cfg.Jitter > 0 {
					start += timebase.Ticks(rng.Int63n(int64(cfg.Jitter) + 1))
				}
				end := start + o.len
				if end <= 0 || start >= cfg.Horizon || start < n.Arrive || end > depart {
					continue
				}
				txs = append(txs, btx{sender: i, channel: em.Channel, start: start, end: end})
			}
		}
	}
	if cfg.Collisions {
		for i := range txs {
			for j := range txs {
				if i == j || txs[i].channel != txs[j].channel {
					continue
				}
				if txs[i].start < txs[j].end && txs[j].start < txs[i].end {
					txs[i].collided = true
				}
			}
		}
	}
	res := WorldResult{
		First:         make(map[int]map[int]Reception),
		Transmissions: len(txs),
		PerChannel:    make([]ChannelLoad, nCh),
	}
	for _, tx := range txs {
		res.PerChannel[tx.channel].Transmissions++
		if tx.collided {
			res.Collided++
			res.PerChannel[tx.channel].Collided++
		}
	}
	for r := range nodes {
		n := &nodes[r]
		rDepart := n.departOr(cfg.Horizon)
		for _, ls := range n.Listens {
			if ls.C.Empty() {
				continue
			}
			var wins [][2]timebase.Ticks // absolute [start, end)
			for _, w := range ls.C.Windows {
				for _, s := range bruteOccurrences(ls.C.Period, w.Start, ls.Phase, -ls.C.Period, cfg.Horizon) {
					wins = append(wins, [2]timebase.Ticks{s, s + w.Len})
				}
			}
			for _, w := range wins {
				wStart, wEnd := w[0], w[1]
				for _, tx := range txs {
					if tx.channel != ls.Channel || tx.start < wStart || tx.start >= wEnd {
						continue
					}
					if tx.sender == r || tx.start < n.Arrive || tx.end > rDepart {
						continue
					}
					if cfg.TruncatedWindows && tx.end > wEnd {
						continue
					}
					if cfg.Collisions && tx.collided {
						continue
					}
					if cfg.HalfDuplex && bruteTransmitsDuring(n, tx.start, tx.end) {
						continue
					}
					rec := Reception{Start: tx.start, End: tx.end, Channel: tx.channel}
					m := res.First[r]
					if m == nil {
						res.First[r] = map[int]Reception{tx.sender: rec}
						continue
					}
					prev, seen := m[tx.sender]
					if !seen || rec.Start < prev.Start ||
						(rec.Start == prev.Start && rec.Channel < prev.Channel) {
						m[tx.sender] = rec
					}
				}
			}
		}
	}
	return res
}

func compareWorlds(t *testing.T, label string, nodes []WorldNode, cfg Config) {
	t.Helper()
	got, err := RunWorld(nodes, cfg)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	want := bruteWorld(t, nodes, cfg)
	if got.Transmissions != want.Transmissions || got.Collided != want.Collided {
		t.Fatalf("%s: traffic diverges: kernel %d/%d, brute force %d/%d",
			label, got.Transmissions, got.Collided, want.Transmissions, want.Collided)
	}
	if !reflect.DeepEqual(got.PerChannel, want.PerChannel) {
		t.Fatalf("%s: per-channel loads diverge:\nkernel %+v\nbrute  %+v", label, got.PerChannel, want.PerChannel)
	}
	if !reflect.DeepEqual(got.First, want.First) {
		t.Fatalf("%s: receptions diverge:\nkernel %+v\nbrute  %+v", label, got.First, want.First)
	}
}

// randomWorld builds a small world of nodes with randomized periodic
// schedules spread over channels, including transmit-only, listen-only and
// churning nodes.
func randomWorld(rng *rand.Rand, nNodes, nCh int, horizon timebase.Ticks, churn bool) []WorldNode {
	nodes := make([]WorldNode, nNodes)
	for i := range nodes {
		n := WorldNode{}
		if churn && rng.Intn(2) == 0 {
			n.Arrive = timebase.Ticks(rng.Int63n(int64(horizon / 2)))
			n.Depart = n.Arrive + timebase.Ticks(rng.Int63n(int64(horizon/2))) + 1
		}
		for c := 0; c < nCh; c++ {
			if rng.Intn(3) > 0 {
				period := timebase.Ticks(rng.Intn(400) + 50)
				length := timebase.Ticks(rng.Intn(20) + 1)
				at := timebase.Ticks(rng.Intn(int(period - length)))
				n.Emits = append(n.Emits, Emission{
					Channel: c,
					B: schedule.BeaconSeq{
						Beacons: []schedule.Beacon{{Time: at, Len: length}},
						Period:  period,
					},
					Phase: timebase.Ticks(rng.Intn(500)) - 250,
				})
			}
			if rng.Intn(3) > 0 {
				period := timebase.Ticks(rng.Intn(500) + 80)
				length := timebase.Ticks(rng.Intn(60) + 10)
				at := timebase.Ticks(rng.Intn(int(period - length)))
				n.Listens = append(n.Listens, Listening{
					Channel: c,
					C: schedule.WindowSeq{
						Windows: []schedule.Window{{Start: at, Len: length}},
						Period:  period,
					},
					Phase: timebase.Ticks(rng.Intn(500)) - 250,
				})
			}
		}
		nodes[i] = n
	}
	return nodes
}

// TestRunWorldMatchesBruteForce drives the kernel across randomized small
// worlds — 1 to 3 channels, every channel-semantics combination, static and
// churning presence — and demands exact agreement with the quadratic
// reference on traffic, per-channel collision accounting and every first
// reception.
func TestRunWorldMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	horizon := timebase.Ticks(3000)
	for trial := 0; trial < 200; trial++ {
		nNodes := 2 + rng.Intn(3)
		nCh := 1 + rng.Intn(3)
		churn := trial%4 == 3
		nodes := randomWorld(rng, nNodes, nCh, horizon, churn)
		cfg := Config{
			Horizon:          horizon,
			Collisions:       trial%2 == 0,
			HalfDuplex:       trial%3 == 0,
			TruncatedWindows: trial%5 == 0,
		}
		if trial%7 == 0 {
			// Seed, not Source: both the kernel and the reference call
			// cfg.rng(), and a shared Source instance would hand the
			// second caller the first one's leftover stream state.
			cfg.Jitter = timebase.Ticks(rng.Intn(30) + 1)
			cfg.Seed = int64(trial) + 1
		}
		compareWorlds(t, "random world", nodes, cfg)
	}
}

// TestRunWorldMultiChannelGroupMatchesBruteForce pins the kernel against
// the brute-force reference on the exact node construction the
// multichannel-group and multichannel-churn workloads use — BLE-style
// advertiser/scanner devices with per-channel collisions and half-duplex
// radios — on small populations.
func TestRunWorldMultiChannelGroupMatchesBruteForce(t *testing.T) {
	mc := multichannel.Config{
		Ta: 700, Omega: 40, IFS: 10,
		Ts: 900, Ds: 300, Channels: 3,
	}
	if err := mc.Validate(); err != nil {
		t.Fatal(err)
	}
	circle := timebase.Ticks(mc.Channels) * mc.Ts
	rng := rand.New(rand.NewSource(7))
	horizon := timebase.Ticks(20000)
	for trial := 0; trial < 50; trial++ {
		s := 2 + rng.Intn(3)
		nodes := make([]WorldNode, s)
		for i := range nodes {
			u := timebase.Ticks(rng.Int63n(int64(mc.Ta)))
			x := timebase.Ticks(rng.Int63n(int64(circle)))
			nodes[i] = WorldNode{
				Emits:   advertiserEmissions(mc, -u),
				Listens: scannerListens(mc, -x),
			}
			if trial%2 == 1 {
				nodes[i].Arrive = timebase.Ticks(rng.Int63n(int64(horizon / 2)))
				nodes[i].Depart = nodes[i].Arrive + horizon/3
			}
		}
		cfg := Config{Horizon: horizon, Collisions: true, HalfDuplex: true}
		compareWorlds(t, "multi-channel group world", nodes, cfg)
	}
}

// TestRunWorldRejectsBadInput: the kernel validates its inputs.
func TestRunWorldRejectsBadInput(t *testing.T) {
	ok := WorldNode{Emits: []Emission{{B: schedule.BeaconSeq{
		Beacons: []schedule.Beacon{{Time: 0, Len: 1}}, Period: 10,
	}}}}
	if _, err := RunWorld([]WorldNode{ok, ok}, Config{Horizon: 0}); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := RunWorld([]WorldNode{ok}, Config{Horizon: 100}); err == nil {
		t.Error("single-node world accepted")
	}
	bad := ok
	bad.Emits = []Emission{{Channel: -1, B: ok.Emits[0].B}}
	if _, err := RunWorld([]WorldNode{bad, ok}, Config{Horizon: 100}); err == nil {
		t.Error("negative channel accepted")
	}
}

// TestMultiChannelGroupTrialAccounting: the group trial's pooled counters
// are consistent — per-channel loads sum to the totals, discoveries sum to
// the discovered pairs, and samples + misses cover every ordered pair.
func TestMultiChannelGroupTrialAccounting(t *testing.T) {
	mc := multichannel.Config{Ta: 700, Omega: 40, IFS: 10, Ts: 900, Ds: 300, Channels: 3}
	rng := rand.New(NewFastSource(11))
	const s = 5
	res, err := MultiChannelGroupTrial(mc, s, Config{Horizon: 30000, Collisions: true, HalfDuplex: true}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples)+res.Misses != s*(s-1) {
		t.Fatalf("judged %d+%d pairs, want %d", len(res.Samples), res.Misses, s*(s-1))
	}
	var tx, coll, disc int
	for _, l := range res.PerChannel {
		tx += l.Transmissions
		coll += l.Collided
	}
	for _, d := range res.Discoveries {
		disc += d
	}
	if tx != res.Transmissions || coll != res.Collided {
		t.Fatalf("per-channel loads %d/%d don't sum to totals %d/%d", tx, coll, res.Transmissions, res.Collided)
	}
	if disc != len(res.Samples) {
		t.Fatalf("per-channel discoveries %d don't match %d discovered pairs", disc, len(res.Samples))
	}
	if res.Transmissions == 0 {
		t.Fatal("no traffic simulated")
	}
}

// TestMultiChannelChurnTrialContacts: churn contacts are judged only past
// the scanner-cycle overlap threshold, latencies are measured from joint
// presence, and the counters stay consistent.
func TestMultiChannelChurnTrialContacts(t *testing.T) {
	mc := multichannel.Config{Ta: 700, Omega: 40, IFS: 10, Ts: 900, Ds: 300, Channels: 3}
	circle := timebase.Ticks(mc.Channels) * mc.Ts
	rng := rand.New(NewFastSource(13))
	const s = 6
	horizon := timebase.Ticks(40000)
	res, err := MultiChannelChurnTrial(mc, s, horizon/3, Config{Horizon: horizon, Collisions: true}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Contacts) == 0 {
		t.Fatal("no contacts judged")
	}
	if len(res.Contacts) > s*(s-1) {
		t.Fatalf("judged %d contacts, more than the %d ordered pairs", len(res.Contacts), s*(s-1))
	}
	discovered := 0
	for _, c := range res.Contacts {
		if c.Overlap < circle {
			t.Fatalf("contact with overlap %d below the %d-tick judging threshold", c.Overlap, circle)
		}
		if c.Discovered {
			discovered++
			if c.Latency < 0 || c.Latency > horizon {
				t.Fatalf("implausible contact latency %d", c.Latency)
			}
		}
	}
	if discovered != len(res.Samples) || len(res.Samples)+res.Misses != len(res.Contacts) {
		t.Fatalf("contact accounting inconsistent: %d discovered, %d samples, %d misses, %d contacts",
			discovered, len(res.Samples), res.Misses, len(res.Contacts))
	}
	var disc int
	for _, d := range res.Discoveries {
		disc += d
	}
	if disc != discovered {
		t.Fatalf("per-channel discoveries %d don't match %d discovered contacts", disc, discovered)
	}
}

// TestMultiChannelGroupTrialDeterministic: the same rng stream yields the
// same trial, and disjoint streams differ — the sharding contract.
func TestMultiChannelGroupTrialDeterministic(t *testing.T) {
	mc := multichannel.Config{Ta: 700, Omega: 40, IFS: 10, Ts: 900, Ds: 300, Channels: 3}
	cfg := Config{Horizon: 30000, Collisions: true}
	run := func(seed int64) MultiChannelGroupResult {
		res, err := MultiChannelGroupTrial(mc, 4, cfg, rand.New(NewFastSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(3), run(3)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different trials")
	}
	if reflect.DeepEqual(run(3), run(4)) {
		t.Fatal("different seeds produced identical trials")
	}
}
