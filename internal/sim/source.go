package sim

import "math/rand"

// splitmix is a splitmix64 rand.Source64. The default math/rand source
// spends ~25 µs seeding a 607-word lagged-Fibonacci state — two of those
// per Monte-Carlo trial dominated the entire simulation cost. splitmix64
// seeds in one word, passes BigCrush, and its single-word state makes
// per-trial stream derivation essentially free.
type splitmix struct{ x uint64 }

// NewFastSource returns a cheaply-seedable deterministic rand.Source64 for
// Monte-Carlo trial streams.
func NewFastSource(seed int64) rand.Source {
	return &splitmix{uint64(seed)}
}

func (s *splitmix) Seed(seed int64) { s.x = uint64(seed) }

func (s *splitmix) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *splitmix) Uint64() uint64 {
	s.x += 0x9e3779b97f4a7c15
	z := s.x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
