package sim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/multichannel"
	"repro/internal/slots"
	"repro/internal/timebase"
)

// TestMultiChannelPairTrialMatchesAnalysis: the trial samples the exact
// ensemble multichannel.Analyze integrates over, so over many trials the
// sample mean approaches the analytic expectation and no sample exceeds
// the analytic worst case.
func TestMultiChannelPairTrialMatchesAnalysis(t *testing.T) {
	cfg := multichannel.BLE(20_000, 128, 30_000, 30_000) // the BLE fast point
	res, err := multichannel.Analyze(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deterministic {
		t.Fatal("the fast point must be deterministic")
	}
	rng := rand.New(NewFastSource(42))
	const trials = 5000
	horizon := 2 * res.WorstLatency
	var sum float64
	chans := make([]int, cfg.Channels)
	for i := 0; i < trials; i++ {
		oc, err := MultiChannelPairTrial(cfg, horizon, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !oc.Discovered {
			t.Fatalf("trial %d missed with a horizon past the worst case", i)
		}
		if oc.Latency > res.WorstLatency {
			t.Fatalf("trial %d latency %d exceeds the exact worst case %d", i, oc.Latency, res.WorstLatency)
		}
		if oc.Channel < 0 || oc.Channel >= cfg.Channels {
			t.Fatalf("trial %d discovered on impossible channel %d", i, oc.Channel)
		}
		chans[oc.Channel]++
		sum += float64(oc.Latency)
	}
	mean := sum / trials
	if rel := math.Abs(mean-res.MeanLatency) / res.MeanLatency; rel > 0.05 {
		t.Fatalf("sample mean %v deviates %.1f%% from analytic mean %v", mean, rel*100, res.MeanLatency)
	}
	for c, n := range chans {
		if n == 0 {
			t.Fatalf("no discovery ever used channel %d: %v", c, chans)
		}
	}
}

// TestMultiChannelPairTrialCoverage: for a partially covered configuration
// the discovery fraction matches the analytic covered fraction.
func TestMultiChannelPairTrialCoverage(t *testing.T) {
	// Ta == the scanner cycle, so PDU offsets never drift and only the
	// initial offset decides discovery.
	cfg := multichannel.BLE(90_000, 128, 30_000, 3_000)
	res, err := multichannel.Analyze(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deterministic {
		t.Fatal("configuration should be gappy")
	}
	rng := rand.New(NewFastSource(7))
	const trials = 4000
	horizon := timebase.Ticks(20) * cfg.Ta
	disc := 0
	for i := 0; i < trials; i++ {
		oc, err := MultiChannelPairTrial(cfg, horizon, rng)
		if err != nil {
			t.Fatal(err)
		}
		if oc.Discovered {
			disc++
		}
	}
	got := float64(disc) / trials
	if math.Abs(got-res.CoveredFraction) > 0.03 {
		t.Fatalf("discovery fraction %v deviates from covered fraction %v", got, res.CoveredFraction)
	}
}

// TestMultiChannelPairTrialDeterministicStream: the same rng seed replays
// the same trial — the property the engine's per-trial sharding rests on.
func TestMultiChannelPairTrialDeterministicStream(t *testing.T) {
	cfg := multichannel.BLE(20_000, 128, 30_000, 30_000)
	a, err := MultiChannelPairTrial(cfg, 200_000, rand.New(NewFastSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := MultiChannelPairTrial(cfg, 200_000, rand.New(NewFastSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed, different outcomes: %+v vs %+v", a, b)
	}
}

// TestSlotGridPairTrialMatchesAnalysis: sampled slot-aligned latencies
// stay within the slots.Analyze worst case, hit it eventually, and match
// the analytic mean.
func TestSlotGridPairTrialMatchesAnalysis(t *testing.T) {
	sched, err := slots.Disco(5, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := slots.Analyze(sched, sched)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deterministic {
		t.Fatal("Disco(5,7) must be deterministic slot-aligned")
	}
	slotLen := timebase.Ticks(1000)
	horizon := timebase.Ticks(res.WorstSlots) * slotLen * 2
	rng := rand.New(NewFastSource(3))
	const trials = 20000
	var sum float64
	worstSeen := timebase.Ticks(0)
	for i := 0; i < trials; i++ {
		at, ok, err := SlotGridPairTrial(sched, sched, slotLen, horizon, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("trial %d missed", i)
		}
		if at%slotLen != 0 {
			t.Fatalf("latency %d is not slot-aligned", at)
		}
		if at > worstSeen {
			worstSeen = at
		}
		sum += float64(at)
	}
	worstTicks := timebase.Ticks(res.WorstSlots) * slotLen
	if worstSeen > worstTicks {
		t.Fatalf("sampled worst %d exceeds analytic worst %d", worstSeen, worstTicks)
	}
	// 35 phase pairs: 20k trials visit all of them, including the worst.
	if worstSeen != worstTicks {
		t.Fatalf("sampled worst %d never reached the analytic worst %d", worstSeen, worstTicks)
	}
	mean := sum / trials
	analytic := res.MeanSlots * float64(slotLen)
	if rel := math.Abs(mean-analytic) / analytic; rel > 0.05 {
		t.Fatalf("sample mean %v deviates %.1f%% from analytic mean %v", mean, rel*100, analytic)
	}
}

// TestSlotGridPairTrialHorizon: a horizon below the worst case produces
// misses rather than latencies past the horizon.
func TestSlotGridPairTrialHorizon(t *testing.T) {
	sched, err := slots.Disco(5, 7)
	if err != nil {
		t.Fatal(err)
	}
	slotLen := timebase.Ticks(1000)
	horizon := 3 * slotLen
	rng := rand.New(NewFastSource(11))
	misses := 0
	for i := 0; i < 500; i++ {
		at, ok, err := SlotGridPairTrial(sched, sched, slotLen, horizon, rng)
		if err != nil {
			t.Fatal(err)
		}
		if ok && at > horizon {
			t.Fatalf("latency %d past the horizon %d", at, horizon)
		}
		if !ok {
			misses++
		}
	}
	if misses == 0 {
		t.Fatal("a 3-slot horizon should produce misses for Disco(5,7)")
	}
}
