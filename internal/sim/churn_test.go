package sim

import (
	"testing"

	"repro/internal/optimal"
	"repro/internal/schedule"
	"repro/internal/timebase"
)

func TestNodePresenceGatesTransmissions(t *testing.T) {
	// Sender present only during [100, 200): beacons at 50, 150, 250 — only
	// the one at 150 is on air.
	b, _ := schedule.NewBeaconsAt([]timebase.Ticks{50}, 10, 100)
	c, _ := schedule.NewWindowsAt([]schedule.Window{{Start: 0, Len: 1000}}, 1000)
	nodes := []Node{
		{Device: schedule.Device{B: b}, Arrive: 100, Depart: 200},
		{Device: schedule.Device{C: c}},
	}
	res, err := Run(nodes, Config{Horizon: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Transmissions != 1 {
		t.Errorf("transmissions = %d, want 1 (only the beacon inside presence)", res.Transmissions)
	}
	at, ok := res.FirstDiscovery(1, 0)
	if !ok || at != 160 {
		t.Errorf("discovery at %v (ok=%v), want 160", at, ok)
	}
}

func TestNodePresenceGatesReception(t *testing.T) {
	// Receiver arrives at 100: the beacon at 50 is missed, the one at 150
	// received.
	b, _ := schedule.NewBeaconsAt([]timebase.Ticks{50}, 10, 100)
	c, _ := schedule.NewWindowsAt([]schedule.Window{{Start: 0, Len: 1000}}, 1000)
	nodes := []Node{
		{Device: schedule.Device{B: b}},
		{Device: schedule.Device{C: c}, Arrive: 100},
	}
	res, err := Run(nodes, Config{Horizon: 1000})
	if err != nil {
		t.Fatal(err)
	}
	at, ok := res.FirstDiscovery(1, 0)
	if !ok || at != 160 {
		t.Errorf("discovery at %v (ok=%v), want 160", at, ok)
	}
}

func TestDepartedReceiverHearsNothing(t *testing.T) {
	b, _ := schedule.NewBeaconsAt([]timebase.Ticks{500}, 10, 1000)
	c, _ := schedule.NewWindowsAt([]schedule.Window{{Start: 0, Len: 1000}}, 1000)
	nodes := []Node{
		{Device: schedule.Device{B: b}},
		{Device: schedule.Device{C: c}, Depart: 400},
	}
	res, err := Run(nodes, Config{Horizon: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.FirstDiscovery(1, 0); ok {
		t.Error("receiver heard a beacon after departing")
	}
}

func TestChurnDiscoveryLongContacts(t *testing.T) {
	// Contacts much longer than the worst case: every judged pair must
	// discover, within the analytic worst case of the schedule.
	pair, err := optimal.NewSymmetric(36, 1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	worst := pair.WorstCase()
	stats, err := ChurnDiscovery(pair.E, 4, 20, 0, Config{
		Horizon: 8 * worst,
		Seed:    5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.N == 0 {
		t.Fatal("no pairs judged")
	}
	if stats.Misses != 0 {
		t.Errorf("%d misses despite unbounded stays", stats.Misses)
	}
	if stats.Max > worst+36 {
		t.Errorf("churn max %v exceeds worst case %v", stats.Max, worst)
	}
}

func TestChurnDiscoveryShortContacts(t *testing.T) {
	// Stays shorter than the worst case must produce some misses: a
	// bounded contact window cannot guarantee discovery.
	pair, err := optimal.NewSymmetric(36, 1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	worst := pair.WorstCase()
	period := pair.E.B.Period
	if pair.E.C.Period > period {
		period = pair.E.C.Period
	}
	stay := period + worst/4 // long enough to be judged, short vs worst case
	stats, err := ChurnDiscovery(pair.E, 6, 30, stay, Config{
		Horizon: 8 * worst,
		Seed:    6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.N == 0 {
		t.Skip("no pairs overlapped long enough; adjust parameters")
	}
	if stats.Misses == 0 {
		t.Errorf("short contacts should miss sometimes (N=%d)", stats.N)
	}
	// And the successes must fit inside the contact window.
	if stats.Max > stay {
		t.Errorf("latency %v exceeds the stay %v", stats.Max, stay)
	}
}

func TestChurnRejectsBadArgs(t *testing.T) {
	pair, _ := optimal.NewSymmetric(36, 1, 0.05)
	if _, err := ChurnDiscovery(pair.E, 1, 5, 0, Config{Horizon: 1000}); err == nil {
		t.Error("s=1 accepted")
	}
}
