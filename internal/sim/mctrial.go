package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/multichannel"
	"repro/internal/schedule"
	"repro/internal/timebase"
)

// This file holds the multi-channel per-trial Monte-Carlo primitives, all
// thin configurations of the world kernel: the advertiser/scanner pair
// (the workload multichannel.Analyze answers exactly) and the multi-node
// workloads the exact analysis cannot reach — N advertisers rotating
// channels with per-channel ALOHA collisions, statically present or
// churning in and out. Every primitive follows the PairTrial contract: all
// randomness comes from the caller-supplied rng, so a caller owning one
// rng per trial can shard trials across goroutines with results
// bit-identical to a serial loop.

// advertiserEmissions builds a BLE-style advertiser's kernel schedules:
// every advertising interval Ta, one PDU per channel, back to back, spaced
// IFS apart (start to start: Omega + IFS). Phase shifts the whole event
// train; the channel of PDU c is c.
func advertiserEmissions(mc multichannel.Config, phase timebase.Ticks) []Emission {
	out := make([]Emission, mc.Channels)
	for c := range out {
		out[c] = Emission{
			Channel: c,
			B: schedule.BeaconSeq{
				Beacons: []schedule.Beacon{{Time: timebase.Ticks(c) * (mc.Omega + mc.IFS), Len: mc.Omega}},
				Period:  mc.Ta,
			},
			Phase: phase,
		}
	}
	return out
}

// scannerListens builds a channel-cycling scanner's kernel schedules: the
// scanner listens Ds at the end of every scan interval Ts, on one channel
// per interval, cycling through all channels (cycle length Channels·Ts).
func scannerListens(mc multichannel.Config, phase timebase.Ticks) []Listening {
	circle := timebase.Ticks(mc.Channels) * mc.Ts
	out := make([]Listening, mc.Channels)
	for c := range out {
		out[c] = Listening{
			Channel: c,
			C: schedule.WindowSeq{
				Windows: []schedule.Window{{Start: timebase.Ticks(c)*mc.Ts + mc.Ts - mc.Ds, Len: mc.Ds}},
				Period:  circle,
			},
			Phase: phase,
		}
	}
	return out
}

// MultiChannelOutcome is the result of one multi-channel pair trial.
type MultiChannelOutcome struct {
	// Discovered reports whether a PDU was received within the horizon.
	Discovered bool

	// Latency is the time from range entry to the start of the first
	// received PDU — the same convention multichannel.Analyze labels
	// latencies with. Valid iff Discovered.
	Latency timebase.Ticks

	// Channel is the advertising channel of the received PDU. Valid iff
	// Discovered.
	Channel int
}

// MultiChannelPairTrial runs one trial of a multi-channel advertiser
// against a channel-cycling scanner: the advertiser's event phase is drawn
// uniform over the advertising interval (so range entry is uniform in
// time) and the scanner's cycle offset uniform over its channel cycle,
// exactly the ensemble multichannel.Analyze integrates over. A PDU on
// channel c is received iff it starts inside the scanner's window on c;
// PDUs that began before range entry are lost.
func MultiChannelPairTrial(cfg multichannel.Config, horizon timebase.Ticks, rng *rand.Rand) (MultiChannelOutcome, error) {
	return MultiChannelPairTrialScratch(cfg, horizon, rng, NewScratch())
}

// MultiChannelPairTrialScratch is MultiChannelPairTrial against a
// caller-owned arena: the kernel buffers, the node set and the per-channel
// schedule templates (memoized per config) all come from scr.
func MultiChannelPairTrialScratch(cfg multichannel.Config, horizon timebase.Ticks, rng *rand.Rand, scr *Scratch) (MultiChannelOutcome, error) {
	if err := cfg.Validate(); err != nil {
		return MultiChannelOutcome{}, err
	}
	if horizon <= 0 {
		return MultiChannelOutcome{}, fmt.Errorf("sim: horizon %d must be positive", horizon)
	}
	circle := timebase.Ticks(cfg.Channels) * cfg.Ts

	// u places range entry u ticks after an advertising-event start; x is
	// the scanner's cycle position at range entry.
	u := timebase.Ticks(rng.Int63n(int64(cfg.Ta)))
	x := timebase.Ticks(rng.Int63n(int64(circle)))

	bs, ws := scr.mcTemplates(cfg)

	// Escalating horizon: discovery typically lands within one
	// advertiser/scanner cycle, so start the kernel there and double up
	// to the caller's horizon only on a miss. All PDUs are Omega long and
	// the quiet pair channel has no cross-packet effects, so a reception
	// found in a truncated run IS the overall first (an earlier one would
	// start earlier still and be present in the same run) — trials that
	// discover cost O(discovery delay), not O(horizon).
	for h := minTicks(maxTicks(cfg.Ta, circle), horizon); ; h = minTicks(2*h, horizon) {
		// Depart past the horizon keeps the pair model's censoring rule: a
		// PDU counts iff it starts before the horizon, even when its
		// airtime runs past it (the kernel's presence window would
		// otherwise drop it).
		nodes := scr.worldNodes(2, cfg.Channels, cfg.Channels)
		em := scr.nodeEmits(0, cfg.Channels)
		ls := scr.nodeListens(1, cfg.Channels)
		for c := 0; c < cfg.Channels; c++ {
			em[c] = Emission{Channel: c, B: bs[c], Phase: -u}
			ls[c] = Listening{Channel: c, C: ws[c], Phase: -x}
		}
		nodes[0] = WorldNode{Emits: em, Depart: h + cfg.Omega}
		nodes[1] = WorldNode{Listens: ls, Depart: h + cfg.Omega}
		wr, err := RunWorldScratch(nodes, Config{Horizon: h}, scr)
		if err != nil {
			return MultiChannelOutcome{}, err
		}
		if rec, ok := wr.FirstReception(1, 0); ok {
			return MultiChannelOutcome{Discovered: true, Latency: rec.Start, Channel: rec.Channel}, nil
		}
		if h == horizon {
			return MultiChannelOutcome{}, nil
		}
	}
}

// MultiChannelGroupResult is the outcome of one multi-node multi-channel
// trial (static group or churn).
type MultiChannelGroupResult struct {
	// Samples holds one latency per discovered ordered (receiver, sender)
	// pair, in deterministic receiver-major order: PDU start from t = 0 for
	// the static group, PDU start from the joint-presence instant for
	// churn. Misses counts the pairs (static) or judged contacts (churn)
	// that did not discover.
	Samples []timebase.Ticks
	Misses  int

	// Contacts holds the per-pair contact records of a churn trial (nil
	// for the static group), so callers can bin discovery ratios by
	// contact duration.
	Contacts []Contact

	// Channel statistics of the underlying kernel run: pooled and
	// per-advertising-channel packet counts, plus the discovery counts by
	// the channel of each pair's first received PDU. Aggregation across
	// trials pools counts, so every packet weighs the same.
	Transmissions, Collided int
	PerChannel              []ChannelLoad
	Discoveries             []int
}

// runMultiChannelWorld is the shared body of the multi-node trials: it
// draws each device's phases (and, when churning, its presence) in
// deterministic node order, builds the node set, and runs the kernel on a
// child RNG stream so the channel semantics (per-channel collisions,
// half-duplex, jitter) come from cfg.
func runMultiChannelWorld(mc multichannel.Config, s int, churn bool, stay timebase.Ticks, cfg Config, rng *rand.Rand, scr *Scratch) ([]WorldNode, WorldResult, error) {
	if err := mc.Validate(); err != nil {
		return nil, WorldResult{}, err
	}
	if s < 2 {
		return nil, WorldResult{}, fmt.Errorf("sim: group size %d must be ≥ 2", s)
	}
	circle := timebase.Ticks(mc.Channels) * mc.Ts
	bs, ws := scr.mcTemplates(mc)
	nodes := scr.worldNodes(s, mc.Channels, mc.Channels)
	for i := range nodes {
		var arrive, depart timebase.Ticks
		if churn {
			arrive = timebase.Ticks(rng.Int63n(int64(cfg.Horizon / 2)))
			if stay > 0 {
				depart = arrive + stay
			}
		}
		u := timebase.Ticks(rng.Int63n(int64(mc.Ta)))
		x := timebase.Ticks(rng.Int63n(int64(circle)))
		em := scr.nodeEmits(i, mc.Channels)
		ls := scr.nodeListens(i, mc.Channels)
		for c := 0; c < mc.Channels; c++ {
			em[c] = Emission{Channel: c, B: bs[c], Phase: -u}
			ls[c] = Listening{Channel: c, C: ws[c], Phase: -x}
		}
		nodes[i] = WorldNode{
			Emits:   em,
			Listens: ls,
			Arrive:  arrive,
			Depart:  depart,
		}
	}
	runCfg := cfg
	runCfg.Source = scr.childSource(rng.Int63())
	wr, err := RunWorldScratch(nodes, runCfg, scr)
	if err != nil {
		return nil, WorldResult{}, err
	}
	return nodes, wr, nil
}

// poolMultiChannel judges every ordered (receiver, sender) pair of the
// world run in receiver-major order, measuring latency from the pair's
// joint-presence instant: pairs whose presence overlap is below minOverlap
// are skipped, and contact records are kept when recordContacts is set
// (the churn view).
func poolMultiChannel(nodes []WorldNode, wr WorldResult, channels int, horizon, minOverlap timebase.Ticks, recordContacts bool) MultiChannelGroupResult {
	out := MultiChannelGroupResult{
		Transmissions: wr.Transmissions,
		Collided:      wr.Collided,
		// The kernel result may alias a reusable arena; the returned
		// per-channel loads must survive the next trial, so copy them.
		PerChannel:  append([]ChannelLoad(nil), wr.PerChannel...),
		Discoveries: make([]int, channels),
	}
	for r := range nodes {
		for snd := range nodes {
			if r == snd {
				continue
			}
			both := maxTicks(nodes[r].Arrive, nodes[snd].Arrive)
			until := minTicks(nodes[r].departOr(horizon), nodes[snd].departOr(horizon))
			overlap := until - both
			if overlap < minOverlap {
				continue // contact too short to judge
			}
			c := Contact{Overlap: overlap}
			if rec, ok := wr.FirstReception(r, snd); ok && rec.Start >= both {
				c.Discovered = true
				c.Latency = rec.Start - both
				out.Samples = append(out.Samples, c.Latency)
				out.Discoveries[rec.Channel]++
			} else {
				out.Misses++
			}
			if recordContacts {
				out.Contacts = append(out.Contacts, c)
			}
		}
	}
	return out
}

// MultiChannelGroupTrial runs one trial of s identical BLE-style devices,
// each advertising every interval on all channels and scanning the channel
// cycle, with phases drawn uniform per device — the multi-node multi-channel
// workload the pairwise analysis cannot model. The channel semantics
// (per-channel ALOHA collisions, half-duplex, jitter) come from cfg.
func MultiChannelGroupTrial(mc multichannel.Config, s int, cfg Config, rng *rand.Rand) (MultiChannelGroupResult, error) {
	return MultiChannelGroupTrialScratch(mc, s, cfg, rng, NewScratch())
}

// MultiChannelGroupTrialScratch is MultiChannelGroupTrial against a
// caller-owned arena. The returned result is fully owned by the caller
// (samples, contacts and per-channel loads are copied out of the arena).
func MultiChannelGroupTrialScratch(mc multichannel.Config, s int, cfg Config, rng *rand.Rand, scr *Scratch) (MultiChannelGroupResult, error) {
	nodes, wr, err := runMultiChannelWorld(mc, s, false, 0, cfg, rng, scr)
	if err != nil {
		return MultiChannelGroupResult{}, err
	}
	return poolMultiChannel(nodes, wr, mc.Channels, cfg.Horizon, 0, false), nil
}

// MultiChannelChurnTrial runs one trial of the churning multi-channel
// neighborhood: s identical BLE-style devices arrive at uniformly random
// times in the first half of the horizon and stay for stay ticks (0 =
// until the end). Ordered pairs whose joint presence spans at least the
// scanner's full channel cycle are judged — long enough that every channel
// got a chance, short enough that bounded contacts are still evaluated and
// can legitimately miss — and latency is measured from the joint-presence
// instant to the first received PDU's start.
func MultiChannelChurnTrial(mc multichannel.Config, s int, stay timebase.Ticks, cfg Config, rng *rand.Rand) (MultiChannelGroupResult, error) {
	return MultiChannelChurnTrialScratch(mc, s, stay, cfg, rng, NewScratch())
}

// MultiChannelChurnTrialScratch is MultiChannelChurnTrial against a
// caller-owned arena. The returned result is fully owned by the caller.
func MultiChannelChurnTrialScratch(mc multichannel.Config, s int, stay timebase.Ticks, cfg Config, rng *rand.Rand, scr *Scratch) (MultiChannelGroupResult, error) {
	if cfg.Horizon < 2 {
		return MultiChannelGroupResult{}, fmt.Errorf("sim: churn horizon %d must be ≥ 2", cfg.Horizon)
	}
	nodes, wr, err := runMultiChannelWorld(mc, s, true, stay, cfg, rng, scr)
	if err != nil {
		return MultiChannelGroupResult{}, err
	}
	minOverlap := timebase.Ticks(mc.Channels) * mc.Ts
	return poolMultiChannel(nodes, wr, mc.Channels, cfg.Horizon, minOverlap, true), nil
}
