package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/multichannel"
	"repro/internal/slots"
	"repro/internal/timebase"
)

// This file holds the per-trial Monte-Carlo primitives for the two
// workload families the continuous-time event simulator does not model:
// multi-channel BLE-style discovery (package multichannel owns the exact
// analysis) and slot-aligned slotted protocols (package slots). Both
// follow the same contract as PairTrial: all randomness comes from the
// caller-supplied rng, so a caller owning one rng per trial can shard
// trials across goroutines with results bit-identical to a serial loop.

// MultiChannelOutcome is the result of one multi-channel pair trial.
type MultiChannelOutcome struct {
	// Discovered reports whether a PDU was received within the horizon.
	Discovered bool

	// Latency is the time from range entry to the start of the first
	// received PDU — the same convention multichannel.Analyze labels
	// latencies with. Valid iff Discovered.
	Latency timebase.Ticks

	// Channel is the advertising channel of the received PDU. Valid iff
	// Discovered.
	Channel int
}

// MultiChannelPairTrial runs one trial of a multi-channel advertiser
// against a channel-cycling scanner: the advertiser's event phase is drawn
// uniform over the advertising interval (so range entry is uniform in
// time) and the scanner's cycle offset uniform over its channel cycle,
// exactly the ensemble multichannel.Analyze integrates over. A PDU on
// channel c is received iff it starts inside the scanner's window on c;
// PDUs that began before range entry are lost.
func MultiChannelPairTrial(cfg multichannel.Config, horizon timebase.Ticks, rng *rand.Rand) (MultiChannelOutcome, error) {
	if err := cfg.Validate(); err != nil {
		return MultiChannelOutcome{}, err
	}
	if horizon <= 0 {
		return MultiChannelOutcome{}, fmt.Errorf("sim: horizon %d must be positive", horizon)
	}
	circle := timebase.Ticks(cfg.Channels) * cfg.Ts

	// u places range entry u ticks after an advertising-event start; x is
	// the scanner's cycle position at range entry.
	u := timebase.Ticks(rng.Int63n(int64(cfg.Ta)))
	x := timebase.Ticks(rng.Int63n(int64(circle)))

	for event := timebase.Ticks(0); ; event++ {
		for c := 0; c < cfg.Channels; c++ {
			// PDU start, measured from range entry.
			at := event*cfg.Ta + timebase.Ticks(c)*(cfg.Omega+cfg.IFS) - u
			if at < 0 {
				continue // began before entry: heard partially, lost
			}
			if at >= horizon {
				return MultiChannelOutcome{}, nil
			}
			// The scanner listens to channel c during cycle positions
			// [c·Ts + Ts − Ds, (c+1)·Ts).
			pos := (at + x).Mod(circle)
			winStart := timebase.Ticks(c)*cfg.Ts + cfg.Ts - cfg.Ds
			if pos >= winStart && pos < winStart+cfg.Ds {
				return MultiChannelOutcome{Discovered: true, Latency: at, Channel: c}, nil
			}
		}
	}
}

// SlotGridPair is the prepared form of a slot-aligned pair: the schedules
// validated and their active-set lookup tables and hyperperiod computed
// once, so per-trial work is O(discovery delay) with no allocation — the
// engine runs up to millions of trials against one prepared pair.
type SlotGridPair struct {
	setA, setB []bool
	pa, pb     int64
	hyper      int64
	slotLen    timebase.Ticks
}

// NewSlotGridPair prepares schedules a and b on a shared grid of
// slotLen-tick slots.
func NewSlotGridPair(a, b slots.Schedule, slotLen timebase.Ticks) (*SlotGridPair, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if slotLen <= 0 {
		return nil, fmt.Errorf("sim: slot length %d must be positive", slotLen)
	}
	p := &SlotGridPair{
		setA:    make([]bool, a.Period),
		setB:    make([]bool, b.Period),
		pa:      int64(a.Period),
		pb:      int64(b.Period),
		hyper:   int64(timebase.LCM(timebase.Ticks(a.Period), timebase.Ticks(b.Period))),
		slotLen: slotLen,
	}
	for _, s := range a.Active {
		p.setA[s] = true
	}
	for _, s := range b.Active {
		p.setB[s] = true
	}
	return p, nil
}

// Trial runs one slot-aligned trial: both phases are drawn uniform over
// the schedules' own periods, and discovery happens in the first slot
// where both are active (completing at that slot's end, so discovery in
// slot t costs (t+1)·slotLen). This is the slot-domain literature's model
// executed literally — the ensemble slots.Analyze integrates over — as
// opposed to the continuous-time path, which draws arbitrary tick-level
// offsets and therefore sees the misalignment losses of the paper's
// Figure 5.
func (p *SlotGridPair) Trial(horizon timebase.Ticks, rng *rand.Rand) (timebase.Ticks, bool, error) {
	if horizon <= 0 {
		return 0, false, fmt.Errorf("sim: horizon %d must be positive", horizon)
	}
	u := int64(rng.Intn(int(p.pa)))
	v := int64(rng.Intn(int(p.pb)))
	// The joint state repeats after the hyperperiod; searching past it (or
	// past the horizon) cannot succeed.
	limit := p.hyper
	if h := int64(horizon / p.slotLen); h < limit {
		limit = h
	}
	for t := int64(0); t < limit; t++ {
		if p.setA[(u+t)%p.pa] && p.setB[(v+t)%p.pb] {
			return timebase.Ticks(t+1) * p.slotLen, true, nil
		}
	}
	return 0, false, nil
}

// SlotGridPairTrial is the one-shot convenience form of SlotGridPair:
// prepare and run a single trial. Callers running many trials should
// prepare once and call Trial.
func SlotGridPairTrial(a, b slots.Schedule, slotLen, horizon timebase.Ticks, rng *rand.Rand) (timebase.Ticks, bool, error) {
	p, err := NewSlotGridPair(a, b, slotLen)
	if err != nil {
		return 0, false, err
	}
	return p.Trial(horizon, rng)
}
