package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/schedule"
	"repro/internal/slots"
	"repro/internal/timebase"
)

// This file holds the per-trial Monte-Carlo primitive for slot-aligned
// slotted protocols (package slots owns the exact analysis): the
// slot-domain literature's model — both schedules on a shared grid of
// slotLen-tick slots, discovery in the first slot where both are active —
// executed as a configuration of the world kernel. The trial follows the
// same contract as PairTrial: all randomness comes from the caller-supplied
// rng, so a caller owning one rng per trial can shard trials across
// goroutines with results bit-identical to a serial loop.

// SlotGridPair is the prepared form of a slot-aligned pair: the schedules
// validated and their kernel schedule templates built once, so per-trial
// work is just phase placement plus one kernel run — the engine runs up to
// millions of trials against one prepared pair.
type SlotGridPair struct {
	beacons schedule.BeaconSeq // a's active slots as slot-long beacons
	windows schedule.WindowSeq // b's active slots as slot-long windows
	pa, pb  int64              // schedule periods in slots
	hyper   int64              // joint-state repetition period in slots
	slotLen timebase.Ticks
}

// NewSlotGridPair prepares schedules a and b on a shared grid of
// slotLen-tick slots.
func NewSlotGridPair(a, b slots.Schedule, slotLen timebase.Ticks) (*SlotGridPair, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if slotLen <= 0 {
		return nil, fmt.Errorf("sim: slot length %d must be positive", slotLen)
	}
	p := &SlotGridPair{
		beacons: schedule.BeaconSeq{
			Beacons: make([]schedule.Beacon, len(a.Active)),
			Period:  timebase.Ticks(a.Period) * slotLen,
		},
		windows: schedule.WindowSeq{
			Windows: make([]schedule.Window, len(b.Active)),
			Period:  timebase.Ticks(b.Period) * slotLen,
		},
		pa:      int64(a.Period),
		pb:      int64(b.Period),
		hyper:   int64(timebase.LCM(timebase.Ticks(a.Period), timebase.Ticks(b.Period))),
		slotLen: slotLen,
	}
	// Active slots are validated strictly increasing, so both sequences
	// come out sorted as the kernel requires. The sender's beacon fills its
	// whole slot: reception needs the packet start inside a window, and
	// completes at the slot's end — discovery in slot t costs (t+1)·slotLen,
	// the slot-domain latency convention.
	for i, s := range a.Active {
		p.beacons.Beacons[i] = schedule.Beacon{Time: timebase.Ticks(s) * slotLen, Len: slotLen}
	}
	for i, s := range b.Active {
		p.windows.Windows[i] = schedule.Window{Start: timebase.Ticks(s) * slotLen, Len: slotLen}
	}
	return p, nil
}

// Trial runs one slot-aligned trial: both phases are drawn uniform over
// the schedules' own periods, and discovery happens in the first slot
// where both are active (completing at that slot's end, so discovery in
// slot t costs (t+1)·slotLen). This is the slot-domain literature's model
// executed literally — the ensemble slots.Analyze integrates over — as
// opposed to the continuous-time path, which draws arbitrary tick-level
// offsets and therefore sees the misalignment losses of the paper's
// Figure 5.
func (p *SlotGridPair) Trial(horizon timebase.Ticks, rng *rand.Rand) (timebase.Ticks, bool, error) {
	return p.TrialScratch(horizon, rng, NewScratch())
}

// TrialScratch is Trial against a caller-owned arena.
func (p *SlotGridPair) TrialScratch(horizon timebase.Ticks, rng *rand.Rand, scr *Scratch) (timebase.Ticks, bool, error) {
	if horizon <= 0 {
		return 0, false, fmt.Errorf("sim: horizon %d must be positive", horizon)
	}
	u := int64(rng.Intn(int(p.pa)))
	v := int64(rng.Intn(int(p.pb)))
	// The joint state repeats after the hyperperiod, so a longer horizon
	// cannot change the outcome — capping the kernel run there bounds
	// per-trial work by the schedule structure, not the caller's horizon.
	// (A discovery in slot t needs (t+1)·slotLen ≤ horizon, which the cap
	// preserves: t < hyper and the capped horizon is ≤ the real one.)
	// Compare in slot units: hyper × slotLen could overflow for huge
	// near-coprime periods, but once hyper is known smaller than the
	// horizon's slot count the product is bounded by the horizon.
	limit := horizon
	if p.hyper < int64(horizon/p.slotLen) {
		limit = timebase.Ticks(p.hyper) * p.slotLen
	}
	// Phase -u·slotLen places the sender's local slot u at global slot 0,
	// so global slot t shows the sender's slot (u+t) mod pa against the
	// receiver's (v+t) mod pb.
	nodes := scr.worldNodes(2, 1, 1)
	em := scr.nodeEmits(0, 1)
	em[0] = Emission{Channel: 0, B: p.beacons, Phase: -timebase.Ticks(u) * p.slotLen}
	ls := scr.nodeListens(1, 1)
	ls[0] = Listening{Channel: 0, C: p.windows, Phase: -timebase.Ticks(v) * p.slotLen}
	nodes[0] = WorldNode{Emits: em}
	nodes[1] = WorldNode{Listens: ls}
	// Escalating horizon: discovery typically lands within a couple of
	// schedule periods, so start the kernel there and double up to the cap
	// only on a miss. All packets are one slot long, so a reception found
	// in a truncated run IS the overall first (an earlier one would end
	// earlier still and be present in the same run) — trials that
	// discover cost O(discovery delay), not O(horizon), and the geometric
	// escalation bounds a missing trial at ~2× one capped run.
	start := maxTicks(timebase.Ticks(p.pa), timebase.Ticks(p.pb)) * p.slotLen
	for h := minTicks(start, limit); ; h = minTicks(2*h, limit) {
		wr, err := RunWorldScratch(nodes, Config{Horizon: h}, scr)
		if err != nil {
			return 0, false, err
		}
		if rec, ok := wr.FirstReception(1, 0); ok {
			return rec.End, true, nil
		}
		if h == limit {
			return 0, false, nil
		}
	}
}

// SlotGridPairTrial is the one-shot convenience form of SlotGridPair:
// prepare and run a single trial. Callers running many trials should
// prepare once and call Trial.
func SlotGridPairTrial(a, b slots.Schedule, slotLen, horizon timebase.Ticks, rng *rand.Rand) (timebase.Ticks, bool, error) {
	p, err := NewSlotGridPair(a, b, slotLen)
	if err != nil {
		return 0, false, err
	}
	return p.Trial(horizon, rng)
}
