package sim

import (
	"math/rand"

	"repro/internal/multichannel"
	"repro/internal/schedule"
	"repro/internal/timebase"
)

// Scratch is a per-worker arena for the simulation kernel: every slice,
// map and RNG the hot path needs lives here and is reused across trials,
// so a steady-state trial allocates nothing beyond the samples it hands
// back. A Scratch is NOT safe for concurrent use — the engine owns one per
// worker goroutine; serial callers get a fresh one per call through the
// non-scratch wrappers (RunWorld, PairTrial, ...), which keeps those call
// sites bit-identical to the pre-arena code.
//
// Ownership rule: a WorldResult produced through a Scratch aliases the
// arena (First maps, PerChannel loads). It is valid only until the next
// kernel run on the same Scratch; callers that keep data across trials
// must copy it out first (see poolMultiChannel's PerChannel copy).
type Scratch struct {
	// Kernel buffers (RunWorldScratch).
	txs       []transmission
	runs      []txRun          // per-emission sorted segments of txs
	nodeRuns  []int            // node i's runs are runs[nodeRuns[i]:nodeRuns[i+1]]
	runPos    []int            // collision merge-scan cursor per run
	heap      []int            // k-way merge-scan heap of run ordinals
	headStart []timebase.Ticks // cached head starts for the linear merge scan
	emMax     []timebase.Ticks // per-emission airtime maxima (half-duplex)
	emBase    []int            // per-node first emission ordinal
	perLoad   []ChannelLoad

	// First-reception maps: the outer map is cleared per run, inner maps
	// are pooled and recycled in allocation order.
	first     map[int]map[int]Reception
	inner     []map[int]Reception
	innerUsed int

	// Node-building buffers (trial primitives).
	nodes     []Node
	wnodes    []WorldNode
	emitBuf   []Emission
	listenBuf []Listening

	// Multi-channel schedule templates, memoized per config: the beacon and
	// window sequences of advertiserEmissions/scannerListens depend only on
	// the multichannel.Config, not the per-trial phase.
	mcCfg     multichannel.Config
	mcBeacons []schedule.BeaconSeq
	mcWindows []schedule.WindowSeq

	// Reseedable RNGs: trialRand is the engine's per-trial stream (Rand),
	// childSrc/childRand the kernel stream the trial primitives derive from
	// it. Reseeding a splitmix in place yields the exact stream a fresh
	// rand.New(NewFastSource(seed)) would, so reuse is bit-identical.
	trialSrc  splitmix
	trialRand *rand.Rand
	childSrc  splitmix
	childRand *rand.Rand
}

// NewScratch returns an empty arena. Buffers grow on first use and are
// retained at high-water size afterwards.
func NewScratch() *Scratch {
	s := &Scratch{}
	s.trialRand = rand.New(&s.trialSrc)
	s.childRand = rand.New(&s.childSrc)
	return s
}

// Rand reseeds the arena's trial RNG in place and returns it: the stream
// is bit-identical to rand.New(NewFastSource(seed)) without the two
// allocations. The returned *rand.Rand is owned by the Scratch and valid
// until the next Rand call.
func (s *Scratch) Rand(seed int64) *rand.Rand {
	s.trialSrc.Seed(seed)
	return s.trialRand
}

// childSource reseeds the kernel-stream source and returns it, for use as
// Config.Source of a kernel run within the same Scratch.
func (s *Scratch) childSource(seed int64) rand.Source {
	s.childSrc.Seed(seed)
	return &s.childSrc
}

// kernelRNG returns the RNG for a kernel run: the cached wrapper when cfg
// carries the arena's own child source, else a fresh materialization.
func (s *Scratch) kernelRNG(cfg Config) *rand.Rand {
	if cfg.Source == &s.childSrc {
		return s.childRand
	}
	return cfg.rng()
}

// grow returns s resized to length n, reallocating only when the capacity
// is insufficient. Contents are NOT cleared.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// firstMaps returns the arena's outer first-reception map, emptied.
func (s *Scratch) firstMaps() map[int]map[int]Reception {
	if s.first == nil {
		s.first = make(map[int]map[int]Reception)
	} else {
		clear(s.first)
	}
	s.innerUsed = 0
	return s.first
}

// innerMap returns an empty per-receiver reception map from the pool.
func (s *Scratch) innerMap() map[int]Reception {
	if s.innerUsed < len(s.inner) {
		m := s.inner[s.innerUsed]
		s.innerUsed++
		clear(m)
		return m
	}
	m := make(map[int]Reception)
	s.inner = append(s.inner, m)
	s.innerUsed++
	return m
}

// mcTemplates returns the per-channel beacon and window sequences for a
// multi-channel config, memoized so repeated trials of the same scenario
// skip the per-channel slice allocations. The sequences are extracted from
// the canonical zero-phase builders (advertiserEmissions/scannerListens) —
// only Phase varies per trial, and Phase lives outside the sequences.
func (s *Scratch) mcTemplates(mc multichannel.Config) ([]schedule.BeaconSeq, []schedule.WindowSeq) {
	if s.mcBeacons != nil && s.mcCfg == mc {
		return s.mcBeacons, s.mcWindows
	}
	bs := make([]schedule.BeaconSeq, mc.Channels)
	ws := make([]schedule.WindowSeq, mc.Channels)
	for c, em := range advertiserEmissions(mc, 0) {
		bs[c] = em.B
	}
	for c, ls := range scannerListens(mc, 0) {
		ws[c] = ls.C
	}
	s.mcCfg, s.mcBeacons, s.mcWindows = mc, bs, ws
	return bs, ws
}

// worldNodes returns the arena's WorldNode buffer resized to n, with the
// per-node emission and listening backing arrays sized for per-node counts
// emits and listens. Node i's slices are emitBuf[i*emits : (i+1)*emits]
// and likewise for listens; callers fill them by index.
func (s *Scratch) worldNodes(n, emits, listens int) []WorldNode {
	s.wnodes = grow(s.wnodes, n)
	for i := range s.wnodes {
		s.wnodes[i] = WorldNode{}
	}
	s.emitBuf = grow(s.emitBuf, n*emits)
	s.listenBuf = grow(s.listenBuf, n*listens)
	return s.wnodes
}

// nodeEmits returns node i's emission sub-slice (per-node count emits),
// capacity-clamped so appends cannot bleed into a neighbor's range.
func (s *Scratch) nodeEmits(i, emits int) []Emission {
	return s.emitBuf[i*emits : (i+1)*emits : (i+1)*emits]
}

// nodeListens returns node i's listening sub-slice.
func (s *Scratch) nodeListens(i, listens int) []Listening {
	return s.listenBuf[i*listens : (i+1)*listens : (i+1)*listens]
}
