package sim

import (
	"math"
	"testing"

	"repro/internal/coverage"
	"repro/internal/optimal"
	"repro/internal/schedule"
	"repro/internal/timebase"
)

func senderOnly(b schedule.BeaconSeq) schedule.Device { return schedule.Device{B: b} }
func listenOnly(c schedule.WindowSeq) schedule.Device { return schedule.Device{C: c} }

func TestRunRejectsBadInput(t *testing.T) {
	u, _ := optimal.NewUnidirectional(2, 10, 4, 1)
	nodes := []Node{{Device: senderOnly(u.Sender)}, {Device: listenOnly(u.Listener)}}
	if _, err := Run(nodes, Config{Horizon: 0}); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := Run(nodes[:1], Config{Horizon: 100}); err == nil {
		t.Error("single node accepted")
	}
}

func TestRunBasicDiscovery(t *testing.T) {
	// Sender beacons every 30 from phase 0; listener window [30,40) per 40.
	u, err := optimal.NewUnidirectional(2, 10, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	nodes := []Node{
		{Device: senderOnly(u.Sender), Phase: 0},
		{Device: listenOnly(u.Listener), Phase: 0},
	}
	res, err := Run(nodes, Config{Horizon: 1000})
	if err != nil {
		t.Fatal(err)
	}
	at, ok := res.FirstDiscovery(1, 0)
	if !ok {
		t.Fatal("no discovery")
	}
	// Beacons at 0, 30, 60, 90…; windows [30,40), [70,80)… → beacon at 30
	// starts inside window [30,40): completes at 32.
	if at != 32 {
		t.Errorf("first discovery at %d, want 32", at)
	}
	// The sender never listens: it must not discover anyone.
	if _, ok := res.FirstDiscovery(0, 1); ok {
		t.Error("transmit-only node discovered someone")
	}
}

func TestRunRespectsPhases(t *testing.T) {
	u, _ := optimal.NewUnidirectional(2, 10, 4, 1)
	nodes := []Node{
		{Device: senderOnly(u.Sender), Phase: 5},
		{Device: listenOnly(u.Listener), Phase: 0},
	}
	res, err := Run(nodes, Config{Horizon: 1000})
	if err != nil {
		t.Fatal(err)
	}
	// Beacons now at 5, 35, 65, 95…; windows [30,40)… → beacon at 35.
	if at, ok := res.FirstDiscovery(1, 0); !ok || at != 37 {
		t.Errorf("discovery at %v (ok=%v), want 37", at, ok)
	}
}

func TestPairLatenciesMatchesCoverageWorstCase(t *testing.T) {
	u, err := optimal.NewUnidirectional(2, 25, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	ana, err := coverage.Analyze(u.Sender, u.Listener, coverage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := PairLatencies(senderOnly(u.Sender), listenOnly(u.Listener), 300,
		Config{Horizon: 4 * u.WorstCase, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Misses != 0 {
		t.Fatalf("%d misses despite deterministic schedule", stats.Misses)
	}
	// Monte-Carlo max must never exceed the analytic worst case (+ω for
	// the completion-time convention) and should get close to it.
	bound := ana.WorstLatency + 2
	if stats.Max > bound {
		t.Errorf("simulated max %d exceeds analytic worst case %d", stats.Max, bound)
	}
	if float64(stats.Max) < 0.5*float64(bound) {
		t.Errorf("simulated max %d suspiciously below worst case %d", stats.Max, bound)
	}
	if stats.Mean <= 0 || stats.Mean >= float64(bound) {
		t.Errorf("mean %v out of range", stats.Mean)
	}
}

func TestCollisionsDestroyOverlappingPackets(t *testing.T) {
	// Two senders phase-locked to transmit simultaneously, one listener.
	b, _ := schedule.NewEqualGapBeacons(1, 100, 10, 0)
	c, _ := schedule.NewWindowsAt([]schedule.Window{{Start: 0, Len: 100}}, 100)
	nodes := []Node{
		{Device: senderOnly(b), Phase: 0},
		{Device: senderOnly(b), Phase: 5}, // overlaps [5,15) vs [0,10)
		{Device: listenOnly(c), Phase: 0},
	}
	res, err := Run(nodes, Config{Horizon: 1000, Collisions: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Collided != res.Transmissions {
		t.Errorf("all packets should collide: %d/%d", res.Collided, res.Transmissions)
	}
	if _, ok := res.FirstDiscovery(2, 0); ok {
		t.Error("collided packet was received")
	}
	// Same setup without the collision channel: reception succeeds.
	res2, _ := Run(nodes, Config{Horizon: 1000, Collisions: false})
	if _, ok := res2.FirstDiscovery(2, 0); !ok {
		t.Error("no reception even without collisions")
	}
}

func TestCollisionChainMarking(t *testing.T) {
	// A long packet overlapping two short ones that do not overlap each
	// other: all three must be marked.
	long, _ := schedule.NewBeaconsAt([]timebase.Ticks{0}, 50, 1000)
	s1, _ := schedule.NewBeaconsAt([]timebase.Ticks{10}, 5, 1000)
	s2, _ := schedule.NewBeaconsAt([]timebase.Ticks{30}, 5, 1000)
	nodes := []Node{
		{Device: senderOnly(long)},
		{Device: senderOnly(s1)},
		{Device: senderOnly(s2)},
		{Device: listenOnly(schedule.WindowSeq{Windows: []schedule.Window{{Start: 0, Len: 1000}}, Period: 1000})},
	}
	res, err := Run(nodes, Config{Horizon: 1000, Collisions: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Collided != 3 {
		t.Errorf("collided = %d, want 3", res.Collided)
	}
}

func TestHalfDuplexBlocksOwnReception(t *testing.T) {
	// Receiver transmits exactly when the sender's beacon arrives.
	sender, _ := schedule.NewBeaconsAt([]timebase.Ticks{50}, 10, 1000)
	rxB, _ := schedule.NewBeaconsAt([]timebase.Ticks{48}, 20, 1000)
	rxC, _ := schedule.NewWindowsAt([]schedule.Window{{Start: 0, Len: 1000}}, 1000)
	nodes := []Node{
		{Device: senderOnly(sender)},
		{Device: schedule.Device{B: rxB, C: rxC}},
	}
	res, err := Run(nodes, Config{Horizon: 1000, HalfDuplex: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.FirstDiscovery(1, 0); ok {
		t.Error("half-duplex radio received while transmitting")
	}
	res2, _ := Run(nodes, Config{Horizon: 1000, HalfDuplex: false})
	if _, ok := res2.FirstDiscovery(1, 0); !ok {
		t.Error("full-duplex control case failed to receive")
	}
}

func TestTruncatedWindowsSemantics(t *testing.T) {
	// Beacon starts 5 ticks before window end but needs 10 ticks of air.
	sender, _ := schedule.NewBeaconsAt([]timebase.Ticks{95}, 10, 1000)
	c, _ := schedule.NewWindowsAt([]schedule.Window{{Start: 0, Len: 100}}, 1000)
	nodes := []Node{
		{Device: senderOnly(sender)},
		{Device: listenOnly(c)},
	}
	res, _ := Run(nodes, Config{Horizon: 1000, TruncatedWindows: true})
	if _, ok := res.FirstDiscovery(1, 0); ok {
		t.Error("truncated packet received under A.3 semantics")
	}
	res2, _ := Run(nodes, Config{Horizon: 1000})
	if _, ok := res2.FirstDiscovery(1, 0); !ok {
		t.Error("default semantics should accept the partially overlapping packet")
	}
}

func TestCollisionRateMatchesEq12(t *testing.T) {
	// S identical beaconers with random phases: per-packet collision rate
	// should track 1 − e^(−2(S−1)β).
	omega := timebase.Ticks(36)
	gap := timebase.Ticks(3600) // β = 0.01
	b, err := schedule.NewEqualGapBeacons(1, gap, omega, 0)
	if err != nil {
		t.Fatal(err)
	}
	dev := schedule.Device{B: b, C: schedule.WindowSeq{
		Windows: []schedule.Window{{Start: gap - 400, Len: 400}}, Period: gap}}
	beta := dev.B.Beta()
	for _, s := range []int{2, 5, 10} {
		res, err := GroupDiscovery(dev, s, 60, Config{
			Horizon:    40 * gap,
			Collisions: true,
			Jitter:     gap / 3, // decorrelate the periodic pattern
			Seed:       7,
		})
		if err != nil {
			t.Fatal(err)
		}
		want := 1 - math.Exp(-2*float64(s-1)*beta)
		got := res.CollisionRate
		if math.Abs(got-want) > 0.5*want+0.01 {
			t.Errorf("S=%d: collision rate %v, Eq 12 predicts %v", s, got, want)
		}
	}
}

func TestJitterDecorrelatesPhaseLockedCollisions(t *testing.T) {
	// Two advertisers with identical periods whose beacons always overlap,
	// plus one listener: without jitter every packet collides forever;
	// with jitter discovery eventually succeeds. This is the paper's
	// closing observation about BLE's advDelay randomization.
	omega := timebase.Ticks(36)
	b, _ := schedule.NewEqualGapBeacons(1, 5000, omega, 0)
	listener := schedule.Device{C: schedule.WindowSeq{
		Windows: []schedule.Window{{Start: 0, Len: 5000}}, Period: 5000}}
	nodes := []Node{
		{Device: senderOnly(b), Phase: 0},
		{Device: senderOnly(b), Phase: 10}, // overlaps: |10| < ω
		{Device: listener, Phase: 0},
	}
	noJitter, err := Run(nodes, Config{Horizon: 200000, Collisions: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := noJitter.FirstDiscovery(2, 0); ok {
		t.Error("phase-locked collisions should never resolve without jitter")
	}
	withJitter, err := Run(nodes, Config{Horizon: 200000, Collisions: true, Jitter: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := withJitter.FirstDiscovery(2, 0); !ok {
		t.Error("jitter failed to decorrelate the collision pattern")
	}
}

func TestCollectStats(t *testing.T) {
	samples := []timebase.Ticks{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	st := Collect(samples, 2)
	if st.N != 12 || st.Misses != 2 {
		t.Errorf("N=%d Misses=%d", st.N, st.Misses)
	}
	if st.Min != 10 || st.Max != 100 {
		t.Errorf("Min=%d Max=%d", st.Min, st.Max)
	}
	if st.Mean != 55 {
		t.Errorf("Mean=%v", st.Mean)
	}
	if st.P50 != 50 {
		t.Errorf("P50=%d", st.P50)
	}
	if math.Abs(st.FailureRate()-2.0/12) > 1e-12 {
		t.Errorf("FailureRate=%v", st.FailureRate())
	}
	empty := Collect(nil, 5)
	if empty.N != 5 || empty.FailureRate() != 1 {
		t.Errorf("empty collect: %+v", empty)
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	u, _ := optimal.NewUnidirectional(2, 10, 4, 1)
	cfg := Config{Horizon: 100000, Collisions: true, Jitter: 50, Seed: 99}
	nodes := []Node{
		{Device: senderOnly(u.Sender), Phase: 3},
		{Device: listenOnly(u.Listener), Phase: 17},
	}
	a, err := Run(nodes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(nodes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	atA, okA := a.FirstDiscovery(1, 0)
	atB, okB := b.FirstDiscovery(1, 0)
	if okA != okB || atA != atB {
		t.Errorf("same seed, different outcomes: (%v,%v) vs (%v,%v)", atA, okA, atB, okB)
	}
}
