// Package sim is a discrete-event simulator for neighbor discovery among S
// devices sharing one or more radio channels.
//
// The coverage engine (package coverage) answers the two-device question
// exactly; this simulator answers the questions the closed forms cannot:
// what happens when many devices discover each other simultaneously, their
// beacons collide (unslotted ALOHA: any airtime overlap on the same
// channel destroys both packets), radios are half-duplex, schedules are
// jittered for decorrelation (the BLE advDelay mechanism the paper's
// conclusion points to), and transmissions rotate over several advertising
// channels. It is the workload generator behind the Figure 7 and
// Appendix B experiments and the engine's multi-channel crowd workloads.
//
// All trial paths are configurations of one event-driven kernel over a
// world of nodes × radios × channels (RunWorld, world.go); Run is its
// single-channel form. The per-trial primitives (PairTrial, GroupTrial,
// ChurnTrial, the MultiChannel* trials, SlotGridPair.Trial) take an
// injected rand source so the engine can derive one stream per trial —
// the root of its bit-identical-across-workers contract. Time is integer
// ticks. Every run is deterministic given its seed.
package sim

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/schedule"
	"repro/internal/timebase"
)

// Node is one simulated device: a schedule plus a phase shift that places
// the schedule's origin at absolute time Phase. Arrive and Depart bound the
// node's presence: it transmits and receives only within [Arrive, Depart).
// The zero values mean "present from the start" and "never departs".
type Node struct {
	Device schedule.Device
	Phase  timebase.Ticks
	Arrive timebase.Ticks
	Depart timebase.Ticks // 0 = stays for the whole horizon
}

func (n Node) departOr(horizon timebase.Ticks) timebase.Ticks {
	if n.Depart <= 0 {
		return horizon
	}
	return n.Depart
}

// Config controls channel and radio semantics.
type Config struct {
	// Horizon is the simulated duration; events at t ∈ [0, Horizon).
	Horizon timebase.Ticks

	// Collisions enables the ALOHA channel: a packet overlapping any other
	// packet in time is destroyed at every receiver.
	Collisions bool

	// HalfDuplex prevents a device from receiving while it transmits.
	HalfDuplex bool

	// TruncatedWindows requires a packet to start no later than ω before
	// the window's end to be received (Appendix A.3 semantics).
	TruncatedWindows bool

	// Jitter delays each beacon independently by a uniform amount in
	// [0, Jitter], decorrelating periodic collision patterns (the BLE
	// advDelay mechanism). Zero disables jitter.
	Jitter timebase.Ticks

	// Seed feeds the deterministic RNG used for jitter.
	Seed int64

	// Source, when non-nil, supplies the RNG stream and takes precedence
	// over Seed. Injecting a source lets callers shard Monte-Carlo trials
	// across goroutines with independent, deterministic per-trial streams
	// (see PairTrial, GroupTrial and ChurnTrial).
	Source rand.Source
}

// rng materializes the configured RNG stream: the injected Source if set,
// otherwise a fresh stream seeded with Seed.
func (c Config) rng() *rand.Rand {
	if c.Source != nil {
		return rand.New(c.Source)
	}
	return rand.New(rand.NewSource(c.Seed))
}

// transmission is one on-air packet.
// transmission is one packet on air. The narrow sender/channel fields keep
// the struct at 32 bytes — the kernel streams millions of these per second,
// so its footprint is memory-bandwidth-sensitive.
type transmission struct {
	start, end timebase.Ticks
	sender     int32
	channel    int32
	collided   bool
}

// Discovery records receiver first hearing sender.
type Discovery struct {
	Receiver, Sender int
	At               timebase.Ticks // completion time of the received packet
}

// Result aggregates one simulation run.
type Result struct {
	// First[r][s] is the first time receiver r heard sender s; missing key
	// means no discovery within the horizon.
	First map[int]map[int]timebase.Ticks

	// Transmissions and Collided count packets on air and packets
	// destroyed by the collision channel.
	Transmissions, Collided int
}

// CollisionRate returns the fraction of packets destroyed by collisions.
func (r Result) CollisionRate() float64 {
	if r.Transmissions == 0 {
		return 0
	}
	return float64(r.Collided) / float64(r.Transmissions)
}

// FirstDiscovery returns when receiver first heard sender, if ever.
func (r Result) FirstDiscovery(receiver, sender int) (timebase.Ticks, bool) {
	m, ok := r.First[receiver]
	if !ok {
		return 0, false
	}
	t, ok := m[sender]
	return t, ok
}

// Run simulates the node set under cfg: the single-channel configuration
// of the world kernel (see world.go), with every node's beacon and window
// schedules on channel 0 and discoveries reported at packet completion.
func Run(nodes []Node, cfg Config) (Result, error) {
	ws := make([]WorldNode, len(nodes))
	for i, n := range nodes {
		ws[i] = WorldNode{Arrive: n.Arrive, Depart: n.Depart}
		if !n.Device.B.Empty() {
			ws[i].Emits = []Emission{{Channel: 0, B: n.Device.B, Phase: n.Phase}}
		}
		if !n.Device.C.Empty() {
			ws[i].Listens = []Listening{{Channel: 0, C: n.Device.C, Phase: n.Phase}}
		}
	}
	wr, err := RunWorld(ws, cfg)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		First:         make(map[int]map[int]timebase.Ticks, len(wr.First)),
		Transmissions: wr.Transmissions,
		Collided:      wr.Collided,
	}
	for r, m := range wr.First {
		rm := make(map[int]timebase.Ticks, len(m))
		for s, rec := range m {
			rm[s] = rec.End
		}
		res.First[r] = rm
	}
	return res, nil
}

// Stats summarizes a latency sample set.
type Stats struct {
	N             int
	Misses        int // trials with no discovery within the horizon
	Min, Max      timebase.Ticks
	Mean          float64
	P50, P95, P99 timebase.Ticks
}

// Collect computes order statistics over samples; misses counts separately.
func Collect(samples []timebase.Ticks, misses int) Stats {
	sorted := append([]timebase.Ticks(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return CollectSorted(sorted, misses)
}

// CollectSorted is Collect for a sample slice the caller has already
// sorted ascending, skipping the defensive copy and re-sort.
func CollectSorted(sorted []timebase.Ticks, misses int) Stats {
	st := Stats{N: len(sorted) + misses, Misses: misses}
	if len(sorted) == 0 {
		return st
	}
	st.Min = sorted[0]
	st.Max = sorted[len(sorted)-1]
	var sum float64
	for _, s := range sorted {
		sum += float64(s)
	}
	st.Mean = sum / float64(len(sorted))
	st.P50 = quantile(sorted, 0.50)
	st.P95 = quantile(sorted, 0.95)
	st.P99 = quantile(sorted, 0.99)
	return st
}

func quantile(sorted []timebase.Ticks, q float64) timebase.Ticks {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// FailureRate returns the fraction of trials that missed.
func (s Stats) FailureRate() float64 {
	if s.N == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.N)
}

// PairLatencies Monte-Carlos the one-way discovery latency of receiver
// device F hearing sender device E: each trial draws independent uniform
// phases for both schedules and reports the first reception time.
func PairLatencies(e, f schedule.Device, trials int, cfg Config) (Stats, error) {
	if trials < 1 {
		return Stats{}, fmt.Errorf("sim: trials %d must be ≥ 1", trials)
	}
	rng := cfg.rng()
	var samples []timebase.Ticks
	misses := 0
	for t := 0; t < trials; t++ {
		at, ok, err := PairTrial(e, f, cfg, rng)
		if err != nil {
			return Stats{}, err
		}
		if ok {
			samples = append(samples, at)
		} else {
			misses++
		}
	}
	return Collect(samples, misses), nil
}

// GroupResult aggregates a many-device experiment.
type GroupResult struct {
	Latency       Stats   // over all ordered (receiver, sender) pairs and trials
	CollisionRate float64 // pooled per-packet collision fraction over all trials
}

// GroupDiscovery Monte-Carlos S identical devices with random phases and
// measures pairwise one-way discovery latency and the packet collision
// rate — the pooled ratio of collided to transmitted packets over all
// trials, so every packet weighs the same no matter how trials split the
// traffic.
func GroupDiscovery(dev schedule.Device, s, trials int, cfg Config) (GroupResult, error) {
	if s < 2 {
		return GroupResult{}, fmt.Errorf("sim: group size %d must be ≥ 2", s)
	}
	rng := cfg.rng()
	var samples []timebase.Ticks
	misses := 0
	transmissions, collided := 0, 0
	for t := 0; t < trials; t++ {
		tr, err := GroupTrial(dev, s, cfg, rng)
		if err != nil {
			return GroupResult{}, err
		}
		transmissions += tr.Transmissions
		collided += tr.Collided
		samples = append(samples, tr.Samples...)
		misses += tr.Misses
	}
	res := GroupResult{Latency: Collect(samples, misses)}
	if transmissions > 0 {
		res.CollisionRate = float64(collided) / float64(transmissions)
	}
	return res, nil
}

// ChurnDiscovery simulates a dynamic neighborhood: s identical devices
// arrive at uniformly random times in the first half of the horizon and
// stay for stay ticks (0 = until the end). For every ordered pair whose
// presence overlaps by at least the schedule period, it measures the
// latency from the moment both are present until first discovery. This is
// the scenario the paper's introduction motivates: nodes encountering each
// other on the move, with only a bounded contact window to find each other.
func ChurnDiscovery(dev schedule.Device, s, trials int, stay timebase.Ticks, cfg Config) (Stats, error) {
	contacts, err := ChurnContacts(dev, s, trials, stay, cfg)
	if err != nil {
		return Stats{}, err
	}
	var samples []timebase.Ticks
	misses := 0
	for _, c := range contacts {
		if c.Discovered {
			samples = append(samples, c.Latency)
		} else {
			misses++
		}
	}
	return Collect(samples, misses), nil
}

// Contact is one ordered pair's encounter in a churn simulation: the
// duration both devices were jointly present, and whether (and when,
// measured from the joint-presence instant) the receiver discovered the
// sender.
type Contact struct {
	Overlap    timebase.Ticks
	Discovered bool
	Latency    timebase.Ticks // valid iff Discovered
}

// ChurnContacts runs the churn scenario of ChurnDiscovery and returns the
// raw per-pair contact records, so callers can bin discovery ratios by
// contact duration — the deployment-planning view: contacts of at least
// the worst-case bound L are guaranteed, shorter ones are best-effort.
func ChurnContacts(dev schedule.Device, s, trials int, stay timebase.Ticks, cfg Config) ([]Contact, error) {
	if s < 2 {
		return nil, fmt.Errorf("sim: group size %d must be ≥ 2", s)
	}
	rng := cfg.rng()
	var contacts []Contact
	for t := 0; t < trials; t++ {
		cs, _, err := ChurnTrial(dev, s, stay, cfg, rng)
		if err != nil {
			return nil, err
		}
		contacts = append(contacts, cs...)
	}
	return contacts, nil
}

func maxTicks(a, b timebase.Ticks) timebase.Ticks {
	if a > b {
		return a
	}
	return b
}

func minTicks(a, b timebase.Ticks) timebase.Ticks {
	if a < b {
		return a
	}
	return b
}

func randPhase(rng *rand.Rand, d schedule.Device) timebase.Ticks {
	period := d.B.Period
	if period == 0 || (d.C.Period > 0 && d.C.Period > period) {
		period = d.C.Period
	}
	if period <= 0 {
		return 0
	}
	return timebase.Ticks(rng.Int63n(int64(period)))
}
