package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/schedule"
	"repro/internal/timebase"
)

// This file holds the single-trial Monte-Carlo primitives. Each draws its
// random choices (phases, arrivals) from the caller-supplied rng and runs
// the event simulation on a child RNG stream derived from it, so a caller
// that owns one rng per trial can shard trials across goroutines and still
// obtain results bit-identical to a serial loop. The serial helpers
// (PairLatencies, GroupDiscovery, ChurnContacts) are thin loops over these.

// PairTrial runs one trial of receiver f hearing sender e: both devices get
// independent uniform random phases drawn from rng. It returns the first
// reception time and whether discovery happened within the horizon.
func PairTrial(e, f schedule.Device, cfg Config, rng *rand.Rand) (timebase.Ticks, bool, error) {
	nodes := []Node{
		{Device: e, Phase: randPhase(rng, e)},
		{Device: f, Phase: randPhase(rng, f)},
	}
	runCfg := cfg
	runCfg.Source = NewFastSource(rng.Int63())
	res, err := Run(nodes, runCfg)
	if err != nil {
		return 0, false, err
	}
	at, ok := res.FirstDiscovery(1, 0)
	return at, ok, nil
}

// GroupTrialResult is the outcome of one many-device trial.
type GroupTrialResult struct {
	// Samples holds the first-discovery latency of every ordered
	// (receiver, sender) pair that discovered within the horizon, in
	// deterministic (receiver-major) order; Misses counts the pairs that
	// did not.
	Samples []timebase.Ticks
	Misses  int

	// Channel statistics of the underlying run. Aggregation across trials
	// pools Collided/Transmissions, so every packet weighs the same; a
	// per-trial rate deliberately does not exist here.
	Transmissions, Collided int
}

// GroupTrial runs one trial of s identical devices with random phases and
// collects all ordered-pair discovery latencies plus channel statistics.
func GroupTrial(dev schedule.Device, s int, cfg Config, rng *rand.Rand) (GroupTrialResult, error) {
	if s < 2 {
		return GroupTrialResult{}, fmt.Errorf("sim: group size %d must be ≥ 2", s)
	}
	nodes := make([]Node, s)
	for i := range nodes {
		nodes[i] = Node{Device: dev, Phase: randPhase(rng, dev)}
	}
	runCfg := cfg
	runCfg.Source = NewFastSource(rng.Int63())
	res, err := Run(nodes, runCfg)
	if err != nil {
		return GroupTrialResult{}, err
	}
	out := GroupTrialResult{
		Transmissions: res.Transmissions,
		Collided:      res.Collided,
	}
	for r := 0; r < s; r++ {
		for snd := 0; snd < s; snd++ {
			if r == snd {
				continue
			}
			if at, ok := res.FirstDiscovery(r, snd); ok {
				out.Samples = append(out.Samples, at)
			} else {
				out.Misses++
			}
		}
	}
	return out, nil
}

// ChurnTrial runs one trial of the churn scenario: s identical devices
// arrive at uniformly random times in the first half of the horizon and
// stay for stay ticks (0 = until the end). It returns the per-pair contact
// records of every ordered pair whose joint presence spans at least one
// listening period, plus the raw run result for channel statistics.
func ChurnTrial(dev schedule.Device, s int, stay timebase.Ticks, cfg Config, rng *rand.Rand) ([]Contact, Result, error) {
	if s < 2 {
		return nil, Result{}, fmt.Errorf("sim: group size %d must be ≥ 2", s)
	}
	if cfg.Horizon < 2 {
		return nil, Result{}, fmt.Errorf("sim: churn horizon %d must be ≥ 2", cfg.Horizon)
	}
	// Judge pairs whose joint presence spans at least one listening period
	// — long enough that discovery is possible, short enough that bounded
	// contacts (shorter than the worst case) are still evaluated and can
	// legitimately miss.
	minOverlap := dev.C.Period
	if minOverlap <= 0 {
		minOverlap = dev.B.Period
	}
	nodes := make([]Node, s)
	for i := range nodes {
		arrive := timebase.Ticks(rng.Int63n(int64(cfg.Horizon / 2)))
		depart := timebase.Ticks(0)
		if stay > 0 {
			depart = arrive + stay
		}
		nodes[i] = Node{
			Device: dev,
			Phase:  randPhase(rng, dev),
			Arrive: arrive,
			Depart: depart,
		}
	}
	runCfg := cfg
	runCfg.Source = NewFastSource(rng.Int63())
	res, err := Run(nodes, runCfg)
	if err != nil {
		return nil, Result{}, err
	}
	var contacts []Contact
	for r := 0; r < s; r++ {
		for snd := 0; snd < s; snd++ {
			if r == snd {
				continue
			}
			both := maxTicks(nodes[r].Arrive, nodes[snd].Arrive)
			until := minTicks(nodes[r].departOr(cfg.Horizon), nodes[snd].departOr(cfg.Horizon))
			overlap := until - both
			if overlap < minOverlap {
				continue // contact too short to judge
			}
			c := Contact{Overlap: overlap}
			if at, ok := res.FirstDiscovery(r, snd); ok && at >= both {
				c.Discovered = true
				c.Latency = at - both
			}
			contacts = append(contacts, c)
		}
	}
	return contacts, res, nil
}
