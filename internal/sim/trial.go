package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/schedule"
	"repro/internal/timebase"
)

// This file holds the single-trial Monte-Carlo primitives. Each draws its
// random choices (phases, arrivals) from the caller-supplied rng and runs
// the event simulation on a child RNG stream derived from it, so a caller
// that owns one rng per trial can shard trials across goroutines and still
// obtain results bit-identical to a serial loop. Every primitive comes in
// two forms: the Scratch variant the engine's workers call with a
// per-worker arena, and a plain wrapper that allocates a fresh arena per
// call — same results, no reuse hazards. The serial helpers
// (PairLatencies, GroupDiscovery, ChurnContacts) are thin loops over these.

// worldFromNodes materializes single-channel Nodes as WorldNodes on the
// arena: every node's beacon and window schedules land on channel 0,
// exactly the conversion Run performs.
func worldFromNodes(nodes []Node, scr *Scratch) []WorldNode {
	ws := scr.worldNodes(len(nodes), 1, 1)
	for i := range nodes {
		n := &nodes[i]
		ws[i] = WorldNode{Arrive: n.Arrive, Depart: n.Depart}
		if !n.Device.B.Empty() {
			em := scr.nodeEmits(i, 1)
			em[0] = Emission{Channel: 0, B: n.Device.B, Phase: n.Phase}
			ws[i].Emits = em
		}
		if !n.Device.C.Empty() {
			ls := scr.nodeListens(i, 1)
			ls[0] = Listening{Channel: 0, C: n.Device.C, Phase: n.Phase}
			ws[i].Listens = ls
		}
	}
	return ws
}

// PairTrial runs one trial of receiver f hearing sender e: both devices get
// independent uniform random phases drawn from rng. It returns the first
// reception time and whether discovery happened within the horizon.
func PairTrial(e, f schedule.Device, cfg Config, rng *rand.Rand) (timebase.Ticks, bool, error) {
	return PairTrialScratch(e, f, cfg, rng, NewScratch())
}

// PairTrialScratch is PairTrial against a caller-owned arena.
func PairTrialScratch(e, f schedule.Device, cfg Config, rng *rand.Rand, scr *Scratch) (timebase.Ticks, bool, error) {
	scr.nodes = grow(scr.nodes, 2)
	scr.nodes[0] = Node{Device: e, Phase: randPhase(rng, e)}
	scr.nodes[1] = Node{Device: f, Phase: randPhase(rng, f)}
	runCfg := cfg
	runCfg.Source = scr.childSource(rng.Int63())
	wr, err := RunWorldScratch(worldFromNodes(scr.nodes, scr), runCfg, scr)
	if err != nil {
		return 0, false, err
	}
	// Discovery completes when the packet does, matching Run's convention.
	rec, ok := wr.FirstReception(1, 0)
	return rec.End, ok, nil
}

// GroupTrialResult is the outcome of one many-device trial.
type GroupTrialResult struct {
	// Samples holds the first-discovery latency of every ordered
	// (receiver, sender) pair that discovered within the horizon, in
	// deterministic (receiver-major) order; Misses counts the pairs that
	// did not.
	Samples []timebase.Ticks
	Misses  int

	// Channel statistics of the underlying run. Aggregation across trials
	// pools Collided/Transmissions, so every packet weighs the same; a
	// per-trial rate deliberately does not exist here.
	Transmissions, Collided int
}

// GroupTrial runs one trial of s identical devices with random phases and
// collects all ordered-pair discovery latencies plus channel statistics.
func GroupTrial(dev schedule.Device, s int, cfg Config, rng *rand.Rand) (GroupTrialResult, error) {
	return GroupTrialScratch(dev, s, cfg, rng, NewScratch())
}

// GroupTrialScratch is GroupTrial against a caller-owned arena. The
// returned Samples slice is freshly allocated (callers retain it across
// trials); everything else the kernel touched stays in the arena.
func GroupTrialScratch(dev schedule.Device, s int, cfg Config, rng *rand.Rand, scr *Scratch) (GroupTrialResult, error) {
	if s < 2 {
		return GroupTrialResult{}, fmt.Errorf("sim: group size %d must be ≥ 2", s)
	}
	scr.nodes = grow(scr.nodes, s)
	for i := range scr.nodes {
		scr.nodes[i] = Node{Device: dev, Phase: randPhase(rng, dev)}
	}
	runCfg := cfg
	runCfg.Source = scr.childSource(rng.Int63())
	wr, err := RunWorldScratch(worldFromNodes(scr.nodes, scr), runCfg, scr)
	if err != nil {
		return GroupTrialResult{}, err
	}
	out := GroupTrialResult{
		Transmissions: wr.Transmissions,
		Collided:      wr.Collided,
	}
	for r := 0; r < s; r++ {
		for snd := 0; snd < s; snd++ {
			if r == snd {
				continue
			}
			if rec, ok := wr.FirstReception(r, snd); ok {
				out.Samples = append(out.Samples, rec.End)
			} else {
				out.Misses++
			}
		}
	}
	return out, nil
}

// ChurnTrial runs one trial of the churn scenario: s identical devices
// arrive at uniformly random times in the first half of the horizon and
// stay for stay ticks (0 = until the end). It returns the per-pair contact
// records of every ordered pair whose joint presence spans at least one
// listening period, plus the raw run result for channel statistics.
func ChurnTrial(dev schedule.Device, s int, stay timebase.Ticks, cfg Config, rng *rand.Rand) ([]Contact, Result, error) {
	contacts, wr, err := ChurnTrialScratch(dev, s, stay, cfg, rng, NewScratch())
	if err != nil {
		return nil, Result{}, err
	}
	res := Result{
		First:         make(map[int]map[int]timebase.Ticks, len(wr.First)),
		Transmissions: wr.Transmissions,
		Collided:      wr.Collided,
	}
	for r, m := range wr.First {
		rm := make(map[int]timebase.Ticks, len(m))
		for snd, rec := range m {
			rm[snd] = rec.End
		}
		res.First[r] = rm
	}
	return contacts, res, nil
}

// ChurnTrialScratch is ChurnTrial against a caller-owned arena. The
// returned contacts are freshly allocated; the WorldResult aliases the
// arena and is valid only until its next kernel run.
func ChurnTrialScratch(dev schedule.Device, s int, stay timebase.Ticks, cfg Config, rng *rand.Rand, scr *Scratch) ([]Contact, WorldResult, error) {
	if s < 2 {
		return nil, WorldResult{}, fmt.Errorf("sim: group size %d must be ≥ 2", s)
	}
	if cfg.Horizon < 2 {
		return nil, WorldResult{}, fmt.Errorf("sim: churn horizon %d must be ≥ 2", cfg.Horizon)
	}
	// Judge pairs whose joint presence spans at least one listening period
	// — long enough that discovery is possible, short enough that bounded
	// contacts (shorter than the worst case) are still evaluated and can
	// legitimately miss.
	minOverlap := dev.C.Period
	if minOverlap <= 0 {
		minOverlap = dev.B.Period
	}
	scr.nodes = grow(scr.nodes, s)
	nodes := scr.nodes
	for i := range nodes {
		arrive := timebase.Ticks(rng.Int63n(int64(cfg.Horizon / 2)))
		depart := timebase.Ticks(0)
		if stay > 0 {
			depart = arrive + stay
		}
		nodes[i] = Node{
			Device: dev,
			Phase:  randPhase(rng, dev),
			Arrive: arrive,
			Depart: depart,
		}
	}
	runCfg := cfg
	runCfg.Source = scr.childSource(rng.Int63())
	wr, err := RunWorldScratch(worldFromNodes(nodes, scr), runCfg, scr)
	if err != nil {
		return nil, WorldResult{}, err
	}
	var contacts []Contact
	for r := 0; r < s; r++ {
		for snd := 0; snd < s; snd++ {
			if r == snd {
				continue
			}
			both := maxTicks(nodes[r].Arrive, nodes[snd].Arrive)
			until := minTicks(nodes[r].departOr(cfg.Horizon), nodes[snd].departOr(cfg.Horizon))
			overlap := until - both
			if overlap < minOverlap {
				continue // contact too short to judge
			}
			c := Contact{Overlap: overlap}
			if rec, ok := wr.FirstReception(r, snd); ok && rec.End >= both {
				c.Discovered = true
				c.Latency = rec.End - both
			}
			contacts = append(contacts, c)
		}
	}
	return contacts, wr, nil
}
