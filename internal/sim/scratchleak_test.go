package sim

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/multichannel"
	"repro/internal/optimal"
	"repro/internal/schedule"
	"repro/internal/slots"
	"repro/internal/timebase"
)

// This fixture pins the arena hygiene contract: a Scratch carried across
// trials — and across *kinds* of trials — must never leak state into a
// result. Each subtest runs a trial sequence twice with identical RNG
// streams: once with a fresh arena per trial (the reference), once on a
// single shared arena that is deliberately dirtied between trials by
// running a structurally different workload on it. Any buffer the kernel
// forgets to reset (a stale first-reception map entry, an un-truncated
// run list, a leftover channel-load counter) shows up as a mismatch.

// dirtyScratch pollutes every arena surface a later trial could read:
// a many-node collision-channel group trial (grows and fills txs, runs,
// first maps, per-channel loads) followed by a multi-channel pair trial
// (fills the memoized template cache and channel-indexed buffers).
func dirtyScratch(t *testing.T, scr *Scratch) {
	t.Helper()
	u, err := optimal.NewUnidirectional(2, 25, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	dev := schedule.Device{B: u.Sender, C: u.Listener}
	rng := rand.New(rand.NewSource(99))
	cfg := Config{Horizon: 50000, Collisions: true, HalfDuplex: true}
	if _, err := GroupTrialScratch(dev, 6, cfg, rng, scr); err != nil {
		t.Fatal(err)
	}
	mc := multichannel.BLE(20000, 128, 30000, 30000)
	if _, err := MultiChannelPairTrialScratch(mc, 200000, rng, scr); err != nil {
		t.Fatal(err)
	}
}

// runSequence executes trial t = 0..n-1 with a per-trial reseeded RNG and
// returns the collected results. When shared is non-nil every trial runs
// on it, dirtied first; otherwise each trial gets a fresh arena.
func runSequence(t *testing.T, n int, shared *Scratch, trial func(*rand.Rand, *Scratch) (any, error)) []any {
	t.Helper()
	out := make([]any, n)
	for i := 0; i < n; i++ {
		scr := shared
		if scr == nil {
			scr = NewScratch()
		} else {
			dirtyScratch(t, scr)
		}
		rng := rand.New(rand.NewSource(int64(1000 + i)))
		res, err := trial(rng, scr)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = res
	}
	return out
}

func assertNoLeak(t *testing.T, name string, trial func(*rand.Rand, *Scratch) (any, error)) {
	t.Helper()
	t.Run(name, func(t *testing.T) {
		const trials = 5
		fresh := runSequence(t, trials, nil, trial)
		reused := runSequence(t, trials, NewScratch(), trial)
		for i := range fresh {
			if !reflect.DeepEqual(fresh[i], reused[i]) {
				t.Errorf("trial %d: dirtied shared arena diverged from fresh arena:\nfresh:  %+v\nreused: %+v",
					i, fresh[i], reused[i])
			}
		}
	})
}

type pairOutcome struct {
	At timebase.Ticks
	OK bool
}

func TestScratchReuseLeaksNothingAcrossKinds(t *testing.T) {
	u, err := optimal.NewUnidirectional(2, 25, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	sender := schedule.Device{B: u.Sender}
	listener := schedule.Device{C: u.Listener}
	sym := schedule.Device{B: u.Sender, C: u.Listener}
	mc := multichannel.BLE(20000, 128, 30000, 30000)
	busy := Config{Horizon: 100000, Collisions: true, HalfDuplex: true, Jitter: 7}
	quiet := Config{Horizon: 100000}

	assertNoLeak(t, "pair", func(rng *rand.Rand, scr *Scratch) (any, error) {
		at, ok, err := PairTrialScratch(sender, listener, quiet, rng, scr)
		return pairOutcome{at, ok}, err
	})
	assertNoLeak(t, "group", func(rng *rand.Rand, scr *Scratch) (any, error) {
		return GroupTrialScratch(sym, 5, busy, rng, scr)
	})
	assertNoLeak(t, "churn", func(rng *rand.Rand, scr *Scratch) (any, error) {
		contacts, _, err := ChurnTrialScratch(sym, 5, 40000, busy, rng, scr)
		// The WorldResult aliases the arena by contract; the contact
		// records are the retained output.
		return append([]Contact(nil), contacts...), err
	})
	assertNoLeak(t, "multichannel-pair", func(rng *rand.Rand, scr *Scratch) (any, error) {
		return MultiChannelPairTrialScratch(mc, 400000, rng, scr)
	})
	assertNoLeak(t, "multichannel-group", func(rng *rand.Rand, scr *Scratch) (any, error) {
		return MultiChannelGroupTrialScratch(mc, 4, Config{Horizon: 400000, Collisions: true, HalfDuplex: true}, rng, scr)
	})
	assertNoLeak(t, "multichannel-churn", func(rng *rand.Rand, scr *Scratch) (any, error) {
		return MultiChannelChurnTrialScratch(mc, 4, 150000, Config{Horizon: 400000, Collisions: true, HalfDuplex: true}, rng, scr)
	})

	d1, err := slots.Disco(5, 7)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := NewSlotGridPair(d1, d1, 100)
	if err != nil {
		t.Fatal(err)
	}
	assertNoLeak(t, "slotgrid", func(rng *rand.Rand, scr *Scratch) (any, error) {
		at, ok, err := grid.TrialScratch(500000, rng, scr)
		return pairOutcome{at, ok}, err
	})
}
