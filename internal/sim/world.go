package sim

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/schedule"
	"repro/internal/timebase"
)

// This file is the simulation kernel: one event-driven engine over a world
// of nodes × radios × channels. Every node owns a set of channel-tagged
// periodic beacon schedules (emissions) and window schedules (listens); the
// kernel merges all transmissions into one start-sorted timeline, resolves
// ALOHA collisions per channel, and walks every listener's windows to find
// first receptions. All trial paths — the single-channel pair/group/churn
// workloads (Run), the multi-channel advertiser/scanner pair
// (MultiChannelPairTrial), the slot-aligned pairs (SlotGridPair.Trial) and
// the multi-node multi-channel workloads (MultiChannelGroupTrial,
// MultiChannelChurnTrial) — are thin configurations of this kernel; the
// former per-kind event loops are gone.

// Emission is one periodic beacon schedule a node transmits on a channel.
// Phase places the schedule's origin at absolute time Phase.
type Emission struct {
	Channel int
	B       schedule.BeaconSeq
	Phase   timebase.Ticks
}

// Listening is one periodic reception-window schedule a node runs on a
// channel. Phase places the schedule's origin at absolute time Phase.
type Listening struct {
	Channel int
	C       schedule.WindowSeq
	Phase   timebase.Ticks
}

// WorldNode is one device of the world: its channel-tagged transmit and
// receive schedules plus its presence interval [Arrive, Depart). The zero
// values mean "present from the start" and "never departs".
type WorldNode struct {
	Emits   []Emission
	Listens []Listening
	Arrive  timebase.Ticks
	Depart  timebase.Ticks // 0 = stays for the whole horizon
}

func (n WorldNode) departOr(horizon timebase.Ticks) timebase.Ticks {
	if n.Depart <= 0 {
		return horizon
	}
	return n.Depart
}

// transmitsDuring reports whether the node has any own beacon on air
// overlapping [from, to), over all of its emissions. The check consults the
// un-jittered schedules — the deliberate approximation the half-duplex
// model has always used.
func (n WorldNode) transmitsDuring(from, to timebase.Ticks) bool {
	for _, em := range n.Emits {
		if em.B.Empty() {
			continue
		}
		// A beacon overlaps [from, to) if it starts before to and ends
		// after from; beacons starting up to one airtime before from
		// qualify.
		maxLen := timebase.Ticks(0)
		for _, bc := range em.B.Beacons {
			if bc.Len > maxLen {
				maxLen = bc.Len
			}
		}
		local := em.B.BeaconsWithin(from-em.Phase-maxLen, to-em.Phase)
		for _, bc := range local {
			s := bc.Time + em.Phase
			if s < to && s+bc.Len > from {
				return true
			}
		}
	}
	return false
}

// Reception is one received packet: its airtime and channel.
type Reception struct {
	Start, End timebase.Ticks
	Channel    int
}

// ChannelLoad is one channel's traffic accounting.
type ChannelLoad struct {
	Transmissions, Collided int
}

// WorldResult aggregates one kernel run.
type WorldResult struct {
	// First[r][s] is the earliest reception of sender s at receiver r
	// (earliest packet start; ties broken by channel); a missing key means
	// no reception within the horizon.
	First map[int]map[int]Reception

	// Transmissions and Collided count packets on air and packets
	// destroyed by the per-channel collision model, over all channels;
	// PerChannel splits both by channel (indexed by channel id).
	Transmissions, Collided int
	PerChannel              []ChannelLoad
}

// FirstReception returns receiver's earliest reception of sender, if any.
func (r WorldResult) FirstReception(receiver, sender int) (Reception, bool) {
	m, ok := r.First[receiver]
	if !ok {
		return Reception{}, false
	}
	rec, ok := m[sender]
	return rec, ok
}

// channelCount returns 1 + the highest channel id used by any emission or
// listening (at least 1, so a world always has a channel 0).
func channelCount(nodes []WorldNode) (int, error) {
	max := 0
	for _, n := range nodes {
		for _, em := range n.Emits {
			if em.Channel < 0 {
				return 0, fmt.Errorf("sim: negative emission channel %d", em.Channel)
			}
			if em.Channel > max {
				max = em.Channel
			}
		}
		for _, ls := range n.Listens {
			if ls.Channel < 0 {
				return 0, fmt.Errorf("sim: negative listening channel %d", ls.Channel)
			}
			if ls.Channel > max {
				max = ls.Channel
			}
		}
	}
	return max + 1, nil
}

// RunWorld simulates the node set under cfg: it materializes every
// emission's jittered transmissions, sorts the merged timeline, marks
// per-channel collisions, and records every listener's first reception per
// sender. Every run is deterministic given cfg's RNG stream.
func RunWorld(nodes []WorldNode, cfg Config) (WorldResult, error) {
	if cfg.Horizon <= 0 {
		return WorldResult{}, fmt.Errorf("sim: horizon %d must be positive", cfg.Horizon)
	}
	if len(nodes) < 2 {
		return WorldResult{}, fmt.Errorf("sim: need at least 2 nodes, got %d", len(nodes))
	}
	nCh, err := channelCount(nodes)
	if err != nil {
		return WorldResult{}, err
	}
	// The RNG only feeds jitter; materializing it lazily spares jitter-free
	// configurations without an injected Source the (expensive) default
	// math/rand seeding.
	var rng *rand.Rand
	if cfg.Jitter > 0 {
		rng = cfg.rng()
	}

	// Generate all transmissions in (node, emission, beacon) order —
	// jitter is drawn in exactly this order — then sort by start.
	// BeaconsWithin extends one period into the past so beacons that
	// started before t = 0 can still overlap into the horizon.
	var txs []transmission
	for i, n := range nodes {
		depart := n.departOr(cfg.Horizon)
		for _, em := range n.Emits {
			if em.B.Empty() {
				continue
			}
			local := em.B.BeaconsWithin(-em.Phase-em.B.Period, cfg.Horizon-em.Phase)
			for _, bc := range local {
				start := bc.Time + em.Phase
				if cfg.Jitter > 0 {
					start += timebase.Ticks(rng.Int63n(int64(cfg.Jitter) + 1))
				}
				end := start + bc.Len
				if end <= 0 || start >= cfg.Horizon {
					continue
				}
				// A node only transmits while present.
				if start < n.Arrive || end > depart {
					continue
				}
				txs = append(txs, transmission{sender: i, channel: em.Channel, start: start, end: end})
			}
		}
	}
	sort.Slice(txs, func(a, b int) bool { return txs[a].start < txs[b].start })

	// Mark collisions per channel: a packet is destroyed iff its airtime
	// overlaps another packet's on the same channel. One pass over the
	// start-sorted list with a per-channel running furthest-end suffices:
	// any packet starting before its channel's furthest end overlaps the
	// packet holding it, and every overlapping pair is witnessed this way
	// (if X overlaps a later W on its channel, then at W's turn the
	// channel's running maximum either is X or belongs to a packet that
	// overlaps X, which marked X earlier).
	if cfg.Collisions {
		maxEnd := make([]timebase.Ticks, nCh)
		maxIdx := make([]int, nCh)
		for c := range maxIdx {
			maxIdx[c] = -1
		}
		for i := range txs {
			c := txs[i].channel
			if maxIdx[c] >= 0 && txs[i].start < maxEnd[c] {
				txs[i].collided = true
				txs[maxIdx[c]].collided = true
			}
			if txs[i].end > maxEnd[c] {
				maxEnd[c] = txs[i].end
				maxIdx[c] = i
			}
		}
	}

	res := WorldResult{
		First:      make(map[int]map[int]Reception),
		PerChannel: make([]ChannelLoad, nCh),
	}
	res.Transmissions = len(txs)
	for _, tx := range txs {
		res.PerChannel[tx.channel].Transmissions++
		if tx.collided {
			res.Collided++
			res.PerChannel[tx.channel].Collided++
		}
	}

	// Per-channel start-sorted views of the timeline. A single-channel
	// world reuses the merged slices directly.
	perChan := make([][]transmission, nCh)
	if nCh == 1 {
		perChan[0] = txs
	} else {
		for _, tx := range txs {
			perChan[tx.channel] = append(perChan[tx.channel], tx)
		}
	}
	perStarts := make([][]timebase.Ticks, nCh)
	for c, ctxs := range perChan {
		starts := make([]timebase.Ticks, len(ctxs))
		for i, tx := range ctxs {
			starts[i] = tx.start
		}
		perStarts[c] = starts
	}

	// Reception: walk every listener's windows. Windows that started
	// before t = 0 still receive packets sent after t = 0 (the schedule ran
	// before the devices came into range), so the range extends one period
	// into the past; packets that started before t = 0, however, were only
	// partially in range and are never received (start ≥ Arrive ≥ 0).
	for r := range nodes {
		n := &nodes[r]
		rDepart := n.departOr(cfg.Horizon)
		for _, ls := range n.Listens {
			if ls.C.Empty() {
				continue
			}
			ctxs, cstarts := perChan[ls.Channel], perStarts[ls.Channel]
			windows := ls.C.WindowsWithin(-ls.Phase-ls.C.Period, cfg.Horizon-ls.Phase)
			for _, w := range windows {
				wStart := w.Start + ls.Phase
				wEnd := wStart + w.Len
				// Candidate packets starting inside the window.
				lo := sort.Search(len(ctxs), func(i int) bool { return cstarts[i] >= wStart })
				for i := lo; i < len(ctxs) && ctxs[i].start < wEnd; i++ {
					tx := ctxs[i]
					// Receivable only from other senders, only for packets
					// sent entirely while the receiver is present (a packet
					// straddling the receiver's arrival is heard partially
					// and lost).
					if tx.sender == r || tx.start < n.Arrive || tx.end > rDepart {
						continue
					}
					if cfg.TruncatedWindows && tx.end > wEnd {
						continue
					}
					if cfg.Collisions && tx.collided {
						continue
					}
					if cfg.HalfDuplex && n.transmitsDuring(tx.start, tx.end) {
						continue
					}
					rec := Reception{Start: tx.start, End: tx.end, Channel: tx.channel}
					m := res.First[r]
					if m == nil {
						res.First[r] = map[int]Reception{tx.sender: rec}
						continue
					}
					prev, seen := m[tx.sender]
					if !seen || rec.Start < prev.Start ||
						(rec.Start == prev.Start && rec.Channel < prev.Channel) {
						m[tx.sender] = rec
					}
				}
			}
		}
	}
	return res, nil
}
