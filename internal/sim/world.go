package sim

import (
	"fmt"
	"math"
	"math/rand"
	"slices"

	"repro/internal/schedule"
	"repro/internal/timebase"
)

// This file is the simulation kernel: one event-driven engine over a world
// of nodes × radios × channels. Every node owns a set of channel-tagged
// periodic beacon schedules (emissions) and window schedules (listens); the
// kernel merges all transmissions into one start-sorted timeline, resolves
// ALOHA collisions per channel, and walks every listener's windows to find
// first receptions. All trial paths — the single-channel pair/group/churn
// workloads (Run), the multi-channel advertiser/scanner pair
// (MultiChannelPairTrial), the slot-aligned pairs (SlotGridPair.Trial) and
// the multi-node multi-channel workloads (MultiChannelGroupTrial,
// MultiChannelChurnTrial) — are thin configurations of this kernel; the
// former per-kind event loops are gone.

// Emission is one periodic beacon schedule a node transmits on a channel.
// Phase places the schedule's origin at absolute time Phase.
type Emission struct {
	Channel int
	B       schedule.BeaconSeq
	Phase   timebase.Ticks
}

// Listening is one periodic reception-window schedule a node runs on a
// channel. Phase places the schedule's origin at absolute time Phase.
type Listening struct {
	Channel int
	C       schedule.WindowSeq
	Phase   timebase.Ticks
}

// WorldNode is one device of the world: its channel-tagged transmit and
// receive schedules plus its presence interval [Arrive, Depart). The zero
// values mean "present from the start" and "never departs".
type WorldNode struct {
	Emits   []Emission
	Listens []Listening
	Arrive  timebase.Ticks
	Depart  timebase.Ticks // 0 = stays for the whole horizon
}

func (n WorldNode) departOr(horizon timebase.Ticks) timebase.Ticks {
	if n.Depart <= 0 {
		return horizon
	}
	return n.Depart
}

// transmitsDuring reports whether node r has any own beacon on air
// overlapping [from, to), over all of its emissions. The check consults the
// un-jittered schedules — the deliberate approximation the half-duplex
// model has always used. Instead of materializing candidate beacons it
// walks the (at most two or three) schedule cycles touching the range and
// binary-searches the first relevant beacon per cycle; the per-emission
// airtime maxima come precomputed from scr.emMax (filled by RunWorldScratch
// whenever cfg.HalfDuplex is set).
func (n *WorldNode) transmitsDuring(r int, from, to timebase.Ticks, scr *Scratch) bool {
	base := scr.emBase[r]
	for j := range n.Emits {
		em := &n.Emits[j]
		if em.B.Empty() {
			continue
		}
		// A beacon overlaps [from, to) if it starts before to and ends
		// after from; beacons starting up to one airtime before from
		// qualify, hence the maxLen-widened query range.
		maxLen := scr.emMax[base+j]
		lo := from - em.Phase - maxLen
		hi := to - em.Phase
		if em.B.Period <= 0 || hi <= lo {
			continue
		}
		bs := em.B.Beacons
		firstCycle := floorDiv(lo-bs[len(bs)-1].Time, em.B.Period) - 1
		for cycle := firstCycle; ; cycle++ {
			cb := cycle * em.B.Period
			if cb > hi {
				break
			}
			for i := beaconAt(bs, lo-cb); i < len(bs); i++ {
				t := cb + bs[i].Time
				if t >= hi {
					break
				}
				s := t + em.Phase
				if s < to && s+bs[i].Len > from {
					return true
				}
			}
		}
	}
	return false
}

// beaconAt returns the index of the first beacon with Time ≥ t.
func beaconAt(bs []schedule.Beacon, t timebase.Ticks) int {
	lo, hi := 0, len(bs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if bs[mid].Time < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// floorDiv is floor division on ticks (round toward −∞), matching the
// cycle-index convention of schedule's AppendWindowsWithin.
func floorDiv(a, b timebase.Ticks) timebase.Ticks {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

// Reception is one received packet: its airtime and channel.
type Reception struct {
	Start, End timebase.Ticks
	Channel    int
}

// ChannelLoad is one channel's traffic accounting.
type ChannelLoad struct {
	Transmissions, Collided int
}

// WorldResult aggregates one kernel run.
type WorldResult struct {
	// First[r][s] is the earliest reception of sender s at receiver r
	// (earliest packet start; ties broken by channel); a missing key means
	// no reception within the horizon.
	First map[int]map[int]Reception

	// Transmissions and Collided count packets on air and packets
	// destroyed by the per-channel collision model, over all channels;
	// PerChannel splits both by channel (indexed by channel id).
	Transmissions, Collided int
	PerChannel              []ChannelLoad
}

// FirstReception returns receiver's earliest reception of sender, if any.
func (r WorldResult) FirstReception(receiver, sender int) (Reception, bool) {
	m, ok := r.First[receiver]
	if !ok {
		return Reception{}, false
	}
	rec, ok := m[sender]
	return rec, ok
}

// channelCount returns 1 + the highest channel id used by any emission or
// listening (at least 1, so a world always has a channel 0).
func channelCount(nodes []WorldNode) (int, error) {
	max := 0
	for _, n := range nodes {
		for _, em := range n.Emits {
			if em.Channel < 0 {
				return 0, fmt.Errorf("sim: negative emission channel %d", em.Channel)
			}
			if em.Channel > max {
				max = em.Channel
			}
		}
		for _, ls := range n.Listens {
			if ls.Channel < 0 {
				return 0, fmt.Errorf("sim: negative listening channel %d", ls.Channel)
			}
			if ls.Channel > max {
				max = ls.Channel
			}
		}
	}
	return max + 1, nil
}

// RunWorld simulates the node set under cfg: it materializes every
// emission's jittered transmissions, sorts the merged timeline, marks
// per-channel collisions, and records every listener's first reception per
// sender. Every run is deterministic given cfg's RNG stream. This serial
// form allocates a fresh arena per call, so the result never aliases
// caller-visible state; hot loops hold a Scratch and call RunWorldScratch.
func RunWorld(nodes []WorldNode, cfg Config) (WorldResult, error) {
	return RunWorldScratch(nodes, cfg, NewScratch())
}

// linearMergeMax is the run count up to which the collision merge scan uses
// a linear min-scan over the run heads instead of a binary heap; beyond it
// the heap's O(log k) per element wins.
const linearMergeMax = 16

// txRun is one contiguous, start-sorted segment of the generation buffer:
// the transmissions of a single (node, emission) pair, all on one channel.
type txRun struct {
	lo, hi  int
	channel int
}

// txCmp orders transmissions by start; equal starts compare equal (the
// kernel's results are invariant under equal-start permutations — see the
// collision-pass and first-reception tie-break notes below).
func txCmp(a, b transmission) int {
	switch {
	case a.start < b.start:
		return -1
	case a.start > b.start:
		return 1
	default:
		return 0
	}
}

// runLess orders two active runs in a k-way merge by current head start,
// ties broken by run ordinal, so the merged order is deterministic.
func runLess(txs []transmission, pos []int, a, b int) bool {
	sa, sb := txs[pos[a]].start, txs[pos[b]].start
	if sa != sb {
		return sa < sb
	}
	return a < b
}

// siftRun restores the min-heap property of h (a heap of run ordinals keyed
// by runLess) after h[i] changed.
func siftRun(h []int, i int, txs []transmission, pos []int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		m := l
		if r := l + 1; r < len(h) && runLess(txs, pos, h[r], h[l]) {
			m = r
		}
		if !runLess(txs, pos, h[m], h[i]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// RunWorldScratch is RunWorld against a caller-owned arena: all kernel
// buffers come from scr and the result aliases it (valid until the next
// run on the same Scratch). Results are bit-identical to RunWorld.
func RunWorldScratch(nodes []WorldNode, cfg Config, scr *Scratch) (WorldResult, error) {
	if cfg.Horizon <= 0 {
		return WorldResult{}, fmt.Errorf("sim: horizon %d must be positive", cfg.Horizon)
	}
	if len(nodes) < 2 {
		return WorldResult{}, fmt.Errorf("sim: need at least 2 nodes, got %d", len(nodes))
	}
	nCh, err := channelCount(nodes)
	if err != nil {
		return WorldResult{}, err
	}
	// The RNG only feeds jitter; materializing it lazily spares jitter-free
	// configurations without an injected Source the (expensive) default
	// math/rand seeding.
	var rng *rand.Rand
	if cfg.Jitter > 0 {
		rng = scr.kernelRNG(cfg)
	}

	// Precompute the half-duplex airtime maxima per emission (node-major
	// ordinals, bases in scr.emBase) so transmitsDuring does not rescan the
	// beacon list on every candidate reception.
	if cfg.HalfDuplex {
		scr.emBase = grow(scr.emBase, len(nodes))
		total := 0
		for i := range nodes {
			scr.emBase[i] = total
			total += len(nodes[i].Emits)
		}
		scr.emMax = grow(scr.emMax, total)
		for i := range nodes {
			for j := range nodes[i].Emits {
				var mx timebase.Ticks
				for _, bc := range nodes[i].Emits[j].B.Beacons {
					if bc.Len > mx {
						mx = bc.Len
					}
				}
				scr.emMax[scr.emBase[i]+j] = mx
			}
		}
	}

	// Generate all transmissions in (node, emission, beacon) order — jitter
	// is drawn in exactly this order, which freezes the RNG stream — keeping
	// one run (contiguous segment of txs) per non-empty emission.
	// BeaconsWithin extends one period into the past so beacons that started
	// before t = 0 can still overlap into the horizon. Each run is sorted by
	// construction unless jitter exceeds a beacon gap; generation detects
	// that and sorts only the disordered runs, so the common case skips
	// sorting entirely.
	txs := scr.txs[:0]
	runs := scr.runs[:0]
	scr.nodeRuns = grow(scr.nodeRuns, len(nodes)+1)
	scr.nodeRuns[0] = 0
	for i := range nodes {
		n := &nodes[i]
		depart := n.departOr(cfg.Horizon)
		for _, em := range n.Emits {
			if em.B.Empty() || em.B.Period <= 0 {
				continue
			}
			// Enumerate the emission's beacon occurrences inline (the same
			// cycle walk as schedule.AppendBeaconsWithin) straight into the
			// transmission buffer — no intermediate beacon materialization.
			bs := em.B.Beacons
			from, to := -em.Phase-em.B.Period, cfg.Horizon-em.Phase
			if to <= from {
				continue
			}
			runLo := len(txs)
			sorted := true
			firstCycle := floorDiv(from-bs[len(bs)-1].Time, em.B.Period) - 1
			for cycle := firstCycle; ; cycle++ {
				cb := cycle * em.B.Period
				if cb > to {
					break
				}
				for _, bc := range bs {
					t := cb + bc.Time
					if t < from {
						continue
					}
					if t >= to {
						break
					}
					start := t + em.Phase
					if cfg.Jitter > 0 {
						start += timebase.Ticks(rng.Int63n(int64(cfg.Jitter) + 1))
					}
					end := start + bc.Len
					if end <= 0 || start >= cfg.Horizon {
						continue
					}
					// A node only transmits while present.
					if start < n.Arrive || end > depart {
						continue
					}
					if len(txs) > runLo && start < txs[len(txs)-1].start {
						sorted = false
					}
					txs = append(txs, transmission{sender: int32(i), channel: int32(em.Channel), start: start, end: end})
				}
			}
			if len(txs) == runLo {
				continue
			}
			if !sorted {
				slices.SortFunc(txs[runLo:], txCmp)
			}
			runs = append(runs, txRun{lo: runLo, hi: len(txs), channel: em.Channel})
		}
		scr.nodeRuns[i+1] = len(runs)
	}
	scr.txs, scr.runs = txs, runs

	// Mark collisions per channel: a packet is destroyed iff its airtime
	// overlaps another packet's on the same channel. One time-ordered pass
	// per channel with a running furthest-end suffices: any packet starting
	// before the channel's furthest end overlaps the packet holding it, and
	// every overlapping pair is witnessed this way (if X overlaps a later W
	// on its channel, then at W's turn the channel's running maximum either
	// is X or belongs to a packet that overlaps X, which marked X earlier).
	// Equal-start packets overlap each other, so the marks do not depend on
	// how ties were ordered. The time order comes from a k-way merge scan
	// over the channel's runs (keyed by head start, ties by run ordinal)
	// that writes marks in place — no merged copy of the timeline is ever
	// built — and the per-channel collided totals are counted on the
	// false→true mark transitions, so no separate counting pass runs.
	scr.perLoad = grow(scr.perLoad, nCh)
	for c := range scr.perLoad {
		scr.perLoad[c] = ChannelLoad{}
	}
	res := WorldResult{
		First:      scr.firstMaps(),
		PerChannel: scr.perLoad,
	}
	res.Transmissions = len(txs)
	for ri := range runs {
		res.PerChannel[runs[ri].channel].Transmissions += runs[ri].hi - runs[ri].lo
	}
	if cfg.Collisions {
		scr.runPos = grow(scr.runPos, len(runs))
		pos := scr.runPos
		for c := 0; c < nCh; c++ {
			h := scr.heap[:0]
			for ri := range runs {
				if runs[ri].channel == c {
					h = append(h, ri)
					pos[ri] = runs[ri].lo
				}
			}
			scr.heap = h
			maxEnd := timebase.Ticks(0)
			maxIdx := -1
			col := 0
			if len(h) == 1 {
				ru := runs[h[0]]
				for gi := ru.lo; gi < ru.hi; gi++ {
					if maxIdx >= 0 && txs[gi].start < maxEnd {
						if !txs[gi].collided {
							txs[gi].collided = true
							col++
						}
						if !txs[maxIdx].collided {
							txs[maxIdx].collided = true
							col++
						}
					}
					if txs[gi].end > maxEnd {
						maxEnd = txs[gi].end
						maxIdx = gi
					}
				}
				res.PerChannel[c].Collided = col
				res.Collided += col
				continue
			}
			if len(h) <= linearMergeMax {
				// Few runs: a linear min-scan over the cached head starts
				// beats heap bookkeeping (no sift swaps, one tiny array in
				// cache). Ties pick the lowest slot = lowest run ordinal,
				// the same order the heap produces.
				heads := grow(scr.headStart, len(h))
				scr.headStart = heads
				for j, ri := range h {
					heads[j] = txs[pos[ri]].start
				}
				for {
					best := -1
					bs := timebase.Ticks(math.MaxInt64)
					for j := range heads {
						if heads[j] < bs {
							bs = heads[j]
							best = j
						}
					}
					if best < 0 {
						break
					}
					ri := h[best]
					gi := pos[ri]
					if maxIdx >= 0 && txs[gi].start < maxEnd {
						if !txs[gi].collided {
							txs[gi].collided = true
							col++
						}
						if !txs[maxIdx].collided {
							txs[maxIdx].collided = true
							col++
						}
					}
					if txs[gi].end > maxEnd {
						maxEnd = txs[gi].end
						maxIdx = gi
					}
					pos[ri]++
					if pos[ri] < runs[ri].hi {
						heads[best] = txs[pos[ri]].start
					} else {
						heads[best] = math.MaxInt64
					}
				}
				res.PerChannel[c].Collided = col
				res.Collided += col
				continue
			}
			for i := len(h)/2 - 1; i >= 0; i-- {
				siftRun(h, i, txs, pos)
			}
			for len(h) > 0 {
				top := h[0]
				gi := pos[top]
				if maxIdx >= 0 && txs[gi].start < maxEnd {
					if !txs[gi].collided {
						txs[gi].collided = true
						col++
					}
					if !txs[maxIdx].collided {
						txs[maxIdx].collided = true
						col++
					}
				}
				if txs[gi].end > maxEnd {
					maxEnd = txs[gi].end
					maxIdx = gi
				}
				pos[top]++
				if pos[top] == runs[top].hi {
					h[0] = h[len(h)-1]
					h = h[:len(h)-1]
				}
				if len(h) > 0 {
					siftRun(h, 0, txs, pos)
				}
			}
			res.PerChannel[c].Collided = col
			res.Collided += col
		}
	}

	// Reception, walked per (receiver, listening, sender run) instead of
	// per window over a merged channel timeline: each run is scanned in
	// start order and stops at its first accepted packet. That first accept
	// IS the run's best candidate — later packets start no earlier, and an
	// equal-start packet from the same run is on the same channel, losing
	// the strict (Start, Channel) tie-break — so per (receiver, sender) the
	// combination over listens (in declaration order) and runs (in ordinal
	// order) under strict improvement reproduces exactly what the old
	// time-ordered window walk inserted. Discovery typically lands within a
	// few beacon gaps, so each pair costs a handful of window-membership
	// tests rather than a walk over every window in the horizon.
	//
	// Window membership is tested in O(log windows) by reducing the packet
	// start into the schedule's period. Windows that started before t = 0
	// still receive packets sent after t = 0 (the schedule ran before the
	// devices came into range) — the reduction naturally covers those
	// occurrences; packets that started before t = 0, however, were only
	// partially in range and are never received (start ≥ Arrive ≥ 0, via
	// the presence filter below).
	for r := range nodes {
		n := &nodes[r]
		rDepart := n.departOr(cfg.Horizon)
		for li := range n.Listens {
			ls := &n.Listens[li]
			if ls.C.Empty() || ls.C.Period <= 0 {
				continue
			}
			win := ls.C.Windows
			period := ls.C.Period
			for s := range nodes {
				if s == r {
					continue
				}
				for ri := scr.nodeRuns[s]; ri < scr.nodeRuns[s+1]; ri++ {
					ru := runs[ri]
					if ru.channel != ls.Channel {
						continue
					}
					gi := ru.lo
					if n.Arrive > 0 {
						// Skip packets sent before the receiver arrived
						// (starts are ascending within a run).
						lo, hi := ru.lo, ru.hi
						for lo < hi {
							mid := int(uint(lo+hi) >> 1)
							if txs[mid].start < n.Arrive {
								lo = mid + 1
							} else {
								hi = mid
							}
						}
						gi = lo
					}
					for ; gi < ru.hi; gi++ {
						tx := &txs[gi]
						// Only packets sent entirely while the receiver is
						// present are receivable (a packet straddling the
						// receiver's arrival is heard partially and lost).
						if tx.start >= rDepart {
							break
						}
						if tx.end > rDepart {
							continue
						}
						// Window membership: reduce the start into the
						// period and find the window covering it, if any.
						rel := tx.start - ls.Phase
						k := floorDiv(rel, period)
						off := rel - k*period
						wi := windowAt(win, off)
						if wi < 0 || off >= win[wi].Start+win[wi].Len {
							continue
						}
						if cfg.TruncatedWindows && tx.end > k*period+win[wi].Start+win[wi].Len+ls.Phase {
							continue
						}
						if cfg.Collisions && tx.collided {
							continue
						}
						if cfg.HalfDuplex && n.transmitsDuring(r, tx.start, tx.end, scr) {
							continue
						}
						rec := Reception{Start: tx.start, End: tx.end, Channel: int(tx.channel)}
						m := res.First[r]
						if m == nil {
							m = scr.innerMap()
							m[s] = rec
							res.First[r] = m
							break
						}
						prev, seen := m[s]
						if !seen || rec.Start < prev.Start ||
							(rec.Start == prev.Start && rec.Channel < prev.Channel) {
							m[s] = rec
						}
						break
					}
				}
			}
		}
	}
	return res, nil
}

// windowAt returns the index of the last window with Start ≤ off, or -1.
func windowAt(win []schedule.Window, off timebase.Ticks) int {
	lo, hi := 0, len(win)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if win[mid].Start <= off {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}
