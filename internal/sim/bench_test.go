package sim

import (
	"math/rand"
	"testing"

	"repro/internal/optimal"
	"repro/internal/schedule"
)

// benchPair is a production-scale pair (optimal schedule, 25-slot period)
// exercising the full world kernel: emissions, listens, reception matching.
func benchPair(tb testing.TB) (e, f schedule.Device) {
	tb.Helper()
	u, err := optimal.NewUnidirectional(2, 25, 8, 1)
	if err != nil {
		tb.Fatal(err)
	}
	return schedule.Device{B: u.Sender}, schedule.Device{C: u.Listener}
}

// TestPairTrialScratchZeroAllocSteadyState pins the arena contract: after a
// warm-up trial has grown the scratch to the workload's high-water mark,
// further trials through the world kernel must not allocate at all. A
// regression here silently reintroduces per-trial garbage on the hot path.
func TestPairTrialScratchZeroAllocSteadyState(t *testing.T) {
	e, f := benchPair(t)
	cfg := Config{Horizon: 100000}
	scr := NewScratch()
	rng := rand.New(rand.NewSource(1))
	// Warm-up: grows every arena slice and map to steady state.
	for i := 0; i < 4; i++ {
		if _, _, err := PairTrialScratch(e, f, cfg, rng, scr); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := PairTrialScratch(e, f, cfg, rng, scr); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state PairTrialScratch allocates %.1f objects/trial, want 0", allocs)
	}
}

// BenchmarkPairTrialScratch measures the raw per-trial kernel cost with a
// reused arena — the inner loop of the engine's batched workers. allocs/op
// must read 0 in steady state (asserted by the test above).
func BenchmarkPairTrialScratch(b *testing.B) {
	e, f := benchPair(b)
	cfg := Config{Horizon: 100000}
	scr := NewScratch()
	rng := rand.New(rand.NewSource(1))
	if _, _, err := PairTrialScratch(e, f, cfg, rng, scr); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := PairTrialScratch(e, f, cfg, rng, scr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPairTrialFreshArena is the same trial through the allocating
// wrapper: the delta against BenchmarkPairTrialScratch is what arena reuse
// buys per trial.
func BenchmarkPairTrialFreshArena(b *testing.B) {
	e, f := benchPair(b)
	cfg := Config{Horizon: 100000}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := PairTrial(e, f, cfg, rng); err != nil {
			b.Fatal(err)
		}
	}
}
