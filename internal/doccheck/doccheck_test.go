package doccheck

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// repoRoot walks up from the package directory to the module root (the
// directory holding go.mod), so the checks work from any test cwd.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above the test directory")
		}
		dir = parent
	}
}

// markdownFiles lists the documents under link protection: the top-level
// markdown files and everything in docs/.
func markdownFiles(t *testing.T, root string) []string {
	t.Helper()
	files := []string{"README.md", "ROADMAP.md"}
	entries, err := os.ReadDir(filepath.Join(root, "docs"))
	if err != nil {
		t.Fatalf("reading docs/: %v", err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".md") {
			files = append(files, filepath.Join("docs", e.Name()))
		}
	}
	return files
}

var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestMarkdownLinksResolve: every relative markdown link in README,
// ROADMAP and docs/ must point at an existing file or directory. External
// (http/https/mailto) links and pure in-page anchors are skipped.
func TestMarkdownLinksResolve(t *testing.T) {
	root := repoRoot(t)
	for _, rel := range markdownFiles(t, root) {
		blob, err := os.ReadFile(filepath.Join(root, rel))
		if err != nil {
			t.Errorf("%s: %v", rel, err)
			continue
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(blob), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(root, filepath.Dir(rel), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (resolved %s)", rel, m[1], resolved)
			}
		}
	}
}

// TestExportedSymbolsDocumented: every exported top-level identifier in
// the public nd package must carry a doc comment — the package is the
// library's face, and an undocumented export is an API regression. A doc
// comment on a grouped const/var/type declaration covers its members.
func TestExportedSymbolsDocumented(t *testing.T) {
	root := repoRoot(t)
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, filepath.Join(root, "nd"), func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		for fname, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Recv == nil && d.Name.IsExported() && d.Doc == nil {
						t.Errorf("%s: exported function %s has no doc comment",
							relPos(fset, root, d.Pos(), fname), d.Name.Name)
					}
				case *ast.GenDecl:
					checkGenDecl(t, fset, root, fname, d)
				}
			}
		}
	}
}

func checkGenDecl(t *testing.T, fset *token.FileSet, root, fname string, d *ast.GenDecl) {
	t.Helper()
	groupDoc := d.Doc != nil
	for _, spec := range d.Specs {
		switch sp := spec.(type) {
		case *ast.TypeSpec:
			if sp.Name.IsExported() && !groupDoc && sp.Doc == nil && sp.Comment == nil {
				t.Errorf("%s: exported type %s has no doc comment",
					relPos(fset, root, sp.Pos(), fname), sp.Name.Name)
			}
		case *ast.ValueSpec:
			for _, name := range sp.Names {
				if name.IsExported() && !groupDoc && sp.Doc == nil && sp.Comment == nil {
					t.Errorf("%s: exported %s has no doc comment",
						relPos(fset, root, sp.Pos(), fname), name.Name)
				}
			}
		}
	}
}

// TestRequiredDocSections: the hot-path, sharding, service and
// observability layers must stay documented — the architecture guide
// needs its Hot path & exact mode, Sharded execution, Service layer and
// Observability sections, and the README must cover the exact-mode flag,
// the shard/merge/journal flags, the ndd daemon (flags and endpoints),
// the progress flag, the profiling flags and the benchmark trajectory
// workflow. A doc that silently drops one of these would strand the
// features it explains.
func TestRequiredDocSections(t *testing.T) {
	root := repoRoot(t)
	requirements := map[string][]string{
		"docs/ARCHITECTURE.md": {
			"## Hot path & exact mode",
			"Scratch",
			"exact_mode",
			"batch windows",
			"## Sharded execution",
			"ndshard/1",
			"ndjournal/1",
			"continuation",
			"## Service layer",
			"POST /v1/jobs",
			"singleflight",
			"result_cache_hit",
			"Last-Event-ID",
			"resumed_points",
			"## Observability",
			"RunMetrics",
			"StripRuntime",
			"BENCH_",
			"## Correctness tooling",
			"nodeterminism",
			"maprange",
			"intaccum",
			"atomicfields",
			"goldenpurity",
			"ndlint.json",
			"cmd/ndlint",
		},
		"README.md": {
			"-exact",
			"exact_mode",
			"-shard",
			"-merge",
			"-snapshot",
			"-resume",
			"-journal",
			"-strip",
			"ndshard/1",
			"## The ndd daemon",
			"-addr",
			"-runners",
			"/v1/jobs",
			"/healthz",
			"Retry-After",
			"-progress",
			"-cpuprofile",
			"-memprofile",
			"-trace",
			"ndbench",
			"BENCH_",
			"ndlint",
			"ndlint.json",
			"docs/ARCHITECTURE.md",
		},
	}
	for rel, wants := range requirements {
		blob, err := os.ReadFile(filepath.Join(root, rel))
		if err != nil {
			t.Errorf("%s: %v", rel, err)
			continue
		}
		text := string(blob)
		for _, want := range wants {
			if !strings.Contains(text, want) {
				t.Errorf("%s: required documentation %q missing", rel, want)
			}
		}
	}
}

func relPos(fset *token.FileSet, root string, pos token.Pos, fallback string) string {
	p := fset.Position(pos)
	if p.Filename == "" {
		return fallback
	}
	if rel, err := filepath.Rel(root, p.Filename); err == nil {
		return rel + ":" + strconv.Itoa(p.Line)
	}
	return p.Filename
}
