// Package doccheck holds the repository's documentation conformance
// checks, run as ordinary tests (and as a dedicated CI job): every
// relative link in README.md, ROADMAP.md and the docs/ markdown files
// must resolve to a real file, every exported identifier of the
// public nd package must carry a doc comment, and the documents that
// explain the observability layer must keep their required sections.
package doccheck
