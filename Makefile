# Development entry points. CI (.github/workflows/ci.yml) runs the same
# commands; keep the two in sync when adding a gate.

GO ?= go

.PHONY: all build test race lint ndlint vet fmt staticcheck bench golden-update help

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full-tree race detector run — the CI "race (full tree)" gate.
race:
	$(GO) test -race ./...

# lint is every static gate: formatting, vet, and the determinism-contract
# suite. staticcheck runs too when the binary is installed (CI pins v0.4.7).
lint: fmt vet ndlint staticcheck

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# The determinism-contract lint suite (see docs/ARCHITECTURE.md,
# "Correctness tooling"). Config: ndlint.json at the repo root.
ndlint:
	$(GO) run ./cmd/ndlint ./...

staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it pinned)"; \
	fi

# Benchmark registry smoke run, matching the CI bench job.
bench:
	$(GO) run ./cmd/ndbench -benchtime 100ms -label local -out bench-current.json

# Regenerate the golden result files after an intentional output change.
# Review the diff: goldens are the bit-identical determinism contract.
golden-update:
	$(GO) test ./internal/engine -run TestGolden -update

help:
	@echo "make build         - compile every package"
	@echo "make test          - run the full test suite"
	@echo "make race          - full-tree race detector run"
	@echo "make lint          - gofmt + vet + ndlint (+ staticcheck if installed)"
	@echo "make ndlint        - determinism-contract lint suite only"
	@echo "make bench         - benchmark registry smoke run"
	@echo "make golden-update - regenerate golden result files"
