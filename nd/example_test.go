package nd_test

import (
	"fmt"

	"repro/nd"
)

// The fundamental symmetric bound (Theorem 5.5): no protocol in which both
// devices run a 1 % duty-cycle can guarantee discovery faster than this.
func ExampleParams_Symmetric() {
	p := nd.Params{Omega: 36 * nd.Microsecond, Alpha: 1.0}
	fmt.Printf("%.3f s\n", p.Symmetric(0.01)/1e6)
	// Output: 1.440 s
}

// Asymmetric budgets multiply (Theorem 5.7): a 10 % gateway buys a 1 %
// sensor a 10× faster discovery than another 1 % sensor would.
func ExampleParams_Asymmetric() {
	p := nd.Params{Omega: 36 * nd.Microsecond, Alpha: 1.0}
	fmt.Printf("sensor+sensor:  %.2f s\n", p.Asymmetric(0.01, 0.01)/1e6)
	fmt.Printf("sensor+gateway: %.2f s\n", p.Asymmetric(0.01, 0.10)/1e6)
	// Output:
	// sensor+sensor:  1.44 s
	// sensor+gateway: 0.14 s
}

// Building a bound-tight schedule and verifying it exactly.
func ExampleOptimalSymmetric() {
	pair, err := nd.OptimalSymmetric(36*nd.Microsecond, 1.0, 0.02)
	if err != nil {
		panic(err)
	}
	ana, err := nd.Analyze(pair.E.B, pair.F.C, nd.AnalysisOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("deterministic=%v disjoint=%v worst=%v\n",
		ana.Deterministic, ana.Disjoint, ana.WorstLatency)
	// Output: deterministic=true disjoint=true worst=356.4ms
}

// Theorem 4.3: the minimum number of beacons any sequence needs to cover a
// listener with one 10 ms window per 400 ms period.
func ExampleMinBeacons() {
	fmt.Println(nd.MinBeacons(400*nd.Millisecond, 10*nd.Millisecond))
	// Output: 40
}

// Equation 12: collision probability among 10 contending devices at 1 %
// channel utilization.
func ExampleCollisionProbability() {
	fmt.Printf("%.3f\n", nd.CollisionProbability(10, 0.01))
	// Output: 0.165
}

// The classic Disco schedule analyzed with the exact engine: deterministic
// under the full-duplex slot idealization, worst case ≈ p1·p2 slots.
func ExampleNewDisco() {
	disco, err := nd.NewDisco(3, 5, 1000, 36)
	if err != nil {
		panic(err)
	}
	dev, err := disco.DeviceFullDuplex()
	if err != nil {
		panic(err)
	}
	ana, err := nd.Analyze(dev.B, dev.C, nd.AnalysisOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("deterministic=%v worst=%v (period %d slots)\n",
		ana.Deterministic, ana.WorstLatency, disco.Period)
	// Output: deterministic=true worst=13.036ms (period 15 slots)
}

// Configuring a BLE-like stack optimally: the three periodic-interval
// parameters that realize the Theorem 5.5 bound at a 2 % duty-cycle.
func ExampleOptimalPI() {
	cfg, err := nd.OptimalPI(36*nd.Microsecond, 1.0, 0.02)
	if err != nil {
		panic(err)
	}
	fmt.Printf("advertise every %v, scan %v every %v\n", cfg.Ta, cfg.Ds, cfg.Ts)
	// Output: advertise every 3.564ms, scan 36µs every 3.6ms
}

// A declarative scenario run through the engine: the optimal symmetric
// construction at η = 2 %, Monte-Carlo'd on the worker pool. Results are
// bit-identical for any worker count.
func ExampleRunScenario() {
	sc := nd.Scenario{
		Name:       "example",
		Protocol:   nd.ProtocolSpec{Kind: "optimal", Omega: 36 * nd.Microsecond, Alpha: 1, Eta: 0.02},
		Population: 2,
		Trials:     50,
		Horizon:    nd.HorizonSpec{WorstMultiple: 3},
		Seed:       7,
	}
	res, err := nd.RunScenario(sc, nd.EngineOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("deterministic=%v worst=%v ratio=%.4f misses=%d\n",
		res.Deterministic, res.ExactWorst, res.BoundRatio, res.Latency.Misses)
	// Output: deterministic=true worst=356.4ms ratio=1.0000 misses=0
}

// A sweep's cartesian grid, materialized without running it: every point
// is a named, validated scenario (first axis slowest).
func ExampleExpandSweep() {
	sp := nd.SweepSpec{
		Name: "grid",
		Base: nd.Scenario{
			Protocol:   nd.ProtocolSpec{Kind: "optimal", Omega: 36 * nd.Microsecond, Alpha: 1},
			Population: 2, Trials: 1, Seed: 1,
		},
		Axes: []nd.SweepAxis{
			{Field: "protocol.eta", Values: []float64{0.01, 0.02}},
			{Field: "population", Values: []float64{2, 10}},
		},
	}
	scenarios, err := nd.ExpandSweep(sp)
	if err != nil {
		panic(err)
	}
	for _, sc := range scenarios {
		fmt.Println(sc.Name)
	}
	// Output:
	// grid/eta=0.01,population=2
	// grid/eta=0.01,population=10
	// grid/eta=0.02,population=2
	// grid/eta=0.02,population=10
}

// A coarse-to-fine adaptive search: one refinement round around the η
// with the largest discretization penalty (worst case above the bound).
// The round-1 winner lies strictly between the coarse grid points.
func ExampleRunAdaptive() {
	ap := nd.AdaptiveSpec{
		Name: "refine-eta",
		Base: nd.Scenario{
			Protocol:   nd.ProtocolSpec{Kind: "optimal", Omega: 36 * nd.Microsecond, Alpha: 1},
			Population: 2, Trials: 2,
			Horizon: nd.HorizonSpec{WorstMultiple: 2}, Seed: 1,
		},
		Axes:      []nd.SweepAxis{{Field: "protocol.eta", Values: []float64{0.01, 0.02, 0.05}}},
		Objective: "bound_ratio",
		Goal:      "max",
		Rounds:    1,
		Budget:    5,
		Tolerance: 0.05,
	}
	res, err := nd.RunAdaptive(ap, nd.EngineOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("evaluations=%d best_eta=%.3f refined=%v\n",
		res.Evaluations, res.Best.Values[0], res.Best.Round > 0)
	// Output: evaluations=5 best_eta=0.030 refined=true
}

// A Section 4.1 coverage map: each beacon covers the offsets that translate
// a reception window image onto it; the union covering the circle is the
// determinism proof, drawn.
func ExampleBuildCoverageMap() {
	u, err := nd.Unidirectional(2, 10, 4, 1)
	if err != nil {
		panic(err)
	}
	m, err := nd.BuildCoverageMap(u.Sender, u.Listener, 4, nd.AnalysisOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Print(m.Render(20))
	// Output:
	// Ω1        0µs |···············#####|
	// Ω2       30µs |#####···············|
	// Ω3       60µs |·····#####··········|
	// Ω4       90µs |··········#####·····|
	//          union |####################|
	// deterministic: every offset in [0, TC) is covered
}
